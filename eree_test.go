package eree

import (
	"math"
	"testing"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestPublicQuickstartFlow(t *testing.T) {
	data, err := Generate(TestDataConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(data)
	rel, err := pub.ReleaseMarginal(Request{
		Attrs:     WorkplaceAttrs(),
		Mechanism: MechSmoothGamma,
		Alpha:     0.1,
		Eps:       2,
	}, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Loss.Def != StrongEREE || rel.Loss.Eps != 2 {
		t.Errorf("loss = %v", rel.Loss)
	}
	if len(rel.Noisy) == 0 {
		t.Fatal("no cells released")
	}
}

func TestPublicAccountedRelease(t *testing.T) {
	data, err := Generate(TestDataConfig(), 43)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := NewAccountant(StrongEREE, 0.1, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(data).WithAccountant(acct)
	req := Request{Attrs: WorkplaceAttrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	if _, err := pub.ReleaseMarginal(req, NewStream(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.ReleaseMarginal(req, NewStream(2)); err == nil {
		t.Error("second release should exhaust the eps=2 budget")
	}
}

func TestPublicTable1(t *testing.T) {
	if Satisfies(InputNoiseInfusion, Requirement(0)) != Satisfaction(0) {
		t.Error("SDL should satisfy nothing")
	}
	if got := Table1Text(); got == "" {
		t.Error("Table1Text empty")
	}
	if got := Table2Text(); got == "" {
		t.Error("Table2Text empty")
	}
}

func TestPublicSDLAndSpearman(t *testing.T) {
	data, err := Generate(TestDataConfig(), 44)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSDLSystem(DefaultSDLConfig(), data, NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	if rho := Spearman([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman = %v", rho)
	}
}

func TestPublicHarnessFigureSlice(t *testing.T) {
	data, err := Generate(TestDataConfig(), 45)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(data, NewStream(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	points, err := h.RunGrid(GridSpec{
		Attrs:      WorkplaceAttrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []MechanismKind{MechSmoothLaplace},
		Delta:      0.05,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || !points[0].Valid {
		t.Fatalf("points = %+v", points)
	}
	f := &FigureResult{ID: "x", Title: "t", Metric: MetricL1Ratio, Points: points}
	if f.Format() == "" {
		t.Error("empty figure format")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	cfg := TestDataConfig()
	cfg.NumEstablishments = 100
	data, err := Generate(cfg, 46)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := data.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumJobs() != data.NumJobs() {
		t.Errorf("round trip jobs %d != %d", back.NumJobs(), data.NumJobs())
	}
}

func TestPublicParseMechanism(t *testing.T) {
	k, err := ParseMechanismKind("smooth-laplace")
	if err != nil || k != MechSmoothLaplace {
		t.Errorf("parse = %v, %v", k, err)
	}
}

func TestPublicAttrsClassification(t *testing.T) {
	if len(WorkplaceAttrs()) != 3 || len(WorkerAttrs()) != 5 {
		t.Error("attribute lists wrong")
	}
}

func TestPublicQWIPipeline(t *testing.T) {
	data, err := Generate(TestDataConfig(), 47)
	if err != nil {
		t.Fatal(err)
	}
	panel, err := GeneratePanel(data, DefaultPanelConfig(), NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(data, AttrPlace)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := ComputeFlows(panel, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := flows.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	rel, loss, err := ReleaseFlows(flows, Request{
		Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05,
	}, NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	if loss.Eps != 6 {
		t.Errorf("flow loss eps = %v, want 6", loss.Eps)
	}
	if len(rel.NetChange()) != q.NumCells() {
		t.Error("net change length wrong")
	}
}

func TestPublicSuppressionPipeline(t *testing.T) {
	data, err := Generate(TestDataConfig(), 48)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(data, AttrIndustry, AttrPlace)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := SuppressionFromMarginal(ComputeMarginal(data, q))
	if err != nil {
		t.Fatal(err)
	}
	primary := PrimarySuppression(tab, ThresholdRule{MinContributors: 3})
	full := ComplementarySuppression(tab, primary)
	if full.Count() < primary.Count() || primary.Count() == 0 {
		t.Fatalf("suppression counts: primary %d, full %d", primary.Count(), full.Count())
	}
	audit := AuditSuppression(tab, full)
	if len(audit) != full.Count() {
		t.Errorf("audit covers %d cells, pattern has %d", len(audit), full.Count())
	}
}

func TestPublicOnTheMapPipeline(t *testing.T) {
	data, err := Generate(TestDataConfig(), 49)
	if err != nil {
		t.Fatal(err)
	}
	od := SyntheticOD(data, NewStream(1))
	if od.Total() != int64(data.NumJobs()) {
		t.Fatalf("OD total %d != jobs %d", od.Total(), data.NumJobs())
	}
	sy, err := NewODSynthesizer(2, 100, ODMinPrior(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	synth, err := sy.Synthesize(od, NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	if synth.RowTotal(0) != 100 {
		t.Errorf("synthetic row total = %d, want 100", synth.RowTotal(0))
	}
	if _, err := NewODSynthesizer(2, 100, ODMinPrior(2, 100)*0.5); err == nil {
		t.Error("undersized prior accepted")
	}
}

func TestPublicSDLAttackHelpers(t *testing.T) {
	released := []float64{112.5, 45.0}
	shape, err := SDLShapeDisclosure(released)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shape[0]+shape[1]-1) > 1e-12 {
		t.Error("shape does not normalize")
	}
	factor, recon, err := SDLFactorReconstruction(released, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(factor-1.125) > 1e-12 {
		t.Errorf("factor = %v, want 1.125", factor)
	}
	if math.Abs(SDLTotalSizeReconstruction(recon)-140) > 1e-9 {
		t.Errorf("size = %v, want 140", SDLTotalSizeReconstruction(recon))
	}
	cell, err := SDLZeroCountReIdentification([]float64{0, 3.3, 0}, []bool{true, true, true})
	if err != nil || cell != 1 {
		t.Errorf("re-identification = %d, %v", cell, err)
	}
}

func TestPublicSingleCellAndDataset(t *testing.T) {
	data, err := Generate(TestDataConfig(), 50)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(data)
	if pub.Dataset() != data {
		t.Error("Dataset accessor wrong")
	}
	noisy, truth, loss, err := pub.ReleaseSingleCell(Request{
		Attrs:     []string{AttrPlace, AttrIndustry, AttrOwnership},
		Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, []string{"place-0003", "44-Retail", "Private"}, NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	if loss.Eps != 2 || loss.Def != StrongEREE {
		t.Errorf("single-cell loss = %v", loss)
	}
	if truth > 0 && noisy == float64(truth) {
		t.Error("released exactly")
	}
}

func TestPublicBatchAndCache(t *testing.T) {
	data, err := Generate(TestDataConfig(), 44)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(data)
	reqs := []Request{
		{Attrs: WorkplaceAttrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
		{Attrs: WorkplaceAttrs(), Mechanism: MechLogLaplace, Alpha: 0.1, Eps: 4},
		{Attrs: WorkplaceAttrs(), Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05},
	}
	rels, err := pub.ReleaseBatch(reqs, NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != len(reqs) {
		t.Fatalf("batch returned %d releases, want %d", len(rels), len(reqs))
	}
	var stats CacheStats = pub.MarginalCacheStats()
	if stats.Misses != 1 {
		t.Errorf("three releases of one marginal cost %d scans, want 1", stats.Misses)
	}
	// The three releases share one truth but carry independent noise.
	if rels[0].Truth != rels[1].Truth || rels[1].Truth != rels[2].Truth {
		t.Error("batch releases do not share the cached truth")
	}

	// Bulk marginal computation is positionally aligned and agrees with
	// the single-query path.
	q1, err := NewQuery(data, AttrPlace, AttrIndustry)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQuery(data, AttrSex)
	if err != nil {
		t.Fatal(err)
	}
	ms := ComputeMarginals(data, []*Query{q1, q2})
	if len(ms) != 2 {
		t.Fatalf("ComputeMarginals returned %d results", len(ms))
	}
	if ms[0].Total() != ComputeMarginal(data, q1).Total() || ms[1].Total() != int64(data.NumJobs()) {
		t.Error("bulk marginals disagree with single-query computation")
	}
}

// TestPublicVersionedDatasetFlow drives the versioning surface the way
// a downstream user would: generate a snapshot, release, absorb two
// quarterly deltas (one via ApplyDelta, one via Publisher.Advance), and
// check epoch visibility end to end — releases, cache statistics and
// the accountant's spend-by-epoch ledger.
func TestPublicVersionedDatasetFlow(t *testing.T) {
	data, err := Generate(TestDataConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}

	// Dataset-level: ApplyDelta produces a fresh epoch, sharing schema.
	dl, err := GenerateDelta(data, DefaultDeltaConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	next, err := ApplyDelta(data, dl)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 1 || data.Epoch != 0 {
		t.Fatalf("epochs = (%d, %d), want (1, 0)", next.Epoch, data.Epoch)
	}

	// Publisher-level: serve, advance, serve again.
	acct, err := NewAccountant(StrongEREE, 0.1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(data).WithAccountant(acct)
	req := Request{Attrs: WorkplaceAttrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	rel0, err := pub.ReleaseMarginal(req, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if rel0.Epoch != 0 {
		t.Errorf("pre-advance release epoch = %d", rel0.Epoch)
	}
	if err := pub.Advance(dl); err != nil {
		t.Fatal(err)
	}
	if pub.Epoch() != 1 {
		t.Fatalf("Epoch = %d after one advance", pub.Epoch())
	}
	rel1, err := pub.ReleaseMarginal(req, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if rel1.Epoch != 1 {
		t.Errorf("post-advance release epoch = %d", rel1.Epoch)
	}
	// The publisher's epoch-1 truth equals the independently applied
	// delta's snapshot.
	if got, want := rel1.Truth.Total(), int64(next.NumJobs()); got != want {
		t.Errorf("epoch-1 truth total = %d, want %d", got, want)
	}
	hist := pub.CacheStatsByEpoch()
	if len(hist) != 2 || hist[0].Epoch != 0 || hist[1].Epoch != 1 {
		t.Fatalf("CacheStatsByEpoch = %+v, want epochs 0 and 1", hist)
	}
	ledger := acct.SpendByEpoch()
	if len(ledger) != 2 || ledger[0].Releases != 1 || ledger[1].Releases != 1 {
		t.Fatalf("SpendByEpoch = %+v, want one release per epoch", ledger)
	}
	if spent := acct.Spent(); spent.Eps != 4 {
		t.Errorf("spent eps = %g, want 4 (sequential composition across epochs)", spent.Eps)
	}
}
