// Cell suppression — the historical SDL of the paper's Appendix A — run
// against a LODES-style industry × place employment table, with the
// interval audit that shows why the paper moved to formal privacy.
//
// Pipeline:
//  1. Primary suppression: cells with < 3 contributing establishments or
//     failing the p%-dominance rule are withheld.
//  2. Complementary suppression: additional cells withheld so no
//     suppressed cell is recoverable by subtracting published cells from
//     published row/column totals (Fellegi's conditions).
//  3. Audit: interval constraint propagation computes what an attacker
//     can still infer about every withheld cell.
//
// The audit regularly pins suppressed cells into narrow intervals —
// suppression prevents *exact* disclosure but not *inferential*
// disclosure, which is precisely the gap the (α,ε)-ER-EE definitions
// close with a provable e^ε Bayes-factor bound.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 31)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eree.NewQuery(data, eree.AttrIndustry, eree.AttrPlace)
	if err != nil {
		log.Fatal(err)
	}
	marg := eree.ComputeMarginal(data, q)
	tab, err := eree.SuppressionFromMarginal(marg)
	if err != nil {
		log.Fatal(err)
	}

	primary := eree.PrimarySuppression(tab,
		eree.ThresholdRule{MinContributors: 3},
		eree.PPercentRule{P: 10},
	)
	full := eree.ComplementarySuppression(tab, primary)
	fmt.Printf("table: %d industries x %d places = %d cells\n", tab.Rows, tab.Cols, tab.Rows*tab.Cols)
	fmt.Printf("primary suppressions:       %d\n", primary.Count())
	fmt.Printf("with complements:           %d (%.1f%% of cells withheld)\n\n",
		full.Count(), 100*float64(full.Count())/float64(tab.Rows*tab.Cols))

	audit := eree.AuditSuppression(tab, full)
	exact, narrow := 0, 0
	type leak struct {
		key   [2]int
		width float64
	}
	var leaks []leak
	for key, iv := range audit {
		if iv.Exact() {
			exact++
		}
		true_ := float64(tab.Cells[key[0]][key[1]].Count)
		if true_ > 0 && iv.Width() < 2*true_ {
			narrow++
			leaks = append(leaks, leak{key, iv.Width()})
		}
	}
	fmt.Printf("audit of %d suppressed cells:\n", len(audit))
	fmt.Printf("  exactly recoverable:      %d (heuristic suppression's NP-hard residue)\n", exact)
	fmt.Printf("  inferable within 2x true: %d (inferential disclosure persists)\n\n", narrow)

	sort.Slice(leaks, func(i, j int) bool { return leaks[i].width < leaks[j].width })
	if len(leaks) > 5 {
		leaks = leaks[:5]
	}
	fmt.Println("tightest inferences an attacker can make from the published table:")
	for _, l := range leaks {
		iv := audit[l.key]
		fmt.Printf("  %-55s true %4d, inferred [%6.1f, %6.1f]\n",
			cellLabel(marg, l.key), tab.Cells[l.key[0]][l.key[1]].Count, iv.Lo, iv.Hi)
	}

	fmt.Println("\nUnder (alpha=0.1, eps=2)-ER-EE privacy the same cells carry a")
	fmt.Println("provable guarantee instead: no attacker, however informed, improves")
	fmt.Println("their odds about a cell's establishment beyond e^2, and nothing is")
	fmt.Println("withheld — every cell is published with calibrated noise.")
}

func cellLabel(m *eree.Marginal, key [2]int) string {
	return m.Query.CellString(m.Query.CellKey(key[0], key[1]))
}
