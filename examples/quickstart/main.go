// Quickstart: generate a synthetic LODES snapshot, release the
// place × industry × ownership employment marginal under (α,ε)-ER-EE
// privacy with the Smooth Gamma mechanism, and compare a few cells
// against the confidential truth.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Data. Real LODES inputs are confidential; the generator
	// reproduces their structure (right-skewed establishment sizes,
	// sparse cells, places across four population strata).
	data, err := eree.Generate(eree.TestDataConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d establishments, %d jobs, largest establishment %d\n\n",
		data.NumEstablishments(), data.NumJobs(), data.MaxEmployment())

	// 2. Release. alpha=0.1 means an informed attacker cannot pin any
	// establishment's size down to better than a +-10%% window; eps=2 is
	// the paper's baseline privacy-loss parameter.
	pub := eree.NewPublisher(data)
	rel, err := pub.ReleaseMarginal(eree.Request{
		Attrs:     eree.WorkplaceAttrs(),
		Mechanism: eree.MechSmoothGamma,
		Alpha:     0.1,
		Eps:       2,
	}, eree.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %d cells under %s\n", len(rel.Noisy), rel.Loss)
	fmt.Printf("mechanism: %s\n\n", rel.MechanismName)

	// 3. Inspect. Because the smooth mechanisms calibrate noise to each
	// cell's largest single-establishment contribution, big aggregate
	// cells are accurate while single-establishment cells are protected.
	fmt.Println("sample cells (released vs confidential truth):")
	shown := 0
	for cell := 0; cell < rel.Query.NumCells() && shown < 8; cell++ {
		if rel.Truth.Counts[cell] < 100 {
			continue
		}
		fmt.Printf("  %-66s %10.1f  (true %d)\n",
			rel.Query.CellString(cell), rel.Noisy[cell], rel.Truth.Counts[cell])
		shown++
	}
}
