// Quarterly Workforce Indicators under provable privacy.
//
// The paper's conclusion notes its techniques apply to "virtually all
// establishment-based products released by statistical agencies for
// national production and employment statistics" — the QWI family chief
// among them. This example evolves a snapshot one quarter, computes the
// per-cell job flows (beginning/ending employment, job creation, job
// destruction), and releases them under (α,ε)-ER-EE privacy.
//
// Two things to notice:
//
//  1. Budget accounting: only B, JC and JD are released; E is *derived*
//     from the accounting identity E = B + JC − JD. Post-processing is
//     free, so the flow set costs 3ε, not 4ε.
//  2. Error scaling: JC and JD have far smaller per-cell x_v than the
//     employment levels (an establishment's quarterly *change* is much
//     smaller than its size), so the smooth mechanisms release flows
//     more accurately than levels at the same ε.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	log.SetFlags(0)

	base, err := eree.Generate(eree.TestDataConfig(), 55)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := eree.GeneratePanel(base, eree.DefaultPanelConfig(), eree.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}
	q, err := eree.NewQuery(base, eree.AttrPlace, eree.AttrIndustry)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := eree.ComputeFlows(panel, q)
	if err != nil {
		log.Fatal(err)
	}

	rel, loss, err := eree.ReleaseFlows(flows, eree.Request{
		Mechanism: eree.MechSmoothLaplace,
		Alpha:     0.1,
		Eps:       2,
		Delta:     0.05,
	}, eree.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released B, JC, JD over %d cells; E derived for free\n", q.NumCells())
	fmt.Printf("total privacy loss: %s (3 x eps, not 4)\n\n", loss)

	// Aggregate accuracy per flow.
	fmt.Printf("%-4s %14s %14s %12s\n", "flow", "true total", "released", "L1 error")
	for _, k := range []eree.FlowKind{eree.FlowBeginning, eree.FlowEnd, eree.FlowCreation, eree.FlowDestruction} {
		var trueTotal, relTotal, l1 float64
		for cell := 0; cell < q.NumCells(); cell++ {
			tv := float64(flows.Totals[k][cell])
			rv := rel.Noisy[k][cell]
			trueTotal += tv
			relTotal += rv
			l1 += math.Abs(rv - tv)
		}
		fmt.Printf("%-4s %14.0f %14.0f %12.0f\n", k, trueTotal, relTotal, l1)
	}

	fmt.Println("\nJC/JD release errors sit well below the employment levels' because")
	fmt.Println("quarterly changes have much smaller per-cell x_v — the smooth-")
	fmt.Println("sensitivity calibration adapts automatically.")
}
