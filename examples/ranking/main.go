// OnTheMap-style area comparison (Section 3.2 of the paper).
//
// The OnTheMap web tool lets a user rank areas (e.g. Census places) by
// work-area job count, descending — for instance, a business deciding
// where to open a new establishment. This example produces that ranked
// list from each mechanism's release and measures how faithfully each
// preserves the SDL publication's order (Spearman's rank correlation),
// the paper's Ranking 1 task restricted to places.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 123)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eree.NewQuery(data, eree.AttrPlace)
	if err != nil {
		log.Fatal(err)
	}
	truth := eree.ComputeMarginal(data, q)

	// The published (SDL) ranking users see today.
	sys, err := eree.NewSDLSystem(eree.DefaultSDLConfig(), data, eree.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}
	sdlRel, err := sys.ReleaseMarginal(data.WorkerFull, q, eree.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}

	pub := eree.NewPublisher(data)
	mechs := []eree.Request{
		{Attrs: []string{eree.AttrPlace}, Mechanism: eree.MechSmoothLaplace, Alpha: 0.1, Eps: 1, Delta: 0.05},
		{Attrs: []string{eree.AttrPlace}, Mechanism: eree.MechSmoothGamma, Alpha: 0.1, Eps: 1},
		{Attrs: []string{eree.AttrPlace}, Mechanism: eree.MechLogLaplace, Alpha: 0.1, Eps: 1},
	}

	fmt.Println("Area Comparison: places ranked by job count, eps=1, alpha=0.1")
	fmt.Printf("%-40s %10s\n", "mechanism", "Spearman vs SDL ranking")
	for i, req := range mechs {
		rel, err := pub.ReleaseMarginal(req, eree.NewStream(int64(10+i)))
		if err != nil {
			log.Fatal(err)
		}
		rho := eree.Spearman(rel.Noisy, sdlRel)
		fmt.Printf("%-40s %10.3f\n", req.Mechanism, rho)

		if req.Mechanism == eree.MechSmoothLaplace {
			printTop(q, rel.Noisy, truth, 10)
		}
	}
	fmt.Println("\nAt eps >= 1 the provably private rankings track the published order")
	fmt.Println("closely (the paper's Finding: counts can be used for ranking with")
	fmt.Println("high accuracy for eps >= 1).")
}

func printTop(q *eree.Query, noisy []float64, truth *eree.Marginal, n int) {
	type row struct {
		cell  int
		value float64
	}
	rows := make([]row, len(noisy))
	for i, v := range noisy {
		rows[i] = row{i, v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].value > rows[j].value })
	if len(rows) > n {
		rows = rows[:n]
	}
	fmt.Println("\n  top places by released job count (smooth-laplace):")
	for rank, r := range rows {
		fmt.Printf("  %2d. %-20s %10.0f  (true %d)\n",
			rank+1, q.CellValues(r.cell)[0], r.value, truth.Counts[r.cell])
	}
	fmt.Println()
}
