// Annual release planning under a total privacy budget.
//
// A statistical agency publishes several tabulations from the same
// snapshot: the headline place × industry × ownership table each quarter,
// plus an annual sex × education supplement. Sequential composition
// (Theorem 7.3) means these all draw down one privacy budget, and the
// sex × education marginal pays the d·ε surcharge of weak ER-EE privacy
// (d = 8 for sex × education).
//
// This example plans a budget of ε = 16 across the five releases,
// verifies feasibility against the mechanisms' validity regions, then
// executes the plan through a Publisher wired to an Accountant — which
// blocks any release that would overdraw the budget.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 2024)
	if err != nil {
		log.Fatal(err)
	}

	const (
		alpha       = 0.1
		budgetEps   = 16.0
		budgetDelta = 0.05
	)

	// Plan: four quarterly workplace tables (weight 1 each) and one
	// annual worker-attribute supplement (weight 6 — it needs the lion's
	// share because of its d=8 surcharge).
	requests := []eree.ReleaseRequest{
		{Name: "q1-workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "q2-workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "q3-workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "q4-workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "annual-sex-education", Weight: 6, WorkerDomainSize: 8},
	}
	plan, err := eree.PlanReleases(eree.WeakEREE, alpha, budgetEps, budgetDelta, requests)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("budget: eps=%g delta=%g at alpha=%g (weak ER-EE privacy)\n\n", budgetEps, budgetDelta, alpha)
	fmt.Printf("%-24s %12s %12s %6s\n", "release", "marginal-eps", "cell-eps", "d")
	for _, r := range plan.Releases {
		fmt.Printf("%-24s %12.3f %12.3f %6d\n", r.Name, r.MarginalEps, r.CellEps, r.WorkerDomainSize)
	}

	// Feasibility: Smooth Gamma needs cell eps > 5*ln(1+alpha) ~ 0.477.
	minGamma := 5 * math.Log(1+alpha)
	if infeasible := plan.Feasible(minGamma); len(infeasible) > 0 {
		fmt.Printf("\ninfeasible for smooth-gamma (min cell eps %.3f): %v\n", minGamma, infeasible)
		fmt.Println("these releases fall back to smooth-laplace (whose delta>0 relaxes the minimum)")
	}

	// Execute under an accountant: every release is charged; an attempt
	// to overdraw fails loudly instead of silently degrading privacy.
	acct, err := eree.NewAccountant(eree.WeakEREE, alpha, budgetEps, budgetDelta)
	if err != nil {
		log.Fatal(err)
	}
	pub := eree.NewPublisher(data).WithAccountant(acct)

	fmt.Println("\nexecuting plan:")
	for i, r := range plan.Releases {
		attrs := eree.WorkplaceAttrs()
		if r.WorkerDomainSize > 1 {
			attrs = append(attrs, eree.AttrSex, eree.AttrEducation)
		}
		rel, err := pub.ReleaseMarginal(eree.Request{
			Attrs:     attrs,
			Mechanism: eree.MechSmoothLaplace,
			Alpha:     alpha,
			Eps:       r.CellEps,
			Delta:     r.CellDelta,
		}, eree.NewStream(int64(100+i)))
		if err != nil {
			log.Fatal(err)
		}
		spentEps, spentDelta := acct.Spent().Eps, acct.Spent().Delta
		fmt.Printf("  %-24s charged %s  (cumulative eps=%.3f delta=%.4f)\n",
			r.Name, rel.Loss, spentEps, spentDelta)
	}

	remEps, remDelta := acct.Remaining()
	fmt.Printf("\nbudget remaining: eps=%.6f delta=%.6f\n", remEps, remDelta)

	// One more (mechanism-valid) release must be refused by the accountant.
	_, err = pub.ReleaseMarginal(eree.Request{
		Attrs:     eree.WorkplaceAttrs(),
		Mechanism: eree.MechSmoothLaplace,
		Alpha:     alpha,
		Eps:       2,
		Delta:     0.05,
	}, eree.NewStream(999))
	if err != nil {
		fmt.Printf("extra unplanned release correctly refused: %v\n", err)
	} else {
		log.Fatal("accountant failed to block an over-budget release")
	}
}
