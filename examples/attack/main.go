// The Section 5.2 inference attacks against the current SDL protection,
// end to end: a town whose "Information" sector has exactly one employer.
//
// Attack 1 (shape): because every cell of the lone establishment is scaled
// by the same confidential factor f_w, the released sex × education
// distribution of its workforce equals the true distribution exactly.
//
// Attack 2 (size): an insider who knows one true cell count divides the
// released count by it, recovers f_w, and reconstructs every other count
// and the establishment's total employment exactly.
//
// Attack 3 (re-identification): zero cells pass through unperturbed, so
// knowing the establishment employs exactly one college graduate reveals
// that person's sex from the unique positive college cell.
//
// The same queries released under (α,ε)-ER-EE privacy (Smooth Gamma)
// resist all three: each cell gets independent noise scaled to the
// establishment's contribution, so ratios, reconstructions and zero
// patterns all break.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := eree.NewSDLSystem(eree.DefaultSDLConfig(), data, eree.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}

	// Find a place × industry × ownership combination with exactly one
	// establishment, large enough that no cell of its sex marginal falls
	// under the small-cell limit.
	q3, err := eree.NewQuery(data, eree.AttrPlace, eree.AttrIndustry, eree.AttrOwnership)
	if err != nil {
		log.Fatal(err)
	}
	m3 := eree.ComputeMarginal(data, q3)
	target := -1
	for cell := range m3.Counts {
		if m3.EntityCount[cell] == 1 && m3.Counts[cell] >= 60 {
			target = cell
			break
		}
	}
	if target < 0 {
		log.Fatal("no single-establishment cell found; increase dataset size")
	}
	values := q3.CellValues(target)
	fmt.Printf("target: the only %s / %s establishment in %s (%d employees)\n\n",
		values[1], values[2], values[0], m3.Counts[target])

	// Release the sex-stratified marginal under SDL.
	qFull, err := eree.NewQuery(data, eree.AttrPlace, eree.AttrIndustry, eree.AttrOwnership, eree.AttrSex)
	if err != nil {
		log.Fatal(err)
	}
	mFull := eree.ComputeMarginal(data, qFull)
	sdlRel, err := sys.ReleaseMarginal(data.WorkerFull, qFull, eree.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}

	// The attacker reads off the target establishment's two cells.
	cellM, err := qFull.CellKeyForValues(values[0], values[1], values[2], "M")
	if err != nil {
		log.Fatal(err)
	}
	cellF, err := qFull.CellKeyForValues(values[0], values[1], values[2], "F")
	if err != nil {
		log.Fatal(err)
	}
	released := []float64{sdlRel[cellM], sdlRel[cellF]}
	truth := []float64{float64(mFull.Counts[cellM]), float64(mFull.Counts[cellF])}

	// --- Attack 1: exact shape disclosure ---
	shape, err := eree.SDLShapeDisclosure(released)
	if err != nil {
		log.Fatal(err)
	}
	trueShape := truth[0] / (truth[0] + truth[1])
	fmt.Printf("attack 1 (shape): recovered male share %.6f, true %.6f, error %.2g\n",
		shape[0], trueShape, math.Abs(shape[0]-trueShape))

	// --- Attack 2: factor reconstruction from one known count ---
	factor, recon, err := eree.SDLFactorReconstruction(released, 0, truth[0])
	if err != nil {
		log.Fatal(err)
	}
	size := eree.SDLTotalSizeReconstruction(recon)
	fmt.Printf("attack 2 (size):  recovered f_w %.6f, total employment %.1f (true %d)\n",
		factor, size, m3.Counts[target])

	// --- The same queries under (alpha,eps)-ER-EE privacy resist both ---
	pub := eree.NewPublisher(data)
	rel, err := pub.ReleaseMarginal(eree.Request{
		Attrs:     []string{eree.AttrPlace, eree.AttrIndustry, eree.AttrOwnership, eree.AttrSex},
		Mechanism: eree.MechSmoothGamma,
		Alpha:     0.1,
		Eps:       2,
	}, eree.NewStream(3))
	if err != nil {
		log.Fatal(err)
	}
	dpReleased := []float64{rel.Noisy[cellM], rel.Noisy[cellF]}
	dpShape, err := eree.SDLShapeDisclosure(dpReleased)
	if err != nil {
		log.Fatal(err)
	}
	_, dpRecon, err := eree.SDLFactorReconstruction(dpReleased, 0, truth[0])
	if err != nil {
		log.Fatal(err)
	}
	dpSize := eree.SDLTotalSizeReconstruction(dpRecon)
	fmt.Printf("\nunder smooth-gamma (alpha=0.1, eps=2):\n")
	fmt.Printf("attack 1 fails:   recovered male share %.4f vs true %.4f (error %.2g, not exact)\n",
		dpShape[0], trueShape, math.Abs(dpShape[0]-trueShape))
	fmt.Printf("attack 2 fails:   'reconstructed' size %.1f vs true %d\n", dpSize, m3.Counts[target])
	fmt.Println("\nThe SDL attacks recover confidential values exactly; under ER-EE")
	fmt.Println("privacy the same procedure yields only noise-bounded estimates, with")
	fmt.Println("a provable e^eps bound on any informed attacker's Bayes factor.")
}
