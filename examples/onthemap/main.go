// OnTheMap-style origin-destination release (the paper's footnote 2).
//
// LODES publishes where workers live relative to where they work. The
// residence side is protected not by noise but by *synthetic data*: for
// each workplace, OnTheMap releases residences drawn from a Dirichlet
// posterior over Census blocks (Machanavajjhala et al., ICDE 2008 — the
// paper's reference [37] and prior work by the same authors).
//
// This example builds a synthetic OD matrix with a gravity model,
// releases each workplace's residence distribution through the
// Dirichlet-multinomial synthesizer at the provable ε bound
// (prior ≥ m/(e^ε − 1)), and measures how well commute-distance
// statistics survive.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 77)
	if err != nil {
		log.Fatal(err)
	}
	od := eree.SyntheticOD(data, eree.NewStream(1))
	fmt.Printf("origin-destination matrix: %d workplaces x %d residences, %d jobs\n",
		od.NumWorkplaces, od.NumResidences, od.Total())

	const (
		eps = 2.0
		m   = 500 // synthetic residences per workplace
	)
	prior := eree.ODMinPrior(eps, m)
	sy, err := eree.NewODSynthesizer(eps, m, prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesizer: eps=%g, m=%d, per-block prior %.2f (= m/(e^eps-1))\n\n", eps, m, prior)

	synth, err := sy.Synthesize(od, eree.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}

	// Utility: mean commute distance (index proxy) per workplace, true vs
	// synthetic shares, for the busiest workplaces.
	fmt.Printf("%-12s %14s %14s %12s\n", "workplace", "true commute", "synth commute", "jobs")
	shown := 0
	for w := 0; w < od.NumWorkplaces && shown < 8; w++ {
		jobs := od.RowTotal(w)
		if jobs < 2000 {
			continue
		}
		fmt.Printf("%-12s %14.2f %14.2f %12d\n",
			data.Places[w].Name, meanCommute(od.Counts[w], w), meanCommute(synth.Counts[w], w), jobs)
		shown++
	}

	// Aggregate share error.
	var l1, n float64
	for w := range od.Counts {
		total := float64(od.RowTotal(w))
		if total == 0 {
			continue
		}
		for r := range od.Counts[w] {
			trueShare := float64(od.Counts[w][r]) / total
			synthShare := float64(synth.Counts[w][r]) / float64(m)
			l1 += math.Abs(trueShare - synthShare)
		}
		n++
	}
	fmt.Printf("\nmean per-workplace residence-share L1 distance: %.3f\n", l1/n)
	fmt.Println("\nEvery released residence is synthetic: no worker's home block is")
	fmt.Println("published, and moving any one worker's residence changes the release")
	fmt.Println("distribution by at most e^2 — the same provable currency as the")
	fmt.Println("workplace-side ER-EE guarantees.")
}

func meanCommute(counts []int64, w int) float64 {
	var sum, n float64
	for r, c := range counts {
		d := float64(r - w)
		if d < 0 {
			d = -d
		}
		sum += d * float64(c)
		n += float64(c)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
