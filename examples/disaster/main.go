// Disaster-assistance resource allocation (Section 3.2 of the paper).
//
// FEMA evaluates disaster declarations by dividing a Preliminary Damage
// Assessment by a population count, with a $3.50-per-capita threshold
// (Stafford Act). If job counts were used instead, every job of count
// error would shift the damage threshold by $3.50 — so the social cost of
// a noisy employment release is $3.50 × L1 error.
//
// This example releases per-place job counts under each mechanism and
// prices the error of each, against the SDL baseline's error.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const costPerJob = 3.50 // Stafford Act per-capita indicator, 2013 adjustment

func main() {
	log.SetFlags(0)

	data, err := eree.Generate(eree.TestDataConfig(), 99)
	if err != nil {
		log.Fatal(err)
	}
	pub := eree.NewPublisher(data)

	// The allocation variable: total jobs per place.
	attrs := []string{eree.AttrPlace}
	q, err := eree.NewQuery(data, attrs...)
	if err != nil {
		log.Fatal(err)
	}
	truth := eree.ComputeMarginal(data, q)

	// SDL baseline error.
	sys, err := eree.NewSDLSystem(eree.DefaultSDLConfig(), data, eree.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}
	sdlRel, err := sys.ReleaseMarginal(data.WorkerFull, q, eree.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}
	sdlL1 := l1(sdlRel, truth.Counts)

	fmt.Println("FEMA-style allocation: misallocation cost at $3.50 per job of error")
	fmt.Printf("%-48s %14s %16s\n", "mechanism", "L1 error", "social cost")
	fmt.Printf("%-48s %14.0f %16s\n", "input-noise-infusion (current SDL)", sdlL1, dollars(sdlL1))

	requests := []eree.Request{
		{Attrs: attrs, Mechanism: eree.MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05},
		{Attrs: attrs, Mechanism: eree.MechSmoothGamma, Alpha: 0.1, Eps: 2},
		{Attrs: attrs, Mechanism: eree.MechLogLaplace, Alpha: 0.1, Eps: 2},
		{Attrs: attrs, Mechanism: eree.MechTruncatedLaplace, Eps: 2, Theta: 100},
	}
	for i, req := range requests {
		rel, err := pub.ReleaseMarginal(req, eree.NewStream(int64(10+i)))
		if err != nil {
			log.Fatal(err)
		}
		e := l1(rel.Noisy, truth.Counts)
		fmt.Printf("%-48s %14.0f %16s\n", rel.MechanismName, e, dollars(e))
	}
	fmt.Println("\nProvably private mechanisms price out comparably to SDL; the")
	fmt.Println("node-DP baseline's truncation bias costs an order of magnitude more.")
}

func l1(rel []float64, truth []int64) float64 {
	var sum float64
	for i := range rel {
		sum += math.Abs(rel[i] - float64(truth[i]))
	}
	return sum
}

func dollars(l1 float64) string {
	return fmt.Sprintf("$%.0f", l1*costPerJob)
}
