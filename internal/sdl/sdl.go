// Package sdl implements the current statistical-disclosure-limitation
// protection for ER-EE data described in Section 5.1 of the paper: input
// noise infusion. Every establishment w receives a unique, time-invariant,
// confidential multiplicative distortion factor f_w drawn from
// [1−t, 1−s] ∪ [1+s, 1+t]; every cell of its worker-attribute histogram
// h(w, ·) is scaled by f_w; marginal answers add up the distorted
// histograms. Small positive cells are replaced by draws from a posterior
// predictive distribution supported on {1, …, ⌊S⌋}; zero cells are left
// at zero.
//
// The package also implements, as executable code, the three Section 5.2
// inference attacks that motivate the paper: exact shape disclosure,
// distortion-factor reconstruction, and zero-count re-identification.
//
// Confidential-parameter substitution: in production the band (s, t), the
// small-cell limit S and the posterior predictive distribution are all
// confidential. We use documented defaults (s = 0.1, t = 0.25, S = 2.5)
// and a uniform posterior predictive on {1, …, ⌊S⌋}. The attacks do not
// depend on these choices — they exploit the *structure* of the scheme
// (one factor per establishment, zeros preserved), not its parameters.
package sdl

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/table"
)

// Config holds the noise-infusion parameters.
type Config struct {
	// S and T bound the distortion band [1−T, 1−S] ∪ [1+S, 1+T].
	S, T float64
	// SmallCellLimit is the threshold below which positive cells are
	// replaced (the paper's S = 2.5 for this dataset).
	SmallCellLimit float64
}

// DefaultConfig returns the documented synthetic stand-ins for the
// confidential production parameters.
func DefaultConfig() Config {
	return Config{S: 0.1, T: 0.25, SmallCellLimit: 2.5}
}

// Validate returns an error describing the first invalid field, if any.
func (c Config) Validate() error {
	if !(c.S > 0 && c.T > c.S) {
		return fmt.Errorf("sdl: need 0 < s < t, got s=%v t=%v", c.S, c.T)
	}
	if !(c.SmallCellLimit >= 1) {
		return fmt.Errorf("sdl: small-cell limit must be >= 1, got %v", c.SmallCellLimit)
	}
	return nil
}

// System is an instantiated noise-infusion protection system: the
// configuration plus the per-establishment distortion factors, drawn once
// and reused for every query — the time-invariance that both protects
// against averaging attacks and enables the Section 5.2 reconstruction.
type System struct {
	cfg     Config
	factors []float64
}

// NewSystem draws distortion factors for numEstablishments establishments.
func NewSystem(cfg Config, numEstablishments int, s *dist.Stream) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numEstablishments < 0 {
		return nil, fmt.Errorf("sdl: negative establishment count %d", numEstablishments)
	}
	// Batch-drawn, one factor per establishment; dist.Fill consumes the
	// stream exactly as the scalar loop it replaces, so systems built at
	// any code version agree bit for bit.
	g := dist.NewGapUniform(cfg.S, cfg.T)
	factors := make([]float64, numEstablishments)
	g.Fill(factors, s.Split("sdl-factors"))
	return &System{cfg: cfg, factors: factors}, nil
}

// Config returns the system's configuration.
func (sys *System) Config() Config { return sys.cfg }

// Factor returns establishment w's confidential distortion factor. It is
// exported so the attack demonstrations can verify their reconstructions;
// a production system would never reveal it.
func (sys *System) Factor(w int32) float64 {
	if w < 0 || int(w) >= len(sys.factors) {
		panic(fmt.Sprintf("sdl: establishment %d out of range", w))
	}
	return sys.factors[int(w)]
}

// ReleaseMarginal answers a marginal query under input noise infusion:
// for each cell, sum f_w · h(w, cell) over contributing establishments;
// then, if the cell's true count lies in (0, SmallCellLimit), replace the
// answer with a posterior-predictive draw from {1, …, ⌊S⌋}; zero cells
// stay exactly zero.
func (sys *System) ReleaseMarginal(t *table.Table, q *table.Query, s *dist.Stream) ([]float64, error) {
	marg, hist := table.ComputeDetailed(t, q)
	out := make([]float64, q.NumCells())
	for _, h := range hist {
		if h.Entity < 0 || int(h.Entity) >= len(sys.factors) {
			return nil, fmt.Errorf("sdl: record references establishment %d outside the factor table", h.Entity)
		}
		out[h.Cell] += sys.factors[h.Entity] * float64(h.Count)
	}
	limit := sys.cfg.SmallCellLimit
	maxDraw := int(math.Floor(limit))
	ps := s.Split("sdl-smallcell")
	for cell := range out {
		true_ := float64(marg.Counts[cell])
		if true_ > 0 && true_ < limit {
			// Posterior-predictive replacement (uniform substitution for
			// the confidential production distribution).
			out[cell] = float64(1 + ps.IntN(maxDraw))
		}
	}
	return out, nil
}

// L1Error returns the L1 distance between an SDL release and the true
// counts — the denominator of every error ratio in Section 10.
func L1Error(released []float64, truth []int64) float64 {
	if len(released) != len(truth) {
		panic(fmt.Sprintf("sdl: length mismatch %d vs %d", len(released), len(truth)))
	}
	var sum float64
	for i := range released {
		sum += math.Abs(released[i] - float64(truth[i]))
	}
	return sum
}
