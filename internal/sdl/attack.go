package sdl

import (
	"fmt"
	"math"
)

// This file implements the Section 5.2 inference attacks against input
// noise infusion as executable demonstrations. Each attack's premise is a
// marginal q_{V_I ∪ V_W} in which one workplace-attribute combination v_W
// matches exactly one establishment w, so the released counts for cells
// (v_W, c) are f_w · h(w, c) whenever they exceed the small-cell limit.

// ShapeDisclosure is the first attack: because every cell of the single
// establishment is scaled by the *same* factor f_w, released ratios equal
// true ratios exactly. Given the released counts for the establishment's
// cells (all above the small-cell limit), it returns the establishment's
// exact workforce shape (the normalized distribution over cells),
// violating the establishment-shape requirement (Definition 4.3).
func ShapeDisclosure(released []float64) ([]float64, error) {
	var total float64
	for i, r := range released {
		if r < 0 {
			return nil, fmt.Errorf("sdl: released count %d is negative (%v)", i, r)
		}
		total += r
	}
	if total == 0 {
		return nil, fmt.Errorf("sdl: all released counts are zero; no shape to recover")
	}
	shape := make([]float64, len(released))
	for i, r := range released {
		shape[i] = r / total
	}
	return shape, nil
}

// FactorReconstruction is the second attack: an attacker who knows one
// true cell count (say 100 males aged 20–25) divides the released count
// by it to recover f_w exactly, then divides every other released cell by
// f_w to recover the establishment's entire histogram and total size —
// violating the establishment-size requirement (Definition 4.2).
//
// knownCell indexes the cell whose true count the attacker knows;
// knownTrue is that count. Returns the reconstructed factor and the
// reconstructed true counts for all cells.
func FactorReconstruction(released []float64, knownCell int, knownTrue float64) (factor float64, reconstructed []float64, err error) {
	if knownCell < 0 || knownCell >= len(released) {
		return 0, nil, fmt.Errorf("sdl: known cell %d out of range", knownCell)
	}
	if !(knownTrue > 0) {
		return 0, nil, fmt.Errorf("sdl: attacker's known count must be positive, got %v", knownTrue)
	}
	factor = released[knownCell] / knownTrue
	if !(factor > 0) || math.IsInf(factor, 0) {
		return 0, nil, fmt.Errorf("sdl: degenerate reconstructed factor %v", factor)
	}
	reconstructed = make([]float64, len(released))
	for i, r := range released {
		reconstructed[i] = r / factor
	}
	return factor, reconstructed, nil
}

// ZeroCountReIdentification is the third attack: zero counts pass through
// noise infusion unperturbed, so if the attacker knows the establishment
// has exactly one employee with some attribute value (e.g. one college
// graduate), the *unique* cell with a positive released count among the
// cells matching that attribute reveals the employee's remaining
// attributes — violating the employee requirement (Definition 4.1).
//
// released holds the establishment's released counts; matching marks the
// cells consistent with the attacker's background knowledge. The attack
// succeeds when exactly one matching cell is positive, and returns its
// index.
func ZeroCountReIdentification(released []float64, matching []bool) (cell int, err error) {
	if len(released) != len(matching) {
		return 0, fmt.Errorf("sdl: length mismatch %d vs %d", len(released), len(matching))
	}
	found := -1
	for i := range released {
		if !matching[i] || released[i] <= 0 {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sdl: multiple candidate cells (%d and %d); attack inconclusive", found, i)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sdl: no positive matching cell; background knowledge inconsistent with release")
	}
	return found, nil
}

// TotalSizeFromReconstruction sums reconstructed cell counts into the
// establishment's total employment, the headline confidential value.
func TotalSizeFromReconstruction(reconstructed []float64) float64 {
	var total float64
	for _, v := range reconstructed {
		total += v
	}
	return total
}
