package sdl

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/table"
)

// singleEstablishmentRelease builds a table in which one workplace-attribute
// combination ("a") matches exactly one establishment with the given
// per-sex true counts, runs noise infusion, and returns the released counts
// for that establishment's cells along with the system.
func singleEstablishmentRelease(t *testing.T, counts [2]int, seed int64) (*System, []float64, [2]int) {
	t.Helper()
	s := table.NewSchema(
		table.NewDomain("place", "a", "b"),
		table.NewDomain("sex", "M", "F"),
	)
	tab := table.New(s)
	for sex, n := range counts {
		for j := 0; j < n; j++ {
			tab.AppendRow(0, 0, sex)
		}
	}
	// A decoy establishment elsewhere so the marginal is not trivially
	// single-establishment overall.
	for j := 0; j < 500; j++ {
		tab.AppendRow(1, 1, j%2)
	}
	q := table.MustNewQuery(s, "place", "sex")
	sys, err := NewSystem(DefaultConfig(), 2, dist.NewStreamFromSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	cellM, _ := q.CellKeyForValues("a", "M")
	cellF, _ := q.CellKeyForValues("a", "F")
	return sys, []float64{rel[cellM], rel[cellF]}, counts
}

func TestShapeDisclosureExact(t *testing.T) {
	// Section 5.2 attack 1: with all cells above the small-cell limit, the
	// released shape equals the true shape exactly.
	sys, released, truth := singleEstablishmentRelease(t, [2]int{300, 100}, 20)
	_ = sys
	shape, err := ShapeDisclosure(released)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(truth[0] + truth[1])
	for i, want := range []float64{float64(truth[0]) / total, float64(truth[1]) / total} {
		if math.Abs(shape[i]-want) > 1e-12 {
			t.Errorf("recovered shape[%d] = %v, want exact %v", i, shape[i], want)
		}
	}
}

func TestShapeDisclosureErrors(t *testing.T) {
	if _, err := ShapeDisclosure([]float64{0, 0}); err == nil {
		t.Error("all-zero release did not error")
	}
	if _, err := ShapeDisclosure([]float64{-1, 2}); err == nil {
		t.Error("negative release did not error")
	}
}

func TestFactorReconstructionExact(t *testing.T) {
	// Section 5.2 attack 2: knowing one true cell count recovers f_w and
	// then every other count and the establishment's total size, exactly.
	sys, released, truth := singleEstablishmentRelease(t, [2]int{100, 250}, 22)
	factor, recon, err := FactorReconstruction(released, 0, float64(truth[0]))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(factor-sys.Factor(0)) > 1e-12 {
		t.Errorf("reconstructed factor %v, true factor %v", factor, sys.Factor(0))
	}
	if math.Abs(recon[1]-float64(truth[1])) > 1e-9 {
		t.Errorf("reconstructed F count = %v, want exact %v", recon[1], truth[1])
	}
	size := TotalSizeFromReconstruction(recon)
	if math.Abs(size-float64(truth[0]+truth[1])) > 1e-9 {
		t.Errorf("reconstructed size = %v, want exact %v", size, truth[0]+truth[1])
	}
}

func TestFactorReconstructionErrors(t *testing.T) {
	if _, _, err := FactorReconstruction([]float64{1, 2}, 5, 1); err == nil {
		t.Error("out-of-range cell did not error")
	}
	if _, _, err := FactorReconstruction([]float64{1, 2}, 0, 0); err == nil {
		t.Error("zero known count did not error")
	}
}

func TestZeroCountReIdentification(t *testing.T) {
	// Section 5.2 attack 3: the establishment has one college graduate.
	// Cells are (sex x education); the attacker knows education=college.
	// Zero preservation means the lone positive college cell reveals sex.
	s := table.NewSchema(
		table.NewDomain("place", "a"),
		table.NewDomain("sex", "M", "F"),
		table.NewDomain("education", "HS", "College"),
	)
	tab := table.New(s)
	// 40 HS males, 30 HS females, exactly one college female.
	for j := 0; j < 40; j++ {
		tab.AppendRow(0, 0, 0, 0)
	}
	for j := 0; j < 30; j++ {
		tab.AppendRow(0, 0, 1, 0)
	}
	tab.AppendRow(0, 0, 1, 1) // the lone college graduate: female

	q := table.MustNewQuery(s, "sex", "education")
	sys, err := NewSystem(DefaultConfig(), 1, dist.NewStreamFromSeed(30))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	matching := make([]bool, q.NumCells())
	for cell := range matching {
		values := q.CellValues(cell)
		matching[cell] = values[1] == "College"
	}
	cell, err := ZeroCountReIdentification(rel, matching)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.CellValues(cell)[0]; got != "F" {
		t.Errorf("attack inferred sex %q, the true lone graduate is F", got)
	}
}

func TestZeroCountReIdentificationInconclusive(t *testing.T) {
	rel := []float64{1, 2, 0}
	matching := []bool{true, true, false}
	if _, err := ZeroCountReIdentification(rel, matching); err == nil {
		t.Error("two positive candidates should be inconclusive")
	}
	if _, err := ZeroCountReIdentification([]float64{0, 0}, []bool{true, true}); err == nil {
		t.Error("no positive candidates should error")
	}
	if _, err := ZeroCountReIdentification([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAttacksFailAgainstSmallCells(t *testing.T) {
	// The small-cell replacement thwarts exact shape recovery when any
	// cell is below the limit — the residual protection the scheme does
	// provide. With a count of 2 (replaced) and 300 (scaled), the
	// recovered shape should generally NOT match the true shape.
	_, released, truth := singleEstablishmentRelease(t, [2]int{300, 2}, 24)
	shape, err := ShapeDisclosure(released)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(truth[0] + truth[1])
	trueShape := float64(truth[1]) / total
	// The replaced draw is 1 or 2 against a scaled ~300-ish count; the
	// shares coincide only if the draw happened to equal f_w*2 which is
	// impossible since draws are integers and f_w*2 is not an integer in
	// general. Assert a measurable deviation.
	if math.Abs(shape[1]-trueShape) < 1e-6 {
		t.Error("shape recovered exactly despite small-cell replacement")
	}
}
