package sdl

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/table"
)

// smallJobTable builds a two-attribute job table. Establishment sizes are
// given per (establishment, sexCode) as a map from entity to [2]int.
func smallJobTable(cells map[int32][2]int) (*table.Table, *table.Query, int) {
	s := table.NewSchema(
		table.NewDomain("place", "a", "b"),
		table.NewDomain("sex", "M", "F"),
	)
	tab := table.New(s)
	maxEnt := 0
	for ent, counts := range cells {
		if int(ent) > maxEnt {
			maxEnt = int(ent)
		}
		for sex, n := range counts {
			for j := 0; j < n; j++ {
				tab.AppendRow(ent, int(ent)%2, sex)
			}
		}
	}
	return tab, table.MustNewQuery(s, "place", "sex"), maxEnt + 1
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{S: 0, T: 0.2, SmallCellLimit: 2.5},
		{S: 0.3, T: 0.2, SmallCellLimit: 2.5},
		{S: 0.1, T: 0.25, SmallCellLimit: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestFactorsInBand(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(), 1000, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewGapUniform(0.1, 0.25)
	for w := int32(0); w < 1000; w++ {
		f := sys.Factor(w)
		if !g.Contains(f) {
			t.Fatalf("factor %v for establishment %d outside band", f, w)
		}
	}
}

func TestFactorsTimeInvariant(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(), 10, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for w := int32(0); w < 10; w++ {
		if sys.Factor(w) != sys.Factor(w) {
			t.Fatal("factor changed between calls")
		}
	}
}

func TestReleaseNoExactDisclosure(t *testing.T) {
	// A single-establishment cell must never be released exactly: the gap
	// in the factor band guarantees |released - true| >= s*true.
	tab, q, n := smallJobTable(map[int32][2]int{0: {100, 50}})
	sys, err := NewSystem(DefaultConfig(), n, dist.NewStreamFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	cellM, _ := q.CellKeyForValues("a", "M")
	cellF, _ := q.CellKeyForValues("a", "F")
	if math.Abs(rel[cellM]-100) < 0.1*100-1e-9 {
		t.Errorf("released %v too close to true 100: exact disclosure", rel[cellM])
	}
	if math.Abs(rel[cellF]-50) < 0.1*50-1e-9 {
		t.Errorf("released %v too close to true 50", rel[cellF])
	}
}

func TestReleaseZeroCellsUnperturbed(t *testing.T) {
	tab, q, n := smallJobTable(map[int32][2]int{0: {10, 0}})
	sys, err := NewSystem(DefaultConfig(), n, dist.NewStreamFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	cellF, _ := q.CellKeyForValues("a", "F")
	if rel[cellF] != 0 {
		t.Errorf("zero cell released as %v, must stay 0", rel[cellF])
	}
	cellB, _ := q.CellKeyForValues("b", "M")
	if rel[cellB] != 0 {
		t.Errorf("empty place cell released as %v", rel[cellB])
	}
}

func TestReleaseSmallCellReplacement(t *testing.T) {
	// True counts 1 and 2 are in (0, 2.5): the release must be an integer
	// in {1, 2}, never the factor-scaled value.
	tab, q, n := smallJobTable(map[int32][2]int{0: {1, 2}})
	sys, err := NewSystem(DefaultConfig(), n, dist.NewStreamFromSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	parent := dist.NewStreamFromSeed(8)
	for trial := 0; trial < 200; trial++ {
		rel, err := sys.ReleaseMarginal(tab, q, parent.SplitIndex("t", trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, cellName := range []string{"M", "F"} {
			cell, _ := q.CellKeyForValues("a", cellName)
			v := rel[cell]
			if v != 1 && v != 2 {
				t.Fatalf("small cell released as %v, want 1 or 2", v)
			}
		}
	}
}

func TestReleaseSmallCellBothValuesOccur(t *testing.T) {
	tab, q, n := smallJobTable(map[int32][2]int{0: {1, 0}})
	sys, err := NewSystem(DefaultConfig(), n, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := q.CellKeyForValues("a", "M")
	saw := map[float64]bool{}
	parent := dist.NewStreamFromSeed(10)
	for trial := 0; trial < 200; trial++ {
		rel, err := sys.ReleaseMarginal(tab, q, parent.SplitIndex("t", trial))
		if err != nil {
			t.Fatal(err)
		}
		saw[rel[cell]] = true
	}
	if !saw[1] || !saw[2] {
		t.Errorf("posterior predictive draws = %v, want both 1 and 2 to occur", saw)
	}
}

func TestReleaseAggregatesMultipleEstablishments(t *testing.T) {
	tab, q, n := smallJobTable(map[int32][2]int{0: {100, 0}, 2: {200, 0}})
	sys, err := NewSystem(DefaultConfig(), n, dist.NewStreamFromSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := q.CellKeyForValues("a", "M")
	want := sys.Factor(0)*100 + sys.Factor(2)*200
	if math.Abs(rel[cell]-want) > 1e-9 {
		t.Errorf("aggregated release = %v, want %v", rel[cell], want)
	}
}

func TestReleaseErrorWithinBand(t *testing.T) {
	// Relative error of any large single-establishment cell is within [s, t].
	tab, q, n := smallJobTable(map[int32][2]int{0: {1000, 0}})
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg, n, dist.NewStreamFromSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sys.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(14))
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := q.CellKeyForValues("a", "M")
	relErr := math.Abs(rel[cell]-1000) / 1000
	if relErr < cfg.S-1e-9 || relErr > cfg.T+1e-9 {
		t.Errorf("relative error %v outside [%v, %v]", relErr, cfg.S, cfg.T)
	}
}

func TestL1Error(t *testing.T) {
	got := L1Error([]float64{1, 2, 3}, []int64{0, 2, 5})
	if got != 3 {
		t.Errorf("L1 = %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	L1Error([]float64{1}, []int64{1, 2})
}

func TestSDLOnLODES(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(15))
	sys, err := NewSystem(DefaultConfig(), d.NumEstablishments(), dist.NewStreamFromSeed(16))
	if err != nil {
		t.Fatal(err)
	}
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
	m := table.Compute(d.WorkerFull, q)
	rel, err := sys.ReleaseMarginal(d.WorkerFull, q, dist.NewStreamFromSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	// Zero cells stay zero; positive cells change; total L1 is bounded by
	// t * total employment plus small-cell effects.
	for cell, c := range m.Counts {
		if c == 0 && rel[cell] != 0 {
			t.Fatalf("zero cell %d released as %v", cell, rel[cell])
		}
		if c >= 3 && rel[cell] == float64(c) {
			t.Fatalf("cell %d released exactly (count %d)", cell, c)
		}
	}
	l1 := L1Error(rel, m.Counts)
	maxL1 := DefaultConfig().T*float64(d.NumJobs()) + 2*float64(len(m.Counts))
	if l1 <= 0 || l1 > maxL1 {
		t.Errorf("SDL L1 = %v, want in (0, %v]", l1, maxL1)
	}
}
