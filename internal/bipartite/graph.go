// Package bipartite views ER-EE data as the bipartite employer–employee
// graph of Section 6 of the paper: employers and employees are nodes,
// each job is an edge. Edge- and node-differential privacy for this graph
// are the two standard baselines the paper evaluates against, and the
// θ-truncation projection implemented here is the standard technique for
// bounding sensitivity under node-differential privacy.
package bipartite

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Graph is the employer–employee bipartite graph induced by a job table:
// one employer node per entity, one employee node per record (the paper
// assumes each worker holds exactly one job), and one edge per job.
type Graph struct {
	degrees []int // jobs per employer, indexed by entity ID
	edges   int
}

// FromTable builds the graph from a job table whose entity column holds
// employer IDs. Records with negative entities are rejected: every job
// must belong to an employer.
func FromTable(t *table.Table) (*Graph, error) {
	n := t.NumEntities()
	g := &Graph{degrees: make([]int, n)}
	for row := 0; row < t.NumRows(); row++ {
		e := t.Entity(row)
		if e < 0 {
			return nil, fmt.Errorf("bipartite: job record %d has no employer", row)
		}
		g.degrees[e]++
		g.edges++
	}
	return g, nil
}

// NumEmployers returns the number of employer nodes (including employers
// with zero jobs, if the entity space has gaps).
func (g *Graph) NumEmployers() int { return len(g.degrees) }

// NumEdges returns the number of edges (jobs). Because each worker holds
// exactly one job, this is also the number of employee nodes.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree (employment) of the given employer.
func (g *Graph) Degree(employer int) int {
	if employer < 0 || employer >= len(g.degrees) {
		panic(fmt.Sprintf("bipartite: employer %d out of range", employer))
	}
	return g.degrees[employer]
}

// MaxDegree returns the largest employer degree. This is the quantity
// with no a priori bound that makes the Laplace mechanism inapplicable
// under node-differential privacy (Section 6).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.degrees {
		if d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns the sorted distinct degrees and their employer
// counts, for diagnostics and the skewness analyses in the examples.
func (g *Graph) DegreeHistogram() (degrees []int, counts []int) {
	hist := make(map[int]int)
	for _, d := range g.degrees {
		hist[d]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// EmployersOver returns how many employers have degree strictly greater
// than theta.
func (g *Graph) EmployersOver(theta int) int {
	n := 0
	for _, d := range g.degrees {
		if d > theta {
			n++
		}
	}
	return n
}

// EdgesRemovedByTruncation returns how many edges (jobs) a θ-truncation
// would delete: the total employment of employers with degree > theta.
func (g *Graph) EdgesRemovedByTruncation(theta int) int {
	n := 0
	for _, d := range g.degrees {
		if d > theta {
			n += d
		}
	}
	return n
}

// QuantileDegree returns the q-quantile (0 <= q <= 1) of the employer
// degree distribution.
func (g *Graph) QuantileDegree(q float64) int {
	if !(q >= 0 && q <= 1) {
		panic(fmt.Sprintf("bipartite: quantile %v out of [0,1]", q))
	}
	if len(g.degrees) == 0 {
		return 0
	}
	sorted := make([]int, len(g.degrees))
	copy(sorted, g.degrees)
	sort.Ints(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
