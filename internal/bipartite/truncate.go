package bipartite

import (
	"fmt"

	"repro/internal/table"
)

// TruncationResult describes the outcome of a θ-truncation projection.
type TruncationResult struct {
	// Theta is the degree bound applied.
	Theta int
	// Kept is the projected table containing only jobs at employers with
	// degree <= Theta.
	Kept *table.Table
	// RemovedEmployers is the number of employer nodes deleted.
	RemovedEmployers int
	// RemovedEdges is the number of job records deleted.
	RemovedEdges int
}

// Truncate performs the node-DP projection of Kasiviswanathan et al.
// (reference [32] in the paper): remove every employer whose degree
// exceeds theta, together with all its edges. Edge-counting queries on
// the projected table have node sensitivity theta, so they can be
// answered with Laplace(theta/ε) noise — at the cost of deleting every
// large establishment, which is precisely the bias the paper's Finding 6
// measures.
func Truncate(t *table.Table, theta int) (*TruncationResult, error) {
	if theta < 1 {
		return nil, fmt.Errorf("bipartite: truncation threshold must be >= 1, got %d", theta)
	}
	g, err := FromTable(t)
	if err != nil {
		return nil, err
	}
	removedEmployers := 0
	keep := make([]bool, g.NumEmployers())
	for e := range keep {
		if g.degrees[e] <= theta {
			keep[e] = true
		} else {
			removedEmployers++
		}
	}
	kept := t.Filter(func(row int) bool { return keep[t.Entity(row)] })
	return &TruncationResult{
		Theta:            theta,
		Kept:             kept,
		RemovedEmployers: removedEmployers,
		RemovedEdges:     t.NumRows() - kept.NumRows(),
	}, nil
}

// SensitivityAfterTruncation returns the node sensitivity of an
// edge-counting (marginal cell) query on the projected graph: theta,
// since adding or removing one employer changes at most theta edges.
func SensitivityAfterTruncation(theta int) float64 {
	if theta < 1 {
		panic(fmt.Sprintf("bipartite: truncation threshold must be >= 1, got %d", theta))
	}
	return float64(theta)
}
