package bipartite

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/table"
)

func jobTable(t *testing.T, degrees []int) *table.Table {
	t.Helper()
	s := table.NewSchema(table.NewDomain("place", "a", "b"))
	tab := table.New(s)
	for emp, d := range degrees {
		for j := 0; j < d; j++ {
			tab.AppendRow(int32(emp), emp%2)
		}
	}
	return tab
}

func TestFromTableDegrees(t *testing.T) {
	tab := jobTable(t, []int{3, 0, 7, 1})
	g, err := FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 11 {
		t.Errorf("edges = %d, want 11", g.NumEdges())
	}
	wantDeg := []int{3, 0, 7, 1}
	for e, want := range wantDeg {
		if got := g.Degree(e); got != want {
			t.Errorf("degree(%d) = %d, want %d", e, got, want)
		}
	}
	if g.MaxDegree() != 7 {
		t.Errorf("max degree = %d, want 7", g.MaxDegree())
	}
}

func TestFromTableRejectsAnonymous(t *testing.T) {
	s := table.NewSchema(table.NewDomain("x", "a"))
	tab := table.New(s)
	tab.AppendRow(-1, 0)
	if _, err := FromTable(tab); err == nil {
		t.Error("FromTable accepted a job with no employer")
	}
}

func TestDegreeHistogram(t *testing.T) {
	tab := jobTable(t, []int{3, 3, 7, 1, 1, 1})
	g, err := FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	degrees, counts := g.DegreeHistogram()
	want := map[int]int{1: 3, 3: 2, 7: 1}
	if len(degrees) != len(want) {
		t.Fatalf("histogram has %d degrees, want %d", len(degrees), len(want))
	}
	for i, d := range degrees {
		if counts[i] != want[d] {
			t.Errorf("count for degree %d = %d, want %d", d, counts[i], want[d])
		}
		if i > 0 && degrees[i-1] >= d {
			t.Error("histogram degrees not sorted")
		}
	}
}

func TestEmployersOverAndEdgesRemoved(t *testing.T) {
	tab := jobTable(t, []int{5, 10, 20, 2})
	g, err := FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.EmployersOver(9); got != 2 {
		t.Errorf("EmployersOver(9) = %d, want 2", got)
	}
	if got := g.EdgesRemovedByTruncation(9); got != 30 {
		t.Errorf("EdgesRemovedByTruncation(9) = %d, want 30", got)
	}
}

func TestQuantileDegree(t *testing.T) {
	tab := jobTable(t, []int{1, 2, 3, 4, 5})
	g, err := FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.QuantileDegree(0); got != 1 {
		t.Errorf("min degree = %d, want 1", got)
	}
	if got := g.QuantileDegree(1); got != 5 {
		t.Errorf("max degree = %d, want 5", got)
	}
	if got := g.QuantileDegree(0.5); got != 3 {
		t.Errorf("median degree = %d, want 3", got)
	}
}

func TestTruncateRemovesLargeEmployers(t *testing.T) {
	tab := jobTable(t, []int{5, 100, 3, 50})
	res, err := Truncate(tab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedEmployers != 2 {
		t.Errorf("removed employers = %d, want 2", res.RemovedEmployers)
	}
	if res.RemovedEdges != 150 {
		t.Errorf("removed edges = %d, want 150", res.RemovedEdges)
	}
	if res.Kept.NumRows() != 8 {
		t.Errorf("kept rows = %d, want 8", res.Kept.NumRows())
	}
	g, err := FromTable(res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 10 {
		t.Errorf("post-truncation max degree = %d > theta", g.MaxDegree())
	}
}

func TestTruncateNoOpWhenThetaLarge(t *testing.T) {
	tab := jobTable(t, []int{5, 3, 9})
	res, err := Truncate(tab, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedEmployers != 0 || res.RemovedEdges != 0 {
		t.Error("truncation with huge theta removed something")
	}
	if res.Kept.NumRows() != tab.NumRows() {
		t.Error("truncation with huge theta changed the table")
	}
}

func TestTruncateInvalidTheta(t *testing.T) {
	tab := jobTable(t, []int{1})
	if _, err := Truncate(tab, 0); err == nil {
		t.Error("Truncate(0) did not error")
	}
}

func TestTruncatePropertyDegreeBound(t *testing.T) {
	// Property: after truncation, every remaining employer has degree <= theta
	// and edges kept + removed = total.
	f := func(raw []uint8, thetaRaw uint8) bool {
		theta := int(thetaRaw)%20 + 1
		degrees := make([]int, len(raw))
		total := 0
		for i, r := range raw {
			degrees[i] = int(r) % 40
			total += degrees[i]
		}
		s := table.NewSchema(table.NewDomain("x", "a"))
		tab := table.New(s)
		for emp, d := range degrees {
			for j := 0; j < d; j++ {
				tab.AppendRow(int32(emp), 0)
			}
		}
		res, err := Truncate(tab, theta)
		if err != nil {
			return false
		}
		if res.Kept.NumRows()+res.RemovedEdges != total {
			return false
		}
		if res.Kept.NumRows() == 0 {
			return true
		}
		g, err := FromTable(res.Kept)
		if err != nil {
			return false
		}
		return g.MaxDegree() <= theta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTruncateOnLODESDistortsLargeEstablishments(t *testing.T) {
	// The Section 6 argument: small theta removes exactly the large
	// establishments whose preservation matters for economic statistics.
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(42))
	g, err := FromTable(d.WorkerFull)
	if err != nil {
		t.Fatal(err)
	}
	theta := 100
	res, err := Truncate(d.WorkerFull, theta)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedEmployers != g.EmployersOver(theta) {
		t.Errorf("removed %d employers, graph says %d exceed theta",
			res.RemovedEmployers, g.EmployersOver(theta))
	}
	if res.RemovedEdges == 0 {
		t.Error("no jobs removed: the synthetic data has no establishments above 100, skew too weak")
	}
	// The removed share of employment must exceed the removed share of
	// establishments, because truncation targets the big ones.
	edgeShare := float64(res.RemovedEdges) / float64(d.NumJobs())
	empShare := float64(res.RemovedEmployers) / float64(d.NumEstablishments())
	if edgeShare <= empShare {
		t.Errorf("removed edge share %v <= employer share %v: truncation not hitting the tail",
			edgeShare, empShare)
	}
}

func TestSensitivityAfterTruncation(t *testing.T) {
	if got := SensitivityAfterTruncation(50); got != 50 {
		t.Errorf("sensitivity = %v, want 50", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SensitivityAfterTruncation(0) did not panic")
		}
	}()
	SensitivityAfterTruncation(0)
}
