package mech

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/table"
)

// truncTable builds a job table with one attribute and the given employer
// sizes, all in the same cell.
func truncTable(sizes []int) (*table.Table, *table.Query) {
	s := table.NewSchema(table.NewDomain("place", "a"))
	tab := table.New(s)
	for emp, n := range sizes {
		for j := 0; j < n; j++ {
			tab.AppendRow(int32(emp), 0)
		}
	}
	return tab, table.MustNewQuery(s, "place")
}

func TestTruncatedLaplaceRemovesLargeEstablishments(t *testing.T) {
	tab, q := truncTable([]int{5, 8, 2000})
	m, err := NewTruncatedLaplace(4.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	noisy, res, err := m.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedEmployers != 1 || res.RemovedEdges != 2000 {
		t.Fatalf("truncation removed %d employers / %d edges, want 1/2000",
			res.RemovedEmployers, res.RemovedEdges)
	}
	// True count 2013, truncated count 13. The release must be near 13,
	// demonstrating the ~2000 bias that Finding 6 attributes to truncation.
	if math.Abs(noisy[0]-13) > 300 {
		t.Errorf("release = %v, want near truncated count 13", noisy[0])
	}
}

func TestTruncatedLaplaceBiasDoesNotShrinkWithEps(t *testing.T) {
	// Finding 6: increasing eps does not reduce truncation bias.
	tab, q := truncTable([]int{10, 3000})
	const trials = 200
	biasAt := func(eps float64) float64 {
		m, err := NewTruncatedLaplace(eps, 50)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		parent := dist.NewStreamFromSeed(2)
		for i := 0; i < trials; i++ {
			noisy, _, err := m.ReleaseMarginal(tab, q, parent.SplitIndex("t", i))
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(noisy[0] - 3010) // true count
		}
		return sum / trials
	}
	lo, hi := biasAt(1), biasAt(16)
	// Both are dominated by the 3000-job truncation bias.
	if lo < 2900 || hi < 2900 {
		t.Errorf("errors %v (eps=1) and %v (eps=16) should both be ~3000", lo, hi)
	}
	if math.Abs(lo-hi)/lo > 0.05 {
		t.Errorf("error changed from %v to %v with eps; bias should dominate", lo, hi)
	}
}

func TestTruncatedLaplaceNoBiasWhenThetaLarge(t *testing.T) {
	tab, q := truncTable([]int{10, 20, 30})
	m, err := NewTruncatedLaplace(2.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	parent := dist.NewStreamFromSeed(3)
	var sum float64
	for i := 0; i < trials; i++ {
		noisy, res, err := m.ReleaseMarginal(tab, q, parent.SplitIndex("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.RemovedEdges != 0 {
			t.Fatal("unexpected truncation")
		}
		sum += noisy[0]
	}
	mean := sum / trials
	// Unbiased, but noise scale theta/eps = 500 is enormous relative to the
	// count of 60 — the other horn of the truncation dilemma.
	if math.Abs(mean-60) > 150 {
		t.Errorf("mean release = %v, want ~60", mean)
	}
}

func TestTruncatedLaplaceZeroValue(t *testing.T) {
	var zero TruncatedLaplace
	tab, q := truncTable([]int{1})
	if _, _, err := zero.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("zero-value TruncatedLaplace released")
	}
}

func TestTruncatedLaplaceDeterministic(t *testing.T) {
	tab, q := truncTable([]int{5, 500, 7})
	m, err := NewTruncatedLaplace(1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := m.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.ReleaseMarginal(tab, q, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TruncatedLaplace not deterministic for a fixed stream")
		}
	}
}
