package mech

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// LogLaplace is Algorithm 1 of the paper: add Laplace noise to the
// logarithm of the (shifted) count. The count query has unbounded global
// sensitivity under α-neighbors (a neighbor can change a count of x by
// α·x), but ln(n + γ) with γ = 1/α has global sensitivity ln(1+α), so
//
//	ñ = e^{ln(n+γ) + η} − γ,   η ~ Laplace(2·ln(1+α)/ε)
//
// satisfies (α,ε)-ER-EE privacy for establishment-attribute queries and
// weak (α,ε)-ER-EE privacy for queries that also involve worker
// attributes (Theorem 8.1).
//
// The mechanism is multiplicative and therefore biased (Lemma 8.2):
// E[ñ] + γ = (n+γ)/(1−λ²) when λ = 2·ln(1+α)/ε < 1, and the expectation
// is unbounded when λ ≥ 1. Section 10 omits Log-Laplace results whenever
// the expectation is unbounded; ExpectationBounded exposes that predicate.
type LogLaplace struct {
	Alpha, Eps float64
}

// NewLogLaplace validates the parameters and returns the mechanism.
func NewLogLaplace(alpha, eps float64) (LogLaplace, error) {
	if !(alpha > 0) {
		return LogLaplace{}, fmt.Errorf("mech: LogLaplace requires alpha > 0, got %v", alpha)
	}
	if !(eps > 0) {
		return LogLaplace{}, fmt.Errorf("mech: LogLaplace requires eps > 0, got %v", eps)
	}
	return LogLaplace{Alpha: alpha, Eps: eps}, nil
}

// Name identifies the mechanism.
func (m LogLaplace) Name() string {
	return fmt.Sprintf("log-laplace(alpha=%g,eps=%g)", m.Alpha, m.Eps)
}

// Gamma returns the shift γ = 1/α.
func (m LogLaplace) Gamma() float64 { return 1 / m.Alpha }

// Lambda returns the log-space noise scale λ = 2·ln(1+α)/ε.
func (m LogLaplace) Lambda() float64 { return 2 * math.Log(1+m.Alpha) / m.Eps }

// ExpectationBounded reports whether E[ñ] is finite, i.e. λ < 1
// (Lemma 8.2).
func (m LogLaplace) ExpectationBounded() bool { return m.Lambda() < 1 }

// RelativeErrorBounded reports whether the expected squared relative
// error bound of Theorem 8.3 applies, i.e. λ < 1/2.
func (m LogLaplace) RelativeErrorBounded() bool { return m.Lambda() < 0.5 }

// ReleaseCell applies Algorithm 1 to the cell. x_v is not used: the
// mechanism calibrates to global (log-space) sensitivity, not smooth
// sensitivity.
func (m LogLaplace) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if !(m.Alpha > 0) || !(m.Eps > 0) {
		return 0, fmt.Errorf("mech: LogLaplace not initialized (alpha=%v eps=%v)", m.Alpha, m.Eps)
	}
	gamma := m.Gamma()
	eta := dist.NewLaplace(m.Lambda()).Sample(s)
	return math.Exp(math.Log(in.Count+gamma)+eta) - gamma, nil
}

// releaseCellRange is the batch path: γ, λ and the log-space Laplace are
// hoisted out of the cell loop and the noise is batch-sampled from the
// per-cell stream family — bit-identical to per-cell ReleaseCell.
func (m LogLaplace) releaseCellRange(out []float64, cells []CellInput, parent *dist.Stream, base int, noise []float64) error {
	if !(m.Alpha > 0) || !(m.Eps > 0) {
		return fmt.Errorf("mech: LogLaplace not initialized (alpha=%v eps=%v)", m.Alpha, m.Eps)
	}
	gamma := m.Gamma()
	dist.FillSplit(noise, dist.NewLaplace(m.Lambda()), parent, "cell", base)
	for i := range out {
		out[i] = math.Exp(math.Log(cells[i].Count+gamma)+noise[i]) - gamma
	}
	return nil
}

// Bias returns E[ñ] − n for a true count n (from Lemma 8.2):
// (n+γ)·λ²/(1−λ²) when λ < 1, +Inf otherwise. The mechanism
// overestimates in expectation because e^η is convex.
func (m LogLaplace) Bias(n float64) float64 {
	lam := m.Lambda()
	if lam >= 1 {
		return math.Inf(1)
	}
	return (n + m.Gamma()) * lam * lam / (1 - lam*lam)
}

// ExpectedL1 returns the exact expected L1 error for a cell with true
// count n: E|ñ − n| = (n+γ)·E|e^η − 1| = (n+γ)·λ/(1−λ²) for λ < 1
// (direct integration against the Laplace density), and +Inf otherwise.
func (m LogLaplace) ExpectedL1(in CellInput) float64 {
	lam := m.Lambda()
	if lam >= 1 {
		return expInvalid
	}
	return (in.Count + m.Gamma()) * lam / (1 - lam*lam)
}

// ExpectedSquaredRelErrBound returns the Theorem 8.3 upper bound on the
// expected squared relative error, valid when λ < 1/2; +Inf otherwise.
func (m LogLaplace) ExpectedSquaredRelErrBound() float64 {
	lam := m.Lambda()
	if lam >= 0.5 {
		return math.Inf(1)
	}
	l2 := lam * lam
	g := m.Gamma()
	return (2*l2 + 4*l2*l2) * (1 + g) * (1 + g) / ((1 - 4*l2) * (1 - l2))
}

// ExactSquaredRelErrShifted returns the exact expected squared relative
// error of the shifted variables ((y−ỹ)/y)² with y = n+γ, which the
// Theorem 8.3 proof computes in closed form: (2λ²+4λ⁴)/((1−4λ²)(1−λ²))
// for λ < 1/2.
func (m LogLaplace) ExactSquaredRelErrShifted() float64 {
	lam := m.Lambda()
	if lam >= 0.5 {
		return math.Inf(1)
	}
	l2 := lam * lam
	return (2*l2 + 4*l2*l2) / ((1 - 4*l2) * (1 - l2))
}

// Debias returns the bias-corrected estimate (ñ+γ)·(1−λ²) − γ, an
// extension beyond the paper: by Lemma 8.2 the corrected estimator is
// unbiased whenever λ < 1. Debiasing is post-processing, so privacy is
// unaffected.
func (m LogLaplace) Debias(released float64) float64 {
	lam := m.Lambda()
	if lam >= 1 {
		return released
	}
	g := m.Gamma()
	return (released+g)*(1-lam*lam) - g
}
