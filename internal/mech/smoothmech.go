package mech

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/smooth"
)

// SmoothGamma is Algorithm 2 of the paper: the generic smooth-sensitivity
// mechanism of Theorem 8.4 instantiated with the generalized-Cauchy noise
// h(z) ∝ 1/(1+z⁴) and the budget split ε₂ = 5·ln(1+α), ε₁ = ε − ε₂.
//
// Validity requires α+1 < e^{ε/5} (otherwise ε₁ ≤ 0). Within the validity
// region the release is
//
//	ñ = n + S*_{v, ε₂/5}(x) / (ε₁/5) · η,   η ~ h,
//
// with S*_{v,b}(x) = max(x_v·α, 1) by Lemma 8.5. The mechanism is
// unbiased with expected L1 error O(x_v·α/ε + 1/ε) (Lemma 8.8).
type SmoothGamma struct {
	Alpha, Eps float64

	split smooth.Split
	noise smooth.GenCauchyNoise
}

// NewSmoothGamma validates α+1 < e^{ε/5} and returns the mechanism.
func NewSmoothGamma(alpha, eps float64) (SmoothGamma, error) {
	split, err := smooth.GammaSplit(eps, alpha)
	if err != nil {
		return SmoothGamma{}, err
	}
	return SmoothGamma{Alpha: alpha, Eps: eps, split: split}, nil
}

// Name identifies the mechanism.
func (m SmoothGamma) Name() string {
	return fmt.Sprintf("smooth-gamma(alpha=%g,eps=%g)", m.Alpha, m.Eps)
}

// Split exposes the ε₁/ε₂ budget split, for the ablation benchmarks.
func (m SmoothGamma) Split() smooth.Split { return m.split }

// ReleaseCell applies Algorithm 2 to the cell.
func (m SmoothGamma) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if !(m.split.A > 0) {
		return 0, fmt.Errorf("mech: SmoothGamma not initialized; use NewSmoothGamma")
	}
	sens, err := smooth.Sensitivity(in.MaxContribution, m.Alpha, m.split.B)
	if err != nil {
		return 0, err
	}
	return smooth.Release(in.Count, sens, m.split, m.noise, s), nil
}

// releaseCellRange is the batch path: the validity check runs once for
// the chunk (smooth-sensitivity boundedness depends only on α and b,
// never on the cell), the generalized-Cauchy noise is batch-sampled
// from the per-cell stream family, and each cell scales it by its own
// smooth sensitivity — bit-identical to per-cell ReleaseCell. The
// invariant reciprocal 1/a is hoisted out of the cell loop; the scalar
// smooth.Release combines its scale the same reciprocal-first way, so
// hoisting does not change a single bit of output.
func (m SmoothGamma) releaseCellRange(out []float64, cells []CellInput, parent *dist.Stream, base int, noise []float64) error {
	if !(m.split.A > 0) {
		return fmt.Errorf("mech: SmoothGamma not initialized; use NewSmoothGamma")
	}
	if _, err := smooth.Sensitivity(0, m.Alpha, m.split.B); err != nil {
		return err
	}
	dist.FillSplit(noise, dist.GenCauchy{}, parent, "cell", base)
	smoothScaleCells(out, cells, noise, m.Alpha, 1/m.split.A)
	return nil
}

// smoothScaleCells is the per-cell tail both smooth batch paths share:
// the inlined local sensitivity max(x_v·α, 1) — with the scalar path's
// negative-x_v panic relayed, so corrupt input fails as loudly as
// ReleaseCell — and the reciprocal-first scale-and-add whose operation
// order smooth.Release mirrors exactly (the bit-identity contract
// lives here, in one place).
func smoothScaleCells(out []float64, cells []CellInput, noise []float64, alpha, invA float64) {
	for i := range out {
		xv := cells[i].MaxContribution
		if xv < 0 {
			smooth.LocalSensitivity(xv, alpha) // panics on negative x_v
		}
		sens := float64(xv) * alpha
		if sens < 1 {
			sens = 1
		}
		out[i] = cells[i].Count + sens*invA*noise[i]
	}
}

// ExpectedL1 returns the exact expected L1 error for the cell:
// S*/a · E|η| = max(x_v·α, 1)·5/ε₁ · (1/√2).
func (m SmoothGamma) ExpectedL1(in CellInput) float64 {
	if !(m.split.A > 0) {
		return expInvalid
	}
	sens, err := smooth.Sensitivity(in.MaxContribution, m.Alpha, m.split.B)
	if err != nil {
		return expInvalid
	}
	return smooth.ExpectedL1(sens, m.split, m.noise)
}

// SmoothGammaWithSplit returns the mechanism with an explicit ε₁/ε₂
// split instead of Algorithm 2's default. The split must keep
// ε₁+ε₂ ≤ ε, ε₁ > 0, and e^{ε₂/5} ≥ 1+α. This is the knob the budget-split
// ablation benchmark sweeps to show the paper's default (smallest valid
// ε₂) minimizes error.
func SmoothGammaWithSplit(alpha, eps, eps2 float64) (SmoothGamma, error) {
	if !(eps > 0) || !(alpha > 0) {
		return SmoothGamma{}, fmt.Errorf("mech: SmoothGamma requires alpha, eps > 0")
	}
	eps1 := eps - eps2
	if !(eps1 > 0) {
		return SmoothGamma{}, fmt.Errorf("mech: split eps2=%v leaves no sliding budget at eps=%v", eps2, eps)
	}
	n := smooth.GenCauchyNoise{}
	split := smooth.Split{Eps1: eps1, Eps2: eps2, A: n.SlideBound(eps1), B: n.DilateBound(eps2)}
	if _, err := smooth.Sensitivity(1, alpha, split.B); err != nil {
		return SmoothGamma{}, fmt.Errorf("mech: split eps2=%v too small: %w", eps2, err)
	}
	return SmoothGamma{Alpha: alpha, Eps: eps, split: split}, nil
}

// SmoothLaplace is Algorithm 3 of the paper: the smooth-sensitivity
// mechanism with unit Laplace noise and the Lemma 9.1 admissibility
// parameters a = ε/2, b = ε/(2·ln(1/δ)). It satisfies approximate
// (α,ε,δ)-ER-EE privacy; validity requires α+1 ≤ e^{ε/(2·ln(1/δ))}
// (Table 2 tabulates the induced minimum ε).
//
// The release is ñ = n + S*_{v,b}(x)/(ε/2) · η with η ~ Laplace(1); the
// mechanism is unbiased with expected L1 error O(x_v·α/ε + 1/ε)
// (Lemma 9.3). Note the error does not depend on δ — δ only gates which
// (α,ε) pairs are allowed.
type SmoothLaplace struct {
	Alpha, Eps, Delta float64

	split smooth.Split
	noise smooth.LaplaceNoise
}

// NewSmoothLaplace validates the parameters and returns the mechanism.
func NewSmoothLaplace(alpha, eps, delta float64) (SmoothLaplace, error) {
	split, err := smooth.LaplaceSplit(eps, delta, alpha)
	if err != nil {
		return SmoothLaplace{}, err
	}
	return SmoothLaplace{
		Alpha: alpha, Eps: eps, Delta: delta,
		split: split, noise: smooth.NewLaplaceNoise(delta),
	}, nil
}

// Name identifies the mechanism.
func (m SmoothLaplace) Name() string {
	return fmt.Sprintf("smooth-laplace(alpha=%g,eps=%g,delta=%g)", m.Alpha, m.Eps, m.Delta)
}

// Split exposes the admissibility parameters.
func (m SmoothLaplace) Split() smooth.Split { return m.split }

// ReleaseCell applies Algorithm 3 to the cell.
func (m SmoothLaplace) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if !(m.split.A > 0) {
		return 0, fmt.Errorf("mech: SmoothLaplace not initialized; use NewSmoothLaplace")
	}
	sens, err := smooth.Sensitivity(in.MaxContribution, m.Alpha, m.split.B)
	if err != nil {
		return 0, err
	}
	return smooth.Release(in.Count, sens, m.split, m.noise, s), nil
}

// releaseCellRange is the batch path for Algorithm 3; see
// SmoothGamma.releaseCellRange — identical structure (hoisted 1/a,
// inlined local sensitivity) with unit Laplace noise.
func (m SmoothLaplace) releaseCellRange(out []float64, cells []CellInput, parent *dist.Stream, base int, noise []float64) error {
	if !(m.split.A > 0) {
		return fmt.Errorf("mech: SmoothLaplace not initialized; use NewSmoothLaplace")
	}
	if _, err := smooth.Sensitivity(0, m.Alpha, m.split.B); err != nil {
		return err
	}
	dist.FillSplit(noise, dist.NewLaplace(1), parent, "cell", base)
	smoothScaleCells(out, cells, noise, m.Alpha, 1/m.split.A)
	return nil
}

// ExpectedL1 returns the exact expected L1 error for the cell:
// S*/(ε/2)·1 = 2·max(x_v·α, 1)/ε.
func (m SmoothLaplace) ExpectedL1(in CellInput) float64 {
	if !(m.split.A > 0) {
		return expInvalid
	}
	sens, err := smooth.Sensitivity(in.MaxContribution, m.Alpha, m.split.B)
	if err != nil {
		return expInvalid
	}
	return smooth.ExpectedL1(sens, m.split, m.noise)
}
