package mech

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// integrateDensity numerically integrates a release density over a wide
// range; every density must integrate to ~1.
func integrateDensity(pdf func(float64) float64, lo, hi, step float64) float64 {
	sum := 0.0
	for x := lo; x < hi; x += step {
		sum += pdf(x) * step
	}
	return sum
}

func TestPureLaplaceDensityIntegrates(t *testing.T) {
	m, err := NewPureLaplace(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 50}
	got := integrateDensity(func(o float64) float64 { return m.ReleaseDensity(in, o) }, 0, 100, 0.01)
	if math.Abs(got-1) > 1e-3 {
		t.Errorf("density integrates to %v", got)
	}
}

func TestLogLaplaceDensityIntegrates(t *testing.T) {
	m, err := NewLogLaplace(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100}
	pdf := func(o float64) float64 { return m.ReleaseDensity(in, o) }
	got := integrateDensity(pdf, -m.Gamma()+1e-9, 3000, 0.01)
	if math.Abs(got-1) > 5e-3 {
		t.Errorf("density integrates to %v", got)
	}
	if m.ReleaseDensity(in, -m.Gamma()-1) != 0 {
		t.Error("density positive outside support")
	}
}

func TestSmoothDensitiesIntegrate(t *testing.T) {
	sg, err := NewSmoothGamma(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100, MaxContribution: 40}
	for name, pdf := range map[string]func(float64) float64{
		"smooth-gamma":   func(o float64) float64 { return sg.ReleaseDensity(in, o) },
		"smooth-laplace": func(o float64) float64 { return sl.ReleaseDensity(in, o) },
	} {
		got := integrateDensity(pdf, -2000, 2200, 0.05)
		if math.Abs(got-1) > 5e-3 {
			t.Errorf("%s density integrates to %v", name, got)
		}
	}
}

func TestDensityMatchesSampling(t *testing.T) {
	// Histogram check: empirical frequencies track the analytic density.
	m, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100, MaxContribution: 40}
	s := dist.NewStreamFromSeed(1)
	const n = 400000
	binW := 2.0
	bins := map[int]int{}
	for i := 0; i < n; i++ {
		v, err := m.ReleaseCell(in, s)
		if err != nil {
			t.Fatal(err)
		}
		bins[int(math.Floor(v/binW))]++
	}
	// Noise scale is 4 here; probe within ~2 scales of the center where
	// the 400k-sample histogram is statistically tight.
	for _, center := range []float64{94, 100, 107} {
		bin := int(math.Floor(center / binW))
		empirical := float64(bins[bin]) / n / binW
		analytic := m.ReleaseDensity(in, float64(bin)*binW+binW/2)
		if math.Abs(empirical-analytic)/analytic > 0.08 {
			t.Errorf("at %v: empirical density %v vs analytic %v", center, empirical, analytic)
		}
	}
}

func TestDensityMechanismInterfaces(t *testing.T) {
	// All four parametric mechanisms expose densities.
	var _ DensityMechanism = PureLaplace{Eps: 1, Sensitivity: 1}
	ll, _ := NewLogLaplace(0.1, 2)
	var _ DensityMechanism = ll
	sg, _ := NewSmoothGamma(0.1, 2)
	var _ DensityMechanism = sg
	sl, _ := NewSmoothLaplace(0.1, 2, 0.05)
	var _ DensityMechanism = sl
}

func TestNoiseQuantileSymmetry(t *testing.T) {
	sg, err := NewSmoothGamma(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100, MaxContribution: 40}
	qLo, err := NoiseQuantile(sg, in, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	qHi, err := NoiseQuantile(sg, in, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qLo+qHi) > 1e-9 {
		t.Errorf("symmetric noise quantiles not mirrored: %v vs %v", qLo, qHi)
	}
	if qHi <= 0 {
		t.Errorf("upper quantile %v should be positive", qHi)
	}
}

func TestNoiseQuantileInvalid(t *testing.T) {
	sl, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NoiseQuantile(sl, CellInput{}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NoiseQuantile(Clamped{Inner: sl}, CellInput{}, 0.5); err == nil {
		t.Error("wrapper without quantile form accepted")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 90% interval for each mechanism.
	in := CellInput{Count: 500, MaxContribution: 100}
	sl, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSmoothGamma(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLogLaplace(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]CellMechanism{
		"smooth-laplace": sl, "smooth-gamma": sg, "log-laplace": ll,
	} {
		s := dist.NewStreamFromSeed(77)
		const n = 20000
		covered := 0
		for i := 0; i < n; i++ {
			rel, err := m.ReleaseCell(in, s)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi, err := ConfidenceInterval(m, in, rel, 0.10)
			if err != nil {
				t.Fatal(err)
			}
			if lo <= in.Count && in.Count <= hi {
				covered++
			}
		}
		rate := float64(covered) / n
		if math.Abs(rate-0.90) > 0.02 {
			t.Errorf("%s: 90%% interval covers %v", name, rate)
		}
	}
}

func TestConfidenceIntervalInvalidLevel(t *testing.T) {
	sl, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfidenceInterval(sl, CellInput{}, 0, 0); err == nil {
		t.Error("level=0 accepted")
	}
	if _, _, err := ConfidenceInterval(sl, CellInput{}, 0, 1); err == nil {
		t.Error("level=1 accepted")
	}
}

func TestLogLaplaceIntervalOutsideSupport(t *testing.T) {
	ll, err := NewLogLaplace(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfidenceInterval(ll, CellInput{}, -ll.Gamma()-1, 0.1); err == nil {
		t.Error("release outside support accepted")
	}
}

func TestDensityPrivacyRatioLogLaplace(t *testing.T) {
	// Theorem 8.1 checked analytically through the densities: for
	// single-establishment counts x and (1+alpha)x (strong alpha-neighbors),
	// the release-density ratio is bounded by e^eps everywhere.
	alpha, eps := 0.1, 1.0
	m, err := NewLogLaplace(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	x := CellInput{Count: 1000, MaxContribution: 1000}
	y := CellInput{Count: 1100, MaxContribution: 1100}
	bound := math.Exp(eps) * (1 + 1e-9)
	for o := -m.Gamma() + 0.5; o < 5000; o += 7.3 {
		px, py := m.ReleaseDensity(x, o), m.ReleaseDensity(y, o)
		if px == 0 || py == 0 {
			continue
		}
		if px/py > bound || py/px > bound {
			t.Fatalf("density ratio %v at o=%v exceeds e^eps", math.Max(px/py, py/px), o)
		}
	}
}

func TestDensityPrivacyRatioPlusOneNeighbor(t *testing.T) {
	// The other neighbor type: |E'| = |E|+1 (one added worker).
	alpha, eps := 0.1, 1.0
	m, err := NewLogLaplace(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	x := CellInput{Count: 3, MaxContribution: 3}
	y := CellInput{Count: 4, MaxContribution: 4}
	bound := math.Exp(eps) * (1 + 1e-9)
	for o := -m.Gamma() + 0.1; o < 100; o += 0.37 {
		px, py := m.ReleaseDensity(x, o), m.ReleaseDensity(y, o)
		if px == 0 || py == 0 {
			continue
		}
		if px/py > bound || py/px > bound {
			t.Fatalf("density ratio %v at o=%v exceeds e^eps", math.Max(px/py, py/px), o)
		}
	}
}

func TestNoiseQuantilePureLaplace(t *testing.T) {
	m, err := NewPureLaplace(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NoiseQuantile(m, CellInput{}, 0.975)
	if err != nil {
		t.Fatal(err)
	}
	// Laplace(0.5) 97.5% quantile = -0.5*ln(2*0.025) = 0.5*ln(20).
	want := 0.5 * math.Log(20)
	if math.Abs(q-want) > 1e-12 {
		t.Errorf("quantile = %v, want %v", q, want)
	}
}

func TestNoiseQuantileLogLaplaceMonotone(t *testing.T) {
	m, err := NewLogLaplace(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100}
	prev := math.Inf(-1)
	for p := 0.1; p < 1; p += 0.1 {
		q, err := NoiseQuantile(m, in, p)
		if err != nil {
			t.Fatal(err)
		}
		if q <= prev {
			t.Fatalf("log-laplace noise quantile not increasing at p=%v", p)
		}
		prev = q
	}
}

func TestDensityPanicsOnUninitialized(t *testing.T) {
	for name, fn := range map[string]func(){
		"pure-laplace":   func() { (PureLaplace{}).ReleaseDensity(CellInput{}, 0) },
		"smooth-gamma":   func() { (SmoothGamma{}).ReleaseDensity(CellInput{}, 0) },
		"smooth-laplace": func() { (SmoothLaplace{}).ReleaseDensity(CellInput{}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero-value density did not panic", name)
				}
			}()
			fn()
		}()
	}
}
