package mech

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/dist"
	"repro/internal/table"
)

// TruncatedLaplace is the node-differential-privacy baseline of Section 6
// and Finding 6: project the employer–employee graph so no establishment
// exceeds θ employees (removing every larger establishment entirely),
// then answer each marginal cell with Laplace(θ/ε) noise — the projected
// query has node sensitivity θ.
//
// Unlike the cell mechanisms, truncation changes the counts themselves,
// so the mechanism operates on a whole marginal: it filters the job
// table, recomputes the marginal, and perturbs the truncated counts. The
// error therefore has two components the paper's Finding 6 teases apart:
// bias from deleting large establishments (independent of ε) and Laplace
// noise (shrinking with ε).
type TruncatedLaplace struct {
	Eps   float64
	Theta int
}

// NewTruncatedLaplace validates the parameters and returns the mechanism.
func NewTruncatedLaplace(eps float64, theta int) (TruncatedLaplace, error) {
	if !(eps > 0) {
		return TruncatedLaplace{}, fmt.Errorf("mech: TruncatedLaplace requires eps > 0, got %v", eps)
	}
	if theta < 1 {
		return TruncatedLaplace{}, fmt.Errorf("mech: TruncatedLaplace requires theta >= 1, got %d", theta)
	}
	return TruncatedLaplace{Eps: eps, Theta: theta}, nil
}

// Name identifies the mechanism.
func (m TruncatedLaplace) Name() string {
	return fmt.Sprintf("truncated-laplace(eps=%g,theta=%d)", m.Eps, m.Theta)
}

// ReleaseMarginal truncates the job table at θ, recomputes the marginal,
// and adds Laplace(θ/ε) noise to every cell. It also returns the
// truncation summary so callers can report the bias source.
func (m TruncatedLaplace) ReleaseMarginal(t *table.Table, q *table.Query, s *dist.Stream) ([]float64, *bipartite.TruncationResult, error) {
	if !(m.Eps > 0) || m.Theta < 1 {
		return nil, nil, fmt.Errorf("mech: TruncatedLaplace not initialized; use NewTruncatedLaplace")
	}
	res, err := bipartite.Truncate(t, m.Theta)
	if err != nil {
		return nil, nil, err
	}
	truncated := table.Compute(res.Kept, q)
	// Batch-sample the per-cell noise into the output, then shift by the
	// truncated counts: cell c still draws from SplitIndex("trunc-cell", c),
	// so the release is bit-identical to the scalar loop this replaces.
	noisy := make([]float64, q.NumCells())
	scale := bipartite.SensitivityAfterTruncation(m.Theta) / m.Eps
	dist.FillSplit(noisy, dist.NewLaplace(scale), s, "trunc-cell", 0)
	for cell := range noisy {
		noisy[cell] = float64(truncated.Counts[cell]) + noisy[cell]
	}
	return noisy, res, nil
}

// NoiseExpectedL1 returns the per-cell expected L1 error from the Laplace
// component alone, θ/ε. The truncation bias comes on top and depends on
// the data, not the mechanism.
func (m TruncatedLaplace) NoiseExpectedL1() float64 {
	return float64(m.Theta) / m.Eps
}

// Clamped wraps a cell mechanism and truncates its releases at zero.
// Employment counts are non-negative, and clamping is post-processing, so
// the wrapped mechanism's privacy guarantee is preserved while L1 error
// can only shrink.
type Clamped struct {
	Inner CellMechanism
}

// Name identifies the wrapper and its inner mechanism.
func (c Clamped) Name() string { return "clamped(" + c.Inner.Name() + ")" }

// ReleaseCell releases through the inner mechanism and clamps at zero.
func (c Clamped) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	v, err := c.Inner.ReleaseCell(in, s)
	if err != nil {
		return 0, err
	}
	return clampNonNegative(v), nil
}

// ExpectedL1 returns the inner mechanism's expected L1 error, which upper
// bounds the clamped error.
func (c Clamped) ExpectedL1(in CellInput) float64 { return c.Inner.ExpectedL1(in) }

// Rounded wraps a cell mechanism and rounds its releases to the nearest
// non-negative integer, matching the integer counts agencies actually
// publish. Rounding is post-processing and preserves privacy.
type Rounded struct {
	Inner CellMechanism
}

// Name identifies the wrapper and its inner mechanism.
func (r Rounded) Name() string { return "rounded(" + r.Inner.Name() + ")" }

// ReleaseCell releases through the inner mechanism, clamps at zero and
// rounds to an integer.
func (r Rounded) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	v, err := r.Inner.ReleaseCell(in, s)
	if err != nil {
		return 0, err
	}
	v = clampNonNegative(v)
	return float64(int64(v + 0.5)), nil
}

// ExpectedL1 returns the inner expected error plus the worst-case
// rounding error of 1/2.
func (r Rounded) ExpectedL1(in CellInput) float64 { return r.Inner.ExpectedL1(in) + 0.5 }
