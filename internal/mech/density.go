package mech

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/smooth"
)

// DensityMechanism is a cell mechanism whose released value has a known
// probability density given the input. Densities are what make the
// Pufferfish verification in internal/pufferfish possible: the privacy
// definitions bound ratios of release densities across neighboring
// inputs, and with closed forms those ratios can be checked directly
// instead of estimated from samples.
type DensityMechanism interface {
	CellMechanism
	// ReleaseDensity returns the pdf of the released value at o for a
	// cell with the given input.
	ReleaseDensity(in CellInput, o float64) float64
}

// ReleaseDensity for the Laplace mechanism: the released value is
// count + Laplace(Sensitivity/ε), a location shift of the Laplace
// density.
func (m PureLaplace) ReleaseDensity(in CellInput, o float64) float64 {
	if !(m.Eps > 0) || !(m.Sensitivity > 0) {
		panic("mech: Laplace mechanism not initialized")
	}
	return dist.NewLaplace(m.Sensitivity / m.Eps).PDF(o - in.Count)
}

// ReleaseDensity for Log-Laplace: the release is (n+γ)·e^η − γ with
// η ~ Laplace(λ), so by change of variables the density at o > −γ is
// Laplace_λ(ln((o+γ)/(n+γ))) / (o+γ), and 0 for o ≤ −γ.
func (m LogLaplace) ReleaseDensity(in CellInput, o float64) float64 {
	gamma := m.Gamma()
	if o <= -gamma {
		return 0
	}
	eta := math.Log((o + gamma) / (in.Count + gamma))
	return dist.NewLaplace(m.Lambda()).PDF(eta) / (o + gamma)
}

// scaleFor returns the noise scale S*/a the smooth mechanisms apply to a
// cell, or an error outside the validity region.
func smoothScale(alpha float64, split smooth.Split, in CellInput) (float64, error) {
	sens, err := smooth.Sensitivity(in.MaxContribution, alpha, split.B)
	if err != nil {
		return 0, err
	}
	return sens / split.A, nil
}

// ReleaseDensity for Smooth Gamma: a location-scale transform of the
// generalized-Cauchy density, with scale S*(x)/a.
func (m SmoothGamma) ReleaseDensity(in CellInput, o float64) float64 {
	if !(m.split.A > 0) {
		panic("mech: SmoothGamma not initialized; use NewSmoothGamma")
	}
	scale, err := smoothScale(m.Alpha, m.split, in)
	if err != nil {
		panic(fmt.Sprintf("mech: %v", err))
	}
	return dist.GenCauchy{}.PDF((o-in.Count)/scale) / scale
}

// ReleaseDensity for Smooth Laplace: a location-scale transform of the
// unit Laplace density, with scale S*(x)/(ε/2).
func (m SmoothLaplace) ReleaseDensity(in CellInput, o float64) float64 {
	if !(m.split.A > 0) {
		panic("mech: SmoothLaplace not initialized; use NewSmoothLaplace")
	}
	scale, err := smoothScale(m.Alpha, m.split, in)
	if err != nil {
		panic(fmt.Sprintf("mech: %v", err))
	}
	return dist.NewLaplace(1).PDF((o-in.Count)/scale) / scale
}

// NoiseQuantile returns the p-quantile of a mechanism's noise for the
// given cell, enabling confidence intervals on releases:
// [release + NoiseQuantile(in, level/2), release + NoiseQuantile(in, 1-level/2)]
// covers the true count with probability 1-level (for the unbiased
// mechanisms; Log-Laplace intervals are quantile-exact but asymmetric
// around a biased center).
func NoiseQuantile(m CellMechanism, in CellInput, p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("mech: quantile requires p in (0,1), got %v", p)
	}
	switch mm := m.(type) {
	case PureLaplace:
		return dist.NewLaplace(mm.Sensitivity / mm.Eps).Quantile(p), nil
	case LogLaplace:
		// Quantiles transform through the monotone release map.
		gamma := mm.Gamma()
		eta := dist.NewLaplace(mm.Lambda()).Quantile(p)
		return (in.Count+gamma)*math.Exp(eta) - gamma - in.Count, nil
	case SmoothGamma:
		scale, err := smoothScale(mm.Alpha, mm.split, in)
		if err != nil {
			return 0, err
		}
		return dist.GenCauchy{}.Quantile(p) * scale, nil
	case SmoothLaplace:
		scale, err := smoothScale(mm.Alpha, mm.split, in)
		if err != nil {
			return 0, err
		}
		return dist.NewLaplace(1).Quantile(p) * scale, nil
	}
	return 0, fmt.Errorf("mech: no quantile form for %T", m)
}

// ConfidenceInterval returns a (1-level) interval for the true count
// given a released value, by inverting the noise quantiles. For the
// additive mechanisms the interval is [released − q_{1−level/2},
// released − q_{level/2}]; for Log-Laplace the multiplicative noise is
// inverted through the release map, giving the exact quantile interval
// [(o+γ)·e^{−q_hi} − γ, (o+γ)·e^{−q_lo} − γ].
//
// The smooth mechanisms' noise scale depends on the cell's confidential
// x_v, so this is an *internal* diagnostic for the publishing agency
// (e.g. a publishability check), not something to release alongside the
// counts without accounting for its own privacy cost.
func ConfidenceInterval(m CellMechanism, in CellInput, released, level float64) (lo, hi float64, err error) {
	if !(level > 0 && level < 1) {
		return 0, 0, fmt.Errorf("mech: level must be in (0,1), got %v", level)
	}
	if ll, ok := m.(LogLaplace); ok {
		gamma := ll.Gamma()
		if released <= -gamma {
			return 0, 0, fmt.Errorf("mech: released value %v outside Log-Laplace support", released)
		}
		lap := dist.NewLaplace(ll.Lambda())
		qLo := lap.Quantile(level / 2)
		qHi := lap.Quantile(1 - level/2)
		lo = (released+gamma)*math.Exp(-qHi) - gamma
		hi = (released+gamma)*math.Exp(-qLo) - gamma
		return lo, hi, nil
	}
	qLo, err := NoiseQuantile(m, in, level/2)
	if err != nil {
		return 0, 0, err
	}
	qHi, err := NoiseQuantile(m, in, 1-level/2)
	if err != nil {
		return 0, 0, err
	}
	return released - qHi, released - qLo, nil
}
