package mech

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func sampleMean(t *testing.T, m CellMechanism, in CellInput, n int, seed int64) (mean, meanAbs float64) {
	t.Helper()
	s := dist.NewStreamFromSeed(seed)
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v, err := m.ReleaseCell(in, s)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		sum += v
		sumAbs += math.Abs(v - in.Count)
	}
	return sum / float64(n), sumAbs / float64(n)
}

func TestPureLaplaceUnbiasedAndError(t *testing.T) {
	m, err := NewPureLaplace(1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100}
	mean, l1 := sampleMean(t, m, in, 200000, 1)
	if math.Abs(mean-100) > 0.05 {
		t.Errorf("mean = %v, want 100", mean)
	}
	if math.Abs(l1-m.ExpectedL1(in)) > 0.02 {
		t.Errorf("L1 = %v, want %v", l1, m.ExpectedL1(in))
	}
}

func TestPureLaplaceValidation(t *testing.T) {
	if _, err := NewPureLaplace(0, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewPureLaplace(1, 0); err == nil {
		t.Error("sensitivity=0 accepted")
	}
	var zero PureLaplace
	if _, err := zero.ReleaseCell(CellInput{}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("zero-value PureLaplace released")
	}
}

func TestEdgeLaplace(t *testing.T) {
	m, err := NewEdgeLaplace(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity != 1 {
		t.Errorf("edge sensitivity = %v, want 1", m.Sensitivity)
	}
	if m.ExpectedL1(CellInput{}) != 0.5 {
		t.Errorf("expected L1 = %v, want 0.5", m.ExpectedL1(CellInput{}))
	}
	if m.Name() != "edge-laplace(eps=2)" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestEdgeLaplaceLeaksEstablishmentSize(t *testing.T) {
	// The Section 6 argument: edge-DP noise does not scale with the
	// establishment, so the relative error on a 10,000-employee single-
	// establishment cell is negligible — the attacker learns the size.
	m, err := NewEdgeLaplace(1.0)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 10000, MaxContribution: 10000}
	s := dist.NewStreamFromSeed(2)
	within5 := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v, err := m.ReleaseCell(in, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-10000) <= 5 {
			within5++
		}
	}
	// With probability 1-p the noise is at most ln(1/p); at p=0.01 that is
	// ~4.6, so >=99% of releases land within +-5 of the true size.
	if rate := float64(within5) / n; rate < 0.98 {
		t.Errorf("only %v of releases within +-5 of the true size; expected near-exact disclosure", rate)
	}
}

func TestLogLaplaceParameters(t *testing.T) {
	m, err := NewLogLaplace(0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Gamma(); math.Abs(got-10) > 1e-12 {
		t.Errorf("gamma = %v, want 10", got)
	}
	want := 2 * math.Log(1.1) / 2.0
	if got := m.Lambda(); math.Abs(got-want) > 1e-12 {
		t.Errorf("lambda = %v, want %v", got, want)
	}
	if !m.ExpectationBounded() {
		t.Error("expectation should be bounded at alpha=0.1, eps=2")
	}
}

func TestLogLaplaceExpectationUnbounded(t *testing.T) {
	// lambda = 2 ln(1.2)/eps >= 1 iff eps <= 2 ln(1.2) ~ 0.3646.
	m, err := NewLogLaplace(0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpectationBounded() {
		t.Error("expectation should be unbounded at alpha=0.2, eps=0.3")
	}
	if !math.IsInf(m.ExpectedL1(CellInput{Count: 10}), 1) {
		t.Error("ExpectedL1 should be +Inf when expectation unbounded")
	}
	if !math.IsInf(m.Bias(10), 1) {
		t.Error("Bias should be +Inf when expectation unbounded")
	}
}

func TestLogLaplaceBiasMatchesLemma82(t *testing.T) {
	m, err := NewLogLaplace(0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 500}
	mean, _ := sampleMean(t, m, in, 400000, 3)
	wantMean := in.Count + m.Bias(in.Count)
	lam := m.Lambda()
	scale := (in.Count + m.Gamma()) * lam
	if math.Abs(mean-wantMean) > 0.03*scale {
		t.Errorf("mean = %v, Lemma 8.2 predicts %v", mean, wantMean)
	}
	if m.Bias(in.Count) <= 0 {
		t.Error("Log-Laplace bias should be positive (convexity)")
	}
}

func TestLogLaplaceExpectedL1Exact(t *testing.T) {
	m, err := NewLogLaplace(0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 200}
	_, l1 := sampleMean(t, m, in, 400000, 4)
	want := m.ExpectedL1(in)
	if math.Abs(l1-want)/want > 0.03 {
		t.Errorf("empirical L1 = %v, analytical = %v", l1, want)
	}
}

func TestLogLaplaceDebias(t *testing.T) {
	m, err := NewLogLaplace(0.15, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 300}
	s := dist.NewStreamFromSeed(5)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		v, err := m.ReleaseCell(in, s)
		if err != nil {
			t.Fatal(err)
		}
		sum += m.Debias(v)
	}
	mean := sum / n
	lam := m.Lambda()
	scale := (in.Count + m.Gamma()) * lam
	if math.Abs(mean-in.Count) > 0.03*scale {
		t.Errorf("debiased mean = %v, want %v", mean, in.Count)
	}
}

func TestLogLaplaceRelErrBound(t *testing.T) {
	// Theorem 8.3: the bound must dominate the exact shifted relative error.
	m, err := NewLogLaplace(0.1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RelativeErrorBounded() {
		t.Fatal("lambda should be < 1/2 here")
	}
	exact := m.ExactSquaredRelErrShifted()
	bound := m.ExpectedSquaredRelErrBound()
	if exact > bound {
		t.Errorf("exact %v exceeds Theorem 8.3 bound %v", exact, bound)
	}
	// Empirical check of the exact shifted relative error.
	in := CellInput{Count: 1000}
	s := dist.NewStreamFromSeed(6)
	const n = 400000
	g := m.Gamma()
	var sum float64
	for i := 0; i < n; i++ {
		v, err := m.ReleaseCell(in, s)
		if err != nil {
			t.Fatal(err)
		}
		r := (in.Count + g - (v + g)) / (in.Count + g)
		sum += r * r
	}
	if got := sum / n; math.Abs(got-exact)/exact > 0.1 {
		t.Errorf("empirical shifted rel err = %v, exact formula = %v", got, exact)
	}
}

func TestLogLaplaceValidation(t *testing.T) {
	if _, err := NewLogLaplace(0, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewLogLaplace(0.1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	var zero LogLaplace
	if _, err := zero.ReleaseCell(CellInput{}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("zero-value LogLaplace released")
	}
}

func TestSmoothGammaUnbiasedAndScale(t *testing.T) {
	m, err := NewSmoothGamma(0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 1000, MaxContribution: 400}
	mean, l1 := sampleMean(t, m, in, 300000, 7)
	want := m.ExpectedL1(in)
	if math.Abs(mean-in.Count) > 0.05*want {
		t.Errorf("mean = %v, want %v (unbiased)", mean, in.Count)
	}
	if math.Abs(l1-want)/want > 0.05 {
		t.Errorf("L1 = %v, analytical %v", l1, want)
	}
}

func TestSmoothGammaSensitivityScalesWithXv(t *testing.T) {
	m, err := NewSmoothGamma(0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	small := m.ExpectedL1(CellInput{Count: 1000, MaxContribution: 10})
	big := m.ExpectedL1(CellInput{Count: 1000, MaxContribution: 1000})
	// x_v=10: sens = max(1,1) = 1. x_v=1000: sens = 100. Ratio 100.
	if math.Abs(big/small-100) > 1e-9 {
		t.Errorf("error ratio = %v, want 100", big/small)
	}
}

func TestSmoothGammaValidityRegion(t *testing.T) {
	// Paper: values of alpha and eps with alpha+1 >= e^(eps/5) are not allowed.
	if _, err := NewSmoothGamma(0.1, 0.25); err == nil {
		t.Error("SmoothGamma accepted alpha=0.1, eps=0.25")
	}
	if _, err := NewSmoothGamma(0.2, 0.67); err == nil {
		t.Error("SmoothGamma accepted alpha=0.2, eps=0.67 (needs eps > 5 ln 1.2 = 0.91)")
	}
	if _, err := NewSmoothGamma(0.01, 0.25); err != nil {
		t.Errorf("SmoothGamma rejected valid alpha=0.01, eps=0.25: %v", err)
	}
	var zero SmoothGamma
	if _, err := zero.ReleaseCell(CellInput{}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("zero-value SmoothGamma released")
	}
}

func TestSmoothGammaWithSplitDefaultIsOptimal(t *testing.T) {
	// The default split (smallest valid eps2) must have the smallest
	// expected error among valid splits.
	alpha, eps := 0.1, 2.0
	def, err := NewSmoothGamma(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 500, MaxContribution: 200}
	defErr := def.ExpectedL1(in)
	for _, extra := range []float64{0.1, 0.3, 0.6, 1.0} {
		alt, err := SmoothGammaWithSplit(alpha, eps, def.Split().Eps2+extra)
		if err != nil {
			t.Fatalf("split +%v: %v", extra, err)
		}
		if alt.ExpectedL1(in) <= defErr {
			t.Errorf("split eps2+%v has error %v <= default %v", extra, alt.ExpectedL1(in), defErr)
		}
	}
}

func TestSmoothGammaWithSplitValidation(t *testing.T) {
	if _, err := SmoothGammaWithSplit(0.1, 2.0, 2.0); err == nil {
		t.Error("split using whole budget for eps2 accepted")
	}
	if _, err := SmoothGammaWithSplit(0.1, 2.0, 0.01); err == nil {
		t.Error("split with eps2 too small for boundedness accepted")
	}
}

func TestSmoothLaplaceUnbiasedAndScale(t *testing.T) {
	m, err := NewSmoothLaplace(0.1, 2.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 1000, MaxContribution: 400}
	mean, l1 := sampleMean(t, m, in, 300000, 8)
	want := m.ExpectedL1(in)
	// sens = 40, a = 1 => scale 40, E|noise| = 40.
	if math.Abs(want-40) > 1e-9 {
		t.Errorf("analytical L1 = %v, want 40", want)
	}
	if math.Abs(mean-in.Count) > 0.05*want {
		t.Errorf("mean = %v, want %v", mean, in.Count)
	}
	if math.Abs(l1-want)/want > 0.05 {
		t.Errorf("L1 = %v, analytical %v", l1, want)
	}
}

func TestSmoothLaplaceErrorIndependentOfDelta(t *testing.T) {
	// Section 9: the error of Algorithm 3 does not depend on delta.
	a, err := NewSmoothLaplace(0.1, 2.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSmoothLaplace(0.1, 2.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 100, MaxContribution: 50}
	if a.ExpectedL1(in) != b.ExpectedL1(in) {
		t.Errorf("error depends on delta: %v vs %v", a.ExpectedL1(in), b.ExpectedL1(in))
	}
}

func TestSmoothLaplaceValidityRegion(t *testing.T) {
	// Table 2: at delta=0.05, alpha=0.2 requires eps >= ~1.09.
	if _, err := NewSmoothLaplace(0.2, 1.0, 0.05); err == nil {
		t.Error("SmoothLaplace accepted eps below Table 2 minimum")
	}
	if _, err := NewSmoothLaplace(0.2, 1.2, 0.05); err != nil {
		t.Errorf("SmoothLaplace rejected valid parameters: %v", err)
	}
	var zero SmoothLaplace
	if _, err := zero.ReleaseCell(CellInput{}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("zero-value SmoothLaplace released")
	}
}

func TestSmoothMechsBeatLogLaplaceOnSmallXv(t *testing.T) {
	// The smooth mechanisms adapt to x_v; Log-Laplace noise scales with the
	// cell total. On a large cell made of many small establishments the
	// smooth mechanisms should win decisively.
	alpha, eps := 0.1, 2.0
	ll, err := NewLogLaplace(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSmoothGamma(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	in := CellInput{Count: 10000, MaxContribution: 20}
	if sg.ExpectedL1(in) >= ll.ExpectedL1(in) {
		t.Errorf("SmoothGamma %v >= LogLaplace %v on many-small-establishments cell",
			sg.ExpectedL1(in), ll.ExpectedL1(in))
	}
}

func TestReleaseCellsDeterministicPerCell(t *testing.T) {
	m, err := NewPureLaplace(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells := []CellInput{{Count: 1}, {Count: 2}, {Count: 3}}
	a, err := ReleaseCells(m, cells, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReleaseCells(m, cells, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d not deterministic", i)
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Error("all cells received identical noise")
	}
}

func TestClampedNonNegative(t *testing.T) {
	m, err := NewPureLaplace(0.1, 1) // huge noise
	if err != nil {
		t.Fatal(err)
	}
	c := Clamped{Inner: m}
	s := dist.NewStreamFromSeed(10)
	sawZero := false
	for i := 0; i < 1000; i++ {
		v, err := c.ReleaseCell(CellInput{Count: 1}, s)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatalf("clamped release %v < 0", v)
		}
		if v == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Error("clamp never hit zero with scale-10 noise on count 1")
	}
	if c.Name() == "" || c.ExpectedL1(CellInput{}) != m.ExpectedL1(CellInput{}) {
		t.Error("Clamped metadata wrong")
	}
}

func TestRoundedInteger(t *testing.T) {
	m, err := NewPureLaplace(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := Rounded{Inner: m}
	s := dist.NewStreamFromSeed(11)
	for i := 0; i < 1000; i++ {
		v, err := r.ReleaseCell(CellInput{Count: 10}, s)
		if err != nil {
			t.Fatal(err)
		}
		if v != math.Trunc(v) || v < 0 {
			t.Fatalf("rounded release %v not a non-negative integer", v)
		}
	}
}

func TestTruncatedLaplaceValidation(t *testing.T) {
	if _, err := NewTruncatedLaplace(0, 10); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewTruncatedLaplace(1, 0); err == nil {
		t.Error("theta=0 accepted")
	}
	m, err := NewTruncatedLaplace(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoiseExpectedL1() != 50 {
		t.Errorf("noise L1 = %v, want 50", m.NoiseExpectedL1())
	}
}
