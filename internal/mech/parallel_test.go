package mech

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dist"
)

// cellMechanisms instantiates every cell-level mechanism at paper-typical
// parameters.
func cellMechanisms(t *testing.T) map[string]CellMechanism {
	t.Helper()
	out := make(map[string]CellMechanism)
	ll, err := NewLogLaplace(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["log-laplace"] = ll
	sg, err := NewSmoothGamma(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["smooth-gamma"] = sg
	sl, err := NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	out["smooth-laplace"] = sl
	el, err := NewEdgeLaplace(2)
	if err != nil {
		t.Fatal(err)
	}
	out["edge-laplace"] = el
	return out
}

func testCells(n int) []CellInput {
	cells := make([]CellInput, n)
	for i := range cells {
		cells[i] = CellInput{
			Count:           float64((i * 37) % 900),
			MaxContribution: int64(1 + (i*13)%400),
		}
	}
	return cells
}

// TestReleaseCellsParallelGolden is the determinism contract of the
// parallel release pipeline: for every mechanism, the parallel path at
// worker counts 1, 2 and 8 is bit-identical to the sequential loop —
// stream-label splitting ties cell i's noise to the cell, not to the
// goroutine that draws it.
func TestReleaseCellsParallelGolden(t *testing.T) {
	cells := testCells(1000)
	for name, m := range cellMechanisms(t) {
		parent := dist.NewStreamFromSeed(77)
		want, err := ReleaseCellsSequential(m, cells, parent)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := ReleaseCellsParallel(m, cells, dist.NewStreamFromSeed(77), workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: cell %d = %v, want %v (not bit-identical)",
						name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReleaseCellsRoutesThroughParallel checks the public entry point
// agrees with the sequential reference on vectors both below and above
// the parallel cutoff.
func TestReleaseCellsRoutesThroughParallel(t *testing.T) {
	for _, n := range []int{0, 3, parallelCellCutoff - 1, parallelCellCutoff + 100, 2000} {
		cells := testCells(n)
		m, err := NewSmoothGamma(0.1, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReleaseCellsSequential(m, cells, dist.NewStreamFromSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReleaseCells(m, cells, dist.NewStreamFromSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: cell %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// failAfter errors on every cell index >= failFrom, to test error
// propagation order.
type failAfter struct {
	inner    CellMechanism
	failFrom int
}

func (f *failAfter) Name() string { return "fail-after" }
func (f *failAfter) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if int(in.Count) >= f.failFrom {
		return 0, fmt.Errorf("synthetic failure at %v", in.Count)
	}
	return f.inner.ReleaseCell(in, s)
}
func (f *failAfter) ExpectedL1(in CellInput) float64 { return f.inner.ExpectedL1(in) }

// TestReleaseCellsParallelFirstError checks the parallel path reports the
// lowest-index failing cell, like the sequential loop does.
func TestReleaseCellsParallelFirstError(t *testing.T) {
	el, err := NewEdgeLaplace(2)
	if err != nil {
		t.Fatal(err)
	}
	// Cell i carries Count=i, so cells >= 600 fail; the first failure the
	// caller sees must be cell 600 at every worker count.
	cells := make([]CellInput, 1000)
	for i := range cells {
		cells[i] = CellInput{Count: float64(i), MaxContribution: 1}
	}
	m := &failAfter{inner: el, failFrom: 600}
	for _, workers := range []int{1, 2, 8} {
		_, err := ReleaseCellsParallel(m, cells, dist.NewStreamFromSeed(9), workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "cell 600") {
			t.Fatalf("workers=%d: error %q does not name cell 600", workers, err)
		}
	}
}
