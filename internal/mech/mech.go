// Package mech implements every release mechanism the paper evaluates:
//
//   - LogLaplace — Algorithm 1, the multiplicative mechanism whose global
//     sensitivity in log space is ln(1+α);
//   - SmoothGamma — Algorithm 2, smooth sensitivity with generalized-Cauchy
//     noise, pure (δ=0) ER-EE privacy;
//   - SmoothLaplace — Algorithm 3, smooth sensitivity with Laplace noise,
//     approximate (α,ε,δ)-ER-EE privacy;
//   - PureLaplace / EdgeLaplace — the classical Laplace mechanism, the
//     paper's edge-differential-privacy baseline (Section 6);
//   - TruncatedLaplace — the node-differential-privacy baseline: project
//     the bipartite graph to degree ≤ θ, then add Laplace(θ/ε) (Section 6,
//     Finding 6).
//
// All cell-level mechanisms consume a CellInput (the true count and the
// cell's largest single-establishment contribution x_v) and an explicit
// random stream, so releases are reproducible and parallelizable.
package mech

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dist"
)

// CellInput is the per-cell data a mechanism needs: the true count and
// the paper's x_v, the largest number of workers a single establishment
// contributes to the cell (which sets smooth sensitivity via Lemma 8.5).
type CellInput struct {
	Count           float64
	MaxContribution int64
}

// CellMechanism releases a single cell count. Implementations must be
// safe for concurrent use with distinct streams.
type CellMechanism interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// ReleaseCell returns the noisy count for the cell. It returns an
	// error if the mechanism's parameters are outside its validity region.
	ReleaseCell(in CellInput, s *dist.Stream) (float64, error)
	// ExpectedL1 returns the analytical expected L1 error for the cell,
	// or +Inf when the expectation is unbounded.
	ExpectedL1(in CellInput) float64
}

// parallelCellCutoff is the vector length below which ReleaseCells stays
// single-chunk: goroutine startup costs more than drawing the noise.
const parallelCellCutoff = 512

// ReleaseCells applies a cell mechanism to a vector of cells, deriving a
// per-cell stream from the given parent so results do not depend on
// iteration order. Large vectors are released in parallel across
// GOMAXPROCS workers; the per-cell streams make the output bit-identical
// to the sequential path either way.
func ReleaseCells(m CellMechanism, cells []CellInput, parent *dist.Stream) ([]float64, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(cells) < parallelCellCutoff {
		workers = 1
	}
	return ReleaseCellsParallel(m, cells, parent, workers)
}

// ReleaseCellsSequential is the scalar release loop, retained as the
// golden reference the batched chunk pipeline is tested against.
func ReleaseCellsSequential(m CellMechanism, cells []CellInput, parent *dist.Stream) ([]float64, error) {
	out := make([]float64, len(cells))
	for i, c := range cells {
		v, err := m.ReleaseCell(c, parent.SplitIndex("cell", i))
		if err != nil {
			return nil, fmt.Errorf("mech: %s cell %d: %w", m.Name(), i, err)
		}
		out[i] = v
	}
	return out, nil
}

// cellBatcher is implemented by mechanisms that can release a contiguous
// run of cells into a caller-owned buffer with hoisted construction and
// batch-sampled noise. Contract: out and cells are equal-length chunk
// views, base is the chunk's offset in the full vector (cell j of the
// chunk draws from parent.SplitIndex("cell", base+j)), and noise is a
// caller-owned scratch of len(out) the implementation may overwrite.
// The result must be bit-identical to calling ReleaseCell per cell; a
// returned error must be one every cell of the chunk would return (the
// built-in mechanisms only fail on cell-independent parameter checks).
type cellBatcher interface {
	releaseCellRange(out []float64, cells []CellInput, parent *dist.Stream, base int, noise []float64) error
}

// releaseChunk releases cells[lo:hi] into out[lo:hi], dispatching to the
// mechanism's batch path when it has one and to the scalar per-cell loop
// otherwise. It returns the index of the first failing cell, or −1.
// noise is a caller-owned scratch of at least hi−lo floats.
func releaseChunk(m CellMechanism, cells []CellInput, out []float64, parent *dist.Stream, lo, hi int, noise []float64) (int, error) {
	switch mm := m.(type) {
	case cellBatcher:
		if err := mm.releaseCellRange(out[lo:hi], cells[lo:hi], parent, lo, noise[:hi-lo]); err != nil {
			return lo, err
		}
		return -1, nil
	case Clamped:
		fail, err := releaseChunk(mm.Inner, cells, out, parent, lo, hi, noise)
		if err != nil {
			return fail, err
		}
		for i := lo; i < hi; i++ {
			out[i] = clampNonNegative(out[i])
		}
		return -1, nil
	case Rounded:
		fail, err := releaseChunk(mm.Inner, cells, out, parent, lo, hi, noise)
		if err != nil {
			return fail, err
		}
		for i := lo; i < hi; i++ {
			out[i] = float64(int64(clampNonNegative(out[i]) + 0.5))
		}
		return -1, nil
	default:
		// Unknown mechanism: the scalar loop, with a freshly allocated
		// stream per cell — a third-party ReleaseCell may legally retain
		// the stream it is handed.
		for i := lo; i < hi; i++ {
			v, err := m.ReleaseCell(cells[i], parent.SplitIndex("cell", i))
			if err != nil {
				return i, err
			}
			out[i] = v
		}
		return -1, nil
	}
}

// ReleaseCellsParallel releases the cell vector using the given number of
// worker goroutines over contiguous chunks. Cell i's noise always comes
// from parent.SplitIndex("cell", i) — the same label family the
// sequential loop uses — so the output is bit-identical at every worker
// count; only wall-clock time changes. SplitIndex is a pure function of
// the parent's identity, so sharing the parent across workers is safe.
//
// Each chunk runs the mechanism's batch path (hoisted construction,
// noise drawn through dist.FillSplit into a per-chunk buffer), so the
// steady-state release allocates one output vector and one scratch
// buffer per chunk — never per cell.
//
// On error the failing cell with the smallest index is reported,
// matching the sequential loop's first-error semantics.
func ReleaseCellsParallel(m CellMechanism, cells []CellInput, parent *dist.Stream, workers int) ([]float64, error) {
	if workers > len(cells) {
		workers = len(cells)
	}
	out := make([]float64, len(cells))
	if workers <= 1 {
		fail, err := releaseChunk(m, cells, out, parent, 0, len(cells), make([]float64, len(cells)))
		if err != nil {
			return nil, fmt.Errorf("mech: %s cell %d: %w", m.Name(), fail, err)
		}
		return out, nil
	}
	chunk := (len(cells) + workers - 1) / workers
	errCells := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cells) {
			hi = len(cells)
		}
		errCells[w] = -1
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fail, err := releaseChunk(m, cells, out, parent, lo, hi, make([]float64, hi-lo))
			if err != nil {
				errCells[w] = fail
				errs[w] = err
			}
		}(w, lo, hi)
	}
	wg.Wait()
	firstCell, firstErr := -1, error(nil)
	for w := range errs {
		if errs[w] != nil && (firstCell < 0 || errCells[w] < firstCell) {
			firstCell, firstErr = errCells[w], errs[w]
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("mech: %s cell %d: %w", m.Name(), firstCell, firstErr)
	}
	return out, nil
}

// PureLaplace is the classical Laplace mechanism (Definition 2.4): add
// Laplace(Sensitivity/ε) noise. With Sensitivity = 1 it is the paper's
// edge-differential-privacy baseline; with Sensitivity = θ it is the
// post-truncation node-DP mechanism.
type PureLaplace struct {
	Eps         float64
	Sensitivity float64
	// label overrides the default name, used by EdgeLaplace and
	// TruncatedLaplace wrappers.
	label string
}

// NewPureLaplace validates the parameters and returns the mechanism.
func NewPureLaplace(eps, sensitivity float64) (PureLaplace, error) {
	if !(eps > 0) {
		return PureLaplace{}, fmt.Errorf("mech: Laplace requires eps > 0, got %v", eps)
	}
	if !(sensitivity > 0) {
		return PureLaplace{}, fmt.Errorf("mech: Laplace requires sensitivity > 0, got %v", sensitivity)
	}
	return PureLaplace{Eps: eps, Sensitivity: sensitivity}, nil
}

// Name identifies the mechanism.
func (m PureLaplace) Name() string {
	if m.label != "" {
		return m.label
	}
	return fmt.Sprintf("laplace(eps=%g,sens=%g)", m.Eps, m.Sensitivity)
}

// ReleaseCell adds Laplace(Sensitivity/ε) noise to the count.
func (m PureLaplace) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if !(m.Eps > 0) || !(m.Sensitivity > 0) {
		return 0, fmt.Errorf("mech: Laplace mechanism not initialized (eps=%v sens=%v)", m.Eps, m.Sensitivity)
	}
	return in.Count + dist.NewLaplace(m.Sensitivity/m.Eps).Sample(s), nil
}

// ExpectedL1 returns the exact expected L1 error, Sensitivity/ε.
func (m PureLaplace) ExpectedL1(CellInput) float64 {
	return m.Sensitivity / m.Eps
}

// releaseCellRange is the batch path: one Laplace distribution for the
// whole chunk, noise batch-sampled from the per-cell stream family.
func (m PureLaplace) releaseCellRange(out []float64, cells []CellInput, parent *dist.Stream, base int, noise []float64) error {
	if !(m.Eps > 0) || !(m.Sensitivity > 0) {
		return fmt.Errorf("mech: Laplace mechanism not initialized (eps=%v sens=%v)", m.Eps, m.Sensitivity)
	}
	dist.FillSplit(noise, dist.NewLaplace(m.Sensitivity/m.Eps), parent, "cell", base)
	for i := range out {
		out[i] = cells[i].Count + noise[i]
	}
	return nil
}

// NewEdgeLaplace returns the edge-differential-privacy baseline:
// Laplace(1/ε) noise per cell. It satisfies the employee privacy
// requirement (Definition 4.1) but, as Section 6 shows, lets an informed
// attacker learn establishment sizes to within ±ln(1/p)/ε, violating
// Definitions 4.2 and 4.3.
func NewEdgeLaplace(eps float64) (PureLaplace, error) {
	m, err := NewPureLaplace(eps, 1)
	if err != nil {
		return PureLaplace{}, err
	}
	m.label = fmt.Sprintf("edge-laplace(eps=%g)", eps)
	return m, nil
}

// clampNonNegative truncates a released value at zero. Published
// employment counts are non-negative; the paper's error metrics are
// computed on released values, and clamping only ever reduces L1 error.
// Post-processing cannot degrade a privacy guarantee.
func clampNonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// expInvalid is the ExpectedL1 value for out-of-validity parameters.
var expInvalid = math.Inf(1)
