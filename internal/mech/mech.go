// Package mech implements every release mechanism the paper evaluates:
//
//   - LogLaplace — Algorithm 1, the multiplicative mechanism whose global
//     sensitivity in log space is ln(1+α);
//   - SmoothGamma — Algorithm 2, smooth sensitivity with generalized-Cauchy
//     noise, pure (δ=0) ER-EE privacy;
//   - SmoothLaplace — Algorithm 3, smooth sensitivity with Laplace noise,
//     approximate (α,ε,δ)-ER-EE privacy;
//   - PureLaplace / EdgeLaplace — the classical Laplace mechanism, the
//     paper's edge-differential-privacy baseline (Section 6);
//   - TruncatedLaplace — the node-differential-privacy baseline: project
//     the bipartite graph to degree ≤ θ, then add Laplace(θ/ε) (Section 6,
//     Finding 6).
//
// All cell-level mechanisms consume a CellInput (the true count and the
// cell's largest single-establishment contribution x_v) and an explicit
// random stream, so releases are reproducible and parallelizable.
package mech

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dist"
)

// CellInput is the per-cell data a mechanism needs: the true count and
// the paper's x_v, the largest number of workers a single establishment
// contributes to the cell (which sets smooth sensitivity via Lemma 8.5).
type CellInput struct {
	Count           float64
	MaxContribution int64
}

// CellMechanism releases a single cell count. Implementations must be
// safe for concurrent use with distinct streams.
type CellMechanism interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// ReleaseCell returns the noisy count for the cell. It returns an
	// error if the mechanism's parameters are outside its validity region.
	ReleaseCell(in CellInput, s *dist.Stream) (float64, error)
	// ExpectedL1 returns the analytical expected L1 error for the cell,
	// or +Inf when the expectation is unbounded.
	ExpectedL1(in CellInput) float64
}

// parallelCellCutoff is the vector length below which ReleaseCells stays
// sequential: goroutine startup costs more than drawing the noise.
const parallelCellCutoff = 512

// ReleaseCells applies a cell mechanism to a vector of cells, deriving a
// per-cell stream from the given parent so results do not depend on
// iteration order. Large vectors are released in parallel across
// GOMAXPROCS workers; the per-cell streams make the output bit-identical
// to the sequential path either way.
func ReleaseCells(m CellMechanism, cells []CellInput, parent *dist.Stream) ([]float64, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(cells) < parallelCellCutoff {
		workers = 1
	}
	return ReleaseCellsParallel(m, cells, parent, workers)
}

// ReleaseCellsSequential is the scalar release loop, retained as the
// golden reference the parallel path is tested against.
func ReleaseCellsSequential(m CellMechanism, cells []CellInput, parent *dist.Stream) ([]float64, error) {
	out := make([]float64, len(cells))
	for i, c := range cells {
		v, err := m.ReleaseCell(c, parent.SplitIndex("cell", i))
		if err != nil {
			return nil, fmt.Errorf("mech: %s cell %d: %w", m.Name(), i, err)
		}
		out[i] = v
	}
	return out, nil
}

// ReleaseCellsParallel releases the cell vector using the given number of
// worker goroutines over contiguous chunks. Cell i's noise always comes
// from parent.SplitIndex("cell", i) — the same label family the
// sequential loop uses — so the output is bit-identical at every worker
// count; only wall-clock time changes. SplitIndex is a pure function of
// the parent's identity, so sharing the parent across workers is safe.
//
// On error the failing cell with the smallest index is reported,
// matching the sequential loop's first-error semantics.
func ReleaseCellsParallel(m CellMechanism, cells []CellInput, parent *dist.Stream, workers int) ([]float64, error) {
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		return ReleaseCellsSequential(m, cells, parent)
	}
	out := make([]float64, len(cells))
	chunk := (len(cells) + workers - 1) / workers
	errCells := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cells) {
			hi = len(cells)
		}
		errCells[w] = -1
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				v, err := m.ReleaseCell(cells[i], parent.SplitIndex("cell", i))
				if err != nil {
					errCells[w] = i
					errs[w] = err
					return
				}
				out[i] = v
			}
		}(w, lo, hi)
	}
	wg.Wait()
	firstCell, firstErr := -1, error(nil)
	for w := range errs {
		if errs[w] != nil && (firstCell < 0 || errCells[w] < firstCell) {
			firstCell, firstErr = errCells[w], errs[w]
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("mech: %s cell %d: %w", m.Name(), firstCell, firstErr)
	}
	return out, nil
}

// PureLaplace is the classical Laplace mechanism (Definition 2.4): add
// Laplace(Sensitivity/ε) noise. With Sensitivity = 1 it is the paper's
// edge-differential-privacy baseline; with Sensitivity = θ it is the
// post-truncation node-DP mechanism.
type PureLaplace struct {
	Eps         float64
	Sensitivity float64
	// label overrides the default name, used by EdgeLaplace and
	// TruncatedLaplace wrappers.
	label string
}

// NewPureLaplace validates the parameters and returns the mechanism.
func NewPureLaplace(eps, sensitivity float64) (PureLaplace, error) {
	if !(eps > 0) {
		return PureLaplace{}, fmt.Errorf("mech: Laplace requires eps > 0, got %v", eps)
	}
	if !(sensitivity > 0) {
		return PureLaplace{}, fmt.Errorf("mech: Laplace requires sensitivity > 0, got %v", sensitivity)
	}
	return PureLaplace{Eps: eps, Sensitivity: sensitivity}, nil
}

// Name identifies the mechanism.
func (m PureLaplace) Name() string {
	if m.label != "" {
		return m.label
	}
	return fmt.Sprintf("laplace(eps=%g,sens=%g)", m.Eps, m.Sensitivity)
}

// ReleaseCell adds Laplace(Sensitivity/ε) noise to the count.
func (m PureLaplace) ReleaseCell(in CellInput, s *dist.Stream) (float64, error) {
	if !(m.Eps > 0) || !(m.Sensitivity > 0) {
		return 0, fmt.Errorf("mech: Laplace mechanism not initialized (eps=%v sens=%v)", m.Eps, m.Sensitivity)
	}
	return in.Count + dist.NewLaplace(m.Sensitivity/m.Eps).Sample(s), nil
}

// ExpectedL1 returns the exact expected L1 error, Sensitivity/ε.
func (m PureLaplace) ExpectedL1(CellInput) float64 {
	return m.Sensitivity / m.Eps
}

// NewEdgeLaplace returns the edge-differential-privacy baseline:
// Laplace(1/ε) noise per cell. It satisfies the employee privacy
// requirement (Definition 4.1) but, as Section 6 shows, lets an informed
// attacker learn establishment sizes to within ±ln(1/p)/ε, violating
// Definitions 4.2 and 4.3.
func NewEdgeLaplace(eps float64) (PureLaplace, error) {
	m, err := NewPureLaplace(eps, 1)
	if err != nil {
		return PureLaplace{}, err
	}
	m.label = fmt.Sprintf("edge-laplace(eps=%g)", eps)
	return m, nil
}

// clampNonNegative truncates a released value at zero. Published
// employment counts are non-negative; the paper's error metrics are
// computed on released values, and clamping only ever reduces L1 error.
// Post-processing cannot degrade a privacy guarantee.
func clampNonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// expInvalid is the ExpectedL1 value for out-of-validity parameters.
var expInvalid = math.Inf(1)
