package privacy

import (
	"errors"
	"fmt"
	"testing"
)

// fakeJournal records every logged record and can be told to fail.
type fakeJournal struct {
	spends    []SpendRecord
	advances  []AdvanceRecord
	registers []RegisterRecord
	fail      error
}

func (j *fakeJournal) LogSpend(r SpendRecord) error {
	if j.fail != nil {
		return j.fail
	}
	j.spends = append(j.spends, r)
	return nil
}

func (j *fakeJournal) LogAdvance(r AdvanceRecord) error {
	if j.fail != nil {
		return j.fail
	}
	j.advances = append(j.advances, r)
	return nil
}

func (j *fakeJournal) LogRegister(r RegisterRecord) error {
	if j.fail != nil {
		return j.fail
	}
	j.registers = append(j.registers, r)
	return nil
}

func newTestAccountant(t *testing.T) *Accountant {
	t.Helper()
	a, err := NewAccountant(StrongEREE, 2, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSpendJournaledBeforeApply(t *testing.T) {
	a := newTestAccountant(t)
	j := &fakeJournal{}
	a.AttachJournal(j, "alpha")

	tag := &SpendTag{Seq: 7, Digest: "abc", Epoch: 3}
	losses := []Loss{
		{Def: StrongEREE, Alpha: 2, Eps: 1.5},
		{Def: StrongEREE, Alpha: 2, Eps: 0.25},
	}
	if err := a.SpendAllTagged(losses, tag); err != nil {
		t.Fatalf("SpendAllTagged: %v", err)
	}
	if len(j.spends) != 1 {
		t.Fatalf("journal saw %d spend records, want 1", len(j.spends))
	}
	rec := j.spends[0]
	if rec.Tenant != "alpha" || rec.Eps != 1.75 || rec.Releases != 2 {
		t.Fatalf("spend record = %+v", rec)
	}
	if rec.Tag == nil || *rec.Tag != *tag {
		t.Fatalf("spend record tag = %+v, want %+v", rec.Tag, tag)
	}
	// The record holds a copy, not the caller's pointer.
	tag.Seq = 99
	if rec.Tag.Seq != 7 {
		t.Fatal("journal record aliases the caller's tag")
	}
	if got := a.Spent().Eps; got != 1.75 {
		t.Fatalf("spent eps = %g, want 1.75", got)
	}
}

func TestJournalFailureAbortsSpend(t *testing.T) {
	a := newTestAccountant(t)
	j := &fakeJournal{fail: fmt.Errorf("disk full")}
	a.AttachJournal(j, "alpha")

	err := a.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 1})
	if !errors.Is(err, ErrPersistence) {
		t.Fatalf("spend with failing journal: %v, want ErrPersistence", err)
	}
	if got := a.Spent().Eps; got != 0 {
		t.Fatalf("failed journal write still spent eps=%g; the charge must not apply", got)
	}
	if a.Releases() != 0 {
		t.Fatal("failed journal write counted a release")
	}
}

func TestRejectedSpendNotJournaled(t *testing.T) {
	a := newTestAccountant(t)
	j := &fakeJournal{}
	a.AttachJournal(j, "alpha")
	// Over budget: rejected before the journal sees anything, so
	// recovery can treat every journaled spend as applied.
	err := a.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 11})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(j.spends) != 0 {
		t.Fatal("rejected charge reached the journal")
	}
}

func TestAdvanceEpochLogged(t *testing.T) {
	a := newTestAccountant(t)
	j := &fakeJournal{}
	a.AttachJournal(j, "alpha")

	n, err := a.AdvanceEpochLogged()
	if err != nil || n != 1 {
		t.Fatalf("AdvanceEpochLogged = %d, %v", n, err)
	}
	if len(j.advances) != 1 || j.advances[0] != (AdvanceRecord{Tenant: "alpha", Epoch: 1}) {
		t.Fatalf("advance records = %+v", j.advances)
	}

	j.fail = fmt.Errorf("disk full")
	if _, err := a.AdvanceEpochLogged(); !errors.Is(err, ErrPersistence) {
		t.Fatalf("err = %v, want ErrPersistence", err)
	}
	if got := a.Epoch(); got != 1 {
		t.Fatalf("failed advance moved the ledger to epoch %d", got)
	}
}

func TestRegistryAttachJournal(t *testing.T) {
	r := NewRegistry()
	a1 := newTestAccountant(t)
	a2 := newTestAccountant(t)
	if _, err := r.Register("beta", "key-b", a2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("alpha", "key-a", a1); err != nil {
		t.Fatal(err)
	}
	j := &fakeJournal{}
	if err := r.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if len(j.registers) != 2 || j.registers[0].Tenant != "alpha" || j.registers[1].Tenant != "beta" {
		t.Fatalf("register records = %+v, want alpha then beta", j.registers)
	}
	if j.registers[0].BudgetEps != 10 || j.registers[0].Def != StrongEREE || j.registers[0].Alpha != 2 {
		t.Fatalf("register record = %+v", j.registers[0])
	}

	// Late registration is journaled too.
	a3 := newTestAccountant(t)
	if _, err := r.Register("gamma", "key-c", a3); err != nil {
		t.Fatal(err)
	}
	if len(j.registers) != 3 || j.registers[2].Tenant != "gamma" {
		t.Fatalf("late registration not journaled: %+v", j.registers)
	}
	if err := a3.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if len(j.spends) != 1 || j.spends[0].Tenant != "gamma" {
		t.Fatalf("late-registered tenant's spend not journaled: %+v", j.spends)
	}

	// Registration that cannot be journaled does not register.
	j.fail = fmt.Errorf("disk full")
	if _, err := r.Register("delta", "key-d", newTestAccountant(t)); !errors.Is(err, ErrPersistence) {
		t.Fatalf("err = %v, want ErrPersistence", err)
	}
	if _, ok := r.Tenant("delta"); ok {
		t.Fatal("unjournaled tenant was registered")
	}
}

func TestRegistryAdvanceEpochLogged(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("alpha", "key-a", newTestAccountant(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("beta", "key-b", newTestAccountant(t)); err != nil {
		t.Fatal(err)
	}
	j := &fakeJournal{}
	if err := r.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if err := r.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	if len(j.advances) != 2 || j.advances[0].Tenant != "alpha" || j.advances[1].Tenant != "beta" {
		t.Fatalf("advance records = %+v", j.advances)
	}
	j.fail = fmt.Errorf("disk full")
	if err := r.AdvanceEpoch(); !errors.Is(err, ErrPersistence) {
		t.Fatalf("err = %v, want ErrPersistence", err)
	}
}

func TestRestoreBitIdentical(t *testing.T) {
	// Drive an accountant through charges and advances, then restore a
	// fresh one from its observable state: every float must match
	// bit-for-bit, because recovery replays the same additions in the
	// same order.
	src := newTestAccountant(t)
	for i := 0; i < 5; i++ {
		if err := src.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 0.1 * float64(i+1), Delta: 1e-9}); err != nil {
			t.Fatal(err)
		}
	}
	src.AdvanceEpoch()
	if err := src.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 0.7}); err != nil {
		t.Fatal(err)
	}

	dst := newTestAccountant(t)
	spent := src.Spent()
	if err := dst.Restore(spent.Eps, spent.Delta, src.Releases(), src.SpendByEpoch()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.Spent() != src.Spent() {
		t.Fatalf("restored Spent %+v != source %+v", dst.Spent(), src.Spent())
	}
	if dst.Releases() != src.Releases() || dst.Epoch() != src.Epoch() {
		t.Fatal("restored counters diverge")
	}
	sl, dl := src.SpendByEpoch(), dst.SpendByEpoch()
	if len(sl) != len(dl) {
		t.Fatalf("ledger lengths %d vs %d", len(sl), len(dl))
	}
	for i := range sl {
		if sl[i] != dl[i] {
			t.Fatalf("ledger entry %d: %+v vs %+v", i, sl[i], dl[i])
		}
	}
	// Future charges see the restored spend.
	re, _ := dst.Remaining()
	se, _ := src.Remaining()
	if re != se {
		t.Fatalf("remaining diverges: %g vs %g", re, se)
	}
}

func TestRestoreGuards(t *testing.T) {
	a := newTestAccountant(t)
	if err := a.Restore(1, 0, 1, nil); err == nil {
		t.Fatal("empty ledger accepted")
	}
	if err := a.Restore(1, 0, 1, []EpochSpend{{Epoch: 2}, {Epoch: 1}}); err == nil {
		t.Fatal("non-increasing ledger accepted")
	}
	if err := a.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Restore(1, 0, 1, []EpochSpend{{Epoch: 0, Eps: 1, Releases: 1}}); err == nil {
		t.Fatal("restore onto a used accountant accepted")
	}
}

func TestRestoreOverBudgetRefusesFurtherCharges(t *testing.T) {
	// An operator may shrink the budget below an already-recorded
	// spend; the restored accountant must carry the history and refuse
	// new charges rather than reject the history.
	a, err := NewAccountant(StrongEREE, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Restore(5, 0, 3, []EpochSpend{{Epoch: 0, Eps: 5, Releases: 3}}); err != nil {
		t.Fatalf("Restore of over-budget history: %v", err)
	}
	if err := a.Spend(Loss{Def: StrongEREE, Alpha: 2, Eps: 0.1}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("charge on over-budget accountant: %v, want ErrBudgetExhausted", err)
	}
}
