package privacy

import (
	"fmt"
	"math"

	"repro/internal/smooth"
)

// This file implements the privacy semantics of Sections 7.2 and 9: the
// database metric induced by α-neighbors, the Bayes-factor bounds an
// adversary can achieve at a given distance, the δ amplification of
// approximate privacy (Equation 13), and the Table 2 minimum-ε grid.

// NeighborDistance returns the number of α-neighbor steps needed to move
// an establishment's size from x to y (Section 7.2): each step multiplies
// the size by at most (1+α) (or adds one worker, whichever is larger), so
// the distance from x to y ≥ x is the smallest k with x·(1+α)^k ≥ y,
// i.e. k = ⌈log(y/x) / log(1+α)⌉. x and y with x > y are symmetric.
// Changes to workplace attributes are at infinite distance (they are
// public and never perturbed), which callers represent separately.
func NeighborDistance(x, y float64, alpha float64) int {
	if !(alpha > 0) {
		panic(fmt.Sprintf("privacy: alpha must be positive, got %v", alpha))
	}
	if !(x > 0) || !(y > 0) {
		panic(fmt.Sprintf("privacy: sizes must be positive, got %v and %v", x, y))
	}
	if x > y {
		x, y = y, x
	}
	if x == y {
		return 0
	}
	ratio := y / x
	k := math.Log(ratio) / math.Log(1+alpha)
	// Guard against floating point landing just above an integer.
	ceil := math.Ceil(k - 1e-12)
	if ceil < 1 {
		ceil = 1
	}
	return int(ceil)
}

// BayesFactorBound returns the bound on the log Bayes factor an adversary
// can achieve between two databases at the given neighbor distance under
// an (α,ε) guarantee (Equation 8): ε·distance. A distance-k pair of
// establishment sizes x and (1+α)^k·x can be distinguished with log-odds
// at most ε·k.
func BayesFactorBound(eps float64, distance int) float64 {
	if !(eps > 0) || distance < 0 {
		panic(fmt.Sprintf("privacy: invalid eps=%v or distance=%d", eps, distance))
	}
	return eps * float64(distance)
}

// SizeInferenceBound combines the two: the maximum log Bayes factor an
// adversary can achieve between establishment sizes x and y under an
// (α,ε) guarantee.
func SizeInferenceBound(x, y, alpha, eps float64) float64 {
	return BayesFactorBound(eps, NeighborDistance(x, y, alpha))
}

// DeltaAtDistance returns the failure-probability amplification of
// approximate privacy at database distance d (Equation 13): releasing
// under (α,ε,δ)-ER-EE privacy lets an adversary distinguish databases at
// distance d with ratio e^{εd} plus an additive term of order
// δ·e^{ε(d−1)}·d (the geometric accumulation of per-step failures). When
// the returned value reaches 1 the adversary can, in the worst case, rule
// out one database entirely — the qualitative drawback Section 9 warns
// about.
func DeltaAtDistance(eps, delta float64, d int) float64 {
	if !(eps > 0) || !(delta >= 0 && delta < 1) || d < 1 {
		panic(fmt.Sprintf("privacy: invalid eps=%v delta=%v d=%d", eps, delta, d))
	}
	// delta * sum_{i=0}^{d-1} e^{eps*i} = delta * (e^{eps d} - 1)/(e^eps - 1).
	amplified := delta * (math.Exp(eps*float64(d)) - 1) / (math.Exp(eps) - 1)
	return math.Min(1, amplified)
}

// MinEpsilonRow is one row of Table 2: the minimum ε at which the Smooth
// Laplace mechanism's validity condition holds for the given (α, δ).
type MinEpsilonRow struct {
	Alpha, Delta, MinEps float64
}

// Table2 returns the minimum-ε grid for the paper's Table 2 parameter
// values, computed from Algorithm 3's constraint
// ε ≥ 2·ln(1/δ)·ln(1+α).
//
// Reproduction note: the paper's printed Table 2 agrees with this formula
// on the δ=5×10⁻⁴ rows for α ∈ {.01, .1} but not on the δ=.05 rows (e.g.
// it prints ε=.105 for α=.01, δ=.05 where the constraint gives .0599).
// We implement the constraint the algorithm actually enforces; the
// qualitative shape — minimum ε grows with α and with 1/δ — matches.
func Table2() []MinEpsilonRow {
	alphas := []float64{0.01, 0.10, 0.20}
	deltas := []float64{0.05, 5e-4}
	rows := make([]MinEpsilonRow, 0, len(alphas)*len(deltas))
	for _, delta := range deltas {
		for _, alpha := range alphas {
			rows = append(rows, MinEpsilonRow{
				Alpha:  alpha,
				Delta:  delta,
				MinEps: smooth.MinEpsilonLaplace(alpha, delta),
			})
		}
	}
	return rows
}

// EdgeDPLeakage quantifies Section 6's argument that edge-DP leaks
// establishment sizes: with probability 1−p, Laplace(1/ε) noise has
// magnitude at most ln(1/p)/ε, so an attacker observing a
// single-establishment cell learns its size to within that absolute
// bound — a bound that does not grow with the establishment, violating
// the multiplicative protection Definition 4.2 demands.
func EdgeDPLeakage(eps, p float64) float64 {
	if !(eps > 0) || !(p > 0 && p < 1) {
		panic(fmt.Sprintf("privacy: invalid eps=%v or p=%v", eps, p))
	}
	return math.Log(1/p) / eps
}
