package privacy

import (
	"errors"
	"fmt"
)

// ErrPersistence: the accountant could not durably journal a charge,
// so nothing was spent and no release may be served. This is the
// write-ahead contract's refusal path — when the log is unavailable
// the service degrades (retry later) rather than serving releases
// whose spend would vanish in a crash.
var ErrPersistence = errors.New("privacy: durable spend log unavailable")

// SpendTag is the durable identity of a tagged charge: the request's
// wire identity (sequence number and body digest) plus the dataset
// epoch the released bytes were computed against. Because the wire
// format is deterministic in (tenant, seq, digest, epoch), a recovered
// tag is enough to recognize a client retry of an already-charged
// request and re-serve the identical bytes without charging again.
type SpendTag struct {
	Seq    int64
	Digest string
	Epoch  int
}

// SpendRecord is what the journal must make durable before a charge
// is applied (and before any response bytes leave the process). Eps
// and Delta are the already-summed totals of the batch being charged.
type SpendRecord struct {
	Tenant   string
	Eps      float64
	Delta    float64
	Releases int
	Tag      *SpendTag // nil for untagged (in-process) charges
}

// AdvanceRecord journals one tenant's ledger advancing to Epoch.
type AdvanceRecord struct {
	Tenant string
	Epoch  int
}

// RegisterRecord journals a tenant's existence and budget parameters,
// so recovery can rebuild an accountant before replaying its spends.
type RegisterRecord struct {
	Tenant      string
	Def         Definition
	Alpha       float64
	BudgetEps   float64
	BudgetDelta float64
}

// Journal is the persistence hook the accountant writes through. Every
// method must return only once the record is durable: the accountant
// calls LogSpend with its mutex held, before applying the charge, so a
// successful return is the moment the spend becomes real. An error
// aborts the charge (mapped to ErrPersistence) — over-charging on a
// crash after LogSpend is safe; under-charging is a privacy violation.
type Journal interface {
	LogSpend(SpendRecord) error
	LogAdvance(AdvanceRecord) error
	LogRegister(RegisterRecord) error
}

// AttachJournal routes this accountant's future charges and epoch
// advances through j, identified as tenant in the records.
func (a *Accountant) AttachJournal(j Journal, tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.journal = j
	a.tenant = tenant
}

// SpendTagged is Spend carrying the request identity for the journal.
func (a *Accountant) SpendTagged(l Loss, tag *SpendTag) error {
	return a.SpendAllTagged([]Loss{l}, tag)
}

// SpendAllTagged is SpendAll carrying the request identity for the
// journal. When a journal is attached the summed charge is made
// durable first — under the accountant's mutex, so the journal sees
// the tenant's charges in exactly apply order and recovery's replay
// reproduces the spent totals bit-for-bit — and a journal failure
// aborts the charge with ErrPersistence.
func (a *Accountant) SpendAllTagged(losses []Loss, tag *SpendTag) error {
	var sumEps, sumDelta float64
	for _, l := range losses {
		if !Implies(l.Def, a.def) || l.Alpha != a.alpha {
			return fmt.Errorf("%w: accountant is for %v(alpha=%g), got %v", ErrIncompatibleLoss, a.def, a.alpha, l)
		}
		if err := l.Validate(); err != nil {
			// Wrap in the sentinel so a serving layer classifies a
			// malformed loss as bad input (4xx), not a server fault.
			return fmt.Errorf("%w: %v", ErrInvalidLoss, err)
		}
		sumEps += l.Eps
		sumDelta += l.Delta
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spentEps+sumEps > a.budgetEps+1e-12 {
		return fmt.Errorf("%w: eps spent %g + %g > %g",
			ErrBudgetExhausted, a.spentEps, sumEps, a.budgetEps)
	}
	if a.spentDelta+sumDelta > a.budgetDelta+1e-15 {
		return fmt.Errorf("%w: delta spent %g + %g > %g",
			ErrBudgetExhausted, a.spentDelta, sumDelta, a.budgetDelta)
	}
	if a.journal != nil {
		rec := SpendRecord{Tenant: a.tenant, Eps: sumEps, Delta: sumDelta, Releases: len(losses)}
		if tag != nil {
			t := *tag
			rec.Tag = &t
		}
		if err := a.journal.LogSpend(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	a.spentEps += sumEps
	a.spentDelta += sumDelta
	a.numReleases += len(losses)
	cur := &a.ledger[len(a.ledger)-1]
	cur.Eps += sumEps
	cur.Delta += sumDelta
	cur.Releases += len(losses)
	return nil
}

// AdvanceEpochLogged is AdvanceEpoch through the journal: the advance
// record is made durable before the ledger moves, so recovery either
// replays the advance or never saw it — a ledger can't be caught
// between epochs. On journal failure the ledger is unchanged and the
// current epoch is returned with an ErrPersistence-wrapped error.
func (a *Accountant) AdvanceEpochLogged() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.ledger[len(a.ledger)-1].Epoch
	next := cur + 1
	if a.journal != nil {
		if err := a.journal.LogAdvance(AdvanceRecord{Tenant: a.tenant, Epoch: next}); err != nil {
			return cur, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	a.ledger = append(a.ledger, EpochSpend{Epoch: next})
	return next, nil
}

// Budget returns the accountant's total (ε, δ) budget.
func (a *Accountant) Budget() (eps, delta float64) {
	return a.budgetEps, a.budgetDelta
}

// Def returns the accountant's privacy definition and α.
func (a *Accountant) Def() (Definition, float64) {
	return a.def, a.alpha
}

// Restore reinstates recovered accounting state onto a freshly
// constructed accountant: spent totals, release count, and the
// per-epoch ledger, exactly as recorded — no budget check is applied,
// because a recovered spend is history, not a new charge (an operator
// may even have shrunk the budget below the recorded spend; the
// accountant then simply refuses further charges). It errors on an
// accountant that has already been charged or advanced, and on a
// ledger whose epochs do not strictly increase.
func (a *Accountant) Restore(spentEps, spentDelta float64, releases int, ledger []EpochSpend) error {
	if len(ledger) == 0 {
		return fmt.Errorf("privacy: restore needs a non-empty ledger")
	}
	for i := 1; i < len(ledger); i++ {
		if ledger[i].Epoch <= ledger[i-1].Epoch {
			return fmt.Errorf("privacy: restore ledger epochs must strictly increase (%d then %d)",
				ledger[i-1].Epoch, ledger[i].Epoch)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spentEps != 0 || a.spentDelta != 0 || a.numReleases != 0 || len(a.ledger) != 1 || a.ledger[0] != (EpochSpend{}) {
		return fmt.Errorf("privacy: restore onto an already-used accountant")
	}
	a.spentEps = spentEps
	a.spentDelta = spentDelta
	a.numReleases = releases
	a.ledger = append([]EpochSpend(nil), ledger...)
	return nil
}
