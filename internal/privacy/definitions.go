// Package privacy encodes the paper's privacy-definition layer: the three
// statutory requirements of Section 4, the privacy definitions of
// Sections 5–7 and which requirements each satisfies (Table 1), the
// minimum-ε computation behind Table 2, the composition theorems of
// Section 7.3, Bayes-factor semantics (Section 7.2), and a budget
// accountant for multi-release workflows.
package privacy

import "fmt"

// Requirement is one of the three statutory privacy requirements of
// Section 4.2, derived from Title 13 Section 9 as interpreted by the
// Census Bureau's Disclosure Review Board.
type Requirement int

const (
	// ReqEmployee (Definition 4.1): no re-identification of individuals —
	// an informed attacker's Bayes factor about any worker record is
	// bounded by e^ε.
	ReqEmployee Requirement = iota
	// ReqEmployerSize (Definition 4.2): no precise inference of
	// establishment size — the Bayes factor between sizes within a
	// multiplicative (1+α) window is bounded by e^ε.
	ReqEmployerSize
	// ReqEmployerShape (Definition 4.3): no precise inference of the
	// establishment's workforce composition.
	ReqEmployerShape
	numRequirements
)

// String returns the requirement's short label.
func (r Requirement) String() string {
	switch r {
	case ReqEmployee:
		return "individuals"
	case ReqEmployerSize:
		return "employer-size"
	case ReqEmployerShape:
		return "employer-shape"
	}
	return fmt.Sprintf("Requirement(%d)", int(r))
}

// Requirements returns all three requirements in Table 1 order.
func Requirements() []Requirement {
	return []Requirement{ReqEmployee, ReqEmployerSize, ReqEmployerShape}
}

// Definition identifies a privacy definition (or SDL scheme) from Table 1.
type Definition int

const (
	// InputNoiseInfusion is the current SDL protection (Section 5).
	InputNoiseInfusion Definition = iota
	// EdgeDP is differential privacy on individuals (edge-DP on the
	// bipartite graph, Section 6).
	EdgeDP
	// NodeDP is differential privacy on establishments (node-DP,
	// Section 6).
	NodeDP
	// StrongEREE is (α,ε)-ER-EE privacy (Definition 7.2).
	StrongEREE
	// WeakEREE is weak (α,ε)-ER-EE privacy (Definition 7.4).
	WeakEREE
	numDefinitions
)

// String returns the definition's name as used in Table 1.
func (d Definition) String() string {
	switch d {
	case InputNoiseInfusion:
		return "Input Noise Infusion"
	case EdgeDP:
		return "Differential Privacy (individuals)"
	case NodeDP:
		return "Differential Privacy (establishments)"
	case StrongEREE:
		return "ER-EE-privacy"
	case WeakEREE:
		return "Weak ER-EE privacy"
	}
	return fmt.Sprintf("Definition(%d)", int(d))
}

// Definitions returns all definitions in Table 1 row order.
func Definitions() []Definition {
	return []Definition{InputNoiseInfusion, EdgeDP, NodeDP, StrongEREE, WeakEREE}
}

// Satisfaction is a tri-state answer to "does definition D satisfy
// requirement R?".
type Satisfaction int

const (
	// No: the requirement is not satisfied (a counterexample exists).
	No Satisfaction = iota
	// Yes: the requirement is satisfied against all informed attackers.
	Yes
	// YesWeakAdversary: satisfied only against the weak attackers of
	// Θ_weak (Table 1's starred entry).
	YesWeakAdversary
)

// String renders the satisfaction as in Table 1.
func (s Satisfaction) String() string {
	switch s {
	case No:
		return "No"
	case Yes:
		return "Yes"
	case YesWeakAdversary:
		return "Yes*"
	}
	return fmt.Sprintf("Satisfaction(%d)", int(s))
}

// Satisfies returns Table 1's entry for (definition, requirement):
//
//	                         Individuals  Emp.Size  Emp.Shape
//	Input Noise Infusion     No           No        No
//	DP (individuals/edge)    Yes          No        No
//	DP (establishments/node) Yes          Yes       Yes
//	ER-EE privacy            Yes          Yes       Yes
//	Weak ER-EE privacy       Yes          Yes*      Yes
//
// The justifications are: Section 5.2's attacks (row 1), Claim B.1
// (rows 2–3), Theorem 7.1 (row 4) and Theorem 7.2 (row 5).
func Satisfies(d Definition, r Requirement) Satisfaction {
	switch d {
	case InputNoiseInfusion:
		return No
	case EdgeDP:
		if r == ReqEmployee {
			return Yes
		}
		return No
	case NodeDP, StrongEREE:
		return Yes
	case WeakEREE:
		if r == ReqEmployerSize {
			return YesWeakAdversary
		}
		return Yes
	}
	panic(fmt.Sprintf("privacy: unknown definition %d", int(d)))
}

// SatisfiesAll reports whether the definition satisfies all three
// requirements against informed attackers (weak-adversary-only entries do
// not count).
func SatisfiesAll(d Definition) bool {
	for _, r := range Requirements() {
		if Satisfies(d, r) != Yes {
			return false
		}
	}
	return true
}
