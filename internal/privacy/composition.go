package privacy

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Sentinel errors for the accountant's failure modes, so callers —
// HTTP front-ends in particular — can map outcomes to behavior
// (reject-with-retry-later vs reject-as-malformed) with errors.Is
// instead of matching message text.
var (
	// ErrBudgetExhausted: the charge would push the spent (ε, δ) past
	// the accountant's total budget. Nothing was spent.
	ErrBudgetExhausted = errors.New("privacy: budget exhausted")
	// ErrIncompatibleLoss: the loss's definition or α does not compose
	// with the accountant's (mixing them has no composition semantics).
	ErrIncompatibleLoss = errors.New("privacy: loss incompatible with accountant")
	// ErrInvalidLoss: the loss itself is malformed (non-positive ε,
	// δ outside [0,1), …) — bad input, not a budget condition, so a
	// serving layer should map it to a 4xx, never a 5xx.
	ErrInvalidLoss = errors.New("privacy: invalid loss")
)

// Loss is a privacy-loss triple (α, ε, δ). δ = 0 for pure definitions.
// α parameterizes the neighbor relation and does not compose — two losses
// can only be combined when their α (and definition) agree.
type Loss struct {
	Def   Definition
	Alpha float64
	Eps   float64
	Delta float64
}

// Validate returns an error describing the first invalid field, if any.
func (l Loss) Validate() error {
	if !(l.Eps > 0) {
		return fmt.Errorf("privacy: eps must be positive, got %v", l.Eps)
	}
	if !(l.Delta >= 0 && l.Delta < 1) {
		return fmt.Errorf("privacy: delta must be in [0,1), got %v", l.Delta)
	}
	switch l.Def {
	case StrongEREE, WeakEREE:
		if !(l.Alpha > 0) {
			return fmt.Errorf("privacy: ER-EE privacy requires alpha > 0, got %v", l.Alpha)
		}
	case EdgeDP, NodeDP:
		// α is implied: 0 for edge-DP, ∞ for node-DP (Section 7.2).
	default:
		return fmt.Errorf("privacy: %v is not a formal privacy definition", l.Def)
	}
	return nil
}

// String renders the loss for diagnostics.
func (l Loss) String() string {
	if l.Delta > 0 {
		return fmt.Sprintf("%v(alpha=%g, eps=%g, delta=%g)", l.Def, l.Alpha, l.Eps, l.Delta)
	}
	return fmt.Sprintf("%v(alpha=%g, eps=%g)", l.Def, l.Alpha, l.Eps)
}

func compatible(a, b Loss) error {
	if a.Def != b.Def {
		return fmt.Errorf("privacy: cannot compose %v with %v", a.Def, b.Def)
	}
	if a.Alpha != b.Alpha {
		return fmt.Errorf("privacy: cannot compose different alphas %v and %v", a.Alpha, b.Alpha)
	}
	return nil
}

// SequentialCompose implements Theorem 7.3 (and Theorem 2.1): releasing
// the outputs of two mechanisms on the same data costs the sum of the ε
// (and δ) losses. It applies identically to strong and weak ER-EE privacy.
func SequentialCompose(a, b Loss) (Loss, error) {
	if err := compatible(a, b); err != nil {
		return Loss{}, err
	}
	return Loss{Def: a.Def, Alpha: a.Alpha, Eps: a.Eps + b.Eps, Delta: a.Delta + b.Delta}, nil
}

// Partition describes how two sub-releases split the data, for parallel
// composition.
type Partition int

const (
	// DistinctEstablishments: the sub-datasets pertain to disjoint sets of
	// establishments (Theorem 7.4): parallel composition holds for both
	// strong and weak ER-EE privacy.
	DistinctEstablishments Partition = iota
	// DistinctWorkersSharedEstablishments: the sub-datasets pertain to
	// disjoint workers but can share establishments — e.g. "males in New
	// York" and "females in New York" (Theorem 7.5): parallel composition
	// holds for strong ER-EE privacy but NOT for weak.
	DistinctWorkersSharedEstablishments
)

// String names the partition for diagnostics.
func (p Partition) String() string {
	switch p {
	case DistinctEstablishments:
		return "distinct-establishments"
	case DistinctWorkersSharedEstablishments:
		return "distinct-workers-shared-establishments"
	}
	return fmt.Sprintf("Partition(%d)", int(p))
}

// ParallelCompose implements Theorems 7.4 and 7.5: the loss of releasing
// two mechanisms on disjoint parts of the data. For partitions where
// parallel composition holds the total ε is the max of the parts; where
// it does not hold (weak privacy across workers sharing establishments)
// it falls back to sequential composition and reports that via the
// returned fellBack flag.
func ParallelCompose(a, b Loss, p Partition) (total Loss, fellBack bool, err error) {
	if err := compatible(a, b); err != nil {
		return Loss{}, false, err
	}
	holds := true
	if p == DistinctWorkersSharedEstablishments && a.Def == WeakEREE {
		holds = false
	}
	if !holds {
		seq, err := SequentialCompose(a, b)
		return seq, true, err
	}
	return Loss{
		Def:   a.Def,
		Alpha: a.Alpha,
		Eps:   math.Max(a.Eps, b.Eps),
		Delta: math.Max(a.Delta, b.Delta),
	}, false, nil
}

// MarginalLoss returns the effective privacy loss of releasing every cell
// of a marginal query with per-cell loss cellLoss (Section 8's composition
// discussion):
//
//   - Under strong (α,ε)-ER-EE privacy, cells partition the workers
//     (Theorem 7.5 holds), so the marginal costs ε regardless of the
//     attributes involved.
//   - Under weak (α,ε)-ER-EE privacy, cells over establishment attributes
//     only partition the establishments (Theorem 7.4), so the marginal
//     costs ε; but a marginal involving worker attributes costs d·ε,
//     where d = workerDomainSize is the product of the worker-attribute
//     domain sizes in the query.
func MarginalLoss(cellLoss Loss, workerDomainSize int) (Loss, error) {
	if err := cellLoss.Validate(); err != nil {
		return Loss{}, err
	}
	if workerDomainSize < 1 {
		return Loss{}, fmt.Errorf("privacy: worker domain size must be >= 1, got %d", workerDomainSize)
	}
	out := cellLoss
	if cellLoss.Def == WeakEREE && workerDomainSize > 1 {
		out.Eps = cellLoss.Eps * float64(workerDomainSize)
		out.Delta = math.Min(1, cellLoss.Delta*float64(workerDomainSize))
	}
	return out, nil
}

// EpochSpend is one epoch's entry in the accountant's ledger: the loss
// charged against releases of that dataset epoch, and how many releases
// paid it. Epochs compose sequentially — the budget the accountant
// enforces is the sum over the ledger — because every epoch of a
// versioned dataset derives from the same underlying population:
// absorbing a quarterly delta does not refresh anyone's privacy.
type EpochSpend struct {
	Epoch    int
	Eps      float64
	Delta    float64
	Releases int
}

// Accountant tracks cumulative privacy loss across releases under
// sequential composition, enforcing a total budget. The α and definition
// are fixed at construction: mixing them has no composition semantics.
//
// Charges are additionally attributed to the current dataset epoch
// (AdvanceEpoch starts a new ledger entry; SpendByEpoch returns the
// ledger), giving a queryable spend-by-epoch view. Attribution is
// bookkeeping only: the enforced budget is the sequential composition
// across every epoch.
//
// An Accountant is safe for concurrent use: parallel releases charging
// the same budget serialize on an internal mutex, so the spent total is
// always the exact sequential composition of the successful charges.
type Accountant struct {
	def         Definition
	alpha       float64
	budgetEps   float64
	budgetDelta float64

	mu          sync.Mutex
	spentEps    float64
	spentDelta  float64
	numReleases int
	// ledger holds one entry per epoch since construction; the last
	// entry is the open epoch charges currently land in.
	ledger []EpochSpend
	// journal, when attached, makes every charge durable before it is
	// applied (see SpendAllTagged); tenant names this accountant in
	// the journaled records.
	journal Journal
	tenant  string
}

// NewAccountant creates an accountant for the given definition, α, and
// total (ε, δ) budget. The ledger opens at epoch 0.
func NewAccountant(def Definition, alpha, budgetEps, budgetDelta float64) (*Accountant, error) {
	probe := Loss{Def: def, Alpha: alpha, Eps: budgetEps, Delta: budgetDelta}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{
		def: def, alpha: alpha, budgetEps: budgetEps, budgetDelta: budgetDelta,
		ledger: []EpochSpend{{Epoch: 0}},
	}, nil
}

// Implies reports whether a guarantee under definition a is at least as
// strong as one under definition b (at the same α), so that a release
// certified under a may be charged against a budget stated under b.
// Strong (α,ε)-ER-EE privacy implies weak (α,ε)-ER-EE privacy: the weak
// α-neighbor pairs (Definition 7.3, which constrains every workforce
// property φ) are a subset of the strong pairs (Definition 7.1, which
// constrains only total size), so indistinguishability over the strong
// relation covers the weak one.
func Implies(a, b Definition) bool {
	if a == b {
		return true
	}
	return a == StrongEREE && b == WeakEREE
}

// Spend charges a release against the budget. It errors — without
// spending — if the charge would exhaust the budget or is incompatible.
// A loss under a definition that Implies the accountant's definition is
// accepted (e.g. a strong ER-EE release against a weak ER-EE budget).
func (a *Accountant) Spend(l Loss) error {
	return a.SpendAll([]Loss{l})
}

// SpendAll atomically charges a batch of releases: either every loss fits
// within the remaining budget and all are charged, or none is. Batched
// release pipelines use this so that a failing batch leaves the budget
// untouched instead of half-spent. With a journal attached the charge
// is made durable first — see SpendAllTagged.
func (a *Accountant) SpendAll(losses []Loss) error {
	return a.SpendAllTagged(losses, nil)
}

// AdvanceEpoch seals the current ledger entry and opens the next epoch,
// returning its number. The publisher calls this when it installs a new
// dataset snapshot, so subsequent charges are attributed to releases of
// the new epoch. (A release pinned to an older snapshot that charges
// after the advance is attributed to the open epoch — attribution
// follows spend time; the enforced total is unaffected.) With a
// journal attached a journal failure leaves the ledger unchanged; use
// AdvanceEpochLogged to observe it.
func (a *Accountant) AdvanceEpoch() int {
	n, _ := a.AdvanceEpochLogged()
	return n
}

// Epoch returns the open ledger epoch charges currently land in.
func (a *Accountant) Epoch() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ledger[len(a.ledger)-1].Epoch
}

// SpendByEpoch returns the per-epoch ledger, oldest first. The sum of
// the entries' (ε, δ) is exactly Spent's sequential composition.
func (a *Accountant) SpendByEpoch() []EpochSpend {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]EpochSpend(nil), a.ledger...)
}

// Spent returns the cumulative loss so far.
func (a *Accountant) Spent() Loss {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Loss{Def: a.def, Alpha: a.alpha, Eps: a.spentEps, Delta: a.spentDelta}
}

// Remaining returns the unspent (ε, δ) budget.
func (a *Accountant) Remaining() (eps, delta float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budgetEps - a.spentEps, a.budgetDelta - a.spentDelta
}

// Releases returns how many releases have been charged.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.numReleases
}
