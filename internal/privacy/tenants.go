package privacy

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
)

// Tenant is one named consumer of a shared release pipeline, carrying
// its own budget accountant. A multi-tenant front-end holds one
// publisher (one dataset, one shared truth cache — the truth is free in
// privacy terms) but charges each tenant's releases against that
// tenant's accountant alone, so one tenant exhausting its budget can
// never block another's releases.
type Tenant struct {
	// Name identifies the tenant in stats and logs. Unlike the API key
	// it is not a secret.
	Name string
	// Acct is the tenant's private budget accountant.
	Acct *Accountant
}

// Registry maps opaque API keys to tenants. It is safe for concurrent
// use; registration is expected at configuration time, lookups on every
// request.
//
// Keys are stored and looked up by SHA-256 digest, never as raw
// strings: the lookup's timing depends only on the (fixed) digest
// length, not on how long a prefix of a candidate key matches a
// registered one, so a caller probing the endpoint cannot recover a key
// byte-by-byte from response timing.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[[sha256.Size]byte]*Tenant
	byName  map[string]*Tenant
	journal Journal
}

// keyDigest fixes a key's map identity. SHA-256 is one-way, so even the
// (non-constant-time) map probe over digests leaks nothing useful about
// the registered keys themselves.
func keyDigest(key string) [sha256.Size]byte {
	return sha256.Sum256([]byte(key))
}

// NewRegistry returns an empty tenant registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[[sha256.Size]byte]*Tenant),
		byName: make(map[string]*Tenant),
	}
}

// Register adds a tenant under the given API key. Names and keys must
// be non-empty and unique: two tenants sharing a key would alias one
// budget, and a reused name would make spend attribution ambiguous.
func (r *Registry) Register(name, key string, a *Accountant) (*Tenant, error) {
	if name == "" || key == "" {
		return nil, fmt.Errorf("privacy: tenant name and API key must be non-empty")
	}
	if a == nil {
		return nil, fmt.Errorf("privacy: tenant %q needs an accountant", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return nil, fmt.Errorf("privacy: duplicate tenant name %q", name)
	}
	digest := keyDigest(key)
	if _, ok := r.byKey[digest]; ok {
		return nil, fmt.Errorf("privacy: duplicate API key for tenant %q", name)
	}
	if r.journal != nil {
		// The tenant's existence must be durable before any of its
		// charges can be: a spend record for an unknown tenant would be
		// unreplayable. On journal failure nothing is registered.
		if err := r.journal.LogRegister(registerRecord(name, a)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		a.AttachJournal(r.journal, name)
	}
	t := &Tenant{Name: name, Acct: a}
	r.byName[name] = t
	r.byKey[digest] = t
	return t, nil
}

func registerRecord(name string, a *Accountant) RegisterRecord {
	def, alpha := a.Def()
	eps, delta := a.Budget()
	return RegisterRecord{Tenant: name, Def: def, Alpha: alpha, BudgetEps: eps, BudgetDelta: delta}
}

// AttachJournal routes the registry's accounting through j: every
// already-registered tenant is journaled (a register record, in name
// order) and its accountant attached, and tenants registered later are
// journaled at registration time. The serving layer attaches the
// journal after recovery has restored the accountants, so the log
// always carries a tenant's registration before its first spend.
func (r *Registry) AttachJournal(j Journal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.byName[name]
		if err := j.LogRegister(registerRecord(name, t.Acct)); err != nil {
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		t.Acct.AttachJournal(j, name)
	}
	r.journal = j
	return nil
}

// Lookup resolves an API key to its tenant. The key is compared by
// SHA-256 digest (see Registry), so lookup time carries no information
// about how close a wrong key is to a right one.
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	digest := keyDigest(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byKey[digest]
	return t, ok
}

// Tenant returns the tenant registered under the (non-secret) name.
func (r *Registry) Tenant(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// Tenants returns every registered tenant, sorted by name so callers
// iterating the registry (stats endpoints, epoch advances) behave
// deterministically.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.byName))
	for _, t := range r.byName {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// AdvanceEpoch advances every tenant's spend-by-epoch ledger, in name
// order. The serving layer calls this when its publisher absorbs a
// quarterly delta, so each tenant's subsequent charges are attributed
// to the new dataset epoch. Budgets are untouched — epochs compose
// sequentially, an update never refreshes anyone's privacy.
//
// With a journal attached each advance is durable before that ledger
// moves. A journal failure stops the sweep: tenants before the failure
// have advanced (durably), the rest have not — recovery reconciles
// every ledger to the publisher's epoch, so the gap heals on restart.
func (r *Registry) AdvanceEpoch() error {
	for _, t := range r.Tenants() {
		if _, err := t.Acct.AdvanceEpochLogged(); err != nil {
			return fmt.Errorf("privacy: advancing tenant %q: %w", t.Name, err)
		}
	}
	return nil
}
