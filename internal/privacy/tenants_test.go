package privacy

import (
	"errors"
	"testing"
)

func testAccountant(t *testing.T, eps float64) *Accountant {
	t.Helper()
	a, err := NewAccountant(WeakEREE, 0.1, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	ta, err := r.Register("alice", "key-a", testAccountant(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("bob", "key-b", testAccountant(t, 20)); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Lookup("key-a"); !ok || got != ta {
		t.Fatalf("Lookup(key-a) = %v, %v; want alice's tenant", got, ok)
	}
	if _, ok := r.Lookup("key-c"); ok {
		t.Fatal("Lookup of unregistered key succeeded")
	}
	if got, ok := r.Tenant("alice"); !ok || got != ta {
		t.Fatalf("Tenant(alice) = %v, %v; want alice's tenant", got, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryRejectsDuplicatesAndEmpties(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("alice", "key-a", testAccountant(t, 10)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		desc, name, key string
		acct            *Accountant
	}{
		{"duplicate name", "alice", "key-x", testAccountant(t, 1)},
		{"duplicate key", "carol", "key-a", testAccountant(t, 1)},
		{"empty name", "", "key-y", testAccountant(t, 1)},
		{"empty key", "dave", "", testAccountant(t, 1)},
		{"nil accountant", "erin", "key-z", nil},
	}
	for _, c := range cases {
		if _, err := r.Register(c.name, c.key, c.acct); err == nil {
			t.Errorf("%s: Register succeeded, want error", c.desc)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("failed registrations changed the registry: Len = %d, want 1", r.Len())
	}
}

func TestRegistryTenantsSortedByName(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zoe", "alice", "mallory"} {
		if _, err := r.Register(name, "key-"+name, testAccountant(t, 5)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Tenants()
	want := []string{"alice", "mallory", "zoe"}
	for i, w := range want {
		if got[i].Name != w {
			t.Fatalf("Tenants()[%d] = %q, want %q", i, got[i].Name, w)
		}
	}
}

// TestRegistryBudgetsAreIsolated: exhausting one tenant's accountant
// has no effect on another's remaining budget or ability to spend.
func TestRegistryBudgetsAreIsolated(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register("alice", "key-a", testAccountant(t, 2))
	b, _ := r.Register("bob", "key-b", testAccountant(t, 10))
	loss := Loss{Def: WeakEREE, Alpha: 0.1, Eps: 2}
	if err := a.Acct.Spend(loss); err != nil {
		t.Fatal(err)
	}
	if err := a.Acct.Spend(loss); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("alice's second spend = %v, want ErrBudgetExhausted", err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Acct.Spend(loss); err != nil {
			t.Fatalf("bob's spend %d failed after alice exhausted: %v", i, err)
		}
	}
	if eps, _ := b.Acct.Remaining(); eps != 0 {
		t.Fatalf("bob's remaining eps = %g, want 0", eps)
	}
}

// TestRegistryAdvanceEpoch: the registry advances every tenant's ledger
// in lockstep.
func TestRegistryAdvanceEpoch(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Register("alice", "key-a", testAccountant(t, 10))
	b, _ := r.Register("bob", "key-b", testAccountant(t, 10))
	r.AdvanceEpoch()
	r.AdvanceEpoch()
	if a.Acct.Epoch() != 2 || b.Acct.Epoch() != 2 {
		t.Fatalf("epochs = %d, %d; want 2, 2", a.Acct.Epoch(), b.Acct.Epoch())
	}
}

// TestAccountantSentinelErrors: the accountant's failure modes carry
// the typed sentinels callers map to transport status codes.
func TestAccountantSentinelErrors(t *testing.T) {
	a := testAccountant(t, 1)
	cases := []struct {
		desc string
		loss Loss
		want error
	}{
		{"eps over budget", Loss{Def: WeakEREE, Alpha: 0.1, Eps: 2}, ErrBudgetExhausted},
		{"wrong alpha", Loss{Def: WeakEREE, Alpha: 0.5, Eps: 0.1}, ErrIncompatibleLoss},
		{"wrong definition", Loss{Def: EdgeDP, Eps: 0.1}, ErrIncompatibleLoss},
		{"invalid loss", Loss{Def: WeakEREE, Alpha: 0.1, Eps: 0}, ErrInvalidLoss},
		{"invalid delta", Loss{Def: WeakEREE, Alpha: 0.1, Eps: 0.1, Delta: 1.5}, ErrInvalidLoss},
	}
	for _, c := range cases {
		if err := a.Spend(c.loss); !errors.Is(err, c.want) {
			t.Errorf("%s: Spend = %v, want errors.Is %v", c.desc, err, c.want)
		}
	}
	// Delta exhaustion carries the same sentinel.
	ad, err := NewAccountant(WeakEREE, 0.1, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.Spend(Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1, Delta: 1e-3}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("delta over budget: Spend = %v, want ErrBudgetExhausted", err)
	}
	// Nothing was spent by any failed charge.
	if eps, delta := a.Remaining(); eps != 1 || delta != 0 {
		t.Fatalf("failed spends consumed budget: remaining = %g, %g", eps, delta)
	}
}
