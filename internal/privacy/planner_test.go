package privacy

import (
	"math"
	"testing"
)

func TestPlanReleasesEvenSplit(t *testing.T) {
	plan, err := PlanReleases(WeakEREE, 0.1, 8.0, 0.1, []ReleaseRequest{
		{Name: "workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "by-sex-edu", Weight: 1, WorkerDomainSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := plan.Release("workplace")
	if err != nil {
		t.Fatal(err)
	}
	if wp.MarginalEps != 4 || wp.CellEps != 4 {
		t.Errorf("workplace allocation = %+v, want marginal 4, cell 4", wp)
	}
	se, err := plan.Release("by-sex-edu")
	if err != nil {
		t.Fatal(err)
	}
	if se.MarginalEps != 4 || se.CellEps != 0.5 {
		t.Errorf("sex-edu allocation = %+v, want marginal 4, cell 0.5 (d=8)", se)
	}
	total := plan.TotalLoss()
	if math.Abs(total.Eps-8) > 1e-12 || math.Abs(total.Delta-0.1) > 1e-12 {
		t.Errorf("total loss = %v, want the full budget", total)
	}
}

func TestPlanReleasesWeighted(t *testing.T) {
	plan, err := PlanReleases(StrongEREE, 0.1, 10.0, 0, []ReleaseRequest{
		{Name: "a", Weight: 3, WorkerDomainSize: 1},
		{Name: "b", Weight: 1, WorkerDomainSize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plan.Release("a")
	b, _ := plan.Release("b")
	if math.Abs(a.MarginalEps-7.5) > 1e-12 || math.Abs(b.MarginalEps-2.5) > 1e-12 {
		t.Errorf("weighted allocations = %v / %v, want 7.5 / 2.5", a.MarginalEps, b.MarginalEps)
	}
}

func TestPlanReleasesValidation(t *testing.T) {
	cases := []struct {
		name string
		def  Definition
		reqs []ReleaseRequest
	}{
		{"empty", WeakEREE, nil},
		{"zero weight", WeakEREE, []ReleaseRequest{{Name: "a", Weight: 0, WorkerDomainSize: 1}}},
		{"no name", WeakEREE, []ReleaseRequest{{Weight: 1, WorkerDomainSize: 1}}},
		{"duplicate", WeakEREE, []ReleaseRequest{
			{Name: "a", Weight: 1, WorkerDomainSize: 1},
			{Name: "a", Weight: 1, WorkerDomainSize: 1},
		}},
		{"bad domain", WeakEREE, []ReleaseRequest{{Name: "a", Weight: 1, WorkerDomainSize: 0}}},
		{"surcharge under strong", StrongEREE, []ReleaseRequest{{Name: "a", Weight: 1, WorkerDomainSize: 8}}},
	}
	for _, c := range cases {
		if _, err := PlanReleases(c.def, 0.1, 4, 0, c.reqs); err == nil {
			t.Errorf("%s: plan accepted", c.name)
		}
	}
	if _, err := PlanReleases(WeakEREE, 0, 4, 0, []ReleaseRequest{{Name: "a", Weight: 1, WorkerDomainSize: 1}}); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestPlanFeasible(t *testing.T) {
	plan, err := PlanReleases(WeakEREE, 0.1, 4.0, 0.05, []ReleaseRequest{
		{Name: "coarse", Weight: 1, WorkerDomainSize: 1},
		{Name: "fine", Weight: 1, WorkerDomainSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// coarse gets cell eps 2, fine gets 0.25. Against a minimum of 0.5
	// (Smooth Gamma at alpha=0.1 needs ~0.477), fine is infeasible.
	infeasible := plan.Feasible(0.5)
	if len(infeasible) != 1 || infeasible[0] != "fine" {
		t.Errorf("infeasible = %v, want [fine]", infeasible)
	}
	if got := plan.Feasible(0); got != nil {
		t.Errorf("zero minimum should make everything feasible, got %v", got)
	}
}

func TestPlanIntegratesWithAccountant(t *testing.T) {
	plan, err := PlanReleases(WeakEREE, 0.1, 4.0, 0, []ReleaseRequest{
		{Name: "q1", Weight: 1, WorkerDomainSize: 1},
		{Name: "q2", Weight: 1, WorkerDomainSize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	acct, err := NewAccountant(WeakEREE, 0.1, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Releases {
		if err := acct.Spend(Loss{Def: WeakEREE, Alpha: 0.1, Eps: r.MarginalEps}); err != nil {
			t.Fatalf("planned release %q rejected by accountant: %v", r.Name, err)
		}
	}
	eps, _ := acct.Remaining()
	if math.Abs(eps) > 1e-9 {
		t.Errorf("plan should exactly exhaust the budget, %v left", eps)
	}
}

func TestPlanReleaseUnknownName(t *testing.T) {
	plan, err := PlanReleases(StrongEREE, 0.1, 1, 0, []ReleaseRequest{
		{Name: "a", Weight: 1, WorkerDomainSize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Release("nope"); err == nil {
		t.Error("unknown release name accepted")
	}
}
