package privacy

import (
	"sync"
	"testing"
)

// TestAccountantEpochLedger pins the per-epoch ledger: charges land in
// the open epoch, AdvanceEpoch seals entries, and the ledger sums to
// the sequential-composition total the budget enforces.
func TestAccountantEpochLedger(t *testing.T) {
	a, err := NewAccountant(StrongEREE, 0.1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != 0 {
		t.Fatalf("fresh accountant opens at epoch %d, want 0", a.Epoch())
	}
	l := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	for i := 0; i < 3; i++ {
		if err := a.Spend(l); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.AdvanceEpoch(); got != 1 {
		t.Fatalf("AdvanceEpoch = %d, want 1", got)
	}
	if err := a.Spend(l); err != nil {
		t.Fatal(err)
	}
	a.AdvanceEpoch() // epoch 2 stays empty
	ledger := a.SpendByEpoch()
	want := []EpochSpend{
		{Epoch: 0, Eps: 3, Releases: 3},
		{Epoch: 1, Eps: 1, Releases: 1},
		{Epoch: 2},
	}
	if len(ledger) != len(want) {
		t.Fatalf("ledger has %d entries, want %d: %+v", len(ledger), len(want), ledger)
	}
	var sumEps float64
	for i, e := range ledger {
		if e != want[i] {
			t.Errorf("ledger[%d] = %+v, want %+v", i, e, want[i])
		}
		sumEps += e.Eps
	}
	if spent := a.Spent(); spent.Eps != sumEps {
		t.Errorf("ledger sums to eps %g, Spent reports %g", sumEps, spent.Eps)
	}
}

// TestAccountantBudgetSpansEpochs verifies sequential composition across
// epochs: advancing the epoch does not refresh the budget.
func TestAccountantBudgetSpansEpochs(t *testing.T) {
	a, err := NewAccountant(WeakEREE, 0.1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := Loss{Def: WeakEREE, Alpha: 0.1, Eps: 2}
	if err := a.Spend(l); err != nil {
		t.Fatal(err)
	}
	a.AdvanceEpoch()
	if err := a.Spend(l); err == nil {
		t.Fatal("budget refreshed across epochs: second 2-eps charge fit a 3-eps budget")
	}
	ledger := a.SpendByEpoch()
	if ledger[1].Releases != 0 || ledger[1].Eps != 0 {
		t.Errorf("failed charge still entered the ledger: %+v", ledger[1])
	}
}

// TestAccountantEpochLedgerConcurrent charges from many goroutines with
// interleaved advances; the ledger total must equal the spent total
// regardless of which epoch each charge was attributed to.
func TestAccountantEpochLedgerConcurrent(t *testing.T) {
	a, err := NewAccountant(StrongEREE, 0.5, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := Loss{Def: StrongEREE, Alpha: 0.5, Eps: 1}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := a.Spend(l); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for e := 0; e < 4; e++ {
		a.AdvanceEpoch()
	}
	wg.Wait()
	var sumEps float64
	var releases int
	for _, e := range a.SpendByEpoch() {
		sumEps += e.Eps
		releases += e.Releases
	}
	if sumEps != 400 || releases != 400 {
		t.Errorf("ledger totals (eps=%g, releases=%d), want (400, 400)", sumEps, releases)
	}
	if got := a.Spent().Eps; got != 400 {
		t.Errorf("Spent().Eps = %g, want 400", got)
	}
}
