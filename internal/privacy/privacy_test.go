package privacy

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTable1Matrix(t *testing.T) {
	// The exact Table 1 entries.
	want := map[Definition][3]Satisfaction{
		InputNoiseInfusion: {No, No, No},
		EdgeDP:             {Yes, No, No},
		NodeDP:             {Yes, Yes, Yes},
		StrongEREE:         {Yes, Yes, Yes},
		WeakEREE:           {Yes, YesWeakAdversary, Yes},
	}
	for def, row := range want {
		for i, req := range Requirements() {
			if got := Satisfies(def, req); got != row[i] {
				t.Errorf("Satisfies(%v, %v) = %v, want %v", def, req, got, row[i])
			}
		}
	}
}

func TestSatisfiesAll(t *testing.T) {
	if SatisfiesAll(InputNoiseInfusion) || SatisfiesAll(EdgeDP) || SatisfiesAll(WeakEREE) {
		t.Error("definitions that fail a requirement reported as satisfying all")
	}
	if !SatisfiesAll(NodeDP) || !SatisfiesAll(StrongEREE) {
		t.Error("NodeDP and StrongEREE satisfy all requirements")
	}
}

func TestStrings(t *testing.T) {
	for _, d := range Definitions() {
		if d.String() == "" {
			t.Errorf("definition %d has empty name", int(d))
		}
	}
	for _, r := range Requirements() {
		if r.String() == "" {
			t.Errorf("requirement %d has empty name", int(r))
		}
	}
	for _, s := range []Satisfaction{No, Yes, YesWeakAdversary} {
		if s.String() == "" {
			t.Error("satisfaction has empty string")
		}
	}
	if (Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}).String() == "" {
		t.Error("loss string empty")
	}
	if (Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1, Delta: 0.01}).String() == "" {
		t.Error("loss string with delta empty")
	}
}

func TestLossValidate(t *testing.T) {
	good := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Loss{
		{Def: StrongEREE, Alpha: 0.1, Eps: 0},
		{Def: StrongEREE, Alpha: 0, Eps: 1},
		{Def: StrongEREE, Alpha: 0.1, Eps: 1, Delta: 1},
		{Def: InputNoiseInfusion, Alpha: 0.1, Eps: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("loss %d should be invalid: %v", i, l)
		}
	}
	edgeDP := Loss{Def: EdgeDP, Eps: 1}
	if err := edgeDP.Validate(); err != nil {
		t.Errorf("edge-DP loss without alpha should validate: %v", err)
	}
}

func TestSequentialCompose(t *testing.T) {
	a := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1, Delta: 0.01}
	b := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 2, Delta: 0.02}
	got, err := SequentialCompose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Eps != 3 || math.Abs(got.Delta-0.03) > 1e-15 {
		t.Errorf("sequential composition = %v, want eps=3 delta=0.03", got)
	}
}

func TestSequentialComposeIncompatible(t *testing.T) {
	a := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	if _, err := SequentialCompose(a, Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1}); err == nil {
		t.Error("different definitions composed")
	}
	if _, err := SequentialCompose(a, Loss{Def: StrongEREE, Alpha: 0.2, Eps: 1}); err == nil {
		t.Error("different alphas composed")
	}
}

func TestParallelComposeTheorem74(t *testing.T) {
	// Distinct establishments: max for both strong and weak.
	for _, def := range []Definition{StrongEREE, WeakEREE} {
		a := Loss{Def: def, Alpha: 0.1, Eps: 1}
		b := Loss{Def: def, Alpha: 0.1, Eps: 2}
		got, fellBack, err := ParallelCompose(a, b, DistinctEstablishments)
		if err != nil {
			t.Fatal(err)
		}
		if fellBack {
			t.Errorf("%v: parallel composition over distinct establishments fell back", def)
		}
		if got.Eps != 2 {
			t.Errorf("%v: eps = %v, want max = 2", def, got.Eps)
		}
	}
}

func TestParallelComposeTheorem75(t *testing.T) {
	// Distinct workers, shared establishments: holds for strong, fails
	// (falls back to sequential) for weak.
	a := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	b := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	got, fellBack, err := ParallelCompose(a, b, DistinctWorkersSharedEstablishments)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack || got.Eps != 1 {
		t.Errorf("strong: got %v fellBack=%v, want eps=1 without fallback", got, fellBack)
	}

	aw := Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1}
	bw := Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1}
	gotW, fellBackW, err := ParallelCompose(aw, bw, DistinctWorkersSharedEstablishments)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBackW || gotW.Eps != 2 {
		t.Errorf("weak: got %v fellBack=%v, want sequential eps=2", gotW, fellBackW)
	}
}

func TestMarginalLoss(t *testing.T) {
	cell := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 0.5}
	got, err := MarginalLoss(cell, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Eps != 0.5 {
		t.Errorf("strong marginal eps = %v, want 0.5 (parallel composes)", got.Eps)
	}

	weakCell := Loss{Def: WeakEREE, Alpha: 0.1, Eps: 0.5}
	gotW, err := MarginalLoss(weakCell, 8)
	if err != nil {
		t.Fatal(err)
	}
	if gotW.Eps != 4 {
		t.Errorf("weak marginal over worker attrs eps = %v, want d*eps = 4", gotW.Eps)
	}
	gotWE, err := MarginalLoss(weakCell, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotWE.Eps != 0.5 {
		t.Errorf("weak establishment-only marginal eps = %v, want 0.5", gotWE.Eps)
	}
	if _, err := MarginalLoss(cell, 0); err == nil {
		t.Error("domain size 0 accepted")
	}
}

func TestAccountant(t *testing.T) {
	a, err := NewAccountant(StrongEREE, 0.1, 4.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	spend := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1.5, Delta: 0.03}
	if err := a.Spend(spend); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(spend); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(spend); err == nil {
		t.Error("third spend should exhaust eps budget (4.5 > 4)")
	}
	if a.Releases() != 2 {
		t.Errorf("releases = %d, want 2", a.Releases())
	}
	eps, delta := a.Remaining()
	if math.Abs(eps-1.0) > 1e-12 || math.Abs(delta-0.04) > 1e-12 {
		t.Errorf("remaining = (%v, %v), want (1, 0.04)", eps, delta)
	}
	if got := a.Spent(); got.Eps != 3.0 {
		t.Errorf("spent eps = %v, want 3", got.Eps)
	}
}

func TestAccountantRejectsMismatched(t *testing.T) {
	a, err := NewAccountant(StrongEREE, 0.1, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1}); err == nil {
		t.Error("wrong definition accepted")
	}
	if err := a.Spend(Loss{Def: StrongEREE, Alpha: 0.2, Eps: 1}); err == nil {
		t.Error("wrong alpha accepted")
	}
	if err := a.Spend(Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1, Delta: 0.01}); err == nil {
		t.Error("delta spend against zero delta budget accepted")
	}
}

func TestNeighborDistance(t *testing.T) {
	// x=100 -> y=110 at alpha=0.1 is one step.
	if got := NeighborDistance(100, 110, 0.1); got != 1 {
		t.Errorf("distance(100,110) = %d, want 1", got)
	}
	// Two steps: 100 -> 121.
	if got := NeighborDistance(100, 121, 0.1); got != 2 {
		t.Errorf("distance(100,121) = %d, want 2", got)
	}
	// Symmetric.
	if NeighborDistance(121, 100, 0.1) != NeighborDistance(100, 121, 0.1) {
		t.Error("distance not symmetric")
	}
	// Same size: 0.
	if got := NeighborDistance(50, 50, 0.1); got != 0 {
		t.Errorf("distance(50,50) = %d, want 0", got)
	}
	// Just over one step: 100 -> 111 needs 2.
	if got := NeighborDistance(100, 111, 0.1); got != 2 {
		t.Errorf("distance(100,111) = %d, want 2", got)
	}
}

func TestNeighborDistanceProperty(t *testing.T) {
	// Property: (1+alpha)^(d-1) < y/x <= (1+alpha)^d for the returned d >= 1.
	f := func(xRaw uint16, yRaw uint32, aRaw uint8) bool {
		x := float64(xRaw%1000) + 1
		y := float64(yRaw%100000) + 1
		alpha := 0.01 + float64(aRaw%20)/100
		if x > y {
			x, y = y, x
		}
		d := NeighborDistance(x, y, alpha)
		if x == y {
			return d == 0
		}
		ratio := y / x
		upper := math.Pow(1+alpha, float64(d))
		lower := math.Pow(1+alpha, float64(d-1))
		return ratio <= upper*(1+1e-9) && ratio > lower*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBayesFactorBound(t *testing.T) {
	if got := BayesFactorBound(0.5, 3); got != 1.5 {
		t.Errorf("bound = %v, want 1.5", got)
	}
	// Section 7.2: sizes x and (1+alpha)^k x are distinguishable with
	// log-odds at most eps*k.
	got := SizeInferenceBound(100, 100*math.Pow(1.1, 4), 0.1, 0.5)
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("size inference bound = %v, want 2.0", got)
	}
}

func TestDeltaAtDistance(t *testing.T) {
	// d=1 recovers delta.
	if got := DeltaAtDistance(1, 0.01, 1); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("delta at d=1 = %v, want 0.01", got)
	}
	// Grows geometrically and caps at 1.
	d5 := DeltaAtDistance(1, 0.01, 5)
	if d5 <= DeltaAtDistance(1, 0.01, 2) {
		t.Error("delta amplification not increasing in distance")
	}
	if got := DeltaAtDistance(2, 0.05, 20); got != 1 {
		t.Errorf("amplified delta should cap at 1, got %v", got)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(rows))
	}
	byKey := map[[2]float64]float64{}
	for _, r := range rows {
		byKey[[2]float64{r.Alpha, r.Delta}] = r.MinEps
		if r.MinEps <= 0 {
			t.Errorf("min eps for alpha=%v delta=%v is %v", r.Alpha, r.Delta, r.MinEps)
		}
	}
	// delta=5e-4 rows reproduce the paper's printed values.
	if got := byKey[[2]float64{0.01, 5e-4}]; math.Abs(got-0.15) > 0.01 {
		t.Errorf("min eps(0.01, 5e-4) = %v, paper prints 0.15", got)
	}
	if got := byKey[[2]float64{0.10, 5e-4}]; math.Abs(got-1.45) > 0.01 {
		t.Errorf("min eps(0.10, 5e-4) = %v, paper prints 1.45", got)
	}
	// Monotone in alpha for each delta.
	if !(byKey[[2]float64{0.01, 0.05}] < byKey[[2]float64{0.10, 0.05}] &&
		byKey[[2]float64{0.10, 0.05}] < byKey[[2]float64{0.20, 0.05}]) {
		t.Error("min eps not increasing in alpha at delta=0.05")
	}
	// Smaller delta requires larger eps.
	if !(byKey[[2]float64{0.10, 5e-4}] > byKey[[2]float64{0.10, 0.05}]) {
		t.Error("min eps not decreasing in delta")
	}
}

func TestEdgeDPLeakage(t *testing.T) {
	// Section 6: at eps=1, p=0.01 the noise is at most ~4.6 ("at most 5").
	got := EdgeDPLeakage(1, 0.01)
	if got < 4.5 || got > 5 {
		t.Errorf("leakage bound = %v, want ~4.6", got)
	}
	// The bound is absolute: it does not grow with establishment size,
	// which is exactly why Definition 4.2 fails under edge-DP.
}

func TestPartitionString(t *testing.T) {
	if DistinctEstablishments.String() == "" || DistinctWorkersSharedEstablishments.String() == "" {
		t.Error("partition strings empty")
	}
}

func TestNewAccountantValidates(t *testing.T) {
	if _, err := NewAccountant(StrongEREE, 0, 1, 0); err == nil {
		t.Error("alpha=0 accepted for ER-EE accountant")
	}
	if _, err := NewAccountant(StrongEREE, 0.1, 0, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestImplies(t *testing.T) {
	if !Implies(StrongEREE, WeakEREE) {
		t.Error("strong ER-EE privacy should imply weak")
	}
	if Implies(WeakEREE, StrongEREE) {
		t.Error("weak must not imply strong")
	}
	if !Implies(EdgeDP, EdgeDP) {
		t.Error("definitions should imply themselves")
	}
	if Implies(NodeDP, StrongEREE) || Implies(EdgeDP, WeakEREE) {
		t.Error("graph-DP definitions carry no alpha and must not cross-spend")
	}
}

func TestAccountantAcceptsImpliedDefinition(t *testing.T) {
	a, err := NewAccountant(WeakEREE, 0.1, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A strong-ER-EE release (workplace-only marginal) charged against a
	// weak-ER-EE budget must be accepted.
	if err := a.Spend(Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}); err != nil {
		t.Fatalf("strong release rejected by weak accountant: %v", err)
	}
	// The reverse direction must still be rejected.
	s, err := NewAccountant(StrongEREE, 0.1, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spend(Loss{Def: WeakEREE, Alpha: 0.1, Eps: 1}); err == nil {
		t.Error("weak release accepted by strong accountant")
	}
}

func TestAccountantConcurrentSpend(t *testing.T) {
	// 8 goroutines × 16 spends of ε=1 against a budget of 100: exactly
	// 100 spends must succeed and 28 must be rejected, and the spent
	// total must be the exact sequential composition of the successes.
	a, err := NewAccountant(StrongEREE, 0.1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	loss := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 1}
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if err := a.Spend(loss); err == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if accepted.Load() != 100 {
		t.Errorf("accepted %d spends, want exactly 100", accepted.Load())
	}
	if got := a.Spent().Eps; got != 100 {
		t.Errorf("spent eps = %g, want 100", got)
	}
	if got := a.Releases(); got != 100 {
		t.Errorf("releases = %d, want 100", got)
	}
}

func TestAccountantSpendAllAtomic(t *testing.T) {
	a, err := NewAccountant(StrongEREE, 0.1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := Loss{Def: StrongEREE, Alpha: 0.1, Eps: 2}
	// Batch of three ε=2 losses exceeds the budget of 5: nothing may be
	// charged.
	if err := a.SpendAll([]Loss{l, l, l}); err == nil {
		t.Fatal("over-budget batch accepted")
	}
	if got := a.Spent().Eps; got != 0 {
		t.Fatalf("failed batch left %g eps spent, want 0", got)
	}
	// A fitting batch charges everything.
	if err := a.SpendAll([]Loss{l, l}); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent().Eps; got != 4 {
		t.Fatalf("spent eps = %g, want 4", got)
	}
	if got := a.Releases(); got != 2 {
		t.Fatalf("releases = %d, want 2", got)
	}
}
