package privacy

import (
	"fmt"
	"math"
)

// This file implements a release planner: given a total privacy-loss
// budget and a set of marginal releases an agency wants to publish, it
// allocates the budget across releases under sequential composition
// (Theorem 7.3), translating each release's share into the per-cell ε
// its mechanism must run at (undoing the d·ε surcharge of Theorem 7.5
// for worker-attribute marginals under weak privacy).
//
// The paper's Section 3.2 frames this as the analyst's problem — "the
// analyst is allowed to pose multiple queries as long as the total
// privacy loss ... is no greater than ε" — and the planner makes that
// arithmetic explicit and checkable.

// ReleaseRequest names one planned release and its composition facts.
type ReleaseRequest struct {
	// Name identifies the release in the plan.
	Name string
	// Weight is the release's relative share of the budget. Weights are
	// normalized; equal weights split the budget evenly.
	Weight float64
	// WorkerDomainSize is the product of worker-attribute domain sizes in
	// the release's marginal (1 for establishment-only marginals). Under
	// weak ER-EE privacy, releasing the marginal costs
	// WorkerDomainSize × the per-cell ε.
	WorkerDomainSize int
}

// PlannedRelease is one allocation in a finished plan.
type PlannedRelease struct {
	Name string
	// MarginalEps is the release's share of the total budget — what the
	// accountant will be charged.
	MarginalEps float64
	// CellEps is the ε each cell's mechanism must be instantiated with:
	// MarginalEps / WorkerDomainSize.
	CellEps float64
	// MarginalDelta and CellDelta are the δ analogues.
	MarginalDelta float64
	CellDelta     float64
	// WorkerDomainSize echoes the request.
	WorkerDomainSize int
}

// Plan is a complete budget allocation.
type Plan struct {
	Def         Definition
	Alpha       float64
	BudgetEps   float64
	BudgetDelta float64
	Releases    []PlannedRelease
}

// PlanReleases allocates the budget across the requests proportionally
// to their weights.
func PlanReleases(def Definition, alpha, budgetEps, budgetDelta float64, requests []ReleaseRequest) (*Plan, error) {
	probe := Loss{Def: def, Alpha: alpha, Eps: budgetEps, Delta: budgetDelta}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("privacy: plan needs at least one release")
	}
	var totalWeight float64
	seen := make(map[string]bool, len(requests))
	for _, r := range requests {
		if r.Name == "" {
			return nil, fmt.Errorf("privacy: release name must be non-empty")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("privacy: duplicate release name %q", r.Name)
		}
		seen[r.Name] = true
		if !(r.Weight > 0) {
			return nil, fmt.Errorf("privacy: release %q needs positive weight, got %v", r.Name, r.Weight)
		}
		if r.WorkerDomainSize < 1 {
			return nil, fmt.Errorf("privacy: release %q needs worker domain size >= 1, got %d",
				r.Name, r.WorkerDomainSize)
		}
		if r.WorkerDomainSize > 1 && def != WeakEREE {
			// The d·ε surcharge exists only under weak privacy; under the
			// strong definition worker-attribute marginals parallel-compose
			// (Theorem 7.5). A domain size > 1 is then simply ignored, but
			// flagging it prevents silent double-discounting.
			return nil, fmt.Errorf("privacy: release %q sets WorkerDomainSize=%d but definition %v has no d-surcharge; set it to 1",
				r.Name, r.WorkerDomainSize, def)
		}
		totalWeight += r.Weight
	}
	plan := &Plan{Def: def, Alpha: alpha, BudgetEps: budgetEps, BudgetDelta: budgetDelta}
	for _, r := range requests {
		share := r.Weight / totalWeight
		marginalEps := budgetEps * share
		marginalDelta := budgetDelta * share
		d := float64(r.WorkerDomainSize)
		plan.Releases = append(plan.Releases, PlannedRelease{
			Name:             r.Name,
			MarginalEps:      marginalEps,
			CellEps:          marginalEps / d,
			MarginalDelta:    marginalDelta,
			CellDelta:        marginalDelta / d,
			WorkerDomainSize: r.WorkerDomainSize,
		})
	}
	return plan, nil
}

// TotalLoss returns the plan's total loss under sequential composition,
// which by construction equals the budget (up to rounding).
func (p *Plan) TotalLoss() Loss {
	var eps, delta float64
	for _, r := range p.Releases {
		eps += r.MarginalEps
		delta += r.MarginalDelta
	}
	return Loss{Def: p.Def, Alpha: p.Alpha, Eps: eps, Delta: delta}
}

// Release returns the planned allocation with the given name.
func (p *Plan) Release(name string) (PlannedRelease, error) {
	for _, r := range p.Releases {
		if r.Name == name {
			return r, nil
		}
	}
	return PlannedRelease{}, fmt.Errorf("privacy: plan has no release %q", name)
}

// Feasible checks the plan against a per-release minimum cell ε (e.g.
// smooth.MinEpsilonLaplace for Smooth Laplace at the plan's α and a
// chosen δ, or 5·ln(1+α) for Smooth Gamma) and returns the names of
// releases whose allocation is too small to run.
func (p *Plan) Feasible(minCellEps float64) (infeasible []string) {
	if !(minCellEps >= 0) || math.IsInf(minCellEps, 0) {
		panic(fmt.Sprintf("privacy: invalid minimum cell eps %v", minCellEps))
	}
	for _, r := range p.Releases {
		if r.CellEps < minCellEps {
			infeasible = append(infeasible, r.Name)
		}
	}
	return infeasible
}
