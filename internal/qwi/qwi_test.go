package qwi

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/mech"
	"repro/internal/table"
)

func testPanel(t *testing.T, seed int64) *Panel {
	t.Helper()
	base := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(seed))
	p, err := GeneratePanel(base, DefaultPanelConfig(), dist.NewStreamFromSeed(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func workplaceQuery(t *testing.T, p *Panel) *table.Query {
	t.Helper()
	return table.MustNewQuery(p.Base.Schema(), lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
}

func TestPanelConfigValidate(t *testing.T) {
	if err := DefaultPanelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PanelConfig{
		{DeathRate: -0.1, GrowthSigma: 0.1},
		{DeathRate: 1, GrowthSigma: 0.1},
		{DeathRate: 0.1, GrowthSigma: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestGeneratePanelDeterministic(t *testing.T) {
	a := testPanel(t, 1)
	b := testPanel(t, 1)
	for i := range a.Q2 {
		if a.Q2[i] != b.Q2[i] {
			t.Fatalf("panel not deterministic at establishment %d", i)
		}
	}
}

func TestGeneratePanelDynamics(t *testing.T) {
	p := testPanel(t, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	deaths, grew, shrank := 0, 0, 0
	for i := range p.Q1 {
		switch {
		case p.Q2[i] == 0:
			deaths++
		case p.Q2[i] > p.Q1[i]:
			grew++
		case p.Q2[i] < p.Q1[i]:
			shrank++
		}
	}
	n := len(p.Q1)
	deathRate := float64(deaths) / float64(n)
	if math.Abs(deathRate-0.02) > 0.01 {
		t.Errorf("death rate = %v, want ~0.02", deathRate)
	}
	if grew == 0 || shrank == 0 {
		t.Error("no growth churn generated")
	}
}

func TestPanelValidateCatchesCorruption(t *testing.T) {
	p := testPanel(t, 3)
	p.Q1[0]++
	if err := p.Validate(); err == nil {
		t.Error("Q1 mismatch not caught")
	}
	p.Q1[0]--
	p.Q2[1] = -1
	if err := p.Validate(); err == nil {
		t.Error("negative employment not caught")
	}
}

func TestComputeFlowsIdentity(t *testing.T) {
	p := testPanel(t, 4)
	f, err := ComputeFlows(p, workplaceQuery(t, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeFlowsTotals(t *testing.T) {
	p := testPanel(t, 5)
	f, err := ComputeFlows(p, workplaceQuery(t, p))
	if err != nil {
		t.Fatal(err)
	}
	var bTotal, eTotal int64
	for cell := range f.Totals[FlowBeginning] {
		bTotal += f.Totals[FlowBeginning][cell]
		eTotal += f.Totals[FlowEnd][cell]
	}
	var wantB, wantE int64
	for i := range p.Q1 {
		wantB += int64(p.Q1[i])
		wantE += int64(p.Q2[i])
	}
	if bTotal != wantB || eTotal != wantE {
		t.Errorf("totals B=%d E=%d, want %d/%d", bTotal, eTotal, wantB, wantE)
	}
}

func TestComputeFlowsMaxContribution(t *testing.T) {
	p := testPanel(t, 6)
	q := workplaceQuery(t, p)
	f, err := ComputeFlows(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute JC x_v per cell by hand and compare.
	want := make([]int64, q.NumCells())
	for w, est := range p.Base.Establishments {
		cell := q.CellKey(est.Place, est.Industry, est.Ownership)
		if d := int64(p.Q2[w] - p.Q1[w]); d > 0 && d > want[cell] {
			want[cell] = d
		}
	}
	for cell := range want {
		if f.MaxContribution[FlowCreation][cell] != want[cell] {
			t.Fatalf("JC x_v cell %d = %d, want %d",
				cell, f.MaxContribution[FlowCreation][cell], want[cell])
		}
	}
}

func TestComputeFlowsRejectsWorkerAttrs(t *testing.T) {
	p := testPanel(t, 7)
	q := table.MustNewQuery(p.Base.Schema(), lodes.AttrPlace, lodes.AttrSex)
	if _, err := ComputeFlows(p, q); err == nil {
		t.Error("worker-attribute flow query accepted")
	}
}

func TestReleaseFlowsIdentityPreserved(t *testing.T) {
	// The derived E must satisfy the identity against the released B, JC,
	// JD exactly (post-processing is deterministic).
	p := testPanel(t, 8)
	f, err := ComputeFlows(p, workplaceQuery(t, p))
	if err != nil {
		t.Fatal(err)
	}
	m, err := mech.NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReleaseFlows(f, m, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for cell := range rel.Noisy[FlowEnd] {
		want := rel.Noisy[FlowBeginning][cell] + rel.Noisy[FlowCreation][cell] - rel.Noisy[FlowDestruction][cell]
		if math.Abs(rel.Noisy[FlowEnd][cell]-want) > 1e-9 {
			t.Fatalf("cell %d: derived E %v != identity %v", cell, rel.Noisy[FlowEnd][cell], want)
		}
	}
	if rel.ReleaseCount() != 3 {
		t.Errorf("release count = %d, want 3 (E derived free)", rel.ReleaseCount())
	}
}

func TestReleaseFlowsAccuracy(t *testing.T) {
	// Released flows track truth at reasonable eps; the derived E's error
	// is bounded by the sum of the three released errors.
	p := testPanel(t, 10)
	f, err := ComputeFlows(p, workplaceQuery(t, p))
	if err != nil {
		t.Fatal(err)
	}
	m, err := mech.NewSmoothLaplace(0.1, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 10
	parent := dist.NewStreamFromSeed(11)
	var errB, errE, errJC, errJD float64
	for trial := 0; trial < trials; trial++ {
		rel, err := ReleaseFlows(f, m, parent.SplitIndex("t", trial))
		if err != nil {
			t.Fatal(err)
		}
		for cell := range rel.Noisy[FlowEnd] {
			errB += math.Abs(rel.Noisy[FlowBeginning][cell] - float64(f.Totals[FlowBeginning][cell]))
			errE += math.Abs(rel.Noisy[FlowEnd][cell] - float64(f.Totals[FlowEnd][cell]))
			errJC += math.Abs(rel.Noisy[FlowCreation][cell] - float64(f.Totals[FlowCreation][cell]))
			errJD += math.Abs(rel.Noisy[FlowDestruction][cell] - float64(f.Totals[FlowDestruction][cell]))
		}
	}
	totalB := 0.0
	for _, v := range f.Totals[FlowBeginning] {
		totalB += float64(v)
	}
	if errB/trials > 0.2*totalB {
		t.Errorf("B release error %v too large vs total %v", errB/trials, totalB)
	}
	if errE > errB+errJC+errJD+1e-6 {
		t.Errorf("derived E error %v exceeds component sum %v", errE, errB+errJC+errJD)
	}
	// JC/JD have much smaller x_v (changes, not levels) so their absolute
	// error should be below B's.
	if errJC >= errB || errJD >= errB {
		t.Errorf("flow errors JC=%v JD=%v should be below B=%v (smaller x_v)", errJC, errJD, errB)
	}
}

func TestNetChange(t *testing.T) {
	p := testPanel(t, 12)
	f, err := ComputeFlows(p, workplaceQuery(t, p))
	if err != nil {
		t.Fatal(err)
	}
	m, err := mech.NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReleaseFlows(f, m, dist.NewStreamFromSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	net := rel.NetChange()
	for cell := range net {
		want := rel.Noisy[FlowCreation][cell] - rel.Noisy[FlowDestruction][cell]
		if net[cell] != want {
			t.Fatalf("net change cell %d = %v, want %v", cell, net[cell], want)
		}
	}
}

func TestFlowKindString(t *testing.T) {
	for k, want := range map[FlowKind]string{
		FlowBeginning: "B", FlowEnd: "E", FlowCreation: "JC", FlowDestruction: "JD",
	} {
		if k.String() != want {
			t.Errorf("flow %d string = %q, want %q", int(k), k.String(), want)
		}
	}
}
