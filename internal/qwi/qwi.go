// Package qwi extends the snapshot model longitudinally, implementing the
// establishment-based product family the paper's introduction and
// conclusion point at beyond LODES: Quarterly Workforce Indicator (QWI)
// style job-flow statistics. Two consecutive quarters of the same
// establishment frame yield, per workplace cell,
//
//	B  — beginning-of-quarter employment,
//	E  — end-of-quarter employment,
//	JC — job creation   = Σ_w max(ΔE_w, 0),
//	JD — job destruction = Σ_w max(−ΔE_w, 0),
//
// with the accounting identity E = B + JC − JD. Each flow is an
// establishment-additive count, so the paper's machinery transfers
// directly: the largest single-establishment contribution to a flow cell
// plays the role of x_v, smooth sensitivity is max(x_v·α, 1) exactly as
// in Lemma 8.5, and any cell mechanism releases the flow. Releasing B,
// JC and JD and *deriving* E through the identity costs 3ε instead of 4ε
// — the classic QWI consistency trick, here with a provable budget
// saving under Theorem 7.3.
package qwi

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/mech"
	"repro/internal/table"
)

// PanelConfig parameterizes the quarter-over-quarter dynamics.
type PanelConfig struct {
	// DeathRate is the probability an establishment closes (E_w = 0 in Q2).
	DeathRate float64
	// GrowthSigma is the log-normal dispersion of surviving
	// establishments' growth: Q2 = round(Q1 · exp(N(0, σ²))).
	GrowthSigma float64
}

// DefaultPanelConfig returns dynamics producing realistic churn: ~2%
// quarterly establishment deaths and ±10%-scale employment shocks.
func DefaultPanelConfig() PanelConfig {
	return PanelConfig{DeathRate: 0.02, GrowthSigma: 0.1}
}

// Validate returns an error describing the first invalid field, if any.
func (c PanelConfig) Validate() error {
	if !(c.DeathRate >= 0 && c.DeathRate < 1) {
		return fmt.Errorf("qwi: death rate must be in [0,1), got %v", c.DeathRate)
	}
	if !(c.GrowthSigma > 0) {
		return fmt.Errorf("qwi: growth sigma must be positive, got %v", c.GrowthSigma)
	}
	return nil
}

// Panel is a two-quarter establishment panel over a base snapshot's
// frame: per-establishment beginning and ending employment.
type Panel struct {
	Base *lodes.Dataset
	// Q1 and Q2 hold employment per establishment ID.
	Q1, Q2 []int
}

// GeneratePanel evolves the base snapshot one quarter forward.
func GeneratePanel(base *lodes.Dataset, cfg PanelConfig, s *dist.Stream) (*Panel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := base.NumEstablishments()
	p := &Panel{Base: base, Q1: make([]int, n), Q2: make([]int, n)}
	growth := dist.NewLogNormal(0, cfg.GrowthSigma)
	gs := s.Split("qwi-growth")
	for i, est := range base.Establishments {
		p.Q1[i] = est.Employment
		if gs.Float64() < cfg.DeathRate {
			p.Q2[i] = 0
			continue
		}
		q2 := int(math.Round(float64(est.Employment) * growth.Sample(gs)))
		if q2 < 1 {
			q2 = 1 // survivors retain at least one employee
		}
		p.Q2[i] = q2
	}
	return p, nil
}

// Validate checks panel consistency against its base.
func (p *Panel) Validate() error {
	if len(p.Q1) != p.Base.NumEstablishments() || len(p.Q2) != len(p.Q1) {
		return fmt.Errorf("qwi: panel length %d/%d does not match %d establishments",
			len(p.Q1), len(p.Q2), p.Base.NumEstablishments())
	}
	for i := range p.Q1 {
		if p.Q1[i] < 0 || p.Q2[i] < 0 {
			return fmt.Errorf("qwi: negative employment at establishment %d", i)
		}
		if p.Q1[i] != p.Base.Establishments[i].Employment {
			return fmt.Errorf("qwi: Q1 employment %d != base %d at establishment %d",
				p.Q1[i], p.Base.Establishments[i].Employment, i)
		}
	}
	return nil
}

// FlowKind identifies one QWI flow.
type FlowKind int

// The four flows of the accounting identity E = B + JC - JD.
const (
	FlowBeginning FlowKind = iota
	FlowEnd
	FlowCreation
	FlowDestruction
	numFlows
)

// String names the flow as QWI documentation does.
func (k FlowKind) String() string {
	switch k {
	case FlowBeginning:
		return "B"
	case FlowEnd:
		return "E"
	case FlowCreation:
		return "JC"
	case FlowDestruction:
		return "JD"
	}
	return fmt.Sprintf("FlowKind(%d)", int(k))
}

// contribution returns establishment w's contribution to the flow.
func (p *Panel) contribution(w int, k FlowKind) int64 {
	switch k {
	case FlowBeginning:
		return int64(p.Q1[w])
	case FlowEnd:
		return int64(p.Q2[w])
	case FlowCreation:
		if d := p.Q2[w] - p.Q1[w]; d > 0 {
			return int64(d)
		}
		return 0
	case FlowDestruction:
		if d := p.Q1[w] - p.Q2[w]; d > 0 {
			return int64(d)
		}
		return 0
	}
	panic(fmt.Sprintf("qwi: unknown flow %d", int(k)))
}

// Flows holds the true per-cell flow statistics of a workplace marginal,
// with the per-cell maximum single-establishment contribution each flow
// needs for smooth-sensitivity calibration.
type Flows struct {
	Query *table.Query
	// Totals[k][cell] is the flow-k count of the cell.
	Totals [numFlows][]int64
	// MaxContribution[k][cell] is the largest single-establishment
	// contribution to flow k in the cell (the flow's x_v).
	MaxContribution [numFlows][]int64
}

// ComputeFlows evaluates all four flows over a workplace-attribute
// marginal. The query must use establishment attributes only: flows are
// establishment-level quantities.
func ComputeFlows(p *Panel, q *table.Query) (*Flows, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, a := range q.Attrs() {
		if !lodes.IsWorkplaceAttr(q.Schema().Attr(a).Name) {
			return nil, fmt.Errorf("qwi: flow query attribute %q is not a workplace attribute",
				q.Schema().Attr(a).Name)
		}
	}
	f := &Flows{Query: q}
	for k := FlowKind(0); k < numFlows; k++ {
		f.Totals[k] = make([]int64, q.NumCells())
		f.MaxContribution[k] = make([]int64, q.NumCells())
	}
	// Cell of each establishment from its public attributes.
	schema := q.Schema()
	attrPos := make([]int, len(q.Attrs()))
	for i, a := range q.Attrs() {
		attrPos[i] = a
	}
	codes := make([]int, len(attrPos))
	for w, est := range p.Base.Establishments {
		for i, a := range attrPos {
			switch schema.Attr(a).Name {
			case lodes.AttrPlace:
				codes[i] = est.Place
			case lodes.AttrIndustry:
				codes[i] = est.Industry
			case lodes.AttrOwnership:
				codes[i] = est.Ownership
			}
		}
		cell := q.CellKey(codes...)
		for k := FlowKind(0); k < numFlows; k++ {
			contrib := p.contribution(w, k)
			f.Totals[k][cell] += contrib
			if contrib > f.MaxContribution[k][cell] {
				f.MaxContribution[k][cell] = contrib
			}
		}
	}
	return f, nil
}

// CheckIdentity verifies E = B + JC − JD in every cell; a non-nil error
// indicates an implementation bug.
func (f *Flows) CheckIdentity() error {
	for cell := range f.Totals[FlowBeginning] {
		b := f.Totals[FlowBeginning][cell]
		e := f.Totals[FlowEnd][cell]
		jc := f.Totals[FlowCreation][cell]
		jd := f.Totals[FlowDestruction][cell]
		if e != b+jc-jd {
			return fmt.Errorf("qwi: cell %d violates identity: E=%d, B+JC-JD=%d", cell, e, b+jc-jd)
		}
	}
	return nil
}

// FlowRelease is a provably private release of the four flows.
type FlowRelease struct {
	Query *table.Query
	// Noisy[k][cell] holds the released flow values. FlowEnd is derived
	// from the identity, not released independently.
	Noisy [numFlows][]float64
	// ReleasedFlows records which flows consumed budget (B, JC, JD).
	ReleasedFlows []FlowKind
}

// ReleaseFlows releases B, JC and JD through the given cell mechanism and
// derives E = B + JC − JD by post-processing. Under sequential
// composition the release costs 3× the mechanism's per-release loss
// rather than 4× — deriving rather than re-releasing E is free.
func ReleaseFlows(f *Flows, m mech.CellMechanism, s *dist.Stream) (*FlowRelease, error) {
	out := &FlowRelease{
		Query:         f.Query,
		ReleasedFlows: []FlowKind{FlowBeginning, FlowCreation, FlowDestruction},
	}
	for _, k := range out.ReleasedFlows {
		cells := make([]mech.CellInput, f.Query.NumCells())
		for cell := range cells {
			cells[cell] = mech.CellInput{
				Count:           float64(f.Totals[k][cell]),
				MaxContribution: f.MaxContribution[k][cell],
			}
		}
		noisy, err := mech.ReleaseCells(m, cells, s.Split("qwi-flow-"+k.String()))
		if err != nil {
			return nil, fmt.Errorf("qwi: releasing %v: %w", k, err)
		}
		out.Noisy[k] = noisy
	}
	derived := make([]float64, f.Query.NumCells())
	for cell := range derived {
		derived[cell] = out.Noisy[FlowBeginning][cell] +
			out.Noisy[FlowCreation][cell] - out.Noisy[FlowDestruction][cell]
	}
	out.Noisy[FlowEnd] = derived
	return out, nil
}

// NetChange returns the released net job change JC − JD per cell, the
// headline QWI indicator.
func (r *FlowRelease) NetChange() []float64 {
	out := make([]float64, len(r.Noisy[FlowCreation]))
	for cell := range out {
		out[cell] = r.Noisy[FlowCreation][cell] - r.Noisy[FlowDestruction][cell]
	}
	return out
}

// ReleaseCount returns how many mechanism invocations consumed privacy
// budget (3: B, JC, JD).
func (r *FlowRelease) ReleaseCount() int { return len(r.ReleasedFlows) }
