// Package otm implements the residence-side protection the paper's
// footnote 2 points to: LODES' origin-destination (OnTheMap) release,
// protected by the synthetic-data mechanism of Machanavajjhala, Kifer,
// Abowd, Gehrke and Vilhuber, "Privacy: Theory meets Practice on the Map"
// (ICDE 2008, the paper's reference [37]). Worker residence locations are
// not published directly; instead, for each workplace, synthetic
// residences are drawn from the Dirichlet posterior over residence
// blocks.
//
// The mechanism here is the Dirichlet-multinomial (Pólya) synthesizer:
// given true residence counts c over D blocks and a prior α, release m
// synthetic residences drawn sequentially with probability proportional
// to α_k + c_k + (synthetic draws of k so far). Marginally this is an
// exact sample from the Dirichlet-multinomial posterior predictive.
//
// Privacy: for neighboring inputs that move one worker's residence
// between blocks, the exact worst-case likelihood ratio of any synthetic
// output of size m is
//
//	max ratio = max_k (α_k + c_k − 1 + m) / (α_k + c_k − 1) ≤ 1 + m/α_min,
//
// so the release satisfies pure ε-differential privacy (over residence
// moves) whenever every prior weight satisfies α_k ≥ m / (e^ε − 1) —
// MinPrior below. The original paper works with probabilistic DP to use
// smaller priors; the pure bound implemented here is the conservative
// special case and is verified exhaustively in the tests.
package otm

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/lodes"
)

// ODMatrix is an origin-destination matrix: Counts[w][r] is the number
// of workers employed in workplace-place w who live in residence-place r.
type ODMatrix struct {
	NumWorkplaces, NumResidences int
	Counts                       [][]int64
}

// NewODMatrix allocates a zero matrix.
func NewODMatrix(workplaces, residences int) (*ODMatrix, error) {
	if workplaces < 1 || residences < 1 {
		return nil, fmt.Errorf("otm: matrix dimensions must be positive, got %dx%d", workplaces, residences)
	}
	counts := make([][]int64, workplaces)
	for w := range counts {
		counts[w] = make([]int64, residences)
	}
	return &ODMatrix{NumWorkplaces: workplaces, NumResidences: residences, Counts: counts}, nil
}

// RowTotal returns the number of workers employed in workplace w.
func (m *ODMatrix) RowTotal(w int) int64 {
	var sum int64
	for _, c := range m.Counts[w] {
		sum += c
	}
	return sum
}

// Total returns the total number of jobs in the matrix.
func (m *ODMatrix) Total() int64 {
	var sum int64
	for w := range m.Counts {
		sum += m.RowTotal(w)
	}
	return sum
}

// SyntheticOD derives an origin-destination matrix for a snapshot. The
// real LODES residence data are confidential; this stand-in assigns each
// worker a residence place via a gravity model — probability
// proportional to the residence place's population, damped by the index
// distance to the workplace place (a one-dimensional geography proxy) —
// which reproduces the structure the mechanism cares about: residences
// concentrated near work, thinning with distance, sparse rows for small
// workplaces.
func SyntheticOD(d *lodes.Dataset, s *dist.Stream) *ODMatrix {
	n := d.NumPlaces()
	m, err := NewODMatrix(n, n)
	if err != nil {
		panic(err) // n >= 1 for any valid dataset
	}
	// Per-workplace residence weights.
	weights := make([][]float64, n)
	for w := 0; w < n; w++ {
		weights[w] = make([]float64, n)
		for r := 0; r < n; r++ {
			dist := float64(abs(w - r))
			weights[w][r] = float64(d.Places[r].Population) / ((1 + dist) * (1 + dist))
		}
	}
	rs := s.Split("otm-residences")
	for _, est := range d.Establishments {
		w := est.Place
		for j := 0; j < est.Employment; j++ {
			m.Counts[w][sampleWeighted(rs, weights[w])]++
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sampleWeighted(s *dist.Stream, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := s.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Synthesizer releases synthetic residence distributions for one
// workplace row under pure ε-DP with respect to single-worker residence
// moves.
type Synthesizer struct {
	// Eps is the privacy-loss parameter.
	Eps float64
	// SyntheticSize is m, the number of synthetic residences released
	// per workplace.
	SyntheticSize int
	// Prior is the per-block prior weight α (uniform across blocks). It
	// must be at least MinPrior(Eps, SyntheticSize).
	Prior float64
}

// MinPrior returns the smallest uniform per-block prior weight for which
// releasing m synthetic draws satisfies pure ε-DP: α = m / (e^ε − 1).
func MinPrior(eps float64, m int) float64 {
	if !(eps > 0) || m < 1 {
		panic(fmt.Sprintf("otm: invalid eps=%v or m=%d", eps, m))
	}
	return float64(m) / (math.Exp(eps) - 1)
}

// NewSynthesizer validates the configuration: the prior must be large
// enough for the ε guarantee.
func NewSynthesizer(eps float64, syntheticSize int, prior float64) (*Synthesizer, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("otm: eps must be positive, got %v", eps)
	}
	if syntheticSize < 1 {
		return nil, fmt.Errorf("otm: synthetic size must be >= 1, got %d", syntheticSize)
	}
	min := MinPrior(eps, syntheticSize)
	if prior < min-1e-12 {
		return nil, fmt.Errorf("otm: prior %v below the eps=%v minimum %v (MinPrior)", prior, eps, min)
	}
	return &Synthesizer{Eps: eps, SyntheticSize: syntheticSize, Prior: prior}, nil
}

// SynthesizeRow releases m synthetic residence draws for one workplace's
// true residence counts, via the Pólya urn (equivalent to sampling a
// Dirichlet posterior and then a multinomial, without needing a Gamma
// sampler).
func (sy *Synthesizer) SynthesizeRow(counts []int64, s *dist.Stream) ([]int64, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("otm: empty residence domain")
	}
	for r, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("otm: negative count %d at block %d", c, r)
		}
	}
	weights := make([]float64, len(counts))
	for r, c := range counts {
		weights[r] = sy.Prior + float64(c)
	}
	out := make([]int64, len(counts))
	for j := 0; j < sy.SyntheticSize; j++ {
		k := sampleWeighted(s, weights)
		out[k]++
		weights[k]++ // Pólya reinforcement
	}
	return out, nil
}

// Synthesize releases every workplace row of an OD matrix. Rows pertain
// to disjoint workers, so the release satisfies ε-DP overall by parallel
// composition.
func (sy *Synthesizer) Synthesize(m *ODMatrix, s *dist.Stream) (*ODMatrix, error) {
	out, err := NewODMatrix(m.NumWorkplaces, m.NumResidences)
	if err != nil {
		return nil, err
	}
	for w := range m.Counts {
		row, err := sy.SynthesizeRow(m.Counts[w], s.SplitIndex("otm-row", w))
		if err != nil {
			return nil, err
		}
		out.Counts[w] = row
	}
	return out, nil
}

// LogPMF returns the log probability of a synthetic output o (with
// Σo = m) under the Dirichlet-multinomial with the synthesizer's prior
// and the given true counts — the exact release distribution, used by
// the privacy verification tests:
//
//	P(o | c) = m!/∏o_k! · ∏_k rising(α_k+c_k, o_k) / rising(A+n, m),
//
// where rising(x, j) = x(x+1)…(x+j−1).
func (sy *Synthesizer) LogPMF(counts []int64, o []int64) (float64, error) {
	if len(counts) != len(o) {
		return 0, fmt.Errorf("otm: dimension mismatch %d vs %d", len(counts), len(o))
	}
	var m int64
	for _, v := range o {
		if v < 0 {
			return 0, fmt.Errorf("otm: negative synthetic count %d", v)
		}
		m += v
	}
	if m != int64(sy.SyntheticSize) {
		return 0, fmt.Errorf("otm: output size %d != synthetic size %d", m, sy.SyntheticSize)
	}
	var total float64 // A + n
	for _, c := range counts {
		total += sy.Prior + float64(c)
	}
	logP := logFactorial(int(m))
	for k := range o {
		logP -= logFactorial(int(o[k]))
		logP += logRising(sy.Prior+float64(counts[k]), int(o[k]))
	}
	logP -= logRising(total, int(m))
	return logP, nil
}

// WorstCaseRatio returns the exact supremum, over all synthetic outputs
// and both ratio directions, of the likelihood ratio between neighboring
// rows that move one worker from block i to block j. The two extreme
// outputs put all m draws in the shrinking or the growing block:
//
//	max( (α_i + c_i − 1 + m)/(α_i + c_i − 1),  (α_j + c_j + m)/(α_j + c_j) ).
//
// The global supremum over all neighbors is (α + m)/α (a move into an
// empty block), which is what MinPrior caps at e^ε.
func (sy *Synthesizer) WorstCaseRatio(counts []int64, from, to int) (float64, error) {
	if from < 0 || from >= len(counts) || to < 0 || to >= len(counts) || from == to {
		return 0, fmt.Errorf("otm: invalid move %d -> %d", from, to)
	}
	if counts[from] < 1 {
		return 0, fmt.Errorf("otm: block %d has no worker to move", from)
	}
	m := float64(sy.SyntheticSize)
	shrink := sy.Prior + float64(counts[from]) - 1
	grow := sy.Prior + float64(counts[to])
	return math.Max((shrink+m)/shrink, (grow+m)/grow), nil
}

func logFactorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

func logRising(x float64, j int) float64 {
	hi, _ := math.Lgamma(x + float64(j))
	lo, _ := math.Lgamma(x)
	return hi - lo
}
