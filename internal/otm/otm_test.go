package otm

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
)

func TestMinPrior(t *testing.T) {
	// eps = ln 2 makes e^eps - 1 = 1, so min prior = m.
	if got := MinPrior(math.Ln2, 10); math.Abs(got-10) > 1e-12 {
		t.Errorf("MinPrior(ln2, 10) = %v, want 10", got)
	}
	// Larger eps needs smaller priors; larger m larger priors.
	if !(MinPrior(2, 10) < MinPrior(1, 10)) {
		t.Error("min prior not decreasing in eps")
	}
	if !(MinPrior(1, 20) > MinPrior(1, 10)) {
		t.Error("min prior not increasing in m")
	}
	defer func() {
		if recover() == nil {
			t.Error("MinPrior(0, 1) did not panic")
		}
	}()
	MinPrior(0, 1)
}

func TestNewSynthesizerValidation(t *testing.T) {
	if _, err := NewSynthesizer(1, 10, MinPrior(1, 10)*0.9); err == nil {
		t.Error("prior below minimum accepted")
	}
	if _, err := NewSynthesizer(1, 10, MinPrior(1, 10)); err != nil {
		t.Errorf("prior at minimum rejected: %v", err)
	}
	if _, err := NewSynthesizer(0, 10, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewSynthesizer(1, 0, 100); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestSynthesizeRowBasics(t *testing.T) {
	sy, err := NewSynthesizer(1, 50, MinPrior(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{100, 50, 0, 10}
	out, err := sy.SynthesizeRow(counts, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range out {
		if v < 0 {
			t.Fatal("negative synthetic count")
		}
		total += v
	}
	if total != 50 {
		t.Fatalf("synthetic total = %d, want 50", total)
	}
}

func TestSynthesizeRowRejectsBadInput(t *testing.T) {
	sy, err := NewSynthesizer(1, 10, MinPrior(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sy.SynthesizeRow(nil, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := sy.SynthesizeRow([]int64{-1, 2}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	sy, err := NewSynthesizer(1, 30, MinPrior(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{5, 20, 3}
	a, err := sy.SynthesizeRow(counts, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sy.SynthesizeRow(counts, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthesis not deterministic for fixed stream")
		}
	}
}

func TestLogPMFNormalizes(t *testing.T) {
	// Over a 2-block domain with small m the PMF can be summed exactly.
	sy, err := NewSynthesizer(1, 5, MinPrior(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{7, 3}
	sum := 0.0
	for o0 := int64(0); o0 <= 5; o0++ {
		lp, err := sy.LogPMF(counts, []int64{o0, 5 - o0})
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Exp(lp)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %v, want 1", sum)
	}
}

func TestLogPMFMatchesSampling(t *testing.T) {
	sy, err := NewSynthesizer(1, 4, MinPrior(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{10, 2}
	s := dist.NewStreamFromSeed(3)
	const n = 200000
	hist := map[int64]int{}
	for i := 0; i < n; i++ {
		out, err := sy.SynthesizeRow(counts, s)
		if err != nil {
			t.Fatal(err)
		}
		hist[out[0]]++
	}
	for o0 := int64(0); o0 <= 4; o0++ {
		lp, err := sy.LogPMF(counts, []int64{o0, 4 - o0})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(lp)
		got := float64(hist[o0]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(o0=%d): empirical %v vs exact %v", o0, got, want)
		}
	}
}

func TestPrivacyRatioExhaustive(t *testing.T) {
	// Exhaustively verify the pure-eps guarantee on a small domain: for
	// every synthetic output, the likelihood ratio between neighbors
	// (one worker moved between blocks) is within e^eps when the prior
	// meets MinPrior, and the analytic WorstCaseRatio is attained.
	eps := 1.0
	m := 6
	sy, err := NewSynthesizer(eps, m, MinPrior(eps, m))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{4, 2, 1}
	// Neighbor: move one worker from block 0 to block 1.
	neighbor := []int64{3, 3, 1}
	maxRatio := 0.0
	for o0 := 0; o0 <= m; o0++ {
		for o1 := 0; o0+o1 <= m; o1++ {
			o := []int64{int64(o0), int64(o1), int64(m - o0 - o1)}
			lpA, err := sy.LogPMF(counts, o)
			if err != nil {
				t.Fatal(err)
			}
			lpB, err := sy.LogPMF(neighbor, o)
			if err != nil {
				t.Fatal(err)
			}
			ratio := math.Exp(math.Abs(lpA - lpB))
			if ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	if maxRatio > math.Exp(eps)*(1+1e-9) {
		t.Errorf("max likelihood ratio %v exceeds e^eps = %v", maxRatio, math.Exp(eps))
	}
	want, err := sy.WorstCaseRatio(counts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(maxRatio-want) > 1e-9 {
		t.Errorf("exhaustive max %v != analytic worst case %v", maxRatio, want)
	}
}

func TestPrivacyViolatedBelowMinPrior(t *testing.T) {
	// With a prior below the minimum the worst-case ratio must exceed
	// e^eps — the bound is tight, not slack.
	eps := 1.0
	m := 6
	sy := &Synthesizer{Eps: eps, SyntheticSize: m, Prior: MinPrior(eps, m) * 0.5}
	ratio, err := sy.WorstCaseRatio([]int64{1, 0}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= math.Exp(eps) {
		t.Errorf("undersized prior still satisfies eps: ratio %v", ratio)
	}
}

func TestSynthesizeODEndToEnd(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(4))
	od := SyntheticOD(d, dist.NewStreamFromSeed(5))
	if od.Total() != int64(d.NumJobs()) {
		t.Fatalf("OD total %d != jobs %d", od.Total(), d.NumJobs())
	}
	eps, m := 2.0, 100
	sy, err := NewSynthesizer(eps, m, MinPrior(eps, m))
	if err != nil {
		t.Fatal(err)
	}
	synth, err := sy.Synthesize(od, dist.NewStreamFromSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < synth.NumWorkplaces; w++ {
		if synth.RowTotal(w) != int64(m) {
			t.Fatalf("workplace %d synthetic total %d, want %d", w, synth.RowTotal(w), m)
		}
	}
}

func TestSyntheticODGravityShape(t *testing.T) {
	// Residences should concentrate near the workplace (in index
	// distance), all else equal.
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(7))
	od := SyntheticOD(d, dist.NewStreamFromSeed(8))
	// Average |workplace - residence| distance must be far below the
	// uniform-assignment expectation (~ numPlaces/3).
	var sumDist, n float64
	for w := range od.Counts {
		for r, c := range od.Counts[w] {
			sumDist += float64(abs(w-r)) * float64(c)
			n += float64(c)
		}
	}
	avg := sumDist / n
	uniform := float64(d.NumPlaces()) / 3
	if avg > uniform*0.8 {
		t.Errorf("mean commute distance %v not concentrated (uniform ~%v)", avg, uniform)
	}
}

func TestSynthesisUtilityTracksShape(t *testing.T) {
	// The synthetic shares should approximate the true shares for a large
	// row, within Dirichlet-multinomial noise plus prior shrinkage.
	eps, m := 2.0, 2000
	sy, err := NewSynthesizer(eps, m, MinPrior(eps, m))
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{5000, 3000, 1500, 500}
	var total int64
	for _, c := range counts {
		total += c
	}
	out, err := sy.SynthesizeRow(counts, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the posterior-predictive mean (which shrinks toward
	// uniform by the prior), not the raw truth.
	priorTotal := sy.Prior * float64(len(counts))
	for k := range counts {
		wantShare := (sy.Prior + float64(counts[k])) / (priorTotal + float64(total))
		gotShare := float64(out[k]) / float64(m)
		if math.Abs(gotShare-wantShare) > 0.05 {
			t.Errorf("block %d share %v, posterior mean %v", k, gotShare, wantShare)
		}
	}
}

func TestODMatrixValidation(t *testing.T) {
	if _, err := NewODMatrix(0, 5); err == nil {
		t.Error("zero workplaces accepted")
	}
	if _, err := NewODMatrix(5, 0); err == nil {
		t.Error("zero residences accepted")
	}
}

func TestWorstCaseRatioValidation(t *testing.T) {
	sy, err := NewSynthesizer(1, 5, MinPrior(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sy.WorstCaseRatio([]int64{1, 1}, 5, 0); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := sy.WorstCaseRatio([]int64{0, 1}, 0, 1); err == nil {
		t.Error("empty block accepted as move source")
	}
	if _, err := sy.WorstCaseRatio([]int64{1, 1}, 0, 0); err == nil {
		t.Error("self-move accepted")
	}
}

func TestLogPMFValidation(t *testing.T) {
	sy, err := NewSynthesizer(1, 5, MinPrior(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sy.LogPMF([]int64{1, 2}, []int64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := sy.LogPMF([]int64{1, 2}, []int64{1, 2}); err == nil {
		t.Error("wrong output size accepted")
	}
	if _, err := sy.LogPMF([]int64{1, 2}, []int64{-1, 6}); err == nil {
		t.Error("negative output accepted")
	}
}
