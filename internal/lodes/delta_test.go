package lodes

import (
	"reflect"
	"testing"

	"repro/internal/dist"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := TestConfig()
	cfg.NumEstablishments = 500
	return MustGenerate(cfg, dist.NewStreamFromSeed(9))
}

// TestGenerateDeltaDeterministic pins the generator contract: the same
// snapshot, configuration and stream seed always produce the same delta.
func TestGenerateDeltaDeterministic(t *testing.T) {
	d := testDataset(t)
	cfg := DefaultDeltaConfig()
	a, err := GenerateDelta(d, cfg, dist.NewStreamFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDelta(d, cfg, dist.NewStreamFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different deltas")
	}
	c, err := GenerateDelta(d, cfg, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical deltas")
	}
	if a.Empty() {
		t.Fatal("default churn produced an empty delta")
	}
}

// TestApplyDeltaConsistency applies a generated quarter and checks the
// successor with the dataset's own consistency oracle: every job's
// attributes must match its establishment and per-establishment job
// counts must equal recorded employment.
func TestApplyDeltaConsistency(t *testing.T) {
	d := testDataset(t)
	dl, err := GenerateDelta(d, DefaultDeltaConfig(), dist.NewStreamFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	next, err := d.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("successor snapshot inconsistent: %v", err)
	}
	if next.Epoch != d.Epoch+1 {
		t.Errorf("Epoch = %d, want %d", next.Epoch, d.Epoch+1)
	}
	if next.Schema() != d.Schema() {
		t.Error("successor does not share the base schema")
	}
	if &next.Places[0] != &d.Places[0] {
		t.Error("successor does not share place metadata")
	}
	added, removed := dl.Jobs(d)
	if got, want := next.NumJobs(), d.NumJobs()+added-removed; got != want {
		t.Errorf("NumJobs = %d, want %d (base %d + %d - %d)", got, want, d.NumJobs(), added, removed)
	}
	if next.NumEstablishments() != d.NumEstablishments()+len(dl.Births) {
		t.Errorf("frame grew to %d, want %d", next.NumEstablishments(),
			d.NumEstablishments()+len(dl.Births))
	}
	for _, e := range dl.Deaths {
		if next.Establishments[e].Employment != 0 {
			t.Errorf("dead establishment %d still employs %d", e, next.Establishments[e].Employment)
		}
	}
	// Base snapshot untouched (snapshot isolation at the data layer).
	if err := d.Validate(); err != nil {
		t.Fatalf("base snapshot corrupted by ApplyDelta: %v", err)
	}
	if d.Epoch != 0 {
		t.Errorf("base epoch mutated to %d", d.Epoch)
	}
}

// TestDeltaTouchedMatchesSuccessor checks Touched's contract: the
// reported per-establishment row counts equal the successor's actual
// employments, and the set covers exactly the changed establishments.
func TestDeltaTouchedMatchesSuccessor(t *testing.T) {
	d := testDataset(t)
	dl, err := GenerateDelta(d, DefaultDeltaConfig(), dist.NewStreamFromSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	next, err := d.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	ids, rows := dl.Touched(d)
	if len(ids) != len(rows) {
		t.Fatalf("Touched returned %d ids but %d row counts", len(ids), len(rows))
	}
	touched := make(map[int32]int32, len(ids))
	for i, e := range ids {
		if i > 0 && ids[i-1] >= e {
			t.Fatalf("Touched ids not strictly ascending at %d: %v", i, ids[:i+1])
		}
		touched[e] = rows[i]
		if got := int32(next.Establishments[e].Employment); got != rows[i] {
			t.Errorf("establishment %d: Touched rows %d, successor employment %d", e, rows[i], got)
		}
	}
	for i := range d.Establishments {
		if _, ok := touched[int32(i)]; ok {
			continue
		}
		if d.Establishments[i].Employment != next.Establishments[i].Employment {
			t.Errorf("establishment %d changed employment %d -> %d but is not in Touched",
				i, d.Establishments[i].Employment, next.Establishments[i].Employment)
		}
	}
}

// TestApplyDeltaChained runs several quarters, validating every epoch —
// deaths accumulate, so later generators must skip empty
// establishments.
func TestApplyDeltaChained(t *testing.T) {
	d := testDataset(t)
	cfg := DefaultDeltaConfig()
	cfg.DeathRate = 0.1 // force deaths so later quarters see empty frame entries
	cur := d
	for q := 1; q <= 4; q++ {
		dl, err := GenerateDelta(cur, cfg, dist.NewStreamFromSeed(int64(10+q)))
		if err != nil {
			t.Fatalf("quarter %d: %v", q, err)
		}
		next, err := cur.ApplyDelta(dl)
		if err != nil {
			t.Fatalf("quarter %d: %v", q, err)
		}
		if err := next.Validate(); err != nil {
			t.Fatalf("quarter %d snapshot inconsistent: %v", q, err)
		}
		if next.Epoch != q {
			t.Fatalf("quarter %d: epoch %d", q, next.Epoch)
		}
		cur = next
	}
}

// TestApplyDeltaManualEvents exercises each event kind explicitly,
// including two-sided churn on one establishment and rehiring into a
// previously emptied one.
func TestApplyDeltaManualEvents(t *testing.T) {
	d := testDataset(t)
	var grown int32 = -1
	for i := 1; i < len(d.Establishments); i++ {
		if d.Establishments[i].Employment >= 3 {
			grown = int32(i)
			break
		}
	}
	if grown < 0 {
		t.Fatal("no establishment with employment >= 3")
	}
	dl := &Delta{
		Deaths: []int32{d.Establishments[0].ID},
		Hires: []Hire{{Est: grown, Jobs: []JobRecord{{Sex: 1, Age: 3, Race: 0, Ethnicity: 1, Education: 2}}}},
		Separations: []Separation{{Est: grown, Count: 2}},
		Births: []Birth{{Place: 1, Industry: 6, Ownership: 0,
			Jobs: []JobRecord{{Age: 4}, {Sex: 1, Age: 2, Education: 3}}}},
	}
	next, err := d.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := next.Establishments[grown].Employment, d.Establishments[grown].Employment-1; got != want {
		t.Errorf("two-sided churn: employment %d, want %d", got, want)
	}
	born := next.Establishments[len(next.Establishments)-1]
	if born.Employment != 2 || born.Place != 1 || born.Industry != 6 {
		t.Errorf("birth mis-applied: %+v", born)
	}

	// Rehire into the now-empty establishment 0 next quarter.
	dl2 := &Delta{Hires: []Hire{{Est: 0, Jobs: []JobRecord{{Age: 1}}}}}
	third, err := next.ApplyDelta(dl2)
	if err != nil {
		t.Fatal(err)
	}
	if err := third.Validate(); err != nil {
		t.Fatal(err)
	}
	if third.Establishments[0].Employment != 1 {
		t.Errorf("rehire into empty establishment: employment %d, want 1", third.Establishments[0].Employment)
	}
}

// TestDeltaValidateRejects pins the validation rules.
func TestDeltaValidateRejects(t *testing.T) {
	d := testDataset(t)
	emp0 := d.Establishments[0].Employment
	cases := []struct {
		name string
		dl   *Delta
	}{
		{"unknown-death", &Delta{Deaths: []int32{int32(d.NumEstablishments())}}},
		{"double-death", &Delta{Deaths: []int32{1, 1}}},
		{"dead-hires", &Delta{Deaths: []int32{2}, Hires: []Hire{{Est: 2, Jobs: []JobRecord{{}}}}}},
		{"dead-separates", &Delta{Deaths: []int32{2}, Separations: []Separation{{Est: 2, Count: 1}}}},
		{"empty-hire", &Delta{Hires: []Hire{{Est: 1}}}},
		{"double-hire", &Delta{Hires: []Hire{{Est: 1, Jobs: []JobRecord{{}}}, {Est: 1, Jobs: []JobRecord{{}}}}}},
		{"over-separation", &Delta{Separations: []Separation{{Est: 0, Count: emp0 + 1}}}},
		{"zero-separation", &Delta{Separations: []Separation{{Est: 0, Count: 0}}}},
		{"bad-job-code", &Delta{Hires: []Hire{{Est: 1, Jobs: []JobRecord{{Age: 99}}}}}},
		{"jobless-birth", &Delta{Births: []Birth{{Place: 0, Industry: 0}}}},
		{"bad-birth-place", &Delta{Births: []Birth{{Place: d.NumPlaces(), Industry: 0, Jobs: []JobRecord{{}}}}}},
	}
	for _, tc := range cases {
		if err := tc.dl.Validate(d); err == nil {
			t.Errorf("%s: Validate accepted an invalid delta", tc.name)
		}
		if _, err := d.ApplyDelta(tc.dl); err == nil {
			t.Errorf("%s: ApplyDelta accepted an invalid delta", tc.name)
		}
	}
}

// TestGeneratorUnchangedByDrawJobRefactor guards the snapshot
// generator's draw order: the shared drawJob helper must reproduce the
// pre-refactor per-job sequence, keeping generated datasets (and every
// golden number derived from them) bit-identical.
func TestGeneratorUnchangedByDrawJobRefactor(t *testing.T) {
	s := dist.NewStreamFromSeed(77).Split("workers")
	ref := dist.NewStreamFromSeed(77).Split("workers")
	edu := educationDist(6)
	fProb := femaleProb(6)
	for i := 0; i < 100; i++ {
		got := drawJob(s, fProb, edu[:])
		var want JobRecord
		if ref.Float64() < fProb {
			want.Sex = 1
		}
		want.Age = sampleCat(ref, ageDist[:])
		want.Race = sampleCat(ref, raceDist[:])
		if ref.Float64() < hispanicProb {
			want.Ethnicity = 1
		}
		want.Education = sampleCat(ref, edu[:])
		if got != want {
			t.Fatalf("draw %d: drawJob = %+v, inline sequence = %+v", i, got, want)
		}
	}
}
