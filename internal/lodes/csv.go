package lodes

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/dist"
	"repro/internal/table"
)

// This file provides a plain-text interchange format for synthetic
// snapshots so that cmd/lodesgen output can be inspected, versioned, and
// reloaded by cmd/ereepub. Three files are written: places.csv,
// establishments.csv and jobs.csv.

// WriteCSV writes the dataset to dir, creating it if necessary.
func (d *Dataset) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lodes: creating %s: %w", dir, err)
	}
	if err := writeCSVFile(filepath.Join(dir, "places.csv"), d.writePlaces); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "establishments.csv"), d.writeEstablishments); err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "jobs.csv"), d.writeJobs)
}

// WriteCSVStream writes the frame's snapshot to dir, drawing the job
// relation chunk-wise with StreamJobs so the full WorkerFull table is
// never materialized — peak memory is the frame plus one chunk. s must
// be the stream GenerateFrame consumed. The output is byte-identical to
// generating the full dataset and calling WriteCSV, which is what makes
// national-scale snapshots writable at all.
func (f *Frame) WriteCSVStream(dir string, s *dist.Stream, chunkRows int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lodes: creating %s: %w", dir, err)
	}
	if err := writeCSVFile(filepath.Join(dir, "places.csv"), func(w *csv.Writer) error {
		return writePlacesTo(w, f.Places)
	}); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "establishments.csv"), func(w *csv.Writer) error {
		return writeEstablishmentsTo(w, f.Schema, f.Establishments)
	}); err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "jobs.csv"), func(w *csv.Writer) error {
		jw, err := newJobsWriter(w, f.Schema)
		if err != nil {
			return err
		}
		return f.StreamJobs(s, chunkRows, jw.writeChunk)
	})
}

func writeCSVFile(path string, write func(w *csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lodes: creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		return fmt.Errorf("lodes: writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("lodes: flushing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lodes: closing %s: %w", path, err)
	}
	return nil
}

func (d *Dataset) writePlaces(w *csv.Writer) error {
	return writePlacesTo(w, d.Places)
}

func (d *Dataset) writeEstablishments(w *csv.Writer) error {
	return writeEstablishmentsTo(w, d.Schema(), d.Establishments)
}

func (d *Dataset) writeJobs(w *csv.Writer) error {
	jw, err := newJobsWriter(w, d.Schema())
	if err != nil {
		return err
	}
	return jw.writeChunk(d.WorkerFull)
}

func writePlacesTo(w *csv.Writer, places []Place) error {
	if err := w.Write([]string{"name", "population"}); err != nil {
		return err
	}
	for _, p := range places {
		if err := w.Write([]string{p.Name, strconv.Itoa(p.Population)}); err != nil {
			return err
		}
	}
	return nil
}

func writeEstablishmentsTo(w *csv.Writer, s *table.Schema, ests []Establishment) error {
	if err := w.Write([]string{"id", "place", "industry", "ownership", "employment"}); err != nil {
		return err
	}
	placeDom := s.Attr(s.MustAttrIndex(AttrPlace))
	indDom := s.Attr(s.MustAttrIndex(AttrIndustry))
	ownDom := s.Attr(s.MustAttrIndex(AttrOwnership))
	for _, e := range ests {
		rec := []string{
			strconv.Itoa(int(e.ID)),
			placeDom.Value(e.Place),
			indDom.Value(e.Industry),
			ownDom.Value(e.Ownership),
			strconv.Itoa(e.Employment),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// jobsWriter emits the jobs.csv relation incrementally: the header once
// at construction, then any number of row chunks — the shared tail of
// Dataset.WriteCSV (one chunk: the whole table) and Frame.WriteCSVStream.
type jobsWriter struct {
	w       *csv.Writer
	attrIdx []int
	rec     []string
}

func newJobsWriter(w *csv.Writer, s *table.Schema) (*jobsWriter, error) {
	header := append([]string{"establishment"}, WorkerAttrs()...)
	if err := w.Write(header); err != nil {
		return nil, err
	}
	attrIdx := make([]int, len(WorkerAttrs()))
	for i, name := range WorkerAttrs() {
		attrIdx[i] = s.MustAttrIndex(name)
	}
	return &jobsWriter{w: w, attrIdx: attrIdx, rec: make([]string, 1+len(attrIdx))}, nil
}

func (jw *jobsWriter) writeChunk(chunk *table.Table) error {
	for row := 0; row < chunk.NumRows(); row++ {
		jw.rec[0] = strconv.Itoa(int(chunk.Entity(row)))
		for i, a := range jw.attrIdx {
			jw.rec[1+i] = chunk.Value(row, a)
		}
		if err := jw.w.Write(jw.rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV loads a dataset previously written with WriteCSV.
func ReadCSV(dir string) (*Dataset, error) {
	places, err := readPlaces(filepath.Join(dir, "places.csv"))
	if err != nil {
		return nil, err
	}
	schema := NewSchema(len(places))
	ests, err := readEstablishments(filepath.Join(dir, "establishments.csv"), schema)
	if err != nil {
		return nil, err
	}
	full, err := readJobs(filepath.Join(dir, "jobs.csv"), schema, ests)
	if err != nil {
		return nil, err
	}
	d := &Dataset{WorkerFull: full, Establishments: ests, Places: places}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("lodes: loaded dataset inconsistent: %w", err)
	}
	return d, nil
}

func openCSV(path string) (*os.File, *csv.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("lodes: opening %s: %w", path, err)
	}
	return f, csv.NewReader(f), nil
}

func readPlaces(path string) ([]Place, error) {
	f, r, err := openCSV(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := r.Read(); err != nil { // header
		return nil, fmt.Errorf("lodes: reading %s header: %w", path, err)
	}
	var places []Place
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("lodes: reading %s: %w", path, err)
		}
		pop, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("lodes: bad population %q in %s: %w", rec[1], path, err)
		}
		places = append(places, Place{Name: rec[0], Population: pop})
	}
	if len(places) == 0 {
		return nil, fmt.Errorf("lodes: %s contains no places", path)
	}
	return places, nil
}

func readEstablishments(path string, schema *table.Schema) ([]Establishment, error) {
	f, r, err := openCSV(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := r.Read(); err != nil {
		return nil, fmt.Errorf("lodes: reading %s header: %w", path, err)
	}
	placeDom := schema.Attr(schema.MustAttrIndex(AttrPlace))
	indDom := schema.Attr(schema.MustAttrIndex(AttrIndustry))
	ownDom := schema.Attr(schema.MustAttrIndex(AttrOwnership))
	var ests []Establishment
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("lodes: reading %s: %w", path, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("lodes: bad establishment id %q: %w", rec[0], err)
		}
		place, err := placeDom.Code(rec[1])
		if err != nil {
			return nil, err
		}
		ind, err := indDom.Code(rec[2])
		if err != nil {
			return nil, err
		}
		own, err := ownDom.Code(rec[3])
		if err != nil {
			return nil, err
		}
		emp, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("lodes: bad employment %q: %w", rec[4], err)
		}
		if id != len(ests) {
			return nil, fmt.Errorf("lodes: establishment IDs must be dense and ordered; got %d at row %d", id, len(ests))
		}
		ests = append(ests, Establishment{
			ID: int32(id), Place: place, Industry: ind, Ownership: own, Employment: emp,
		})
	}
	return ests, nil
}

func readJobs(path string, schema *table.Schema, ests []Establishment) (*table.Table, error) {
	f, r, err := openCSV(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := r.Read(); err != nil {
		return nil, fmt.Errorf("lodes: reading %s header: %w", path, err)
	}
	workerAttrs := WorkerAttrs()
	attrIdx := make([]int, len(workerAttrs))
	doms := make([]*table.Domain, len(workerAttrs))
	for i, name := range workerAttrs {
		attrIdx[i] = schema.MustAttrIndex(name)
		doms[i] = schema.Attr(attrIdx[i])
	}
	full := table.New(schema)
	codes := make([]int, schema.NumAttrs())
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("lodes: reading %s: %w", path, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil || id < 0 || id >= len(ests) {
			return nil, fmt.Errorf("lodes: bad establishment reference %q in jobs", rec[0])
		}
		est := ests[id]
		codes[schema.MustAttrIndex(AttrPlace)] = est.Place
		codes[schema.MustAttrIndex(AttrIndustry)] = est.Industry
		codes[schema.MustAttrIndex(AttrOwnership)] = est.Ownership
		for i := range workerAttrs {
			c, err := doms[i].Code(rec[1+i])
			if err != nil {
				return nil, err
			}
			codes[attrIdx[i]] = c
		}
		full.AppendRow(int32(id), codes...)
	}
	return full, nil
}
