package lodes

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
)

// TestDeltaCSVRoundTrip pins the interchange contract: a generated
// quarter written with WriteDeltaCSV and read back with ReadDeltaCSV is
// structurally identical, and — the property ApplyDelta's positional
// birth-ID assignment depends on — re-applying the re-read delta yields
// a bit-identical successor snapshot.
func TestDeltaCSVRoundTrip(t *testing.T) {
	d := testDataset(t)
	dl, err := GenerateDelta(d, DefaultDeltaConfig(), dist.NewStreamFromSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if dl.Empty() {
		t.Fatal("default churn produced an empty delta")
	}
	dir := t.TempDir()
	if err := WriteDeltaCSV(dir, d.Schema(), dl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaCSV(dir, d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeDelta(dl), normalizeDelta(got)) {
		t.Fatal("delta changed across CSV round trip")
	}

	want, err := d.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	have, err := d.ApplyDelta(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Establishments, have.Establishments) {
		t.Error("successor establishment frames differ")
	}
	if !reflect.DeepEqual(want.WorkerFull.Entities(), have.WorkerFull.Entities()) {
		t.Error("successor job relations differ in entity column")
	}
	for a := 0; a < want.Schema().NumAttrs(); a++ {
		if !reflect.DeepEqual(want.WorkerFull.Column(a), have.WorkerFull.Column(a)) {
			t.Errorf("successor job relations differ in column %s", want.Schema().Attr(a).Name)
		}
	}
	if want.Epoch != have.Epoch {
		t.Errorf("successor epochs differ: %d vs %d", want.Epoch, have.Epoch)
	}
}

// normalizeDelta maps empty slices to nil so a written-then-read delta
// compares equal to its in-memory original under DeepEqual (the CSV
// reader only appends, so fields with no rows stay nil).
func normalizeDelta(dl *Delta) *Delta {
	n := &Delta{}
	if len(dl.Deaths) > 0 {
		n.Deaths = dl.Deaths
	}
	if len(dl.Separations) > 0 {
		n.Separations = dl.Separations
	}
	if len(dl.Hires) > 0 {
		n.Hires = dl.Hires
	}
	if len(dl.Births) > 0 {
		n.Births = append([]Birth(nil), dl.Births...)
		for i := range n.Births {
			if len(n.Births[i].Jobs) == 0 {
				n.Births[i].Jobs = nil
			}
		}
	}
	return n
}

// TestDeltaCSVRejectsCorruptInputs injects one corruption per delta
// file and requires a loud error, never a silently wrong delta.
func TestDeltaCSVRejectsCorruptInputs(t *testing.T) {
	d := testDataset(t)
	dl, err := GenerateDelta(d, DefaultDeltaConfig(), dist.NewStreamFromSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T) string {
		dir := t.TempDir()
		if err := WriteDeltaCSV(dir, d.Schema(), dl); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	corrupt := func(t *testing.T, dir, file, old, new string) {
		path := filepath.Join(dir, file)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s := strings.Replace(string(b), old, new, 1)
		if s == string(b) {
			t.Fatalf("corruption %q -> %q did not apply to %s", old, new, file)
		}
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bad death id", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "delta_deaths.csv", "establishment\n", "establishment\nnope\n")
		if _, err := ReadDeltaCSV(dir, d.Schema()); err == nil {
			t.Error("non-numeric death establishment accepted")
		}
	})
	t.Run("unknown attribute value", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "delta_births.csv", NAICSSectors[dl.Births[0].Industry], "99-Nonsense")
		if _, err := ReadDeltaCSV(dir, d.Schema()); err == nil {
			t.Error("unknown industry accepted")
		}
	})
	t.Run("out of order birth ordinal", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "delta_births.csv", "\n0,", "\n7,")
		if _, err := ReadDeltaCSV(dir, d.Schema()); err == nil {
			t.Error("out-of-order birth ordinal accepted")
		}
	})
	t.Run("dangling birth job reference", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "delta_birth_jobs.csv", "\n0,", "\n9999,")
		if _, err := ReadDeltaCSV(dir, d.Schema()); err == nil {
			t.Error("dangling birth reference accepted")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		dir := write(t)
		if err := os.Remove(filepath.Join(dir, "delta_hires.csv")); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadDeltaCSV(dir, d.Schema()); err == nil {
			t.Error("missing delta_hires.csv accepted")
		}
	})
}
