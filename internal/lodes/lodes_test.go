package lodes

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/table"
)

func genTest(t *testing.T, seed int64) *Dataset {
	t.Helper()
	d, err := Generate(TestConfig(), dist.NewStreamFromSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, 1)
	b := genTest(t, 1)
	if a.NumJobs() != b.NumJobs() {
		t.Fatalf("job counts differ: %d vs %d", a.NumJobs(), b.NumJobs())
	}
	for i := range a.Establishments {
		if a.Establishments[i] != b.Establishments[i] {
			t.Fatalf("establishment %d differs", i)
		}
	}
	for row := 0; row < a.NumJobs(); row += 997 {
		for attr := 0; attr < a.Schema().NumAttrs(); attr++ {
			if a.WorkerFull.Code(row, attr) != b.WorkerFull.Code(row, attr) {
				t.Fatalf("job %d attr %d differs", row, attr)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := genTest(t, 1)
	b := genTest(t, 2)
	if a.NumJobs() == b.NumJobs() && a.Establishments[0] == b.Establishments[0] {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateValidates(t *testing.T) {
	d := genTest(t, 3)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateScale(t *testing.T) {
	d := genTest(t, 4)
	cfg := TestConfig()
	if d.NumEstablishments() != cfg.NumEstablishments {
		t.Fatalf("establishments = %d, want %d", d.NumEstablishments(), cfg.NumEstablishments)
	}
	mean := float64(d.NumJobs()) / float64(d.NumEstablishments())
	// The paper's sample has 10.9M jobs / 527k establishments ~ 20.7.
	if mean < 12 || mean > 32 {
		t.Errorf("mean establishment size = %v, want near the paper's ~20.7", mean)
	}
}

func TestLargeConfigValid(t *testing.T) {
	cfg := LargeConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's 3-state 2011 sample has 527k establishments; the large
	// configuration must be at that magnitude, and the place domain must
	// still fit the uint16 code columns with room to spare.
	if cfg.NumEstablishments < 400_000 {
		t.Errorf("NumEstablishments = %d, want paper scale (>= 400k)", cfg.NumEstablishments)
	}
	if cfg.NumPlaces > 10_000 {
		t.Errorf("NumPlaces = %d too large for the code columns", cfg.NumPlaces)
	}
	// Generating the large dataset takes tens of seconds, so it happens
	// only in the scan-kernel benchmarks, never here.
}

func TestGenerateRightSkewed(t *testing.T) {
	d := genTest(t, 5)
	sizes := make([]int, 0, d.NumEstablishments())
	var sum float64
	for _, e := range d.Establishments {
		sizes = append(sizes, e.Employment)
		sum += float64(e.Employment)
	}
	sort.Ints(sizes)
	mean := sum / float64(len(sizes))
	median := float64(sizes[len(sizes)/2])
	if mean < 1.5*median {
		t.Errorf("mean %v vs median %v: establishment sizes not right-skewed", mean, median)
	}
	if d.MaxEmployment() < 500 {
		t.Errorf("max employment %d: missing heavy tail", d.MaxEmployment())
	}
}

func TestGenerateStrataCovered(t *testing.T) {
	d := genTest(t, 6)
	var seen [NumStrata]bool
	for _, s := range d.PlaceStrata() {
		seen[s] = true
	}
	for s := SizeStratum(0); s < NumStrata; s++ {
		if !seen[s] {
			t.Errorf("stratum %v has no places", s)
		}
	}
}

func TestGenerateSparseCells(t *testing.T) {
	// The evaluation regime requires many place×industry×ownership cells
	// with exactly one establishment.
	d := genTest(t, 7)
	q := table.MustNewQuery(d.Schema(), AttrPlace, AttrIndustry, AttrOwnership)
	m := table.Compute(d.WorkerFull, q)
	single := 0
	for cell := range m.Counts {
		if m.EntityCount[cell] == 1 {
			single++
		}
	}
	if single < 20 {
		t.Errorf("only %d single-establishment cells; need a sparse regime", single)
	}
}

func TestGenerateMaxEntityContributionMatchesEmployment(t *testing.T) {
	// For establishment-attribute-only marginals, x_v of a cell must equal
	// the employment of the largest establishment in the cell.
	d := genTest(t, 8)
	q := table.MustNewQuery(d.Schema(), AttrPlace, AttrIndustry, AttrOwnership)
	m := table.Compute(d.WorkerFull, q)
	want := make([]int64, q.NumCells())
	for _, e := range d.Establishments {
		cell := q.CellKey(e.Place, e.Industry, e.Ownership)
		if int64(e.Employment) > want[cell] {
			want[cell] = int64(e.Employment)
		}
	}
	for cell := range want {
		if m.MaxEntityContribution[cell] != want[cell] {
			t.Fatalf("cell %d x_v = %d, want %d", cell, m.MaxEntityContribution[cell], want[cell])
		}
	}
}

func TestGenerateOwnershipCorrelation(t *testing.T) {
	d := genTest(t, 9)
	pubAdmin := SectorIndex("92-PublicAdministration")
	retail := SectorIndex("44-Retail")
	var pubAdminPublic, pubAdminTotal, retailPublic, retailTotal int
	for _, e := range d.Establishments {
		switch e.Industry {
		case pubAdmin:
			pubAdminTotal++
			if e.Ownership == 1 {
				pubAdminPublic++
			}
		case retail:
			retailTotal++
			if e.Ownership == 1 {
				retailPublic++
			}
		}
	}
	if pubAdminTotal == 0 || retailTotal == 0 {
		t.Skip("sector not sampled at this size")
	}
	pubRate := float64(pubAdminPublic) / float64(pubAdminTotal)
	retailRate := float64(retailPublic) / float64(retailTotal)
	if pubRate < 0.8 {
		t.Errorf("public administration public-ownership rate = %v, want > 0.8", pubRate)
	}
	if retailRate > 0.15 {
		t.Errorf("retail public-ownership rate = %v, want < 0.15", retailRate)
	}
}

func TestGenerateWorkerMarginals(t *testing.T) {
	d := genTest(t, 10)
	q := table.MustNewQuery(d.Schema(), AttrSex)
	m := table.Compute(d.WorkerFull, q)
	fShare := float64(m.Counts[1]) / float64(m.Total())
	if fShare < 0.3 || fShare > 0.7 {
		t.Errorf("female share = %v, implausible", fShare)
	}
	qe := table.MustNewQuery(d.Schema(), AttrEthnicity)
	me := table.Compute(d.WorkerFull, qe)
	hShare := float64(me.Counts[1]) / float64(me.Total())
	if math.Abs(hShare-hispanicProb) > 0.02 {
		t.Errorf("hispanic share = %v, want ~%v", hShare, hispanicProb)
	}
}

func TestStratumForPopulation(t *testing.T) {
	cases := []struct {
		pop  int
		want SizeStratum
	}{
		{0, StratumUnder100}, {99, StratumUnder100},
		{100, Stratum100To10k}, {9_999, Stratum100To10k},
		{10_000, Stratum10kTo100k}, {99_999, Stratum10kTo100k},
		{100_000, StratumOver100k}, {5_000_000, StratumOver100k},
	}
	for _, c := range cases {
		if got := StratumForPopulation(c.pop); got != c.want {
			t.Errorf("StratumForPopulation(%d) = %v, want %v", c.pop, got, c.want)
		}
	}
}

func TestStratumString(t *testing.T) {
	if StratumUnder100.String() == "" || StratumOver100k.String() == "" {
		t.Error("stratum String empty")
	}
	if SizeStratum(99).String() != "SizeStratum(99)" {
		t.Error("unknown stratum String wrong")
	}
}

func TestWorkerAttrClassification(t *testing.T) {
	for _, a := range WorkerAttrs() {
		if !IsWorkerAttr(a) || IsWorkplaceAttr(a) {
			t.Errorf("attribute %q misclassified", a)
		}
	}
	for _, a := range WorkplaceAttrs() {
		if !IsWorkplaceAttr(a) || IsWorkerAttr(a) {
			t.Errorf("attribute %q misclassified", a)
		}
	}
}

func TestWorkerAttrDomainSize(t *testing.T) {
	schema := NewSchema(10)
	// sex(2) x education(4) = 8; workplace attrs contribute nothing.
	got := WorkerAttrDomainSize(schema, []string{AttrPlace, AttrSex, AttrEducation})
	if got != 8 {
		t.Errorf("WorkerAttrDomainSize = %d, want 8", got)
	}
	if got := WorkerAttrDomainSize(schema, []string{AttrPlace}); got != 1 {
		t.Errorf("workplace-only domain size = %d, want 1", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumPlaces: 2, NumEstablishments: 10, TailProb: 0.1, PopExponentLo: 1, PopExponentHi: 5},
		{NumPlaces: 10, NumEstablishments: 0, TailProb: 0.1, PopExponentLo: 1, PopExponentHi: 5},
		{NumPlaces: 10, NumEstablishments: 10, TailProb: 1.5, PopExponentLo: 1, PopExponentHi: 5},
		{NumPlaces: 10, NumEstablishments: 10, TailProb: 0.1, PopExponentLo: 5, PopExponentHi: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but is invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestEstablishmentsOver(t *testing.T) {
	d := &Dataset{Establishments: []Establishment{
		{Employment: 10}, {Employment: 1000}, {Employment: 1001}, {Employment: 5000},
	}}
	if got := d.EstablishmentsOver(1000); got != 2 {
		t.Errorf("EstablishmentsOver(1000) = %d, want 2", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := genTest(t, 11)
	d.Establishments[0].Employment++
	if err := d.Validate(); err == nil {
		t.Error("Validate missed employment mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := TestConfig()
	cfg.NumEstablishments = 200
	d, err := Generate(cfg, dist.NewStreamFromSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumJobs() != d.NumJobs() || got.NumEstablishments() != d.NumEstablishments() {
		t.Fatalf("round trip size mismatch: %d/%d jobs, %d/%d establishments",
			got.NumJobs(), d.NumJobs(), got.NumEstablishments(), d.NumEstablishments())
	}
	for i := range d.Establishments {
		if got.Establishments[i] != d.Establishments[i] {
			t.Fatalf("establishment %d differs after round trip", i)
		}
	}
	for i, p := range d.Places {
		if got.Places[i] != p {
			t.Fatalf("place %d differs after round trip", i)
		}
	}
	// Worker attribute marginals must be preserved exactly.
	for _, attr := range WorkerAttrs() {
		qa := table.MustNewQuery(d.Schema(), attr)
		qb := table.MustNewQuery(got.Schema(), attr)
		ma := table.Compute(d.WorkerFull, qa)
		mb := table.Compute(got.WorkerFull, qb)
		for c := range ma.Counts {
			if ma.Counts[c] != mb.Counts[c] {
				t.Fatalf("attr %s cell %d differs after round trip", attr, c)
			}
		}
	}
}

func TestReadCSVMissingDir(t *testing.T) {
	if _, err := ReadCSV(t.TempDir() + "/nope"); err == nil {
		t.Error("ReadCSV of missing directory did not error")
	}
}

func TestReadCSVCorruptInputs(t *testing.T) {
	// Failure injection: each corruption of a valid on-disk snapshot must
	// surface as an error, never a silently wrong dataset.
	cfg := TestConfig()
	cfg.NumEstablishments = 50
	d, err := Generate(cfg, dist.NewStreamFromSeed(60))
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		if err := d.WriteCSV(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	corrupt := func(t *testing.T, dir, file, old, new string) {
		t.Helper()
		path := filepath.Join(dir, file)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s := strings.Replace(string(data), old, new, 1)
		if s == string(data) {
			t.Fatalf("corruption %q -> %q did not apply to %s", old, new, file)
		}
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bad population", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "places.csv", "place-0000,50", "place-0000,fifty")
		if _, err := ReadCSV(dir); err == nil {
			t.Error("bad population accepted")
		}
	})
	t.Run("unknown industry", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "establishments.csv", "44-Retail", "99-Nonsense")
		if _, err := ReadCSV(dir); err == nil {
			t.Error("unknown industry accepted")
		}
	})
	t.Run("employment mismatch fails validation", func(t *testing.T) {
		dir := write(t)
		// Bump establishment 0's recorded employment without touching jobs.
		emp := d.Establishments[0].Employment
		corrupt(t, dir, "establishments.csv",
			fmt.Sprintf("0,%s,%s,%s,%d", PlaceName(d.Establishments[0].Place),
				NAICSSectors[d.Establishments[0].Industry],
				OwnershipClasses[d.Establishments[0].Ownership], emp),
			fmt.Sprintf("0,%s,%s,%s,%d", PlaceName(d.Establishments[0].Place),
				NAICSSectors[d.Establishments[0].Industry],
				OwnershipClasses[d.Establishments[0].Ownership], emp+1))
		if _, err := ReadCSV(dir); err == nil {
			t.Error("employment/jobs mismatch accepted")
		}
	})
	t.Run("dangling job reference", func(t *testing.T) {
		dir := write(t)
		corrupt(t, dir, "jobs.csv", "\n0,", "\n9999,")
		if _, err := ReadCSV(dir); err == nil {
			t.Error("dangling establishment reference accepted")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		dir := write(t)
		if err := os.Remove(filepath.Join(dir, "jobs.csv")); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCSV(dir); err == nil {
			t.Error("missing jobs.csv accepted")
		}
	})
}
