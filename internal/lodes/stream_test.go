package lodes

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/table"
)

// Tests of the chunk-streamed generation path: a Frame plus its
// StreamJobs chunks must reproduce the monolithic Generate bit for bit
// at every chunk size, the streamed CSV writer must be byte-identical
// to the materialized one, and streaming consumers must stay within a
// memory envelope set by the chunk size, not the dataset size.

func TestStreamJobsMatchesGenerate(t *testing.T) {
	cfg := TestConfig()
	want := MustGenerate(cfg, dist.NewStreamFromSeed(11))

	for _, chunkRows := range []int{1, 97, 5_000, 1 << 20} {
		s := dist.NewStreamFromSeed(11)
		f, err := GenerateFrame(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		if f.TotalJobs != want.NumJobs() {
			t.Fatalf("chunk=%d: frame TotalJobs = %d, want %d", chunkRows, f.TotalJobs, want.NumJobs())
		}
		if len(f.Establishments) != len(want.Establishments) {
			t.Fatalf("chunk=%d: %d establishments, want %d", chunkRows, len(f.Establishments), len(want.Establishments))
		}
		for i, e := range f.Establishments {
			if e != want.Establishments[i] {
				t.Fatalf("chunk=%d: establishment %d = %+v, want %+v", chunkRows, i, e, want.Establishments[i])
			}
		}
		got := table.New(f.Schema)
		chunks := 0
		if err := f.StreamJobs(s, chunkRows, func(c *table.Table) error {
			// Chunks must be non-empty and entity-sorted (establishments
			// are emitted in ID order and never split).
			if c.NumRows() == 0 {
				return fmt.Errorf("empty chunk")
			}
			for r := 1; r < c.NumRows(); r++ {
				if c.Entity(r) < c.Entity(r-1) {
					return fmt.Errorf("chunk not entity-sorted at row %d", r)
				}
			}
			got.AppendSpan(c, 0, c.NumRows())
			chunks++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if chunkRows == 1 && chunks < len(f.Establishments) {
			t.Fatalf("chunk=1 produced %d chunks for %d establishments", chunks, len(f.Establishments))
		}
		if got.NumRows() != want.NumJobs() {
			t.Fatalf("chunk=%d: streamed %d rows, want %d", chunkRows, got.NumRows(), want.NumJobs())
		}
		for row := 0; row < got.NumRows(); row++ {
			if got.Entity(row) != want.WorkerFull.Entity(row) {
				t.Fatalf("chunk=%d row %d: entity %d, want %d", chunkRows, row, got.Entity(row), want.WorkerFull.Entity(row))
			}
			for a := 0; a < f.Schema.NumAttrs(); a++ {
				if got.Code(row, a) != want.WorkerFull.Code(row, a) {
					t.Fatalf("chunk=%d row %d attr %d: code %d, want %d",
						chunkRows, row, a, got.Code(row, a), want.WorkerFull.Code(row, a))
				}
			}
		}
	}
}

func TestWriteCSVStreamByteIdentical(t *testing.T) {
	cfg := TestConfig()
	cfg.NumEstablishments = 400

	dir := t.TempDir()
	full := filepath.Join(dir, "full")
	streamed := filepath.Join(dir, "streamed")

	d := MustGenerate(cfg, dist.NewStreamFromSeed(23))
	if err := d.WriteCSV(full); err != nil {
		t.Fatal(err)
	}

	s := dist.NewStreamFromSeed(23)
	f, err := GenerateFrame(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteCSVStream(streamed, s, 500); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"places.csv", "establishments.csv", "jobs.csv"} {
		a, err := os.ReadFile(filepath.Join(full, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(streamed, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between WriteCSV and WriteCSVStream", name)
		}
	}

	// And the streamed output round-trips through the loader.
	back, err := ReadCSV(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumJobs() != d.NumJobs() {
		t.Fatalf("reloaded %d jobs, want %d", back.NumJobs(), d.NumJobs())
	}
}

// TestCatSamplerMatchesLinear pins the sampler gating: at or below
// linearSampleMax the prefix-sum sampler must not engage at all (so
// every recorded pre-national draw sequence is untouched), and above it
// the binary search must agree with the subtractive scan on the same
// draw for almost every u — the two differ only by floating-point
// association at bin edges.
func TestCatSamplerMatchesLinear(t *testing.T) {
	small := make([]float64, linearSampleMax)
	for i := range small {
		small[i] = float64(i%7) + 0.5
	}
	if cs := newCatSampler(small); cs.cum != nil {
		t.Fatalf("sampler built a prefix table for %d weights; the linear cutoff is %d",
			len(small), linearSampleMax)
	}

	large := make([]float64, linearSampleMax+1)
	for i := range large {
		large[i] = float64((i*13)%29) + 0.25
	}
	cs := newCatSampler(large)
	if cs.cum == nil {
		t.Fatal("sampler stayed linear above the cutoff")
	}
	sa := dist.NewStreamFromSeed(5)
	sb := dist.NewStreamFromSeed(5)
	diff := 0
	const draws = 20_000
	for i := 0; i < draws; i++ {
		if cs.sample(sa) != sampleCat(sb, large) {
			diff++
		}
	}
	if diff > draws/1000 {
		t.Fatalf("binary-search sampler disagreed with linear scan on %d/%d draws", diff, draws)
	}
}

func TestNationalConfigValid(t *testing.T) {
	cfg := NationalConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumEstablishments < 5_000_000 || cfg.NumPlaces < 10_000 {
		t.Fatalf("national config too small: %d establishments, %d places",
			cfg.NumEstablishments, cfg.NumPlaces)
	}
	// The mean of the size mixture should put the configured establishment
	// count on the order of 130M jobs (body e^{μ+σ²/2}, tail αm/(α−1)).
	body := 12.18
	tail := cfg.SizeTail.Xm * cfg.SizeTail.Alpha / (cfg.SizeTail.Alpha - 1)
	mean := (1-cfg.TailProb)*body + cfg.TailProb*tail
	jobs := mean * float64(cfg.NumEstablishments)
	if jobs < 110e6 || jobs > 150e6 {
		t.Fatalf("national config implies %.0fM jobs, want ~130M", jobs/1e6)
	}
}

// TestStreamedIngestMemoryBounded is the acceptance check for the
// streaming path: consuming a generated job relation chunk-wise (here:
// scanning each chunk into an accumulated W1 marginal, the shape of a
// streaming ingest) must keep the heap bounded by the chunk size, not
// the relation size. The relation is ~40× the chunk; the allowed
// headroom is a small multiple of the chunk footprint.
func TestStreamedIngestMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("generates ~800k job rows")
	}
	cfg := DefaultConfig() // ~20k establishments, ~400k jobs
	cfg.NumEstablishments = 40_000

	s := dist.NewStreamFromSeed(77)
	f, err := GenerateFrame(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	const chunkRows = 1 << 15

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	q := table.MustNewQuery(f.Schema, AttrPlace, AttrIndustry, AttrOwnership)
	counts := make([]int64, q.NumCells())
	rows := 0
	var peak uint64
	if err := f.StreamJobs(s, chunkRows, func(c *table.Table) error {
		m := table.Compute(c, q)
		for i, v := range m.Counts {
			counts[i] += v
		}
		rows += c.NumRows()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != f.TotalJobs {
		t.Fatalf("streamed %d rows, want %d", rows, f.TotalJobs)
	}

	// The chunk table holds 8 uint16 columns + an int32 entity column
	// (20 B/row); the chunk's index, scratch, and marginal results ride
	// on top. Chunks overshoot by at most one establishment, whose size
	// the frame bounds. 12× chunk footprint is roomy for all of that but
	// ~8× below the materialized relation (f.TotalJobs rows), so holding
	// two table copies — or even one — fails loudly.
	maxEst := 0
	for _, e := range f.Establishments {
		if e.Employment > maxEst {
			maxEst = e.Employment
		}
	}
	chunkBytes := uint64(chunkRows+maxEst) * 20
	budget := uint64(before.HeapAlloc) + 12*chunkBytes
	if peak > budget {
		t.Fatalf("streaming ingest peaked at %d heap bytes; budget %d (chunk %d rows ≈ %d bytes, relation %d rows)",
			peak, budget, chunkRows, chunkBytes, f.TotalJobs)
	}
}
