package lodes

import (
	"fmt"

	"repro/internal/table"
)

// Place describes one synthetic Census place: its name and its decennial
// population count. Population is what the paper stratifies every figure
// by (0–100, 100–10k, 10k–100k, 100k+), and what the FEMA resource
// allocation scenario divides damage estimates by.
type Place struct {
	Name       string
	Population int
}

// Establishment describes one workplace: its public attributes and its
// true employment. Employment is the confidential value every mechanism
// in this repository exists to protect.
type Establishment struct {
	ID         int32
	Place      int // place code
	Industry   int // industry code
	Ownership  int // ownership code
	Employment int
}

// Dataset is a complete LODES-style snapshot: the universal WorkerFull
// relation (one record per job, carrying all workplace and worker
// attributes, entity = establishment), plus the establishment frame and
// place metadata.
//
// A Dataset is one epoch of a versioned, longitudinally updatable
// object: ApplyDelta absorbs a quarterly Delta (hires, separations,
// establishment births and deaths) into a new snapshot with Epoch+1,
// leaving this one untouched — in-flight readers keep a consistent
// view. Snapshots of one lineage share the schema and place metadata.
type Dataset struct {
	// WorkerFull is the join of Job with Worker and Workplace
	// (Section 3.1): one record per job with all attributes.
	WorkerFull *table.Table

	// Establishments is the workplace frame, one entry per establishment,
	// indexed by establishment ID. Dead establishments keep their entry
	// (Employment 0) so IDs stay dense and stable across epochs.
	Establishments []Establishment

	// Places holds place metadata indexed by place code.
	Places []Place

	// Epoch counts the deltas applied since the generated (or loaded)
	// snapshot, which is epoch 0.
	Epoch int
}

// Schema returns the WorkerFull schema.
func (d *Dataset) Schema() *table.Schema { return d.WorkerFull.Schema() }

// NumJobs returns the number of job records.
func (d *Dataset) NumJobs() int { return d.WorkerFull.NumRows() }

// NumEstablishments returns the number of establishments.
func (d *Dataset) NumEstablishments() int { return len(d.Establishments) }

// NumPlaces returns the number of Census places.
func (d *Dataset) NumPlaces() int { return len(d.Places) }

// PlacePopulation returns the population of the place with the given code.
func (d *Dataset) PlacePopulation(code int) int {
	if code < 0 || code >= len(d.Places) {
		panic(fmt.Sprintf("lodes: place code %d out of range", code))
	}
	return d.Places[code].Population
}

// MaxEmployment returns the size of the largest establishment, the global
// quantity that makes node-differential privacy so costly (Section 6).
func (d *Dataset) MaxEmployment() int {
	max := 0
	for _, e := range d.Establishments {
		if e.Employment > max {
			max = e.Employment
		}
	}
	return max
}

// EstablishmentsOver returns how many establishments employ strictly more
// than threshold workers (the count the paper reports as 740–815 for
// θ=1000 on the production data).
func (d *Dataset) EstablishmentsOver(threshold int) int {
	n := 0
	for _, e := range d.Establishments {
		if e.Employment > threshold {
			n++
		}
	}
	return n
}

// Validate checks internal consistency: every job's attributes must match
// its establishment's workplace attributes, and per-establishment job
// counts must equal recorded employment. It returns the first
// inconsistency found.
func (d *Dataset) Validate() error {
	s := d.Schema()
	placeIdx := s.MustAttrIndex(AttrPlace)
	indIdx := s.MustAttrIndex(AttrIndustry)
	ownIdx := s.MustAttrIndex(AttrOwnership)

	jobCounts := make([]int, len(d.Establishments))
	for row := 0; row < d.WorkerFull.NumRows(); row++ {
		e := d.WorkerFull.Entity(row)
		if e < 0 || int(e) >= len(d.Establishments) {
			return fmt.Errorf("lodes: job %d has invalid establishment %d", row, e)
		}
		est := d.Establishments[e]
		if d.WorkerFull.Code(row, placeIdx) != est.Place {
			return fmt.Errorf("lodes: job %d place %d != establishment place %d",
				row, d.WorkerFull.Code(row, placeIdx), est.Place)
		}
		if d.WorkerFull.Code(row, indIdx) != est.Industry {
			return fmt.Errorf("lodes: job %d industry mismatch", row)
		}
		if d.WorkerFull.Code(row, ownIdx) != est.Ownership {
			return fmt.Errorf("lodes: job %d ownership mismatch", row)
		}
		jobCounts[e]++
	}
	for i, est := range d.Establishments {
		if jobCounts[i] != est.Employment {
			return fmt.Errorf("lodes: establishment %d has %d jobs but employment %d",
				i, jobCounts[i], est.Employment)
		}
		if int32(i) != est.ID {
			return fmt.Errorf("lodes: establishment at index %d has ID %d", i, est.ID)
		}
	}
	return nil
}

// SizeStratum identifies one of the paper's four place-population strata.
type SizeStratum int

// The four strata used throughout Section 10's stratified results.
const (
	StratumUnder100  SizeStratum = iota // 0 <= pop < 100
	Stratum100To10k                     // 100 <= pop < 10,000
	Stratum10kTo100k                    // 10,000 <= pop < 100,000
	StratumOver100k                     // pop >= 100,000
	NumStrata
)

// String returns the paper's label for the stratum.
func (s SizeStratum) String() string {
	switch s {
	case StratumUnder100:
		return "0<=pop<100"
	case Stratum100To10k:
		return "100<=pop<10k"
	case Stratum10kTo100k:
		return "10k<=pop<100k"
	case StratumOver100k:
		return "pop>=100k"
	}
	return fmt.Sprintf("SizeStratum(%d)", int(s))
}

// StratumForPopulation returns the stratum a population falls in.
func StratumForPopulation(pop int) SizeStratum {
	switch {
	case pop < 100:
		return StratumUnder100
	case pop < 10_000:
		return Stratum100To10k
	case pop < 100_000:
		return Stratum10kTo100k
	default:
		return StratumOver100k
	}
}

// PlaceStrata returns the stratum of every place, indexed by place code.
func (d *Dataset) PlaceStrata() []SizeStratum {
	out := make([]SizeStratum, len(d.Places))
	for i, p := range d.Places {
		out[i] = StratumForPopulation(p.Population)
	}
	return out
}
