package lodes

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/table"
)

// Quarterly deltas: the longitudinal update model. QWI-style statistics
// absorb a new quarter of microdata every release cycle — hires,
// separations, establishment births and deaths — and the versioned
// dataset models exactly those four event kinds. A Delta is applied
// with Dataset.ApplyDelta, which produces a new epoch snapshot (the
// base is never mutated); GenerateDelta draws a realistic deterministic
// quarter of churn from the same sector-conditioned distributions the
// snapshot generator uses.

// JobRecord holds the worker-attribute codes of one job, in schema
// order (the workplace attributes come from the establishment).
type JobRecord struct {
	Sex, Age, Race, Ethnicity, Education int
}

// Birth is a new establishment opening with its initial workforce. Its
// ID is assigned by ApplyDelta: the base frame size plus the birth's
// position in the delta.
type Birth struct {
	Place, Industry, Ownership int
	Jobs                       []JobRecord
}

// Hire adds jobs to an existing establishment.
type Hire struct {
	Est  int32
	Jobs []JobRecord
}

// Separation removes the establishment's most recent Count jobs (its
// last Count WorkerFull rows).
type Separation struct {
	Est   int32
	Count int
}

// Delta is one quarter of longitudinal change: establishment births and
// deaths, and per-establishment hires and separations. At most one Hire
// and one Separation per establishment; an establishment may have both
// (two-sided churn) but a dead establishment may have neither.
type Delta struct {
	Births      []Birth
	Deaths      []int32
	Hires       []Hire
	Separations []Separation
}

// Empty reports whether the delta changes nothing.
func (dl *Delta) Empty() bool {
	return len(dl.Births) == 0 && len(dl.Deaths) == 0 &&
		len(dl.Hires) == 0 && len(dl.Separations) == 0
}

// Jobs returns the delta's job-level magnitude: rows added and removed.
func (dl *Delta) Jobs(base *Dataset) (added, removed int) {
	for _, b := range dl.Births {
		added += len(b.Jobs)
	}
	for _, h := range dl.Hires {
		added += len(h.Jobs)
	}
	for _, s := range dl.Separations {
		removed += s.Count
	}
	for _, e := range dl.Deaths {
		removed += base.Establishments[e].Employment
	}
	return added, removed
}

// validateJobs checks every worker-attribute code against the schema.
func validateJobs(schema *table.Schema, jobs []JobRecord, what string) error {
	sexN := schema.Attr(schema.MustAttrIndex(AttrSex)).Size()
	ageN := schema.Attr(schema.MustAttrIndex(AttrAge)).Size()
	raceN := schema.Attr(schema.MustAttrIndex(AttrRace)).Size()
	ethN := schema.Attr(schema.MustAttrIndex(AttrEthnicity)).Size()
	eduN := schema.Attr(schema.MustAttrIndex(AttrEducation)).Size()
	for i, j := range jobs {
		switch {
		case j.Sex < 0 || j.Sex >= sexN,
			j.Age < 0 || j.Age >= ageN,
			j.Race < 0 || j.Race >= raceN,
			j.Ethnicity < 0 || j.Ethnicity >= ethN,
			j.Education < 0 || j.Education >= eduN:
			return fmt.Errorf("lodes: %s job %d has out-of-range attribute codes %+v", what, i, j)
		}
	}
	return nil
}

// Validate checks the delta against the base snapshot it is meant to
// apply to, returning the first inconsistency found.
func (dl *Delta) Validate(base *Dataset) error {
	numEsts := base.NumEstablishments()
	schema := base.Schema()
	// Dense per-establishment flags: churn deltas touch most of the
	// frame, so frame-sized arrays beat maps on this hot ingest path.
	const (
		flagDead = 1 << iota
		flagHire
		flagSep
	)
	flags := make([]uint8, numEsts)
	for _, e := range dl.Deaths {
		if e < 0 || int(e) >= numEsts {
			return fmt.Errorf("lodes: delta death of unknown establishment %d", e)
		}
		if flags[e]&flagDead != 0 {
			return fmt.Errorf("lodes: establishment %d dies twice", e)
		}
		if base.Establishments[e].Employment == 0 {
			return fmt.Errorf("lodes: establishment %d is already empty, cannot die", e)
		}
		flags[e] |= flagDead
	}
	for _, h := range dl.Hires {
		if h.Est < 0 || int(h.Est) >= numEsts {
			return fmt.Errorf("lodes: delta hire into unknown establishment %d", h.Est)
		}
		if flags[h.Est]&flagDead != 0 {
			return fmt.Errorf("lodes: establishment %d both dies and hires", h.Est)
		}
		if flags[h.Est]&flagHire != 0 {
			return fmt.Errorf("lodes: establishment %d has two hire events", h.Est)
		}
		flags[h.Est] |= flagHire
		if len(h.Jobs) == 0 {
			return fmt.Errorf("lodes: empty hire event for establishment %d", h.Est)
		}
		if err := validateJobs(schema, h.Jobs, fmt.Sprintf("hire(est=%d)", h.Est)); err != nil {
			return err
		}
	}
	for _, s := range dl.Separations {
		if s.Est < 0 || int(s.Est) >= numEsts {
			return fmt.Errorf("lodes: delta separation from unknown establishment %d", s.Est)
		}
		if flags[s.Est]&flagDead != 0 {
			return fmt.Errorf("lodes: establishment %d both dies and separates", s.Est)
		}
		if flags[s.Est]&flagSep != 0 {
			return fmt.Errorf("lodes: establishment %d has two separation events", s.Est)
		}
		flags[s.Est] |= flagSep
		if s.Count < 1 || s.Count > base.Establishments[s.Est].Employment {
			return fmt.Errorf("lodes: separation of %d jobs from establishment %d with employment %d",
				s.Count, s.Est, base.Establishments[s.Est].Employment)
		}
	}
	for i, b := range dl.Births {
		if b.Place < 0 || b.Place >= base.NumPlaces() {
			return fmt.Errorf("lodes: birth %d in unknown place %d", i, b.Place)
		}
		if b.Industry < 0 || b.Industry >= len(NAICSSectors) {
			return fmt.Errorf("lodes: birth %d in unknown industry %d", i, b.Industry)
		}
		if b.Ownership < 0 || b.Ownership > 1 {
			return fmt.Errorf("lodes: birth %d has unknown ownership %d", i, b.Ownership)
		}
		if len(b.Jobs) == 0 {
			return fmt.Errorf("lodes: birth %d opens with no jobs", i)
		}
		if err := validateJobs(schema, b.Jobs, fmt.Sprintf("birth(%d)", i)); err != nil {
			return err
		}
	}
	return nil
}

// Touched returns the delta's touched-establishment set against the
// base snapshot — every establishment whose WorkerFull rows change,
// sorted ascending — together with each one's row count in the
// successor snapshot. This is exactly the input the incremental index
// maintenance (table.MergeIndex) and the affected-cell computation
// (table.AffectedCells) consume.
func (dl *Delta) Touched(base *Dataset) (ids, rows []int32) {
	ids, rows, _ = dl.TouchedKept(base)
	return ids, rows
}

// TouchedKept is Touched extended with each touched establishment's
// kept-prefix count: how many of its base WorkerFull rows survive
// verbatim as the prefix of its successor group under ApplyDelta's
// layout (base rows minus separations for survivors; zero for deaths,
// which keep no rows, and births, which had none). This is the exact
// per-establishment description the incremental view-maintenance
// kernel (table.MarginalView.Apply) consumes.
func (dl *Delta) TouchedKept(base *Dataset) (ids, rows, kept []int32) {
	// Dense per-establishment accumulation: a heavy churn quarter
	// touches most of the frame, so the frame-sized array beats a map.
	newEmp := make([]int32, base.NumEstablishments())
	keptEmp := make([]int32, len(newEmp))
	touched := make([]bool, len(newEmp))
	touch := func(e int32) {
		if !touched[e] {
			touched[e] = true
			newEmp[e] = int32(base.Establishments[e].Employment)
			keptEmp[e] = newEmp[e]
		}
	}
	for _, e := range dl.Deaths {
		touch(e)
		newEmp[e] = 0
		keptEmp[e] = 0
	}
	for _, h := range dl.Hires {
		touch(h.Est)
		newEmp[h.Est] += int32(len(h.Jobs))
	}
	for _, s := range dl.Separations {
		touch(s.Est)
		newEmp[s.Est] -= int32(s.Count)
		keptEmp[s.Est] -= int32(s.Count)
	}
	n := 0
	for _, t := range touched {
		if t {
			n++
		}
	}
	ids = make([]int32, 0, n+len(dl.Births))
	rows = make([]int32, 0, n+len(dl.Births))
	kept = make([]int32, 0, n+len(dl.Births))
	for e, t := range touched {
		if t {
			ids = append(ids, int32(e))
			rows = append(rows, newEmp[e])
			kept = append(kept, keptEmp[e])
		}
	}
	for i, b := range dl.Births {
		ids = append(ids, int32(base.NumEstablishments()+i))
		rows = append(rows, int32(len(b.Jobs)))
		kept = append(kept, 0)
	}
	return ids, rows, kept
}

// establishmentSpans locates each establishment's contiguous WorkerFull
// row span, verifying the relation is entity-ordered (rows grouped by
// non-decreasing establishment ID) — the layout every generated or
// delta-built snapshot has, and the one ApplyDelta preserves.
func establishmentSpans(d *Dataset) ([][2]int32, error) {
	spans := make([][2]int32, d.NumEstablishments())
	ents := d.WorkerFull.Entities()
	for i := 0; i < len(ents); {
		e := ents[i]
		if e < 0 || int(e) >= len(spans) {
			return nil, fmt.Errorf("lodes: WorkerFull row %d has invalid establishment %d", i, e)
		}
		if i > 0 && e <= ents[i-1] {
			return nil, fmt.Errorf("lodes: WorkerFull is not entity-ordered at row %d", i)
		}
		j := i + 1
		for j < len(ents) && ents[j] == e {
			j++
		}
		spans[e] = [2]int32{int32(i), int32(j)}
		i = j
	}
	return spans, nil
}

// ApplyDelta absorbs one quarter of change into a new epoch snapshot:
// a fresh entity-ordered WorkerFull relation (untouched establishments'
// rows copied span-wise, touched groups rebuilt, births appended under
// new IDs), an updated establishment frame (deaths keep their entry
// with Employment 0, so IDs stay dense), and Epoch+1. The base dataset
// is not modified, and the successor shares its schema and place
// metadata — compiled queries remain valid across epochs.
//
// Separations drop the establishment's last rows; hires append after
// its kept rows. The successor's layout is exactly what
// table.MergeIndex expects, so the entity-sorted index can be
// maintained incrementally instead of rebuilt.
func (d *Dataset) ApplyDelta(dl *Delta) (*Dataset, error) {
	if err := dl.Validate(d); err != nil {
		return nil, err
	}
	spans, err := establishmentSpans(d)
	if err != nil {
		return nil, err
	}

	// Dense per-establishment event views (the frame-sized arrays are
	// cheaper than maps under heavy churn).
	dead := make([]bool, len(d.Establishments))
	for _, e := range dl.Deaths {
		dead[e] = true
	}
	seps := make([]int, len(d.Establishments))
	for _, s := range dl.Separations {
		seps[s.Est] = s.Count
	}
	hires := make([][]JobRecord, len(d.Establishments))
	for _, h := range dl.Hires {
		hires[h.Est] = h.Jobs
	}

	added, removed := dl.Jobs(d)
	ests := append([]Establishment(nil), d.Establishments...)
	full := table.NewWithCapacity(d.Schema(), d.NumJobs()+added-removed)
	old := d.WorkerFull
	for i := range ests {
		e := int32(i)
		if dead[e] {
			ests[i].Employment = 0
			continue
		}
		lo, hi := spans[e][0], spans[e][1]
		keep := hi - int32(seps[e])
		full.AppendSpan(old, int(lo), int(keep))
		est := &ests[i]
		for _, j := range hires[e] {
			full.AppendRow(e, est.Place, est.Industry, est.Ownership,
				j.Sex, j.Age, j.Race, j.Ethnicity, j.Education)
		}
		est.Employment += len(hires[e]) - seps[e]
	}
	for i, b := range dl.Births {
		id := int32(len(d.Establishments) + i)
		ests = append(ests, Establishment{
			ID: id, Place: b.Place, Industry: b.Industry, Ownership: b.Ownership,
			Employment: len(b.Jobs),
		})
		for _, j := range b.Jobs {
			full.AppendRow(id, b.Place, b.Industry, b.Ownership,
				j.Sex, j.Age, j.Race, j.Ethnicity, j.Education)
		}
	}

	return &Dataset{
		WorkerFull:     full,
		Establishments: ests,
		Places:         d.Places,
		Epoch:          d.Epoch + 1,
	}, nil
}

// DeltaConfig parameterizes the quarterly delta generator. The defaults
// mirror qwi.DefaultPanelConfig's churn regime: ~2% establishment
// deaths and births per quarter, with surviving establishments'
// employment evolving by a ±10%-scale log-normal shock realized as
// hires or separations.
type DeltaConfig struct {
	// DeathRate is the per-quarter probability an active establishment
	// closes.
	DeathRate float64
	// BirthRate sets the expected number of establishment births as a
	// fraction of the active frame.
	BirthRate float64
	// GrowthSigma is the log-normal dispersion of survivors' growth:
	// new employment = round(old · exp(N(0, σ²))), floored at 1.
	GrowthSigma float64

	// StableProb is the per-quarter probability a surviving
	// establishment's employment holds exactly flat — no hire or
	// separation event is drawn for it, so its job rows carry into the
	// next quarter verbatim. Zero (the default regime) means every
	// survivor realizes its growth shock, which makes nearly every
	// establishment above a handful of employees a touched one; BLS
	// Business Employment Dynamics gross-flow counts (expanding +
	// contracting establishments over all private establishments) put
	// the no-net-change share at roughly three quarters in a typical
	// quarter, so calibrated runs set this to 0.75. When zero, no draw
	// is made at all, keeping the generator's random bitstream — and
	// every delta it has ever produced — unchanged.
	StableProb float64

	// SizeBody, SizeTail and TailProb parameterize newborn
	// establishments' sizes, exactly as in the snapshot generator.
	SizeBody dist.LogNormal
	SizeTail dist.Pareto
	TailProb float64
}

// DefaultDeltaConfig returns the quarterly churn configuration used by
// the serving benchmarks and cmd/ereepub.
func DefaultDeltaConfig() DeltaConfig {
	base := DefaultConfig()
	return DeltaConfig{
		DeathRate:   0.02,
		BirthRate:   0.02,
		GrowthSigma: 0.1,
		SizeBody:    base.SizeBody,
		SizeTail:    base.SizeTail,
		TailProb:    base.TailProb,
	}
}

// CalibratedDeltaConfig returns the default churn regime with the
// stability share dialed to BLS Business Employment Dynamics reality:
// BED gross-flow counts have roughly a quarter of private
// establishments expanding or contracting in a given quarter — the
// other ~75% post no net employment change — so a quarterly delta
// touches a minority of the frame. This is the regime the
// cache-maintenance benchmarks replay; the harsher DefaultDeltaConfig
// (every survivor shocked) remains the regime of the differential
// correctness suites and the ingest benchmarks.
func CalibratedDeltaConfig() DeltaConfig {
	c := DefaultDeltaConfig()
	c.StableProb = 0.75
	return c
}

// Validate returns an error describing the first invalid field, if any.
func (c DeltaConfig) Validate() error {
	if !(c.DeathRate >= 0 && c.DeathRate < 1) {
		return fmt.Errorf("lodes: DeathRate must be in [0,1), got %v", c.DeathRate)
	}
	if !(c.BirthRate >= 0 && c.BirthRate < 1) {
		return fmt.Errorf("lodes: BirthRate must be in [0,1), got %v", c.BirthRate)
	}
	if !(c.GrowthSigma > 0) {
		return fmt.Errorf("lodes: GrowthSigma must be positive, got %v", c.GrowthSigma)
	}
	if !(c.StableProb >= 0 && c.StableProb < 1) {
		return fmt.Errorf("lodes: StableProb must be in [0,1), got %v", c.StableProb)
	}
	if !(c.TailProb >= 0 && c.TailProb <= 1) {
		return fmt.Errorf("lodes: TailProb must be in [0,1], got %v", c.TailProb)
	}
	return nil
}

// drawJob draws one worker's attributes from the sector-conditioned
// distributions, in the snapshot generator's exact draw order.
func drawJob(s *dist.Stream, fProb float64, eduW []float64) JobRecord {
	var j JobRecord
	if s.Float64() < fProb {
		j.Sex = 1
	}
	j.Age = sampleCat(s, ageDist[:])
	j.Race = sampleCat(s, raceDist[:])
	if s.Float64() < hispanicProb {
		j.Ethnicity = 1
	}
	j.Education = sampleCat(s, eduW)
	return j
}

// drawJobs draws n jobs for an establishment in the given sector.
func drawJobs(s *dist.Stream, sector, n int) []JobRecord {
	edu := educationDist(sector)
	fProb := femaleProb(sector)
	jobs := make([]JobRecord, n)
	for i := range jobs {
		jobs[i] = drawJob(s, fProb, edu[:])
	}
	return jobs
}

// GenerateDelta draws one deterministic quarter of churn for the
// snapshot: every active establishment dies with probability DeathRate
// or realizes a log-normal employment shock as a hire or separation
// event, and new establishments open at BirthRate with the generator's
// place, sector, ownership and size distributions. The same snapshot,
// configuration and stream always produce the same delta.
func GenerateDelta(d *Dataset, cfg DeltaConfig, s *dist.Stream) (*Delta, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dl := &Delta{}
	churn := s.Split("delta-churn")
	growth := dist.NewLogNormal(0, cfg.GrowthSigma)
	active := 0
	for i := range d.Establishments {
		est := &d.Establishments[i]
		if est.Employment == 0 {
			continue // died in an earlier epoch
		}
		active++
		if churn.Float64() < cfg.DeathRate {
			dl.Deaths = append(dl.Deaths, est.ID)
			continue
		}
		if cfg.StableProb > 0 && churn.Float64() < cfg.StableProb {
			continue // employment holds flat this quarter
		}
		next := int(math.Round(float64(est.Employment) * growth.Sample(churn)))
		if next < 1 {
			next = 1 // survivors retain at least one employee
		}
		switch {
		case next > est.Employment:
			dl.Hires = append(dl.Hires, Hire{
				Est:  est.ID,
				Jobs: drawJobs(churn, est.Industry, next-est.Employment),
			})
		case next < est.Employment:
			dl.Separations = append(dl.Separations, Separation{
				Est: est.ID, Count: est.Employment - next,
			})
		}
	}

	births := s.Split("delta-births")
	placeWeights := make([]float64, d.NumPlaces())
	for i, p := range d.Places {
		placeWeights[i] = math.Sqrt(float64(p.Population)) + 2
	}
	sizeDist := dist.NewSkewedSize(cfg.SizeBody, cfg.SizeTail, cfg.TailProb)
	for i := 0; i < active; i++ {
		if births.Float64() >= cfg.BirthRate {
			continue
		}
		place := sampleCat(births, placeWeights)
		sector := sampleCat(births, sectorWeights[:])
		own := 0
		if births.Float64() < publicOwnershipProb(sector) {
			own = 1
		}
		size := sizeDist.Sample(births)
		dl.Births = append(dl.Births, Birth{
			Place: place, Industry: sector, Ownership: own,
			Jobs: drawJobs(births, sector, size),
		})
	}
	return dl, nil
}
