package lodes

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/table"
)

// Config parameterizes the synthetic LODES generator. The defaults target
// the structural properties of the paper's 3-state 2011 sample at 1/26
// scale: a mean of ~20.7 jobs per establishment, a heavy right tail of
// establishment sizes, and place×industry×ownership marginals where most
// cells are small and many contain a single establishment.
type Config struct {
	// NumPlaces is the number of synthetic Census places.
	NumPlaces int
	// NumEstablishments is the number of workplaces to generate.
	NumEstablishments int

	// SizeBody is the log-normal body of the establishment-size mixture.
	SizeBody dist.LogNormal
	// SizeTail is the Pareto tail of the mixture (factories, hospitals,
	// universities).
	SizeTail dist.Pareto
	// TailProb is the probability an establishment is drawn from the tail.
	TailProb float64

	// PopExponentLo and PopExponentHi bound the log10 of place
	// populations, which are drawn log-uniformly. The default range
	// [1, 5.5) spans all four of the paper's strata.
	PopExponentLo, PopExponentHi float64
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		NumPlaces:         60,
		NumEstablishments: 20_000,
		SizeBody:          dist.NewLogNormal(2.0, 1.0),
		SizeTail:          dist.NewPareto(200, 1.3),
		TailProb:          0.01,
		PopExponentLo:     1.0,
		PopExponentHi:     5.5,
	}
}

// TestConfig returns a small configuration for fast unit tests
// (~2k establishments, ~40k jobs).
func TestConfig() Config {
	c := DefaultConfig()
	c.NumPlaces = 30
	c.NumEstablishments = 2_000
	return c
}

// LargeConfig returns the paper-scale configuration: ~500k
// establishments and, at the default mean of ~20.7 jobs per
// establishment, on the order of 10 million jobs — the magnitude of the
// paper's 3-state 2011 LODES sample. The place count grows with the
// establishment count so the per-place establishment density (and with
// it the prevalence of sparse single-establishment cells) stays
// comparable to the default configuration. This is the workload the
// scan-kernel benchmarks (BenchmarkLargeScale*, BENCH_scan_kernel.json)
// run the full release suite against; generating it takes tens of
// seconds, so nothing on the test path uses it.
func LargeConfig() Config {
	c := DefaultConfig()
	c.NumPlaces = 120
	c.NumEstablishments = 500_000
	return c
}

// NationalConfig returns the national-scale configuration: ~20k places
// and 7 million establishments, on the order of 130 million jobs — the
// magnitude of the full national LODES the paper's production system
// serves, an order of magnitude past LargeConfig. The tail probability
// is trimmed so the mean establishment size lands near the national
// ~18.6 jobs per establishment rather than the 3-state sample's ~20.7.
// A materialized WorkerFull at this scale is multiple gigabytes, so
// nothing builds it in one piece: national datasets exist only as a
// Frame whose job relation is drawn chunk-wise (GenerateFrame,
// Frame.StreamJobs) into a bounded reusable buffer.
func NationalConfig() Config {
	c := DefaultConfig()
	c.NumPlaces = 20_000
	c.NumEstablishments = 7_000_000
	c.TailProb = 0.0075
	return c
}

// Validate returns an error describing the first invalid field, if any.
func (c Config) Validate() error {
	if c.NumPlaces < 4 {
		return fmt.Errorf("lodes: NumPlaces must be >= 4 to cover all strata, got %d", c.NumPlaces)
	}
	if c.NumEstablishments < 1 {
		return fmt.Errorf("lodes: NumEstablishments must be >= 1, got %d", c.NumEstablishments)
	}
	if !(c.TailProb >= 0 && c.TailProb <= 1) {
		return fmt.Errorf("lodes: TailProb must be in [0,1], got %v", c.TailProb)
	}
	if !(c.PopExponentLo < c.PopExponentHi) {
		return fmt.Errorf("lodes: PopExponentLo must be < PopExponentHi")
	}
	return nil
}

// sector indexes into NAICSSectors for the per-sector parameter tables.
var (
	sectorIdx = func() map[string]int {
		m := make(map[string]int, len(NAICSSectors))
		for i, s := range NAICSSectors {
			m[s] = i
		}
		return m
	}()
)

// publicOwnershipProb returns the probability an establishment in the
// given sector is publicly owned.
func publicOwnershipProb(sector int) float64 {
	switch NAICSSectors[sector] {
	case "92-PublicAdministration":
		return 0.95
	case "61-Education":
		return 0.60
	case "22-Utilities":
		return 0.40
	case "62-Health":
		return 0.25
	default:
		return 0.05
	}
}

// femaleProb returns the probability a worker in the sector is female.
func femaleProb(sector int) float64 {
	switch NAICSSectors[sector] {
	case "62-Health":
		return 0.75
	case "61-Education":
		return 0.68
	case "23-Construction":
		return 0.10
	case "21-Mining":
		return 0.12
	case "31-Manufacturing":
		return 0.30
	default:
		return 0.48
	}
}

// educationDist returns the education distribution for the sector
// (LessThanHS, HighSchool, SomeCollege, BachelorsPlus).
func educationDist(sector int) [4]float64 {
	switch NAICSSectors[sector] {
	case "51-Information", "52-Finance", "54-Professional", "55-Management", "61-Education":
		return [4]float64{0.04, 0.15, 0.26, 0.55}
	case "11-Agriculture", "23-Construction", "72-Accommodation", "44-Retail", "56-Administrative":
		return [4]float64{0.22, 0.38, 0.26, 0.14}
	default:
		return [4]float64{0.12, 0.30, 0.30, 0.28}
	}
}

// Base worker-attribute distributions (shares summing to 1).
var (
	ageDist  = [8]float64{0.04, 0.07, 0.07, 0.24, 0.22, 0.19, 0.13, 0.04}
	raceDist = [6]float64{0.62, 0.13, 0.01, 0.07, 0.003, 0.167}
)

const hispanicProb = 0.18

// sectorWeights makes some industries far more common than others, which
// is what produces sparse cells in small places.
var sectorWeights = [20]float64{
	1.0, // Agriculture
	0.3, // Mining
	0.4, // Utilities
	3.5, // Construction
	2.5, // Manufacturing
	2.0, // Wholesale
	6.0, // Retail
	1.8, // Transportation
	1.0, // Information
	2.2, // Finance
	1.6, // RealEstate
	4.0, // Professional
	0.5, // Management
	2.8, // Administrative
	1.4, // Education
	4.5, // Health
	0.9, // Arts
	3.8, // Accommodation
	3.0, // OtherServices
	0.8, // PublicAdministration
}

// sampleCat draws an index from the categorical distribution with the
// given weights (not necessarily normalized).
func sampleCat(s *dist.Stream, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := s.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// linearSampleMax is the weight-list size up to which catSampler keeps
// the plain subtractive scan. Every pre-national configuration (≤120
// places) stays below it, so their draw sequences — and therefore every
// recorded dataset and delta chain — are unchanged; only national-scale
// place lists switch to the log-time sampler, whose draws differ from
// the linear scan's only by floating-point association at bin edges.
const linearSampleMax = 256

// catSampler draws from one fixed categorical distribution many times.
// Small weight lists use sampleCat verbatim; large ones precompute the
// prefix-sum table once and binary-search it, turning the O(places)
// per-establishment placement draw — untenable at 20k places × 7M
// establishments — into O(log places).
type catSampler struct {
	weights []float64
	cum     []float64 // nil for linear sampling
}

func newCatSampler(weights []float64) *catSampler {
	cs := &catSampler{weights: weights}
	if len(weights) > linearSampleMax {
		cs.cum = make([]float64, len(weights))
		total := 0.0
		for i, w := range weights {
			total += w
			cs.cum[i] = total
		}
	}
	return cs
}

func (cs *catSampler) sample(s *dist.Stream) int {
	if cs.cum == nil {
		return sampleCat(s, cs.weights)
	}
	u := s.Float64() * cs.cum[len(cs.cum)-1]
	lo, hi := 0, len(cs.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if u < cs.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Frame is the entity-level half of a snapshot: place metadata and the
// establishment frame, with the job relation not yet drawn. At national
// scale the job relation is gigabytes, so the frame is the object that
// gets materialized and the jobs exist only as a chunk stream
// (StreamJobs) — a consumer that aggregates or writes as it goes never
// holds more than one chunk of job rows.
type Frame struct {
	Schema         *table.Schema
	Places         []Place
	Establishments []Establishment
	// TotalJobs is the number of job records StreamJobs will produce,
	// known at frame time because employment is drawn per establishment.
	TotalJobs int
}

// GenerateFrame draws the places and the establishment frame from the
// configuration and stream — everything except the job relation. The
// draws are identical to the first two phases of Generate: a frame plus
// its StreamJobs chunks reproduce Generate's dataset exactly.
func GenerateFrame(cfg Config, s *dist.Stream) (*Frame, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	schema := NewSchema(cfg.NumPlaces)

	// Places: one forced into each stratum so stratified experiments never
	// see an empty stratum, the rest log-uniform across the exponent range.
	placeStream := s.Split("places")
	places := make([]Place, cfg.NumPlaces)
	forced := []int{50, 5_000, 50_000, 200_000}
	for i := range places {
		var pop int
		if i < len(forced) {
			pop = forced[i]
		} else {
			exp := cfg.PopExponentLo + placeStream.Float64()*(cfg.PopExponentHi-cfg.PopExponentLo)
			pop = int(math.Round(math.Pow(10, exp)))
		}
		places[i] = Place{Name: PlaceName(i), Population: pop}
	}

	// Establishment placement weights grow sublinearly with population
	// (sqrt, plus a floor of 2): big places get many establishments while
	// tiny places still get a handful — matching real Census places, where
	// even sub-100-population places host some employers. This produces
	// the sparse single-establishment cells the Section 5.2 attacks and
	// the smooth-sensitivity analysis both care about, without leaving the
	// smallest population stratum empty.
	placeWeights := make([]float64, cfg.NumPlaces)
	for i, p := range places {
		placeWeights[i] = math.Sqrt(float64(p.Population)) + 2
	}
	placePicker := newCatSampler(placeWeights)

	sizeDist := dist.NewSkewedSize(cfg.SizeBody, cfg.SizeTail, cfg.TailProb)
	estStream := s.Split("establishments")

	ests := make([]Establishment, cfg.NumEstablishments)
	totalJobs := 0
	for i := range ests {
		place := placePicker.sample(estStream)
		sector := sampleCat(estStream, sectorWeights[:])
		own := 0
		if estStream.Float64() < publicOwnershipProb(sector) {
			own = 1
		}
		size := sizeDist.Sample(estStream)
		ests[i] = Establishment{
			ID: int32(i), Place: place, Industry: sector, Ownership: own, Employment: size,
		}
		totalJobs += size
	}
	return &Frame{Schema: schema, Places: places, Establishments: ests, TotalJobs: totalJobs}, nil
}

// DefaultChunkRows is the default StreamJobs chunk granularity: large
// enough that per-chunk overheads vanish, small enough that a chunk of
// the 8-attribute worker relation stays in the tens of megabytes.
const DefaultChunkRows = 1 << 20

// StreamJobs draws the frame's job relation in establishment-ordered
// chunks, calling fn with a reused buffer table after each fills to at
// least chunkRows rows (establishments are never split across chunks,
// so every chunk is entity-sorted and a chunk can overshoot by at most
// one establishment's workforce). s must be the same stream GenerateFrame
// consumed — Split is a pure function of stream identity, so the worker
// draws land exactly where Generate's would, and concatenating the
// chunks reproduces Generate's WorkerFull bit for bit. The buffer is
// reset after every call; fn must copy anything it keeps.
func (f *Frame) StreamJobs(s *dist.Stream, chunkRows int, fn func(chunk *table.Table) error) error {
	if chunkRows < 1 {
		chunkRows = DefaultChunkRows
	}
	workerStream := s.Split("workers")
	buf := table.NewWithCapacity(f.Schema, chunkRows)
	var eduW [4]float64
	for _, est := range f.Establishments {
		edu := educationDist(est.Industry)
		copy(eduW[:], edu[:])
		fProb := femaleProb(est.Industry)
		for j := 0; j < est.Employment; j++ {
			jr := drawJob(workerStream, fProb, eduW[:])
			buf.AppendRow(est.ID,
				est.Place, est.Industry, est.Ownership,
				jr.Sex, jr.Age, jr.Race, jr.Ethnicity, jr.Education)
		}
		if buf.NumRows() >= chunkRows {
			if err := fn(buf); err != nil {
				return err
			}
			buf.Reset()
		}
	}
	if buf.NumRows() > 0 {
		return fn(buf)
	}
	return nil
}

// Generate produces a synthetic LODES snapshot from the configuration and
// stream. The same configuration and stream seed always produce the same
// dataset. It is GenerateFrame plus StreamJobs materialized into one
// table; callers that can consume the job relation incrementally should
// stream instead and skip the full materialization.
func Generate(cfg Config, s *dist.Stream) (*Dataset, error) {
	f, err := GenerateFrame(cfg, s)
	if err != nil {
		return nil, err
	}
	full := table.NewWithCapacity(f.Schema, f.TotalJobs)
	if err := f.StreamJobs(s, DefaultChunkRows, func(chunk *table.Table) error {
		full.AppendSpan(chunk, 0, chunk.NumRows())
		return nil
	}); err != nil {
		return nil, err
	}
	return &Dataset{WorkerFull: full, Establishments: f.Establishments, Places: f.Places}, nil
}

// MustGenerate is Generate but panics on configuration errors; for use
// with the validated default configurations.
func MustGenerate(cfg Config, s *dist.Stream) *Dataset {
	d, err := Generate(cfg, s)
	if err != nil {
		panic(err)
	}
	return d
}

// SectorIndex returns the code of the named NAICS sector, or -1.
func SectorIndex(name string) int {
	if i, ok := sectorIdx[name]; ok {
		return i
	}
	return -1
}
