package lodes

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/table"
)

// Plain-text interchange for quarterly deltas, mirroring the snapshot
// format in csv.go: real quarter-over-quarter files can drive the whole
// ApplyDelta / MergeIndex / view-maintenance chain instead of the
// synthetic generator. Five files are written: delta_deaths.csv,
// delta_separations.csv, delta_hires.csv, delta_births.csv and
// delta_birth_jobs.csv. Row order is preserved exactly on read-back —
// ApplyDelta assigns birth IDs by position and appends hire rows in
// list order, so order is part of the delta's identity.

// WriteDeltaCSV writes the delta to dir, creating it if necessary. The
// schema supplies the attribute domains (it must be the base dataset's
// schema, as the values are written by name).
func WriteDeltaCSV(dir string, schema *table.Schema, dl *Delta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lodes: creating %s: %w", dir, err)
	}
	if err := writeCSVFile(filepath.Join(dir, "delta_deaths.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"establishment"}); err != nil {
			return err
		}
		for _, e := range dl.Deaths {
			if err := w.Write([]string{strconv.Itoa(int(e))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "delta_separations.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"establishment", "count"}); err != nil {
			return err
		}
		for _, s := range dl.Separations {
			if err := w.Write([]string{strconv.Itoa(int(s.Est)), strconv.Itoa(s.Count)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "delta_hires.csv"), func(w *csv.Writer) error {
		jw, err := newDeltaJobsWriter(w, schema, "establishment")
		if err != nil {
			return err
		}
		for _, h := range dl.Hires {
			if err := jw.writeJobs(int(h.Est), h.Jobs); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeCSVFile(filepath.Join(dir, "delta_births.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"birth", "place", "industry", "ownership"}); err != nil {
			return err
		}
		placeDom := schema.Attr(schema.MustAttrIndex(AttrPlace))
		indDom := schema.Attr(schema.MustAttrIndex(AttrIndustry))
		ownDom := schema.Attr(schema.MustAttrIndex(AttrOwnership))
		for i, b := range dl.Births {
			rec := []string{
				strconv.Itoa(i),
				placeDom.Value(b.Place),
				indDom.Value(b.Industry),
				ownDom.Value(b.Ownership),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return writeCSVFile(filepath.Join(dir, "delta_birth_jobs.csv"), func(w *csv.Writer) error {
		jw, err := newDeltaJobsWriter(w, schema, "birth")
		if err != nil {
			return err
		}
		for i, b := range dl.Births {
			if err := jw.writeJobs(i, b.Jobs); err != nil {
				return err
			}
		}
		return nil
	})
}

// deltaJobsWriter emits JobRecord rows keyed by an owner column (an
// establishment ID for hires, a birth ordinal for newborn rosters).
type deltaJobsWriter struct {
	w       *csv.Writer
	attrIdx []int
	doms    []*table.Domain
	rec     []string
}

func newDeltaJobsWriter(w *csv.Writer, s *table.Schema, owner string) (*deltaJobsWriter, error) {
	header := append([]string{owner}, WorkerAttrs()...)
	if err := w.Write(header); err != nil {
		return nil, err
	}
	attrs := WorkerAttrs()
	jw := &deltaJobsWriter{
		w:       w,
		attrIdx: make([]int, len(attrs)),
		doms:    make([]*table.Domain, len(attrs)),
		rec:     make([]string, 1+len(attrs)),
	}
	for i, name := range attrs {
		jw.attrIdx[i] = s.MustAttrIndex(name)
		jw.doms[i] = s.Attr(jw.attrIdx[i])
	}
	return jw, nil
}

func (jw *deltaJobsWriter) writeJobs(owner int, jobs []JobRecord) error {
	for _, j := range jobs {
		jw.rec[0] = strconv.Itoa(owner)
		jw.rec[1] = jw.doms[0].Value(j.Sex)
		jw.rec[2] = jw.doms[1].Value(j.Age)
		jw.rec[3] = jw.doms[2].Value(j.Race)
		jw.rec[4] = jw.doms[3].Value(j.Ethnicity)
		jw.rec[5] = jw.doms[4].Value(j.Education)
		if err := jw.w.Write(jw.rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadDeltaCSV loads a delta previously written with WriteDeltaCSV. The
// schema must be the base dataset's (ReadCSV the base snapshot first).
// The result is validated only structurally here; ApplyDelta validates
// it against the base dataset.
func ReadDeltaCSV(dir string, schema *table.Schema) (*Delta, error) {
	dl := &Delta{}
	if err := readDeltaRows(filepath.Join(dir, "delta_deaths.csv"), 1, func(rec []string) error {
		e, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("bad establishment %q", rec[0])
		}
		dl.Deaths = append(dl.Deaths, int32(e))
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readDeltaRows(filepath.Join(dir, "delta_separations.csv"), 2, func(rec []string) error {
		e, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("bad establishment %q", rec[0])
		}
		n, err := strconv.Atoi(rec[1])
		if err != nil {
			return fmt.Errorf("bad count %q", rec[1])
		}
		dl.Separations = append(dl.Separations, Separation{Est: int32(e), Count: n})
		return nil
	}); err != nil {
		return nil, err
	}

	jobReader, err := newDeltaJobsReader(schema)
	if err != nil {
		return nil, err
	}
	// Hires: consecutive rows of one establishment form its hire list.
	lastHire := -1
	if err := readDeltaRows(filepath.Join(dir, "delta_hires.csv"), 6, func(rec []string) error {
		e, err := strconv.Atoi(rec[0])
		if err != nil {
			return fmt.Errorf("bad establishment %q", rec[0])
		}
		j, err := jobReader.job(rec)
		if err != nil {
			return err
		}
		if len(dl.Hires) > 0 && e == lastHire {
			h := &dl.Hires[len(dl.Hires)-1]
			h.Jobs = append(h.Jobs, j)
			return nil
		}
		if e == lastHire {
			return fmt.Errorf("establishment %d's hire rows are not contiguous", e)
		}
		dl.Hires = append(dl.Hires, Hire{Est: int32(e), Jobs: []JobRecord{j}})
		lastHire = e
		return nil
	}); err != nil {
		return nil, err
	}

	placeDom := schema.Attr(schema.MustAttrIndex(AttrPlace))
	indDom := schema.Attr(schema.MustAttrIndex(AttrIndustry))
	ownDom := schema.Attr(schema.MustAttrIndex(AttrOwnership))
	if err := readDeltaRows(filepath.Join(dir, "delta_births.csv"), 4, func(rec []string) error {
		i, err := strconv.Atoi(rec[0])
		if err != nil || i != len(dl.Births) {
			return fmt.Errorf("birth ordinals must be dense and ordered; got %q at %d", rec[0], len(dl.Births))
		}
		place, err := placeDom.Code(rec[1])
		if err != nil {
			return err
		}
		ind, err := indDom.Code(rec[2])
		if err != nil {
			return err
		}
		own, err := ownDom.Code(rec[3])
		if err != nil {
			return err
		}
		dl.Births = append(dl.Births, Birth{Place: place, Industry: ind, Ownership: own})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readDeltaRows(filepath.Join(dir, "delta_birth_jobs.csv"), 6, func(rec []string) error {
		i, err := strconv.Atoi(rec[0])
		if err != nil || i < 0 || i >= len(dl.Births) {
			return fmt.Errorf("bad birth reference %q", rec[0])
		}
		j, err := jobReader.job(rec)
		if err != nil {
			return err
		}
		dl.Births[i].Jobs = append(dl.Births[i].Jobs, j)
		return nil
	}); err != nil {
		return nil, err
	}
	return dl, nil
}

// deltaJobsReader decodes the worker-attribute tail of a delta job row
// (columns 1..5 after the owner column).
type deltaJobsReader struct {
	doms []*table.Domain
}

func newDeltaJobsReader(s *table.Schema) (*deltaJobsReader, error) {
	attrs := WorkerAttrs()
	r := &deltaJobsReader{doms: make([]*table.Domain, len(attrs))}
	for i, name := range attrs {
		r.doms[i] = s.Attr(s.MustAttrIndex(name))
	}
	return r, nil
}

func (r *deltaJobsReader) job(rec []string) (JobRecord, error) {
	var j JobRecord
	var err error
	if j.Sex, err = r.doms[0].Code(rec[1]); err != nil {
		return j, err
	}
	if j.Age, err = r.doms[1].Code(rec[2]); err != nil {
		return j, err
	}
	if j.Race, err = r.doms[2].Code(rec[3]); err != nil {
		return j, err
	}
	if j.Ethnicity, err = r.doms[3].Code(rec[4]); err != nil {
		return j, err
	}
	if j.Education, err = r.doms[4].Code(rec[5]); err != nil {
		return j, err
	}
	return j, nil
}

// readDeltaRows streams one delta CSV file, checking each record's
// width and skipping the header.
func readDeltaRows(path string, width int, row func(rec []string) error) error {
	f, r, err := openCSV(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := r.Read(); err != nil {
		return fmt.Errorf("lodes: reading %s header: %w", path, err)
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("lodes: reading %s: %w", path, err)
		}
		if len(rec) != width {
			return fmt.Errorf("lodes: %s: record has %d fields, want %d", path, len(rec), width)
		}
		if err := row(rec); err != nil {
			return fmt.Errorf("lodes: %s: %w", path, err)
		}
	}
}
