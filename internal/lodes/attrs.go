// Package lodes models the LEHD Origin-Destination Employment Statistics
// (LODES) data the paper evaluates on: linked employer-employee microdata
// organized as Workplace, Worker and Job tables (Section 3 of the paper),
// plus a deterministic synthetic generator.
//
// The real LODES inputs are confidential Census Bureau data and cannot be
// obtained; the generator reproduces the structural properties the
// paper's evaluation depends on — right-skewed establishment sizes, sparse
// place×industry×ownership cells, and Census places spanning four
// population strata. See DESIGN.md section 2 for the substitution
// rationale.
package lodes

import (
	"fmt"

	"repro/internal/table"
)

// Attribute names of the WorkerFull relation. Workplace attributes are
// public under the paper's legal analysis; worker attributes are private.
const (
	AttrPlace     = "place"
	AttrIndustry  = "industry"
	AttrOwnership = "ownership"
	AttrSex       = "sex"
	AttrAge       = "age"
	AttrRace      = "race"
	AttrEthnicity = "ethnicity"
	AttrEducation = "education"
)

// WorkplaceAttrs lists the establishment-side attributes (the paper's V_W).
func WorkplaceAttrs() []string {
	return []string{AttrPlace, AttrIndustry, AttrOwnership}
}

// WorkerAttrs lists the worker-side attributes (the paper's V_I).
func WorkerAttrs() []string {
	return []string{AttrSex, AttrAge, AttrRace, AttrEthnicity, AttrEducation}
}

// IsWorkerAttr reports whether the named attribute is a worker attribute.
func IsWorkerAttr(name string) bool {
	switch name {
	case AttrSex, AttrAge, AttrRace, AttrEthnicity, AttrEducation:
		return true
	}
	return false
}

// IsWorkplaceAttr reports whether the named attribute is a workplace
// attribute.
func IsWorkplaceAttr(name string) bool {
	switch name {
	case AttrPlace, AttrIndustry, AttrOwnership:
		return true
	}
	return false
}

// NAICSSectors are the 20 two-digit NAICS sectors LODES tabulates by.
var NAICSSectors = []string{
	"11-Agriculture",
	"21-Mining",
	"22-Utilities",
	"23-Construction",
	"31-Manufacturing",
	"42-Wholesale",
	"44-Retail",
	"48-Transportation",
	"51-Information",
	"52-Finance",
	"53-RealEstate",
	"54-Professional",
	"55-Management",
	"56-Administrative",
	"61-Education",
	"62-Health",
	"71-Arts",
	"72-Accommodation",
	"81-OtherServices",
	"92-PublicAdministration",
}

// OwnershipClasses are the two ownership types LODES distinguishes.
var OwnershipClasses = []string{"Private", "Public"}

// SexValues, AgeBins, RaceValues, EthnicityValues and EducationLevels are
// the LODES worker attribute domains (LODES Technical Document 7.1).
var (
	SexValues       = []string{"M", "F"}
	AgeBins         = []string{"14-18", "19-21", "22-24", "25-34", "35-44", "45-54", "55-64", "65+"}
	RaceValues      = []string{"White", "Black", "AmericanIndian", "Asian", "PacificIslander", "TwoOrMore"}
	EthnicityValues = []string{"NotHispanic", "Hispanic"}
	EducationLevels = []string{"LessThanHS", "HighSchool", "SomeCollege", "BachelorsPlus"}
)

// PlaceName returns the canonical name of the i-th synthetic Census place.
func PlaceName(i int) string { return fmt.Sprintf("place-%04d", i) }

// NewSchema builds the WorkerFull schema for a dataset with numPlaces
// Census places. Attribute order is workplace attributes first, then
// worker attributes, matching the paper's V_W / V_I split.
func NewSchema(numPlaces int) *table.Schema {
	if numPlaces < 1 {
		panic(fmt.Sprintf("lodes: numPlaces must be >= 1, got %d", numPlaces))
	}
	places := make([]string, numPlaces)
	for i := range places {
		places[i] = PlaceName(i)
	}
	return table.NewSchema(
		table.NewDomain(AttrPlace, places...),
		table.NewDomain(AttrIndustry, NAICSSectors...),
		table.NewDomain(AttrOwnership, OwnershipClasses...),
		table.NewDomain(AttrSex, SexValues...),
		table.NewDomain(AttrAge, AgeBins...),
		table.NewDomain(AttrRace, RaceValues...),
		table.NewDomain(AttrEthnicity, EthnicityValues...),
		table.NewDomain(AttrEducation, EducationLevels...),
	)
}

// WorkerAttrDomainSize returns the product of the domain sizes of the
// given attributes, counting only worker attributes. This is the d in the
// paper's "effective privacy-loss parameter of d·ε" rule for releasing
// worker-attribute marginals under weak ER-EE privacy (Section 8).
func WorkerAttrDomainSize(schema *table.Schema, attrs []string) int {
	d := 1
	for _, name := range attrs {
		if IsWorkerAttr(name) {
			d *= schema.Attr(schema.MustAttrIndex(name)).Size()
		}
	}
	return d
}
