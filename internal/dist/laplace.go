package dist

import (
	"fmt"
	"math"
)

// Laplace is the zero-centered Laplace distribution with scale b:
// density e^{−|x|/b}/(2b). It is the noise of the pure-DP baselines and,
// in log space, of the Log-Laplace mechanism (Algorithm 1).
type Laplace struct {
	// B is the scale parameter (the paper's λ when used in log space).
	B float64
}

// NewLaplace returns the Laplace distribution with scale b. It panics
// if b is not positive: every mechanism computes its scale from
// validated parameters, so a bad scale is a programming error.
func NewLaplace(b float64) Laplace {
	if !(b > 0) {
		panic(fmt.Sprintf("dist: Laplace scale must be positive, got %v", b))
	}
	return Laplace{B: b}
}

// Sample draws one variate by CDF inversion, so a stream position maps
// to exactly one draw.
func (l Laplace) Sample(s *Stream) float64 {
	return l.Quantile(s.float64Open())
}

// Fill draws len(dst) variates into the caller-owned buffer, consuming
// the stream exactly as len(dst) scalar Sample calls would: dst[i] holds
// the (i+1)-th draw, bit for bit. Batch callers (the release pipeline)
// rely on this equivalence for determinism against the scalar path.
//
// The loop body is the quantile formula with the scale load and the
// in-range check hoisted out of the per-draw path; the expressions are
// exactly Quantile's, so the bit-for-bit contract holds by construction
// (TestFillMatchesScalar pins it).
func (l Laplace) Fill(dst []float64, s *Stream) {
	b := l.B
	for i := range dst {
		p := s.float64Open()
		if p < 0.5 {
			dst[i] = b * math.Log(2*p)
		} else {
			dst[i] = -b * math.Log(2*(1-p))
		}
	}
}

// PDF returns the density at x.
func (l Laplace) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x)/l.B) / (2 * l.B)
}

// CDF returns P(X <= x).
func (l Laplace) CDF(x float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/l.B)
	}
	return 1 - 0.5*math.Exp(-x/l.B)
}

// Quantile returns the p-quantile for p in (0, 1); it is the exact
// inverse of CDF.
func (l Laplace) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: Laplace quantile requires p in (0,1), got %v", p))
	}
	if p < 0.5 {
		return l.B * math.Log(2*p)
	}
	return -l.B * math.Log(2*(1-p))
}

// MeanAbs returns E|X| = b.
func (l Laplace) MeanAbs() float64 { return l.B }

// Variance returns Var X = 2b².
func (l Laplace) Variance() float64 { return 2 * l.B * l.B }
