package dist

import (
	"fmt"
	"math"
)

// Pareto is the Pareto (type I) distribution with scale x_m and shape
// α: P(X > x) = (x_m/x)^α for x >= x_m. It models the heavy tail of
// establishment sizes — the factories, hospitals and universities whose
// single-establishment cells drive the paper's sensitivity analysis.
type Pareto struct {
	// Xm is the scale (minimum value); Alpha the tail exponent.
	Xm, Alpha float64
}

// NewPareto returns the Pareto distribution with minimum xm and shape
// alpha. It panics unless both are positive.
func NewPareto(xm, alpha float64) Pareto {
	if !(xm > 0) || !(alpha > 0) {
		panic(fmt.Sprintf("dist: Pareto requires xm > 0 and alpha > 0, got xm=%v alpha=%v", xm, alpha))
	}
	return Pareto{Xm: xm, Alpha: alpha}
}

// Sample draws one variate by inverting the survival function.
func (p Pareto) Sample(s *Stream) float64 {
	return p.Xm / math.Pow(s.float64Open(), 1/p.Alpha)
}

// Mean returns E X = α·x_m/(α−1) for α > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// CDF returns P(X <= x).
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}
