// Package dist is the deterministic randomness substrate of the
// repository: a splittable random stream plus the noise and data
// distributions every mechanism, generator and experiment draws from.
//
// # The stream contract
//
// Every randomized operation in this repository takes an explicit
// *Stream. A Stream has an immutable identity (derived from its seed and
// the chain of Split labels that produced it) and a mutable draw
// position. The two rules that make whole experiments reproducible are:
//
//  1. Determinism: a stream's draw sequence is a pure function of its
//     identity. NewStreamFromSeed(42).Float64() is the same number on
//     every machine, architecture and run. (Integer and uniform draws
//     are exact everywhere; samplers that go through math.Log/Exp/Atan
//     inherit Go's transcendental implementations, which can differ in
//     the last ulp on ports with assembly math routines — bit-exact
//     reproducibility for those is per-architecture.)
//
//  2. Split purity: Split and SplitIndex derive the child's identity
//     from the parent's identity only — not from how many draws the
//     parent (or any sibling) has made. s.Split("workers") denotes the
//     same stream no matter when it is called, so independent
//     subsystems can re-derive their stream from a shared root without
//     coordinating draw order.
//
// Children with different labels (or indices) are statistically
// independent of each other and of the parent's own draw sequence; the
// golden-vector tests pin both properties.
//
// # Samplers
//
// Noise distributions (Laplace, GenCauchy) expose Sample together with
// the closed forms the verification layers need (PDF, CDF, Quantile).
// Data distributions (LogNormal, Pareto, SkewedSize, GapUniform) model
// the synthetic LODES inputs and the SDL distortion factors.
// KolmogorovSmirnov is the goodness-of-fit check the sampler tests and
// the eval layer share.
package dist
