// Package dist is the deterministic randomness substrate of the
// repository: a splittable random stream plus the noise and data
// distributions every mechanism, generator and experiment draws from.
//
// # The stream contract
//
// Every randomized operation in this repository takes an explicit
// *Stream. A Stream has an immutable identity (derived from its seed and
// the chain of Split labels that produced it) and a mutable draw
// position. The two rules that make whole experiments reproducible are:
//
//  1. Determinism: a stream's draw sequence is a pure function of its
//     identity. NewStreamFromSeed(42).Float64() is the same number on
//     every machine, architecture and run. (Integer and uniform draws
//     are exact everywhere; samplers that go through math.Log/Exp/Atan
//     inherit Go's transcendental implementations, which can differ in
//     the last ulp on ports with assembly math routines — bit-exact
//     reproducibility for those is per-architecture.)
//
//  2. Split purity: Split and SplitIndex derive the child's identity
//     from the parent's identity only — not from how many draws the
//     parent (or any sibling) has made. s.Split("workers") denotes the
//     same stream no matter when it is called, so independent
//     subsystems can re-derive their stream from a shared root without
//     coordinating draw order.
//
// Children with different labels (or indices) are statistically
// independent of each other and of the parent's own draw sequence; the
// golden-vector tests pin both properties.
//
// Sampler versioning: the mapping from uniform bits to a sampler's
// variates is part of the contract, and changing it is a versioned
// event recorded in the golden vectors. The current generalized-Cauchy
// sampler is v2 (PR 4: table-seeded quantile inversion, survival-
// function series cutoff at z = 12); its draws can differ from v1 in
// the last ulp, so the v1 golden vector was retired with a DESIGN.md §7
// contract note. All other samplers remain v1, bit-identical to their
// first release.
//
// # Samplers
//
// Noise distributions (Laplace, GenCauchy) expose Sample together with
// the closed forms the verification layers need (PDF, CDF, Quantile).
// Data distributions (LogNormal, Pareto, SkewedSize, GapUniform) model
// the synthetic LODES inputs and the SDL distortion factors.
// KolmogorovSmirnov is the goodness-of-fit check the sampler tests and
// the eval layer share.
package dist
