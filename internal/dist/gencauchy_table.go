package dist

import (
	"math"
	"sync"
)

// Table-accelerated quantile inversion for GenCauchy (sampler v2).
//
// The cold path (quantileTailBracketed) inverts the survival function by
// a bracketed Newton search from a crude starting point — typically
// 8–12 sf/PDF evaluations, each paying a log and one or two atans. The
// hot path below replaces the search with a precomputed monotone
// quantile table: a cubic Hermite interpolant of z(tail) per binade of
// the tail probability, accurate to ~1e-9 relative, from which a single
// polished Newton step lands within an ulp of the true root. Beyond the
// table floor (tail < 2⁻⁶⁴, i.e. z > 10⁶) the closed-form asymptotic
// series of the survival function is already exact to well below an
// ulp, so the seed comes from inverting the series directly.
//
// Layout: tails in [2⁻⁶⁴, 0.5) span 63 binades. math.Frexp writes
// tail = f·2^exp with f ∈ [0.5, 1); binade b = −exp−1 ∈ [0, 62] holds
// gcTableKnots+1 knots uniform in f, each storing the quantile z and
// the derivative dz/df = −2^exp/pdf(z) (the survival function's inverse
// function theorem), so the interpolant is C¹ and needs no bracket.
// Total: 63 × 33 = 2079 knots (~33 KB), built lazily on first use from
// the cold path.

const (
	// gcTableKnots is the number of Hermite intervals per binade.
	gcTableKnots = 32
	// gcTableBinades covers tail ∈ [2⁻⁶⁴, 0.5): frexp exponents −1 … −63.
	gcTableBinades = 63
	// gcTableFloor is the smallest tail the table covers; below it the
	// asymptotic-series seed is exact to below an ulp.
	gcTableFloor = 0x1p-64
)

type gcQuantileTable struct {
	// z and d hold the quantile and dz/df at knot j of binade b, flattened
	// as b*(gcTableKnots+1)+j.
	z [gcTableBinades * (gcTableKnots + 1)]float64
	d [gcTableBinades * (gcTableKnots + 1)]float64
}

var (
	gcTableOnce sync.Once
	gcTablePtr  *gcQuantileTable
)

// gcTable returns the lazily built quantile table.
func gcTable() *gcQuantileTable {
	gcTableOnce.Do(func() {
		t := new(gcQuantileTable)
		var g GenCauchy
		for b := 0; b < gcTableBinades; b++ {
			exp := -b - 1 // frexp exponent of this binade
			scale := math.Ldexp(1, exp)
			for j := 0; j <= gcTableKnots; j++ {
				f := 0.5 + float64(j)/(2*gcTableKnots)
				tail := f * scale
				z := g.quantileTailBracketed(tail)
				k := b*(gcTableKnots+1) + j
				t.z[k] = z
				// dz/df = (dz/dtail)·(dtail/df) = −2^exp / pdf(z).
				t.d[k] = -scale / g.PDF(z)
			}
		}
		gcTablePtr = t
	})
	return gcTablePtr
}

// quantileTail returns the z > 0 with P(Z > z) = tail, for tail in
// (0, 0.5): the table-seeded fast path, with the bracketed search as a
// fallback for anything the polish cannot certify.
func (g GenCauchy) quantileTail(tail float64) float64 {
	if tail < gcTableFloor {
		// Beyond the table: invert the leading term of the series
		// SF(z) = (√2/π)·(1/(3z³) − …), rescaled as a quotient of cube
		// roots so subnormal tails cannot overflow the intermediate
		// (gcNorm/(3·tail) exceeds MaxFloat64 for tail < ~8.4e-310, which
		// used to surface as a −Inf quantile). At the table floor
		// z ≈ 1.4e6 the next-term relative correction 1/(7z⁴) ≈ 4e-26 is
		// already far below float64 resolution and only shrinks deeper
		// in, so this seed IS the quantile to within arithmetic rounding.
		// No polish follows: the closed forms degrade out here (z³
		// overflows sf and z⁴ the density) long before the series
		// truncation could matter.
		return math.Cbrt(gcNorm/3) / math.Cbrt(tail)
	}
	f, exp := math.Frexp(tail)
	b := -exp - 1
	j := int((f - 0.5) * (2 * gcTableKnots))
	if j >= gcTableKnots {
		j = gcTableKnots - 1 // f rounding at the binade's top knot
	}
	t := gcTable()
	k := b*(gcTableKnots+1) + j
	z0, z1 := t.z[k], t.z[k+1]
	d0, d1 := t.d[k], t.d[k+1]
	const h = 1.0 / (2 * gcTableKnots) // knot spacing in f
	u := (f - (0.5 + float64(j)*h)) / h
	// Cubic Hermite basis in u ∈ [0, 1].
	u2 := u * u
	um := 1 - u
	um2 := um * um
	z := (1+2*u)*um2*z0 + h*u*um2*d0 + u2*(3-2*u)*z1 - h*u2*um*d1
	// One Newton polish against the closed-form survival function: the
	// seed is within ~1e-9 relative, so the quadratically convergent step
	// lands within the evaluation noise of sf itself (≤ an ulp or two).
	fz := tail - g.sf(z)
	next := z - fz/g.PDF(z)
	if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
		// The polish left the admissible region (only reachable when tail
		// is within an ulp of 0.5 and z underflows toward 0): the bracketed
		// search still owns that corner.
		return g.quantileTailBracketed(tail)
	}
	// A large relative step means the seed was out of polish range
	// (cannot happen for a healthy table; cheap insurance against it).
	if d := next - z; d > 1e-6*next || d < -1e-6*next {
		return g.quantileTailBracketed(tail)
	}
	return next
}
