package dist

import (
	"fmt"
	"math"
)

// GenCauchy is the generalized Cauchy distribution with exponent γ = 4:
// density h(z) ∝ 1/(1+z⁴). It is the admissible noise of the Smooth
// Gamma mechanism (Algorithm 2): heavy enough in the tails to absorb
// dilations of the smooth-sensitivity scale, yet with finite mean
// absolute deviation E|Z| = 1/√2 — unlike the ordinary Cauchy.
type GenCauchy struct{}

// gcNorm is the normalizing constant √2/π: ∫ dz/(1+z⁴) = π/√2.
var gcNorm = math.Sqrt2 / math.Pi

// PDF returns the density (√2/π)/(1+z⁴) at z.
func (GenCauchy) PDF(z float64) float64 {
	z2 := z * z
	return gcNorm / (1 + z2*z2)
}

// CDF returns P(Z <= z), from the closed-form antiderivative of
// 1/(1+z⁴):
//
//	F(z) = √2/8·ln((z²+√2z+1)/(z²−√2z+1)) + √2/4·(atan(√2z+1)+atan(√2z−1)).
//
// In the tails the closed form loses to cancellation (and far out z⁴
// overflows), so beyond |z| = 12 the asymptotic series is used instead
// (see sf); the result is always clamped into [0, 1].
func (g GenCauchy) CDF(z float64) float64 {
	if z >= 0 {
		return 1 - g.sf(z)
	}
	return g.sf(-z)
}

// sf returns the survival function P(Z > z) for z >= 0, computed
// without subtracting nearly-equal quantities so it stays accurate
// (and in [0, 0.5]) arbitrarily far into the tail.
func (GenCauchy) sf(z float64) float64 {
	if z > 12 {
		// 1−CDF(z) = (√2/π)·(1/(3z³) − 1/(7z⁷) + 1/(11z¹¹) − 1/(15z¹⁵) + …).
		// The truncation error of the four-term series is a relative
		// 3/(19z¹⁶) < 10⁻¹⁷ at z = 12, so the series is correctly rounded
		// from here on out — whereas the closed form's cancellation error
		// grows like z³ relative to the shrinking tail (by z = 10⁴ it
		// reaches ~10⁻⁵ relative, which used to make extreme quantiles
		// ill-determined at the ulp level). Far out, the z⁷/z¹¹/z¹⁵ powers
		// overflow to +Inf and their terms vanish, which is exactly the
		// right limit.
		z3 := z * z * z
		z7 := z3 * z3 * z
		z11 := z7 * z3 * z
		z15 := z11 * z3 * z
		return gcNorm * (1/(3*z3) - 1/(7*z7) + 1/(11*z11) - 1/(15*z15))
	}
	z2 := z * z
	r2z := math.Sqrt2 * z
	lg := math.Log((z2+r2z+1)/(z2-r2z+1)) * math.Sqrt2 / 8
	// atan(√2z+1) + atan(√2z−1) − π = −atan((√2z+1)⁻¹) − atan((√2z−1)⁻¹)
	// for z > 1/√2, avoiding the π-sized cancellation; below that the
	// direct form is exact enough.
	var at float64
	if r2z > 1 {
		at = -(math.Atan(1/(r2z+1)) + math.Atan(1/(r2z-1))) * math.Sqrt2 / 4
	} else {
		at = (math.Atan(r2z+1)+math.Atan(r2z-1))*math.Sqrt2/4 - math.Pi*math.Sqrt2/4
	}
	// With gcNorm·π√2/4 = 0.5, the 0.5 constants cancel exactly:
	// SF(z) = 0.5 − gcNorm·(lg + at + π√2/4) = −gcNorm·(lg + at).
	s := -gcNorm * (lg + at)
	if s < 0 {
		return 0
	}
	if s > 0.5 {
		return 0.5
	}
	return s
}

// Quantile returns the p-quantile for p in (0, 1), by table-seeded
// Newton inversion of the closed-form survival function (see
// gencauchy_table.go). Both halves invert against the tail probability
// directly (for p >= 0.5 the subtraction 1−p is exact in floating
// point), so extreme quantiles never suffer cancellation or produce
// infinities.
func (g GenCauchy) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: GenCauchy quantile requires p in (0,1), got %v", p))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -g.quantileTail(p)
	}
	return g.quantileTail(1 - p)
}

// quantileTailBracketed is the cold inversion path: Newton inside a
// guaranteed bracket from a crude cube-root starting point. It is the
// reference the quantile table is built from (and differentially tested
// against), and the fallback for the corner the polish cannot certify.
func (g GenCauchy) quantileTailBracketed(tail float64) float64 {
	// Tail bound P(Z > z) < (√2/π)/(3z³) makes this an upper bracket.
	hi := math.Cbrt(gcNorm / (3 * tail))
	if math.IsInf(hi, 1) {
		// Subnormal tails overflow the quotient; rescale. (The guard — not
		// an unconditional rewrite — keeps the bracket, and with it every
		// iterate, bit-identical for all non-overflowing tails. Note sf's
		// own z³ overflow still caps how deep this search can truly
		// resolve, ~8.4e-310; the series branch of the fast path owns the
		// regime below that, this just keeps the bracket finite.)
		hi = math.Cbrt(gcNorm/3) / math.Cbrt(tail)
	}
	lo, hi := 0.0, hi+1
	z := hi / 2
	for i := 0; i < 64; i++ {
		f := tail - g.sf(z) // increasing in z, like a CDF residual
		if f > 0 {
			hi = z
		} else {
			lo = z
		}
		step := f / g.PDF(z)
		next := z - step
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2 // Newton left the bracket; bisect
		}
		if math.Abs(next-z) <= 1e-15*(1+math.Abs(z)) {
			return next
		}
		z = next
	}
	return z
}

// Sample draws one variate by CDF inversion.
func (g GenCauchy) Sample(s *Stream) float64 {
	return g.Quantile(s.float64Open())
}

// Fill draws len(dst) variates into the caller-owned buffer, consuming
// the stream exactly as len(dst) scalar Sample calls would (see
// Laplace.Fill for the contract).
func (g GenCauchy) Fill(dst []float64, s *Stream) {
	for i := range dst {
		dst[i] = g.Sample(s)
	}
}

// MeanAbs returns E|Z| = 1/√2.
func (GenCauchy) MeanAbs() float64 { return 1 / math.Sqrt2 }
