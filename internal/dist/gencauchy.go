package dist

import (
	"fmt"
	"math"
)

// GenCauchy is the generalized Cauchy distribution with exponent γ = 4:
// density h(z) ∝ 1/(1+z⁴). It is the admissible noise of the Smooth
// Gamma mechanism (Algorithm 2): heavy enough in the tails to absorb
// dilations of the smooth-sensitivity scale, yet with finite mean
// absolute deviation E|Z| = 1/√2 — unlike the ordinary Cauchy.
type GenCauchy struct{}

// gcNorm is the normalizing constant √2/π: ∫ dz/(1+z⁴) = π/√2.
var gcNorm = math.Sqrt2 / math.Pi

// PDF returns the density (√2/π)/(1+z⁴) at z.
func (GenCauchy) PDF(z float64) float64 {
	z2 := z * z
	return gcNorm / (1 + z2*z2)
}

// CDF returns P(Z <= z), from the closed-form antiderivative of
// 1/(1+z⁴):
//
//	F(z) = √2/8·ln((z²+√2z+1)/(z²−√2z+1)) + √2/4·(atan(√2z+1)+atan(√2z−1)).
//
// Far in the tails the closed form loses to cancellation (and z⁴
// overflows), so beyond |z| = 10⁴ the asymptotic series tail is used
// instead; the result is always clamped into [0, 1].
func (g GenCauchy) CDF(z float64) float64 {
	if z >= 0 {
		return 1 - g.sf(z)
	}
	return g.sf(-z)
}

// sf returns the survival function P(Z > z) for z >= 0, computed
// without subtracting nearly-equal quantities so it stays accurate
// (and in [0, 0.5]) arbitrarily far into the tail.
func (GenCauchy) sf(z float64) float64 {
	if z > 1e4 {
		// 1−CDF(z) = (√2/π)·(1/(3z³) − 1/(7z⁷) + 1/(11z¹¹) − …). By
		// z = 10⁴ the closed form's ~10⁻¹⁶ absolute cancellation error
		// already swamps the ~10⁻¹³ tail, while the two-term series is
		// exact to a relative 3/(11z⁸) ≈ 10⁻³³.
		z3 := z * z * z
		return gcNorm * (1/(3*z3) - 1/(7*z3*z3*z))
	}
	z2 := z * z
	r2z := math.Sqrt2 * z
	lg := math.Log((z2+r2z+1)/(z2-r2z+1)) * math.Sqrt2 / 8
	// atan(√2z+1) + atan(√2z−1) − π = −atan((√2z+1)⁻¹) − atan((√2z−1)⁻¹)
	// for z > 1/√2, avoiding the π-sized cancellation; below that the
	// direct form is exact enough.
	var at float64
	if r2z > 1 {
		at = -(math.Atan(1/(r2z+1)) + math.Atan(1/(r2z-1))) * math.Sqrt2 / 4
	} else {
		at = (math.Atan(r2z+1)+math.Atan(r2z-1))*math.Sqrt2/4 - math.Pi*math.Sqrt2/4
	}
	// With gcNorm·π√2/4 = 0.5, the 0.5 constants cancel exactly:
	// SF(z) = 0.5 − gcNorm·(lg + at + π√2/4) = −gcNorm·(lg + at).
	s := -gcNorm * (lg + at)
	if s < 0 {
		return 0
	}
	if s > 0.5 {
		return 0.5
	}
	return s
}

// Quantile returns the p-quantile for p in (0, 1), by Newton inversion
// of the closed-form survival function inside a guaranteed bracket.
// Both halves invert against the tail probability directly (for
// p >= 0.5 the subtraction 1−p is exact in floating point), so extreme
// quantiles never suffer cancellation or produce infinities.
func (g GenCauchy) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: GenCauchy quantile requires p in (0,1), got %v", p))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -g.quantileTail(p)
	}
	return g.quantileTail(1 - p)
}

// quantileTail returns the z > 0 with P(Z > z) = tail, for tail in
// (0, 0.5).
func (g GenCauchy) quantileTail(tail float64) float64 {
	// Tail bound P(Z > z) < (√2/π)/(3z³) makes this an upper bracket.
	lo, hi := 0.0, math.Cbrt(gcNorm/(3*tail))+1
	z := hi / 2
	for i := 0; i < 64; i++ {
		f := tail - g.sf(z) // increasing in z, like a CDF residual
		if f > 0 {
			hi = z
		} else {
			lo = z
		}
		step := f / g.PDF(z)
		next := z - step
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2 // Newton left the bracket; bisect
		}
		if math.Abs(next-z) <= 1e-15*(1+math.Abs(z)) {
			return next
		}
		z = next
	}
	return z
}

// Sample draws one variate by CDF inversion.
func (g GenCauchy) Sample(s *Stream) float64 {
	return g.Quantile(s.float64Open())
}

// Fill draws len(dst) variates into the caller-owned buffer, consuming
// the stream exactly as len(dst) scalar Sample calls would (see
// Laplace.Fill for the contract).
func (g GenCauchy) Fill(dst []float64, s *Stream) {
	for i := range dst {
		dst[i] = g.Sample(s)
	}
}

// MeanAbs returns E|Z| = 1/√2.
func (GenCauchy) MeanAbs() float64 { return 1 / math.Sqrt2 }
