package dist

import (
	"math"
	"testing"
)

// The sampler-v2 agreement contract between the table-seeded fast
// quantile path and the cold bracketed-Newton reference (DESIGN.md §7).
//
// Exact bit-identity between the two is unattainable: both paths
// terminate with a Newton application of the shared survival function
// sf, and sf is computed with absolute noise ~eps·(magnitude of its
// closed-form terms), so the root itself is only determined to
//
//	floor(z) = noise_sf / pdf(z)
//
// — an absolute band of ~2.5e-16 in the bulk (where the closed form's
// O(0.5) terms cancel) and a few ulps of z in the series tail (where
// sf is correctly rounded relative to the tail). The property below
// asserts the fast path lands inside that band around the cold path
// everywhere: within 2 ulps plus 16 evaluation-noise quanta. Holding
// the two paths closer than the band would require resolving sf's
// erratic last-ulp sign structure identically, which no starting point
// may assume — this is the provable-unreachability argument that gates
// the fast path behind the sampler-v2 golden vectors.

// quantileAgreementFloor bounds |fast − cold| by the inherent
// root-determination noise at the cold path's answer.
func quantileAgreementFloor(tail, cold float64) float64 {
	g := GenCauchy{}
	noise := 0.5 // closed-form region: terms of order 0.5 cancel
	if cold > 12 {
		noise = 4 * tail // series region: sf is correctly rounded vs the tail
	}
	return 2*ulpOf(cold) + 16*1.11e-16*noise/g.PDF(cold)
}

func ulpOf(x float64) float64 {
	return math.Nextafter(math.Abs(x), math.Inf(1)) - math.Abs(x)
}

// TestGenCauchyQuantileTableDifferential sweeps more than 10⁶ tail
// probabilities — uniform draws, log-uniform deep tails, both regime
// boundaries, knot and binade edges — and checks the table-seeded path
// against the cold reference at every one.
func TestGenCauchyQuantileTableDifferential(t *testing.T) {
	g := GenCauchy{}
	checked := 0
	check := func(tail float64) {
		t.Helper()
		if !(tail > 0 && tail < 0.5) {
			return
		}
		checked++
		fast := g.quantileTail(tail)
		// Inf/NaN never satisfies d > floor (NaN compares false), so
		// guard explicitly: a non-finite quantile is always a bug, and
		// without this the sweep would pass vacuously on exactly the
		// inputs most likely to break.
		if math.IsInf(fast, 0) || math.IsNaN(fast) || !(fast > 0) {
			t.Fatalf("tail %.17g: fast path returned %v", tail, fast)
		}
		if tail < 1e-230 {
			// Deeper in, the density underflows to zero, which makes the
			// agreement floor infinite and (below ~8.4e-310, where z³
			// overflows sf) the cold oracle itself wrong; finiteness is
			// asserted above and precision by TestGenCauchyQuantileDeepTail.
			return
		}
		cold := g.quantileTailBracketed(tail)
		if math.IsInf(cold, 0) || math.IsNaN(cold) {
			t.Fatalf("tail %.17g: cold path returned %v", tail, cold)
		}
		if d := math.Abs(fast - cold); d > quantileAgreementFloor(tail, cold) {
			t.Fatalf("tail %.17g: fast %.17g vs cold %.17g differ by %g (floor %g)",
				tail, fast, cold, d, quantileAgreementFloor(tail, cold))
		}
	}

	uniform, logUniform := 800_000, 220_000
	if testing.Short() {
		uniform, logUniform = 80_000, 22_000
	}
	s := NewStreamFromSeed(20260728)
	for i := 0; i < uniform; i++ {
		check(s.float64Open() / 2) // the sampler's own tail distribution
	}
	for i := 0; i < logUniform; i++ {
		// Log-uniform from 0.5 down past the table floor into the
		// series-only regime (tails the uniform sweep never reaches).
		check(0.5 * math.Exp(-s.Float64()*100))
	}
	// Regime boundaries and structured edges (subnormals included: the
	// finiteness guard must hold all the way down).
	for _, tail := range []float64{
		5e-324, 1e-320, 1e-300, 1e-232, 1e-100, 1e-30, 1e-21, gcTableFloor / 2,
		gcTableFloor, math.Nextafter(gcTableFloor, 0), math.Nextafter(gcTableFloor, 1),
		1e-18, 1e-15, 1e-13, 1e-12, // p < 1e-12 tail regime
		1e-9, 1e-6, 1e-4, 1e-3, 0.01, 0.1, 0.25, 0.3, 0.4, 0.45, 0.49,
		0.4999, 0.5 - 1e-9, 0.5 - 1e-12, 0.5 - 0x1p-53, // p -> 0.5 regime
		math.Nextafter(0.5, 0),
	} {
		check(tail)
	}
	// Every knot and both neighbors of every binade boundary: the
	// interpolant's own nodes must polish cleanly too.
	for b := 0; b < gcTableBinades; b++ {
		scale := math.Ldexp(1, -b-1)
		for j := 0; j <= gcTableKnots; j++ {
			f := 0.5 + float64(j)/(2*gcTableKnots)
			tail := f * scale
			check(tail)
			check(math.Nextafter(tail, 0))
			check(math.Nextafter(tail, 1))
		}
	}
	if min := 1_000_000; !testing.Short() && checked < min {
		t.Fatalf("differential sweep covered %d quantiles, want >= %d", checked, min)
	}
}

// TestGenCauchyQuantileDeepTail covers the series-only regime below the
// table floor, where the closed forms are unevaluatable (z³ overflows
// the survival function, z⁴ the density) and the two-term series
// truncation is far below an ulp: the quantile must stay finite and
// positive down to the smallest subnormal tail — gcNorm/(3·tail) used
// to overflow to a −Inf quantile for tail < ~8.4e-310 — satisfy the
// series identity in log space, and decrease monotonically as the tail
// grows.
func TestGenCauchyQuantileDeepTail(t *testing.T) {
	g := GenCauchy{}
	tails := []float64{
		5e-324, 1e-320, 1e-310, 1e-300, 1e-232, 1e-150, 1e-100, 1e-50,
		1e-30, gcTableFloor / 2, math.Nextafter(gcTableFloor, 0),
	}
	prev := math.Inf(1)
	for _, tail := range tails {
		z := g.quantileTail(tail)
		if math.IsInf(z, 0) || math.IsNaN(z) || !(z > 0) {
			t.Fatalf("tail %g: quantileTail = %v, want finite positive", tail, z)
		}
		// SF(z) ≈ gcNorm/(3z³) cannot be evaluated directly out here, so
		// verify the inversion in log space: 3·ln z = ln(gcNorm/3) − ln tail.
		// ln(tail) goes through Frexp because math.Log mishandles
		// subnormal arguments (it reads their biased exponent as −1022
		// without normalizing, so Log(5e-324) comes back ≈ −709 instead
		// of −744); Frexp normalizes first.
		frac, exp := math.Frexp(tail)
		lhs := 3 * math.Log(z)
		rhs := math.Log(gcNorm/3) - (math.Log(frac) + float64(exp)*math.Ln2)
		if math.Abs(lhs-rhs) > 1e-10*math.Abs(rhs) {
			t.Fatalf("tail %g: z = %g fails the series identity (3·ln z = %g, want %g)", tail, z, lhs, rhs)
		}
		if z >= prev {
			t.Fatalf("tail %g: z = %g not below %g (quantile must shrink as the tail grows)", tail, z, prev)
		}
		prev = z
		// The public API must agree and carry the sign. (1−tail rounds to
		// exactly 1 for these tails, so only the lower half is reachable
		// through Quantile.)
		if q := g.Quantile(tail); q != -z {
			t.Fatalf("Quantile(%g) = %v, want %v", tail, q, -z)
		}
	}
}

// TestGenCauchyQuantileFullRange pins the public Quantile on both
// halves against the cold path through the same floor, including the
// sign symmetry the tail decomposition relies on.
func TestGenCauchyQuantileFullRange(t *testing.T) {
	g := GenCauchy{}
	for _, p := range []float64{
		1e-200, 1e-18, 1e-12, 1e-6, 0.01, 0.2, 0.4999999, 0.5, 0.5000001, 0.8, 0.99,
		1 - 1e-6, 1 - 1e-12, 1 - 0x1p-53,
	} {
		got := g.Quantile(p)
		if p == 0.5 {
			if got != 0 {
				t.Fatalf("Quantile(0.5) = %v, want 0", got)
			}
			continue
		}
		tail := p
		want := -g.quantileTailBracketed(tail)
		if p > 0.5 {
			tail = 1 - p
			want = g.quantileTailBracketed(tail)
		}
		if d := math.Abs(got - want); d > quantileAgreementFloor(tail, math.Abs(want)) {
			t.Fatalf("Quantile(%v) = %.17g, cold path %.17g (diff %g)", p, got, want, d)
		}
		if p < 0.5 && got >= 0 || p > 0.5 && got <= 0 {
			t.Fatalf("Quantile(%v) = %v has wrong sign", p, got)
		}
	}
}

// TestGenCauchySampleUsesFastPath pins the scalar/batch sampler
// equivalence on the v2 path: Fill must remain bit-identical to
// repeated Sample calls, and Sample must equal Quantile of the same
// uniform draw.
func TestGenCauchySampleUsesFastPath(t *testing.T) {
	g := GenCauchy{}
	want := make([]float64, 256)
	s := NewStreamFromSeed(99)
	for i := range want {
		want[i] = g.Sample(s)
	}
	got := make([]float64, 256)
	g.Fill(got, NewStreamFromSeed(99))
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Fill draw %d = %v, scalar %v", i, got[i], want[i])
		}
	}
	u := NewStreamFromSeed(99)
	q := g.Quantile(u.float64Open())
	if q != want[0] {
		t.Fatalf("Sample/Quantile diverged: %v vs %v", want[0], q)
	}
}

// TestGenCauchyFastSamplerKS re-runs the Kolmogorov–Smirnov
// goodness-of-fit check over the sampler-v2 fast path at 10× the sample
// size of the standard suite (TestGenCauchyKS), drawing through the
// batch Fill entry point the release pipeline uses.
func TestGenCauchyFastSamplerKS(t *testing.T) {
	g := GenCauchy{}
	xs := make([]float64, 200_000)
	g.Fill(xs, NewStreamFromSeed(2026))
	_, p, err := KolmogorovSmirnov(xs, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("KS p-value %v: fast GenCauchy sampler does not match its CDF", p)
	}
}

// TestGenCauchyTableSeedAccuracy checks the Hermite interpolant alone
// (before the Newton polish) is everywhere within 4e-8 relative of the
// cold path — the basin the one-step polish argument needs: from a seed
// with absolute error δ, one Newton step lands within ~|pdf'/pdf|·δ²/2
// < 1e-16 of the root, below the sf evaluation noise.
func TestGenCauchyTableSeedAccuracy(t *testing.T) {
	g := GenCauchy{}
	tab := gcTable()
	s := NewStreamFromSeed(7)
	for i := 0; i < 50_000; i++ {
		tail := 0.5 * math.Exp(-s.Float64()*43) // spans all 63 binades
		if tail < gcTableFloor {
			continue
		}
		f, exp := math.Frexp(tail)
		b := -exp - 1
		j := int((f - 0.5) * (2 * gcTableKnots))
		if j >= gcTableKnots {
			j = gcTableKnots - 1
		}
		k := b*(gcTableKnots+1) + j
		const h = 1.0 / (2 * gcTableKnots)
		u := (f - (0.5 + float64(j)*h)) / h
		u2, um := u*u, 1-u
		um2 := um * um
		seed := (1+2*u)*um2*tab.z[k] + h*u*um2*tab.d[k] + u2*(3-2*u)*tab.z[k+1] - h*u2*um*tab.d[k+1]
		cold := g.quantileTailBracketed(tail)
		if rel := math.Abs(seed-cold) / (math.Abs(cold) + 1e-300); rel > 4e-8 {
			t.Fatalf("tail %g: Hermite seed %g vs cold %g (relative error %g)", tail, seed, cold, rel)
		}
	}
}
