package dist

import (
	"math"
)

// Stream is a deterministic splittable random stream. The identity of a
// stream — its seed and the chain of Split/SplitIndex labels that
// produced it — fully determines its draw sequence; advancing the
// stream never changes its identity, so children derived from it are
// reproducible regardless of draw order. See the package documentation
// for the full contract.
//
// A Stream is not safe for concurrent use; give each goroutine its own
// Split child instead of sharing one.
type Stream struct {
	// base is the immutable identity; state is the mutable draw
	// position, advanced SplitMix64-style on every draw.
	base  uint64
	state uint64
	// spare holds the second Box–Muller normal between NormFloat64 calls.
	spare    float64
	hasSpare bool
}

// SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014).
const (
	golden = 0x9E3779B97F4A7C15
	mixA   = 0xBF58476D1CE4E5B9
	mixB   = 0x94D049BB133111EB
)

// mix64 is the SplitMix64 finalizer: a bijective avalanche of the state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixA
	z = (z ^ (z >> 27)) * mixB
	return z ^ (z >> 31)
}

// newStream returns a stream with the given identity, positioned at its
// first draw.
func newStream(base uint64) *Stream {
	return &Stream{base: base, state: base}
}

// NewStreamFromSeed returns the root stream of a seed. The same seed
// always denotes the same stream.
func NewStreamFromSeed(seed int64) *Stream {
	// Finalize the seed so that adjacent seeds (0, 1, 2, …) land on
	// well-separated identities.
	return newStream(mix64(uint64(seed) + golden))
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// float64Open returns a uniform draw in the open interval (0, 1), for
// inverse-CDF sampling where 0 or 1 would map to an infinity. Using 52
// bits keeps the midpoint offset exact: the largest value is 1 − 2⁻⁵³
// and the smallest 2⁻⁵³, never 0 or 1 (53 bits would round the top
// value up to exactly 1).
func (s *Stream) float64Open() float64 {
	return (float64(s.Uint64()>>12) + 0.5) / (1 << 52)
}

// IntN returns a uniform draw from {0, …, n−1}. It panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("dist: IntN requires n > 0")
	}
	// Rejection-sample the top of the range away so every residue is
	// exactly equally likely.
	un := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%un
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// NormFloat64 returns a standard normal draw (Box–Muller; the second
// variate of each pair is cached).
func (s *Stream) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	r := math.Sqrt(-2 * math.Log(s.float64Open()))
	theta := 2 * math.Pi * s.Float64()
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return r * math.Cos(theta)
}

// deriveKey folds data into an identity, FNV-1a style but finalized
// through the SplitMix64 avalanche so single-byte label differences
// flip about half the key bits.
func deriveKey(base uint64, label string, idx uint64) uint64 {
	const fnvPrime = 0x100000001B3
	h := base ^ 0xCBF29CE484222325
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * fnvPrime
	}
	h = (h ^ idx) * fnvPrime
	return mix64(h + golden)
}

// Split returns the child stream the label denotes. Split is a pure
// function of the stream's identity: it does not advance the parent,
// and calling it twice with the same label returns streams with
// identical draw sequences.
func (s *Stream) Split(label string) *Stream {
	return newStream(deriveKey(s.base, label, 0))
}

// SplitIndex returns the child stream the (label, index) pair denotes,
// for families of independent streams such as per-trial or per-cell
// noise. Like Split it is pure and leaves the parent untouched. It
// panics on negative indices: index −1 would alias Split(label),
// silently correlating streams that must be independent.
func (s *Stream) SplitIndex(label string, i int) *Stream {
	if i < 0 {
		panic("dist: SplitIndex requires a non-negative index")
	}
	return newStream(deriveKey(s.base, label, uint64(i)+1))
}

// SplitIndexInto is SplitIndex writing the child into a caller-owned
// Stream instead of allocating one, for hot loops that derive a stream
// per cell. The child's identity and draw sequence are exactly those of
// SplitIndex(label, i); any previous state in dst (position, cached
// Box–Muller spare) is overwritten, as if dst were freshly created.
func (s *Stream) SplitIndexInto(dst *Stream, label string, i int) {
	if i < 0 {
		panic("dist: SplitIndexInto requires a non-negative index")
	}
	key := deriveKey(s.base, label, uint64(i)+1)
	dst.base = key
	dst.state = key
	dst.spare = 0
	dst.hasSpare = false
}
