package dist

import (
	"testing"
)

// The batch-sampler stream-order contract: Fill(dst, s) must consume the
// stream exactly as len(dst) scalar Sample calls would, and FillSplit
// must reproduce the per-index child-stream family bit for bit. The
// release pipeline's determinism against the scalar golden path rests
// entirely on these equivalences.

// fillSamplers enumerates every distribution with a concrete Fill
// method, plus a wrapper that forces the generic interface fallback.
func fillSamplers() map[string]Sampler {
	return map[string]Sampler{
		"laplace":    NewLaplace(1.7),
		"gencauchy":  GenCauchy{},
		"gapuniform": NewGapUniform(0.1, 0.25),
	}
}

// opaque hides the concrete type so Fill/FillSplit take their generic
// fallback path.
type opaque struct{ inner Sampler }

func (o opaque) Sample(s *Stream) float64 { return o.inner.Sample(s) }

func TestFillMatchesScalarSamples(t *testing.T) {
	for name, m := range fillSamplers() {
		for _, n := range []int{0, 1, 7, 256} {
			want := make([]float64, n)
			s := NewStreamFromSeed(101)
			for i := range want {
				want[i] = m.Sample(s)
			}
			got := make([]float64, n)
			Fill(got, m, NewStreamFromSeed(101))
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: Fill[%d] = %v, want %v (stream-order contract broken)",
						name, n, i, got[i], want[i])
				}
			}
			// The generic fallback must agree with the fast path.
			gotOpaque := make([]float64, n)
			Fill(gotOpaque, opaque{m}, NewStreamFromSeed(101))
			for i := range gotOpaque {
				if gotOpaque[i] != want[i] {
					t.Fatalf("%s n=%d: generic Fill[%d] = %v, want %v", name, n, i, gotOpaque[i], want[i])
				}
			}
		}
	}
}

// TestFillContinuesStream checks Fill leaves the stream positioned where
// the scalar calls would: two back-to-back Fills equal one big one.
func TestFillContinuesStream(t *testing.T) {
	l := NewLaplace(1)
	whole := make([]float64, 64)
	Fill(whole, l, NewStreamFromSeed(7))
	s := NewStreamFromSeed(7)
	first, second := make([]float64, 24), make([]float64, 40)
	Fill(first, l, s)
	Fill(second, l, s)
	for i := range first {
		if first[i] != whole[i] {
			t.Fatalf("first half diverges at %d", i)
		}
	}
	for i := range second {
		if second[i] != whole[24+i] {
			t.Fatalf("second half diverges at %d", i)
		}
	}
}

func TestFillSplitMatchesScalarSplitIndex(t *testing.T) {
	for name, m := range fillSamplers() {
		parent := NewStreamFromSeed(55)
		const base, n = 13, 200
		want := make([]float64, n)
		for j := range want {
			want[j] = m.Sample(parent.SplitIndex("cell", base+j))
		}
		got := make([]float64, n)
		FillSplit(got, m, parent, "cell", base)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%s: FillSplit[%d] = %v, want %v", name, j, got[j], want[j])
			}
		}
		gotOpaque := make([]float64, n)
		FillSplit(gotOpaque, opaque{m}, parent, "cell", base)
		for j := range gotOpaque {
			if gotOpaque[j] != want[j] {
				t.Fatalf("%s: generic FillSplit[%d] = %v, want %v", name, j, gotOpaque[j], want[j])
			}
		}
	}
}

// TestSplitIndexIntoMatchesSplitIndex pins the zero-alloc derivation:
// identical identity, draw sequence, and reset of the Box–Muller spare.
func TestSplitIndexIntoMatchesSplitIndex(t *testing.T) {
	parent := NewStreamFromSeed(9)
	var child Stream
	for i := 0; i < 50; i++ {
		want := parent.SplitIndex("x", i)
		parent.SplitIndexInto(&child, "x", i)
		for d := 0; d < 4; d++ {
			if g, w := child.Uint64(), want.Uint64(); g != w {
				t.Fatalf("i=%d draw=%d: %d != %d", i, d, g, w)
			}
		}
	}
	// A dirty spare must not leak into the next derivation.
	parent.SplitIndexInto(&child, "norm", 0)
	child.NormFloat64() // leaves a cached spare behind
	parent.SplitIndexInto(&child, "norm", 0)
	want := parent.SplitIndex("norm", 0)
	for d := 0; d < 4; d++ {
		if g, w := child.NormFloat64(), want.NormFloat64(); g != w {
			t.Fatalf("spare leaked: draw %d: %v != %v", d, g, w)
		}
	}
}

func TestSplitIndexIntoPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var child Stream
	NewStreamFromSeed(1).SplitIndexInto(&child, "x", -1)
}

// TestSplitIndexIntoDoesNotAllocate is the point of the API: deriving a
// per-cell stream in a hot loop must not touch the heap.
func TestSplitIndexIntoDoesNotAllocate(t *testing.T) {
	parent := NewStreamFromSeed(3)
	var child Stream
	allocs := testing.AllocsPerRun(200, func() {
		parent.SplitIndexInto(&child, "cell", 7)
		_ = child.Uint64()
	})
	if allocs != 0 {
		t.Fatalf("SplitIndexInto allocates %v per run, want 0", allocs)
	}
}
