package dist

import (
	"fmt"
	"math"
)

// SkewedSize is the establishment-size mixture of the synthetic LODES
// generator: with probability TailProb a Pareto tail draw, otherwise a
// log-normal body draw, rounded to an integer employment of at least 1.
// The mixture reproduces the two structural facts the paper's
// evaluation depends on: a small median establishment and a heavy right
// tail whose largest members dominate their cells.
type SkewedSize struct {
	Body     LogNormal
	Tail     Pareto
	TailProb float64
}

// NewSkewedSize returns the mixture. It panics unless tailProb is a
// probability.
func NewSkewedSize(body LogNormal, tail Pareto, tailProb float64) SkewedSize {
	if !(tailProb >= 0 && tailProb <= 1) {
		panic(fmt.Sprintf("dist: SkewedSize tail probability must be in [0,1], got %v", tailProb))
	}
	return SkewedSize{Body: body, Tail: tail, TailProb: tailProb}
}

// Sample draws one establishment size (an integer >= 1). The mixture
// indicator is drawn first, then the component, so a stream position
// maps to a fixed draw regardless of which component is taken.
func (m SkewedSize) Sample(s *Stream) int {
	var v float64
	if s.Float64() < m.TailProb {
		v = m.Tail.Sample(s)
	} else {
		v = m.Body.Sample(s)
	}
	// Clamp before converting: float→int overflow is implementation-
	// dependent in Go, and a shallow Pareto tail (alpha < 1) can draw
	// past the platform's int range.
	if v >= math.MaxInt {
		return math.MaxInt
	}
	size := int(v + 0.5)
	if size < 1 {
		return 1
	}
	return size
}

// Mean returns the expected size of the continuous mixture (before
// rounding and the floor at 1) — the planning number DefaultConfig's
// comment cites.
func (m SkewedSize) Mean() float64 {
	return (1-m.TailProb)*m.Body.Mean() + m.TailProb*m.Tail.Mean()
}
