package dist

import (
	"math"
	"testing"
)

func TestFloat64Range(t *testing.T) {
	s := NewStreamFromSeed(1)
	for i := 0; i < 10_000; i++ {
		u := s.Float64()
		if !(u >= 0 && u < 1) {
			t.Fatalf("Float64() = %v outside [0,1)", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := NewStreamFromSeed(2)
	n := 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := s.Float64()
		sum += u
		sumSq += u * u
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want %v", variance, 1.0/12)
	}
}

func TestIntNBoundsAndCoverage(t *testing.T) {
	s := NewStreamFromSeed(3)
	seen := make([]int, 7)
	for i := 0; i < 7_000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Errorf("IntN(7) never produced %d", v)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	s := NewStreamFromSeed(4)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IntN(%d) did not panic", n)
				}
			}()
			s.IntN(n)
		}()
	}
}

func TestNormFloat64Distribution(t *testing.T) {
	s := NewStreamFromSeed(5)
	n := 50_000
	sample := make([]float64, n)
	var sum, sumSq float64
	for i := range sample {
		z := s.NormFloat64()
		sample[i] = z
		sum += z
		sumSq += z * z
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want 1", variance)
	}
	stdNormalCDF := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	if _, p, err := KolmogorovSmirnov(sample, stdNormalCDF); err != nil {
		t.Fatal(err)
	} else if p < 1e-4 {
		t.Errorf("KS p-value %v: NormFloat64 does not look normal", p)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a, b := NewStreamFromSeed(99), NewStreamFromSeed(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := NewStreamFromSeed(0), NewStreamFromSeed(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 draws collided across adjacent seeds", same)
	}
}

// TestSplitPurity pins the core contract: Split is a function of the
// parent's identity, not of its draw position, so subsystems can
// re-derive the same labeled stream at any time.
func TestSplitPurity(t *testing.T) {
	parent := NewStreamFromSeed(7)
	first := parent.Split("workers")
	parent.Float64() // advance the parent between derivations
	parent.IntN(10)
	second := parent.Split("workers")
	for i := 0; i < 100; i++ {
		if first.Uint64() != second.Uint64() {
			t.Fatalf("Split(label) depends on parent draw position (draw %d)", i)
		}
	}
}

func TestSplitIndexPurity(t *testing.T) {
	parent := NewStreamFromSeed(8)
	first := parent.SplitIndex("trial", 3)
	parent.Float64()
	second := parent.SplitIndex("trial", 3)
	for i := 0; i < 100; i++ {
		if first.Uint64() != second.Uint64() {
			t.Fatalf("SplitIndex depends on parent draw position (draw %d)", i)
		}
	}
}

func TestSplitIndexPanicsOnNegative(t *testing.T) {
	// Index −1 would wrap uint64(i)+1 to 0 and alias Split(label),
	// silently correlating streams that must be independent.
	defer func() {
		if recover() == nil {
			t.Error("SplitIndex(label, -1) did not panic")
		}
	}()
	NewStreamFromSeed(12).SplitIndex("trial", -1)
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := NewStreamFromSeed(9), NewStreamFromSeed(9)
	a.Split("x")
	a.SplitIndex("y", 4)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("deriving children advanced the parent stream")
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	parent := NewStreamFromSeed(10)
	streams := []*Stream{
		parent.Split("a"),
		parent.Split("b"),
		parent.Split("ab"),
		parent.SplitIndex("a", 0),
		parent.SplitIndex("a", 1),
		parent.Split("a").Split("a"),
	}
	draws := make([]uint64, len(streams))
	for i, s := range streams {
		draws[i] = s.Uint64()
	}
	for i := range draws {
		for j := i + 1; j < len(draws); j++ {
			if draws[i] == draws[j] {
				t.Errorf("streams %d and %d produced the same first draw", i, j)
			}
		}
	}
}

// TestSplitIndependence checks that a child's draw sequence is
// statistically independent of its parent's and of its siblings': the
// empirical correlation over a long run must be near zero.
func TestSplitIndependence(t *testing.T) {
	parent := NewStreamFromSeed(11)
	childA := parent.Split("a")
	childB := parent.Split("b")
	n := 50_000
	seqs := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		seqs[0][i] = parent.Float64()
		seqs[1][i] = childA.Float64()
		seqs[2][i] = childB.Float64()
	}
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			if r := correlation(seqs[i], seqs[j]); math.Abs(r) > 0.02 {
				t.Errorf("correlation(seq %d, seq %d) = %v, want ~0", i, j, r)
			}
		}
	}
}

func correlation(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}
