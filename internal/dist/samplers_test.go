package dist

import (
	"math"
	"testing"
)

// drawN collects n draws from a sampler.
func drawN(n int, seed int64, sample func(*Stream) float64) []float64 {
	s := NewStreamFromSeed(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = sample(s)
	}
	return out
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func variance(xs []float64) float64 {
	m := mean(xs)
	var sum float64
	for _, x := range xs {
		sum += (x - m) * (x - m)
	}
	return sum / float64(len(xs))
}

// --- Laplace ---

func TestLaplaceMoments(t *testing.T) {
	l := NewLaplace(2)
	xs := drawN(100_000, 20, l.Sample)
	if m := mean(xs); math.Abs(m) > 0.05 {
		t.Errorf("Laplace(2) mean = %v, want 0", m)
	}
	if v := variance(xs); math.Abs(v-l.Variance()) > 0.3 {
		t.Errorf("Laplace(2) variance = %v, want %v", v, l.Variance())
	}
	var absSum float64
	for _, x := range xs {
		absSum += math.Abs(x)
	}
	if ma := absSum / float64(len(xs)); math.Abs(ma-l.MeanAbs()) > 0.05 {
		t.Errorf("Laplace(2) E|X| = %v, want %v", ma, l.MeanAbs())
	}
}

func TestLaplaceKS(t *testing.T) {
	l := NewLaplace(1.5)
	xs := drawN(20_000, 21, l.Sample)
	_, p, err := KolmogorovSmirnov(xs, l.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("KS p-value %v: Laplace sampler does not match its CDF", p)
	}
}

func TestLaplaceQuantileInvertsCDF(t *testing.T) {
	l := NewLaplace(3)
	for _, p := range []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999} {
		q := l.Quantile(p)
		if got := l.CDF(q); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if q := l.Quantile(0.5); q != 0 {
		t.Errorf("median = %v, want 0", q)
	}
}

func TestLaplacePDFIsDensityOfCDF(t *testing.T) {
	l := NewLaplace(0.7)
	for x := -5.0; x <= 5.0; x += 0.37 {
		h := 1e-6
		numeric := (l.CDF(x+h) - l.CDF(x-h)) / (2 * h)
		if math.Abs(numeric-l.PDF(x)) > 1e-5 {
			t.Errorf("PDF(%v) = %v, CDF derivative = %v", x, l.PDF(x), numeric)
		}
	}
}

func TestLaplacePanics(t *testing.T) {
	for _, b := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLaplace(%v) did not panic", b)
				}
			}()
			NewLaplace(b)
		}()
	}
	l := NewLaplace(1)
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			l.Quantile(p)
		}()
	}
}

// --- GenCauchy ---

func TestGenCauchyPDFNormalized(t *testing.T) {
	g := GenCauchy{}
	// Trapezoidal integral over [-60, 60] plus the analytic tail bound.
	var integral float64
	h := 0.001
	for x := -60.0; x < 60.0; x += h {
		integral += h * (g.PDF(x) + g.PDF(x+h)) / 2
	}
	tail := 2 * gcNorm / (3 * math.Pow(60, 3))
	if math.Abs(integral+tail-1) > 1e-4 {
		t.Errorf("PDF integrates to %v, want 1", integral+tail)
	}
}

func TestGenCauchyCDF(t *testing.T) {
	g := GenCauchy{}
	if got := g.CDF(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	for x := -8.0; x <= 8.0; x += 0.53 {
		if s := g.CDF(x) + g.CDF(-x); math.Abs(s-1) > 1e-12 {
			t.Errorf("CDF(%v)+CDF(%v) = %v, want 1 (symmetry)", x, -x, s)
		}
		h := 1e-6
		numeric := (g.CDF(x+h) - g.CDF(x-h)) / (2 * h)
		if math.Abs(numeric-g.PDF(x)) > 1e-5 {
			t.Errorf("CDF derivative at %v = %v, PDF = %v", x, numeric, g.PDF(x))
		}
	}
	if g.CDF(-100) > 1e-6 || g.CDF(100) < 1-1e-6 {
		t.Error("CDF tails do not approach 0 and 1")
	}
}

func TestGenCauchyQuantileInvertsCDF(t *testing.T) {
	g := GenCauchy{}
	for _, p := range []float64{1e-6, 0.01, 0.2, 0.5, 0.8, 0.99, 1 - 1e-6} {
		q := g.Quantile(p)
		if got := g.CDF(q); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGenCauchyCDFExtremes(t *testing.T) {
	// Far in the tails the CDF must stay inside [0,1], never go NaN
	// (z⁴ overflows past ~1.3e77), and remain usable by the KS helper,
	// which rejects any CDF value outside [0,1].
	g := GenCauchy{}
	for _, z := range []float64{1e5, 1e6, 1e7, 1e77, 1e200, math.MaxFloat64} {
		for _, x := range []float64{z, -z} {
			f := g.CDF(x)
			if math.IsNaN(f) || f < 0 || f > 1 {
				t.Errorf("CDF(%v) = %v outside [0,1]", x, f)
			}
		}
		if g.CDF(z) <= 0.999 || g.CDF(-z) >= 0.001 {
			t.Errorf("CDF tails wrong at |z| = %v", z)
		}
	}
	// Continuity across the closed-form/series switchover at 1e4: the
	// survival function from the two branches must agree to well under
	// a relative 1e-3 (the closed form's cancellation error there).
	above, below := g.sf(1e4-0.5), g.sf(1e4+0.5)
	if below > above || (above-below)/above > 1e-3 {
		t.Errorf("sf jump across switchover: %v -> %v", above, below)
	}
}

func TestGenCauchyQuantileExtremes(t *testing.T) {
	// The smallest and largest probabilities the sampler can produce
	// (2⁻⁵³ and 1−2⁻⁵³), and beyond, must invert to finite values.
	g := GenCauchy{}
	eps := math.Ldexp(1, -53)
	for _, p := range []float64{eps, 1 - eps, 1e-300, 1 - 1e-16} {
		q := g.Quantile(p)
		if math.IsInf(q, 0) || math.IsNaN(q) {
			t.Errorf("Quantile(%v) = %v, want finite", p, q)
		}
		if (p < 0.5) != (q < 0) {
			t.Errorf("Quantile(%v) = %v on the wrong side of the median", p, q)
		}
	}
}

func TestGenCauchyMeanAbs(t *testing.T) {
	g := GenCauchy{}
	if math.Abs(g.MeanAbs()-1/math.Sqrt2) > 1e-15 {
		t.Errorf("MeanAbs = %v, want 1/sqrt(2)", g.MeanAbs())
	}
	xs := drawN(200_000, 22, g.Sample)
	var absSum float64
	for _, x := range xs {
		absSum += math.Abs(x)
	}
	if ma := absSum / float64(len(xs)); math.Abs(ma-g.MeanAbs()) > 0.02 {
		t.Errorf("empirical E|Z| = %v, want %v", ma, g.MeanAbs())
	}
}

func TestGenCauchyKS(t *testing.T) {
	g := GenCauchy{}
	xs := drawN(20_000, 23, g.Sample)
	_, p, err := KolmogorovSmirnov(xs, g.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("KS p-value %v: GenCauchy sampler does not match its CDF", p)
	}
}

// --- LogNormal ---

func TestLogNormalStats(t *testing.T) {
	l := NewLogNormal(2, 1)
	xs := drawN(200_000, 24, l.Sample)
	if m := mean(xs); math.Abs(m-l.Mean()) > 0.3 {
		t.Errorf("LogNormal(2,1) mean = %v, want %v", m, l.Mean())
	}
	_, p, err := KolmogorovSmirnov(xs[:20_000], l.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("KS p-value %v: LogNormal sampler does not match its CDF", p)
	}
	if med := l.Median(); math.Abs(med-math.Exp(2)) > 1e-12 {
		t.Errorf("median = %v, want e^2", med)
	}
}

func TestLogNormalDegenerateSigma(t *testing.T) {
	l := NewLogNormal(1, 0)
	s := NewStreamFromSeed(25)
	for i := 0; i < 10; i++ {
		if got := l.Sample(s); got != math.E {
			t.Fatalf("sigma=0 sample = %v, want e", got)
		}
	}
	if l.CDF(math.E-0.001) != 0 || l.CDF(math.E+0.001) != 1 {
		t.Error("sigma=0 CDF is not a step at e^mu")
	}
}

func TestLogNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLogNormal(0, -1) did not panic")
		}
	}()
	NewLogNormal(0, -1)
}

// --- Pareto ---

func TestParetoStats(t *testing.T) {
	p := NewPareto(200, 1.3)
	xs := drawN(200_000, 26, p.Sample)
	for _, x := range xs[:1000] {
		if x < p.Xm {
			t.Fatalf("Pareto draw %v below xm %v", x, p.Xm)
		}
	}
	// alpha=1.3 has a finite but very noisy mean; check the median instead:
	// median = xm * 2^(1/alpha).
	sorted := append([]float64(nil), xs...)
	wantMedian := p.Xm * math.Pow(2, 1/p.Alpha)
	var above int
	for _, x := range sorted {
		if x > wantMedian {
			above++
		}
	}
	frac := float64(above) / float64(len(sorted))
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction above theoretical median = %v, want 0.5", frac)
	}
	_, pv, err := KolmogorovSmirnov(xs[:20_000], p.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if pv < 1e-4 {
		t.Errorf("KS p-value %v: Pareto sampler does not match its CDF", pv)
	}
}

func TestParetoMean(t *testing.T) {
	if m := NewPareto(200, 1.3).Mean(); math.Abs(m-200*1.3/0.3) > 1e-9 {
		t.Errorf("Pareto mean = %v", m)
	}
	if m := NewPareto(1, 0.9).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Pareto(alpha=0.9) mean = %v, want +Inf", m)
	}
}

func TestParetoPanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPareto(%v, %v) did not panic", args[0], args[1])
				}
			}()
			NewPareto(args[0], args[1])
		}()
	}
}

// --- SkewedSize ---

func TestSkewedSizeShape(t *testing.T) {
	m := NewSkewedSize(NewLogNormal(2.0, 1.0), NewPareto(200, 1.3), 0.01)
	s := NewStreamFromSeed(27)
	n := 100_000
	sizes := make([]int, n)
	sum, maxSize := 0, 0
	for i := range sizes {
		v := m.Sample(s)
		if v < 1 {
			t.Fatalf("size %d < 1", v)
		}
		sizes[i] = v
		sum += v
		if v > maxSize {
			maxSize = v
		}
	}
	// The continuous mixture mean is ~20.7 (the paper's jobs per
	// establishment); rounding and the Pareto tail's noise widen the band.
	empMean := float64(sum) / float64(n)
	if empMean < 12 || empMean > 32 {
		t.Errorf("mixture mean = %v, want near %v", empMean, m.Mean())
	}
	if maxSize < 500 {
		t.Errorf("max size %d: Pareto tail missing", maxSize)
	}
	// Right skew: mean well above median.
	count := 0
	for _, v := range sizes {
		if float64(v) < empMean {
			count++
		}
	}
	if frac := float64(count) / float64(n); frac < 0.6 {
		t.Errorf("only %v of sizes below the mean: not right-skewed", frac)
	}
}

func TestSkewedSizeMean(t *testing.T) {
	m := NewSkewedSize(NewLogNormal(2.0, 1.0), NewPareto(200, 1.3), 0.01)
	want := 0.99*math.Exp(2.5) + 0.01*(200*1.3/0.3)
	if math.Abs(m.Mean()-want) > 1e-9 {
		t.Errorf("SkewedSize mean = %v, want %v", m.Mean(), want)
	}
}

func TestSkewedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSkewedSize with tailProb=1.5 did not panic")
		}
	}()
	NewSkewedSize(NewLogNormal(0, 1), NewPareto(1, 2), 1.5)
}

// --- GapUniform ---

func TestGapUniformBand(t *testing.T) {
	g := NewGapUniform(0.1, 0.25)
	s := NewStreamFromSeed(28)
	below, above := 0, 0
	var sum float64
	n := 50_000
	for i := 0; i < n; i++ {
		f := g.Sample(s)
		if !g.Contains(f) {
			t.Fatalf("sample %v outside band", f)
		}
		if f < 1 {
			below++
		} else {
			above++
		}
		sum += f
	}
	if below == 0 || above == 0 {
		t.Fatalf("one-sided samples: %d below, %d above", below, above)
	}
	if ratio := float64(below) / float64(n); math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("fraction below 1 = %v, want 0.5", ratio)
	}
	if m := sum / float64(n); math.Abs(m-1) > 0.005 {
		t.Errorf("mean factor = %v, want 1", m)
	}
}

func TestGapUniformContains(t *testing.T) {
	g := NewGapUniform(0.1, 0.25)
	for _, f := range []float64{1, 0.95, 1.05, 0.7, 1.3} {
		if g.Contains(f) {
			t.Errorf("Contains(%v) = true, want false", f)
		}
	}
	for _, f := range []float64{0.9, 0.75, 1.1, 1.25} {
		if !g.Contains(f) {
			t.Errorf("Contains(%v) = false, want true", f)
		}
	}
}

func TestGapUniformPanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 0.2}, {0.3, 0.2}, {0.2, 0.2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGapUniform(%v, %v) did not panic", args[0], args[1])
				}
			}()
			NewGapUniform(args[0], args[1])
		}()
	}
}

// --- KolmogorovSmirnov ---

func TestKSErrors(t *testing.T) {
	if _, _, err := KolmogorovSmirnov([]float64{1, 2, 3}, func(float64) float64 { return 0.5 }); err == nil {
		t.Error("short sample accepted")
	}
	if _, _, err := KolmogorovSmirnov(make([]float64, 100), nil); err == nil {
		t.Error("nil CDF accepted")
	}
	bad := func(float64) float64 { return 2 }
	if _, _, err := KolmogorovSmirnov(make([]float64, 100), bad); err == nil {
		t.Error("CDF value outside [0,1] accepted")
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	// Standard normal draws tested against the uniform CDF must fail hard.
	xs := drawN(5_000, 29, (*Stream).NormFloat64)
	uniformCDF := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	stat, p, err := KolmogorovSmirnov(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 || stat < 0.2 {
		t.Errorf("KS failed to reject: stat=%v p=%v", stat, p)
	}
}

func TestKSPerfectFitPValueIsOne(t *testing.T) {
	// A sample of exact quantiles has D ~ 1/(2n), i.e. tiny lambda;
	// the p-value must be ~1, not an artifact of series truncation.
	l := NewLaplace(1)
	n := 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = l.Quantile((float64(i) + 0.5) / float64(n))
	}
	stat, p, err := KolmogorovSmirnov(xs, l.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if stat > 1e-3 {
		t.Errorf("KS stat %v for exact quantiles, want ~1/(2n)", stat)
	}
	if p < 0.999 {
		t.Errorf("KS p-value %v for a perfect fit, want ~1", p)
	}
}

func TestKSAcceptsExactFit(t *testing.T) {
	l := NewLaplace(1)
	xs := drawN(10_000, 30, l.Sample)
	stat, p, err := KolmogorovSmirnov(xs, l.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if stat > 0.05 {
		t.Errorf("KS stat %v too large for an exact fit", stat)
	}
	if p < 1e-3 {
		t.Errorf("KS p-value %v too small for an exact fit", p)
	}
	// Leaving the sample unsorted must not change the result.
	stat2, p2, err := KolmogorovSmirnov(append([]float64{xs[9999]}, xs[:9999]...), l.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if stat2 != stat || p2 != p {
		t.Error("KS result depends on sample order")
	}
}
