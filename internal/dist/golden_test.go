package dist

import (
	"testing"
)

// Golden determinism vectors: the first draws of every sampler from
// NewStreamFromSeed(42), pinned bit-for-bit. Any refactor of the
// randomness hot path that changes these breaks the reproducibility of
// every released experiment — bump them only together with a note in
// DESIGN.md and CHANGES.md explaining why the stream format changed.

var goldenUint64 = []uint64{
	0x57e1faba65107204, 0xf4abd143feb24055, 0x7c816738c12903b2, 0x113e5dec6f8fd8a8,
	0xad4a599062fd1739, 0x11485b98a7ea20b7, 0x32028f50341ebd74, 0xbc16a3d4cc48678e,
}

var goldenFloat64 = []float64{
	0.34329192209867343, 0.95574672613174361, 0.48634953628166855, 0.067357893203335961,
	0.67691573882165224, 0.06751034237814979, 0.19535155971618223, 0.73472045846236389,
}

var goldenIntN1000 = []int{668, 317, 802, 696, 881, 623, 572, 806}

var goldenNorm = []float64{
	1.4061449625634999, -0.40137832795605172, 1.0947531324548505, 0.49312370176981124,
	0.80512106454935417, 0.36358908708236881, -0.17323071119476202, -1.7988607692917902,
}

var goldenSamplers = []struct {
	name   string
	sample func(*Stream) float64
	want   []float64
}{
	{"laplace(1)", NewLaplace(1).Sample, []float64{
		-0.37602692838780571, 2.4246787439817559, -0.027680522573489415, -2.0045880056498118,
		0.4366949386991329, -2.0023272918637214, -0.93980729273910191, 0.63382395469736719,
	}},
	// Sampler v2 (PR 4): the generalized-Cauchy quantile is inverted via
	// the precomputed table + one-step Newton polish, and the survival
	// function switches to its asymptotic series at z = 12 instead of
	// 10⁴. Both paths land within the sf evaluation-noise band of the v1
	// bracketed search (≤ 2 ulps here; the differential sweep in
	// gencauchy_table_test.go pins the band), but not bit-identically, so
	// this vector was regenerated at the v2 bump — see DESIGN.md §7.
	{"gencauchy", GenCauchy{}.Sample, []float64{
		-0.34914704290576992, 1.4595516528540315, -0.03032371130398585, -1.2401550662721283,
		0.39490324149296724, -1.2390168211749619, -0.70812158941989467, 0.52938935820684341,
	}},
	{"lognormal(2,1)", NewLogNormal(2, 1).Sample, []float64{
		30.148795211689905, 4.9462102240321428, 22.081786588171088, 12.099010855354353,
		16.529076870179829, 10.629031595078155, 6.213779269183294, 1.2227950105871399,
	}},
	{"pareto(200,1.3)", NewPareto(200, 1.3).Sample, []float64{
		455.21006276397833, 207.08607848045895, 348.20807407795394, 1593.1974950288898,
		270.01505940573139, 1590.4293153342171, 702.35304601832524, 253.52043434842474,
	}},
	{"gapuniform(0.1,0.25)", NewGapUniform(0.1, 0.25).Sample, []float64{
		1.1514937883148011, 0.82704756955774972, 0.7984626391767522, 1.1293027339574273,
		1.1167074940036421, 0.80383872419784574, 0.86588248052053851, 1.234780519490136,
	}},
}

var goldenSkewedSize = []int{5, 8, 16, 66, 4, 4, 27, 3}

var goldenChildWorkers = []float64{
	0.019078293707639582, 0.4386025565444106, 0.48773265094917695, 0.27509925332422225,
	0.38477720828195661, 0.95442672397288075, 0.71808713695215565, 0.65603303400335111,
}

var goldenChildTrial3 = []float64{
	0.81939562737266614, 0.53065237171030477, 0.84220798055580748, 0.14658907260688114,
	0.15644428020233114, 0.82431488171400591, 0.95855960529714723, 0.22043081621751104,
}

func TestGoldenStream(t *testing.T) {
	s := NewStreamFromSeed(42)
	for i, want := range goldenUint64 {
		if got := s.Uint64(); got != want {
			t.Fatalf("Uint64 draw %d = %#x, want %#x", i, got, want)
		}
	}
	s = NewStreamFromSeed(42)
	for i, want := range goldenFloat64 {
		if got := s.Float64(); got != want {
			t.Fatalf("Float64 draw %d = %v, want %v", i, got, want)
		}
	}
	s = NewStreamFromSeed(42)
	for i, want := range goldenIntN1000 {
		if got := s.IntN(1000); got != want {
			t.Fatalf("IntN(1000) draw %d = %d, want %d", i, got, want)
		}
	}
	s = NewStreamFromSeed(42)
	for i, want := range goldenNorm {
		if got := s.NormFloat64(); got != want {
			t.Fatalf("NormFloat64 draw %d = %v, want %v", i, got, want)
		}
	}
}

func TestGoldenSamplers(t *testing.T) {
	for _, g := range goldenSamplers {
		s := NewStreamFromSeed(42)
		for i, want := range g.want {
			if got := g.sample(s); got != want {
				t.Errorf("%s draw %d = %.17g, want %.17g", g.name, i, got, want)
				break
			}
		}
	}
	s := NewStreamFromSeed(42)
	m := NewSkewedSize(NewLogNormal(2, 1), NewPareto(200, 1.3), 0.01)
	for i, want := range goldenSkewedSize {
		if got := m.Sample(s); got != want {
			t.Fatalf("skewedsize draw %d = %d, want %d", i, got, want)
		}
	}
}

func TestGoldenSplitChildren(t *testing.T) {
	child := NewStreamFromSeed(42).Split("workers")
	for i, want := range goldenChildWorkers {
		if got := child.Float64(); got != want {
			t.Fatalf("Split(workers) draw %d = %v, want %v", i, got, want)
		}
	}
	trial := NewStreamFromSeed(42).SplitIndex("trial", 3)
	for i, want := range goldenChildTrial3 {
		if got := trial.Float64(); got != want {
			t.Fatalf("SplitIndex(trial,3) draw %d = %v, want %v", i, got, want)
		}
	}
}

// TestGoldenEndToEnd pins one number that flows through the whole
// stack: the first establishment size of the default synthetic-LODES
// size mixture under the generator's split discipline. It fails if any
// layer between seed and sampler re-orders its draws.
func TestGoldenEndToEnd(t *testing.T) {
	parent := NewStreamFromSeed(1)
	est := parent.Split("establishments")
	m := NewSkewedSize(NewLogNormal(2.0, 1.0), NewPareto(200, 1.3), 0.01)
	first := m.Sample(est)
	second := m.Sample(est)
	// Re-derive: must reproduce exactly.
	est2 := NewStreamFromSeed(1).Split("establishments")
	if got := m.Sample(est2); got != first {
		t.Fatalf("re-derived first size %d != %d", got, first)
	}
	if got := m.Sample(est2); got != second {
		t.Fatalf("re-derived second size %d != %d", got, second)
	}
}
