package dist

import (
	"fmt"
	"math"
)

// GapUniform is the distortion-factor distribution of input noise
// infusion (Section 5.1): uniform on the band [1−t, 1−s] ∪ [1+s, 1+t].
// The gap (1−s, 1+s) around 1 is what guarantees every distorted value
// moves by at least a relative s — no establishment is ever released
// (almost) exactly.
type GapUniform struct {
	// S and T bound the relative distortion: |f − 1| ∈ [S, T].
	S, T float64
}

// NewGapUniform returns the distribution for the band parameters
// (s, t). It panics unless 0 < s < t.
func NewGapUniform(s, t float64) GapUniform {
	if !(s > 0 && t > s) {
		panic(fmt.Sprintf("dist: GapUniform requires 0 < s < t, got s=%v t=%v", s, t))
	}
	return GapUniform{S: s, T: t}
}

// Sample draws one factor: a uniform magnitude in [S, T), then a side
// (below or above 1) with equal probability.
func (g GapUniform) Sample(s *Stream) float64 {
	mag := g.S + s.Float64()*(g.T-g.S)
	if s.Float64() < 0.5 {
		return 1 - mag
	}
	return 1 + mag
}

// Fill draws len(dst) factors into the caller-owned buffer, consuming
// the stream exactly as len(dst) scalar Sample calls would (see
// Laplace.Fill for the contract). The SDL system draws one factor per
// establishment through this path.
func (g GapUniform) Fill(dst []float64, s *Stream) {
	for i := range dst {
		dst[i] = g.Sample(s)
	}
}

// Contains reports whether f lies in the band the distribution samples
// from, up to floating-point round-off in |f − 1| (1 − 0.1 rounds to a
// value whose distance from 1 is slightly below 0.1).
func (g GapUniform) Contains(f float64) bool {
	d := math.Abs(f - 1)
	const tol = 1e-9
	return d >= g.S-tol && d <= g.T+tol
}

// Mean returns E f = 1: the two sides are symmetric, which is what
// keeps noise infusion unbiased for large aggregates.
func (GapUniform) Mean() float64 { return 1 }
