package dist

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov runs the one-sample Kolmogorov–Smirnov test of the
// sample against the distribution with the given CDF. It returns the
// statistic D (the supremum distance between the empirical and
// theoretical CDFs) and the asymptotic p-value of observing a distance
// at least that large under the null hypothesis that the sample was
// drawn from cdf.
//
// It is the shared goodness-of-fit check of the sampler test-suite and
// the eval layer: a correctly implemented sampler must produce p-values
// that are not astronomically small.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) (stat, p float64, err error) {
	if cdf == nil {
		return 0, 0, fmt.Errorf("dist: KolmogorovSmirnov requires a CDF")
	}
	n := len(sample)
	if n < 8 {
		return 0, 0, fmt.Errorf("dist: KolmogorovSmirnov needs at least 8 observations, got %d", n)
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)

	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if math.IsNaN(f) || f < 0 || f > 1 {
			return 0, 0, fmt.Errorf("dist: CDF returned %v at %v", f, x)
		}
		// Distance above (empirical steps up after x) and below.
		if up := float64(i+1)/float64(n) - f; up > d {
			d = up
		}
		if down := f - float64(i)/float64(n); down > d {
			d = down
		}
	}
	return d, ksPValue(d, n), nil
}

// ksPValue returns the asymptotic Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k>=1} (−1)^{k−1} e^{−2k²λ²} with the Stephens small-n
// correction λ = (√n + 0.12 + 0.11/√n)·D.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	// Below λ = 0.2 the alternating series converges too slowly to
	// truncate, but the dual theta-series shows Q(0.2) = 1 − 5·10⁻¹³:
	// the tail probability is 1 to double precision.
	if lambda < 0.2 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * lambda * lambda * float64(k) * float64(k))
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
