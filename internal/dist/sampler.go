package dist

// Sampler is anything that draws one variate from a stream. Every
// distribution in this package implements it; the batch helpers below
// accept it so callers can batch-sample without knowing the concrete
// distribution.
type Sampler interface {
	Sample(*Stream) float64
}

// Fill draws len(dst) variates from the sampler into the caller-owned
// buffer, consuming the stream exactly as len(dst) scalar Sample calls
// would — dst[i] is the (i+1)-th draw, bit for bit. The common noise
// distributions are dispatched to their concrete Fill methods so the
// inner loop pays no interface call per draw; anything else falls back
// to the scalar loop (which is still stream-order identical).
func Fill(dst []float64, m Sampler, s *Stream) {
	switch d := m.(type) {
	case Laplace:
		d.Fill(dst, s)
	case GenCauchy:
		d.Fill(dst, s)
	case GapUniform:
		d.Fill(dst, s)
	default:
		for i := range dst {
			dst[i] = m.Sample(s)
		}
	}
}

// FillSplit draws len(dst) variates where draw j comes from the child
// stream parent.SplitIndex(label, base+j) — the per-cell stream family
// the release pipeline uses — without allocating a stream per draw.
// dst[j] is bit-identical to m.Sample(parent.SplitIndex(label, base+j)),
// so chunked batch callers produce exactly the scalar pipeline's output.
func FillSplit(dst []float64, m Sampler, parent *Stream, label string, base int) {
	// The typed branches call the concrete Sample — one source of truth
	// per distribution for the draw itself — with static dispatch.
	var child Stream
	switch d := m.(type) {
	case Laplace:
		for j := range dst {
			parent.SplitIndexInto(&child, label, base+j)
			dst[j] = d.Sample(&child)
		}
	case GenCauchy:
		for j := range dst {
			parent.SplitIndexInto(&child, label, base+j)
			dst[j] = d.Sample(&child)
		}
	default:
		for j := range dst {
			parent.SplitIndexInto(&child, label, base+j)
			dst[j] = m.Sample(&child)
		}
	}
}
