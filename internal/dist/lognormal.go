package dist

import (
	"fmt"
	"math"
)

// LogNormal is the log-normal distribution: e^{μ+σZ} for standard
// normal Z. It models the body of the establishment-size mixture and
// the quarter-over-quarter employment growth shocks.
type LogNormal struct {
	// Mu and Sigma are the mean and standard deviation of the
	// underlying normal (of the logarithm).
	Mu, Sigma float64
}

// NewLogNormal returns the log-normal with log-mean mu and log-standard
// deviation sigma. It panics if sigma is negative (sigma = 0 is the
// degenerate point mass at e^mu, allowed so configurations can switch
// randomness off).
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma < 0 {
		panic(fmt.Sprintf("dist: LogNormal sigma must be >= 0, got %v", sigma))
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample draws one variate.
func (l LogNormal) Sample(s *Stream) float64 {
	return math.Exp(l.Mu + l.Sigma*s.NormFloat64())
}

// Mean returns E X = e^{μ+σ²/2}.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Median returns the median e^μ.
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }

// CDF returns P(X <= x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if l.Sigma == 0 {
		if x < math.Exp(l.Mu) {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}
