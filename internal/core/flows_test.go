package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
	"repro/internal/qwi"
	"repro/internal/table"
)

func testFlows(t *testing.T) *qwi.Flows {
	t.Helper()
	base := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(20))
	panel, err := qwi.GeneratePanel(base, qwi.DefaultPanelConfig(), dist.NewStreamFromSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	q := table.MustNewQuery(base.Schema(), lodes.AttrPlace, lodes.AttrIndustry)
	f, err := qwi.ComputeFlows(panel, q)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReleaseFlowsLoss(t *testing.T) {
	f := testFlows(t)
	rel, loss, err := ReleaseFlows(f, Request{
		Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, dist.NewStreamFromSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	if loss.Def != privacy.StrongEREE {
		t.Errorf("definition = %v, want StrongEREE (workplace attrs only)", loss.Def)
	}
	if loss.Eps != 6 {
		t.Errorf("total eps = %v, want 3*2 = 6", loss.Eps)
	}
	if rel.ReleaseCount() != 3 {
		t.Errorf("release count = %d", rel.ReleaseCount())
	}
}

func TestReleaseFlowsEdgeBaseline(t *testing.T) {
	f := testFlows(t)
	_, loss, err := ReleaseFlows(f, Request{
		Mechanism: MechEdgeLaplace, Eps: 1,
	}, dist.NewStreamFromSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if loss.Def != privacy.EdgeDP || loss.Eps != 3 {
		t.Errorf("loss = %v, want edge-DP eps=3", loss)
	}
}

func TestReleaseFlowsRejectsTruncated(t *testing.T) {
	f := testFlows(t)
	if _, _, err := ReleaseFlows(f, Request{
		Mechanism: MechTruncatedLaplace, Eps: 1, Theta: 10,
	}, dist.NewStreamFromSeed(24)); err == nil {
		t.Error("truncated-laplace flow release accepted")
	}
}

func TestReleaseFlowsInvalidParameters(t *testing.T) {
	f := testFlows(t)
	if _, _, err := ReleaseFlows(f, Request{
		Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 0.25,
	}, dist.NewStreamFromSeed(25)); err == nil {
		t.Error("out-of-validity parameters accepted")
	}
}
