package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// TestMarginalCacheHitSkipsRecomputation pins the satellite fix: after a
// marginal has been computed once, answering the same query again — full
// marginal or a single cell — must be a cache hit, not another table
// scan.
func TestMarginalCacheHitSkipsRecomputation(t *testing.T) {
	p := testPublisher(t, 21)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}

	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1)); err != nil {
		t.Fatal(err)
	}
	stats := p.MarginalCacheStats()
	if stats.Misses != 1 || stats.Hits != 0 {
		t.Fatalf("after first release: stats = %+v, want 1 miss / 0 hits", stats)
	}

	// Second full release of the same marginal: hit, no new miss.
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(2)); err != nil {
		t.Fatal(err)
	}
	// Single-cell release of the same marginal: also served from cache.
	m, err := p.Marginal(req.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	var cellValues []string
	for cell := range m.Counts {
		if m.Counts[cell] > 0 {
			cellValues = m.Query.CellValues(cell)
			break
		}
	}
	if _, _, _, err := p.ReleaseSingleCell(req, cellValues, dist.NewStreamFromSeed(3)); err != nil {
		t.Fatal(err)
	}
	stats = p.MarginalCacheStats()
	if stats.Misses != 1 {
		t.Errorf("misses = %d after repeated queries, want 1 (marginal recomputed)", stats.Misses)
	}
	if stats.Hits < 3 {
		t.Errorf("hits = %d, want >= 3", stats.Hits)
	}
}

// TestMarginalCacheCanonicalization: the same attribute set in a
// different order shares the canonical entry's table scan, and the
// remapped marginal agrees cell-by-cell with a direct computation.
func TestMarginalCacheCanonicalization(t *testing.T) {
	p := testPublisher(t, 22)
	a := []string{lodes.AttrPlace, lodes.AttrIndustry}
	b := []string{lodes.AttrIndustry, lodes.AttrPlace}
	ma, err := p.Marginal(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := p.Marginal(b)
	if err != nil {
		t.Fatal(err)
	}
	stats := p.MarginalCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (reordered query rescanned the table)", stats.Misses)
	}
	// Cross-check the remap: cell (i, p) of b must equal cell (p, i) of a.
	if ma.Total() != mb.Total() {
		t.Fatalf("totals differ: %d vs %d", ma.Total(), mb.Total())
	}
	for cell := range mb.Counts {
		values := mb.Query.CellValues(cell) // (industry, place)
		k, err := ma.Query.CellKeyForValues(values[1], values[0])
		if err != nil {
			t.Fatal(err)
		}
		if mb.Counts[cell] != ma.Counts[k] ||
			mb.MaxEntityContribution[cell] != ma.MaxEntityContribution[k] ||
			mb.SecondEntityContribution[cell] != ma.SecondEntityContribution[k] ||
			mb.EntityCount[cell] != ma.EntityCount[k] {
			t.Fatalf("remapped cell %d disagrees with direct computation", cell)
		}
	}
}

// TestCacheDisabledStillCorrect: with the cache off, releases recompute
// but remain correct and deterministic.
func TestCacheDisabledStillCorrect(t *testing.T) {
	p := testPublisher(t, 23)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechLogLaplace, Alpha: 0.1, Eps: 4}
	warm, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	p.SetMarginalCacheEnabled(false)
	cold, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Noisy {
		if warm.Noisy[i] != cold.Noisy[i] {
			t.Fatalf("cell %d: cached %v != uncached %v", i, warm.Noisy[i], cold.Noisy[i])
		}
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Errorf("disabled cache recorded misses: %+v", stats)
	}
}

// TestReleaseBatchMatchesSequential is the batch pipeline's determinism
// contract: ReleaseBatch(reqs, s)[i] is bit-identical to
// ReleaseMarginal(reqs[i], s.SplitIndex("batch", i)).
func TestReleaseBatchMatchesSequential(t *testing.T) {
	reqs := []Request{
		{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
		{Attrs: workload1Attrs(), Mechanism: MechLogLaplace, Alpha: 0.1, Eps: 4},
		{Attrs: []string{lodes.AttrIndustry, lodes.AttrSex}, Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05},
		{Attrs: []string{lodes.AttrIndustry}, Mechanism: MechEdgeLaplace, Eps: 1},
		{Attrs: workload1Attrs(), Mechanism: MechTruncatedLaplace, Eps: 1, Theta: 50},
	}
	pBatch := testPublisher(t, 24)
	pSeq := testPublisher(t, 24)

	batch, err := pBatch.ReleaseBatch(reqs, dist.NewStreamFromSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("batch returned %d releases, want %d", len(batch), len(reqs))
	}
	parent := dist.NewStreamFromSeed(6)
	for i, req := range reqs {
		want, err := pSeq.ReleaseMarginal(req, parent.SplitIndex("batch", i))
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Loss != want.Loss {
			t.Errorf("request %d: loss %v, want %v", i, batch[i].Loss, want.Loss)
		}
		if len(batch[i].Noisy) != len(want.Noisy) {
			t.Fatalf("request %d: %d cells, want %d", i, len(batch[i].Noisy), len(want.Noisy))
		}
		for c := range want.Noisy {
			if batch[i].Noisy[c] != want.Noisy[c] {
				t.Fatalf("request %d cell %d: %v, want %v (batch not bit-identical)",
					i, c, batch[i].Noisy[c], want.Noisy[c])
			}
		}
	}
}

// TestReleaseBatchAccountantAtomic: an over-budget batch must charge
// nothing.
func TestReleaseBatchAccountantAtomic(t *testing.T) {
	p := testPublisher(t, 25)
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 0.1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.WithAccountant(acct)
	reqs := []Request{
		{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
		{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
	}
	if _, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(7)); err == nil {
		t.Fatal("over-budget batch succeeded")
	}
	if got := acct.Spent().Eps; got != 0 {
		t.Fatalf("failed batch spent %g eps, want 0", got)
	}
	// A fitting batch charges the exact sum.
	fit := []Request{{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}}
	if _, err := p.ReleaseBatch(fit, dist.NewStreamFromSeed(8)); err != nil {
		t.Fatal(err)
	}
	if got := acct.Spent().Eps; got != 2 {
		t.Fatalf("spent %g eps, want 2", got)
	}
}

// TestConcurrentReleasesOneAccountant exercises the satellite race fix:
// parallel ReleaseMarginal and ReleaseBatch calls sharing one publisher
// and one accountant (run with -race in CI). Exactly budget/eps releases
// may succeed.
func TestConcurrentReleasesOneAccountant(t *testing.T) {
	p := testPublisher(t, 26)
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 0.1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.WithAccountant(acct)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 1}

	var wg sync.WaitGroup
	succeeded := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if g%2 == 0 {
					if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(g*100+i))); err == nil {
						succeeded[g]++
					}
				} else {
					if _, err := p.ReleaseBatch([]Request{req}, dist.NewStreamFromSeed(int64(g*100+i))); err == nil {
						succeeded[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range succeeded {
		total += n
	}
	if total != 10 {
		t.Errorf("%d releases succeeded against a budget of 10×ε, want exactly 10", total)
	}
	if got := acct.Spent().Eps; got != 10 {
		t.Errorf("spent %g eps, want 10", got)
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Errorf("concurrent releases caused %d table scans, want 1: %+v", stats.Misses, stats)
	}
}

// TestPrefetchMarginalsSingleScan: prefetching several attribute sets
// (including reorderings and duplicates) records one miss per distinct
// canonical set and makes subsequent releases pure hits.
func TestPrefetchMarginalsSingleScan(t *testing.T) {
	p := testPublisher(t, 27)
	sets := [][]string{
		workload1Attrs(),
		{lodes.AttrIndustry, lodes.AttrPlace, lodes.AttrOwnership}, // reordering of workload 1
		{lodes.AttrSex, lodes.AttrEducation},
		{lodes.AttrSex, lodes.AttrEducation}, // duplicate
	}
	if err := p.PrefetchMarginals(sets); err != nil {
		t.Fatal(err)
	}
	stats := p.MarginalCacheStats()
	if stats.Misses != 2 {
		t.Fatalf("prefetch recorded %d misses, want 2 distinct canonical sets", stats.Misses)
	}
	for i, attrs := range sets {
		if _, err := p.Marginal(attrs); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if got := p.MarginalCacheStats().Misses; got != 2 {
		t.Errorf("post-prefetch queries recomputed: misses = %d, want 2", got)
	}
}

// TestReleaseBatchEmpty: an empty batch is a no-op.
func TestReleaseBatchEmpty(t *testing.T) {
	p := testPublisher(t, 28)
	rels, err := p.ReleaseBatch(nil, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rels != nil {
		t.Errorf("empty batch returned %d releases", len(rels))
	}
}

// TestReleaseBatchFirstErrorIndexed: a bad request is reported with its
// batch position.
func TestReleaseBatchFirstErrorIndexed(t *testing.T) {
	p := testPublisher(t, 29)
	reqs := []Request{
		{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
		{Attrs: []string{"no-such-attr"}, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2},
	}
	_, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(1))
	if err == nil {
		t.Fatal("batch with invalid request succeeded")
	}
	want := fmt.Sprintf("batch request %d", 1)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name %q", err, want)
	}
}
