// Package core assembles the paper's contribution into a publisher: it
// answers marginal queries over a LODES dataset under a chosen privacy
// definition and mechanism, computing per-cell smooth sensitivity from
// the data, validating parameter regions, deriving the effective privacy
// loss of the release (including the d·ε rule for weak ER-EE privacy over
// worker attributes), and optionally charging a budget accountant.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/mech"
	"repro/internal/privacy"
	"repro/internal/table"
)

// MechanismKind selects one of the release mechanisms.
type MechanismKind int

const (
	// MechLogLaplace is Algorithm 1.
	MechLogLaplace MechanismKind = iota
	// MechSmoothGamma is Algorithm 2.
	MechSmoothGamma
	// MechSmoothLaplace is Algorithm 3.
	MechSmoothLaplace
	// MechEdgeLaplace is the edge-DP baseline (Laplace(1/ε)).
	MechEdgeLaplace
	// MechTruncatedLaplace is the node-DP baseline (θ-truncation +
	// Laplace(θ/ε)).
	MechTruncatedLaplace
)

// String names the mechanism kind.
func (k MechanismKind) String() string {
	switch k {
	case MechLogLaplace:
		return "log-laplace"
	case MechSmoothGamma:
		return "smooth-gamma"
	case MechSmoothLaplace:
		return "smooth-laplace"
	case MechEdgeLaplace:
		return "edge-laplace"
	case MechTruncatedLaplace:
		return "truncated-laplace"
	}
	return fmt.Sprintf("MechanismKind(%d)", int(k))
}

// ParseMechanismKind resolves a mechanism name as used on command lines.
func ParseMechanismKind(name string) (MechanismKind, error) {
	for _, k := range []MechanismKind{
		MechLogLaplace, MechSmoothGamma, MechSmoothLaplace, MechEdgeLaplace, MechTruncatedLaplace,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown mechanism %q", ErrInvalidRequest, name)
}

// Request describes one release: the marginal to publish and the
// mechanism and parameters to publish it with.
type Request struct {
	// Attrs are the marginal query's attributes (Definition 2.1's V).
	Attrs []string
	// Mechanism selects the release algorithm.
	Mechanism MechanismKind
	// Alpha is the establishment-size protection window (unused by the
	// edge/node DP baselines).
	Alpha float64
	// Eps is the privacy-loss parameter.
	Eps float64
	// Delta is the failure probability (Smooth Laplace only).
	Delta float64
	// Theta is the truncation threshold (Truncated Laplace only).
	Theta int
}

// Release is the result of answering one request.
type Release struct {
	// Epoch is the dataset epoch the release was computed against. A
	// release pinned to epoch N reflects epoch N's rows even if an
	// Advance installed a newer snapshot while it was in flight.
	Epoch int
	// Query is the compiled marginal query.
	Query *table.Query
	// Truth is the true marginal (confidential; retained for evaluation —
	// a production deployment would not return it). It is shared with the
	// publisher's marginal cache — and with every other release of the
	// same attribute set — so it must be treated as read-only.
	Truth *table.Marginal
	// Noisy holds the released counts, indexed by cell key.
	Noisy []float64
	// Loss is the effective privacy loss of the whole release, after
	// marginal composition.
	Loss privacy.Loss
	// MechanismName records the concrete mechanism and parameters.
	MechanismName string
	// Truncation is set for Truncated Laplace releases.
	Truncation *bipartite.TruncationResult
}

// Publisher answers release requests over one versioned dataset. It is
// safe for concurrent use: the truth for each marginal is computed at
// most once per epoch (concurrent first requests singleflight onto one
// scan) and served from a sharded copy-on-write cache whose hit path
// takes no lock at all (see cache.go), and budget accounting serializes
// inside the Accountant.
//
// Serving is snapshot-isolated: the current epoch — the dataset, its
// index and its marginal cache — lives behind one atomic pointer, and
// every release pins the snapshot it started on. Advance applies a
// quarterly delta and installs the successor snapshot without blocking
// in-flight releases: a release started on epoch N never reads epoch
// N+1 rows (see epoch.go).
type Publisher struct {
	accountant *privacy.Accountant
	// snap is the current epoch snapshot; readers Load it exactly once
	// per operation and use only that snapshot throughout.
	snap atomic.Pointer[epochSnapshot]
	// advanceMu serializes snapshot installation (Advance) and cache
	// on/off toggling, both of which need a stable current snapshot.
	advanceMu sync.Mutex
	// historyMu guards history, the per-epoch cache counters backing
	// CacheStatsByEpoch. Old epochs' counters stay live: a release
	// pinned to an earlier snapshot still counts its hits there.
	historyMu sync.Mutex
	history   []*cacheCounters

	// views holds the live maintenance state of cached canonical truths,
	// keyed by plan key: the per-establishment contribution lists and
	// per-cell top-K tracking that let Advance patch a truth in place
	// instead of evicting it (table.MarginalView). Views are built
	// lazily — on the first Advance that affects a cached truth — and
	// consulted, mutated and pruned only under advanceMu.
	views map[string]*maintainedView
	// evictOnAdvance restores the pre-maintenance Advance semantics
	// (affected entries evicted, recomputed on demand) as a differential
	// oracle. Guarded by advanceMu.
	evictOnAdvance bool
}

// maintainedView pairs one plan's maintenance state with the epoch its
// truth reflects; a view whose epoch is not the Advance's base epoch is
// stale (it missed a delta) and is dropped rather than patched.
type maintainedView struct {
	view  *table.MarginalView
	epoch int
}

// NewPublisher creates a publisher serving the dataset as its initial
// epoch snapshot.
func NewPublisher(d *lodes.Dataset) *Publisher {
	if d == nil {
		panic("core: nil dataset")
	}
	p := &Publisher{views: make(map[string]*maintainedView)}
	sn := &epochSnapshot{epoch: d.Epoch, data: d, cache: newMarginalCache(d.Epoch)}
	p.snap.Store(sn)
	p.history = []*cacheCounters{sn.cache.stats}
	return p
}

// SetEvictOnAdvance selects what Advance does with cached truths the
// delta affected: patch them in place (the default — incremental view
// maintenance, counted in CacheStats.Patches) or evict them for
// on-demand recomputation (the pre-maintenance behavior, kept as the
// differential oracle the maintenance path is verified against).
// Enabling eviction drops the accumulated maintenance state.
func (p *Publisher) SetEvictOnAdvance(evict bool) {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	p.evictOnAdvance = evict
	if evict {
		p.views = make(map[string]*maintainedView)
	}
}

// WithAccountant attaches a budget accountant; every subsequent release
// is charged against it and fails if the budget would be exceeded. The
// accountant's spend-by-epoch ledger is fast-forwarded to the
// publisher's current epoch (a fresh accountant opens at epoch 0, but
// the dataset may already be several deltas into its lineage), so
// ledger entries line up with Release.Epoch; from here Advance moves
// them in lockstep. An accountant shared across publishers keeps its
// own counter — attribution then follows whichever advanced it last.
func (p *Publisher) WithAccountant(a *privacy.Accountant) *Publisher {
	p.accountant = a
	if a != nil {
		for a.Epoch() < p.Epoch() {
			a.AdvanceEpoch()
		}
	}
	return p
}

// Dataset returns the current epoch's dataset.
func (p *Publisher) Dataset() *lodes.Dataset { return p.snap.Load().data }

// Epoch returns the epoch of the snapshot currently being served.
func (p *Publisher) Epoch() int { return p.snap.Load().epoch }

// definitionFor returns the privacy definition a request's release
// satisfies: the paper's Theorem 8.1 dichotomy for the ER-EE mechanisms
// (strong for establishment-attribute queries, weak once worker
// attributes appear), and the graph-DP definitions for the baselines.
func definitionFor(kind MechanismKind, attrs []string) privacy.Definition {
	switch kind {
	case MechEdgeLaplace:
		return privacy.EdgeDP
	case MechTruncatedLaplace:
		return privacy.NodeDP
	}
	for _, a := range attrs {
		if lodes.IsWorkerAttr(a) {
			return privacy.WeakEREE
		}
	}
	return privacy.StrongEREE
}

// cellMechanism constructs the cell-level mechanism for a request, or an
// ErrInvalidRequest when the parameters fall outside its validity region
// (or the kind itself is not a cell-level mechanism).
func cellMechanism(req Request) (mech.CellMechanism, error) {
	var m mech.CellMechanism
	var err error
	switch req.Mechanism {
	case MechLogLaplace:
		m, err = mech.NewLogLaplace(req.Alpha, req.Eps)
	case MechSmoothGamma:
		m, err = mech.NewSmoothGamma(req.Alpha, req.Eps)
	case MechSmoothLaplace:
		m, err = mech.NewSmoothLaplace(req.Alpha, req.Eps, req.Delta)
	case MechEdgeLaplace:
		m, err = mech.NewEdgeLaplace(req.Eps)
	case MechTruncatedLaplace:
		return nil, fmt.Errorf("%w: truncated-laplace is a marginal-level mechanism", ErrInvalidRequest)
	default:
		return nil, fmt.Errorf("%w: unknown mechanism kind %v", ErrInvalidRequest, req.Mechanism)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return m, nil
}

// lossFor derives the effective privacy loss of releasing the full
// marginal under the request. A loss outside the definition's validity
// region is an ErrInvalidRequest.
func lossFor(req Request, def privacy.Definition, schema *table.Schema) (privacy.Loss, error) {
	alpha := req.Alpha
	if def == privacy.EdgeDP || def == privacy.NodeDP {
		alpha = 0
	}
	cellLoss := privacy.Loss{Def: def, Alpha: alpha, Eps: req.Eps, Delta: req.Delta}
	if def == privacy.EdgeDP || def == privacy.NodeDP {
		// Classical DP: marginal cells partition the records (edge-DP) or
		// establishments (node-DP), so parallel composition gives ε.
		if err := cellLoss.Validate(); err != nil {
			return cellLoss, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
		}
		return cellLoss, nil
	}
	d := lodes.WorkerAttrDomainSize(schema, req.Attrs)
	loss, err := privacy.MarginalLoss(cellLoss, d)
	if err != nil {
		return privacy.Loss{}, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return loss, nil
}

// epochStream derives the noise stream a release actually draws from:
// the caller's stream, split by the epoch of the snapshot the release
// is pinned to. The derivation happens after the snapshot pointer is
// loaded, so it can never disagree with Release.Epoch even under a
// concurrent Advance. It guarantees that a caller-supplied stream
// identity reused across epochs — deliberately (a replayed request) or
// adversarially (a client naming its own sequence numbers) — yields
// independent noise on each epoch's truth; identical base noise over
// two epochs' counts would let a consumer difference the releases and
// cancel the noise, defeating the privacy guarantee the accountant's
// budget arithmetic assumes.
func epochStream(s *dist.Stream, epoch int) *dist.Stream {
	return s.SplitIndex("epoch", epoch)
}

// ReleaseMarginal answers a marginal query under the request. The truth
// is served from the pinned snapshot's marginal cache (computed on
// first use); the noise is drawn fresh per cell from the given stream
// split by the pinned epoch (see epochStream).
func (p *Publisher) ReleaseMarginal(req Request, s *dist.Stream) (*Release, error) {
	return p.ReleaseMarginalFor(p.accountant, req, s)
}

// ReleaseMarginalFor is ReleaseMarginal charging an explicit accountant
// instead of the publisher's attached one — the multi-tenant serving
// shape, where one publisher (one dataset, one shared truth cache)
// fronts many tenants each with their own budget. A nil accountant
// releases unaccounted.
func (p *Publisher) ReleaseMarginalFor(a *privacy.Accountant, req Request, s *dist.Stream) (*Release, error) {
	return p.ReleaseMarginalTagged(a, req, s, nil)
}

// ReleaseMarginalTagged is ReleaseMarginalFor carrying a spend tag —
// the request's durable identity (sequence number and body digest) —
// for the accountant's write-ahead journal. The tag is stamped with
// the epoch the release actually pinned, so the journaled record names
// exactly the bytes the response will carry; with wire determinism
// that makes the record sufficient to recognize and replay a client
// retry without charging twice. A nil tag charges untagged.
func (p *Publisher) ReleaseMarginalTagged(a *privacy.Accountant, req Request, s *dist.Stream, tag *privacy.SpendTag) (*Release, error) {
	rel, err := p.releaseUnaccounted(p.snap.Load(), req, s)
	if err != nil {
		return nil, err
	}
	if a != nil {
		if err := a.SpendTagged(rel.Loss, stampTag(tag, rel.Epoch)); err != nil {
			return nil, fmt.Errorf("core: release blocked: %w", err)
		}
	}
	return rel, nil
}

// stampTag copies tag with the pinned epoch filled in. The copy keeps
// the caller's tag reusable across retries of different epochs.
func stampTag(tag *privacy.SpendTag, epoch int) *privacy.SpendTag {
	if tag == nil {
		return nil
	}
	t := *tag
	t.Epoch = epoch
	return &t
}

// releaseUnaccounted builds a release without charging the accountant —
// the shared core of ReleaseMarginal (which charges per release) and
// ReleaseBatch (which charges the whole batch atomically).
func (p *Publisher) releaseUnaccounted(sn *epochSnapshot, req Request, s *dist.Stream) (*Release, error) {
	loss, err := lossFor(req, definitionFor(req.Mechanism, req.Attrs), sn.data.Schema())
	if err != nil {
		return nil, err
	}
	return p.releaseWithLoss(sn, req, loss, s)
}

// releaseWithLoss builds a release for a request whose loss the caller
// has already derived (ReleaseBatch derives every loss once, upfront).
// The release reads only the pinned snapshot, never the publisher's
// current one — snapshot isolation is this one parameter.
func (p *Publisher) releaseWithLoss(sn *epochSnapshot, req Request, loss privacy.Loss, s *dist.Stream) (*Release, error) {
	entry, err := sn.marginalFor(req.Attrs)
	if err != nil {
		return nil, err
	}
	q, truth := entry.q, entry.m
	// Fold the pinned epoch into the noise derivation (see epochStream):
	// the same caller stream on successive epochs draws independent
	// noise, so differencing releases across an Advance cannot cancel
	// the noise and recover the underlying counts.
	s = epochStream(s, sn.epoch)

	rel := &Release{Epoch: sn.epoch, Query: q, Truth: truth, Loss: loss}
	switch req.Mechanism {
	case MechTruncatedLaplace:
		m, err := mech.NewTruncatedLaplace(req.Eps, req.Theta)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
		}
		noisy, trunc, err := m.ReleaseMarginal(sn.data.WorkerFull, q, s)
		if err != nil {
			return nil, err
		}
		rel.Noisy = noisy
		rel.Truncation = trunc
		rel.MechanismName = m.Name()
	default:
		m, err := cellMechanism(req)
		if err != nil {
			return nil, err
		}
		noisy, err := mech.ReleaseCells(m, entry.cells, s)
		if err != nil {
			return nil, err
		}
		rel.Noisy = noisy
		rel.MechanismName = m.Name()
	}
	return rel, nil
}

// ReleaseSingleCell answers one cell of a marginal (the paper's
// Workload 2 regime: "single queries"). A single cell never pays the d·ε
// marginal surcharge — that surcharge only arises when the full
// worker-attribute marginal is released under weak privacy.
func (p *Publisher) ReleaseSingleCell(req Request, cellValues []string, s *dist.Stream) (noisy float64, truth int64, loss privacy.Loss, err error) {
	noisy, truth, loss, _, err = p.ReleaseSingleCellFor(p.accountant, req, cellValues, s)
	return noisy, truth, loss, err
}

// ReleaseSingleCellFor is ReleaseSingleCell charging an explicit
// accountant instead of the publisher's attached one (see
// ReleaseMarginalFor). A nil accountant releases unaccounted. It also
// reports the epoch of the snapshot the cell was read from, pinned
// atomically with the read — a serving layer cannot learn it otherwise
// without racing a concurrent Advance.
func (p *Publisher) ReleaseSingleCellFor(a *privacy.Accountant, req Request, cellValues []string, s *dist.Stream) (noisy float64, truth int64, loss privacy.Loss, epoch int, err error) {
	return p.ReleaseSingleCellTagged(a, req, cellValues, s, nil)
}

// ReleaseSingleCellTagged is ReleaseSingleCellFor carrying a spend tag
// for the accountant's write-ahead journal (see ReleaseMarginalTagged);
// the tag is stamped with the pinned epoch before the charge.
func (p *Publisher) ReleaseSingleCellTagged(a *privacy.Accountant, req Request, cellValues []string, s *dist.Stream, tag *privacy.SpendTag) (noisy float64, truth int64, loss privacy.Loss, epoch int, err error) {
	sn := p.snap.Load()
	epoch = sn.epoch
	if req.Mechanism == MechTruncatedLaplace {
		return 0, 0, privacy.Loss{}, epoch, fmt.Errorf("%w: single-cell release not defined for truncated-laplace", ErrInvalidRequest)
	}
	// Cheap parameter validation first, so a malformed request is
	// rejected before it can trigger (and cache) a full-table scan.
	def := definitionFor(req.Mechanism, req.Attrs)
	alpha := req.Alpha
	if def == privacy.EdgeDP {
		alpha = 0
	}
	loss = privacy.Loss{Def: def, Alpha: alpha, Eps: req.Eps, Delta: req.Delta}
	if err := loss.Validate(); err != nil {
		return 0, 0, privacy.Loss{}, epoch, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	m, err := cellMechanism(req)
	if err != nil {
		return 0, 0, privacy.Loss{}, epoch, err
	}
	// One cell never justifies a fresh full-table scan (or even a fresh
	// query compilation): serve the cell's statistics from the pinned
	// snapshot's marginal cache, whose entry carries the compiled query
	// in the request's attribute order.
	entry, err := sn.marginalFor(req.Attrs)
	if err != nil {
		return 0, 0, privacy.Loss{}, epoch, err
	}
	cell, err := entry.q.CellKeyForValues(cellValues...)
	if err != nil {
		return 0, 0, privacy.Loss{}, epoch, fmt.Errorf("%w: %v", ErrUnknownCell, err)
	}
	marg := entry.m
	in := entry.cells[cell]
	// Same epoch folding as the marginal path (see epochStream): a
	// stream reused across an Advance draws fresh noise for the cell.
	v, err := m.ReleaseCell(in, epochStream(s, sn.epoch))
	if err != nil {
		return 0, 0, privacy.Loss{}, epoch, err
	}
	if a != nil {
		if err := a.SpendTagged(loss, stampTag(tag, epoch)); err != nil {
			return 0, 0, privacy.Loss{}, epoch, fmt.Errorf("core: release blocked: %w", err)
		}
	}
	return v, marg.Counts[cell], loss, epoch, nil
}

// CellInputs converts a computed marginal into the per-cell inputs the
// mechanisms consume.
func CellInputs(m *table.Marginal) []mech.CellInput {
	out := make([]mech.CellInput, len(m.Counts))
	for i := range m.Counts {
		out[i] = mech.CellInput{
			Count:           float64(m.Counts[i]),
			MaxContribution: m.MaxEntityContribution[i],
		}
	}
	return out
}
