//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation (and sync.Pool's behavior under it) perturbs
// allocation counts, so the AllocsPerRun pins skip themselves.
const raceEnabled = true
