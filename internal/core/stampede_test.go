package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/table"
)

// TestMarginalCacheStampedeSingleScan is the cache-stampede contract:
// many goroutines hitting one uncached marginal at once must trigger
// exactly one underlying table scan — the first requester leads, every
// other follows the in-flight result — and, given the same noise
// stream, produce bit-identical releases. Run under -race in CI, this
// also proves the sharded copy-on-write read path publishes entries
// safely.
func TestMarginalCacheStampedeSingleScan(t *testing.T) {
	const goroutines = 48 // ≥ 32: well past any shard or scheduler width

	p := testPublisher(t, 41)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05}

	start := make(chan struct{})
	rels := make([]*Release, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			// Same seed everywhere: identical requests must yield identical
			// releases no matter who led the scan.
			rels[g], errs[g] = p.ReleaseMarginal(req, dist.NewStreamFromSeed(7))
		}(g)
	}
	close(start)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	stats := p.MarginalCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("%d concurrent misses ran %d table scans, want exactly 1 (stampede)", goroutines, stats.Misses)
	}
	if stats.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d (every follower skipped the scan)", stats.Hits, goroutines-1)
	}
	for g := 1; g < goroutines; g++ {
		if rels[g].Truth != rels[0].Truth {
			t.Fatalf("goroutine %d received a different truth object: the scan result was not shared", g)
		}
		for i := range rels[g].Noisy {
			if rels[g].Noisy[i] != rels[0].Noisy[i] {
				t.Fatalf("goroutine %d cell %d: %v != %v (releases not identical)", g, i, rels[g].Noisy[i], rels[0].Noisy[i])
			}
		}
	}
}

// TestInvalidateDuringScanDoesNotResurrect pins the invalidation
// contract under concurrency: a scan that is in flight when
// InvalidateMarginalCache runs must not commit its (now pre-mutation)
// truth into the fresh cache. The interleaving is forced by invoking
// the invalidation from inside the compute callback itself.
func TestInvalidateDuringScanDoesNotResurrect(t *testing.T) {
	p := testPublisher(t, 43)
	key := exactKey(workload1Attrs())

	e, fresh, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
		p.InvalidateMarginalCache() // the dataset "mutated" mid-scan
		return computeEntryFor(p.snap.Load(), workload1Attrs())
	})
	if err != nil || e == nil {
		t.Fatalf("getOrCompute: %v, %v", e, err)
	}
	if !fresh {
		t.Fatal("leader's own scan not reported fresh")
	}
	if _, ok := p.snap.Load().cache.lookup(key); ok {
		t.Fatal("a scan spanning InvalidateMarginalCache committed its stale truth into the fresh cache")
	}
	// The key stays serviceable: the next request runs a fresh scan and
	// commits normally.
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.snap.Load().cache.lookup(key); !ok {
		t.Fatal("post-invalidation scan did not commit")
	}
}

// TestPostInvalidationRequestDoesNotFollowStaleFlight: a request that
// begins after InvalidateMarginalCache must not be served by a scan
// that was already in flight when the invalidation ran — it scans for
// itself and commits the fresh truth.
func TestPostInvalidationRequestDoesNotFollowStaleFlight(t *testing.T) {
	p := testPublisher(t, 46)
	key := exactKey(workload1Attrs())

	staleEntry, err := computeEntryFor(p.snap.Load(), workload1Attrs())
	if err != nil {
		t.Fatal(err)
	}
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
			close(leaderIn)
			<-release
			return staleEntry, nil // stands in for pre-mutation truth
		})
	}()
	<-leaderIn
	p.InvalidateMarginalCache()

	// This request begins strictly after the invalidation: it must not
	// receive staleEntry even though the leader's flight is still open.
	e, fresh, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
		return computeEntryFor(p.snap.Load(), workload1Attrs())
	})
	if err != nil {
		t.Fatal(err)
	}
	if e == staleEntry {
		t.Fatal("post-invalidation request was served by the pre-invalidation flight")
	}
	if !fresh {
		t.Fatal("post-invalidation request did not run its own scan")
	}
	close(release)
	<-leaderDone
	if got, ok := p.snap.Load().cache.lookup(key); !ok || got == staleEntry {
		t.Fatalf("committed entry after the dust settles = (%v, %v), want the fresh truth", got, ok)
	}
}

// TestDisableRaceStaysCold pins the disable contract against scans that
// race SetMarginalCacheEnabled: a scan that observed the cache on but
// commits while it is off (the racer read off==false just before the
// disable landed), and a straggler whose commit lands only after a
// re-enable, must both stay out of the cache — "a subsequent enable
// starts cold" even under concurrency.
func TestDisableRaceStaysCold(t *testing.T) {
	p := testPublisher(t, 45)
	key := exactKey(workload1Attrs())

	// Disable lands mid-scan: the flight predates the disable.
	if _, _, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
		p.SetMarginalCacheEnabled(false)
		return computeEntryFor(p.snap.Load(), workload1Attrs())
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.snap.Load().cache.lookup(key); ok {
		t.Fatal("scan spanning a disable committed into the cleared cache")
	}

	// Racer registered after the disable (it read off==false just before):
	// its commit while off must be blocked by the off check.
	if _, _, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
		return computeEntryFor(p.snap.Load(), workload1Attrs())
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.snap.Load().cache.lookup(key); ok {
		t.Fatal("scan committed while the cache was disabled")
	}

	// Straggler whose commit lands after the re-enable: blocked by the
	// generation bump on enable.
	if _, _, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
		p.SetMarginalCacheEnabled(true)
		return computeEntryFor(p.snap.Load(), workload1Attrs())
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.snap.Load().cache.lookup(key); ok {
		t.Fatal("disabled-window straggler warmed the re-enabled cache")
	}

	// The enabled cache works normally from here.
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.snap.Load().cache.lookup(key); !ok {
		t.Fatal("post-enable scan did not commit")
	}

	// Enabling an already-enabled cache is a no-op: the warm entry
	// survives and the generation does not move (a bump here would
	// doom every in-flight scan's commit for no reason).
	gen := p.snap.Load().cache.gen.Load()
	p.SetMarginalCacheEnabled(true)
	if _, ok := p.snap.Load().cache.lookup(key); !ok {
		t.Fatal("redundant enable dropped the warm cache")
	}
	if got := p.snap.Load().cache.gen.Load(); got != gen {
		t.Fatalf("redundant enable moved the generation %d -> %d", gen, got)
	}
}

// TestScanPanicReleasesFollowers pins the singleflight's panic safety: a
// leader whose compute panics must unregister the flight and release
// followers with an error instead of wedging the key forever.
func TestScanPanicReleasesFollowers(t *testing.T) {
	p := testPublisher(t, 44)
	key := exactKey(workload1Attrs())

	follower := make(chan error, 1)
	inScan := make(chan struct{})
	go func() {
		defer func() { recover() }()
		p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
			close(inScan)
			panic("synthetic scan failure")
		})
	}()
	go func() {
		<-inScan
		_, _, err := p.snap.Load().cache.getOrCompute(key, func() (*marginalEntry, error) {
			// By the time a second compute can start, the flight table must
			// be clean again; computing normally proves the key recovered.
			return computeEntryFor(p.snap.Load(), workload1Attrs())
		})
		follower <- err
	}()
	// The follower either joined the doomed flight (errScanAborted) or
	// arrived after cleanup and ran its own successful scan; both are
	// correct — hanging forever is the bug this test exists to catch.
	err := <-follower
	if err != nil && !errors.Is(err, errScanAborted) {
		t.Fatalf("follower error = %v, want nil or errScanAborted", err)
	}
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatalf("key did not recover after a panicking scan: %v", err)
	}
}

// TestMarginalCacheStampedeMixedOrders: a stampede that names the same
// attribute set in two different orders still costs one scan — the
// non-canonical requests follow the canonical flight and remap its
// cells.
func TestMarginalCacheStampedeMixedOrders(t *testing.T) {
	const goroutines = 32

	p := testPublisher(t, 42)
	orders := [][]string{
		{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		{lodes.AttrOwnership, lodes.AttrIndustry, lodes.AttrPlace},
	}

	start := make(chan struct{})
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			_, errs[g] = p.Marginal(orders[g%2])
		}(g)
	}
	close(start)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Fatalf("mixed-order stampede ran %d table scans, want exactly 1", stats.Misses)
	}
	// Both orders must agree cell-for-cell after the remap.
	a, err := p.Marginal(orders[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Marginal(orders[1])
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals differ across orders: %d vs %d", a.Total(), b.Total())
	}
}

// computeEntryFor compiles the attribute list and runs the scan — the
// request-order form of epochSnapshot.computeEntry, for tests that
// drive the cache internals directly.
func computeEntryFor(sn *epochSnapshot, attrs []string) (*marginalEntry, error) {
	q, err := table.NewQuery(sn.data.Schema(), attrs...)
	if err != nil {
		return nil, err
	}
	return sn.computeEntry(q), nil
}
