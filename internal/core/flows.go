package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/privacy"
	"repro/internal/qwi"
)

// ReleaseFlows releases a QWI flow set (B, JC, JD released; E derived)
// under the request's mechanism and parameters, returning the total
// privacy loss: three sequential establishment-only releases, so
// 3·(ε, δ) under strong ER-EE privacy (or edge-DP for the baseline).
func ReleaseFlows(f *qwi.Flows, req Request, s *dist.Stream) (*qwi.FlowRelease, privacy.Loss, error) {
	if req.Mechanism == MechTruncatedLaplace {
		return nil, privacy.Loss{}, fmt.Errorf("core: flow release not defined for truncated-laplace")
	}
	m, err := cellMechanism(req)
	if err != nil {
		return nil, privacy.Loss{}, err
	}
	def := definitionFor(req.Mechanism, f.Query.AttrNames())
	alpha := req.Alpha
	if def == privacy.EdgeDP {
		alpha = 0
	}
	perRelease := privacy.Loss{Def: def, Alpha: alpha, Eps: req.Eps, Delta: req.Delta}
	if err := perRelease.Validate(); err != nil {
		return nil, privacy.Loss{}, err
	}
	rel, err := qwi.ReleaseFlows(f, m, s)
	if err != nil {
		return nil, privacy.Loss{}, err
	}
	total := perRelease
	for i := 1; i < rel.ReleaseCount(); i++ {
		total, err = privacy.SequentialCompose(total, perRelease)
		if err != nil {
			return nil, privacy.Loss{}, err
		}
	}
	return rel, total, nil
}
