package core

import (
	"runtime"
	"testing"

	"repro/internal/dist"
)

// Steady-state allocation pin for the warm release path (DESIGN.md §6).
// With the marginal cache warm, a batch release allocates only
// per-request bookkeeping (loss vector, release struct, noisy vector,
// per-request stream, cache-key strings, chunk noise buffer) — a small
// per-request constant, never anything per cell. The per-cell stream
// and noise allocations the batch samplers eliminated were ~4 allocs
// per cell (≈9,600 per op for this six-request workload); the bound
// below is two orders of magnitude under that, so any per-cell
// regression fails loudly.
const releaseBatchPerRequestAllocs = 25

func TestReleaseBatchWarmCacheAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	p := testPublisher(t, 99)
	attrs := workload1Attrs()
	var reqs []Request
	for _, eps := range []float64{1, 2} {
		reqs = append(reqs,
			Request{Attrs: attrs, Mechanism: MechLogLaplace, Alpha: 0.1, Eps: 2 * eps},
			Request{Attrs: attrs, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: eps},
			Request{Attrs: attrs, Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: eps, Delta: 0.05},
		)
	}
	if _, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(1)); err != nil {
		t.Fatal(err) // warm the marginal cache
	}
	bound := float64(releaseBatchPerRequestAllocs * len(reqs))
	allocs := testing.AllocsPerRun(20, func() {
		rels, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(2))
		if err != nil || len(rels) != len(reqs) {
			t.Fatal("bad batch")
		}
	})
	if allocs > bound {
		t.Fatalf("warm ReleaseBatch allocates %v per op for %d requests, documented bound is %v (per-cell allocation regressed?)",
			allocs, len(reqs), bound)
	}
}
