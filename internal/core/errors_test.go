package core

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// TestReleaseErrorSentinels: every failure mode of the release paths
// carries a typed sentinel, so a serving layer maps errors to status
// codes with errors.Is instead of string-matching. The table runs each
// scenario through ReleaseMarginal; batch and single-cell variants are
// covered below.
func TestReleaseErrorSentinels(t *testing.T) {
	d := smallDataset(t, 71)
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(d).WithAccountant(acct)
	good := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}

	cases := []struct {
		desc string
		req  Request
		want error
	}{
		{"unknown attribute", Request{Attrs: []string{"place", "starsign"}, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}, ErrUnknownMarginal},
		{"duplicate attribute", Request{Attrs: []string{"place", "place"}, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}, ErrUnknownMarginal},
		{"negative eps", Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: -1}, ErrInvalidRequest},
		{"zero alpha", Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0, Eps: 2}, ErrInvalidRequest},
		{"unknown mechanism kind", Request{Attrs: workload1Attrs(), Mechanism: MechanismKind(99), Alpha: 0.1, Eps: 2}, ErrInvalidRequest},
		{"smooth-laplace without delta", Request{Attrs: workload1Attrs(), Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0}, ErrInvalidRequest},
	}
	for _, c := range cases {
		t.Run(c.desc, func(t *testing.T) {
			_, err := p.ReleaseMarginal(c.req, dist.NewStreamFromSeed(1))
			if !errors.Is(err, c.want) {
				t.Fatalf("ReleaseMarginal error = %v, want errors.Is %v", err, c.want)
			}
			// Failed requests must never spend budget.
			if eps, _ := acct.Remaining(); eps != 2 {
				t.Fatalf("failed request spent budget: remaining eps = %g, want 2", eps)
			}
			// The batch path classifies the same failures identically.
			_, err = p.ReleaseBatch([]Request{c.req}, dist.NewStreamFromSeed(1))
			if !errors.Is(err, c.want) {
				t.Fatalf("ReleaseBatch error = %v, want errors.Is %v", err, c.want)
			}
		})
	}

	// Budget exhaustion carries privacy.ErrBudgetExhausted through the
	// core wrap, on all three release paths.
	if _, err := p.ReleaseMarginal(good, dist.NewStreamFromSeed(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReleaseMarginal(good, dist.NewStreamFromSeed(3)); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("over-budget ReleaseMarginal = %v, want ErrBudgetExhausted", err)
	}
	if _, err := p.ReleaseBatch([]Request{good}, dist.NewStreamFromSeed(4)); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("over-budget ReleaseBatch = %v, want ErrBudgetExhausted", err)
	}
	if _, _, _, err := p.ReleaseSingleCell(good, []string{lodes.PlaceName(0), "44-Retail", "Private"}, dist.NewStreamFromSeed(5)); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("over-budget ReleaseSingleCell = %v, want ErrBudgetExhausted", err)
	}
}

// TestSingleCellErrorSentinels: the single-cell path's own failure
// modes — unknown cell values, wrong arity, marginal-level mechanism.
func TestSingleCellErrorSentinels(t *testing.T) {
	p := NewPublisher(smallDataset(t, 72))
	good := Request{Attrs: []string{lodes.AttrPlace}, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}

	if _, _, _, err := p.ReleaseSingleCell(good, []string{"not-a-place"}, dist.NewStreamFromSeed(1)); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("unknown value error = %v, want ErrUnknownCell", err)
	}
	if _, _, _, err := p.ReleaseSingleCell(good, []string{lodes.PlaceName(0), "extra"}, dist.NewStreamFromSeed(1)); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("wrong arity error = %v, want ErrUnknownCell", err)
	}
	trunc := good
	trunc.Mechanism = MechTruncatedLaplace
	if _, _, _, err := p.ReleaseSingleCell(trunc, []string{lodes.PlaceName(0)}, dist.NewStreamFromSeed(1)); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("truncated-laplace single cell error = %v, want ErrInvalidRequest", err)
	}
	bad := good
	bad.Attrs = []string{"starsign"}
	if _, _, _, err := p.ReleaseSingleCell(bad, []string{"aries"}, dist.NewStreamFromSeed(1)); !errors.Is(err, ErrUnknownMarginal) {
		t.Fatalf("unknown attribute error = %v, want ErrUnknownMarginal", err)
	}
}

// TestParseMechanismKindSentinel: command-line / wire mechanism parsing
// classifies unknown names as invalid requests.
func TestParseMechanismKindSentinel(t *testing.T) {
	if _, err := ParseMechanismKind("smooth-cauchy"); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("ParseMechanismKind error = %v, want ErrInvalidRequest", err)
	}
	if k, err := ParseMechanismKind("smooth-gamma"); err != nil || k != MechSmoothGamma {
		t.Fatalf("ParseMechanismKind(smooth-gamma) = %v, %v", k, err)
	}
}

// TestReleaseForPerTenantAccounting: the *For variants charge the given
// accountant, not the publisher's attached one, and a nil accountant
// releases unaccounted — the multi-tenant serving contract.
func TestReleaseForPerTenantAccounting(t *testing.T) {
	d := smallDataset(t, 73)
	attached, _ := privacy.NewAccountant(privacy.WeakEREE, 0.1, 100, 0)
	tenantA, _ := privacy.NewAccountant(privacy.WeakEREE, 0.1, 10, 0)
	tenantB, _ := privacy.NewAccountant(privacy.WeakEREE, 0.1, 3, 0)
	p := NewPublisher(d).WithAccountant(attached)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}

	if _, err := p.ReleaseMarginalFor(tenantA, req, dist.NewStreamFromSeed(1)); err != nil {
		t.Fatal(err)
	}
	if eps, _ := tenantA.Remaining(); eps != 8 {
		t.Fatalf("tenant A remaining = %g, want 8", eps)
	}
	if eps, _ := attached.Remaining(); eps != 100 {
		t.Fatalf("attached accountant charged by ReleaseMarginalFor: remaining = %g", eps)
	}

	// Batch admission control fails fast against the given accountant.
	batch := []Request{req, req}
	if _, err := p.ReleaseBatchFor(tenantB, batch, dist.NewStreamFromSeed(2)); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("over-budget batch for tenant B = %v, want ErrBudgetExhausted", err)
	}
	if eps, _ := tenantB.Remaining(); eps != 3 {
		t.Fatalf("rejected batch spent tenant B budget: remaining = %g, want 3", eps)
	}
	if _, err := p.ReleaseBatchFor(tenantA, batch, dist.NewStreamFromSeed(2)); err != nil {
		t.Fatal(err)
	}
	if eps, _ := tenantA.Remaining(); eps != 4 {
		t.Fatalf("tenant A remaining after batch = %g, want 4", eps)
	}

	// Nil accountant: unaccounted release, attached accountant untouched.
	if _, err := p.ReleaseMarginalFor(nil, req, dist.NewStreamFromSeed(3)); err != nil {
		t.Fatal(err)
	}
	if eps, _ := attached.Remaining(); eps != 100 {
		t.Fatalf("nil-accountant release charged attached accountant: remaining = %g", eps)
	}

	// The plain methods still charge the attached accountant.
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(4)); err != nil {
		t.Fatal(err)
	}
	if eps, _ := attached.Remaining(); eps != 98 {
		t.Fatalf("attached remaining = %g, want 98", eps)
	}
}
