package core

import "errors"

// Sentinel errors classifying why a release request failed, so callers
// serving the publisher over a network can map failures to transport
// status codes (400 / 404 / 429) with errors.Is instead of matching
// message text. Budget failures are not redeclared here: the publisher
// wraps the accountant's privacy.ErrBudgetExhausted and
// privacy.ErrIncompatibleLoss, and errors.Is sees through the wrap.
var (
	// ErrUnknownMarginal: the request names an attribute set the
	// dataset's schema cannot compile — an unknown attribute name or an
	// attribute listed twice.
	ErrUnknownMarginal = errors.New("core: unknown marginal")
	// ErrUnknownCell: the attribute values do not identify a cell of the
	// (valid) marginal — an unknown category value or the wrong number
	// of values.
	ErrUnknownCell = errors.New("core: unknown cell")
	// ErrInvalidRequest: the request's mechanism or parameters are
	// malformed — an unknown mechanism name, parameters outside the
	// mechanism's validity region, or a mechanism/endpoint mismatch
	// (e.g. a single-cell release under truncated-laplace).
	ErrInvalidRequest = errors.New("core: invalid request")
)
