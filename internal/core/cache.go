package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/mech"
	"repro/internal/table"
)

// The publisher's marginal cache. Computing a marginal is a full pass
// over the WorkerFull relation; the paper's evaluation (and any serving
// deployment) asks for the same handful of marginals under thousands of
// (mechanism, α, ε) combinations, so the truth is computed once per
// attribute set and reused. Only the noise differs between releases —
// and noise is what privacy budgets pay for, so reusing the truth is
// free in privacy terms.
//
// Entries are keyed by the canonical attribute set (attributes sorted in
// schema order): two requests that name the same attributes in different
// orders share one table scan. The cell numbering of a marginal depends
// on attribute order, so a non-canonical request is served by remapping
// the canonical entry's cells — a permutation of mixed-radix digits,
// O(cells) instead of O(rows).
//
// Concurrency: the cache is built for read-mostly serving traffic.
// Committed entries live in copy-on-write maps sharded by key hash and
// published through atomic pointers, so the steady-state hit path is a
// single atomic load plus a map lookup — no mutex, no contended cache
// line, throughput scales with GOMAXPROCS. Writes (rare: one per
// distinct marginal over the publisher's lifetime) clone the shard's map
// under its mutex. Misses go through a per-key singleflight: the first
// requester of an uncached marginal becomes the scan's leader, and every
// concurrent requester of the same key waits on the leader's result
// instead of scanning again — N concurrent misses cost exactly one pass
// over the table (the stampede test pins this under the race detector).

// CacheStats reports one epoch's marginal-cache effectiveness. A hit
// means a release skipped the full-table scan (whether served directly,
// by remapping a canonical entry, by waiting on a scan another request
// had already started, or from an entry carried over an epoch bump);
// Misses counts marginals that had to be computed — one table scan each
// on the point-miss path, while PrefetchMarginals computes all of its
// misses in a single shared pass. Patches counts cached truths the
// Advance that created the epoch carried by *patching* (incremental
// view maintenance: the delta's contribution applied in place, no
// rescan — including request-order aliases re-derived from a patched
// canonical truth). Evictions counts cached marginals dropped from the
// epoch's cache: at the Advance that created the epoch (entries the
// maintenance path could not patch — or, under
// SetEvictOnAdvance(true), every affected entry), plus any explicit
// InvalidateMarginalCache or cache-disable sweeps during the epoch.
//
// Counters are per-epoch: each Advance starts a fresh set (see
// Publisher.CacheStatsByEpoch), so hit rates are attributable to the
// epoch that served them rather than smeared across the dataset's
// lifetime.
type CacheStats struct {
	Epoch     int
	Hits      int64
	Misses    int64
	Patches   int64
	Evictions int64
}

// cacheCounters is one epoch's live counter set. The publisher keeps a
// reference per epoch (CacheStatsByEpoch) while the cache itself
// updates it; releases pinned to an old snapshot keep counting against
// their own epoch after newer ones exist.
type cacheCounters struct {
	epoch     int
	hits      atomic.Int64
	misses    atomic.Int64
	patches   atomic.Int64
	evictions atomic.Int64
}

// view snapshots the counters.
func (cc *cacheCounters) view() CacheStats {
	return CacheStats{
		Epoch:     cc.epoch,
		Hits:      cc.hits.Load(),
		Misses:    cc.misses.Load(),
		Patches:   cc.patches.Load(),
		Evictions: cc.evictions.Load(),
	}
}

// marginalEntry is one cached truth: the compiled query, its marginal,
// the per-cell mechanism inputs derived from it, and the query's plan
// handle — the same handle that keys the index's packed scan columns,
// so a cached truth names the scan plan that produced it.
type marginalEntry struct {
	q       *table.Query
	m       *table.Marginal
	cells   []mech.CellInput
	planKey string
}

func newMarginalEntry(q *table.Query, m *table.Marginal) *marginalEntry {
	return &marginalEntry{q: q, m: m, cells: CellInputs(m), planKey: q.PlanKey()}
}

// marginalCacheShards is the number of copy-on-write shards. A small
// power of two: the shard count only has to keep writers (first-time
// computes) from colliding, because readers never take a lock at all.
const marginalCacheShards = 16

// marginalCache is the sharded, singleflighted store behind the
// publisher's truth lookups.
type marginalCache struct {
	off   atomic.Bool
	stats *cacheCounters
	// gen is the invalidation generation: clear() bumps it before
	// dropping the committed maps (and re-enabling the cache bumps it
	// again), and any commit — a finished scan or a derived remap — goes
	// through only if the generation it started under is still current
	// and the cache is on. Without this, a scan or remap in flight
	// across an InvalidateMarginalCache or SetMarginalCacheEnabled call
	// would commit a pre-invalidation truth into the post-invalidation
	// cache and serve it forever.
	gen    atomic.Uint64
	shards [marginalCacheShards]cacheShard
}

// cacheShard holds the committed entries for one hash slice of the key
// space plus the in-flight scans for keys not yet committed.
type cacheShard struct {
	// entries is the committed map, replaced wholesale on every write
	// (copy-on-write). Readers Load it and look up without locking; the
	// map value is never mutated after Store.
	entries atomic.Pointer[map[string]*marginalEntry]
	// mu serializes writers and guards inflight.
	mu       sync.Mutex
	inflight map[string]*inflightScan
}

// inflightScan is one leader's pending compute; followers block on done.
// gen is the invalidation generation the scan was registered under: a
// would-be follower whose current generation differs must not consume
// this result (the scan may have read pre-invalidation data).
type inflightScan struct {
	done chan struct{}
	gen  uint64
	e    *marginalEntry
	err  error
}

func newMarginalCache(epoch int) *marginalCache {
	c := &marginalCache{stats: &cacheCounters{epoch: epoch}}
	for i := range c.shards {
		empty := make(map[string]*marginalEntry)
		c.shards[i].entries.Store(&empty)
		c.shards[i].inflight = make(map[string]*inflightScan)
	}
	return c
}

// shardOf hashes the key (FNV-1a, inlined so the hot path allocates
// nothing) onto a shard.
func (c *marginalCache) shardOf(key string) *cacheShard {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return &c.shards[h%marginalCacheShards]
}

// lookup returns the committed entry for the key, if any: one atomic
// load and a map read, safe under any concurrency.
func (c *marginalCache) lookup(key string) (*marginalEntry, bool) {
	e, ok := (*c.shardOf(key).entries.Load())[key]
	return e, ok
}

// commitLocked publishes an entry into the shard's committed map. The
// caller holds sh.mu. Existing entries are kept (first writer wins), so
// every reader of a key observes one shared *marginalEntry forever.
func (sh *cacheShard) commitLocked(key string, e *marginalEntry) *marginalEntry {
	old := *sh.entries.Load()
	if prev, ok := old[key]; ok {
		return prev
	}
	next := make(map[string]*marginalEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = e
	sh.entries.Store(&next)
	return e
}

// errScanAborted is handed to singleflight followers whose leader died
// without producing a result or an error (a panic inside the scan); the
// key itself stays retryable.
var errScanAborted = errors.New("core: marginal scan aborted")

// registerFlight claims the key's singleflight slot under the shard
// lock and snapshots the invalidation generation the scan starts under.
// The caller must finishFlight exactly once afterwards.
func (c *marginalCache) registerFlight(sh *cacheShard, key string) (*inflightScan, uint64) {
	fl := &inflightScan{done: make(chan struct{}), gen: c.gen.Load()}
	sh.inflight[key] = fl
	return fl, fl.gen
}

// finishFlight completes a registered flight: commits its result (if
// the scan succeeded and no invalidation intervened), counts the scan,
// unregisters the flight, and releases followers. It reports whether
// the flight produced a usable entry. Call it via defer so a panicking
// scan cannot leave followers blocked on a never-closed channel — a
// flight finished with neither a result nor an error marks itself
// aborted instead.
func (c *marginalCache) finishFlight(key string, fl *inflightScan, gen uint64) (fresh bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if fl.err == nil && fl.e == nil {
		fl.err = errScanAborted
	}
	if fl.err == nil {
		if c.commitAllowed(gen) {
			fl.e = sh.commitLocked(key, fl.e)
		}
		// Misses count computed marginals, committed or not.
		c.stats.misses.Add(1)
		fresh = true
	}
	// Unregister only if this flight still owns the slot — a flight
	// superseded after an invalidation must not tear down its
	// replacement.
	if sh.inflight[key] == fl {
		delete(sh.inflight, key)
	}
	sh.mu.Unlock()
	close(fl.done)
	return fresh
}

// commitAllowed reports whether a result obtained under the given
// generation may enter the committed maps: the generation must still be
// current and the cache must be on. The off check closes the disable
// race (a scan that started before SetMarginalCacheEnabled(false) must
// not commit into the cleared cache), and the generation bump on
// re-enable closes its tail (a straggler from the disabled window must
// not commit after the cache comes back on).
func (c *marginalCache) commitAllowed(gen uint64) bool {
	return c.gen.Load() == gen && !c.off.Load()
}

// getOrCompute returns the entry for the key, running compute at most
// once across all concurrent callers (per-key singleflight). fresh
// reports whether this call's compute produced the entry — i.e. whether
// this caller paid for a table scan. A scan that completes successfully
// increments the miss counter (misses count scans, nothing else).
func (c *marginalCache) getOrCompute(key string, compute func() (*marginalEntry, error)) (e *marginalEntry, fresh bool, err error) {
	sh := c.shardOf(key)
	if e, ok := (*sh.entries.Load())[key]; ok {
		return e, false, nil
	}
	sh.mu.Lock()
	if e, ok := (*sh.entries.Load())[key]; ok {
		// Committed between the optimistic read and the lock.
		sh.mu.Unlock()
		return e, false, nil
	}
	if fl, ok := sh.inflight[key]; ok && fl.gen == c.gen.Load() {
		// Another goroutine is already scanning for this key: follow it.
		sh.mu.Unlock()
		<-fl.done
		return fl.e, false, fl.err
	}
	// Either no flight, or a flight that predates an invalidation —
	// whose result reflects data this request (which began after the
	// invalidation) must not see. Register (or replace: registerFlight
	// overwrites the slot, and a superseded flight only unregisters
	// itself if it still owns it) and lead the scan for the current
	// generation, so concurrent post-invalidation requesters follow this
	// one instead of stampeding.
	fl, gen := c.registerFlight(sh, key)
	sh.mu.Unlock()

	defer func() {
		fresh = c.finishFlight(key, fl, gen)
		e, err = fl.e, fl.err
	}()
	fl.e, fl.err = compute()
	return
}

// insertDerived commits a remapped entry (no scan involved) whose
// source canonical truth was obtained under the given generation —
// unless the cache has been invalidated or disabled since, in which
// case the derived truth is served to this caller but not cached. The
// generation check (not a source-pointer check) is what makes this
// sound against clear()'s shard-by-shard sweep: the canonical shard may
// not have been swept yet when this shard already has been.
func (c *marginalCache) insertDerived(key string, e *marginalEntry, gen uint64) *marginalEntry {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !c.commitAllowed(gen) {
		return e
	}
	return sh.commitLocked(key, e)
}

// clear drops every committed entry, counting the dropped entries as
// evictions. The generation bump comes first so any scan still in
// flight sees it at commit time and leaves its pre-invalidation truth
// out of the fresh maps.
func (c *marginalCache) clear() {
	c.gen.Add(1)
	// Evictions count distinct truths: an entry committed under several
	// keys (plan key plus request-order aliases) drops once.
	dropped := make(map[*marginalEntry]bool)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range *sh.entries.Load() {
			dropped[e] = true
		}
		empty := make(map[string]*marginalEntry)
		sh.entries.Store(&empty)
		sh.mu.Unlock()
	}
	c.stats.evictions.Add(int64(len(dropped)))
}

// committed returns every committed entry across the shards — the
// Advance path enumerates them to decide which truths survive the
// epoch bump.
func (c *marginalCache) committed() map[string]*marginalEntry {
	out := make(map[string]*marginalEntry)
	for i := range c.shards {
		for k, v := range *c.shards[i].entries.Load() {
			out[k] = v
		}
	}
	return out
}

// seed pre-populates the cache with entries carried over from the
// previous epoch. Called on a cache not yet published to any reader.
func (c *marginalCache) seed(entries map[string]*marginalEntry) {
	for key, e := range entries {
		sh := c.shardOf(key)
		sh.mu.Lock()
		sh.commitLocked(key, e)
		sh.mu.Unlock()
	}
}

// exactKey identifies an attribute list in request order. Non-canonical
// orders are cached under it; canonical entries use canonicalCacheKey.
func exactKey(attrs []string) string { return strings.Join(attrs, "\x1f") }

// canonicalCacheKey derives the canonical shard key from the query's
// plan handle: a "\x00" prefix (no attribute name contains NUL, so plan
// keys can never collide with request-order name keys) followed by
// Query.PlanKey. The cache and the index's packed-column cache are
// thereby keyed by the same handle — one plan identity from request to
// cached truth to scan layout.
func canonicalCacheKey(q *table.Query) string { return "\x00" + q.PlanKey() }

// canonicalQuery compiles the attribute list into its canonical query —
// attributes sorted in schema order, the cache's canonical form — or an
// ErrUnknownMarginal for lists the schema cannot compile.
func (sn *epochSnapshot) canonicalQuery(attrs []string) (*table.Query, error) {
	schema := sn.data.Schema()
	idx, err := schema.Resolve(attrs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownMarginal, err)
	}
	sort.Ints(idx)
	names := make([]string, len(idx))
	for i, a := range idx {
		names[i] = schema.Attr(a).Name
	}
	q, err := table.NewQuery(schema, names...)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// computeEntry runs the full-table scan for a compiled query.
func (sn *epochSnapshot) computeEntry(q *table.Query) *marginalEntry {
	return newMarginalEntry(q, table.Compute(sn.data.WorkerFull, q))
}

// marginalFor returns the cached truth for the attribute set, computing
// and caching it on first use. The returned entry is shared: its query,
// marginal and cell inputs must be treated as read-only.
//
// Concurrent requests for the same uncached marginal trigger exactly one
// table scan — the per-key singleflight makes every other requester a
// follower of the first (the scan itself still parallelizes internally
// via the table index). Requests for cached marginals never touch a
// lock.
func (sn *epochSnapshot) marginalFor(attrs []string) (*marginalEntry, error) {
	c := sn.cache
	if c.off.Load() {
		if _, err := sn.canonicalQuery(attrs); err != nil {
			return nil, err
		}
		q, err := table.NewQuery(sn.data.Schema(), attrs...)
		if err != nil {
			return nil, err
		}
		return sn.computeEntry(q), nil
	}
	// The steady-state hit path is one request-order key join and one
	// lookup — no canonicalization. Scans dedupe under the plan-key form
	// (canonicalCacheKey), and every request order that has been served
	// once holds an alias to the shared entry under its own name key.
	key := exactKey(attrs)
	if e, ok := c.lookup(key); ok {
		c.stats.hits.Add(1)
		return e, nil
	}
	canonQ, err := sn.canonicalQuery(attrs)
	if err != nil {
		return nil, err
	}
	// Snapshot the generation before obtaining the canonical truth: a
	// derived entry (alias or remap) may only be cached if no
	// invalidation intervened between here and its commit.
	gen := c.gen.Load()
	canonKey := canonicalCacheKey(canonQ)
	canonEntry, fresh, err := c.getOrCompute(canonKey, func() (*marginalEntry, error) {
		return sn.computeEntry(canonQ), nil
	})
	if err != nil {
		return nil, err
	}
	if !fresh {
		// Raced with a concurrent scan, followed one already in flight,
		// or reused a committed truth (for non-canonical orders only the
		// cell numbering changes): a hit either way.
		c.stats.hits.Add(1)
	}
	if key == exactKey(canonQ.AttrNames()) {
		return c.insertDerived(key, canonEntry, gen), nil
	}
	q, err := table.NewQuery(sn.data.Schema(), attrs...)
	if err != nil {
		return nil, err
	}
	return c.insertDerived(key, newMarginalEntry(q, remapMarginal(canonEntry.m, q)), gen), nil
}

// remapMarginal re-expresses a marginal under a query over the same
// attribute set in a different order. Cell keys are mixed-radix encodings
// of the per-attribute codes, so the remap permutes digits: decode each
// destination cell, reorder the codes into source attribute order, and
// copy the source cell's statistics.
func remapMarginal(src *table.Marginal, dst *table.Query) *table.Marginal {
	srcQ := src.Query
	// perm[j] = position within dst's attribute list of srcQ's j-th
	// attribute.
	dstPos := make(map[int]int, len(dst.Attrs()))
	for i, a := range dst.Attrs() {
		dstPos[a] = i
	}
	perm := make([]int, len(srcQ.Attrs()))
	for j, a := range srcQ.Attrs() {
		perm[j] = dstPos[a]
	}
	out := &table.Marginal{
		Query:                    dst,
		Counts:                   make([]int64, dst.NumCells()),
		MaxEntityContribution:    make([]int64, dst.NumCells()),
		SecondEntityContribution: make([]int64, dst.NumCells()),
		EntityCount:              make([]int64, dst.NumCells()),
	}
	codes := make([]int, len(perm))
	srcCodes := make([]int, len(perm))
	for cell := 0; cell < dst.NumCells(); cell++ {
		codes = dst.DecodeCell(cell, codes)
		for j := range perm {
			srcCodes[j] = codes[perm[j]]
		}
		srcCell := srcQ.CellKey(srcCodes...)
		out.Counts[cell] = src.Counts[srcCell]
		out.MaxEntityContribution[cell] = src.MaxEntityContribution[srcCell]
		out.SecondEntityContribution[cell] = src.SecondEntityContribution[srcCell]
		out.EntityCount[cell] = src.EntityCount[srcCell]
	}
	return out
}

// Marginal returns the (cached) true marginal for the attribute set on
// the current epoch, in the given attribute order. The marginal is
// shared with the cache and must be treated as read-only — it is the
// confidential truth, retained for evaluation.
func (p *Publisher) Marginal(attrs []string) (*table.Marginal, error) {
	e, err := p.snap.Load().marginalFor(attrs)
	if err != nil {
		return nil, err
	}
	return e.m, nil
}

// PrefetchMarginals computes every not-yet-cached marginal among the
// attribute sets in a single sharded pass over the table (the
// incremental-view-maintenance move: pay one scan, answer many queries).
//
// The prefetched keys are registered as in-flight scans for the duration
// of the pass, so point lookups arriving mid-prefetch wait for its
// result instead of scanning on their own. Two overlapping prefetches
// can still each run a pass (the second skips every key the first
// already claimed); the committed results are identical truths either
// way.
func (p *Publisher) PrefetchMarginals(attrSets [][]string) error {
	return p.snap.Load().prefetchMarginals(attrSets)
}

// prefetchMarginals is PrefetchMarginals pinned to one snapshot (the
// batch path pins once for losses, prefetch and noise together).
func (sn *epochSnapshot) prefetchMarginals(attrSets [][]string) error {
	c := sn.cache
	canons := make([]*table.Query, 0, len(attrSets))
	for _, attrs := range attrSets {
		// Warm fast path: a set already served in this request order holds
		// an alias entry under its name key, and invalid attribute lists
		// can never be cached — so a hit needs no canonicalization at all.
		if !c.off.Load() {
			if _, ok := c.lookup(exactKey(attrs)); ok {
				continue
			}
		}
		canonQ, err := sn.canonicalQuery(attrs)
		if err != nil {
			return err
		}
		canons = append(canons, canonQ)
	}
	if c.off.Load() {
		return nil
	}
	var missing []*table.Query
	var flights []*inflightScan
	var keys []string
	var gens []uint64
	seen := make(map[string]bool)
	// Every registered flight is finished exactly once — on success, on
	// error, and on a panic inside the scan (followers of an unfinished
	// flight would block forever).
	finished := 0
	defer func() {
		for i := finished; i < len(flights); i++ {
			c.finishFlight(keys[i], flights[i], gens[i])
		}
	}()
	for _, q := range canons {
		key := canonicalCacheKey(q)
		if seen[key] {
			continue
		}
		seen[key] = true
		sh := c.shardOf(key)
		sh.mu.Lock()
		if _, ok := (*sh.entries.Load())[key]; ok {
			sh.mu.Unlock()
			continue
		}
		if fl, ok := sh.inflight[key]; ok && fl.gen == c.gen.Load() {
			// Another scan (point miss or concurrent prefetch) already owns
			// this key; it will commit the identical truth. (A flight from
			// before an invalidation will not commit; registerFlight below
			// replaces it.)
			sh.mu.Unlock()
			continue
		}
		fl, gen := c.registerFlight(sh, key)
		sh.mu.Unlock()
		missing = append(missing, q)
		flights = append(flights, fl)
		keys = append(keys, key)
		gens = append(gens, gen)
	}
	if len(missing) == 0 {
		return nil
	}
	for i, m := range table.ComputeAll(sn.data.WorkerFull, missing) {
		flights[i].e = newMarginalEntry(missing[i], m)
		c.finishFlight(keys[i], flights[i], gens[i])
		finished++
	}
	return nil
}

// SetMarginalCacheEnabled turns the marginal cache on or off (it is on
// by default); the setting survives epoch advances. Disabling also
// drops every cached entry, so a subsequent enable starts cold; the
// generation bump on the off→on transition keeps any straggler from
// the disabled window (a commit racing the disable) from warming it
// behind the caller's back. Enabling an already-enabled cache is a
// no-op, as it always was.
func (p *Publisher) SetMarginalCacheEnabled(enabled bool) {
	// Serialized with Advance so the toggle lands on a stable current
	// snapshot (Advance copies the off flag into the successor's cache).
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	c := p.snap.Load().cache
	if !enabled {
		c.off.Store(true)
		c.clear()
		return
	}
	if !c.off.Load() {
		return
	}
	// Bump before flipping on: a straggler commit must observe either
	// the off flag or a newer generation, never the enabled cache at its
	// own generation.
	c.gen.Add(1)
	c.off.Store(false)
}

// InvalidateMarginalCache drops every cached marginal of the current
// epoch unconditionally (the blunt instrument; Advance does this
// selectively). Statistics persist — dropped entries count as the
// epoch's evictions. Serialized with Advance so an invalidation cannot
// race the carry-over sweep: without the lock, entries enumerated by
// survivingEntries before the clear could be seeded into the successor
// epoch's cache, silently undoing the invalidation.
func (p *Publisher) InvalidateMarginalCache() {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	p.snap.Load().cache.clear()
}

// MarginalCacheStats returns the current epoch's cache counters.
func (p *Publisher) MarginalCacheStats() CacheStats {
	return p.snap.Load().cache.stats.view()
}

// CacheStatsByEpoch returns every epoch's cache counters, oldest
// first. Counters of earlier epochs are still live while releases
// pinned to their snapshots are in flight.
func (p *Publisher) CacheStatsByEpoch() []CacheStats {
	p.historyMu.Lock()
	defer p.historyMu.Unlock()
	out := make([]CacheStats, len(p.history))
	for i, cc := range p.history {
		out[i] = cc.view()
	}
	return out
}
