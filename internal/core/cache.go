package core

import (
	"sort"
	"strings"

	"repro/internal/mech"
	"repro/internal/table"
)

// The publisher's marginal cache. Computing a marginal is a full pass
// over the WorkerFull relation; the paper's evaluation (and any serving
// deployment) asks for the same handful of marginals under thousands of
// (mechanism, α, ε) combinations, so the truth is computed once per
// attribute set and reused. Only the noise differs between releases —
// and noise is what privacy budgets pay for, so reusing the truth is
// free in privacy terms.
//
// Entries are keyed by the canonical attribute set (attributes sorted in
// schema order): two requests that name the same attributes in different
// orders share one table scan. The cell numbering of a marginal depends
// on attribute order, so a non-canonical request is served by remapping
// the canonical entry's cells — a permutation of mixed-radix digits,
// O(cells) instead of O(rows).

// CacheStats reports marginal-cache effectiveness. A hit means a release
// skipped the full-table scan (whether served directly or by remapping a
// canonical entry).
type CacheStats struct {
	Hits   int64
	Misses int64
}

// marginalEntry is one cached truth: the compiled query, its marginal,
// and the per-cell mechanism inputs derived from it.
type marginalEntry struct {
	q     *table.Query
	m     *table.Marginal
	cells []mech.CellInput
}

func newMarginalEntry(q *table.Query, m *table.Marginal) *marginalEntry {
	return &marginalEntry{q: q, m: m, cells: CellInputs(m)}
}

// exactKey identifies an attribute list in request order.
func exactKey(attrs []string) string { return strings.Join(attrs, "\x1f") }

// canonicalAttrs returns the attribute names sorted in schema order —
// the cache's canonical form — or an error for unknown names.
func (p *Publisher) canonicalAttrs(attrs []string) ([]string, error) {
	schema := p.data.Schema()
	idx, err := schema.Resolve(attrs)
	if err != nil {
		return nil, err
	}
	sort.Ints(idx)
	out := make([]string, len(idx))
	for i, a := range idx {
		out[i] = schema.Attr(a).Name
	}
	return out, nil
}

// marginalFor returns the cached truth for the attribute set, computing
// and caching it on first use. The returned entry is shared: its query,
// marginal and cell inputs must be treated as read-only.
//
// The cache mutex is held across the compute, so concurrent requests for
// the same marginal trigger exactly one table scan (the scan itself
// parallelizes internally via the table index).
func (p *Publisher) marginalFor(attrs []string) (*marginalEntry, error) {
	canon, err := p.canonicalAttrs(attrs)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.marginalForLocked(attrs, canon)
}

func (p *Publisher) marginalForLocked(attrs, canon []string) (*marginalEntry, error) {
	if p.cacheOff {
		q, err := table.NewQuery(p.data.Schema(), attrs...)
		if err != nil {
			return nil, err
		}
		return newMarginalEntry(q, table.Compute(p.data.WorkerFull, q)), nil
	}
	key := exactKey(attrs)
	if e, ok := p.marginals[key]; ok {
		p.cacheHits++
		return e, nil
	}
	canonKey := exactKey(canon)
	canonEntry, haveCanon := p.marginals[canonKey]
	if !haveCanon {
		q, err := table.NewQuery(p.data.Schema(), canon...)
		if err != nil {
			return nil, err
		}
		canonEntry = newMarginalEntry(q, table.Compute(p.data.WorkerFull, q))
		p.marginals[canonKey] = canonEntry
		p.cacheMisses++
	} else if key != canonKey {
		// Truth reused, only the cell numbering changes: count as a hit.
		p.cacheHits++
	}
	if key == canonKey {
		return canonEntry, nil
	}
	q, err := table.NewQuery(p.data.Schema(), attrs...)
	if err != nil {
		return nil, err
	}
	e := newMarginalEntry(q, remapMarginal(canonEntry.m, q))
	p.marginals[key] = e
	return e, nil
}

// remapMarginal re-expresses a marginal under a query over the same
// attribute set in a different order. Cell keys are mixed-radix encodings
// of the per-attribute codes, so the remap permutes digits: decode each
// destination cell, reorder the codes into source attribute order, and
// copy the source cell's statistics.
func remapMarginal(src *table.Marginal, dst *table.Query) *table.Marginal {
	srcQ := src.Query
	// perm[j] = position within dst's attribute list of srcQ's j-th
	// attribute.
	dstPos := make(map[int]int, len(dst.Attrs()))
	for i, a := range dst.Attrs() {
		dstPos[a] = i
	}
	perm := make([]int, len(srcQ.Attrs()))
	for j, a := range srcQ.Attrs() {
		perm[j] = dstPos[a]
	}
	out := &table.Marginal{
		Query:                    dst,
		Counts:                   make([]int64, dst.NumCells()),
		MaxEntityContribution:    make([]int64, dst.NumCells()),
		SecondEntityContribution: make([]int64, dst.NumCells()),
		EntityCount:              make([]int64, dst.NumCells()),
	}
	codes := make([]int, len(perm))
	srcCodes := make([]int, len(perm))
	for cell := 0; cell < dst.NumCells(); cell++ {
		codes = dst.DecodeCell(cell, codes)
		for j := range perm {
			srcCodes[j] = codes[perm[j]]
		}
		srcCell := srcQ.CellKey(srcCodes...)
		out.Counts[cell] = src.Counts[srcCell]
		out.MaxEntityContribution[cell] = src.MaxEntityContribution[srcCell]
		out.SecondEntityContribution[cell] = src.SecondEntityContribution[srcCell]
		out.EntityCount[cell] = src.EntityCount[srcCell]
	}
	return out
}

// Marginal returns the (cached) true marginal for the attribute set, in
// the given attribute order. The marginal is shared with the cache and
// must be treated as read-only — it is the confidential truth, retained
// for evaluation.
func (p *Publisher) Marginal(attrs []string) (*table.Marginal, error) {
	e, err := p.marginalFor(attrs)
	if err != nil {
		return nil, err
	}
	return e.m, nil
}

// PrefetchMarginals computes every not-yet-cached marginal among the
// attribute sets in a single sharded pass over the table (the
// incremental-view-maintenance move: pay one scan, answer many queries).
func (p *Publisher) PrefetchMarginals(attrSets [][]string) error {
	canons := make([][]string, 0, len(attrSets))
	for _, attrs := range attrSets {
		canon, err := p.canonicalAttrs(attrs)
		if err != nil {
			return err
		}
		canons = append(canons, canon)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cacheOff {
		return nil
	}
	var missing []*table.Query
	seen := make(map[string]bool)
	for _, canon := range canons {
		key := exactKey(canon)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := p.marginals[key]; ok {
			continue
		}
		q, err := table.NewQuery(p.data.Schema(), canon...)
		if err != nil {
			return err
		}
		missing = append(missing, q)
	}
	if len(missing) == 0 {
		return nil
	}
	for i, m := range table.ComputeAll(p.data.WorkerFull, missing) {
		q := missing[i]
		p.marginals[exactKey(q.AttrNames())] = newMarginalEntry(q, m)
		p.cacheMisses++
	}
	return nil
}

// SetMarginalCacheEnabled turns the marginal cache on or off (it is on
// by default). Disabling also drops every cached entry, so a subsequent
// enable starts cold.
func (p *Publisher) SetMarginalCacheEnabled(enabled bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cacheOff = !enabled
	if !enabled {
		p.marginals = make(map[string]*marginalEntry)
	}
}

// InvalidateMarginalCache drops every cached marginal (for callers that
// mutate the underlying dataset between releases). Statistics persist.
func (p *Publisher) InvalidateMarginalCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.marginals = make(map[string]*marginalEntry)
}

// MarginalCacheStats returns the cache's hit/miss counters.
func (p *Publisher) MarginalCacheStats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheStats{Hits: p.cacheHits, Misses: p.cacheMisses}
}
