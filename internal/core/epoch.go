package core

import (
	"fmt"
	"sort"

	"repro/internal/lodes"
	"repro/internal/table"
)

// Epoch-snapshot serving: the versioned-dataset side of the publisher.
//
// One epochSnapshot bundles everything a release reads — the dataset,
// its entity-sorted index, and the marginal cache holding that epoch's
// truths — so pinning the snapshot pointer at the top of a release
// path is all the isolation a reader needs. Advance builds the
// successor off to the side (incremental index maintenance, selective
// cache carry-over) and installs it with one atomic store; in-flight
// releases keep their pinned snapshot until they finish, and nothing
// ever blocks on an update.

// epochSnapshot is one immutable epoch of the versioned dataset: the
// data, its index (inside the table), and the marginal cache whose
// entries are truths of exactly this epoch.
type epochSnapshot struct {
	epoch int
	data  *lodes.Dataset
	cache *marginalCache
}

// Advance absorbs one quarterly delta: it applies the delta to the
// current snapshot's dataset, maintains the entity-sorted index
// incrementally (table.MergeIndex — O(establishment groups), no
// counting sort, no column gather), selectively invalidates the
// marginal cache, and installs the successor snapshot. Releases in
// flight keep serving from their pinned snapshot; releases that start
// after Advance returns see the new epoch. Advances serialize with
// each other.
//
// Cache maintenance: a cached marginal survives the epoch bump either
// untouched — its affected-cell set (table.AffectedCells over the
// delta's touched establishments) is empty, so the truth is
// bit-identical in the new epoch — or *patched*: the delta's
// contribution is applied to the cached truth in place
// (table.MarginalView.Apply — O(changed rows), no rescan), counted in
// CacheStats.Patches. Request-order aliases of a canonical truth move
// with it, and non-canonical entries are re-derived from their patched
// canonical sibling by the O(cells) digit remap. Only entries the
// maintenance path cannot handle (a poisoned view, a vanished
// canonical sibling) are evicted and recomputed on demand — and
// SetEvictOnAdvance(true) restores that pre-maintenance behavior
// wholesale as the differential oracle. Entries are keyed by version
// structurally: each epoch owns its cache, so a truth can never leak
// across epochs.
//
// An attached accountant's ledger advances too: subsequent charges are
// attributed to the new epoch (sequential composition across epochs —
// an update never refreshes the budget).
func (p *Publisher) Advance(delta *lodes.Delta) error {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	old := p.snap.Load()
	next, err := old.data.ApplyDelta(delta)
	if err != nil {
		return fmt.Errorf("core: advance: %w", err)
	}
	touched, touchedRows, kept := delta.TouchedKept(old.data)
	baseIx := old.data.WorkerFull.Index()
	nextIx, err := table.MergeIndex(baseIx, next.WorkerFull, touched, touchedRows)
	if err != nil {
		return fmt.Errorf("core: advance: %w", err)
	}
	next.WorkerFull.AdoptIndex(nextIx)

	cache := newMarginalCache(next.Epoch)
	switch {
	case old.cache.off.Load():
		cache.off.Store(true)
		p.views = make(map[string]*maintainedView)
	case p.evictOnAdvance:
		carried, evicted := survivingEntries(old.cache, baseIx, nextIx, touched)
		cache.seed(carried)
		cache.stats.evictions.Store(evicted)
	default:
		carried, patched, evicted := p.maintainEntries(old, baseIx, nextIx, touched, kept, next.Epoch)
		cache.seed(carried)
		cache.stats.patches.Store(patched)
		cache.stats.evictions.Store(evicted)
	}

	sn := &epochSnapshot{epoch: next.Epoch, data: next, cache: cache}
	if p.accountant != nil {
		p.accountant.AdvanceEpoch()
	}
	p.historyMu.Lock()
	p.history = append(p.history, cache.stats)
	p.historyMu.Unlock()
	p.snap.Store(sn)
	return nil
}

// maintainEntries carries the old epoch's committed truths into the
// successor epoch, patching the ones the delta affected. Canonical
// entries (cached under their "\x00"-prefixed plan-key form, possibly
// with request-order alias keys sharing the pointer) are patched
// through their maintained view — built lazily, on the first Advance
// that affects them, from the base index; every alias key re-points at
// the one patched entry. Non-canonical entries are re-derived from
// their patched canonical sibling by the O(cells) digit remap. Any
// entry the maintenance path cannot handle is evicted instead; both
// outcomes count distinct truths, not keys. Runs under advanceMu — the
// views map and each view's scratch are single-writer by construction.
// patchChurnCeiling is the TouchedGroupFraction above which an advance
// counts as heavy: beyond it, patching a non-flat view's truth costs
// more than evicting and rescanning it (measured crossover is well
// above the ~25% of establishments BLS-calibrated churn touches, and
// below the ~100% the stress generators touch). Flatness is only known
// once a view exists, so heavy advances never build new views.
const patchChurnCeiling = 0.5

func (p *Publisher) maintainEntries(old *epochSnapshot, baseIx, nextIx *table.Index, touched, kept []int32, nextEpoch int) (carried map[string]*marginalEntry, patched, evicted int64) {
	entries := old.cache.committed()
	// Group keys by distinct entry, noting which entries are canonical
	// (hold a plan-key form).
	type entryKeys struct {
		e     *marginalEntry
		keys  []string
		slot  int // position in groups, the affected-vector slot
		canon bool
	}
	uniq := make(map[*marginalEntry]*entryKeys)
	var groups []*entryKeys
	for key, e := range entries {
		g, ok := uniq[e]
		if !ok {
			g = &entryKeys{e: e, slot: len(groups)}
			uniq[e] = g
			groups = append(groups, g)
		}
		g.keys = append(g.keys, key)
		if len(key) > 0 && key[0] == 0 {
			g.canon = true
		}
	}
	// liveViews is the successor epoch's view set: views for plans whose
	// truths survive. Everything else (stale epochs, evicted plans,
	// truths no longer cached) is garbage and dropped with the swap.
	liveViews := make(map[string]*maintainedView)
	defer func() { p.views = liveViews }()
	if len(groups) == 0 {
		return nil, 0, 0
	}

	qs := make([]*table.Query, len(groups))
	for i, g := range groups {
		qs[i] = g.e.q
	}
	affected := table.Affected(baseIx, nextIx, touched, qs)

	// Cost gate: patching a per-row (non-flat) view is O(touched groups
	// + changed rows) while the rescan it avoids is O(table), so once a
	// delta churns most of the frame — the stress regimes, not BLS
	// reality — patching costs more than it saves. Heavy advances evict
	// those truths instead (recomputed on demand, exactly the
	// pre-maintenance behavior); flat views patch in O(1) per span and
	// stay worth patching at any churn level. The signal counts touched
	// establishments against base groups (newborns inflate it slightly —
	// conservative in the right direction).
	heavy := baseIx.NumGroups() > 0 &&
		float64(len(touched))/float64(baseIx.NumGroups()) > patchChurnCeiling

	// One frame — the validated touched-establishment span descriptor —
	// shared by every view patched this advance, built lazily so an
	// advance that patches nothing (a heavy one, or one with no live
	// views) never pays the span compilation. If the delta's shape is
	// inconsistent with the indexes nothing can be patched; affected
	// truths are evicted below and recomputed on demand.
	var frame *table.PatchFrame
	var frameErr error
	frameBuilt := false
	getFrame := func() (*table.PatchFrame, error) {
		if !frameBuilt {
			frame, frameErr = table.NewPatchFrame(baseIx, nextIx, touched, kept)
			frameBuilt = true
		}
		return frame, frameErr
	}

	carried = make(map[string]*marginalEntry, len(entries))
	// patchedCanon maps a canonical plan key to its successor-epoch
	// truth, for rebuilding non-canonical request orders in the second
	// pass.
	patchedCanon := make(map[string]*marginalEntry)
	var derived []*entryKeys
	for i, g := range groups {
		if !g.canon {
			derived = append(derived, g)
			continue
		}
		pk := g.e.planKey
		mv := p.views[pk]
		if mv != nil && mv.epoch != old.epoch {
			mv = nil // stale: missed a delta (oracle or cache-off interlude)
		}
		if !affected[i] {
			// Truth bit-identical across the bump: carry the entry as-is.
			// An existing view still absorbs the delta — per-establishment
			// contributions can change even when no cell statistic does,
			// and the view must reflect the successor index to patch the
			// *next* delta correctly.
			if mv != nil {
				if f, err := getFrame(); err == nil {
					if _, _, err := mv.view.ApplyFrame(f); err == nil {
						mv.epoch = nextEpoch
						liveViews[pk] = mv
					}
				}
			}
			for _, k := range g.keys {
				carried[k] = g.e
			}
			patchedCanon[pk] = g.e
			continue
		}
		if heavy && (mv == nil || !mv.view.Flat()) {
			evicted++
			continue
		}
		f, ferr := getFrame()
		if ferr != nil {
			evicted++
			continue
		}
		if mv == nil {
			v, err := table.NewMarginalView(baseIx, g.e.q)
			if err != nil {
				evicted++
				continue
			}
			mv = &maintainedView{view: v, epoch: old.epoch}
		}
		newM, _, err := mv.view.ApplyFrame(f)
		if err != nil {
			// Poisoned view: evict the truth, recompute on demand.
			evicted++
			continue
		}
		ne := newMarginalEntry(g.e.q, newM)
		for _, k := range g.keys {
			carried[k] = ne
		}
		patchedCanon[pk] = ne
		mv.epoch = nextEpoch
		liveViews[pk] = mv
		patched++
	}
	for _, g := range derived {
		if !affected[g.slot] {
			for _, k := range g.keys {
				carried[k] = g.e
			}
			continue
		}
		pk, ok := canonicalPlanKey(old.data.Schema(), g.e.q)
		src := patchedCanon[pk]
		if !ok || src == nil {
			// No patched canonical sibling to derive from (it was evicted,
			// or never cached): recompute on demand.
			evicted++
			continue
		}
		ne := newMarginalEntry(g.e.q, remapMarginal(src.m, g.e.q))
		for _, k := range g.keys {
			carried[k] = ne
		}
		patched++
	}
	return carried, patched, evicted
}

// canonicalPlanKey derives the plan key of the canonical (schema-order)
// spelling of q's attribute set.
func canonicalPlanKey(schema *table.Schema, q *table.Query) (string, bool) {
	idx := append([]int(nil), q.Attrs()...)
	sort.Ints(idx)
	names := make([]string, len(idx))
	for i, a := range idx {
		names[i] = schema.Attr(a).Name
	}
	cq, err := table.NewQuery(schema, names...)
	if err != nil {
		return "", false
	}
	return cq.PlanKey(), true
}

// survivingEntries partitions the old epoch's committed truths into
// those the delta provably left bit-identical (carried into the new
// cache) and those it may have changed (evicted, recomputed on
// demand).
func survivingEntries(old *marginalCache, baseIx, nextIx *table.Index, touched []int32) (map[string]*marginalEntry, int64) {
	entries := old.committed()
	if len(entries) == 0 {
		return nil, 0
	}
	// One truth can be committed under several keys (the plan-key form
	// plus request-order aliases), so the affected-cell check runs once
	// per distinct entry and evictions count truths, not keys.
	keys := make([]string, 0, len(entries))
	uniq := make(map[*marginalEntry]int)
	var qs []*table.Query
	slot := make([]int, 0, len(entries))
	for key, e := range entries {
		keys = append(keys, key)
		j, ok := uniq[e]
		if !ok {
			j = len(qs)
			uniq[e] = j
			qs = append(qs, e.q)
		}
		slot = append(slot, j)
	}
	affected := table.Affected(baseIx, nextIx, touched, qs)
	carried := make(map[string]*marginalEntry)
	evictedSet := make(map[*marginalEntry]bool)
	for i, key := range keys {
		if !affected[slot[i]] {
			carried[key] = entries[key]
		} else {
			evictedSet[entries[key]] = true
		}
	}
	return carried, int64(len(evictedSet))
}
