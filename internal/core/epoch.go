package core

import (
	"fmt"

	"repro/internal/lodes"
	"repro/internal/table"
)

// Epoch-snapshot serving: the versioned-dataset side of the publisher.
//
// One epochSnapshot bundles everything a release reads — the dataset,
// its entity-sorted index, and the marginal cache holding that epoch's
// truths — so pinning the snapshot pointer at the top of a release
// path is all the isolation a reader needs. Advance builds the
// successor off to the side (incremental index maintenance, selective
// cache carry-over) and installs it with one atomic store; in-flight
// releases keep their pinned snapshot until they finish, and nothing
// ever blocks on an update.

// epochSnapshot is one immutable epoch of the versioned dataset: the
// data, its index (inside the table), and the marginal cache whose
// entries are truths of exactly this epoch.
type epochSnapshot struct {
	epoch int
	data  *lodes.Dataset
	cache *marginalCache
}

// Advance absorbs one quarterly delta: it applies the delta to the
// current snapshot's dataset, maintains the entity-sorted index
// incrementally (table.MergeIndex — O(establishment groups), no
// counting sort, no column gather), selectively invalidates the
// marginal cache, and installs the successor snapshot. Releases in
// flight keep serving from their pinned snapshot; releases that start
// after Advance returns see the new epoch. Advances serialize with
// each other.
//
// Selective invalidation: a cached marginal survives the epoch bump
// exactly when its affected-cell set (table.AffectedCells over the
// delta's touched establishments) is empty — then the truth is
// bit-identical in the new epoch and recomputing it would waste a
// scan. Every dropped entry counts as an eviction in the new epoch's
// CacheStats. Entries are keyed by version structurally: each epoch
// owns its cache, so a truth can never leak across epochs.
//
// An attached accountant's ledger advances too: subsequent charges are
// attributed to the new epoch (sequential composition across epochs —
// an update never refreshes the budget).
func (p *Publisher) Advance(delta *lodes.Delta) error {
	p.advanceMu.Lock()
	defer p.advanceMu.Unlock()
	old := p.snap.Load()
	next, err := old.data.ApplyDelta(delta)
	if err != nil {
		return fmt.Errorf("core: advance: %w", err)
	}
	touched, touchedRows := delta.Touched(old.data)
	baseIx := old.data.WorkerFull.Index()
	nextIx, err := table.MergeIndex(baseIx, next.WorkerFull, touched, touchedRows)
	if err != nil {
		return fmt.Errorf("core: advance: %w", err)
	}
	next.WorkerFull.AdoptIndex(nextIx)

	cache := newMarginalCache(next.Epoch)
	if old.cache.off.Load() {
		cache.off.Store(true)
	} else {
		carried, evicted := survivingEntries(old.cache, baseIx, nextIx, touched)
		cache.seed(carried)
		cache.stats.evictions.Store(evicted)
	}

	sn := &epochSnapshot{epoch: next.Epoch, data: next, cache: cache}
	if p.accountant != nil {
		p.accountant.AdvanceEpoch()
	}
	p.historyMu.Lock()
	p.history = append(p.history, cache.stats)
	p.historyMu.Unlock()
	p.snap.Store(sn)
	return nil
}

// survivingEntries partitions the old epoch's committed truths into
// those the delta provably left bit-identical (carried into the new
// cache) and those it may have changed (evicted, recomputed on
// demand).
func survivingEntries(old *marginalCache, baseIx, nextIx *table.Index, touched []int32) (map[string]*marginalEntry, int64) {
	entries := old.committed()
	if len(entries) == 0 {
		return nil, 0
	}
	// One truth can be committed under several keys (the plan-key form
	// plus request-order aliases), so the affected-cell check runs once
	// per distinct entry and evictions count truths, not keys.
	keys := make([]string, 0, len(entries))
	uniq := make(map[*marginalEntry]int)
	var qs []*table.Query
	slot := make([]int, 0, len(entries))
	for key, e := range entries {
		keys = append(keys, key)
		j, ok := uniq[e]
		if !ok {
			j = len(qs)
			uniq[e] = j
			qs = append(qs, e.q)
		}
		slot = append(slot, j)
	}
	affected := table.Affected(baseIx, nextIx, touched, qs)
	carried := make(map[string]*marginalEntry)
	evictedSet := make(map[*marginalEntry]bool)
	for i, key := range keys {
		if !affected[slot[i]] {
			carried[key] = entries[key]
		} else {
			evictedSet[entries[key]] = true
		}
	}
	return carried, int64(len(evictedSet))
}
