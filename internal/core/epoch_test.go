package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
	"repro/internal/table"
)

// smallDataset generates a fast dataset for epoch tests (~500
// establishments).
func smallDataset(t *testing.T, seed int64) *lodes.Dataset {
	t.Helper()
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	return lodes.MustGenerate(cfg, dist.NewStreamFromSeed(seed))
}

// lastRowJob reads establishment e's last WorkerFull row back as a
// JobRecord, so a test can build a hire that exactly replaces a
// separation.
func lastRowJob(t *testing.T, d *lodes.Dataset, e int32) lodes.JobRecord {
	t.Helper()
	s := d.Schema()
	var row int
	found := false
	for r := 0; r < d.WorkerFull.NumRows(); r++ {
		if d.WorkerFull.Entity(r) == e {
			row, found = r, true
		}
	}
	if !found {
		t.Fatalf("establishment %d has no rows", e)
	}
	return lodes.JobRecord{
		Sex:       d.WorkerFull.Code(row, s.MustAttrIndex(lodes.AttrSex)),
		Age:       d.WorkerFull.Code(row, s.MustAttrIndex(lodes.AttrAge)),
		Race:      d.WorkerFull.Code(row, s.MustAttrIndex(lodes.AttrRace)),
		Ethnicity: d.WorkerFull.Code(row, s.MustAttrIndex(lodes.AttrEthnicity)),
		Education: d.WorkerFull.Code(row, s.MustAttrIndex(lodes.AttrEducation)),
	}
}

// TestAdvanceServesNewEpoch: after Advance, releases reflect the new
// data (differentially checked against the reference engine on the
// successor dataset) and the epoch is visible everywhere.
func TestAdvanceServesNewEpoch(t *testing.T) {
	d := smallDataset(t, 51)
	p := NewPublisher(d)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	rel0, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rel0.Epoch != 0 || p.Epoch() != 0 {
		t.Fatalf("epoch before advance = (%d, %d), want (0, 0)", rel0.Epoch, p.Epoch())
	}

	dl, err := lodes.GenerateDelta(d, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(dl); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 1 {
		t.Fatalf("Epoch after advance = %d, want 1", p.Epoch())
	}
	rel1, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rel1.Epoch != 1 {
		t.Fatalf("release epoch = %d, want 1", rel1.Epoch)
	}
	// The incrementally maintained index must produce the successor's
	// exact truth: compare against the scalar reference engine on the
	// new dataset.
	q, err := table.NewQuery(p.Dataset().Schema(), workload1Attrs()...)
	if err != nil {
		t.Fatal(err)
	}
	want := table.ComputeReference(p.Dataset().WorkerFull, q)
	for i := range want.Counts {
		if rel1.Truth.Counts[i] != want.Counts[i] ||
			rel1.Truth.MaxEntityContribution[i] != want.MaxEntityContribution[i] ||
			rel1.Truth.SecondEntityContribution[i] != want.SecondEntityContribution[i] ||
			rel1.Truth.EntityCount[i] != want.EntityCount[i] {
			t.Fatalf("cell %d: epoch-1 truth diverges from reference on successor dataset", i)
		}
	}
	if rel0.Truth.Counts[0] == rel1.Truth.Counts[0] && rel0.Truth.Total() == rel1.Truth.Total() {
		t.Log("delta left workload-1 totals identical (unlikely but not wrong)")
	}
}

// TestAdvanceSelectiveInvalidation pins the cache-survival contract: a
// delta that provably does not change a marginal's cells carries the
// cached truth across the epoch bump (same entry object, no rescan),
// while affected marginals are *patched* in place — carried as fresh
// truth objects, served as hits, with no recompute scan.
func TestAdvanceSelectiveInvalidation(t *testing.T) {
	d := smallDataset(t, 52)
	p := NewPublisher(d)
	// Warm two marginals on epoch 0.
	w1 := workload1Attrs()
	if _, err := p.Marginal(w1); err != nil {
		t.Fatal(err)
	}
	sexAttrs := []string{lodes.AttrSex}
	if _, err := p.Marginal(sexAttrs); err != nil {
		t.Fatal(err)
	}
	truthBefore, err := p.Marginal(w1)
	if err != nil {
		t.Fatal(err)
	}

	// A no-op churn delta: establishment 3 separates one worker and
	// hires an identical replacement. Every per-cell contribution of
	// every query is unchanged, so both marginals must survive.
	var est int32 = 3
	if d.Establishments[est].Employment < 1 {
		t.Fatal("establishment 3 unexpectedly empty")
	}
	replacement := lastRowJob(t, d, est)
	noop := &lodes.Delta{
		Separations: []lodes.Separation{{Est: est, Count: 1}},
		Hires:       []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{replacement}}},
	}
	if err := p.Advance(noop); err != nil {
		t.Fatal(err)
	}
	stats := p.MarginalCacheStats()
	if stats.Epoch != 1 || stats.Evictions != 0 || stats.Patches != 0 {
		t.Fatalf("no-op advance stats = %+v, want epoch 1 with 0 evictions / 0 patches", stats)
	}
	truthAfter, err := p.Marginal(w1)
	if err != nil {
		t.Fatal(err)
	}
	if truthAfter != truthBefore {
		t.Fatal("unaffected marginal was not carried across the epoch bump (truth recomputed)")
	}
	if got := p.MarginalCacheStats(); got.Misses != 0 || got.Hits != 1 {
		t.Fatalf("carried marginal served with stats %+v, want 1 hit / 0 misses", got)
	}

	// A real churn delta: the same establishment hires one
	// distinguishable worker. Both the workplace marginal (its place ×
	// industry × ownership cell gains a count) and the sex marginal are
	// affected — and must be patched and carried, not evicted.
	distinct := replacement
	distinct.Sex = 1 - distinct.Sex
	real := &lodes.Delta{Hires: []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{distinct}}}}
	if err := p.Advance(real); err != nil {
		t.Fatal(err)
	}
	stats = p.MarginalCacheStats()
	if stats.Epoch != 2 || stats.Patches != 2 || stats.Evictions != 0 {
		t.Fatalf("churn advance stats = %+v, want epoch 2 with 2 patches / 0 evictions", stats)
	}
	truthNew, err := p.Marginal(w1)
	if err != nil {
		t.Fatal(err)
	}
	if truthNew == truthAfter {
		t.Fatal("affected marginal's truth object survived the epoch bump unpatched")
	}
	if truthNew.Total() != truthAfter.Total()+1 {
		t.Fatalf("epoch-2 total = %d, want %d", truthNew.Total(), truthAfter.Total()+1)
	}
	if got := p.MarginalCacheStats(); got.Misses != 0 || got.Hits != 1 {
		t.Fatalf("patched marginal served with stats %+v, want 1 hit / 0 misses (no rescan)", got)
	}

	// Per-epoch history: three epochs, each with its own counters.
	hist := p.CacheStatsByEpoch()
	if len(hist) != 3 {
		t.Fatalf("history has %d epochs, want 3", len(hist))
	}
	if hist[0].Epoch != 0 || hist[0].Misses != 2 {
		t.Errorf("epoch-0 history %+v, want 2 misses", hist[0])
	}
	if hist[2].Patches != 2 || hist[2].Evictions != 0 {
		t.Errorf("epoch-2 history %+v, want 2 patches / 0 evictions", hist[2])
	}
}

// TestAdvanceEvictOracle pins the differential oracle: with
// SetEvictOnAdvance(true) the pre-maintenance behavior returns —
// affected entries are evicted and recomputed on demand — and flipping
// back re-enters the patch path from a cold view.
func TestAdvanceEvictOracle(t *testing.T) {
	d := smallDataset(t, 52)
	p := NewPublisher(d)
	p.SetEvictOnAdvance(true)
	w1 := workload1Attrs()
	if _, err := p.Marginal(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Marginal([]string{lodes.AttrSex}); err != nil {
		t.Fatal(err)
	}
	var est int32 = 3
	hire := lastRowJob(t, d, est)
	hire.Sex = 1 - hire.Sex
	churn := &lodes.Delta{Hires: []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{hire}}}}
	if err := p.Advance(churn); err != nil {
		t.Fatal(err)
	}
	stats := p.MarginalCacheStats()
	if stats.Epoch != 1 || stats.Evictions != 2 || stats.Patches != 0 {
		t.Fatalf("oracle advance stats = %+v, want epoch 1 with 2 evictions / 0 patches", stats)
	}
	if _, err := p.Marginal(w1); err != nil {
		t.Fatal(err)
	}
	if got := p.MarginalCacheStats(); got.Misses != 1 {
		t.Fatalf("evicted marginal recomputed with stats %+v, want 1 miss", got)
	}

	// Back to the default: the next advance patches again (the view is
	// rebuilt lazily — stale maintenance state from the oracle interlude
	// must not leak in).
	p.SetEvictOnAdvance(false)
	next := p.Dataset()
	hire2 := lastRowJob(t, next, est)
	churn2 := &lodes.Delta{Hires: []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{hire2}}}}
	if err := p.Advance(churn2); err != nil {
		t.Fatal(err)
	}
	stats = p.MarginalCacheStats()
	if stats.Patches != 1 || stats.Evictions != 0 {
		t.Fatalf("post-oracle advance stats = %+v, want 1 patch / 0 evictions", stats)
	}
	truth, err := p.Marginal(w1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := table.NewQuery(p.Dataset().Schema(), w1...)
	if err != nil {
		t.Fatal(err)
	}
	assertMarginalEqual(t, truth, table.ComputeReference(p.Dataset().WorkerFull, q), "post-oracle patched truth")
}

// assertMarginalEqual compares every statistic of two marginals.
func assertMarginalEqual(t *testing.T, got, want *table.Marginal, label string) {
	t.Helper()
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] ||
			got.MaxEntityContribution[i] != want.MaxEntityContribution[i] ||
			got.SecondEntityContribution[i] != want.SecondEntityContribution[i] ||
			got.EntityCount[i] != want.EntityCount[i] {
			t.Fatalf("%s: cell %d diverges (got %d/%d/%d/%d, want %d/%d/%d/%d)", label, i,
				got.Counts[i], got.MaxEntityContribution[i], got.SecondEntityContribution[i], got.EntityCount[i],
				want.Counts[i], want.MaxEntityContribution[i], want.SecondEntityContribution[i], want.EntityCount[i])
		}
	}
}

// TestAdvancePatchedTruthBitIdentical chains generated quarterly deltas
// through two publishers — the default patch path and the evict+rescan
// oracle — and requires every cached truth to stay bit-identical to
// both the oracle and the scalar reference engine at every epoch. This
// is the end-to-end closure of the kernel-level differential suites in
// internal/table.
func TestAdvancePatchedTruthBitIdentical(t *testing.T) {
	d := smallDataset(t, 60)
	patch := NewPublisher(d)
	oracle := NewPublisher(d)
	oracle.SetEvictOnAdvance(true)
	attrSets := [][]string{
		workload1Attrs(),
		{lodes.AttrSex},
		{lodes.AttrIndustry, lodes.AttrEducation},
	}
	warm := func(p *Publisher) {
		for _, attrs := range attrSets {
			if _, err := p.Marginal(attrs); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(patch)
	warm(oracle)
	cur := d
	for epoch := 1; epoch <= 4; epoch++ {
		// Calibrated churn keeps the advance below the patch-versus-evict
		// cost gate, so every epoch exercises the patch path proper (the
		// heavy-churn side of the gate is TestAdvanceHeavyChurnEvicts; the
		// full-churn kernel differentials live in internal/table).
		dl, err := lodes.GenerateDelta(cur, lodes.CalibratedDeltaConfig(), dist.NewStreamFromSeed(int64(200+epoch)))
		if err != nil {
			t.Fatal(err)
		}
		if err := patch.Advance(dl); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Advance(dl); err != nil {
			t.Fatal(err)
		}
		if stats := patch.MarginalCacheStats(); stats.Patches == 0 || stats.Evictions != 0 {
			t.Fatalf("epoch %d: patch publisher stats %+v, want patches > 0 and no evictions", epoch, stats)
		}
		warm(oracle) // the oracle recomputes its evicted truths on demand
		for _, attrs := range attrSets {
			pm, err := patch.Marginal(attrs)
			if err != nil {
				t.Fatal(err)
			}
			om, err := oracle.Marginal(attrs)
			if err != nil {
				t.Fatal(err)
			}
			assertMarginalEqual(t, pm, om, "patched-vs-oracle")
			q, err := table.NewQuery(patch.Dataset().Schema(), attrs...)
			if err != nil {
				t.Fatal(err)
			}
			assertMarginalEqual(t, pm, table.ComputeReference(patch.Dataset().WorkerFull, q), "patched-vs-reference")
		}
		// The patch publisher never rescanned: all serving traffic after
		// the warmup are hits.
		if stats := patch.MarginalCacheStats(); stats.Misses != 0 {
			t.Fatalf("epoch %d: patch publisher rescanned (%+v)", epoch, stats)
		}
		cur = patch.Dataset()
	}
}

// TestAdvanceHeavyChurnEvicts pins the patch-versus-evict cost gate:
// a delta that churns most of the frame (the full-churn stress regime
// touches nearly every establishment) makes per-row patching more
// expensive than the rescans it avoids, so the advance must fall back
// to eviction for non-flat truths — and the truths recomputed on
// demand must still be exact.
func TestAdvanceHeavyChurnEvicts(t *testing.T) {
	d := smallDataset(t, 62)
	p := NewPublisher(d)
	attrs := []string{lodes.AttrIndustry, lodes.AttrEducation}
	if _, err := p.Marginal(attrs); err != nil {
		t.Fatal(err)
	}
	// A violent shock (σ=1.5) moves nearly every establishment's
	// employment, so the delta touches well over half the frame. (At
	// this tiny scale the default σ=0.1 often rounds to no change.)
	cfg := lodes.DefaultDeltaConfig()
	cfg.GrowthSigma = 1.5
	dl, err := lodes.GenerateDelta(d, cfg, dist.NewStreamFromSeed(300))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(dl); err != nil {
		t.Fatal(err)
	}
	if stats := p.MarginalCacheStats(); stats.Patches != 0 || stats.Evictions != 1 {
		t.Fatalf("heavy advance stats %+v, want the truth evicted, not patched", stats)
	}
	truth, err := p.Marginal(attrs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := table.NewQuery(p.Dataset().Schema(), attrs...)
	if err != nil {
		t.Fatal(err)
	}
	assertMarginalEqual(t, truth, table.ComputeReference(p.Dataset().WorkerFull, q), "post-eviction recompute")
}

// TestAdvanceAliasSurvival pins alias-group movement across advances: a
// marginal warmed under two request-order spellings must, after a
// churn advance, keep the canonical spelling keyed to the single
// patched canonical entry (one object under both its cache keys), and
// the non-canonical spelling must be re-derived from it — all served
// as hits, all bit-identical to a successor-epoch recompute.
func TestAdvanceAliasSurvival(t *testing.T) {
	d := smallDataset(t, 61)
	p := NewPublisher(d)
	canonical := []string{lodes.AttrPlace, lodes.AttrIndustry}
	reversed := []string{lodes.AttrIndustry, lodes.AttrPlace}
	if _, err := p.Marginal(canonical); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Marginal(reversed); err != nil {
		t.Fatal(err)
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Fatalf("warmup stats %+v, want exactly 1 scan for both spellings", stats)
	}

	var est int32 = 5
	hire := lastRowJob(t, d, est)
	churn := &lodes.Delta{Hires: []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{hire}}}}
	if err := p.Advance(churn); err != nil {
		t.Fatal(err)
	}
	// Two distinct truths moved: the canonical entry (patched through
	// its view) and the request-order remap (re-derived from it).
	stats := p.MarginalCacheStats()
	if stats.Patches != 2 || stats.Evictions != 0 {
		t.Fatalf("advance stats %+v, want 2 patches / 0 evictions", stats)
	}

	// Both spellings of the canonical order share one entry object.
	sn := p.snap.Load()
	canonQ, err := sn.canonicalQuery(canonical)
	if err != nil {
		t.Fatal(err)
	}
	byPlan, ok1 := sn.cache.lookup(canonicalCacheKey(canonQ))
	byName, ok2 := sn.cache.lookup(exactKey(canonical))
	if !ok1 || !ok2 {
		t.Fatal("canonical entry lost a cache key across the advance")
	}
	if byPlan != byName {
		t.Fatal("canonical spelling no longer aliases the patched canonical entry")
	}

	// Both spellings serve as hits, bit-identical to a recompute on the
	// successor dataset.
	for _, attrs := range [][]string{canonical, reversed} {
		m, err := p.Marginal(attrs)
		if err != nil {
			t.Fatal(err)
		}
		q, err := table.NewQuery(p.Dataset().Schema(), attrs...)
		if err != nil {
			t.Fatal(err)
		}
		assertMarginalEqual(t, m, table.ComputeReference(p.Dataset().WorkerFull, q), "alias "+attrs[0])
	}
	if got := p.MarginalCacheStats(); got.Misses != 0 || got.Hits != 2 {
		t.Fatalf("post-advance serving stats %+v, want 2 hits / 0 misses", got)
	}
}

// TestAdvanceCarriedTruthBitIdentical: a carried cache entry must equal
// what a from-scratch recompute on the successor dataset produces.
func TestAdvanceCarriedTruthBitIdentical(t *testing.T) {
	d := smallDataset(t, 53)
	p := NewPublisher(d)
	attrs := []string{lodes.AttrIndustry, lodes.AttrOwnership}
	if _, err := p.Marginal(attrs); err != nil {
		t.Fatal(err)
	}
	var est int32 = 7
	noop := &lodes.Delta{
		Separations: []lodes.Separation{{Est: est, Count: 1}},
		Hires:       []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{lastRowJob(t, d, est)}}},
	}
	if err := p.Advance(noop); err != nil {
		t.Fatal(err)
	}
	carried, err := p.Marginal(attrs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := table.NewQuery(p.Dataset().Schema(), attrs...)
	if err != nil {
		t.Fatal(err)
	}
	want := table.ComputeReference(p.Dataset().WorkerFull, q)
	for i := range want.Counts {
		if carried.Counts[i] != want.Counts[i] ||
			carried.MaxEntityContribution[i] != want.MaxEntityContribution[i] ||
			carried.SecondEntityContribution[i] != want.SecondEntityContribution[i] ||
			carried.EntityCount[i] != want.EntityCount[i] {
			t.Fatalf("cell %d: carried truth diverges from recompute on successor", i)
		}
	}
}

// TestAdvanceAccountantLedger: the attached accountant's ledger follows
// the publisher's epochs, and the budget composes across them.
func TestAdvanceAccountantLedger(t *testing.T) {
	d := smallDataset(t, 54)
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 0.1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(d).WithAccountant(acct)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1)); err != nil {
		t.Fatal(err)
	}
	dl, err := lodes.GenerateDelta(d, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(dl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(3+i))); err != nil {
			t.Fatal(err)
		}
	}
	ledger := acct.SpendByEpoch()
	if len(ledger) != 2 {
		t.Fatalf("ledger has %d epochs, want 2", len(ledger))
	}
	if ledger[0].Releases != 1 || ledger[0].Eps != 2 {
		t.Errorf("epoch-0 ledger %+v, want 1 release / eps 2", ledger[0])
	}
	if ledger[1].Releases != 2 || ledger[1].Eps != 4 {
		t.Errorf("epoch-1 ledger %+v, want 2 releases / eps 4", ledger[1])
	}
	if spent := acct.Spent(); spent.Eps != 6 {
		t.Errorf("total spent %v, want eps 6 (budget composes across epochs)", spent)
	}
}

// TestWithAccountantAlignsLedgerEpoch: a publisher created from a
// mid-lineage snapshot fast-forwards an attached accountant's ledger,
// so spend attribution lines up with Release.Epoch.
func TestWithAccountantAlignsLedgerEpoch(t *testing.T) {
	d := smallDataset(t, 58)
	dl, err := lodes.GenerateDelta(d, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	next, err := d.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 0.1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(next).WithAccountant(acct)
	rel, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Epoch != 1 {
		t.Fatalf("release epoch = %d, want 1", rel.Epoch)
	}
	ledger := acct.SpendByEpoch()
	last := ledger[len(ledger)-1]
	if last.Epoch != 1 || last.Releases != 1 {
		t.Fatalf("charge attributed to %+v, want epoch 1 with 1 release", last)
	}
}

// TestAdvanceCarriesCacheOffState: a disabled cache stays disabled in
// the successor epoch.
func TestAdvanceCarriesCacheOffState(t *testing.T) {
	d := smallDataset(t, 55)
	p := NewPublisher(d)
	p.SetMarginalCacheEnabled(false)
	dl, err := lodes.GenerateDelta(d, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(dl); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatal(err)
	}
	if stats := p.MarginalCacheStats(); stats.Hits != 0 || stats.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic after advance: %+v", stats)
	}
	p.SetMarginalCacheEnabled(true)
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatal(err)
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Fatalf("re-enabled cache stats %+v, want 1 miss", stats)
	}
}

// TestAdvanceSnapshotPinning is the serve-during-update race test: a
// fleet of goroutines releases marginals and batches nonstop while the
// main goroutine advances the publisher through several quarterly
// deltas. Every release must be internally consistent with the epoch it
// reports — a release started on epoch N must never read epoch N+1
// rows — which is checked against per-epoch totals precomputed from an
// independently applied delta chain. Run with -race in CI.
func TestAdvanceSnapshotPinning(t *testing.T) {
	const quarters = 4
	d := smallDataset(t, 56)

	// Precompute the expected per-epoch totals and W1 counts by applying
	// the same deltas outside the publisher (ApplyDelta is
	// deterministic).
	deltas := make([]*lodes.Delta, quarters)
	totals := make([]int64, quarters+1)
	counts := make([][]int64, quarters+1)
	q, err := table.NewQuery(d.Schema(), workload1Attrs()...)
	if err != nil {
		t.Fatal(err)
	}
	cur := d
	for e := 0; e <= quarters; e++ {
		m := table.ComputeReference(cur.WorkerFull, q)
		totals[e] = m.Total()
		counts[e] = m.Counts
		if e == quarters {
			break
		}
		dl, err := lodes.GenerateDelta(cur, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(int64(100+e)))
		if err != nil {
			t.Fatal(err)
		}
		deltas[e] = dl
		if cur, err = cur.ApplyDelta(dl); err != nil {
			t.Fatal(err)
		}
	}

	p := NewPublisher(d)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	batch := []Request{req, {Attrs: []string{lodes.AttrSex}, Mechanism: MechLogLaplace, Alpha: 0.1, Eps: 2}}

	stop := make(chan struct{})
	var checked atomic.Int64
	var wg sync.WaitGroup
	verify := func(rel *Release) {
		if rel.Epoch < 0 || rel.Epoch > quarters {
			t.Errorf("release reports epoch %d, outside [0,%d]", rel.Epoch, quarters)
			return
		}
		// Every marginal's total is the epoch's row count: a release
		// pinned to epoch N must report exactly epoch N's total.
		if rel.Truth.Total() != totals[rel.Epoch] {
			t.Errorf("epoch-%d release has total %d, want %d (read across the snapshot boundary?)",
				rel.Epoch, rel.Truth.Total(), totals[rel.Epoch])
			return
		}
		// W1 releases additionally match cell-for-cell.
		if rel.Query.NumCells() == len(counts[rel.Epoch]) {
			for i, c := range rel.Truth.Counts {
				if c != counts[rel.Epoch][i] {
					t.Errorf("epoch-%d release cell %d = %d, want %d", rel.Epoch, i, c, counts[rel.Epoch][i])
					return
				}
			}
		}
		checked.Add(1)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := int64(g) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed++
				if g%2 == 0 {
					rel, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(seed))
					if err != nil {
						t.Error(err)
						return
					}
					verify(rel)
				} else {
					rels, err := p.ReleaseBatch(batch, dist.NewStreamFromSeed(seed))
					if err != nil {
						t.Error(err)
						return
					}
					if rels[0].Epoch != rels[1].Epoch {
						t.Errorf("batch spans epochs %d and %d: batch not pinned to one snapshot",
							rels[0].Epoch, rels[1].Epoch)
						return
					}
					verify(rels[0])
				}
			}
		}(g)
	}
	// Interleave: require serving progress before and after every
	// advance, so releases demonstrably overlap the update path.
	waitForProgress := func(target int64) {
		deadline := time.Now().Add(10 * time.Second)
		for checked.Load() < target && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	var floor int64
	for _, dl := range deltas {
		waitForProgress(floor + 3)
		if err := p.Advance(dl); err != nil {
			t.Error(err)
			break
		}
		floor = checked.Load()
	}
	waitForProgress(floor + 3)
	close(stop)
	wg.Wait()
	if p.Epoch() != quarters {
		t.Errorf("final epoch %d, want %d", p.Epoch(), quarters)
	}
	if checked.Load() == 0 {
		t.Error("no releases verified — the serving fleet never ran")
	}
	// The final epoch's truth matches the independently computed chain.
	final, err := p.Marginal(workload1Attrs())
	if err != nil {
		t.Fatal(err)
	}
	if final.Total() != totals[quarters] {
		t.Errorf("final truth total %d, want %d", final.Total(), totals[quarters])
	}
}

// TestReleaseNoiseEpochSeparation: a caller stream identity reused
// across an Advance must draw fresh noise. The delta here is a no-op
// churn (one separation replaced by an identical hire), so every cell's
// truth is identical across the epoch bump — under a derivation that
// ignored the epoch, both releases would be bit-identical, and for
// cells the delta *did* change, differencing the two releases would
// cancel the noise exactly and expose the true difference.
func TestReleaseNoiseEpochSeparation(t *testing.T) {
	d := smallDataset(t, 59)
	p := NewPublisher(d)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	cellValues := []string{lodes.PlaceName(0), "44-Retail", "Private"}

	rel0, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cell0, _, _, err := p.ReleaseSingleCell(req, cellValues, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}

	var est int32 = 3
	if d.Establishments[est].Employment < 1 {
		t.Fatal("establishment 3 unexpectedly empty")
	}
	noop := &lodes.Delta{
		Separations: []lodes.Separation{{Est: est, Count: 1}},
		Hires:       []lodes.Hire{{Est: est, Jobs: []lodes.JobRecord{lastRowJob(t, d, est)}}},
	}
	if err := p.Advance(noop); err != nil {
		t.Fatal(err)
	}

	rel1, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cell1, _, _, err := p.ReleaseSingleCell(req, cellValues, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the no-op delta really did leave the truth unchanged.
	for i := range rel0.Truth.Counts {
		if rel0.Truth.Counts[i] != rel1.Truth.Counts[i] {
			t.Fatalf("cell %d truth changed across the no-op delta: %d -> %d",
				i, rel0.Truth.Counts[i], rel1.Truth.Counts[i])
		}
	}
	// The released values must not replay: same stream, same truth,
	// different epoch => fresh noise.
	same := true
	for i := range rel0.Noisy {
		if rel0.Noisy[i] != rel1.Noisy[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("marginal release replayed identical noise across an epoch advance")
	}
	if cell0 == cell1 {
		t.Fatal("single-cell release replayed identical noise across an epoch advance")
	}
}

// TestAdvanceRejectsInvalidDelta: a bad delta must leave the current
// snapshot fully intact.
func TestAdvanceRejectsInvalidDelta(t *testing.T) {
	d := smallDataset(t, 57)
	p := NewPublisher(d)
	if _, err := p.Marginal(workload1Attrs()); err != nil {
		t.Fatal(err)
	}
	bad := &lodes.Delta{Deaths: []int32{int32(d.NumEstablishments())}}
	if err := p.Advance(bad); err == nil {
		t.Fatal("Advance accepted an invalid delta")
	}
	if p.Epoch() != 0 {
		t.Errorf("failed advance moved the epoch to %d", p.Epoch())
	}
	if p.Dataset() != d {
		t.Error("failed advance replaced the dataset")
	}
	if stats := p.MarginalCacheStats(); stats.Misses != 1 {
		t.Errorf("failed advance disturbed the cache: %+v", stats)
	}
}
