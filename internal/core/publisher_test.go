package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
	"repro/internal/table"
)

func testPublisher(t *testing.T, seed int64) *Publisher {
	t.Helper()
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(seed))
	return NewPublisher(d)
}

func workload1Attrs() []string {
	return []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
}

func TestReleaseMarginalSmoothGamma(t *testing.T) {
	p := testPublisher(t, 1)
	rel, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, dist.NewStreamFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Noisy) != rel.Query.NumCells() {
		t.Fatalf("released %d cells, query has %d", len(rel.Noisy), rel.Query.NumCells())
	}
	if rel.Loss.Def != privacy.StrongEREE {
		t.Errorf("definition = %v, want StrongEREE for establishment-only marginal", rel.Loss.Def)
	}
	if rel.Loss.Eps != 2 {
		t.Errorf("loss eps = %v, want 2 (parallel composition)", rel.Loss.Eps)
	}
	// Noise was actually added somewhere.
	diff := 0
	for cell, c := range rel.Truth.Counts {
		if rel.Noisy[cell] != float64(c) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("release identical to truth")
	}
}

func TestReleaseMarginalWeakDefinitionAndSurcharge(t *testing.T) {
	p := testPublisher(t, 3)
	attrs := append(workload1Attrs(), lodes.AttrSex, lodes.AttrEducation)
	rel, err := p.ReleaseMarginal(Request{
		Attrs: attrs, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Loss.Def != privacy.WeakEREE {
		t.Errorf("definition = %v, want WeakEREE once worker attributes appear", rel.Loss.Def)
	}
	// d = |sex| * |education| = 8, so the marginal costs 8 * 2 = 16.
	if rel.Loss.Eps != 16 {
		t.Errorf("loss eps = %v, want d*eps = 16", rel.Loss.Eps)
	}
}

func TestReleaseMarginalEdgeLaplace(t *testing.T) {
	p := testPublisher(t, 5)
	rel, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechEdgeLaplace, Eps: 1,
	}, dist.NewStreamFromSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Loss.Def != privacy.EdgeDP {
		t.Errorf("definition = %v, want EdgeDP", rel.Loss.Def)
	}
	// Edge-DP noise is tiny: average per-cell error ~1/eps.
	var l1 float64
	for cell, c := range rel.Truth.Counts {
		l1 += math.Abs(rel.Noisy[cell] - float64(c))
	}
	avg := l1 / float64(len(rel.Noisy))
	if avg > 3 {
		t.Errorf("edge-DP average cell error = %v, want ~1", avg)
	}
}

func TestReleaseMarginalTruncatedLaplace(t *testing.T) {
	p := testPublisher(t, 7)
	rel, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechTruncatedLaplace, Eps: 4, Theta: 100,
	}, dist.NewStreamFromSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Loss.Def != privacy.NodeDP {
		t.Errorf("definition = %v, want NodeDP", rel.Loss.Def)
	}
	if rel.Truncation == nil {
		t.Fatal("truncation summary missing")
	}
	if rel.Truncation.RemovedEmployers == 0 {
		t.Error("synthetic data should have establishments above theta=100")
	}
	if !strings.Contains(rel.MechanismName, "truncated") {
		t.Errorf("mechanism name = %q", rel.MechanismName)
	}
}

func TestReleaseValidityErrors(t *testing.T) {
	p := testPublisher(t, 9)
	// Smooth Gamma out of validity region.
	if _, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 0.25,
	}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("invalid SmoothGamma parameters accepted")
	}
	// Smooth Laplace below Table 2 minimum.
	if _, err := p.ReleaseMarginal(Request{
		Attrs: workload1Attrs(), Mechanism: MechSmoothLaplace, Alpha: 0.2, Eps: 0.5, Delta: 0.05,
	}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("invalid SmoothLaplace parameters accepted")
	}
	// Unknown attribute.
	if _, err := p.ReleaseMarginal(Request{
		Attrs: []string{"nonsense"}, Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestReleaseSingleCell(t *testing.T) {
	p := testPublisher(t, 10)
	attrs := append(workload1Attrs(), lodes.AttrSex, lodes.AttrEducation)
	values := []string{lodes.PlaceName(0), "44-Retail", "Private", "F", "BachelorsPlus"}
	noisy, truth, loss, err := p.ReleaseSingleCell(Request{
		Attrs: attrs, Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05,
	}, values, dist.NewStreamFromSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	// Single cells never pay the d*eps surcharge.
	if loss.Eps != 2 {
		t.Errorf("single-cell loss = %v, want 2", loss.Eps)
	}
	if loss.Def != privacy.WeakEREE {
		t.Errorf("definition = %v, want WeakEREE", loss.Def)
	}
	if truth < 0 {
		t.Errorf("truth = %d", truth)
	}
	if noisy == float64(truth) && truth > 0 {
		t.Error("single-cell release exactly equals the truth")
	}
}

func TestReleaseSingleCellErrors(t *testing.T) {
	p := testPublisher(t, 12)
	if _, _, _, err := p.ReleaseSingleCell(Request{
		Attrs: workload1Attrs(), Mechanism: MechTruncatedLaplace, Eps: 1, Theta: 10,
	}, []string{lodes.PlaceName(0), "44-Retail", "Private"}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("truncated-laplace single cell accepted")
	}
	if _, _, _, err := p.ReleaseSingleCell(Request{
		Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2,
	}, []string{"bad-place", "44-Retail", "Private"}, dist.NewStreamFromSeed(1)); err == nil {
		t.Error("bad cell value accepted")
	}
}

func TestPublisherAccountantIntegration(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(13))
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 0.1, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(d).WithAccountant(acct)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothGamma, Alpha: 0.1, Eps: 2}
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(14)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(15)); err != nil {
		t.Fatal(err)
	}
	// Third release would need eps=6 > 4.
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(16)); err == nil {
		t.Error("budget-exhausting release accepted")
	}
	if acct.Releases() != 2 {
		t.Errorf("accountant charged %d releases, want 2", acct.Releases())
	}
}

func TestReleaseDeterministicForStream(t *testing.T) {
	p := testPublisher(t, 17)
	req := Request{Attrs: workload1Attrs(), Mechanism: MechSmoothLaplace, Alpha: 0.1, Eps: 2, Delta: 0.05}
	a, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(18))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(18))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Noisy {
		if a.Noisy[i] != b.Noisy[i] {
			t.Fatal("release not deterministic for a fixed stream")
		}
	}
}

func TestCellInputs(t *testing.T) {
	s := table.NewSchema(table.NewDomain("x", "a", "b"))
	tab := table.New(s)
	for i := 0; i < 5; i++ {
		tab.AppendRow(0, 0)
	}
	tab.AppendRow(1, 0)
	m := table.Compute(tab, table.MustNewQuery(s, "x"))
	cells := CellInputs(m)
	if cells[0].Count != 6 || cells[0].MaxContribution != 5 {
		t.Errorf("cell 0 = %+v, want count 6, maxContribution 5", cells[0])
	}
	if cells[1].Count != 0 || cells[1].MaxContribution != 0 {
		t.Errorf("cell 1 = %+v, want zeros", cells[1])
	}
}

func TestParseMechanismKind(t *testing.T) {
	for _, k := range []MechanismKind{
		MechLogLaplace, MechSmoothGamma, MechSmoothLaplace, MechEdgeLaplace, MechTruncatedLaplace,
	} {
		got, err := ParseMechanismKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v, %v", k, got, err)
		}
	}
	if _, err := ParseMechanismKind("bogus"); err == nil {
		t.Error("bogus mechanism parsed")
	}
}

func TestDefinitionFor(t *testing.T) {
	if def := definitionFor(MechSmoothGamma, workload1Attrs()); def != privacy.StrongEREE {
		t.Errorf("establishment-only = %v", def)
	}
	if def := definitionFor(MechSmoothGamma, []string{lodes.AttrPlace, lodes.AttrSex}); def != privacy.WeakEREE {
		t.Errorf("with worker attrs = %v", def)
	}
	if def := definitionFor(MechEdgeLaplace, workload1Attrs()); def != privacy.EdgeDP {
		t.Errorf("edge = %v", def)
	}
	if def := definitionFor(MechTruncatedLaplace, workload1Attrs()); def != privacy.NodeDP {
		t.Errorf("node = %v", def)
	}
}
