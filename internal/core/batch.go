package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/privacy"
)

// ReleaseBatch answers many release requests as one batch: the missing
// marginals are computed in a single sharded pass over the table, the
// per-request noise is drawn in parallel, and the accountant (if any) is
// charged atomically — either the whole batch fits in the remaining
// budget or nothing is spent.
//
// Determinism: request i draws its noise from s.SplitIndex("batch", i),
// so the result is bit-identical to calling
//
//	ReleaseMarginal(reqs[i], s.SplitIndex("batch", i))
//
// for each request in order, regardless of scheduling (both paths fold
// the pinned epoch into the derivation — see epochStream — so the
// equivalence is per-epoch, and the batch pins exactly one). Releases
// are returned positionally aligned with the requests.
func (p *Publisher) ReleaseBatch(reqs []Request, s *dist.Stream) ([]*Release, error) {
	return p.ReleaseBatchFor(p.accountant, reqs, s)
}

// ReleaseBatchFor is ReleaseBatch charging an explicit accountant
// instead of the publisher's attached one (see ReleaseMarginalFor) —
// including the fail-fast admission check: a batch whose summed loss
// exceeds the accountant's remaining budget is rejected before any scan
// or noise is paid for, with ErrBudgetExhausted in the error chain. A
// nil accountant releases unaccounted.
func (p *Publisher) ReleaseBatchFor(a *privacy.Accountant, reqs []Request, s *dist.Stream) ([]*Release, error) {
	return p.ReleaseBatchTagged(a, reqs, s, nil)
}

// ReleaseBatchTagged is ReleaseBatchFor carrying a spend tag for the
// accountant's write-ahead journal (see ReleaseMarginalTagged). The
// whole batch is one atomic charge, so it journals as one spend record
// tagged with the batch request's identity and the pinned epoch.
func (p *Publisher) ReleaseBatchTagged(a *privacy.Accountant, reqs []Request, s *dist.Stream, tag *privacy.SpendTag) ([]*Release, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	// Pin the epoch snapshot once for the whole batch: every request's
	// truth, index scan and noise input come from the same epoch, even
	// if an Advance lands mid-batch.
	sn := p.snap.Load()
	// Derive every request's loss once, upfront: it depends only on the
	// request, and with an accountant attached it lets an over-budget
	// batch fail fast before paying for scans and noise. The atomic
	// SpendAll below remains authoritative — remaining budget only ever
	// shrinks, so this pre-check can only reject what SpendAll would
	// also reject.
	losses := make([]privacy.Loss, len(reqs))
	for i, req := range reqs {
		loss, err := lossFor(req, definitionFor(req.Mechanism, req.Attrs), sn.data.Schema())
		if err != nil {
			return nil, fmt.Errorf("core: batch request %d: %w", i, err)
		}
		losses[i] = loss
	}
	if a != nil {
		var sumEps, sumDelta float64
		for _, l := range losses {
			sumEps += l.Eps
			sumDelta += l.Delta
		}
		remEps, remDelta := a.Remaining()
		if sumEps > remEps+1e-12 || sumDelta > remDelta+1e-15 {
			return nil, fmt.Errorf("core: batch blocked: %w: batch loss (eps=%g, delta=%g) exceeds remaining budget (eps=%g, delta=%g)",
				privacy.ErrBudgetExhausted, sumEps, sumDelta, remEps, remDelta)
		}
	}
	// One scan for every marginal the batch needs. Requests with invalid
	// attribute sets are left out so their error surfaces below with the
	// request's batch position attached.
	attrSets := make([][]string, 0, len(reqs))
	for _, req := range reqs {
		if _, err := sn.data.Schema().Resolve(req.Attrs); err == nil {
			attrSets = append(attrSets, req.Attrs)
		}
	}
	if err := sn.prefetchMarginals(attrSets); err != nil {
		return nil, err
	}

	// A fixed worker pool pulling request indices from an atomic counter:
	// no per-request goroutine or semaphore traffic, and with one worker
	// the batch runs inline. Request i still draws from
	// s.SplitIndex("batch", i), so scheduling never shows in the output.
	rels := make([]*Release, len(reqs))
	errs := make([]error, len(reqs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, req := range reqs {
			rels[i], errs[i] = p.releaseWithLoss(sn, req, losses[i], s.SplitIndex("batch", i))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) {
						return
					}
					rels[i], errs[i] = p.releaseWithLoss(sn, reqs[i], losses[i], s.SplitIndex("batch", i))
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch request %d: %w", i, err)
		}
	}

	if a != nil {
		if err := a.SpendAllTagged(losses, stampTag(tag, sn.epoch)); err != nil {
			return nil, fmt.Errorf("core: batch blocked: %w", err)
		}
	}
	return rels, nil
}
