package table

import (
	"math/rand"
	"testing"
)

// Differential tests of the incremental view-maintenance kernel: a
// MarginalView patched through Apply must stay bit-identical to a cold
// BuildIndex + rescan of the successor table, on every statistic, for
// every delta shape the quarterly pipeline produces — pure adds,
// death-heavy, mixed churn, and long chained sequences. The test
// schema is tiny (12 cells) against 40–120 establishments, so nearly
// every cell has more contributors than the tracked window holds: the
// floor bound and the targeted-rescan fallback are on the hot path
// here, not edge cases.

// applyChurnKept runs entityRows.applyChurn and additionally reports
// the kept-prefix counts the patch kernel consumes: for each touched
// establishment, how many of its base rows survive verbatim as the
// prefix of its successor group (0 for births and deaths).
func applyChurnKept(er *entityRows, rng *rand.Rand, removals, adds map[int32]int, births int) (touched map[int32]bool, kept map[int32]int32) {
	oldLen := make(map[int32]int, len(er.rows))
	for e, rows := range er.rows {
		oldLen[e] = len(rows)
	}
	touched = er.applyChurn(rng, removals, adds, births)
	kept = make(map[int32]int32, len(touched))
	for e := range touched {
		k := oldLen[e] // zero for births
		if r, ok := removals[e]; ok {
			if r > k {
				r = k
			}
			k -= r
		}
		kept[e] = int32(k)
	}
	return touched, kept
}

// keptSlice aligns the kept map with the ascending touched id list.
func keptSlice(ids []int32, kept map[int32]int32) []int32 {
	out := make([]int32, len(ids))
	for i, e := range ids {
		out[i] = kept[e]
	}
	return out
}

func patchQueries(s *Schema) []*Query {
	return []*Query{
		MustNewQuery(s),
		MustNewQuery(s, "place"),
		MustNewQuery(s, "sex"),
		MustNewQuery(s, "place", "industry"),
		MustNewQuery(s, "industry", "place", "sex"),
	}
}

// checkPatchDifferential drives one (base, delta) pair through the
// view kernel and pins every query's patched truth against the cold
// rebuild and the scalar reference engine.
func checkPatchDifferential(t *testing.T, er *entityRows, mutate func() (map[int32]bool, map[int32]int32), label string) {
	t.Helper()
	base := er.table()
	baseIx := base.Index()
	qs := patchQueries(er.schema)
	views := make([]*MarginalView, len(qs))
	for k, q := range qs {
		v, err := NewMarginalView(baseIx, q)
		if err != nil {
			t.Fatalf("%s: NewMarginalView: %v", label, err)
		}
		marginalsEqual(t, v.Marginal(), baseIx.Compute(q), label+"/view-build")
		views[k] = v
	}

	touchedSet, kept := mutate()
	next := er.table()
	ids, sizes := er.touchedSets(touchedSet)
	merged, err := MergeIndex(baseIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("%s: MergeIndex: %v", label, err)
	}
	rebuilt := BuildIndex(next)
	kp := keptSlice(ids, kept)
	for k, v := range views {
		m, st, err := v.Apply(baseIx, merged, ids, kp)
		if err != nil {
			t.Fatalf("%s: Apply(%v): %v", label, qs[k].AttrNames(), err)
		}
		marginalsEqual(t, m, rebuilt.Compute(qs[k]), label+"/patched-vs-cold")
		marginalsEqual(t, m, ComputeReference(next, qs[k]), label+"/patched-vs-reference")
		if v.Marginal() != m {
			t.Fatalf("%s: view does not carry the patched truth", label)
		}
		if st.RescanCells > st.PatchedCells {
			t.Fatalf("%s: stats claim %d rescanned of %d patched cells", label, st.RescanCells, st.PatchedCells)
		}
		// A no-op delta on the patched view returns the same truth.
		again, st2, err := v.Apply(merged, merged, nil, nil)
		if err != nil {
			t.Fatalf("%s: empty Apply: %v", label, err)
		}
		if again != m || st2.ChangedPairs != 0 {
			t.Fatalf("%s: empty Apply changed the truth", label)
		}
	}
}

func TestPatchPureAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	er := randomEntityRows(rng, 40, 8)
	checkPatchDifferential(t, er, func() (map[int32]bool, map[int32]int32) {
		adds := map[int32]int{3: 2, 7: 5, 19: 1, 39: 3}
		return applyChurnKept(er, rng, nil, adds, 4)
	}, "pure-adds")
}

func TestPatchDeathHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	er := randomEntityRows(rng, 40, 8)
	checkPatchDifferential(t, er, func() (map[int32]bool, map[int32]int32) {
		removals := make(map[int32]int)
		for _, e := range []int32{0, 5, 11, 26, 39} {
			removals[e] = len(er.rows[e]) // full death
		}
		removals[8] = 1 // plus a shrink that keeps the entity alive
		return applyChurnKept(er, rng, removals, nil, 0)
	}, "death-heavy")
}

func TestPatchMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	er := randomEntityRows(rng, 60, 10)
	checkPatchDifferential(t, er, func() (map[int32]bool, map[int32]int32) {
		removals := map[int32]int{2: 1, 9: 3, 30: 2}
		for _, e := range []int32{14, 45} {
			removals[e] = len(er.rows[e]) // deaths
		}
		adds := map[int32]int{2: 4, 17: 2, 58: 1} // entity 2 churns both ways
		return applyChurnKept(er, rng, removals, adds, 3)
	}, "mixed-churn")
}

// TestPatchDethronesTopTwo engineers the hard case for the tracked
// window: a cell dominated by two giant establishments loses both in
// one delta, so the patched top pair must come from the cohort below
// the cached floor — the targeted-rescan fallback path.
func TestPatchDethronesTopTwo(t *testing.T) {
	s := testSchema()
	codes := []int{0, 0, 0} // all rows in one cell of every query
	er := &entityRows{schema: s, rows: make(map[int32][][]int)}
	// Twenty small contributors (1 row each), then two giants.
	for e := int32(0); e < 20; e++ {
		er.rows[e] = [][]int{append([]int(nil), codes...)}
		er.order = append(er.order, e)
	}
	for _, e := range []int32{20, 21} {
		for i := 0; i < 50; i++ {
			er.rows[e] = append(er.rows[e], append([]int(nil), codes...))
		}
		er.order = append(er.order, e)
	}
	rng := rand.New(rand.NewSource(64))
	checkPatchDifferential(t, er, func() (map[int32]bool, map[int32]int32) {
		removals := map[int32]int{20: 50, 21: 50} // both giants die
		return applyChurnKept(er, rng, removals, nil, 0)
	}, "dethrone-top-two")
}

// TestPatchChainedEpochs replays 8 epochs of random churn through one
// set of views, merging each index from the previous merged index and
// patching each view from its own prior truth — the exact shape the
// publisher's Advance path produces — and closes the differential at
// every step.
func TestPatchChainedEpochs(t *testing.T) {
	chainedPatchEpochs(t, rand.New(rand.NewSource(65)), 8)
}

func chainedPatchEpochs(t *testing.T, rng *rand.Rand, epochs int) {
	t.Helper()
	er := randomEntityRows(rng, 50, 6)
	cur := er.table()
	curIx := cur.Index()
	qs := patchQueries(er.schema)
	views := make([]*MarginalView, len(qs))
	for k, q := range qs {
		v, err := NewMarginalView(curIx, q)
		if err != nil {
			t.Fatalf("NewMarginalView: %v", err)
		}
		views[k] = v
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		removals := make(map[int32]int)
		adds := make(map[int32]int)
		for _, e := range er.order {
			if len(er.rows[e]) == 0 {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				removals[e] = 1 + rng.Intn(len(er.rows[e]))
			case 1:
				adds[e] = 1 + rng.Intn(3)
			}
		}
		touched, kept := applyChurnKept(er, rng, removals, adds, rng.Intn(3))
		next := er.table()
		ids, sizes := er.touchedSets(touched)
		merged, err := MergeIndex(curIx, next, ids, sizes)
		if err != nil {
			t.Fatalf("epoch %d: MergeIndex: %v", epoch, err)
		}
		rebuilt := BuildIndex(next)
		kp := keptSlice(ids, kept)
		for k, v := range views {
			m, _, err := v.Apply(curIx, merged, ids, kp)
			if err != nil {
				t.Fatalf("epoch %d: Apply(%v): %v", epoch, qs[k].AttrNames(), err)
			}
			marginalsEqual(t, m, rebuilt.Compute(qs[k]), "chained-epochs")
		}
		curIx = merged
	}
}

// TestPatchCloneIsolation pins the Clone contract: patching a clone
// must not disturb the original view, which must still patch correctly
// afterwards.
func TestPatchCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	er := randomEntityRows(rng, 40, 8)
	base := er.table()
	baseIx := base.Index()
	q := MustNewQuery(er.schema, "place", "industry")
	v, err := NewMarginalView(baseIx, q)
	if err != nil {
		t.Fatalf("NewMarginalView: %v", err)
	}
	baseTruth := v.Marginal()

	removals := map[int32]int{1: 2, 12: 1}
	adds := map[int32]int{4: 3, 30: 2}
	touched, kept := applyChurnKept(er, rng, removals, adds, 2)
	next := er.table()
	ids, sizes := er.touchedSets(touched)
	merged, err := MergeIndex(baseIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("MergeIndex: %v", err)
	}
	kp := keptSlice(ids, kept)

	clone := v.Clone()
	cm, _, err := clone.Apply(baseIx, merged, ids, kp)
	if err != nil {
		t.Fatalf("clone Apply: %v", err)
	}
	want := BuildIndex(next).Compute(q)
	marginalsEqual(t, cm, want, "clone-patched")
	if v.Marginal() != baseTruth {
		t.Fatal("patching the clone disturbed the original view's truth")
	}
	marginalsEqual(t, v.Marginal(), baseIx.Compute(q), "original-after-clone-patch")
	om, _, err := v.Apply(baseIx, merged, ids, kp)
	if err != nil {
		t.Fatalf("original Apply after clone: %v", err)
	}
	marginalsEqual(t, om, want, "original-patched-after-clone")
}

// TestPatchRejectsBadInputs pins the kernel's validation: malformed
// touched/kept descriptions must fail loudly, never corrupt silently.
func TestPatchRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	er := randomEntityRows(rng, 20, 5)
	base := er.table()
	baseIx := base.Index()
	q := MustNewQuery(er.schema, "place")
	touched, kept := applyChurnKept(er, rng, nil, map[int32]int{4: 2}, 0)
	next := er.table()
	ids, sizes := er.touchedSets(touched)
	merged, err := MergeIndex(baseIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("MergeIndex: %v", err)
	}
	kp := keptSlice(ids, kept)

	fresh := func() *MarginalView {
		v, err := NewMarginalView(baseIx, q)
		if err != nil {
			t.Fatalf("NewMarginalView: %v", err)
		}
		return v
	}
	if _, _, err := fresh().Apply(baseIx, merged, ids, nil); err == nil {
		t.Error("Apply accepted mismatched touched/kept lengths")
	}
	if _, _, err := fresh().Apply(baseIx, merged, []int32{ids[0], ids[0]}, []int32{kp[0], kp[0]}); err == nil {
		t.Error("Apply accepted a non-ascending touched list")
	}
	if _, _, err := fresh().Apply(baseIx, merged, ids, []int32{kp[0] + 100}); err == nil {
		t.Error("Apply accepted a kept count exceeding the base group")
	}
	if _, _, err := fresh().Apply(baseIx, merged, ids, []int32{-1}); err == nil {
		t.Error("Apply accepted a negative kept count")
	}
}

// FuzzPatchDifferential fuzzes delta shapes over random populations:
// whatever churn the fuzzer invents, the patched truth must stay
// bit-identical to the cold rebuild for every query.
func FuzzPatchDifferential(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(6), uint8(3), uint8(4), uint8(2))
	f.Add(int64(2), uint8(60), uint8(10), uint8(20), uint8(0), uint8(0))
	f.Add(int64(3), uint8(10), uint8(3), uint8(0), uint8(12), uint8(5))
	f.Add(int64(4), uint8(90), uint8(2), uint8(40), uint8(40), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, numEnts, maxSize, nRemove, nAdd, births uint8) {
		rng := rand.New(rand.NewSource(seed))
		ents := 1 + int(numEnts)%120
		er := randomEntityRows(rng, ents, 1+int(maxSize)%10)
		removals := make(map[int32]int)
		adds := make(map[int32]int)
		for i := 0; i < int(nRemove); i++ {
			e := er.order[rng.Intn(len(er.order))]
			if len(er.rows[e]) == 0 {
				continue
			}
			removals[e] = 1 + rng.Intn(len(er.rows[e]))
		}
		for i := 0; i < int(nAdd); i++ {
			e := er.order[rng.Intn(len(er.order))]
			adds[e] = 1 + rng.Intn(4)
		}
		checkPatchDifferential(t, er, func() (map[int32]bool, map[int32]int32) {
			return applyChurnKept(er, rng, removals, adds, int(births)%6)
		}, "fuzz")
	})
}
