package table

import (
	"math/bits"
	"slices"
	"sync"
)

// Bit-packed composite-key columns: the scan-specialized layout of the
// data plane (DESIGN.md §10).
//
// The unpacked kernel reads one uint16 per row per query attribute and
// recomputes the mixed-radix cell key per row — at paper scale the scan
// is memory-bound, so the next multiple comes from reading fewer bytes
// per row. A packedColumn stores the *fused* cell key of every index
// position in ⌈log2(q.size)⌉ bits, packed LSB-first into 64-bit words
// with keys never straddling a word (the top 64 mod width bits of each
// word are padding). A W1 scan (place×industry×ownership, 1200 cells,
// 11-bit keys) reads 11 bits per row instead of 48 — five keys per
// 8-byte load — and does no multiplies in the inner loop.
//
// Packed columns are built lazily and adaptively, once per canonical
// attribute set, and cached on the index keyed by the query's plan key,
// beside the existing per-attribute materializations. Building costs
// about as much as a few unpacked scans (fuse, per-group sort, emit),
// so a plan packs only after packScanThreshold unpacked scans of the
// same index — repeated-scan workloads cross the threshold immediately
// and amortize the build, while the scan-once-then-cache pattern of the
// epoch chain (each Advance merges a fresh index and warms each
// marginal exactly once) never pays for a column it would use once.
//
// The unpacked path remains both the differential oracle and the
// fallback: queries whose attributes are not in canonical (ascending
// schema) order or whose key width exceeds maxPackedWidth always scan
// unpacked, and both kernels produce the same multiset aggregates per
// group, so results are bit-identical.

// maxPackedWidth bounds the packed key width. Wider keys fit fewer than
// two per word, so the packed read amplifies — at 33+ bits per key the
// per-attribute uint16 columns are already the denser layout for every
// query of up to four attributes.
const maxPackedWidth = 32

// packScanThreshold is the number of unpacked scans a plan tolerates on
// one index before its packed column is built. The build costs roughly
// two to three unpacked scans, so the third scan is where packing
// starts paying for itself.
const packScanThreshold = 2

// packedColumn holds one canonical attribute set's fused cell keys for
// every index position, LSB-first within each 64-bit word.
type packedColumn struct {
	width   uint   // bits per key, ⌈log2(size)⌉ (min 1)
	perWord int    // keys per word, 64/width
	mask    uint64 // low `width` bits
	// rep replicates a key across a word: key*rep is the word whose
	// perWord key slots all hold key (padding bits zero). A full word
	// equal to the open run's replicated pattern extends the run by
	// perWord rows with a single compare — the common case for marginals
	// over entity-level attributes, where a whole group is one run.
	rep   uint64
	words []uint64
}

// packedPlan is one pack-cache entry: the column is built under the
// entry's own once-guard, outside the cache map's mutex, mirroring the
// per-column guards of Index.col. scans counts the plan's lookups on
// this index (guarded by packMu) and gates the build.
type packedPlan struct {
	scans int
	once  sync.Once
	col   *packedColumn
}

// packedFor returns the packed column for q, building and caching it
// once the plan's scan count on this index crosses packScanThreshold,
// or nil when q doesn't pack (see Query.packable), packing is disabled
// on the index, or the plan hasn't yet scanned often enough to make the
// build worthwhile.
func (ix *Index) packedFor(q *Query) *packedColumn {
	if !q.packable || ix.noPack {
		return nil
	}
	ix.packMu.Lock()
	if ix.packs == nil {
		ix.packs = make(map[string]*packedPlan)
	}
	pl := ix.packs[q.planKey]
	if pl == nil {
		pl = &packedPlan{}
		ix.packs[q.planKey] = pl
	}
	pl.scans++
	if pl.scans <= packScanThreshold {
		ix.packMu.Unlock()
		return nil
	}
	ix.packMu.Unlock()
	pl.once.Do(func() { pl.col = ix.buildPacked(q) })
	return pl.col
}

// buildPacked fuses q's attribute codes into a packed column, group by
// group, reading through the row permutation when the index is not in
// identity mode. Each group's keys are sorted ascending before packing —
// the within-group row order is semantically free (every statistic the
// kernel produces is a multiset aggregate over the group), and sorted
// keys are what turn the scan into branch-predictable run-length folding
// with no scatter array at all. The group buffer bounds the build's
// transient memory at maxGroup keys; the output words are the single
// retained allocation, smaller than any one uint16 column.
func (ix *Index) buildPacked(q *Query) *packedColumn {
	width := q.packWidth
	per := 64 / int(width)
	pc := &packedColumn{
		width:   width,
		perWord: per,
		mask:    1<<width - 1,
		words:   make([]uint64, (ix.n+per-1)/per),
	}
	for j := 0; j < per; j++ {
		pc.rep = pc.rep<<width | 1
	}
	srcs := make([][]uint16, len(q.attrs))
	for i, a := range q.attrs {
		srcs[i] = ix.t.cols[a]
	}
	radices := q.radices
	rows := ix.rows
	var w uint64
	var shift uint
	wi := 0
	emit := func(key int32) {
		w |= uint64(key) << shift
		shift += width
		if shift+width > 64 {
			pc.words[wi] = w
			wi++
			w = 0
			shift = 0
		}
	}
	bufCap := ix.maxGroup
	if bufCap < 1 {
		bufCap = 1
	}
	buf := make([]int32, bufCap)
	for g := 0; g < ix.NumGroups(); g++ {
		glo, ghi := int(ix.starts[g]), int(ix.starts[g+1])
		b := buf[:ghi-glo]
		switch len(srcs) {
		case 1:
			c0 := srcs[0]
			if rows == nil {
				for p := glo; p < ghi; p++ {
					b[p-glo] = int32(c0[p])
				}
			} else {
				for p := glo; p < ghi; p++ {
					b[p-glo] = int32(c0[rows[p]])
				}
			}
		case 2:
			r1 := int32(radices[1])
			c0, c1 := srcs[0], srcs[1]
			if rows == nil {
				for p := glo; p < ghi; p++ {
					b[p-glo] = int32(c0[p])*r1 + int32(c1[p])
				}
			} else {
				for p := glo; p < ghi; p++ {
					row := rows[p]
					b[p-glo] = int32(c0[row])*r1 + int32(c1[row])
				}
			}
		case 3:
			r1, r2 := int32(radices[1]), int32(radices[2])
			c0, c1, c2 := srcs[0], srcs[1], srcs[2]
			if rows == nil {
				for p := glo; p < ghi; p++ {
					b[p-glo] = (int32(c0[p])*r1+int32(c1[p]))*r2 + int32(c2[p])
				}
			} else {
				for p := glo; p < ghi; p++ {
					row := rows[p]
					b[p-glo] = (int32(c0[row])*r1+int32(c1[row]))*r2 + int32(c2[row])
				}
			}
		default:
			for p := glo; p < ghi; p++ {
				row := p
				if rows != nil {
					row = int(rows[p])
				}
				key := int32(0)
				for j, src := range srcs {
					key = key*int32(radices[j]) + int32(src[row])
				}
				b[p-glo] = key
			}
		}
		if len(b) > 1 {
			slices.Sort(b)
		}
		for _, k := range b {
			emit(k)
		}
	}
	if shift > 0 {
		pc.words[wi] = w
	}
	return pc
}

// key returns the cell key stored at index position p. Because groups
// are key-sorted at pack time, position p's packed key only corresponds
// to index position p's row for singleton groups — whole groups must be
// read as multisets (foldRuns).
func (pc *packedColumn) key(p int) int {
	return int(pc.words[p/pc.perWord] >> (uint(p%pc.perWord) * pc.width) & pc.mask)
}

// foldRuns folds the group spanning index positions [lo, hi) directly
// into the partial. Keys were sorted within the group at pack time, so
// equal cells form runs and the kernel is pure run-length folding —
// decode, compare against the open run's key, extend or fold — with no
// scatter array, no touched list, and no reset. Full words are first
// compared whole against the open run's replicated pattern: marginals
// over entity-level attributes make an entire group one run, so the
// overwhelmingly common step is a single 64-bit compare advancing
// perWord rows. The word cursor advances incrementally; the single
// integer division below is the group's only one. The stats updates are
// addRun's body spelled out inline — an out-of-line call per run forces
// the loop's cursors out of registers, which costs more than the fold.
func (pc *packedColumn) foldRuns(pt *partial, lo, hi int, entity int32, detailed bool) {
	width, per, mask, words := pc.width, pc.perWord, pc.mask, pc.words
	stats := pt.stats
	wi := lo / per
	off := lo - wi*per
	w := words[wi] >> (uint(off) * width)
	// The span's first key opens the first run.
	cur := int(w & mask)
	w >>= width
	off++
	p := lo + 1
	run := int64(1)
	pattern := uint64(cur) * pc.rep
	// Head: finish the word the span starts inside, row by row.
	for off < per && p < hi {
		key := int(w & mask)
		w >>= width
		off++
		p++
		if key == cur {
			run++
			continue
		}
		st := &stats[cur]
		st.count += run
		st.entities++
		switch {
		case run > st.max:
			st.second = st.max
			st.max = run
		case run > st.second:
			st.second = run
		}
		if detailed {
			pt.hist = append(pt.hist, CellEntityCount{Cell: cur, Entity: entity, Count: run})
		}
		cur = key
		run = 1
		pattern = uint64(cur) * pc.rep
	}
	if off == per {
		wi++
	}
	// Full words: pattern compare first, per-key decode on mismatch.
	for ; p+per <= hi; wi++ {
		w = words[wi]
		p += per
		if w == pattern {
			run += int64(per)
			continue
		}
		for j := 0; j < per; j++ {
			key := int(w & mask)
			w >>= width
			if key == cur {
				run++
				continue
			}
			st := &stats[cur]
			st.count += run
			st.entities++
			switch {
			case run > st.max:
				st.second = st.max
				st.max = run
			case run > st.second:
				st.second = run
			}
			if detailed {
				pt.hist = append(pt.hist, CellEntityCount{Cell: cur, Entity: entity, Count: run})
			}
			cur = key
			run = 1
		}
		pattern = uint64(cur) * pc.rep
	}
	// Tail: the span ends mid-word.
	if p < hi {
		w = words[wi]
		for ; p < hi; p++ {
			key := int(w & mask)
			w >>= width
			if key == cur {
				run++
				continue
			}
			st := &stats[cur]
			st.count += run
			st.entities++
			switch {
			case run > st.max:
				st.second = st.max
				st.max = run
			case run > st.second:
				st.second = run
			}
			if detailed {
				pt.hist = append(pt.hist, CellEntityCount{Cell: cur, Entity: entity, Count: run})
			}
			cur = key
			run = 1
		}
	}
	st := &stats[cur]
	st.count += run
	st.entities++
	switch {
	case run > st.max:
		st.second = st.max
		st.max = run
	case run > st.second:
		st.second = run
	}
	if detailed {
		pt.hist = append(pt.hist, CellEntityCount{Cell: cur, Entity: entity, Count: run})
	}
}

// packedKeyWidth returns the packed key width for a query of the given
// cell count: ⌈log2(size)⌉, minimum 1 bit.
func packedKeyWidth(size int) uint {
	w := uint(bits.Len(uint(size - 1)))
	if w == 0 {
		w = 1
	}
	return w
}
