package table

import (
	"math/rand"
	"runtime"
	"testing"
)

// Steady-state allocation pins for the pooled scan state (DESIGN.md §6).
// A query's only inherent allocations are its results: the Marginal, its
// four statistic vectors, the result slice, and the per-call query/
// column views — the documented constants below. Everything else
// (scatter scratch, touched list, per-worker partials) comes from the
// index's pool. The tests run single-shard (GOMAXPROCS 1) so the counts
// don't depend on the host's core count; a regression that reintroduces
// per-query or per-row allocation blows far past these bounds.
const (
	// computeSteadyAllocs bounds Index.Compute: 1 Marginal + 4 result
	// vectors + 1 result slice + 2 column views + shard/state slices.
	computeSteadyAllocs = 12
	// computeAllPerQueryAllocs bounds the per-query part of ComputeAll
	// (Marginal + 4 vectors + column view), computeAllBaseAllocs the
	// query-independent part.
	computeAllPerQueryAllocs = 6
	computeAllBaseAllocs     = 6
)

func singleShard(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestComputeSteadyStateAllocs(t *testing.T) {
	singleShard(t)
	rng := rand.New(rand.NewSource(42))
	tab := randomTable(t, rng, 2000)
	q := MustNewQuery(tab.Schema(), "place", "industry")
	ix := tab.Index()
	ix.Compute(q) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		if ix.Compute(q) == nil {
			t.Fatal("nil marginal")
		}
	})
	if allocs > computeSteadyAllocs {
		t.Fatalf("Index.Compute steady state allocates %v per op, documented bound is %d (pooling regressed?)",
			allocs, computeSteadyAllocs)
	}
}

func TestComputeAllSteadyStateAllocs(t *testing.T) {
	singleShard(t)
	rng := rand.New(rand.NewSource(43))
	tab := randomTable(t, rng, 2000)
	qs := []*Query{
		MustNewQuery(tab.Schema(), "place"),
		MustNewQuery(tab.Schema(), "place", "industry"),
		MustNewQuery(tab.Schema(), "sex", "industry"),
	}
	ix := tab.Index()
	ix.ComputeAll(qs) // warm the pool
	bound := float64(computeAllBaseAllocs + computeAllPerQueryAllocs*len(qs))
	allocs := testing.AllocsPerRun(50, func() {
		if len(ix.ComputeAll(qs)) != len(qs) {
			t.Fatal("short result")
		}
	})
	if allocs > bound {
		t.Fatalf("Index.ComputeAll steady state allocates %v per op for %d queries, documented bound is %v",
			allocs, len(qs), bound)
	}
}

// TestComputeAllocsScaleWithResultsNotRows is the sharper form of the
// pin: doubling the row count must not change the steady-state
// allocation count at all — allocations are a function of the result
// shape only.
func TestComputeAllocsScaleWithResultsNotRows(t *testing.T) {
	singleShard(t)
	rng := rand.New(rand.NewSource(44))
	measure := func(rows int) float64 {
		tab := randomTable(t, rng, rows)
		q := MustNewQuery(tab.Schema(), "place", "industry")
		ix := tab.Index()
		ix.Compute(q)
		return testing.AllocsPerRun(20, func() { ix.Compute(q) })
	}
	small, large := measure(500), measure(4000)
	if small != large {
		t.Fatalf("steady-state allocs depend on row count: %v at 500 rows vs %v at 4000", small, large)
	}
}
