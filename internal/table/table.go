package table

import (
	"fmt"
	"sync"
)

// Table is a columnar table of coded records over a schema. Each column
// stores uint16 value codes, which comfortably covers every categorical
// domain in the LODES schema (the largest, Census place, is in the
// hundreds).
//
// A table optionally carries an entity column: a per-record integer
// identifying which entity (establishment, in the paper's setting) the
// record belongs to. Entity membership is not a query attribute — the
// paper never publishes per-establishment rows — but it is what privacy is
// defined over: neighboring databases differ in the workforce of a single
// entity, so the aggregation engine uses this column to compute per-cell
// maximum entity contributions.
type Table struct {
	schema   *Schema
	cols     [][]uint16
	entities []int32
	n        int

	// idxMu guards idx, the lazily built entity-sorted index. The index
	// records the row count it was built at; appending rows leaves it
	// stale and Index rebuilds on next use.
	idxMu sync.Mutex
	idx   *Index
}

// New returns an empty table over the given schema.
func New(schema *Schema) *Table {
	if schema == nil {
		panic("table: nil schema")
	}
	cols := make([][]uint16, schema.NumAttrs())
	return &Table{schema: schema, cols: cols}
}

// NewWithCapacity returns an empty table with storage preallocated for n
// records.
func NewWithCapacity(schema *Schema, n int) *Table {
	t := New(schema)
	for i := range t.cols {
		t.cols[i] = make([]uint16, 0, n)
	}
	t.entities = make([]int32, 0, n)
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of records.
func (t *Table) NumRows() int { return t.n }

// AppendRow appends a record given as value codes in schema order, with
// the entity the record belongs to (-1 for tables without entities).
func (t *Table) AppendRow(entity int32, codes ...int) {
	if len(codes) != t.schema.NumAttrs() {
		panic(fmt.Sprintf("table: AppendRow got %d codes, schema has %d attributes",
			len(codes), t.schema.NumAttrs()))
	}
	for i, c := range codes {
		size := t.schema.Attr(i).Size()
		if c < 0 || c >= size {
			panic(fmt.Sprintf("table: code %d out of range for attribute %q (size %d)",
				c, t.schema.Attr(i).Name, size))
		}
		t.cols[i] = append(t.cols[i], uint16(c))
	}
	t.entities = append(t.entities, entity)
	t.n++
}

// AppendRowValues appends a record given as attribute values in schema
// order, returning an error if any value is outside its domain.
func (t *Table) AppendRowValues(entity int32, values ...string) error {
	if len(values) != t.schema.NumAttrs() {
		return fmt.Errorf("table: AppendRowValues got %d values, schema has %d attributes",
			len(values), t.schema.NumAttrs())
	}
	codes := make([]int, len(values))
	for i, v := range values {
		c, err := t.schema.Attr(i).Code(v)
		if err != nil {
			return err
		}
		codes[i] = c
	}
	t.AppendRow(entity, codes...)
	return nil
}

// AppendSpan appends rows [lo, hi) of src — which must share t's schema
// — preserving entities. Column storage is copied span-wise (one copy
// per column), the bulk path snapshot construction uses to carry
// untouched entity groups between dataset epochs.
func (t *Table) AppendSpan(src *Table, lo, hi int) {
	if src.schema != t.schema {
		panic("table: AppendSpan across different schemas")
	}
	if lo < 0 || hi > src.n || lo > hi {
		panic(fmt.Sprintf("table: AppendSpan range [%d,%d) out of bounds (src has %d rows)", lo, hi, src.n))
	}
	for i := range t.cols {
		t.cols[i] = append(t.cols[i], src.cols[i][lo:hi]...)
	}
	t.entities = append(t.entities, src.entities[lo:hi]...)
	t.n += hi - lo
}

// Reset truncates the table to zero rows, keeping column capacity, so a
// chunk buffer can be refilled without reallocating. Any cached index is
// dropped; indexes or column views handed out earlier must not be used
// across a Reset.
func (t *Table) Reset() {
	for i := range t.cols {
		t.cols[i] = t.cols[i][:0]
	}
	t.entities = t.entities[:0]
	t.n = 0
	t.idxMu.Lock()
	t.idx = nil
	t.idxMu.Unlock()
}

// Code returns the value code of attribute attr for record row.
func (t *Table) Code(row, attr int) int {
	t.checkRow(row)
	return int(t.cols[attr][row])
}

// Value returns the attribute value of attribute attr for record row.
func (t *Table) Value(row, attr int) string {
	return t.schema.Attr(attr).Value(t.Code(row, attr))
}

// Entity returns the entity of record row (-1 if the record has none).
func (t *Table) Entity(row int) int32 {
	t.checkRow(row)
	return t.entities[row]
}

// NumEntities returns one more than the largest entity ID present, i.e.
// the size of a dense entity-indexed array that covers the table. Tables
// with no entities return 0.
func (t *Table) NumEntities() int {
	max := int32(-1)
	for _, e := range t.entities {
		if e > max {
			max = e
		}
	}
	return int(max) + 1
}

// Column returns the raw code column for attribute attr. The returned
// slice is shared with the table and must not be modified.
func (t *Table) Column(attr int) []uint16 {
	if attr < 0 || attr >= len(t.cols) {
		panic(fmt.Sprintf("table: column index %d out of range", attr))
	}
	return t.cols[attr]
}

// Entities returns the raw entity column. The returned slice is shared
// with the table and must not be modified.
func (t *Table) Entities() []int32 { return t.entities }

// Index returns the table's entity-sorted index, building it on first
// use and caching it. The cache is invalidated by appends (the index
// remembers the row count it covers); concurrent readers are safe, but
// appending concurrently with reads is not — same as every other Table
// accessor.
func (t *Table) Index() *Index {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.idx == nil || t.idx.n != t.n {
		t.idx = BuildIndex(t)
	}
	return t.idx
}

func (t *Table) checkRow(row int) {
	if row < 0 || row >= t.n {
		panic(fmt.Sprintf("table: row %d out of range (table has %d rows)", row, t.n))
	}
}

// Filter returns a new table containing the records for which keep returns
// true. Entities are preserved.
func (t *Table) Filter(keep func(row int) bool) *Table {
	out := New(t.schema)
	for row := 0; row < t.n; row++ {
		if !keep(row) {
			continue
		}
		for i := range t.cols {
			out.cols[i] = append(out.cols[i], t.cols[i][row])
		}
		out.entities = append(out.entities, t.entities[row])
		out.n++
	}
	return out
}
