package table

import (
	"fmt"
	"sort"
)

// Incremental index maintenance for versioned (epoch-snapshot) tables.
//
// An epoch snapshot's successor table is built entity-sorted — rows
// grouped by strictly ascending entity, untouched groups copied verbatim
// from the predecessor — so its index needs neither the counting sort
// nor the per-attribute column gather of BuildIndex: the row permutation
// is the identity and the materialized columns alias the table's own.
// MergeIndex therefore only has to derive the new group boundaries,
// which it does by merging the predecessor's group layout with the set
// of touched entities: O(groups + touched) work, independent of the row
// count. AffectedCells then reports, per query, exactly which cells a
// delta can have changed — the contract the publisher's selective cache
// invalidation is built on.

// MergeIndex builds the index of next, the entity-sorted successor of
// the table base indexes, from base's group layout plus the delta's
// touched-entity set: untouched groups keep their size, touched[i] has
// touchedRows[i] rows in next (0 for a removed entity), and entities not
// in base with touchedRows > 0 are newborn groups. touched must be
// strictly ascending and non-negative, and neither table may contain
// entity-less rows (every lodes snapshot satisfies both).
//
// The returned index is in identity mode: next must hold its rows in
// strictly grouped ascending-entity order, exactly as
// lodes.Dataset.ApplyDelta constructs it. MergeIndex verifies each
// group's boundary rows against next's entity column (O(groups)); full
// interior validity is the constructor's contract, differentially
// tested against BuildIndex in merge_test.go.
func MergeIndex(base *Index, next *Table, touched []int32, touchedRows []int32) (*Index, error) {
	if base.t.Schema() != next.Schema() {
		return nil, fmt.Errorf("table: MergeIndex across different schemas")
	}
	if len(touched) != len(touchedRows) {
		return nil, fmt.Errorf("table: MergeIndex got %d touched entities but %d row counts",
			len(touched), len(touchedRows))
	}
	for i, e := range touched {
		if e < 0 {
			return nil, fmt.Errorf("table: MergeIndex touched entity %d is negative", e)
		}
		if i > 0 && touched[i-1] >= e {
			return nil, fmt.Errorf("table: MergeIndex touched entities not strictly ascending at %d", i)
		}
		if touchedRows[i] < 0 {
			return nil, fmt.Errorf("table: MergeIndex entity %d has negative row count", e)
		}
	}
	baseEnts := base.entities
	if len(baseEnts) > 0 && baseEnts[len(baseEnts)-1] < 0 {
		return nil, fmt.Errorf("table: MergeIndex base index has entity-less rows")
	}

	ix := &Index{t: next, n: next.NumRows()}
	ix.starts = make([]int32, 0, len(baseEnts)+len(touched)+1)
	ix.entities = make([]int32, 0, len(baseEnts)+len(touched))
	var pos int32
	add := func(e, size int32) {
		if size == 0 {
			return
		}
		ix.starts = append(ix.starts, pos)
		ix.entities = append(ix.entities, e)
		if int(size) > ix.maxGroup {
			ix.maxGroup = int(size)
		}
		pos += size
	}
	i, j := 0, 0
	for i < len(baseEnts) || j < len(touched) {
		if j >= len(touched) || (i < len(baseEnts) && baseEnts[i] < touched[j]) {
			add(baseEnts[i], base.starts[i+1]-base.starts[i])
			i++
			continue
		}
		if i < len(baseEnts) && baseEnts[i] == touched[j] {
			i++
		}
		add(touched[j], touchedRows[j])
		j++
	}
	ix.starts = append(ix.starts, pos)
	if int(pos) != next.NumRows() {
		return nil, fmt.Errorf("table: MergeIndex group sizes sum to %d rows, next table has %d",
			pos, next.NumRows())
	}
	// Boundary verification: the first and last row of every claimed
	// group span must carry the group's entity.
	ents := next.Entities()
	for g, e := range ix.entities {
		lo, hi := ix.starts[g], ix.starts[g+1]
		if ents[lo] != e || ents[hi-1] != e {
			return nil, fmt.Errorf("table: MergeIndex boundary mismatch: group %d claims entity %d over rows [%d,%d) but found %d..%d",
				g, e, lo, hi, ents[lo], ents[hi-1])
		}
	}
	ix.cols = make([]lazyCol, len(next.cols))
	return ix, nil
}

// AdoptIndex installs a prebuilt index (typically from MergeIndex) as
// the table's cached index, so Table.Index serves it instead of running
// BuildIndex on first use.
func (t *Table) AdoptIndex(ix *Index) {
	if ix.t != t {
		panic("table: AdoptIndex of an index built for a different table")
	}
	if ix.n != t.n {
		panic(fmt.Sprintf("table: AdoptIndex of an index over %d rows onto a table with %d", ix.n, t.n))
	}
	t.idxMu.Lock()
	t.idx = ix
	t.idxMu.Unlock()
}

// AffectedCells returns, for each query, the sorted cell keys whose
// marginal statistics can differ between base's table and next's: a
// cell is affected when some touched entity's per-cell contribution to
// it differs between the two snapshots. Untouched entities' rows are
// copied verbatim across snapshots, so a query whose affected set is
// empty has a bit-identical marginal (counts, top-two entity
// contributions, and distinct-entity counts all unchanged) — the
// soundness contract selective cache invalidation relies on.
//
// Both indexes must be over entity-complete tables (no entity-less
// rows) sharing one schema, and every query must be compiled against
// that schema. touched must be sorted ascending.
func AffectedCells(base, next *Index, touched []int32, qs []*Query) [][]int {
	out := make([][]int, len(qs))
	if len(touched) == 0 {
		return out
	}
	for k, q := range qs {
		if q.schema != base.t.Schema() || q.schema != next.t.Schema() {
			panic("table: AffectedCells query compiled against a different schema")
		}
		baseCols := queryCols(base, q)
		nextCols := queryCols(next, q)
		affected := make(map[int]bool)
		oldCells := make(map[int]int64)
		newCells := make(map[int]int64)
		for _, e := range touched {
			clear(oldCells)
			clear(newCells)
			entityCells(base, baseCols, q.radices, e, oldCells)
			entityCells(next, nextCols, q.radices, e, newCells)
			for key, c := range oldCells {
				if newCells[key] != c {
					affected[key] = true
				}
			}
			for key, c := range newCells {
				if oldCells[key] != c {
					affected[key] = true
				}
			}
		}
		keys := make([]int, 0, len(affected))
		for key := range affected {
			keys = append(keys, key)
		}
		sort.Ints(keys)
		out[k] = keys
	}
	return out
}

// Affected reports, per query, whether the delta can have changed it at
// all — the boolean the publisher's selective invalidation needs (it
// drops a marginal iff its affected-cell set is nonempty, and never
// looks at the set itself). Unlike AffectedCells this short-circuits:
// a query is marked at the first touched entity whose contribution to
// it changed, and the sweep stops once every query is marked — so a
// quarter of heavy churn over a warm cache costs roughly one entity
// comparison per query, not a pass over every touched group. For each
// i, Affected(...)[i] == (len(AffectedCells(...)[i]) > 0).
func Affected(base, next *Index, touched []int32, qs []*Query) []bool {
	out := make([]bool, len(qs))
	if len(touched) == 0 || len(qs) == 0 {
		return out
	}
	type qstate struct {
		q     *Query
		bcols [][]uint16
		ncols [][]uint16
	}
	states := make([]qstate, len(qs))
	for k, q := range qs {
		if q.schema != base.t.Schema() || q.schema != next.t.Schema() {
			panic("table: Affected query compiled against a different schema")
		}
		states[k] = qstate{q: q, bcols: queryCols(base, q), ncols: queryCols(next, q)}
	}
	remaining := len(qs)
	oldCells := make(map[int]int64)
	newCells := make(map[int]int64)
	for _, e := range touched {
		for k := range states {
			if out[k] {
				continue
			}
			st := &states[k]
			clear(oldCells)
			clear(newCells)
			entityCells(base, st.bcols, st.q.radices, e, oldCells)
			entityCells(next, st.ncols, st.q.radices, e, newCells)
			differs := len(oldCells) != len(newCells)
			if !differs {
				for key, c := range oldCells {
					if newCells[key] != c {
						differs = true
						break
					}
				}
			}
			if differs {
				out[k] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
	}
	return out
}

// queryCols resolves a query's columns in index order.
func queryCols(ix *Index, q *Query) [][]uint16 {
	cols := make([][]uint16, len(q.attrs))
	for i, a := range q.attrs {
		cols[i] = ix.col(a)
	}
	return cols
}

// entityCells accumulates entity e's per-cell row counts under the
// query's columns into cells. Entities absent from the index (a not-yet
// -born or fully removed establishment) contribute nothing.
func entityCells(ix *Index, cols [][]uint16, radices []int, e int32, cells map[int]int64) {
	g, ok := ix.findGroup(e)
	if !ok {
		return
	}
	for p := int(ix.starts[g]); p < int(ix.starts[g+1]); p++ {
		cells[keyAt(cols, radices, p)]++
	}
}

// findGroup locates the group of entity e by binary search over the
// ascending entity list. Indexes with entity-less (synthetic negative)
// groups are rejected: their group list is not globally sorted.
func (ix *Index) findGroup(e int32) (int, bool) {
	n := len(ix.entities)
	if n > 0 && ix.entities[n-1] < 0 {
		panic("table: entity search requires an entity-complete table")
	}
	g := sort.Search(n, func(i int) bool { return ix.entities[i] >= e })
	if g < n && ix.entities[g] == e {
		return g, true
	}
	return 0, false
}
