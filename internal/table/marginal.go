package table

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a compiled marginal query (Definition 2.1): a subset V of the
// schema's attributes. Cells of the marginal are identified by dense
// integer keys in mixed-radix encoding over the selected attribute
// domains, so a marginal is a flat vector of |dom(V)| counts.
//
// An empty attribute set is allowed and yields the single-cell query q∅
// whose count is the table size.
type Query struct {
	schema  *Schema
	attrs   []int
	radices []int
	size    int

	// planKey is the canonical plan handle: the query's attribute
	// positions encoded as big-endian uint16 pairs, set only when attrs
	// are in canonical (strictly ascending schema) order. It keys both
	// the index's packed-column cache and — prefixed — the publisher's
	// canonical marginal-cache shards, so a cached truth and its packed
	// scan column are the same plan by construction.
	planKey string
	// packWidth is the packed cell-key width, ⌈log2(size)⌉ (min 1).
	packWidth uint
	// packable reports whether the query scans via the packed kernel: a
	// non-empty canonical attribute set whose key width fits
	// maxPackedWidth. Everything else takes the unpacked fallback.
	packable bool
}

// NewQuery compiles a marginal query over the named attributes.
func NewQuery(schema *Schema, names ...string) (*Query, error) {
	attrs, err := schema.Resolve(names)
	if err != nil {
		return nil, err
	}
	q := &Query{schema: schema, attrs: attrs}
	q.size = 1
	q.radices = make([]int, len(attrs))
	canonical := true
	for i, a := range attrs {
		q.radices[i] = schema.Attr(a).Size()
		q.size *= q.radices[i]
		if i > 0 && attrs[i-1] >= a {
			canonical = false
		}
	}
	if canonical {
		enc := make([]byte, 2*len(attrs))
		for i, a := range attrs {
			enc[2*i] = byte(a >> 8)
			enc[2*i+1] = byte(a)
		}
		q.planKey = string(enc)
		q.packWidth = packedKeyWidth(q.size)
		q.packable = len(attrs) > 0 && q.packWidth <= maxPackedWidth
	}
	return q, nil
}

// MustNewQuery is NewQuery but panics on error; for trusted literals.
func MustNewQuery(schema *Schema, names ...string) *Query {
	q, err := NewQuery(schema, names...)
	if err != nil {
		panic(err)
	}
	return q
}

// Schema returns the schema the query was compiled against.
func (q *Query) Schema() *Schema { return q.schema }

// PlanKey returns the query's canonical plan handle: a compact encoding
// of its attribute positions, non-empty exactly when the attributes are
// in canonical (strictly ascending schema) order — q∅, the empty query,
// canonically encodes to "". Queries sharing a plan key share the
// index's packed scan column, and the publisher derives its canonical
// cache keys from the same handle. Non-canonical queries return "".
func (q *Query) PlanKey() string { return q.planKey }

// Attrs returns the schema positions of the query's attributes.
func (q *Query) Attrs() []int { return q.attrs }

// AttrNames returns the names of the query's attributes in query order.
func (q *Query) AttrNames() []string {
	out := make([]string, len(q.attrs))
	for i, a := range q.attrs {
		out[i] = q.schema.Attr(a).Name
	}
	return out
}

// NumCells returns |dom(V)|, the number of cells in the marginal.
func (q *Query) NumCells() int { return q.size }

// CellKey encodes per-attribute value codes (in query order) into a cell key.
func (q *Query) CellKey(codes ...int) int {
	if len(codes) != len(q.attrs) {
		panic(fmt.Sprintf("table: CellKey got %d codes, query has %d attributes", len(codes), len(q.attrs)))
	}
	key := 0
	for i, c := range codes {
		if c < 0 || c >= q.radices[i] {
			panic(fmt.Sprintf("table: cell code %d out of range for attribute %q",
				c, q.schema.Attr(q.attrs[i]).Name))
		}
		key = key*q.radices[i] + c
	}
	return key
}

// CellKeyForValues encodes attribute values (in query order) into a cell key.
func (q *Query) CellKeyForValues(values ...string) (int, error) {
	if len(values) != len(q.attrs) {
		return 0, fmt.Errorf("table: CellKeyForValues got %d values, query has %d attributes",
			len(values), len(q.attrs))
	}
	codes := make([]int, len(values))
	for i, v := range values {
		c, err := q.schema.Attr(q.attrs[i]).Code(v)
		if err != nil {
			return 0, err
		}
		codes[i] = c
	}
	return q.CellKey(codes...), nil
}

// DecodeCell decodes a cell key into per-attribute value codes in query
// order. If out is non-nil and large enough it is reused.
func (q *Query) DecodeCell(key int, out []int) []int {
	if key < 0 || key >= q.size {
		panic(fmt.Sprintf("table: cell key %d out of range (query has %d cells)", key, q.size))
	}
	if cap(out) < len(q.attrs) {
		out = make([]int, len(q.attrs))
	}
	out = out[:len(q.attrs)]
	for i := len(q.attrs) - 1; i >= 0; i-- {
		out[i] = key % q.radices[i]
		key /= q.radices[i]
	}
	return out
}

// CellValues returns the attribute values of a cell, in query order.
func (q *Query) CellValues(key int) []string {
	codes := q.DecodeCell(key, nil)
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = q.schema.Attr(q.attrs[i]).Value(c)
	}
	return out
}

// CellString renders a cell as "attr=value,attr=value" for diagnostics.
func (q *Query) CellString(key int) string {
	values := q.CellValues(key)
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = q.schema.Attr(q.attrs[i]).Name + "=" + v
	}
	return strings.Join(parts, ",")
}

// KeyForRow returns the cell key the given record falls into.
func (q *Query) KeyForRow(t *Table, row int) int {
	key := 0
	for i, a := range q.attrs {
		key = key*q.radices[i] + t.Code(row, a)
	}
	return key
}

// Marginal is the result of evaluating a Query over a Table: the vector of
// true cell counts together with the per-cell entity statistics privacy
// mechanisms need.
type Marginal struct {
	Query *Query

	// Counts holds the true count per cell, indexed by cell key.
	Counts []int64

	// MaxEntityContribution holds, per cell, the largest number of records
	// any single entity contributes to that cell — the paper's x_v, the
	// quantity that sets smooth sensitivity (Lemma 8.5). Records without an
	// entity each count as their own entity (contribution 1).
	MaxEntityContribution []int64

	// SecondEntityContribution holds, per cell, the second-largest single-
	// entity contribution — what the classical p%% and (n,k) dominance
	// rules of cell suppression inspect (internal/suppress).
	SecondEntityContribution []int64

	// EntityCount holds, per cell, the number of distinct entities with at
	// least one record in the cell. Cells with exactly one establishment
	// are the ones the Section 5.2 attacks exploit.
	EntityCount []int64
}

// CellEntityCount is one (cell, entity, count) triple of the per-entity
// histogram h(w, c) that input noise infusion perturbs (Section 5.1).
type CellEntityCount struct {
	Cell   int
	Entity int32
	Count  int64
}

// Compute evaluates the query over the table, using the table's
// entity-sorted index (built lazily on first use and reused across
// queries). The result is bit-identical to ComputeReference.
func Compute(t *Table, q *Query) *Marginal {
	return t.Index().Compute(q)
}

// ComputeAll evaluates many queries in one sharded pass over the table's
// entity-sorted index, so a workload of several marginals pays for a
// single scan. Results are positionally aligned with the queries and
// bit-identical to evaluating each query with Compute.
func ComputeAll(t *Table, qs []*Query) []*Marginal {
	if len(qs) == 0 {
		return nil
	}
	return t.Index().ComputeAll(qs)
}

// ComputeDetailed evaluates the query and additionally returns the full
// per-entity histogram, sorted by (cell, entity). The histogram is what
// the SDL baseline perturbs and what the Section 5.2 attack demonstrations
// inspect.
func ComputeDetailed(t *Table, q *Query) (*Marginal, []CellEntityCount) {
	return t.Index().ComputeDetailed(q)
}

// ComputeReference evaluates the query with the scalar hash-map group-by
// engine: one pass over the rows into a per-(cell, entity) map. It is
// retained as the differential-testing oracle for the indexed engine (and
// for benchmarking the index against); production paths use Compute.
func ComputeReference(t *Table, q *Query) *Marginal {
	m, _ := computeReferenceImpl(t, q, false)
	return m
}

// ComputeReferenceDetailed is ComputeReference with the per-entity
// histogram, the oracle for ComputeDetailed.
func ComputeReferenceDetailed(t *Table, q *Query) (*Marginal, []CellEntityCount) {
	return computeReferenceImpl(t, q, true)
}

func computeReferenceImpl(t *Table, q *Query, detailed bool) (*Marginal, []CellEntityCount) {
	if t.Schema() != q.schema {
		panic("table: query compiled against a different schema")
	}
	m := &Marginal{
		Query:                    q,
		Counts:                   make([]int64, q.size),
		MaxEntityContribution:    make([]int64, q.size),
		SecondEntityContribution: make([]int64, q.size),
		EntityCount:              make([]int64, q.size),
	}
	// Per-(cell, entity) counts. Sparse map keyed by cell*width+entity;
	// both factors fit comfortably in int64 for every dataset we generate.
	type pairKey struct {
		cell   int
		entity int32
	}
	perEntity := make(map[pairKey]int64, t.NumRows()/4+16)
	var anonEntity int32 = -1
	for row := 0; row < t.NumRows(); row++ {
		cell := q.KeyForRow(t, row)
		m.Counts[cell]++
		e := t.Entity(row)
		if e < 0 {
			// Entity-less records are each their own entity: use a
			// decreasing synthetic ID so they never merge.
			e = anonEntity
			anonEntity--
		}
		perEntity[pairKey{cell, e}]++
	}
	var hist []CellEntityCount
	if detailed {
		hist = make([]CellEntityCount, 0, len(perEntity))
	}
	for k, c := range perEntity {
		m.EntityCount[k.cell]++
		switch {
		case c > m.MaxEntityContribution[k.cell]:
			m.SecondEntityContribution[k.cell] = m.MaxEntityContribution[k.cell]
			m.MaxEntityContribution[k.cell] = c
		case c > m.SecondEntityContribution[k.cell]:
			m.SecondEntityContribution[k.cell] = c
		}
		if detailed {
			hist = append(hist, CellEntityCount{Cell: k.cell, Entity: k.entity, Count: c})
		}
	}
	if detailed {
		sort.Slice(hist, func(i, j int) bool {
			if hist[i].Cell != hist[j].Cell {
				return hist[i].Cell < hist[j].Cell
			}
			return hist[i].Entity < hist[j].Entity
		})
	}
	return m, hist
}

// Total returns the sum of all cell counts (the table size).
func (m *Marginal) Total() int64 {
	var total int64
	for _, c := range m.Counts {
		total += c
	}
	return total
}

// NonZeroCells returns the number of cells with a positive count.
func (m *Marginal) NonZeroCells() int {
	n := 0
	for _, c := range m.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Count returns the count of the cell with the given key.
func (m *Marginal) Count(cell int) int64 {
	return m.Counts[cell]
}

// Float64Counts returns the counts as float64s, the form the noise
// mechanisms and error metrics consume.
func (m *Marginal) Float64Counts() []float64 {
	out := make([]float64, len(m.Counts))
	for i, c := range m.Counts {
		out[i] = float64(c)
	}
	return out
}
