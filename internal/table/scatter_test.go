package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential tests of the sort-free scatter kernel against the scalar
// hash-map oracle, over adversarial table shapes the uniform random
// generator in index_test.go rarely produces: all-anonymous tables,
// a single giant entity, empty marginals, and skewed entity-size mixes.

// wideSchema has a larger cell space than testSchema so some marginals
// stay mostly empty.
func wideSchema() *Schema {
	places := make([]string, 40)
	for i := range places {
		places[i] = fmt.Sprintf("p%02d", i)
	}
	inds := make([]string, 12)
	for i := range inds {
		inds[i] = fmt.Sprintf("i%02d", i)
	}
	return NewSchema(
		NewDomain("place", places...),
		NewDomain("industry", inds...),
		NewDomain("sex", "M", "F"),
		NewDomain("edu", "a", "b", "c", "d"),
	)
}

// shapedTable builds a table whose entity structure follows the named
// adversarial shape.
func shapedTable(rng *rand.Rand, s *Schema, shape string, rows int) *Table {
	tab := New(s)
	appendRandom := func(entity int32) {
		codes := make([]int, s.NumAttrs())
		for a := range codes {
			codes[a] = rng.Intn(s.Attr(a).Size())
		}
		tab.AppendRow(entity, codes...)
	}
	for i := 0; i < rows; i++ {
		var entity int32
		switch shape {
		case "all-anonymous":
			entity = -1
		case "single-giant":
			entity = 0
		case "giant-plus-dust":
			// One entity owns ~half the rows; the rest are singletons.
			if rng.Intn(2) == 0 {
				entity = 0
			} else {
				entity = int32(1 + i)
			}
		case "few-heavy":
			entity = int32(rng.Intn(3))
		case "mixed":
			entity = int32(rng.Intn(rows/4 + 1))
			if rng.Intn(8) == 0 {
				entity = -1
			}
		default:
			panic("unknown shape " + shape)
		}
		appendRandom(entity)
	}
	return tab
}

// randomAttrSubset returns a random subset of the schema's attribute
// names in random order (possibly empty: the q∅ marginal).
func randomAttrSubset(rng *rand.Rand, s *Schema) []string {
	var names []string
	for a := 0; a < s.NumAttrs(); a++ {
		if rng.Intn(2) == 0 {
			names = append(names, s.Attr(a).Name)
		}
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	return names
}

// TestScatterKernelPropertyDifferential is the satellite property test:
// random tables × random attribute subsets, every statistic (counts,
// x_v, second contribution, entity counts) and the detailed histogram
// must match the scalar oracle exactly.
func TestScatterKernelPropertyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	shapes := []string{"all-anonymous", "single-giant", "giant-plus-dust", "few-heavy", "mixed"}
	for _, s := range []*Schema{testSchema(), wideSchema()} {
		for _, shape := range shapes {
			for _, rows := range []int{0, 1, 2, 33, 700} {
				tab := shapedTable(rng, s, shape, rows)
				for trial := 0; trial < 4; trial++ {
					names := randomAttrSubset(rng, s)
					q := MustNewQuery(s, names...)
					label := fmt.Sprintf("shape=%s rows=%d attrs=%v", shape, rows, names)
					gotM, gotH := ComputeDetailed(tab, q)
					wantM, wantH := ComputeReferenceDetailed(tab, q)
					marginalsEqual(t, gotM, wantM, label)
					if len(gotH) != len(wantH) {
						t.Fatalf("%s: histogram length %d, want %d", label, len(gotH), len(wantH))
					}
					for i := range gotH {
						if gotH[i] != wantH[i] {
							t.Fatalf("%s: histogram[%d] = %+v, want %+v", label, i, gotH[i], wantH[i])
						}
					}
				}
			}
		}
	}
}

// TestScatterKernelEmptyMarginal pins the empty-marginal edge: a query
// whose cells are all zero (no rows land anywhere near them).
func TestScatterKernelEmptyMarginal(t *testing.T) {
	s := wideSchema()
	tab := New(s)
	// Every row in place p00, industry i00: the (place, industry)
	// marginal has exactly one populated cell, everything else empty.
	for i := 0; i < 50; i++ {
		tab.AppendRow(int32(i%3), 0, 0, i%2, i%4)
	}
	q := MustNewQuery(s, "place", "industry")
	marginalsEqual(t, Compute(tab, q), ComputeReference(tab, q), "one-hot")
	if got := Compute(tab, q).NonZeroCells(); got != 1 {
		t.Fatalf("NonZeroCells = %d, want 1", got)
	}
}

// FuzzScatterKernelDifferential drives the kernel from raw bytes: each
// byte pair becomes (entity selector, row codes), and the query is
// chosen from the low bits of the first byte. The invariant is always
// the same — scatter kernel == scalar oracle, bit for bit.
func FuzzScatterKernelDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x80, 0x80, 0x80, 0x80, 0x01, 0x02})
	f.Add([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00, 0x42})
	queries := [][]string{{}, {"place"}, {"sex"}, {"place", "industry"}, {"industry", "place", "sex"}}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := testSchema()
		tab := New(s)
		for i := 0; i+1 < len(data); i += 2 {
			ent := int32(data[i]%7) - 1 // −1 (anonymous) through 5
			c := int(data[i+1])
			tab.AppendRow(ent,
				c%s.Attr(0).Size(),
				(c/4)%s.Attr(1).Size(),
				(c/8)%s.Attr(2).Size())
		}
		qsel := 0
		if len(data) > 0 {
			qsel = int(data[0]) % len(queries)
		}
		q := MustNewQuery(s, queries[qsel]...)
		gotM, gotH := ComputeDetailed(tab, q)
		wantM, wantH := ComputeReferenceDetailed(tab, q)
		marginalsEqual(t, gotM, wantM, "fuzz")
		if len(gotH) != len(wantH) {
			t.Fatalf("histogram length %d, want %d", len(gotH), len(wantH))
		}
		for i := range gotH {
			if gotH[i] != wantH[i] {
				t.Fatalf("histogram[%d] = %+v, want %+v", i, gotH[i], wantH[i])
			}
		}
	})
}
