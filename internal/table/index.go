package table

import (
	"runtime"
	"sort"
	"sync"
)

// Index is an entity-sorted view of a table, built once and reused across
// marginal queries. Rows are pre-grouped by entity (establishment), so a
// query evaluates as one pass over entity groups: within a group, the
// rows' cell keys are scattered into a dense per-worker accumulator
// (scratch[key]++ plus a touched-cell list), and each touched cell is
// exactly one (cell, entity) contribution — the per-entity histogram
// value h(w, c) from which the cell count, x_v (largest single-entity
// contribution), second-largest contribution and distinct-entity count
// all fall out without any hash map or per-group sort. See DESIGN.md §6
// for the scatter-accumulator layout and the touched-list reset trick.
//
// Entity-less rows (entity −1) are each their own singleton group, with
// synthetic IDs −1, −2, … assigned in row order so that the detailed
// histogram is identical to the one the reference scalar engine produces.
//
// Group spans are sharded across workers at query time; each worker
// accumulates partial per-cell statistics that are merged in a fixed
// shard order, so the result is bit-identical at every worker count.
// Per-worker scan state (accumulators, scatter scratch, touched lists)
// is pooled on the index, so steady-state queries allocate only their
// result vectors.
type Index struct {
	t *Table
	// n is the row count the index was built at; a Table invalidates a
	// cached index by comparing this against its current row count.
	n int
	// rows lists every row ID, grouped by entity. A nil rows means the
	// identity permutation: the table itself is entity-sorted (as every
	// epoch snapshot MergeIndex builds for is), so index position p IS
	// table row p and the materialized columns alias the table's own —
	// no per-attribute gather at all.
	rows []int32
	// starts delimits the groups: group g spans
	// rows[starts[g]:starts[g+1]].
	starts []int32
	// entities holds each group's entity ID (synthetic negatives for
	// entity-less rows).
	entities []int32
	// cols are the table's code columns re-materialized in index row
	// order (cols[a].data[p] == t.cols[a][rows[p]]), so the scan kernel
	// reads every column strictly sequentially instead of gathering
	// through the row permutation. Materialization is lazy, per column,
	// on the first query that touches the attribute, and each column has
	// its own once-guard: a first-touch gather of one attribute (an O(n)
	// pass) never serializes workers resolving a different, already
	// materialized attribute. A throwaway index — the node-DP baseline
	// computes one marginal over a freshly truncated table per release —
	// only pays the gather for the columns it actually queries.
	cols []lazyCol
	// packMu guards packs, the per-plan cache of bit-packed composite-key
	// columns (see pack.go). The map is tiny (one entry per distinct
	// canonical attribute set ever queried); builds happen outside the
	// lock under each entry's own once-guard, mirroring cols.
	packMu sync.Mutex
	packs  map[string]*packedPlan
	// noPack disables the packed fast path (tests use it to force the
	// unpacked kernel as the differential oracle).
	noPack bool
	// maxGroup is the largest group size, for sizing per-worker scratch.
	maxGroup int

	// scratch pools *scanScratch values across queries. Pool invariant:
	// a scratch's cells array is all-zero while in the pool (every scan
	// resets exactly the entries it touched), so reuse never needs an
	// O(size) clear of the scatter array.
	scratch sync.Pool
}

// lazyCol is one lazily materialized index-order column: data is built
// (or aliased, in identity mode) under the column's own once-guard.
type lazyCol struct {
	once sync.Once
	data []uint16
}

// BuildIndex constructs the entity-sorted index for the table's current
// rows. Most callers want Table.Index, which builds lazily and caches.
//
// Tables whose rows are already grouped by non-decreasing entity with no
// entity-less rows — as chunk-streamed ingest appends them — take the
// streaming path: one chunked pass over the entity column derives the
// group boundaries directly and the index is built in identity mode
// (rows == nil), so peak memory is the boundary arrays alone — no O(n)
// row permutation, no counting-sort offsets, and no per-attribute
// gathers ever (identity-mode columns alias the table's).
func BuildIndex(t *Table) *Index {
	if ix := buildSortedIndex(t); ix != nil {
		return ix
	}
	n := t.NumRows()
	numEnt := t.NumEntities()
	// Counting sort over entity IDs. Entity-less rows are appended after
	// the real groups, in row order, one singleton group each.
	counts := make([]int32, numEnt)
	anon := 0
	for _, e := range t.entities {
		if e < 0 {
			anon++
		} else {
			counts[e]++
		}
	}
	ix := &Index{t: t, n: n, rows: make([]int32, n)}
	numGroups := anon
	for _, c := range counts {
		if c > 0 {
			numGroups++
		}
	}
	ix.starts = make([]int32, 0, numGroups+1)
	ix.entities = make([]int32, 0, numGroups)
	// offsets[e] is where entity e's rows begin in ix.rows.
	offsets := make([]int32, numEnt)
	var pos int32
	for e, c := range counts {
		if c == 0 {
			continue
		}
		offsets[e] = pos
		ix.starts = append(ix.starts, pos)
		ix.entities = append(ix.entities, int32(e))
		if int(c) > ix.maxGroup {
			ix.maxGroup = int(c)
		}
		pos += c
	}
	anonPos := pos
	var nextAnon int32 = -1
	for row, e := range t.entities {
		if e < 0 {
			ix.rows[anonPos] = int32(row)
			ix.starts = append(ix.starts, anonPos)
			ix.entities = append(ix.entities, nextAnon)
			nextAnon--
			anonPos++
			continue
		}
		ix.rows[offsets[e]] = int32(row)
		offsets[e]++
	}
	if anon > 0 && ix.maxGroup == 0 {
		ix.maxGroup = 1
	}
	ix.starts = append(ix.starts, int32(n))
	ix.cols = make([]lazyCol, len(t.cols))
	return ix
}

// sortedScanChunk is the span size of the streamed entity-column pass in
// buildSortedIndex; it only bounds the scan loop's working set, never an
// allocation, so its exact value is immaterial to correctness.
const sortedScanChunk = 1 << 16

// buildSortedIndex returns an identity-mode index when the table's rows
// are already grouped by non-decreasing, non-negative entity, streaming
// the entity column in fixed-size chunks. It returns nil — and BuildIndex
// falls back to the counting sort — at the first out-of-order or
// entity-less row.
func buildSortedIndex(t *Table) *Index {
	ents := t.entities
	n := t.NumRows()
	ix := &Index{t: t, n: n}
	if n == 0 {
		ix.starts = []int32{0}
		ix.cols = make([]lazyCol, len(t.cols))
		return ix
	}
	prev := int32(-1)
	groupStart := 0
	for lo := 0; lo < n; lo += sortedScanChunk {
		hi := min(lo+sortedScanChunk, n)
		for p := lo; p < hi; p++ {
			e := ents[p]
			if e < 0 || e < prev {
				return nil
			}
			if e != prev {
				if p > groupStart {
					ix.addSortedGroup(prev, groupStart, p)
				}
				prev = e
				groupStart = p
			}
		}
	}
	ix.addSortedGroup(prev, groupStart, n)
	ix.starts = append(ix.starts, int32(n))
	ix.cols = make([]lazyCol, len(t.cols))
	return ix
}

func (ix *Index) addSortedGroup(e int32, lo, hi int) {
	ix.starts = append(ix.starts, int32(lo))
	ix.entities = append(ix.entities, e)
	if hi-lo > ix.maxGroup {
		ix.maxGroup = hi - lo
	}
}

// col returns attribute a's code column in index row order,
// materializing it on first use. The one-time gather through the row
// permutation (at most doubling the column's uint16 storage) is what
// lets every subsequent scan of the attribute read strictly
// sequentially — the dominant cost of the kernel. An identity-mode
// index (rows == nil) skips the gather entirely and aliases the
// table's column, which is already in index order.
func (ix *Index) col(a int) []uint16 {
	lc := &ix.cols[a]
	lc.once.Do(func() {
		src := ix.t.cols[a]
		if ix.rows == nil {
			lc.data = src
			return
		}
		re := make([]uint16, ix.n)
		for p, row := range ix.rows {
			re[p] = src[row]
		}
		lc.data = re
	})
	return lc.data
}

// NumGroups returns the number of entity groups (singleton groups for
// entity-less rows included).
func (ix *Index) NumGroups() int { return len(ix.entities) }

// cellStats is one cell's accumulated statistics. The four counters live
// in one 32-byte struct — half a cache line — so a fold touches one line
// where four parallel arrays would touch four; at paper scale the
// accumulator overflows L1 and the fold's random accesses dominate the
// scan, making this layout the difference between one and four L2 hits
// per touched cell.
type cellStats struct {
	count    int64
	max      int64
	second   int64
	entities int64
}

// partial is one worker's per-cell accumulator for one query.
type partial struct {
	stats []cellStats
	hist  []CellEntityCount
}

// reset prepares a (possibly reused) partial for a query of the given
// size. The stats array is grown or zeroed; the detailed histogram,
// which grows with the number of (cell, entity) runs — bounded by the
// shard's row count, not by the cell count — is sized from rowsHint on
// first detailed use and keeps its capacity across reuses. The
// non-detailed path carries no histogram at all.
func (p *partial) reset(size int, detailed bool, rowsHint int) {
	if cap(p.stats) < size {
		p.stats = make([]cellStats, size)
	} else {
		p.stats = p.stats[:size]
		clear(p.stats)
	}
	if detailed {
		if p.hist == nil {
			p.hist = make([]CellEntityCount, 0, rowsHint)
		}
		p.hist = p.hist[:0]
	} else {
		p.hist = nil
	}
}

// addRun folds one (cell, entity, count) contribution into the partial.
func (p *partial) addRun(cell int, entity int32, c int64, detailed bool) {
	st := &p.stats[cell]
	st.count += c
	st.entities++
	switch {
	case c > st.max:
		st.second = st.max
		st.max = c
	case c > st.second:
		st.second = c
	}
	if detailed {
		p.hist = append(p.hist, CellEntityCount{Cell: cell, Entity: entity, Count: c})
	}
}

// merge folds another worker's partial into p. Sums are order-free; the
// top-two contributions merge as the two largest of the four candidates.
func (p *partial) merge(o *partial) {
	for i := range p.stats {
		a, b := &p.stats[i], &o.stats[i]
		a.count += b.count
		a.entities += b.entities
		hi, lo := b.max, b.second
		if hi > a.max {
			a.second = max64(a.max, lo)
			a.max = hi
		} else if hi > a.second {
			a.second = hi
		}
		if lo > a.second {
			a.second = lo
		}
	}
	p.hist = append(p.hist, o.hist...)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// scanScratch is one worker's pooled scan state: the scatter accumulator
// and touched list of the sort-free kernel, plus the per-query partials.
// Ownership rule: a scratch is checked out of the index's pool for the
// duration of one shard scan (plus the fixed-order merge for shard 0's
// scratch) and returned before computeQueries returns; nothing that
// escapes to the caller may alias its storage — results are copied out.
type scanScratch struct {
	// cells is the scatter array, indexed by cell key. All-zero outside
	// the group currently being folded (see the Index.scratch invariant).
	// int32 halves the array's cache footprint vs int64; a single group's
	// per-cell count is bounded by the group's row count, which int32
	// covers for any table addressable by the int32 row IDs.
	cells []int32
	// touched records which cells the current (group, query) hit, so the
	// reset after folding is O(touched), not O(cells).
	touched []int
	// ps[k] accumulates query k's statistics for this worker's shard.
	ps []*partial
}

// checkout prepares a scratch for len(qs) queries of scatter width
// maxSize over a shard of rows rows.
func (sc *scanScratch) checkout(qs []*Query, maxSize int, detailed bool, rows, maxGroup int) {
	if cap(sc.cells) < maxSize {
		sc.cells = make([]int32, maxSize) // fresh ⇒ all-zero, preserving the pool invariant
	} else {
		sc.cells = sc.cells[:maxSize]
	}
	if cap(sc.touched) < maxGroup {
		sc.touched = make([]int, maxGroup)
	} else {
		sc.touched = sc.touched[:maxGroup]
	}
	for len(sc.ps) < len(qs) {
		sc.ps = append(sc.ps, &partial{})
	}
	sc.ps = sc.ps[:len(qs)]
	for k, q := range qs {
		sc.ps[k].reset(q.size, detailed, rows)
	}
}

// getScratch checks a scratch out of the pool (or creates one).
func (ix *Index) getScratch(qs []*Query, maxSize int, detailed bool, rows int) *scanScratch {
	sc, _ := ix.scratch.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{}
	}
	sc.checkout(qs, maxSize, detailed, rows, ix.maxGroup)
	return sc
}

// computeQueries evaluates the queries in one sharded pass over the
// entity groups. All queries share the pass: a worker evaluates every
// query over its shard (streaming each query's materialized columns
// sequentially) before the fixed-order merge, so a workload of several
// marginals pays one shard assignment and one scratch checkout.
func (ix *Index) computeQueries(qs []*Query, detailed bool) ([]*Marginal, [][]CellEntityCount) {
	maxSize := 0
	for _, q := range qs {
		if ix.t.Schema() != q.schema {
			panic("table: query compiled against a different schema")
		}
		if q.size > maxSize {
			maxSize = q.size
		}
	}
	// Resolve each query's scan plan once. Packable queries read the
	// bit-packed composite-key column (built lazily per canonical
	// attribute set, see pack.go); the rest stream the per-attribute
	// index-order materializations. The resolved views are read-only and
	// shared by every worker.
	plans := make([]scanPlan, len(qs))
	for k, q := range qs {
		if pc := ix.packedFor(q); pc != nil {
			plans[k].pc = pc
			continue
		}
		cols := make([][]uint16, len(q.attrs))
		for i, a := range q.attrs {
			cols[i] = ix.col(a)
		}
		plans[k].cols = cols
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > ix.NumGroups() {
		workers = ix.NumGroups()
	}
	if workers < 1 {
		workers = 1
	}
	shards := ix.shardGroups(workers)
	states := make([]*scanScratch, len(shards))
	if len(shards) == 1 {
		// Single shard: scan inline — no goroutine, no synchronization.
		states[0] = ix.getScratch(qs, maxSize, detailed, ix.shardRows(shards[0]))
		ix.scanShard(shards[0][0], shards[0][1], qs, plans, states[0], detailed)
	} else {
		var wg sync.WaitGroup
		for w := range shards {
			states[w] = ix.getScratch(qs, maxSize, detailed, ix.shardRows(shards[w]))
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ix.scanShard(shards[w][0], shards[w][1], qs, plans, states[w], detailed)
			}(w)
		}
		wg.Wait()
	}

	// Merge shards in fixed order into shard 0's accumulators, then copy
	// the results out so every pooled buffer can be returned.
	acc := states[0]
	for w := 1; w < len(states); w++ {
		for k := range qs {
			acc.ps[k].merge(states[w].ps[k])
		}
		ix.scratch.Put(states[w])
	}
	outM := make([]*Marginal, len(qs))
	var outH [][]CellEntityCount
	if detailed {
		outH = make([][]CellEntityCount, len(qs))
	}
	for k, q := range qs {
		p := acc.ps[k]
		m := &Marginal{
			Query:                    q,
			Counts:                   make([]int64, q.size),
			MaxEntityContribution:    make([]int64, q.size),
			SecondEntityContribution: make([]int64, q.size),
			EntityCount:              make([]int64, q.size),
		}
		for i := range p.stats {
			st := &p.stats[i]
			m.Counts[i] = st.count
			m.MaxEntityContribution[i] = st.max
			m.SecondEntityContribution[i] = st.second
			m.EntityCount[i] = st.entities
		}
		outM[k] = m
		if detailed {
			hist := append([]CellEntityCount(nil), p.hist...)
			sort.Slice(hist, func(i, j int) bool {
				if hist[i].Cell != hist[j].Cell {
					return hist[i].Cell < hist[j].Cell
				}
				return hist[i].Entity < hist[j].Entity
			})
			outH[k] = hist
		}
	}
	ix.scratch.Put(acc)
	return outM, outH
}

// shardRows returns the number of rows the group span covers.
func (ix *Index) shardRows(shard [2]int) int {
	return int(ix.starts[shard[1]] - ix.starts[shard[0]])
}

// shardGroups splits the group range into contiguous spans of roughly
// equal row weight. Returns [lo, hi) group spans.
func (ix *Index) shardGroups(workers int) [][2]int {
	numGroups := ix.NumGroups()
	if workers <= 1 || numGroups <= 1 {
		return [][2]int{{0, numGroups}}
	}
	target := (ix.n + workers - 1) / workers
	var shards [][2]int
	lo := 0
	for lo < numGroups && len(shards) < workers-1 {
		hi := lo
		rows := 0
		for hi < numGroups && rows < target {
			rows += int(ix.starts[hi+1] - ix.starts[hi])
			hi++
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	if lo < numGroups {
		shards = append(shards, [2]int{lo, numGroups})
	}
	return shards
}

// scanPlan is one query's resolved scan inputs: either the bit-packed
// composite-key column (pc != nil, the fast path) or the per-attribute
// index-order column views for the unpacked fallback kernel.
type scanPlan struct {
	cols [][]uint16
	pc   *packedColumn
}

// scanShard accumulates the groups [gLo, gHi) into the scratch's
// per-query partials with the sort-free scatter kernel: each group is a
// single O(g) pass that counts cell keys into the scatch array, records
// first touches, then folds and resets exactly the touched cells. Fold
// order is first-touch order — sums, top-two tracking and entity counts
// are order-free, and the detailed histogram is sorted afterwards, so
// the results are identical to the sorted-runs kernel this replaces.
// Packed and unpacked plans visit rows in the same order and compute the
// same mixed-radix keys, so the two kernels are bit-identical.
func (ix *Index) scanShard(gLo, gHi int, qs []*Query, plans []scanPlan, sc *scanScratch, detailed bool) {
	cells, touched := sc.cells, sc.touched
	for k, q := range qs {
		p := sc.ps[k]
		if pc := plans[k].pc; pc != nil {
			for g := gLo; g < gHi; g++ {
				lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
				entity := ix.entities[g]
				if hi-lo == 1 {
					p.addRun(pc.key(lo), entity, 1, detailed)
					continue
				}
				pc.foldRuns(p, lo, hi, entity, detailed)
			}
			continue
		}
		cols := plans[k].cols
		for g := gLo; g < gHi; g++ {
			lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
			entity := ix.entities[g]
			if hi-lo == 1 {
				// Singleton group (entity-less rows, one-worker shops):
				// one run of count 1, no scatter needed.
				p.addRun(keyAt(cols, q.radices, lo), entity, 1, detailed)
				continue
			}
			nt := scatterGroup(cells, touched, cols, q.radices, lo, hi)
			for _, key := range touched[:nt] {
				p.addRun(key, entity, int64(cells[key]), detailed)
				cells[key] = 0
			}
		}
	}
}

// keyAt computes the cell key of index position p (mixed-radix over the
// query's columns).
func keyAt(cols [][]uint16, radices []int, p int) int {
	key := 0
	for j, col := range cols {
		key = key*radices[j] + int(col[p])
	}
	return key
}

// scatterGroup counts the cell keys of index positions [lo, hi) into the
// scatter array, recording each first touch, and returns the number of
// touched cells. The loops are specialized by query arity so the
// per-row key computation is fully unrolled for the common marginal
// shapes (the 0-ary body folds the whole group into cell 0 directly).
func scatterGroup(cells []int32, touched []int, cols [][]uint16, radices []int, lo, hi int) int {
	nt := 0
	note := func(key int) {
		if cells[key] == 0 {
			touched[nt] = key
			nt++
		}
		cells[key]++
	}
	switch len(cols) {
	case 0:
		cells[0] = int32(hi - lo)
		touched[0] = 0
		return 1
	case 1:
		c0 := cols[0][lo:hi]
		for i := range c0 {
			note(int(c0[i]))
		}
	case 2:
		r1 := radices[1]
		c0, c1 := cols[0][lo:hi], cols[1][lo:hi]
		for i := range c0 {
			note(int(c0[i])*r1 + int(c1[i]))
		}
	case 3:
		r1, r2 := radices[1], radices[2]
		c0, c1, c2 := cols[0][lo:hi], cols[1][lo:hi], cols[2][lo:hi]
		for i := range c0 {
			note((int(c0[i])*r1+int(c1[i]))*r2 + int(c2[i]))
		}
	default:
		for p := lo; p < hi; p++ {
			note(keyAt(cols, radices, p))
		}
	}
	return nt
}

// Compute evaluates one query over the index.
func (ix *Index) Compute(q *Query) *Marginal {
	qs := [1]*Query{q}
	ms, _ := ix.computeQueries(qs[:], false)
	return ms[0]
}

// ComputeAll evaluates many queries in one sharded pass over the index.
func (ix *Index) ComputeAll(qs []*Query) []*Marginal {
	if len(qs) == 0 {
		return nil
	}
	ms, _ := ix.computeQueries(qs, false)
	return ms
}

// ComputeDetailed evaluates one query and returns the per-entity
// histogram sorted by (cell, entity).
func (ix *Index) ComputeDetailed(q *Query) (*Marginal, []CellEntityCount) {
	qs := [1]*Query{q}
	ms, hs := ix.computeQueries(qs[:], true)
	return ms[0], hs[0]
}
