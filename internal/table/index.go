package table

import (
	"runtime"
	"sort"
	"sync"
)

// Index is an entity-sorted view of a table, built once and reused across
// marginal queries. Rows are pre-grouped by entity (establishment), so a
// query evaluates as one pass over entity groups: within a group, the
// rows' cell keys are scattered into a dense per-worker accumulator
// (scratch[key]++ plus a touched-cell list), and each touched cell is
// exactly one (cell, entity) contribution — the per-entity histogram
// value h(w, c) from which the cell count, x_v (largest single-entity
// contribution), second-largest contribution and distinct-entity count
// all fall out without any hash map or per-group sort. See DESIGN.md §6
// for the scatter-accumulator layout and the touched-list reset trick.
//
// Entity-less rows (entity −1) are each their own singleton group, with
// synthetic IDs −1, −2, … assigned in row order so that the detailed
// histogram is identical to the one the reference scalar engine produces.
//
// Group spans are sharded across workers at query time; each worker
// accumulates partial per-cell statistics that are merged in a fixed
// shard order, so the result is bit-identical at every worker count.
// Per-worker scan state (accumulators, scatter scratch, touched lists)
// is pooled on the index, so steady-state queries allocate only their
// result vectors.
type Index struct {
	t *Table
	// n is the row count the index was built at; a Table invalidates a
	// cached index by comparing this against its current row count.
	n int
	// rows lists every row ID, grouped by entity. A nil rows means the
	// identity permutation: the table itself is entity-sorted (as every
	// epoch snapshot MergeIndex builds for is), so index position p IS
	// table row p and the materialized columns alias the table's own —
	// no per-attribute gather at all.
	rows []int32
	// starts delimits the groups: group g spans
	// rows[starts[g]:starts[g+1]].
	starts []int32
	// entities holds each group's entity ID (synthetic negatives for
	// entity-less rows).
	entities []int32
	// cols are the table's code columns re-materialized in index row
	// order (cols[a][p] == t.cols[a][rows[p]]), so the scan kernel reads
	// every column strictly sequentially instead of gathering through
	// the row permutation. Materialization is lazy, per column, on the
	// first query that touches the attribute (guarded by colsMu): a
	// throwaway index — the node-DP baseline computes one marginal over
	// a freshly truncated table per release — only pays the gather for
	// the columns it actually queries.
	colsMu sync.Mutex
	cols   [][]uint16
	// maxGroup is the largest group size, for sizing per-worker scratch.
	maxGroup int

	// scratch pools *scanScratch values across queries. Pool invariant:
	// a scratch's cells array is all-zero while in the pool (every scan
	// resets exactly the entries it touched), so reuse never needs an
	// O(size) clear of the scatter array.
	scratch sync.Pool
}

// BuildIndex constructs the entity-sorted index for the table's current
// rows. Most callers want Table.Index, which builds lazily and caches.
func BuildIndex(t *Table) *Index {
	n := t.NumRows()
	numEnt := t.NumEntities()
	// Counting sort over entity IDs. Entity-less rows are appended after
	// the real groups, in row order, one singleton group each.
	counts := make([]int32, numEnt)
	anon := 0
	for _, e := range t.entities {
		if e < 0 {
			anon++
		} else {
			counts[e]++
		}
	}
	ix := &Index{t: t, n: n, rows: make([]int32, n)}
	numGroups := anon
	for _, c := range counts {
		if c > 0 {
			numGroups++
		}
	}
	ix.starts = make([]int32, 0, numGroups+1)
	ix.entities = make([]int32, 0, numGroups)
	// offsets[e] is where entity e's rows begin in ix.rows.
	offsets := make([]int32, numEnt)
	var pos int32
	for e, c := range counts {
		if c == 0 {
			continue
		}
		offsets[e] = pos
		ix.starts = append(ix.starts, pos)
		ix.entities = append(ix.entities, int32(e))
		if int(c) > ix.maxGroup {
			ix.maxGroup = int(c)
		}
		pos += c
	}
	anonPos := pos
	var nextAnon int32 = -1
	for row, e := range t.entities {
		if e < 0 {
			ix.rows[anonPos] = int32(row)
			ix.starts = append(ix.starts, anonPos)
			ix.entities = append(ix.entities, nextAnon)
			nextAnon--
			anonPos++
			continue
		}
		ix.rows[offsets[e]] = int32(row)
		offsets[e]++
	}
	if anon > 0 && ix.maxGroup == 0 {
		ix.maxGroup = 1
	}
	ix.starts = append(ix.starts, int32(n))
	ix.cols = make([][]uint16, len(t.cols))
	return ix
}

// col returns attribute a's code column in index row order,
// materializing it on first use. The one-time gather through the row
// permutation (at most doubling the column's uint16 storage) is what
// lets every subsequent scan of the attribute read strictly
// sequentially — the dominant cost of the kernel. An identity-mode
// index (rows == nil) skips the gather entirely and aliases the
// table's column, which is already in index order.
func (ix *Index) col(a int) []uint16 {
	ix.colsMu.Lock()
	defer ix.colsMu.Unlock()
	if ix.cols[a] == nil {
		src := ix.t.cols[a]
		if ix.rows == nil {
			ix.cols[a] = src
		} else {
			re := make([]uint16, ix.n)
			for p, row := range ix.rows {
				re[p] = src[row]
			}
			ix.cols[a] = re
		}
	}
	return ix.cols[a]
}

// NumGroups returns the number of entity groups (singleton groups for
// entity-less rows included).
func (ix *Index) NumGroups() int { return len(ix.entities) }

// partial is one worker's per-cell accumulator for one query.
type partial struct {
	counts   []int64
	max      []int64
	second   []int64
	entities []int64
	hist     []CellEntityCount
}

// reset prepares a (possibly reused) partial for a query of the given
// size. Accumulator arrays are grown or zeroed; the detailed histogram,
// which grows with the number of (cell, entity) runs — bounded by the
// shard's row count, not by the cell count — is sized from rowsHint on
// first detailed use and keeps its capacity across reuses. The
// non-detailed path carries no histogram at all.
func (p *partial) reset(size int, detailed bool, rowsHint int) {
	p.counts = resizeZeroed(p.counts, size)
	p.max = resizeZeroed(p.max, size)
	p.second = resizeZeroed(p.second, size)
	p.entities = resizeZeroed(p.entities, size)
	if detailed {
		if p.hist == nil {
			p.hist = make([]CellEntityCount, 0, rowsHint)
		}
		p.hist = p.hist[:0]
	} else {
		p.hist = nil
	}
}

// resizeZeroed returns an all-zero int64 slice of the given length,
// reusing buf's storage when it is large enough.
func resizeZeroed(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// addRun folds one (cell, entity, count) contribution into the partial.
func (p *partial) addRun(cell int, entity int32, c int64, detailed bool) {
	p.counts[cell] += c
	p.entities[cell]++
	switch {
	case c > p.max[cell]:
		p.second[cell] = p.max[cell]
		p.max[cell] = c
	case c > p.second[cell]:
		p.second[cell] = c
	}
	if detailed {
		p.hist = append(p.hist, CellEntityCount{Cell: cell, Entity: entity, Count: c})
	}
}

// merge folds another worker's partial into p. Sums are order-free; the
// top-two contributions merge as the two largest of the four candidates.
func (p *partial) merge(o *partial) {
	for i := range p.counts {
		p.counts[i] += o.counts[i]
		p.entities[i] += o.entities[i]
		hi, lo := o.max[i], o.second[i]
		if hi > p.max[i] {
			p.second[i] = max64(p.max[i], lo)
			p.max[i] = hi
		} else if hi > p.second[i] {
			p.second[i] = hi
		}
		if lo > p.second[i] {
			p.second[i] = lo
		}
	}
	p.hist = append(p.hist, o.hist...)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// scanScratch is one worker's pooled scan state: the scatter accumulator
// and touched list of the sort-free kernel, plus the per-query partials.
// Ownership rule: a scratch is checked out of the index's pool for the
// duration of one shard scan (plus the fixed-order merge for shard 0's
// scratch) and returned before computeQueries returns; nothing that
// escapes to the caller may alias its storage — results are copied out.
type scanScratch struct {
	// cells is the scatter array, indexed by cell key. All-zero outside
	// the group currently being folded (see the Index.scratch invariant).
	cells []int64
	// touched records which cells the current (group, query) hit, so the
	// reset after folding is O(touched), not O(cells).
	touched []int
	// ps[k] accumulates query k's statistics for this worker's shard.
	ps []*partial
}

// checkout prepares a scratch for len(qs) queries of scatter width
// maxSize over a shard of rows rows.
func (sc *scanScratch) checkout(qs []*Query, maxSize int, detailed bool, rows, maxGroup int) {
	if cap(sc.cells) < maxSize {
		sc.cells = make([]int64, maxSize) // fresh ⇒ all-zero, preserving the pool invariant
	} else {
		sc.cells = sc.cells[:maxSize]
	}
	if cap(sc.touched) < maxGroup {
		sc.touched = make([]int, maxGroup)
	} else {
		sc.touched = sc.touched[:maxGroup]
	}
	for len(sc.ps) < len(qs) {
		sc.ps = append(sc.ps, &partial{})
	}
	sc.ps = sc.ps[:len(qs)]
	for k, q := range qs {
		sc.ps[k].reset(q.size, detailed, rows)
	}
}

// getScratch checks a scratch out of the pool (or creates one).
func (ix *Index) getScratch(qs []*Query, maxSize int, detailed bool, rows int) *scanScratch {
	sc, _ := ix.scratch.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{}
	}
	sc.checkout(qs, maxSize, detailed, rows, ix.maxGroup)
	return sc
}

// computeQueries evaluates the queries in one sharded pass over the
// entity groups. All queries share the pass: a worker evaluates every
// query over its shard (streaming each query's materialized columns
// sequentially) before the fixed-order merge, so a workload of several
// marginals pays one shard assignment and one scratch checkout.
func (ix *Index) computeQueries(qs []*Query, detailed bool) ([]*Marginal, [][]CellEntityCount) {
	maxSize := 0
	for _, q := range qs {
		if ix.t.Schema() != q.schema {
			panic("table: query compiled against a different schema")
		}
		if q.size > maxSize {
			maxSize = q.size
		}
	}
	// Resolve each query's columns once, against the index-ordered
	// materialization (built lazily per attribute), so the scan reads
	// raw code slices sequentially. The resolved views are read-only
	// and shared by every worker.
	qcols := make([][][]uint16, len(qs))
	for k, q := range qs {
		qcols[k] = make([][]uint16, len(q.attrs))
		for i, a := range q.attrs {
			qcols[k][i] = ix.col(a)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > ix.NumGroups() {
		workers = ix.NumGroups()
	}
	if workers < 1 {
		workers = 1
	}
	shards := ix.shardGroups(workers)
	states := make([]*scanScratch, len(shards))
	if len(shards) == 1 {
		// Single shard: scan inline — no goroutine, no synchronization.
		states[0] = ix.getScratch(qs, maxSize, detailed, ix.shardRows(shards[0]))
		ix.scanShard(shards[0][0], shards[0][1], qs, qcols, states[0], detailed)
	} else {
		var wg sync.WaitGroup
		for w := range shards {
			states[w] = ix.getScratch(qs, maxSize, detailed, ix.shardRows(shards[w]))
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ix.scanShard(shards[w][0], shards[w][1], qs, qcols, states[w], detailed)
			}(w)
		}
		wg.Wait()
	}

	// Merge shards in fixed order into shard 0's accumulators, then copy
	// the results out so every pooled buffer can be returned.
	acc := states[0]
	for w := 1; w < len(states); w++ {
		for k := range qs {
			acc.ps[k].merge(states[w].ps[k])
		}
		ix.scratch.Put(states[w])
	}
	outM := make([]*Marginal, len(qs))
	var outH [][]CellEntityCount
	if detailed {
		outH = make([][]CellEntityCount, len(qs))
	}
	for k, q := range qs {
		p := acc.ps[k]
		outM[k] = &Marginal{
			Query:                    q,
			Counts:                   append([]int64(nil), p.counts...),
			MaxEntityContribution:    append([]int64(nil), p.max...),
			SecondEntityContribution: append([]int64(nil), p.second...),
			EntityCount:              append([]int64(nil), p.entities...),
		}
		if detailed {
			hist := append([]CellEntityCount(nil), p.hist...)
			sort.Slice(hist, func(i, j int) bool {
				if hist[i].Cell != hist[j].Cell {
					return hist[i].Cell < hist[j].Cell
				}
				return hist[i].Entity < hist[j].Entity
			})
			outH[k] = hist
		}
	}
	ix.scratch.Put(acc)
	return outM, outH
}

// shardRows returns the number of rows the group span covers.
func (ix *Index) shardRows(shard [2]int) int {
	return int(ix.starts[shard[1]] - ix.starts[shard[0]])
}

// shardGroups splits the group range into contiguous spans of roughly
// equal row weight. Returns [lo, hi) group spans.
func (ix *Index) shardGroups(workers int) [][2]int {
	numGroups := ix.NumGroups()
	if workers <= 1 || numGroups <= 1 {
		return [][2]int{{0, numGroups}}
	}
	target := (ix.n + workers - 1) / workers
	var shards [][2]int
	lo := 0
	for lo < numGroups && len(shards) < workers-1 {
		hi := lo
		rows := 0
		for hi < numGroups && rows < target {
			rows += int(ix.starts[hi+1] - ix.starts[hi])
			hi++
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	if lo < numGroups {
		shards = append(shards, [2]int{lo, numGroups})
	}
	return shards
}

// scanShard accumulates the groups [gLo, gHi) into the scratch's
// per-query partials with the sort-free scatter kernel: each group is a
// single O(g) pass that counts cell keys into the scatch array, records
// first touches, then folds and resets exactly the touched cells. Fold
// order is first-touch order — sums, top-two tracking and entity counts
// are order-free, and the detailed histogram is sorted afterwards, so
// the results are identical to the sorted-runs kernel this replaces.
func (ix *Index) scanShard(gLo, gHi int, qs []*Query, qcols [][][]uint16, sc *scanScratch, detailed bool) {
	cells, touched := sc.cells, sc.touched
	for k, q := range qs {
		cols := qcols[k]
		p := sc.ps[k]
		for g := gLo; g < gHi; g++ {
			lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
			entity := ix.entities[g]
			if hi-lo == 1 {
				// Singleton group (entity-less rows, one-worker shops):
				// one run of count 1, no scatter needed.
				p.addRun(keyAt(cols, q.radices, lo), entity, 1, detailed)
				continue
			}
			nt := scatterGroup(cells, touched, cols, q.radices, lo, hi)
			for _, key := range touched[:nt] {
				p.addRun(key, entity, cells[key], detailed)
				cells[key] = 0
			}
		}
	}
}

// keyAt computes the cell key of index position p (mixed-radix over the
// query's columns).
func keyAt(cols [][]uint16, radices []int, p int) int {
	key := 0
	for j, col := range cols {
		key = key*radices[j] + int(col[p])
	}
	return key
}

// scatterGroup counts the cell keys of index positions [lo, hi) into the
// scatter array, recording each first touch, and returns the number of
// touched cells. The loops are specialized by query arity so the
// per-row key computation is fully unrolled for the common marginal
// shapes (the 0-ary body folds the whole group into cell 0 directly).
func scatterGroup(cells []int64, touched []int, cols [][]uint16, radices []int, lo, hi int) int {
	nt := 0
	note := func(key int) {
		if cells[key] == 0 {
			touched[nt] = key
			nt++
		}
		cells[key]++
	}
	switch len(cols) {
	case 0:
		cells[0] = int64(hi - lo)
		touched[0] = 0
		return 1
	case 1:
		c0 := cols[0][lo:hi]
		for i := range c0 {
			note(int(c0[i]))
		}
	case 2:
		r1 := radices[1]
		c0, c1 := cols[0][lo:hi], cols[1][lo:hi]
		for i := range c0 {
			note(int(c0[i])*r1 + int(c1[i]))
		}
	case 3:
		r1, r2 := radices[1], radices[2]
		c0, c1, c2 := cols[0][lo:hi], cols[1][lo:hi], cols[2][lo:hi]
		for i := range c0 {
			note((int(c0[i])*r1+int(c1[i]))*r2 + int(c2[i]))
		}
	default:
		for p := lo; p < hi; p++ {
			note(keyAt(cols, radices, p))
		}
	}
	return nt
}

// Compute evaluates one query over the index.
func (ix *Index) Compute(q *Query) *Marginal {
	qs := [1]*Query{q}
	ms, _ := ix.computeQueries(qs[:], false)
	return ms[0]
}

// ComputeAll evaluates many queries in one sharded pass over the index.
func (ix *Index) ComputeAll(qs []*Query) []*Marginal {
	if len(qs) == 0 {
		return nil
	}
	ms, _ := ix.computeQueries(qs, false)
	return ms
}

// ComputeDetailed evaluates one query and returns the per-entity
// histogram sorted by (cell, entity).
func (ix *Index) ComputeDetailed(q *Query) (*Marginal, []CellEntityCount) {
	qs := [1]*Query{q}
	ms, hs := ix.computeQueries(qs[:], true)
	return ms[0], hs[0]
}
