package table

import (
	"runtime"
	"slices"
	"sort"
	"sync"
)

// Index is an entity-sorted view of a table, built once and reused across
// marginal queries. Rows are pre-grouped by entity (establishment), so a
// query evaluates as one pass over entity groups: within a group, the
// rows' cell keys are sorted and each run of equal keys is exactly one
// (cell, entity) contribution — the per-entity histogram value h(w, c)
// from which the cell count, x_v (largest single-entity contribution),
// second-largest contribution and distinct-entity count all fall out
// without any hash map.
//
// Entity-less rows (entity −1) are each their own singleton group, with
// synthetic IDs −1, −2, … assigned in row order so that the detailed
// histogram is identical to the one the reference scalar engine produces.
//
// Group spans are sharded across workers at query time; each worker
// accumulates partial per-cell statistics that are merged in a fixed
// shard order, so the result is bit-identical at every worker count.
type Index struct {
	t *Table
	// n is the row count the index was built at; a Table invalidates a
	// cached index by comparing this against its current row count.
	n int
	// rows lists every row ID, grouped by entity.
	rows []int32
	// starts delimits the groups: group g spans
	// rows[starts[g]:starts[g+1]].
	starts []int32
	// entities holds each group's entity ID (synthetic negatives for
	// entity-less rows).
	entities []int32
	// maxGroup is the largest group size, for sizing per-worker scratch.
	maxGroup int
}

// BuildIndex constructs the entity-sorted index for the table's current
// rows. Most callers want Table.Index, which builds lazily and caches.
func BuildIndex(t *Table) *Index {
	n := t.NumRows()
	numEnt := t.NumEntities()
	// Counting sort over entity IDs. Entity-less rows are appended after
	// the real groups, in row order, one singleton group each.
	counts := make([]int32, numEnt)
	anon := 0
	for _, e := range t.entities {
		if e < 0 {
			anon++
		} else {
			counts[e]++
		}
	}
	ix := &Index{t: t, n: n, rows: make([]int32, n)}
	numGroups := anon
	for _, c := range counts {
		if c > 0 {
			numGroups++
		}
	}
	ix.starts = make([]int32, 0, numGroups+1)
	ix.entities = make([]int32, 0, numGroups)
	// offsets[e] is where entity e's rows begin in ix.rows.
	offsets := make([]int32, numEnt)
	var pos int32
	for e, c := range counts {
		if c == 0 {
			continue
		}
		offsets[e] = pos
		ix.starts = append(ix.starts, pos)
		ix.entities = append(ix.entities, int32(e))
		if int(c) > ix.maxGroup {
			ix.maxGroup = int(c)
		}
		pos += c
	}
	anonPos := pos
	var nextAnon int32 = -1
	for row, e := range t.entities {
		if e < 0 {
			ix.rows[anonPos] = int32(row)
			ix.starts = append(ix.starts, anonPos)
			ix.entities = append(ix.entities, nextAnon)
			nextAnon--
			anonPos++
			continue
		}
		ix.rows[offsets[e]] = int32(row)
		offsets[e]++
	}
	if anon > 0 && ix.maxGroup == 0 {
		ix.maxGroup = 1
	}
	ix.starts = append(ix.starts, int32(n))
	return ix
}

// NumGroups returns the number of entity groups (singleton groups for
// entity-less rows included).
func (ix *Index) NumGroups() int { return len(ix.entities) }

// partial is one worker's per-cell accumulator for one query.
type partial struct {
	counts   []int64
	max      []int64
	second   []int64
	entities []int64
	hist     []CellEntityCount
}

func newPartial(size int, detailed bool) *partial {
	p := &partial{
		counts:   make([]int64, size),
		max:      make([]int64, size),
		second:   make([]int64, size),
		entities: make([]int64, size),
	}
	if detailed {
		p.hist = make([]CellEntityCount, 0, size)
	}
	return p
}

// addRun folds one (cell, entity, count) contribution into the partial.
func (p *partial) addRun(cell int, entity int32, c int64, detailed bool) {
	p.counts[cell] += c
	p.entities[cell]++
	switch {
	case c > p.max[cell]:
		p.second[cell] = p.max[cell]
		p.max[cell] = c
	case c > p.second[cell]:
		p.second[cell] = c
	}
	if detailed {
		p.hist = append(p.hist, CellEntityCount{Cell: cell, Entity: entity, Count: c})
	}
}

// merge folds another worker's partial into p. Sums are order-free; the
// top-two contributions merge as the two largest of the four candidates.
func (p *partial) merge(o *partial) {
	for i := range p.counts {
		p.counts[i] += o.counts[i]
		p.entities[i] += o.entities[i]
		hi, lo := o.max[i], o.second[i]
		if hi > p.max[i] {
			p.second[i] = max64(p.max[i], lo)
			p.max[i] = hi
		} else if hi > p.second[i] {
			p.second[i] = hi
		}
		if lo > p.second[i] {
			p.second[i] = lo
		}
	}
	p.hist = append(p.hist, o.hist...)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// computeQueries evaluates the queries in one sharded pass over the
// entity groups. All queries share the pass: each group's rows are
// visited once per query by every worker that owns the group, so the
// row data stays hot in cache across the query set.
func (ix *Index) computeQueries(qs []*Query, detailed bool) ([]*Marginal, [][]CellEntityCount) {
	for _, q := range qs {
		if ix.t.Schema() != q.schema {
			panic("table: query compiled against a different schema")
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > ix.NumGroups() {
		workers = ix.NumGroups()
	}
	if workers < 1 {
		workers = 1
	}
	shards := ix.shardGroups(workers)
	// partials[w][k] is worker w's accumulator for query k.
	partials := make([][]*partial, len(shards))
	var wg sync.WaitGroup
	for w := range shards {
		partials[w] = make([]*partial, len(qs))
		for k, q := range qs {
			partials[w][k] = newPartial(q.size, detailed)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ix.scanShard(shards[w][0], shards[w][1], qs, partials[w], detailed)
		}(w)
	}
	wg.Wait()

	outM := make([]*Marginal, len(qs))
	var outH [][]CellEntityCount
	if detailed {
		outH = make([][]CellEntityCount, len(qs))
	}
	for k, q := range qs {
		// Merge shards in fixed order; shard 0's partial becomes the result.
		acc := partials[0][k]
		for w := 1; w < len(shards); w++ {
			acc.merge(partials[w][k])
		}
		outM[k] = &Marginal{
			Query:                    q,
			Counts:                   acc.counts,
			MaxEntityContribution:    acc.max,
			SecondEntityContribution: acc.second,
			EntityCount:              acc.entities,
		}
		if detailed {
			hist := acc.hist
			sort.Slice(hist, func(i, j int) bool {
				if hist[i].Cell != hist[j].Cell {
					return hist[i].Cell < hist[j].Cell
				}
				return hist[i].Entity < hist[j].Entity
			})
			outH[k] = hist
		}
	}
	return outM, outH
}

// shardGroups splits the group range into contiguous spans of roughly
// equal row weight. Returns [lo, hi) group spans.
func (ix *Index) shardGroups(workers int) [][2]int {
	numGroups := ix.NumGroups()
	if workers <= 1 || numGroups <= 1 {
		return [][2]int{{0, numGroups}}
	}
	target := (ix.n + workers - 1) / workers
	var shards [][2]int
	lo := 0
	for lo < numGroups && len(shards) < workers-1 {
		hi := lo
		rows := 0
		for hi < numGroups && rows < target {
			rows += int(ix.starts[hi+1] - ix.starts[hi])
			hi++
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	if lo < numGroups {
		shards = append(shards, [2]int{lo, numGroups})
	}
	return shards
}

// scanShard accumulates the groups [gLo, gHi) into the per-query
// partials. Within each group the rows' cell keys are sorted so that
// each run of equal keys is one (cell, entity) histogram value.
func (ix *Index) scanShard(gLo, gHi int, qs []*Query, ps []*partial, detailed bool) {
	keys := make([]int, ix.maxGroup)
	// Resolve each query's columns once; the inner loop then reads raw
	// code slices instead of going through Table.Code's bounds checks.
	qcols := make([][][]uint16, len(qs))
	for k, q := range qs {
		qcols[k] = make([][]uint16, len(q.attrs))
		for i, a := range q.attrs {
			qcols[k][i] = ix.t.cols[a]
		}
	}
	for g := gLo; g < gHi; g++ {
		lo, hi := ix.starts[g], ix.starts[g+1]
		group := ix.rows[lo:hi]
		entity := ix.entities[g]
		for k, q := range qs {
			cols := qcols[k]
			ks := keys[:len(group)]
			for i, row := range group {
				key := 0
				for j, col := range cols {
					key = key*q.radices[j] + int(col[row])
				}
				ks[i] = key
			}
			if len(ks) > 1 {
				slices.Sort(ks)
			}
			runStart := 0
			for i := 1; i <= len(ks); i++ {
				if i == len(ks) || ks[i] != ks[runStart] {
					ps[k].addRun(ks[runStart], entity, int64(i-runStart), detailed)
					runStart = i
				}
			}
		}
	}
}

// Compute evaluates one query over the index.
func (ix *Index) Compute(q *Query) *Marginal {
	ms, _ := ix.computeQueries([]*Query{q}, false)
	return ms[0]
}

// ComputeAll evaluates many queries in one sharded pass over the index.
func (ix *Index) ComputeAll(qs []*Query) []*Marginal {
	if len(qs) == 0 {
		return nil
	}
	ms, _ := ix.computeQueries(qs, false)
	return ms
}

// ComputeDetailed evaluates one query and returns the per-entity
// histogram sorted by (cell, entity).
func (ix *Index) ComputeDetailed(q *Query) (*Marginal, []CellEntityCount) {
	ms, hs := ix.computeQueries([]*Query{q}, true)
	return ms[0], hs[0]
}
