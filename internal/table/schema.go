package table

import "fmt"

// Schema is an ordered list of attribute domains, identifying a relation's
// columns. The paper's WorkerFull relation, for example, has a schema with
// both workplace attributes (place, industry, ownership) and worker
// attributes (sex, age, race, ethnicity, education).
type Schema struct {
	attrs []*Domain
	index map[string]int
}

// NewSchema builds a schema from the given domains. Domain names must be
// distinct.
func NewSchema(attrs ...*Domain) *Schema {
	if len(attrs) == 0 {
		panic("table: schema must have at least one attribute")
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == nil {
			panic("table: schema attribute must not be nil")
		}
		if _, dup := idx[a.Name]; dup {
			panic(fmt.Sprintf("table: schema has duplicate attribute %q", a.Name))
		}
		idx[a.Name] = i
	}
	return &Schema{attrs: attrs, index: idx}
}

// NumAttrs returns the number of attributes in the schema.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the domain at position i.
func (s *Schema) Attr(i int) *Domain {
	if i < 0 || i >= len(s.attrs) {
		panic(fmt.Sprintf("table: attribute index %d out of range (schema has %d)", i, len(s.attrs)))
	}
	return s.attrs[i]
}

// AttrIndex returns the position of the attribute with the given name, or
// an error if no such attribute exists.
func (s *Schema) AttrIndex(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("table: schema has no attribute %q", name)
	}
	return i, nil
}

// MustAttrIndex is AttrIndex but panics on unknown names.
func (s *Schema) MustAttrIndex(name string) int {
	i, err := s.AttrIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// HasAttr reports whether the schema contains an attribute with the name.
func (s *Schema) HasAttr(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Resolve maps attribute names to their schema positions, preserving the
// given order. It is the entry point for parsing a marginal query's
// attribute set V.
func (s *Schema) Resolve(names []string) ([]int, error) {
	out := make([]int, len(names))
	seen := make(map[int]bool, len(names))
	for i, n := range names {
		idx, err := s.AttrIndex(n)
		if err != nil {
			return nil, err
		}
		if seen[idx] {
			return nil, fmt.Errorf("table: attribute %q listed twice in query", n)
		}
		seen[idx] = true
		out[i] = idx
	}
	return out, nil
}
