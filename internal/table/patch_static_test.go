package table

import (
	"math/rand"
	"testing"
)

// Differential tests of the kernel's static-attribute machinery. The
// generic harness (randomEntityRows) draws every attribute per row, so
// no attribute is ever group-constant and every view runs the dynamic
// directory path. Real LODES establishment attributes — place,
// industry, ownership — are constant within an establishment, which is
// exactly what the view's static factoring and the flat specialization
// exist for. This harness pins those codes per entity, so views over
// establishment-constant attributes build flat and views mixing in a
// worker attribute factor the constant part out, and the differentials
// here close over the lifecycle the quarterly pipeline produces:
// churn, full death (a tombstone), rebirth under a different static
// identity, and — in the demotion test — a delta that breaks an
// attribute's constancy mid-life.

// staticHarness is entityRows with per-entity pinned place and
// industry codes; sex stays per-row random.
type staticHarness struct {
	rng   *rand.Rand
	er    *entityRows
	fixed map[int32][2]int // entity -> pinned (place, industry) codes
}

func newStaticHarness(rng *rand.Rand, numEnts, maxSize int) *staticHarness {
	h := &staticHarness{
		rng:   rng,
		er:    &entityRows{schema: testSchema(), rows: make(map[int32][][]int)},
		fixed: make(map[int32][2]int),
	}
	for e := int32(0); int(e) < numEnts; e++ {
		h.assign(e)
		n := 1 + rng.Intn(maxSize)
		for i := 0; i < n; i++ {
			h.er.rows[e] = append(h.er.rows[e], h.row(e))
		}
		h.er.order = append(h.er.order, e)
	}
	return h
}

// assign draws a fresh static identity for e — at birth, or at rebirth
// when the reborn establishment may land in a different place.
func (h *staticHarness) assign(e int32) {
	s := h.er.schema
	h.fixed[e] = [2]int{h.rng.Intn(s.Attr(0).Size()), h.rng.Intn(s.Attr(1).Size())}
}

func (h *staticHarness) row(e int32) []int {
	f := h.fixed[e]
	return []int{f[0], f[1], h.rng.Intn(h.er.schema.Attr(2).Size())}
}

// churnKept mirrors applyChurnKept but keeps each entity's pinned
// codes on every appended row.
func (h *staticHarness) churnKept(removals, adds map[int32]int, births int) (touched map[int32]bool, kept map[int32]int32) {
	er := h.er
	oldLen := make(map[int32]int, len(er.rows))
	for e, rows := range er.rows {
		oldLen[e] = len(rows)
	}
	touched = make(map[int32]bool)
	for e, k := range removals {
		if k > len(er.rows[e]) {
			k = len(er.rows[e])
		}
		er.rows[e] = er.rows[e][:len(er.rows[e])-k]
		touched[e] = true
	}
	for e, k := range adds {
		for i := 0; i < k; i++ {
			er.rows[e] = append(er.rows[e], h.row(e))
		}
		touched[e] = true
	}
	next := er.order[len(er.order)-1] + 1
	for i := 0; i < births; i++ {
		e := next + int32(i)
		h.assign(e)
		n := 1 + h.rng.Intn(4)
		for j := 0; j < n; j++ {
			er.rows[e] = append(er.rows[e], h.row(e))
		}
		er.order = append(er.order, e)
		touched[e] = true
	}
	kept = make(map[int32]int32, len(touched))
	for e := range touched {
		k := oldLen[e]
		if r, ok := removals[e]; ok {
			if r > k {
				r = k
			}
			k -= r
		}
		kept[e] = int32(k)
	}
	return touched, kept
}

// demoted reports whether entity e sits in the view's mixed directory
// (the flat specialization or the static factoring gave up on it).
func demoted(v *MarginalView, e int32) bool {
	for i, ve := range v.ents {
		if ve == e {
			return v.mixed[i]
		}
	}
	return false
}

// TestPatchFlatChainedEpochs replays 8 epochs of constant-preserving
// churn through views over establishment-constant attributes,
// scripting one establishment through the full lifecycle: death at
// epoch 2 (its flat slot becomes a tombstone), two dormant quarters,
// and rebirth at epoch 5 in a different place — the reborn group must
// refresh the tombstoned slot's cell, not inherit the stale one. Every
// epoch closes the differential against a cold rebuild for flat,
// factored, and fully dynamic views alike.
func TestPatchFlatChainedEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	h := newStaticHarness(rng, 40, 6)
	curIx := h.er.table().Index()
	s := h.er.schema
	qs := []*Query{
		MustNewQuery(s, "place"),
		MustNewQuery(s, "place", "industry"),
		MustNewQuery(s, "place", "sex"),
		MustNewQuery(s, "sex"),
	}
	views := make([]*MarginalView, len(qs))
	for k, q := range qs {
		v, err := NewMarginalView(curIx, q)
		if err != nil {
			t.Fatalf("NewMarginalView(%v): %v", q.AttrNames(), err)
		}
		views[k] = v
	}
	if !views[0].flat || !views[1].flat {
		t.Fatal("views over establishment-constant attributes should build flat")
	}
	if views[2].flat || views[3].flat {
		t.Fatal("views touching a worker attribute must not build flat")
	}
	if len(views[2].staticIdx) == 0 {
		t.Fatal("mixed view should factor out its establishment-constant attribute")
	}

	victim := h.er.order[3]
	for epoch := 1; epoch <= 8; epoch++ {
		removals := make(map[int32]int)
		adds := make(map[int32]int)
		for _, e := range h.er.order {
			if e == victim || len(h.er.rows[e]) == 0 {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				removals[e] = 1 + rng.Intn(len(h.er.rows[e]))
			case 1:
				adds[e] = 1 + rng.Intn(3)
			}
		}
		switch epoch {
		case 2:
			removals[victim] = len(h.er.rows[victim]) // full death
		case 5:
			h.assign(victim) // reborn elsewhere
			adds[victim] = 3
		}
		touched, kept := h.churnKept(removals, adds, rng.Intn(3))
		next := h.er.table()
		ids, sizes := h.er.touchedSets(touched)
		merged, err := MergeIndex(curIx, next, ids, sizes)
		if err != nil {
			t.Fatalf("epoch %d: MergeIndex: %v", epoch, err)
		}
		rebuilt := BuildIndex(next)
		kp := keptSlice(ids, kept)
		for k, v := range views {
			m, _, err := v.Apply(curIx, merged, ids, kp)
			if err != nil {
				t.Fatalf("epoch %d: Apply(%v): %v", epoch, qs[k].AttrNames(), err)
			}
			marginalsEqual(t, m, rebuilt.Compute(qs[k]), "flat-chained")
		}
		for _, v := range views {
			if demoted(v, victim) {
				t.Fatalf("epoch %d: constant-preserving churn demoted the victim", epoch)
			}
		}
		curIx = merged
	}
}

// TestPatchConstancyDemotion breaks an attribute's group-constancy
// mid-life: a surviving establishment's appended rows land in a
// different place than its base rows. The kernel must not fail — the
// establishment is demoted to the per-row mixed directory, in flat and
// factored views alike — and the patched truths must stay
// bit-identical through the violating delta and through ordinary churn
// after it.
func TestPatchConstancyDemotion(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	h := newStaticHarness(rng, 30, 5)
	curIx := h.er.table().Index()
	s := h.er.schema
	qs := []*Query{
		MustNewQuery(s, "place"),
		MustNewQuery(s, "place", "industry"),
		MustNewQuery(s, "place", "sex"),
	}
	views := make([]*MarginalView, len(qs))
	for k, q := range qs {
		v, err := NewMarginalView(curIx, q)
		if err != nil {
			t.Fatalf("NewMarginalView(%v): %v", q.AttrNames(), err)
		}
		views[k] = v
	}
	if !views[0].flat || !views[1].flat {
		t.Fatal("establishment-attribute views should build flat")
	}

	// Epoch 1: the violator keeps its base rows and gains rows pinned to
	// a different place.
	violator := h.er.order[7]
	f := h.fixed[violator]
	h.fixed[violator] = [2]int{(f[0] + 1) % s.Attr(0).Size(), f[1]}
	touched, kept := h.churnKept(nil, map[int32]int{violator: 2}, 0)
	next := h.er.table()
	ids, sizes := h.er.touchedSets(touched)
	merged, err := MergeIndex(curIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("MergeIndex: %v", err)
	}
	rebuilt := BuildIndex(next)
	kp := keptSlice(ids, kept)
	for k, v := range views {
		m, _, err := v.Apply(curIx, merged, ids, kp)
		if err != nil {
			t.Fatalf("violating Apply(%v): %v", qs[k].AttrNames(), err)
		}
		marginalsEqual(t, m, rebuilt.Compute(qs[k]), "demotion-epoch")
		if !demoted(v, violator) {
			t.Fatalf("view %v did not demote the constancy violator", qs[k].AttrNames())
		}
	}
	curIx = merged

	// Epoch 2: ordinary churn on top — the demoted establishment (and
	// everyone else) must keep patching exactly.
	removals := map[int32]int{violator: 1}
	adds := map[int32]int{violator: 2}
	for _, e := range h.er.order {
		if e == violator || len(h.er.rows[e]) == 0 {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			removals[e] = 1 + rng.Intn(len(h.er.rows[e]))
		case 1:
			adds[e] = 1 + rng.Intn(2)
		}
	}
	touched, kept = h.churnKept(removals, adds, 1)
	next = h.er.table()
	ids, sizes = h.er.touchedSets(touched)
	merged, err = MergeIndex(curIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("post-demotion MergeIndex: %v", err)
	}
	rebuilt = BuildIndex(next)
	kp = keptSlice(ids, kept)
	for k, v := range views {
		m, _, err := v.Apply(curIx, merged, ids, kp)
		if err != nil {
			t.Fatalf("post-demotion Apply(%v): %v", qs[k].AttrNames(), err)
		}
		marginalsEqual(t, m, rebuilt.Compute(qs[k]), "post-demotion")
	}
}
