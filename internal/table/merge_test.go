package table

import (
	"math/rand"
	"testing"
)

// Differential tests of the incremental index maintenance path:
// MergeIndex must be bit-identical to BuildIndex-from-scratch on the
// successor table, and AffectedCells must be sound — every cell outside
// a query's affected set carries identical statistics in both epochs.
// The delta shapes mirror the quarterly releases the versioned dataset
// absorbs: pure adds (hires and establishment births), deaths, and
// mixed churn.

// entityRows is a mutable entity-level view of a table: rows[e] holds
// the code tuples of entity e, in row order.
type entityRows struct {
	schema *Schema
	rows   map[int32][][]int
	order  []int32 // ascending entity ids with at least one historical row
}

// randomEntityRows builds a base population of numEnts entities with
// 1..maxSize rows each.
func randomEntityRows(rng *rand.Rand, numEnts, maxSize int) *entityRows {
	s := testSchema()
	er := &entityRows{schema: s, rows: make(map[int32][][]int)}
	for e := int32(0); int(e) < numEnts; e++ {
		n := 1 + rng.Intn(maxSize)
		for i := 0; i < n; i++ {
			er.rows[e] = append(er.rows[e], randomCodes(rng, s))
		}
		er.order = append(er.order, e)
	}
	return er
}

func randomCodes(rng *rand.Rand, s *Schema) []int {
	codes := make([]int, s.NumAttrs())
	for a := range codes {
		codes[a] = rng.Intn(s.Attr(a).Size())
	}
	return codes
}

// table materializes the current population as an entity-sorted table.
func (er *entityRows) table() *Table {
	t := New(er.schema)
	for _, e := range er.order {
		for _, codes := range er.rows[e] {
			t.AppendRow(e, codes...)
		}
	}
	return t
}

// touchedSets returns the touched entity list (ascending) and each
// touched entity's current row count.
func (er *entityRows) touchedSets(touched map[int32]bool) (ids, sizes []int32) {
	for _, e := range er.order {
		if touched[e] {
			ids = append(ids, e)
			sizes = append(sizes, int32(len(er.rows[e])))
		}
	}
	return ids, sizes
}

// applyChurn mutates the population with the given per-entity
// operations and returns the touched set. Newborn entities must use ids
// above every existing one to keep er.order ascending.
func (er *entityRows) applyChurn(rng *rand.Rand, removals map[int32]int, adds map[int32]int, births int) map[int32]bool {
	touched := make(map[int32]bool)
	for e, k := range removals {
		if k > len(er.rows[e]) {
			k = len(er.rows[e])
		}
		er.rows[e] = er.rows[e][:len(er.rows[e])-k]
		touched[e] = true
	}
	for e, k := range adds {
		for i := 0; i < k; i++ {
			er.rows[e] = append(er.rows[e], randomCodes(rng, er.schema))
		}
		touched[e] = true
	}
	next := er.order[len(er.order)-1] + 1
	for i := 0; i < births; i++ {
		e := next + int32(i)
		n := 1 + rng.Intn(4)
		for j := 0; j < n; j++ {
			er.rows[e] = append(er.rows[e], randomCodes(rng, er.schema))
		}
		er.order = append(er.order, e)
		touched[e] = true
	}
	return touched
}

func mergeQueries(t *testing.T, s *Schema) []*Query {
	t.Helper()
	return []*Query{
		MustNewQuery(s),
		MustNewQuery(s, "place"),
		MustNewQuery(s, "sex"),
		MustNewQuery(s, "place", "industry"),
		MustNewQuery(s, "industry", "place", "sex"),
	}
}

// checkMergeDifferential verifies, for one (base, delta) pair, that the
// merged index is bit-identical to a scratch rebuild and that
// AffectedCells is sound against the base marginals.
func checkMergeDifferential(t *testing.T, er *entityRows, mutate func() map[int32]bool, label string) {
	t.Helper()
	base := er.table()
	baseIx := base.Index()
	qs := mergeQueries(t, er.schema)
	baseMs := baseIx.ComputeAll(qs)

	touchedSet := mutate()
	next := er.table()
	ids, sizes := er.touchedSets(touchedSet)

	merged, err := MergeIndex(baseIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("%s: MergeIndex: %v", label, err)
	}
	rebuilt := BuildIndex(next)
	if merged.NumGroups() != rebuilt.NumGroups() {
		t.Fatalf("%s: merged index has %d groups, rebuild has %d",
			label, merged.NumGroups(), rebuilt.NumGroups())
	}
	mergedMs := merged.ComputeAll(qs)
	rebuiltMs := rebuilt.ComputeAll(qs)
	for k := range qs {
		marginalsEqual(t, mergedMs[k], rebuiltMs[k], label+"/merged-vs-rebuilt")
		// The reference scalar engine closes the loop on the successor
		// table itself.
		marginalsEqual(t, mergedMs[k], ComputeReference(next, qs[k]), label+"/merged-vs-reference")
	}
	// Detailed histograms agree too.
	for k := range qs {
		_, mh := merged.ComputeDetailed(qs[k])
		_, rh := rebuilt.ComputeDetailed(qs[k])
		if len(mh) != len(rh) {
			t.Fatalf("%s: detailed histogram length %d vs %d", label, len(mh), len(rh))
		}
		for i := range mh {
			if mh[i] != rh[i] {
				t.Fatalf("%s: detailed histogram[%d] = %+v, want %+v", label, i, mh[i], rh[i])
			}
		}
	}

	// AffectedCells soundness: outside the affected set, every statistic
	// is unchanged from the base epoch.
	affected := AffectedCells(baseIx, merged, ids, qs)
	// The short-circuiting boolean variant must agree with the full set.
	for k, any := range Affected(baseIx, merged, ids, qs) {
		if any != (len(affected[k]) > 0) {
			t.Fatalf("%s: Affected[%d] = %v but AffectedCells has %d cells",
				label, k, any, len(affected[k]))
		}
	}
	for k, q := range qs {
		aff := make(map[int]bool, len(affected[k]))
		for _, c := range affected[k] {
			aff[c] = true
		}
		for cell := 0; cell < q.NumCells(); cell++ {
			if aff[cell] {
				continue
			}
			if baseMs[k].Counts[cell] != mergedMs[k].Counts[cell] ||
				baseMs[k].MaxEntityContribution[cell] != mergedMs[k].MaxEntityContribution[cell] ||
				baseMs[k].SecondEntityContribution[cell] != mergedMs[k].SecondEntityContribution[cell] ||
				baseMs[k].EntityCount[cell] != mergedMs[k].EntityCount[cell] {
				t.Fatalf("%s: query %d cell %d changed but is not in the affected set %v",
					label, k, cell, affected[k])
			}
		}
	}
}

func TestMergeIndexPureAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	er := randomEntityRows(rng, 40, 8)
	checkMergeDifferential(t, er, func() map[int32]bool {
		adds := map[int32]int{3: 2, 7: 5, 19: 1, 39: 3}
		return er.applyChurn(rng, nil, adds, 4)
	}, "pure-adds")
}

func TestMergeIndexDeaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	er := randomEntityRows(rng, 40, 8)
	checkMergeDifferential(t, er, func() map[int32]bool {
		removals := make(map[int32]int)
		for _, e := range []int32{0, 5, 11, 26, 39} {
			removals[e] = len(er.rows[e]) // full death
		}
		return er.applyChurn(rng, removals, nil, 0)
	}, "deaths")
}

func TestMergeIndexMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	er := randomEntityRows(rng, 60, 10)
	checkMergeDifferential(t, er, func() map[int32]bool {
		removals := map[int32]int{2: 1, 9: 3, 30: 2}
		for _, e := range []int32{14, 45} {
			removals[e] = len(er.rows[e]) // deaths
		}
		adds := map[int32]int{2: 4, 17: 2, 58: 1} // entity 2 churns both ways
		return er.applyChurn(rng, removals, adds, 3)
	}, "mixed-churn")
}

// TestMergeIndexSuccessiveEpochs chains several random churn deltas,
// merging each epoch's index from the previous *merged* index — the
// shape the publisher's Advance path produces — and re-verifies the
// differential at every step.
func TestMergeIndexSuccessiveEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	er := randomEntityRows(rng, 50, 6)
	cur := er.table()
	curIx := cur.Index()
	qs := mergeQueries(t, er.schema)
	for epoch := 1; epoch <= 5; epoch++ {
		removals := make(map[int32]int)
		adds := make(map[int32]int)
		for _, e := range er.order {
			if len(er.rows[e]) == 0 {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				removals[e] = 1 + rng.Intn(len(er.rows[e]))
			case 1:
				adds[e] = 1 + rng.Intn(3)
			}
		}
		touched := er.applyChurn(rng, removals, adds, rng.Intn(3))
		next := er.table()
		ids, sizes := er.touchedSets(touched)
		merged, err := MergeIndex(curIx, next, ids, sizes)
		if err != nil {
			t.Fatalf("epoch %d: MergeIndex: %v", epoch, err)
		}
		mergedMs := merged.ComputeAll(qs)
		rebuiltMs := BuildIndex(next).ComputeAll(qs)
		for k := range qs {
			marginalsEqual(t, mergedMs[k], rebuiltMs[k], "successive-epochs")
		}
		cur, curIx = next, merged
	}
}

// TestMergeIndexRejectsCorruptLayout pins the cheap boundary checks: a
// wrong row-count claim and a misgrouped table must both be rejected.
func TestMergeIndexRejectsCorruptLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	er := randomEntityRows(rng, 10, 4)
	base := er.table()
	baseIx := base.Index()

	touched := er.applyChurn(rng, nil, map[int32]int{4: 2}, 0)
	next := er.table()
	ids, sizes := er.touchedSets(touched)

	// Wrong size claim: totals no longer cover the table.
	if _, err := MergeIndex(baseIx, next, ids, []int32{sizes[0] + 1}); err == nil {
		t.Error("MergeIndex accepted a row-count mismatch")
	}
	// Misgrouped successor: swap two rows across a group boundary.
	bad := New(er.schema)
	for _, e := range er.order {
		for _, codes := range er.rows[e] {
			bad.AppendRow(e, codes...)
		}
	}
	bad.entities[0], bad.entities[bad.n-1] = bad.entities[bad.n-1], bad.entities[0]
	if _, err := MergeIndex(baseIx, bad, ids, sizes); err == nil {
		t.Error("MergeIndex accepted a misgrouped successor table")
	}
	// Unsorted touched list.
	if len(ids) >= 1 {
		if _, err := MergeIndex(baseIx, next, []int32{ids[0], ids[0]}, []int32{1, 1}); err == nil {
			t.Error("MergeIndex accepted a non-ascending touched list")
		}
	}
}

// TestAffectedCellsEmptyForNoOpDelta pins the survival side of the
// selective-invalidation contract: a delta that rewrites an entity's
// rows to the exact same tuples affects nothing.
func TestAffectedCellsEmptyForNoOpDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	er := randomEntityRows(rng, 20, 5)
	base := er.table()
	baseIx := base.Index()
	next := er.table() // identical population
	ids := []int32{3, 8}
	sizes := []int32{int32(len(er.rows[3])), int32(len(er.rows[8]))}
	merged, err := MergeIndex(baseIx, next, ids, sizes)
	if err != nil {
		t.Fatalf("MergeIndex: %v", err)
	}
	qs := mergeQueries(t, er.schema)
	for k, aff := range AffectedCells(baseIx, merged, ids, qs) {
		if len(aff) != 0 {
			t.Errorf("query %d: no-op delta affected cells %v, want none", k, aff)
		}
	}
}
