package table

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// randomTable builds a table with a mix of entity sizes and a fraction of
// entity-less rows, the shapes that exercise every index code path.
func randomTable(t *testing.T, rng *rand.Rand, rows int) *Table {
	t.Helper()
	s := testSchema()
	tab := New(s)
	for i := 0; i < rows; i++ {
		entity := int32(rng.Intn(rows/3 + 1))
		if rng.Intn(10) == 0 {
			entity = -1
		}
		tab.AppendRow(entity,
			rng.Intn(s.Attr(0).Size()),
			rng.Intn(s.Attr(1).Size()),
			rng.Intn(s.Attr(2).Size()))
	}
	return tab
}

func marginalsEqual(t *testing.T, got, want *Marginal, label string) {
	t.Helper()
	check := func(name string, g, w []int64) {
		t.Helper()
		if len(g) != len(w) {
			t.Fatalf("%s: %s length %d, want %d", label, name, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", label, name, i, g[i], w[i])
			}
		}
	}
	check("Counts", got.Counts, want.Counts)
	check("MaxEntityContribution", got.MaxEntityContribution, want.MaxEntityContribution)
	check("SecondEntityContribution", got.SecondEntityContribution, want.SecondEntityContribution)
	check("EntityCount", got.EntityCount, want.EntityCount)
}

// TestIndexedComputeMatchesReference is the differential test of the
// tentpole: the indexed engine must be bit-identical to the scalar
// hash-map reference for every statistic, across query shapes (including
// the empty query) and table shapes (including entity-less rows).
func TestIndexedComputeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := [][]string{
		{},
		{"place"},
		{"sex"},
		{"place", "industry"},
		{"industry", "place"},
		{"place", "industry", "sex"},
	}
	for _, rows := range []int{0, 1, 7, 100, 2000} {
		tab := randomTable(t, rng, rows)
		for _, names := range queries {
			q := MustNewQuery(tab.Schema(), names...)
			label := fmt.Sprintf("rows=%d query=%v", rows, names)
			marginalsEqual(t, Compute(tab, q), ComputeReference(tab, q), label)
		}
	}
}

// TestComputeDetailedMatchesReference checks the per-entity histogram —
// including the synthetic IDs of entity-less rows — against the oracle.
func TestComputeDetailedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := randomTable(t, rng, 500)
	q := MustNewQuery(tab.Schema(), "place", "sex")
	gotM, gotH := ComputeDetailed(tab, q)
	wantM, wantH := ComputeReferenceDetailed(tab, q)
	marginalsEqual(t, gotM, wantM, "detailed")
	if len(gotH) != len(wantH) {
		t.Fatalf("histogram length %d, want %d", len(gotH), len(wantH))
	}
	for i := range gotH {
		if gotH[i] != wantH[i] {
			t.Fatalf("histogram[%d] = %+v, want %+v", i, gotH[i], wantH[i])
		}
	}
}

// TestComputeAllMatchesCompute checks the multi-query single-scan API
// against per-query evaluation.
func TestComputeAllMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := randomTable(t, rng, 800)
	qs := []*Query{
		MustNewQuery(tab.Schema(), "place"),
		MustNewQuery(tab.Schema(), "place", "industry"),
		MustNewQuery(tab.Schema(), "sex", "industry"),
		MustNewQuery(tab.Schema()),
	}
	got := ComputeAll(tab, qs)
	if len(got) != len(qs) {
		t.Fatalf("ComputeAll returned %d marginals, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		marginalsEqual(t, got[i], ComputeReference(tab, q), fmt.Sprintf("query %d", i))
	}
	if ComputeAll(tab, nil) != nil {
		t.Error("ComputeAll(nil) should return nil")
	}
}

// TestIndexDeterministicAcrossWorkerCounts pins the sharded engine's
// determinism: the same marginal at GOMAXPROCS 1, 2 and 8.
func TestIndexDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tab := randomTable(t, rng, 3000)
	q := MustNewQuery(tab.Schema(), "place", "industry", "sex")
	want := ComputeReference(tab, q)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(w)
		got := BuildIndex(tab).Compute(q)
		marginalsEqual(t, got, want, fmt.Sprintf("workers=%d", w))
	}
}

// TestIndexInvalidatedByAppend checks that a cached index never serves a
// stale row count.
func TestIndexInvalidatedByAppend(t *testing.T) {
	s := testSchema()
	tab := New(s)
	tab.AppendRow(0, 0, 0, 0)
	q := MustNewQuery(s, "place")
	if got := Compute(tab, q).Total(); got != 1 {
		t.Fatalf("total = %d, want 1", got)
	}
	tab.AppendRow(1, 0, 0, 0)
	if got := Compute(tab, q).Total(); got != 2 {
		t.Fatalf("total after append = %d, want 2 (stale index?)", got)
	}
}

// TestIndexConcurrentReaders exercises lazy index construction and reuse
// from many goroutines (meaningful under -race).
func TestIndexConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tab := randomTable(t, rng, 1000)
	q := MustNewQuery(tab.Schema(), "place", "industry")
	want := ComputeReference(tab, q)
	results := make([]*Marginal, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Compute(tab, q)
		}(i)
	}
	wg.Wait()
	for i, m := range results {
		marginalsEqual(t, m, want, fmt.Sprintf("concurrent reader %d", i))
	}
}
