// Package table provides the relational substrate of the reproduction:
// typed categorical attribute domains, schemas, columnar tables of coded
// records, and the marginal-query engine of Definition 2.1 of the paper
// ("SELECT COUNT(*) FROM D GROUP BY A_i1, ..., A_im").
//
// The engine also tracks, for every cell of a marginal, the maximum
// contribution of any single entity (establishment) to that cell. That
// per-cell quantity, written x_v in the paper, is exactly what determines
// the smooth sensitivity of the count query (Lemma 8.5), so computing it
// during aggregation is what lets the mechanisms in internal/mech calibrate
// their noise per cell.
package table

import (
	"fmt"
	"sort"
)

// Domain is a named categorical attribute domain: an ordered list of
// distinct values. Records store value codes (indexes into Values), which
// keeps tables compact and makes cell keys cheap to compute.
type Domain struct {
	Name   string
	Values []string

	index map[string]int
}

// NewDomain builds a domain from a name and its values. Values must be
// non-empty and distinct.
func NewDomain(name string, values ...string) *Domain {
	if name == "" {
		panic("table: domain name must be non-empty")
	}
	if len(values) == 0 {
		panic(fmt.Sprintf("table: domain %q must have at least one value", name))
	}
	idx := make(map[string]int, len(values))
	for i, v := range values {
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("table: domain %q has duplicate value %q", name, v))
		}
		idx[v] = i
	}
	return &Domain{Name: name, Values: values, index: idx}
}

// IntRangeDomain builds a domain whose values are the decimal strings
// lo..hi inclusive, a convenience for bucketed numeric attributes.
func IntRangeDomain(name string, lo, hi int) *Domain {
	if hi < lo {
		panic(fmt.Sprintf("table: IntRangeDomain %q has hi < lo", name))
	}
	values := make([]string, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		values = append(values, fmt.Sprintf("%d", v))
	}
	return NewDomain(name, values...)
}

// Size returns the number of values in the domain.
func (d *Domain) Size() int { return len(d.Values) }

// Code returns the code of value v, or an error if v is not in the domain.
func (d *Domain) Code(v string) (int, error) {
	c, ok := d.index[v]
	if !ok {
		return 0, fmt.Errorf("table: value %q not in domain %q", v, d.Name)
	}
	return c, nil
}

// MustCode is Code but panics on unknown values; for use with trusted
// literals in tests and generators.
func (d *Domain) MustCode(v string) int {
	c, err := d.Code(v)
	if err != nil {
		panic(err)
	}
	return c
}

// Value returns the value with the given code.
func (d *Domain) Value(code int) string {
	if code < 0 || code >= len(d.Values) {
		panic(fmt.Sprintf("table: code %d out of range for domain %q (size %d)", code, d.Name, len(d.Values)))
	}
	return d.Values[code]
}

// SortedValues returns the domain values in lexicographic order, without
// mutating the domain. Useful for deterministic output formatting.
func (d *Domain) SortedValues() []string {
	out := make([]string, len(d.Values))
	copy(out, d.Values)
	sort.Strings(out)
	return out
}
