package table

import (
	"math/rand"
	"testing"
)

// benchPackedSetup builds a packed column plus matching unpacked views
// over a synthetic W1-shaped workload: ~41k rows in groups of ~20, 1200
// cells (11-bit keys) — the BenchmarkMarginalCompute shape.
func benchPackedSetup(b *testing.B) (*Index, *Query, *packedColumn, [][]uint16) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	doms := make([]*Domain, 4)
	sizes := []int{30, 20, 2, 8}
	names := []string{"place", "industry", "ownership", "age"}
	for i, n := range sizes {
		vals := make([]string, n)
		for v := range vals {
			vals[v] = names[i] + "-" + string(rune('a'+v%26)) + string(rune('a'+v/26))
		}
		doms[i] = NewDomain(names[i], vals...)
	}
	s := NewSchema(doms...)
	t := New(s)
	rows := 41000
	groups := 2000
	perGroup := rows / groups
	row := 0
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			t.AppendRow(int32(g),
				rng.Intn(s.Attr(0).Size()),
				rng.Intn(s.Attr(1).Size()),
				rng.Intn(s.Attr(2).Size()),
				rng.Intn(s.Attr(3).Size()),
			)
			row++
		}
	}
	ix := BuildIndex(t)
	q := MustNewQuery(s, s.Attr(0).Name, s.Attr(1).Name, s.Attr(2).Name)
	var pc *packedColumn
	for i := 0; i <= packScanThreshold; i++ {
		pc = ix.packedFor(q)
	}
	if pc == nil {
		b.Fatal("query did not pack")
	}
	cols := make([][]uint16, len(q.attrs))
	for i, a := range q.attrs {
		cols[i] = ix.col(a)
	}
	return ix, q, pc, cols
}

func BenchmarkScatterSpanPacked(b *testing.B) {
	ix, q, pc, _ := benchPackedSetup(b)
	var pt partial
	pt.reset(q.size, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < ix.NumGroups(); g++ {
			pc.foldRuns(&pt, int(ix.starts[g]), int(ix.starts[g+1]), ix.entities[g], false)
		}
	}
}

func BenchmarkScatterSpanUnpacked(b *testing.B) {
	ix, q, _, cols := benchPackedSetup(b)
	cells := make([]int32, q.size)
	touched := make([]int, ix.maxGroup)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < ix.NumGroups(); g++ {
			lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
			nt := scatterGroup(cells, touched, cols, q.radices, lo, hi)
			for _, key := range touched[:nt] {
				cells[key] = 0
			}
		}
	}
}
