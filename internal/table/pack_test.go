package table

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Differential and structural tests of the bit-packed scan kernel
// (pack.go) against both the unpacked kernel and the scalar hash-map
// oracle. Packing is adaptive — a plan packs only after
// packScanThreshold scans of one index — so every test here scans past
// the threshold and checks that results before and after the kernel
// switch are bit-identical.

// computePastThreshold evaluates q on tab's index enough times to cross
// the pack threshold, checking every scan (unpacked warm-ups and packed
// steady state alike) against the oracle. It returns the final, packed
// result.
func computePastThreshold(t *testing.T, tab *Table, q *Query, label string) *Marginal {
	t.Helper()
	ix := tab.Index()
	wantM, wantH := ComputeReferenceDetailed(tab, q)
	var got *Marginal
	for scan := 0; scan <= packScanThreshold+1; scan++ {
		var gotH []CellEntityCount
		got, gotH = ix.ComputeDetailed(q)
		l := fmt.Sprintf("%s scan=%d", label, scan)
		marginalsEqual(t, got, wantM, l)
		if len(gotH) != len(wantH) {
			t.Fatalf("%s: histogram length %d, want %d", l, len(gotH), len(wantH))
		}
		for i := range gotH {
			if gotH[i] != wantH[i] {
				t.Fatalf("%s: histogram[%d] = %+v, want %+v", l, i, gotH[i], wantH[i])
			}
		}
	}
	if q.packable {
		ix.packMu.Lock()
		pl := ix.packs[q.planKey]
		ix.packMu.Unlock()
		if pl == nil || pl.col == nil {
			t.Fatalf("%s: packable query did not build a packed column after %d scans",
				label, packScanThreshold+2)
		}
	}
	return got
}

// TestPackedKernelPropertyDifferential mirrors the unpacked property
// test over the same adversarial entity shapes, but drives every trial
// past the pack threshold so the packed run-length kernel is what gets
// compared against the oracle. Canonical subsets take the packed path;
// the shuffled ones exercise the fallback — both must agree with the
// oracle bit for bit.
func TestPackedKernelPropertyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(314159))
	shapes := []string{"all-anonymous", "single-giant", "giant-plus-dust", "few-heavy", "mixed"}
	for _, s := range []*Schema{testSchema(), wideSchema()} {
		for _, shape := range shapes {
			for _, rows := range []int{0, 1, 2, 65, 700} {
				tab := shapedTable(rng, s, shape, rows)
				for trial := 0; trial < 3; trial++ {
					names := randomAttrSubset(rng, s)
					q := MustNewQuery(s, names...)
					label := fmt.Sprintf("shape=%s rows=%d attrs=%v", shape, rows, names)
					computePastThreshold(t, tab, q, label)
				}
			}
		}
	}
}

// TestPackedMatchesUnpackedExactly pins kernel-vs-kernel bit identity
// directly: the same query on two indexes over the same table, one with
// packing disabled, at several worker counts including more workers
// than groups.
func TestPackedMatchesUnpackedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(161803))
	for _, workers := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(workers)
		for _, shape := range []string{"single-giant", "giant-plus-dust", "mixed"} {
			tab := shapedTable(rng, wideSchema(), shape, 900)
			packed := BuildIndex(tab)
			unpacked := BuildIndex(tab)
			unpacked.noPack = true
			q := MustNewQuery(tab.Schema(), "place", "industry", "sex")
			if !q.packable {
				t.Fatal("canonical three-attribute query should be packable")
			}
			for scan := 0; scan <= packScanThreshold+1; scan++ {
				gotM, gotH := packed.ComputeDetailed(q)
				wantM, wantH := unpacked.ComputeDetailed(q)
				label := fmt.Sprintf("workers=%d shape=%s scan=%d", workers, shape, scan)
				marginalsEqual(t, gotM, wantM, label)
				if len(gotH) != len(wantH) {
					t.Fatalf("%s: histogram length %d, want %d", label, len(gotH), len(wantH))
				}
				for i := range gotH {
					if gotH[i] != wantH[i] {
						t.Fatalf("%s: histogram[%d] = %+v, want %+v", label, i, gotH[i], wantH[i])
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// widthSchema builds a two-or-three attribute schema whose marginal over
// all attributes has exactly the given packed key width, including the
// boundary widths where keys exactly fill a word (16, 32) and the first
// width past the packable limit.
func widthSchema(t *testing.T, sizes ...int) *Schema {
	t.Helper()
	doms := make([]*Domain, len(sizes))
	for i, n := range sizes {
		vals := make([]string, n)
		for v := range vals {
			vals[v] = fmt.Sprintf("a%d_%d", i, v)
		}
		doms[i] = NewDomain(fmt.Sprintf("attr%d", i), vals...)
	}
	return NewSchema(doms...)
}

// TestPackedWidthBoundaries sweeps computable key widths across
// word-packing regimes: width 1 (64 keys/word), widths with padding
// bits (5, 11, 17), and width 16, where keys exactly fill the word.
// Wider marginals can't be evaluated at all — the dense result vectors
// are sized by the cell count, so a 2^32-cell marginal is out of reach
// for any kernel — which is why the 32/33 boundary is pinned at the
// plan-compilation level in TestPackedWidthLimit instead.
func TestPackedWidthBoundaries(t *testing.T) {
	cases := []struct {
		sizes []int
		width uint
	}{
		{[]int{2}, 1},         // 64 keys per word
		{[]int{16, 2}, 5},     // 12 per word, 4 padding bits
		{[]int{40, 40}, 11},   // 5 per word, 9 padding bits
		{[]int{256, 256}, 16}, // exactly 4 per word, no padding
		{[]int{512, 200}, 17}, // 3 per word, 13 padding bits
	}
	rng := rand.New(rand.NewSource(577215))
	for _, c := range cases {
		s := widthSchema(t, c.sizes...)
		names := make([]string, s.NumAttrs())
		for i := range names {
			names[i] = s.Attr(i).Name
		}
		q := MustNewQuery(s, names...)
		if q.packWidth != c.width {
			t.Fatalf("sizes %v: packWidth = %d, want %d", c.sizes, q.packWidth, c.width)
		}
		if !q.packable {
			t.Fatalf("sizes %v: width-%d query should be packable", c.sizes, c.width)
		}
		tab := New(s)
		for i := 0; i < 400; i++ {
			codes := make([]int, s.NumAttrs())
			for a := range codes {
				// Bias toward domain extremes so the top bits of the
				// packed key are exercised.
				if rng.Intn(3) == 0 {
					codes[a] = s.Attr(a).Size() - 1 - rng.Intn(2)
				} else {
					codes[a] = rng.Intn(s.Attr(a).Size())
				}
			}
			tab.AppendRow(int32(rng.Intn(30)), codes...)
		}
		computePastThreshold(t, tab, q, fmt.Sprintf("sizes=%v", c.sizes))
	}
}

// TestPackedWidthLimit pins the maxPackedWidth boundary at the plan
// level: a 2^32-cell marginal (width exactly 32) still compiles as
// packable, one more bit does not, and packedFor never builds a column
// for the over-wide plan no matter how often it scans.
func TestPackedWidthLimit(t *testing.T) {
	at := widthSchema(t, 2048, 2048, 1024) // 2^32 cells
	names := []string{"attr0", "attr1", "attr2"}
	q32 := MustNewQuery(at, names...)
	if q32.packWidth != 32 || !q32.packable {
		t.Fatalf("2^32-cell query: packWidth=%d packable=%v, want 32/true", q32.packWidth, q32.packable)
	}
	over := widthSchema(t, 2048, 2048, 2048) // 2^33 cells
	q33 := MustNewQuery(over, names...)
	if q33.packWidth != 33 || q33.packable {
		t.Fatalf("2^33-cell query: packWidth=%d packable=%v, want 33/false", q33.packWidth, q33.packable)
	}
	if q33.PlanKey() == "" {
		t.Fatal("over-wide canonical query still has a plan key (only packing is refused)")
	}
	tab := New(over)
	tab.AppendRow(0, 1, 2, 3)
	ix := BuildIndex(tab)
	for scan := 0; scan < packScanThreshold+3; scan++ {
		if ix.packedFor(q33) != nil {
			t.Fatal("packedFor built a column past maxPackedWidth")
		}
	}
}

// TestPackedSingleRunGroups pins the word-pattern fast path: when a
// group's rows all share one cell (the LODES shape for entity-level
// attributes), whole words collapse to a single pattern compare. The
// group sizes straddle word boundaries for the 11-bit width (5 keys per
// word): 1, 4, 5, 6, 10, 11, and a 10k-row giant.
func TestPackedSingleRunGroups(t *testing.T) {
	s := widthSchema(t, 40, 40) // width 11
	tab := New(s)
	entity := int32(0)
	for _, size := range []int{1, 4, 5, 6, 10, 11, 10000} {
		c0, c1 := int(entity)%40, (int(entity)*7)%40
		for i := 0; i < size; i++ {
			tab.AppendRow(entity, c0, c1)
		}
		entity++
	}
	q := MustNewQuery(s, "attr0", "attr1")
	computePastThreshold(t, tab, q, "single-run groups")
}

// TestPackedPlanAdaptiveThreshold pins the packing policy itself: no
// packed column before packScanThreshold scans, one after, the noPack
// knob disables packing entirely, and non-canonical attribute orders
// never pack.
func TestPackedPlanAdaptiveThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(662607))
	tab := randomTable(t, rng, 300)
	q := MustNewQuery(tab.Schema(), "place", "industry")

	ix := BuildIndex(tab)
	for scan := 1; scan <= packScanThreshold; scan++ {
		if pc := ix.packedFor(q); pc != nil {
			t.Fatalf("scan %d built a packed column before the threshold (%d)", scan, packScanThreshold)
		}
	}
	if pc := ix.packedFor(q); pc == nil {
		t.Fatalf("scan %d (past threshold) did not build a packed column", packScanThreshold+1)
	}

	off := BuildIndex(tab)
	off.noPack = true
	for scan := 0; scan < packScanThreshold+3; scan++ {
		if off.packedFor(q) != nil {
			t.Fatal("noPack index built a packed column")
		}
	}

	nc := MustNewQuery(tab.Schema(), "industry", "place")
	if nc.packable || nc.PlanKey() != "" {
		t.Fatal("non-canonical attribute order must not be packable")
	}
	ix2 := BuildIndex(tab)
	for scan := 0; scan < packScanThreshold+3; scan++ {
		if ix2.packedFor(nc) != nil {
			t.Fatal("non-canonical query built a packed column")
		}
	}
}

// TestPackedPlanKeySharing verifies that two query objects compiled over
// the same canonical attribute set share one packed column via the plan
// key, rather than building twice.
func TestPackedPlanKeySharing(t *testing.T) {
	rng := rand.New(rand.NewSource(141421))
	tab := randomTable(t, rng, 300)
	q1 := MustNewQuery(tab.Schema(), "place", "industry")
	q2 := MustNewQuery(tab.Schema(), "place", "industry")
	if q1 == q2 || q1.PlanKey() != q2.PlanKey() {
		t.Fatal("distinct query objects over one attribute set must share a plan key")
	}
	ix := BuildIndex(tab)
	var pc1, pc2 *packedColumn
	for scan := 0; scan <= packScanThreshold; scan++ {
		pc1 = ix.packedFor(q1)
	}
	pc2 = ix.packedFor(q2)
	if pc1 == nil || pc1 != pc2 {
		t.Fatalf("plan-key sharing broken: %p vs %p", pc1, pc2)
	}
}

// TestSortedIndexIdentityMode pins the streamed identity-mode build:
// tables appended in non-decreasing entity order (every generated LODES
// frame) index with no row permutation at all, while out-of-order or
// anonymous tables fall back to the counting sort — and both modes
// produce identical marginals, packed and unpacked.
func TestSortedIndexIdentityMode(t *testing.T) {
	s := testSchema()
	sorted := New(s)
	rng := rand.New(rand.NewSource(299792))
	for e := int32(0); e < 40; e++ {
		for i := 0; i < int(e%5)+1; i++ {
			sorted.AppendRow(e, rng.Intn(3), rng.Intn(2), rng.Intn(2))
		}
	}
	ix := BuildIndex(sorted)
	if ix.rows != nil {
		t.Fatal("entity-sorted table built a permutation index; want identity mode")
	}

	shuffled := New(s)
	perm := rng.Perm(sorted.NumRows())
	for _, row := range perm {
		codes := make([]int, s.NumAttrs())
		for a := range codes {
			codes[a] = sorted.Code(row, a)
		}
		shuffled.AppendRow(sorted.Entity(row), codes...)
	}
	if sx := BuildIndex(shuffled); sx.rows == nil {
		t.Fatal("shuffled table indexed in identity mode")
	}

	anon := New(s)
	anon.AppendRow(-1, 0, 0, 0)
	if ax := BuildIndex(anon); ax.rows == nil {
		t.Fatal("anonymous rows must take the counting-sort path (negative entities)")
	}

	q := MustNewQuery(s, "place", "sex")
	got := computePastThreshold(t, sorted, q, "identity-mode")
	want := computePastThreshold(t, shuffled, q, "permuted-mode")
	marginalsEqual(t, got, want, "identity vs permuted")
}

// TestPackedComputeSteadyStateAllocs extends the §6 allocation pins to
// the packed steady state: once the plan has packed, Compute's only
// allocations are still the documented result constants — the packed
// kernel has no per-scan scratch at all (no scatter array, no touched
// list).
func TestPackedComputeSteadyStateAllocs(t *testing.T) {
	singleShard(t)
	rng := rand.New(rand.NewSource(602214))
	tab := randomTable(t, rng, 2000)
	q := MustNewQuery(tab.Schema(), "place", "industry")
	ix := tab.Index()
	for scan := 0; scan <= packScanThreshold+1; scan++ {
		ix.Compute(q) // cross the pack threshold and warm the pool
	}
	allocs := testing.AllocsPerRun(50, func() {
		if ix.Compute(q) == nil {
			t.Fatal("nil marginal")
		}
	})
	if allocs > computeSteadyAllocs {
		t.Fatalf("packed Compute steady state allocates %v per op, documented bound is %d",
			allocs, computeSteadyAllocs)
	}
}

// FuzzPackedKernelDifferential drives the packed kernel from raw bytes,
// always scanning past the pack threshold: each byte pair becomes
// (entity selector, row codes); the query is chosen from the first
// byte, covering packed canonical sets and the unpacked shuffled
// fallback.
func FuzzPackedKernelDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x80, 0x80, 0x80, 0x80, 0x01, 0x02})
	f.Add([]byte{0x21, 0x08, 0x21, 0x08, 0x21, 0x08, 0x21, 0x08, 0x21, 0x08})
	queries := [][]string{{}, {"place"}, {"place", "industry"}, {"place", "industry", "sex"}, {"sex", "place"}}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := testSchema()
		tab := New(s)
		for i := 0; i+1 < len(data); i += 2 {
			ent := int32(data[i]%7) - 1
			c := int(data[i+1])
			tab.AppendRow(ent,
				c%s.Attr(0).Size(),
				(c/4)%s.Attr(1).Size(),
				(c/8)%s.Attr(2).Size())
		}
		qsel := 0
		if len(data) > 0 {
			qsel = int(data[0]) % len(queries)
		}
		q := MustNewQuery(s, queries[qsel]...)
		ix := tab.Index()
		wantM, wantH := ComputeReferenceDetailed(tab, q)
		for scan := 0; scan <= packScanThreshold+1; scan++ {
			gotM, gotH := ix.ComputeDetailed(q)
			marginalsEqual(t, gotM, wantM, "fuzz")
			if len(gotH) != len(wantH) {
				t.Fatalf("histogram length %d, want %d", len(gotH), len(wantH))
			}
			for i := range gotH {
				if gotH[i] != wantH[i] {
					t.Fatalf("histogram[%d] = %+v, want %+v", i, gotH[i], wantH[i])
				}
			}
		}
	})
}
