package table

import (
	"fmt"
)

// Incremental view maintenance of marginals (DESIGN.md §13).
//
// A quarterly delta leaves every untouched establishment's rows
// byte-identical, and within a touched establishment it only removes a
// suffix of the old group and appends new rows after the kept prefix
// (lodes.Dataset.ApplyDelta's layout contract). A cached marginal can
// therefore be *patched* instead of rescanned: the only (entity, cell)
// contributions that change are the ones named by the removed and added
// tail rows, and everything the patch needs beyond the tails — the
// entity's previous total contribution per cell — is carried in a
// MarginalView, the per-establishment contribution list maintained
// alongside the truth. Maintenance cost is O(delta rows + changed
// cells) per quarter, not O(touched groups) and not O(table): on the
// default churn regime ~84% of all rows sit in touched groups, so even
// a touched-groups-only rescan would barely beat the full pass the
// cache paid before.
//
// Two structural facts keep the patch loop off the memory wall:
//
//   - The touched-establishment spans (removed suffix, appended tail)
//     are validated and resolved once per advance into a PatchFrame,
//     shared by every maintained view, so N cached marginals pay the
//     index walk once, not N times.
//
//   - Attributes that are constant within every establishment group —
//     place, industry, ownership in a LODES snapshot — are detected at
//     view build time and factored out of the per-row key computation:
//     a group's static key part is cached per establishment, removed
//     tail rows need no column loads for those attributes at all, and
//     appended rows only a verification load. A marginal over
//     establishment attributes alone patches in O(1) per touched group.
//     The factoring is safe on arbitrary data: appended rows are
//     verified against the group's cached values, and a violating group
//     is demoted to the generic all-attribute path (mixed), never
//     answered wrong.
//
// The subtle statistic is the per-cell top-two entity contribution
// (x_v and the runner-up). The view tracks each cell's top-K
// contributors by identity with a floor invariant — every contributor
// whose value exceeds floor[c] is in the list, and every unlisted
// contributor is ≤ floor[c] — so after removing the changed entities
// and reinserting their new values, the patched top-two is exact
// whenever the candidate runner-up clears the floor. When it does not
// (the cached second place is dethroned and no tracked successor
// remains), the cell falls back to a targeted rescan: one restricted
// pass over the successor index that folds only the fallback cells.

// viewTopK is the per-cell tracked-contributor depth. Cells with at
// most viewTopK contributing establishments are tracked exhaustively
// (complete, floor 0) and never fall back; deeper cells keep the K
// largest plus the floor bound.
const viewTopK = 8

// viewCell is one (cell, contribution) entry of an establishment's
// sorted contribution list.
type viewCell struct {
	cell  int32
	count int32
}

// topEntry is one tracked contributor of a cell.
type topEntry struct {
	ent int32
	val int32
}

// PatchStats reports one Apply's work profile.
type PatchStats struct {
	// TouchedEntities is the number of delta-touched establishments
	// examined (including births and deaths).
	TouchedEntities int
	// ChangedPairs is the number of (establishment, cell) contributions
	// that actually changed.
	ChangedPairs int
	// PatchedCells is the number of distinct cells whose statistics were
	// patched.
	PatchedCells int
	// RescanCells is the number of patched cells whose top-two had to be
	// rebuilt by the targeted fallback rescan.
	RescanCells int
}

// PatchFrame is one advance's validated patch descriptor: per touched
// establishment, the removed base suffix and appended successor tail
// resolved to index row spans. It is built once per advance
// (NewPatchFrame) and shared by every maintained view's ApplyFrame, so
// the touched-set walk and its validation are paid once, not once per
// cached marginal.
type PatchFrame struct {
	base, next *Index
	spans      []patchSpan
	// verified is the set of schema attributes whose group-constancy has
	// been folded into the spans' constMask bits. Verification is lazy —
	// ApplyFrame demands exactly the attributes its view factored out as
	// static — so attributes no maintained view treats as group-constant
	// (the worker attributes, in practice) are never re-read at all. A
	// frame is therefore mutable and NOT safe for concurrent ApplyFrame
	// calls; the publisher serializes them under its advance lock.
	verified uint32
}

// patchSpan is one touched establishment's row movement.
type patchSpan struct {
	ent              int32
	newEnt           bool   // no group in base (birth, or a re-staffed empty establishment)
	bRef             int32  // first row of the base group (the group-constant reference), -1 when newEnt
	bTailLo, bTailHi int32  // removed base rows [lo, hi)
	nTailLo, nTailHi int32  // appended successor rows [lo, hi)
	constMask        uint32 // schema attrs constant across the appended tail (and matching the base group)
}

// NewPatchFrame resolves and validates one advance's touched set
// against the base index and its MergeIndex successor: touched must be
// strictly ascending, and kept[i] — the number of touched[i]'s base
// rows surviving verbatim as its successor group's prefix, per
// lodes.Dataset.ApplyDelta's layout contract (Delta.TouchedKept reports
// it) — must be consistent with both indexes' group extents.
func NewPatchFrame(base, next *Index, touched, kept []int32) (*PatchFrame, error) {
	if len(touched) != len(kept) {
		return nil, fmt.Errorf("table: patch frame got %d touched entities but %d kept counts", len(touched), len(kept))
	}
	f := &PatchFrame{base: base, next: next, spans: make([]patchSpan, 0, len(touched))}
	bg, ng := 0, 0
	for i, e := range touched {
		if i > 0 && touched[i-1] >= e {
			return nil, fmt.Errorf("table: patch frame touched entities not strictly ascending at %d", i)
		}
		for bg < len(base.entities) && base.entities[bg] < e {
			bg++
		}
		for ng < len(next.entities) && next.entities[ng] < e {
			ng++
		}
		baseHas := bg < len(base.entities) && base.entities[bg] == e
		nextHas := ng < len(next.entities) && next.entities[ng] == e
		k := int(kept[i])
		if k < 0 {
			return nil, fmt.Errorf("table: patch frame negative kept count for entity %d", e)
		}
		sp := patchSpan{ent: e, newEnt: !baseHas, bRef: -1}
		if baseHas {
			blo, bhi := int(base.starts[bg]), int(base.starts[bg+1])
			if k > bhi-blo {
				return nil, fmt.Errorf("table: patch frame kept %d exceeds entity %d's %d base rows", k, e, bhi-blo)
			}
			sp.bRef = int32(blo)
			sp.bTailLo, sp.bTailHi = int32(blo+k), int32(bhi)
		} else if k != 0 {
			return nil, fmt.Errorf("table: patch frame kept %d for newborn entity %d", k, e)
		}
		if nextHas {
			nlo, nhi := int(next.starts[ng]), int(next.starts[ng+1])
			if k > nhi-nlo {
				return nil, fmt.Errorf("table: patch frame kept %d exceeds entity %d's %d successor rows", k, e, nhi-nlo)
			}
			sp.nTailLo, sp.nTailHi = int32(nlo+k), int32(nhi)
		} else if baseHas && k != 0 {
			return nil, fmt.Errorf("table: patch frame kept %d for removed entity %d", k, e)
		}
		f.spans = append(f.spans, sp)
	}

	return f, nil
}

// ensureVerified verifies group-constancy of the requested schema
// attributes over each span's appended tail, once per attribute for
// all views sharing the frame: bit a of a span's constMask reports
// that attribute a is constant across the appended rows and (for an
// existing group) matches the group's base value. ApplyFrame requests
// exactly its view's static set, so each attribute's tail columns are
// read at most once per advance no matter how many views share the
// frame — and attributes no view factored out are never read.
func (f *PatchFrame) ensureVerified(mask uint32) {
	mask &^= f.verified
	if mask == 0 {
		return
	}
	nAttrs := f.base.t.Schema().NumAttrs()
	for a := 0; a < nAttrs; a++ {
		bit := uint32(1) << uint(a)
		if mask&bit == 0 {
			continue
		}
		bcol, ncol := f.base.col(a), f.next.col(a)
		for si := range f.spans {
			sp := &f.spans[si]
			lo, hi := sp.nTailLo, sp.nTailHi
			if lo >= hi {
				sp.constMask |= bit
				continue
			}
			var ref uint16
			if sp.newEnt {
				ref = ncol[lo]
				lo++
			} else {
				ref = bcol[sp.bRef]
			}
			ok := true
			for p := lo; p < hi; p++ {
				if ncol[p] != ref {
					ok = false
					break
				}
			}
			if ok {
				sp.constMask |= bit
			}
		}
	}
	f.verified |= mask
}

// MarginalView is a maintainable materialization of one query's truth:
// the marginal itself plus the per-establishment contribution lists and
// per-cell top-K contributor tracking that let Apply patch the truth
// under a quarterly delta without rescanning the table.
//
// A view is single-writer: Apply (and the scratch it reuses) must be
// externally serialized — the publisher calls it under its advance
// lock. The Marginal it returns is freshly allocated and immutable;
// readers of a previously returned Marginal are never affected by later
// Applies. If Apply returns an error the view is inconsistent and must
// be discarded.
type MarginalView struct {
	q *Query
	m *Marginal

	// ents lists the establishments the view has ever tracked,
	// ascending — a superset of the index's group entities (an
	// establishment whose rows all churn away stays as a tombstone with
	// an empty list, so the directory is append-mostly and never
	// rebuilt). cellsOf[i] is ents[i]'s contribution list, sorted by
	// cell; owned[i] records whether this view may mutate it in place
	// (false after Clone until first write — lists are copy-on-write so
	// clones stay independent). In a flat view the directory holds only
	// the mixed-demoted establishments; everyone else lives in the flat
	// arrays below.
	ents    []int32
	cellsOf [][]viewCell
	owned   []bool

	// Flat all-static specialization. When every query attribute is
	// group-constant (dynIdx empty — every marginal over establishment
	// attributes alone), each establishment contributes to exactly one
	// cell, so the directory degenerates to two dense arrays indexed by
	// establishment ID: flatCell[e] is e's cell, flatCnt[e] its
	// contribution (0 = no rows). A span then patches in O(1) with no
	// list walk, no lookup and no copy-on-write. An establishment whose
	// appended rows violate constancy is moved into the sparse directory
	// above as mixed (flatCnt zeroed) and handled by the generic path
	// from then on.
	flat     bool
	flatCnt  []int32
	flatCell []int32

	// Group-constant attribute factoring. weights[j] is query attr j's
	// mixed-radix weight (cell key = Σ col[j][row]·weights[j]).
	// staticIdx lists the attr positions found constant within every
	// group at build time, dynIdx the rest, allIdx every position.
	// staticOf[i] caches ents[i]'s static key part; mixed[i] marks a
	// group whose appended rows violated constancy (demoted to the
	// all-attribute path — never answered wrong, just slower).
	weights    []int32
	staticIdx  []int32
	dynIdx     []int32
	allIdx     []int32
	staticMask uint32 // schema-attr bits of staticIdx, checked against a span's constMask
	staticOf   []int32
	mixed      []bool

	// top is the flattened per-cell tracked-contributor window
	// (top[c*viewTopK : c*viewTopK+topLen[c]]), ordered by value
	// descending then entity ascending. floor[c] bounds every unlisted
	// contributor; complete[c] means the window holds every contributor.
	top      []topEntry
	topLen   []uint8
	complete []bool
	floor    []int32

	// Reusable scratch (see the single-writer contract above).
	outCnt   []int32 // per-cell removed-tail row counts of the entity in hand
	inCnt    []int32 // per-cell added-tail row counts
	cellHead []int32 // per-cell head into chain, -1 when cell unseen
	fbMark   []bool  // fallback-cell membership for the targeted rescan
	keysBuf  []int32
	diffBuf  []viewCell
	chgBuf   []viewChange
	fbBuf    []int32
}

// viewChange is one changed (establishment, cell) contribution.
type viewChange struct {
	cell int32
	ent  int32
	o, n int32 // old and new total contribution
	next int32 // next change of the same cell (chain), -1 at the end
}

// Query returns the query the view maintains.
func (v *MarginalView) Query() *Query { return v.q }

// Marginal returns the view's current truth. It is shared and must be
// treated as read-only.
func (v *MarginalView) Marginal() *Marginal { return v.m }

// newEmptyMarginal allocates an all-zero marginal for q.
func newEmptyMarginal(q *Query) *Marginal {
	return &Marginal{
		Query:                    q,
		Counts:                   make([]int64, q.size),
		MaxEntityContribution:    make([]int64, q.size),
		SecondEntityContribution: make([]int64, q.size),
		EntityCount:              make([]int64, q.size),
	}
}

// cloneMarginal copies a marginal's vectors (the query is shared).
// Each vector is cloned with append rather than make+copy: growslice
// skips zeroing for pointer-free element types, so the copy is the
// only pass over the memory.
func cloneMarginal(m *Marginal) *Marginal {
	return &Marginal{
		Query:                    m.Query,
		Counts:                   append([]int64(nil), m.Counts...),
		MaxEntityContribution:    append([]int64(nil), m.MaxEntityContribution...),
		SecondEntityContribution: append([]int64(nil), m.SecondEntityContribution...),
		EntityCount:              append([]int64(nil), m.EntityCount...),
	}
}

// insertTop inserts (ent, val) into cell c's tracked window, keeping it
// ordered by value descending then entity ascending, and folds any
// displaced value into floor[c]. val must be positive and ent must not
// already be present.
func (v *MarginalView) insertTop(c int, ent, val int32) {
	base := c * viewTopK
	ln := int(v.topLen[c])
	pos := ln
	for pos > 0 {
		prev := v.top[base+pos-1]
		if prev.val > val || (prev.val == val && prev.ent < ent) {
			break
		}
		pos--
	}
	if pos == viewTopK {
		// Does not make the window: it becomes an unlisted contributor.
		if val > v.floor[c] {
			v.floor[c] = val
		}
		return
	}
	if ln == viewTopK {
		evicted := v.top[base+ln-1]
		if evicted.val > v.floor[c] {
			v.floor[c] = evicted.val
		}
		ln--
	}
	copy(v.top[base+pos+1:base+ln+1], v.top[base+pos:base+ln])
	v.top[base+pos] = topEntry{ent: ent, val: val}
	v.topLen[c] = uint8(ln + 1)
}

// NewMarginalView materializes the query over the index together with
// the maintenance structures. The resulting Marginal is bit-identical
// to ix.Compute(q). The index must be entity-complete (no entity-less
// rows), as every lodes epoch snapshot is.
func NewMarginalView(ix *Index, q *Query) (*MarginalView, error) {
	if ix.t.Schema() != q.schema {
		return nil, fmt.Errorf("table: view query compiled against a different schema")
	}
	ng := ix.NumGroups()
	if ng > 0 && ix.entities[ng-1] < 0 {
		return nil, fmt.Errorf("table: marginal views require an entity-complete table")
	}
	size := q.size
	nAttrs := len(q.attrs)
	v := &MarginalView{
		q:        q,
		m:        newEmptyMarginal(q),
		ents:     make([]int32, 0, ng),
		cellsOf:  make([][]viewCell, 0, ng),
		owned:    make([]bool, 0, ng),
		staticOf: make([]int32, 0, ng),
		mixed:    make([]bool, 0, ng),
		weights:  make([]int32, nAttrs),
		top:      make([]topEntry, size*viewTopK),
		topLen:   make([]uint8, size),
		complete: make([]bool, size),
		floor:    make([]int32, size),
		outCnt:   make([]int32, size),
		inCnt:    make([]int32, size),
		cellHead: make([]int32, size),
		fbMark:   make([]bool, size),
	}
	for i := range v.cellHead {
		v.cellHead[i] = -1
	}
	acc := int32(1)
	for j := nAttrs - 1; j >= 0; j-- {
		v.weights[j] = acc
		acc *= int32(q.radices[j])
	}
	cols := queryCols(ix, q)

	// Detect group-constant attributes: one sequential pass per attr,
	// bailing at the first group whose rows disagree. On LODES data the
	// establishment attributes (place, industry, ownership) pass; worker
	// attributes bail within the first few groups.
	isStatic := make([]bool, nAttrs)
	for j := 0; j < nAttrs; j++ {
		isStatic[j] = groupConstant(cols[j], ix, ng)
	}
	for j := 0; j < nAttrs; j++ {
		v.allIdx = append(v.allIdx, int32(j))
		if isStatic[j] {
			v.staticIdx = append(v.staticIdx, int32(j))
			v.staticMask |= uint32(1) << uint(q.attrs[j])
		} else {
			v.dynIdx = append(v.dynIdx, int32(j))
		}
	}

	v.flat = len(v.dynIdx) == 0
	if v.flat {
		// Every group folds into the one cell named by its static key:
		// fill the dense arrays directly, no per-establishment lists.
		maxEnt := int32(0)
		if ng > 0 {
			maxEnt = ix.entities[ng-1] + 1
		}
		v.flatCnt = make([]int32, maxEnt)
		v.flatCell = make([]int32, maxEnt)
		for g := 0; g < ng; g++ {
			lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
			if lo >= hi {
				continue
			}
			e := ix.entities[g]
			sv := int32(0)
			for _, j := range v.staticIdx {
				sv += int32(cols[j][lo]) * v.weights[j]
			}
			cnt := int32(hi - lo)
			v.flatCnt[e] = cnt
			v.flatCell[e] = sv
			v.m.Counts[sv] += int64(cnt)
			v.m.EntityCount[sv]++
			v.insertTop(int(sv), e, cnt)
		}
	} else {
		cells := make([]int32, size)
		touched := make([]int, max(ix.maxGroup, 1))
		for g := 0; g < ng; g++ {
			lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
			e := ix.entities[g]
			nt := scatterGroup(cells, touched, cols, q.radices, lo, hi)
			list := make([]viewCell, nt)
			for i, key := range touched[:nt] {
				c := cells[key]
				cells[key] = 0
				list[i] = viewCell{cell: int32(key), count: c}
				v.m.Counts[key] += int64(c)
				v.m.EntityCount[key]++
				v.insertTop(key, e, c)
			}
			sortViewCells(list)
			sv := int32(0)
			for _, j := range v.staticIdx {
				sv += int32(cols[j][lo]) * v.weights[j]
			}
			v.ents = append(v.ents, e)
			v.cellsOf = append(v.cellsOf, list)
			v.owned = append(v.owned, true)
			v.staticOf = append(v.staticOf, sv)
			v.mixed = append(v.mixed, false)
		}
	}
	for c := 0; c < size; c++ {
		ln := int(v.topLen[c])
		base := c * viewTopK
		if ln > 0 {
			v.m.MaxEntityContribution[c] = int64(v.top[base].val)
		}
		if ln > 1 {
			v.m.SecondEntityContribution[c] = int64(v.top[base+1].val)
		}
		v.complete[c] = int64(ln) == v.m.EntityCount[c]
	}
	return v, nil
}

// groupConstant reports whether the column is constant within every
// entity group of the index.
func groupConstant(col []uint16, ix *Index, ng int) bool {
	for g := 0; g < ng; g++ {
		lo, hi := int(ix.starts[g]), int(ix.starts[g+1])
		if lo >= hi {
			continue
		}
		v0 := col[lo]
		for p := lo + 1; p < hi; p++ {
			if col[p] != v0 {
				return false
			}
		}
	}
	return true
}

// sortViewCells sorts a contribution list by cell (insertion sort: the
// lists are short — one entry per distinct cell the establishment's
// rows land in).
func sortViewCells(list []viewCell) {
	for i := 1; i < len(list); i++ {
		x := list[i]
		j := i - 1
		for j >= 0 && list[j].cell > x.cell {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = x
	}
}

// lookupCellIdx returns the cell's position in the sorted list, or -1.
// Typical lists are a handful of entries, where the early-exit linear
// scan beats binary search's mispredicted branches; long lists (mixed
// groups, large establishments) fall back to bisection.
func lookupCellIdx(list []viewCell, cell int32) int {
	if len(list) <= 16 {
		for i := range list {
			if c := list[i].cell; c >= cell {
				if c == cell {
					return i
				}
				return -1
			}
		}
		return -1
	}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].cell < cell {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].cell == cell {
		return lo
	}
	return -1
}

// lookupCell returns the entity's contribution to the cell (0 when
// absent) from its sorted list.
func lookupCell(list []viewCell, cell int32) int32 {
	if i := lookupCellIdx(list, cell); i >= 0 {
		return list[i].count
	}
	return 0
}

// Flat reports whether the view runs the dense all-static
// specialization: every query attribute is establishment-constant, so
// applying a span is O(1) regardless of how many rows moved. Flat
// views stay worth patching at any churn level; the publisher's
// patch-versus-evict cost gate consults this.
func (v *MarginalView) Flat() bool { return v.flat }

// Clone returns a fully independent view at the same state — the
// Marginal pointer is shared (it is immutable), everything else
// including the per-establishment contribution lists is copied.
// Benchmarks and the differential suites use it to reset a view
// between chain replays; the publisher clones nothing.
func (v *MarginalView) Clone() *MarginalView {
	size := v.q.size
	c := &MarginalView{
		q:         v.q,
		m:         v.m,
		ents:      append([]int32(nil), v.ents...),
		cellsOf:   make([][]viewCell, len(v.cellsOf)),
		owned:     make([]bool, len(v.owned)),
		staticOf:  append([]int32(nil), v.staticOf...),
		mixed:     append([]bool(nil), v.mixed...),
		flat:      v.flat,
		flatCnt:   append([]int32(nil), v.flatCnt...),
		flatCell:  append([]int32(nil), v.flatCell...),
		weights:    v.weights,
		staticIdx:  v.staticIdx,
		staticMask: v.staticMask,
		dynIdx:    v.dynIdx,
		allIdx:    v.allIdx,
		top:       append([]topEntry(nil), v.top...),
		topLen:    append([]uint8(nil), v.topLen...),
		complete:  append([]bool(nil), v.complete...),
		floor:     append([]int32(nil), v.floor...),
		outCnt:    make([]int32, size),
		inCnt:     make([]int32, size),
		cellHead:  make([]int32, size),
		fbMark:    make([]bool, size),
		diffBuf:   make([]viewCell, 0, cap(v.diffBuf)),
		chgBuf:    make([]viewChange, 0, cap(v.chgBuf)),
	}
	// Deep-copy the contribution lists so the clone is fully independent
	// of (and as warm as) the original: a clone exists to replay a chain
	// the original already absorbed, and sharing lists copy-on-write
	// would bill the replay for allocations a long-lived view pays only
	// at birth. One backing array holds every list, full-sliced so a
	// list replacement or growth can never bleed into its neighbor.
	total := 0
	for _, l := range v.cellsOf {
		total += len(l)
	}
	if total > 0 {
		backing := make([]viewCell, 0, total)
		for i, l := range v.cellsOf {
			if len(l) == 0 {
				continue
			}
			lo := len(backing)
			backing = append(backing, l...)
			c.cellsOf[i] = backing[lo:len(backing):len(backing)]
			c.owned[i] = true
		}
	}
	for i := range c.cellHead {
		c.cellHead[i] = -1
	}
	return c
}

// Apply patches the view's truth from the base epoch to the successor.
// It is NewPatchFrame followed by ApplyFrame; callers maintaining
// several views over the same advance should build the frame once and
// share it.
func (v *MarginalView) Apply(base, next *Index, touched, kept []int32) (*Marginal, PatchStats, error) {
	if len(touched) == 0 && len(kept) == 0 {
		return v.m, PatchStats{}, nil
	}
	f, err := NewPatchFrame(base, next, touched, kept)
	if err != nil {
		return nil, PatchStats{}, err
	}
	return v.ApplyFrame(f)
}

// ApplyFrame patches the view's truth from the frame's base epoch to
// its successor: the frame's base must be the index the view currently
// reflects, next its MergeIndex successor. It returns the successor
// epoch's truth, bit-identical to next.Compute(q), as a fresh
// allocation; the view then reflects next.
//
// On error the view is left inconsistent and must be discarded (the
// caller falls back to evict-and-rescan).
func (v *MarginalView) ApplyFrame(f *PatchFrame) (*Marginal, PatchStats, error) {
	var st PatchStats
	q := v.q
	if f.base.t.Schema() != q.schema || f.next.t.Schema() != q.schema {
		return nil, st, fmt.Errorf("table: Apply across a different schema")
	}
	st.TouchedEntities = len(f.spans)
	if len(f.spans) == 0 {
		return v.m, st, nil
	}
	baseCols := queryCols(f.base, q)
	nextCols := queryCols(f.next, q)
	if v.staticMask != 0 {
		f.ensureVerified(v.staticMask)
	}

	var err error
	changes := v.chgBuf[:0]
	if v.flat {
		changes, err = v.applyFlat(f, baseCols, nextCols, changes)
	} else {
		changes, err = v.applyDir(f, baseCols, nextCols, changes)
	}
	if err != nil {
		return nil, st, err
	}
	v.chgBuf = changes[:0]
	st.ChangedPairs = len(changes)
	if len(changes) == 0 {
		return v.m, st, nil
	}

	// Commit: patch the marginal, maintain the per-cell windows,
	// targeted-rescan what is left.
	newM := cloneMarginal(v.m)
	affected := v.keysBuf[:0]
	for ci := range changes {
		c := changes[ci].cell
		if v.cellHead[c] == -1 {
			affected = append(affected, c)
		}
		changes[ci].next = v.cellHead[c]
		v.cellHead[c] = int32(ci)
	}
	v.keysBuf = affected

	fallback := v.fbBuf[:0]
	for _, c := range affected {
		st.PatchedCells++
		rescan, err := v.patchCell(newM, int(c), changes)
		if err != nil {
			return nil, st, err
		}
		if rescan {
			fallback = append(fallback, c)
		}
		v.cellHead[c] = -1
	}
	v.fbBuf = fallback[:0]
	if len(fallback) > 0 {
		st.RescanCells = len(fallback)
		v.rescanCells(fallback, newM)
	}
	v.m = newM
	return newM, st, nil
}

// applyFlat is the span pass of a flat (all-static) view: each touched
// establishment patches its one cell in O(1) off the dense arrays. The
// sparse directory holds only mixed-demoted establishments; a span
// violating the view's static set moves its establishment there before
// taking the generic path.
func (v *MarginalView) applyFlat(f *PatchFrame, baseCols, nextCols [][]uint16, changes []viewChange) ([]viewChange, error) {
	// Grow the dense arrays to cover newborn IDs (spans are ascending,
	// so the last one bounds them all).
	if n := len(f.spans); n > 0 {
		if need := int(f.spans[n-1].ent) + 1 - len(v.flatCnt); need > 0 {
			v.flatCnt = append(v.flatCnt, make([]int32, need)...)
			v.flatCell = append(v.flatCell, make([]int32, need)...)
		}
	}
	vi := 0 // merge-walk over the mixed-only directory
	for si := range f.spans {
		sp := &f.spans[si]
		e := sp.ent
		for vi < len(v.ents) && v.ents[vi] < e {
			vi++
		}
		if vi < len(v.ents) && v.ents[vi] == e {
			var err error
			if changes, err = v.patchMixedSpan(sp, baseCols, nextCols, vi, changes); err != nil {
				return nil, err
			}
			continue
		}
		o := v.flatCnt[e]
		if !sp.newEnt && o == 0 {
			return nil, fmt.Errorf("table: Apply view out of sync with base index at entity %d", e)
		}
		if sp.newEnt && o != 0 {
			return nil, fmt.Errorf("table: Apply view has rows for entity %d absent from the base index", e)
		}
		if sp.constMask&v.staticMask != v.staticMask {
			// Constancy violated: demote to the sparse directory, then
			// handle generically from now on.
			var list []viewCell
			if o > 0 {
				list = []viewCell{{cell: v.flatCell[e], count: o}}
				v.flatCnt[e] = 0
			}
			v.insertEnt(vi, e, list, 0, true)
			var err error
			if changes, err = v.patchMixedSpan(sp, baseCols, nextCols, vi, changes); err != nil {
				return nil, err
			}
			continue
		}
		out := sp.bTailHi - sp.bTailLo
		in := sp.nTailHi - sp.nTailLo
		if out == in {
			continue
		}
		sv := v.flatCell[e]
		if o == 0 {
			if in == 0 {
				continue
			}
			sv = 0
			for _, j := range v.staticIdx {
				sv += int32(nextCols[j][sp.nTailLo]) * v.weights[j]
			}
		}
		n := o - out + in
		if n < 0 {
			return nil, fmt.Errorf("table: Apply drives entity %d cell %d contribution negative (%d - %d + %d)", e, sv, o, out, in)
		}
		v.flatCnt[e] = n
		v.flatCell[e] = sv
		changes = append(changes, viewChange{cell: sv, ent: e, o: o, n: n})
	}
	return changes, nil
}

// patchMixedSpan handles one mixed-demoted establishment of a flat
// view: the generic all-attribute fold over its removed and appended
// tails, with its contribution list kept in the sparse directory.
func (v *MarginalView) patchMixedSpan(sp *patchSpan, baseCols, nextCols [][]uint16, vi int, changes []viewChange) ([]viewChange, error) {
	oldList := v.cellsOf[vi]
	if !sp.newEnt && len(oldList) == 0 {
		return nil, fmt.Errorf("table: Apply view out of sync with base index at entity %d", sp.ent)
	}
	if sp.newEnt && len(oldList) > 0 {
		return nil, fmt.Errorf("table: Apply view has rows for entity %d absent from the base index", sp.ent)
	}
	keys := v.keysBuf[:0]
	keys = v.foldTail(baseCols, v.allIdx, int(sp.bTailLo), int(sp.bTailHi), 0, v.outCnt, v.inCnt, keys)
	keys = v.foldTail(nextCols, v.allIdx, int(sp.nTailLo), int(sp.nTailHi), 0, v.inCnt, v.outCnt, keys)
	v.keysBuf = keys
	diffs := v.diffBuf[:0]
	for _, key := range keys {
		out, in := v.outCnt[key], v.inCnt[key]
		v.outCnt[key], v.inCnt[key] = 0, 0
		if out == in {
			continue
		}
		o := lookupCell(oldList, key)
		n := o - out + in
		if n < 0 {
			return nil, fmt.Errorf("table: Apply drives entity %d cell %d contribution negative (%d - %d + %d)", sp.ent, key, o, out, in)
		}
		changes = append(changes, viewChange{cell: key, ent: sp.ent, o: o, n: n})
		diffs = append(diffs, viewCell{cell: key, count: n})
	}
	v.diffBuf = diffs
	if len(diffs) > 0 {
		sortViewCells(diffs)
		v.cellsOf[vi] = mergeCellList(oldList, diffs)
		v.owned[vi] = true
	}
	return changes, nil
}

// applyDir is the span pass of a view with dynamic attributes: the full
// directory of per-establishment contribution lists, with the static
// key part factored out of the per-row fold.
func (v *MarginalView) applyDir(f *PatchFrame, baseCols, nextCols [][]uint16, changes []viewChange) ([]viewChange, error) {
	vi := 0
	for si := range f.spans {
		sp := &f.spans[si]
		e := sp.ent
		for vi < len(v.ents) && v.ents[vi] < e {
			vi++
		}
		viewHas := vi < len(v.ents) && v.ents[vi] == e
		var oldList []viewCell
		if viewHas {
			oldList = v.cellsOf[vi]
		}
		if !sp.newEnt && (!viewHas || len(oldList) == 0) {
			return nil, fmt.Errorf("table: Apply view out of sync with base index at entity %d", e)
		}
		if sp.newEnt && len(oldList) > 0 {
			return nil, fmt.Errorf("table: Apply view has rows for entity %d absent from the base index", e)
		}

		// Death: the whole group leaves and nothing replaces it, so the
		// diff is exactly the negated contribution list — no column reads
		// at all, and the slot becomes a tombstone.
		if !sp.newEnt && sp.bTailLo == sp.bRef && sp.nTailLo >= sp.nTailHi {
			for _, vc := range oldList {
				changes = append(changes, viewChange{cell: vc.cell, ent: e, o: vc.count, n: 0})
			}
			v.cellsOf[vi] = nil
			v.owned[vi] = true
			continue
		}

		// Resolve the entity's static key part. The frame verified
		// per-attribute constancy over the appended tail (ensureVerified);
		// a span violating any of this view's static attributes demotes
		// the group to the generic all-attribute path.
		sv := int32(0)
		isMixed := viewHas && v.mixed[vi]
		freshStatic := false
		if len(v.staticIdx) > 0 && !isMixed {
			if sp.constMask&v.staticMask != v.staticMask {
				isMixed = true
			} else if !sp.newEnt {
				sv = v.staticOf[vi]
			} else if sp.nTailLo < sp.nTailHi {
				freshStatic = true
				for _, j := range v.staticIdx {
					sv += int32(nextCols[j][sp.nTailLo]) * v.weights[j]
				}
			}
		}

		// Tail diffs: contributions leaving with the removed suffix,
		// arriving with the appended rows.
		idxs := v.dynIdx
		if isMixed {
			idxs = v.allIdx
			sv = 0
		}
		keys := v.keysBuf[:0]
		keys = v.foldTail(baseCols, idxs, int(sp.bTailLo), int(sp.bTailHi), sv, v.outCnt, v.inCnt, keys)
		keys = v.foldTail(nextCols, idxs, int(sp.nTailLo), int(sp.nTailHi), sv, v.inCnt, v.outCnt, keys)
		v.keysBuf = keys

		diffs := v.diffBuf[:0]
		structural := false
		for _, key := range keys {
			out, in := v.outCnt[key], v.inCnt[key]
			v.outCnt[key], v.inCnt[key] = 0, 0
			if out == in {
				continue
			}
			o := lookupCell(oldList, key)
			n := o - out + in
			if n < 0 {
				return nil, fmt.Errorf("table: Apply drives entity %d cell %d contribution negative (%d - %d + %d)", e, key, o, out, in)
			}
			if o == 0 || n == 0 {
				structural = true
			}
			changes = append(changes, viewChange{cell: key, ent: e, o: o, n: n})
			diffs = append(diffs, viewCell{cell: key, count: n})
		}
		v.diffBuf = diffs
		if len(diffs) == 0 {
			continue
		}

		// Directory update: in place when only counts changed, a fresh
		// merged list when the cell set changed (copy-on-write after
		// Clone), an insertion for a first-seen establishment. A group
		// whose rows all leave keeps its ents slot as a tombstone with an
		// empty list.
		switch {
		case !viewHas:
			sortViewCells(diffs)
			v.insertEnt(vi, e, mergeCellList(nil, diffs), sv, isMixed)
		case structural:
			sortViewCells(diffs)
			v.cellsOf[vi] = mergeCellList(oldList, diffs)
			v.owned[vi] = true
			if freshStatic {
				v.staticOf[vi] = sv
			}
			if isMixed {
				v.mixed[vi] = true
			}
		default:
			if !v.owned[vi] {
				v.cellsOf[vi] = append([]viewCell(nil), oldList...)
				v.owned[vi] = true
			}
			list := v.cellsOf[vi]
			for _, d := range diffs {
				list[lookupCellIdx(list, d.cell)].count = d.count
			}
			if isMixed {
				v.mixed[vi] = true
			}
		}
	}
	return changes, nil
}

// foldTail accumulates the cell keys of rows [lo, hi) into tgt,
// appending each key's first touch (in either scratch array) to keys.
// Only the idxs attributes are loaded per row; sv carries the
// group-constant part of the key. The idxs-0 body folds the whole span
// into one cell without touching a column — the O(1)-per-group path for
// marginals over establishment attributes alone.
func (v *MarginalView) foldTail(cols [][]uint16, idxs []int32, lo, hi int, sv int32, tgt, other []int32, keys []int32) []int32 {
	if lo >= hi {
		return keys
	}
	switch len(idxs) {
	case 0:
		if tgt[sv] == 0 && other[sv] == 0 {
			keys = append(keys, sv)
		}
		tgt[sv] += int32(hi - lo)
	case 1:
		w0 := v.weights[idxs[0]]
		c0 := cols[idxs[0]][lo:hi]
		for i := range c0 {
			key := sv + int32(c0[i])*w0
			if tgt[key] == 0 && other[key] == 0 {
				keys = append(keys, key)
			}
			tgt[key]++
		}
	case 2:
		w0, w1 := v.weights[idxs[0]], v.weights[idxs[1]]
		c0, c1 := cols[idxs[0]][lo:hi], cols[idxs[1]][lo:hi]
		for i := range c0 {
			key := sv + int32(c0[i])*w0 + int32(c1[i])*w1
			if tgt[key] == 0 && other[key] == 0 {
				keys = append(keys, key)
			}
			tgt[key]++
		}
	default:
		for p := lo; p < hi; p++ {
			key := sv
			for _, j := range idxs {
				key += int32(cols[j][p]) * v.weights[j]
			}
			if tgt[key] == 0 && other[key] == 0 {
				keys = append(keys, key)
			}
			tgt[key]++
		}
	}
	return keys
}

// insertEnt inserts a first-seen establishment into the directory at
// position pos (an append for births, whose IDs extend the frame; a
// shift only for the rare re-staffed establishment that predates the
// view).
func (v *MarginalView) insertEnt(pos int, e int32, list []viewCell, sv int32, mixed bool) {
	v.ents = append(v.ents, 0)
	v.cellsOf = append(v.cellsOf, nil)
	v.owned = append(v.owned, false)
	v.staticOf = append(v.staticOf, 0)
	v.mixed = append(v.mixed, false)
	copy(v.ents[pos+1:], v.ents[pos:])
	copy(v.cellsOf[pos+1:], v.cellsOf[pos:])
	copy(v.owned[pos+1:], v.owned[pos:])
	copy(v.staticOf[pos+1:], v.staticOf[pos:])
	copy(v.mixed[pos+1:], v.mixed[pos:])
	v.ents[pos] = e
	v.cellsOf[pos] = list
	v.owned[pos] = true
	v.staticOf[pos] = sv
	v.mixed[pos] = mixed
}

// mergeCellList merges an establishment's sorted contribution list with
// its sorted diffs (count == 0 removes the cell) into a fresh list.
func mergeCellList(old []viewCell, diffs []viewCell) []viewCell {
	out := make([]viewCell, 0, len(old)+len(diffs))
	i, j := 0, 0
	for i < len(old) || j < len(diffs) {
		switch {
		case j >= len(diffs) || (i < len(old) && old[i].cell < diffs[j].cell):
			out = append(out, old[i])
			i++
		case i >= len(old) || old[i].cell > diffs[j].cell:
			if diffs[j].count > 0 {
				out = append(out, diffs[j])
			}
			j++
		default:
			if diffs[j].count > 0 {
				out = append(out, diffs[j])
			}
			i++
			j++
		}
	}
	return out
}

// patchCell folds the cell's chained changes into the new marginal and
// edits the tracked window in place: each changed entity's stale entry
// is removed if tracked, and its new value reinserted when it clears
// the floor (an insertion into a full window folds the displaced
// minimum into the floor). The window and floor invariants hold after
// every step, so the edits compose in any order. It reports whether the
// cell's top-two could not be resolved exactly afterwards — the window
// shrank below two entries above the floor while an untracked cohort
// remains — and the cell needs the targeted rescan.
func (v *MarginalView) patchCell(newM *Marginal, c int, changes []viewChange) (rescan bool, err error) {
	base := c * viewTopK
	ln := int(v.topLen[c])
	floor := v.floor[c]
	var dCount, dEnts int64
	for ci := v.cellHead[c]; ci != -1; ci = changes[ci].next {
		ch := &changes[ci]
		dCount += int64(ch.n) - int64(ch.o)
		if ch.o > 0 {
			dEnts--
		}
		if ch.n > 0 {
			dEnts++
		}
		// Drop the entity's stale window entry, if tracked. A stale value
		// below the floor cannot be tracked at all — tracked entries carry
		// their current value and every tracked value is ≥ the floor — so
		// the membership scan is skipped outright for the (common, in big
		// cells) changes living entirely in the untracked cohort.
		if ch.o >= floor {
			for t := 0; t < ln; t++ {
				if v.top[base+t].ent == ch.ent {
					copy(v.top[base+t:base+ln-1], v.top[base+t+1:base+ln])
					ln--
					break
				}
			}
		}
		n := ch.n
		if n <= floor {
			continue // stays (or lands) in the untracked cohort
		}
		if ln == viewTopK {
			last := v.top[base+ln-1]
			if n < last.val || (n == last.val && ch.ent > last.ent) {
				// Cannot displace the window minimum: the entity joins the
				// cohort and the floor absorbs its value.
				floor = n
				continue
			}
			// Displaces the minimum, which falls into the cohort.
			if last.val > floor {
				floor = last.val
			}
			ln--
		}
		pos := ln
		for pos > 0 {
			prev := v.top[base+pos-1]
			if prev.val > n || (prev.val == n && prev.ent < ch.ent) {
				break
			}
			pos--
		}
		copy(v.top[base+pos+1:base+ln+1], v.top[base+pos:base+ln])
		v.top[base+pos] = topEntry{ent: ch.ent, val: n}
		ln++
	}
	newM.Counts[c] += dCount
	newM.EntityCount[c] += dEnts
	if newM.Counts[c] < 0 || newM.EntityCount[c] < 0 {
		return false, fmt.Errorf("table: patch drives cell %d negative (count %d, entities %d)", c, newM.Counts[c], newM.EntityCount[c])
	}
	untracked := newM.EntityCount[c] - int64(ln)
	if untracked < 0 {
		return false, fmt.Errorf("table: patch cell %d tracks %d contributors, marginal has %d", c, ln, newM.EntityCount[c])
	}
	v.topLen[c] = uint8(ln)
	if untracked == 0 {
		floor = 0
	}
	v.floor[c] = floor
	v.complete[c] = untracked == 0
	// Exactness: with no untracked cohort the window is authoritative;
	// otherwise the runner-up must clear the floor bounding the cohort.
	if untracked > 0 && (ln < 2 || v.top[base+1].val < floor) {
		return true, nil
	}
	var top1, top2 int64
	if ln > 0 {
		top1 = int64(v.top[base].val)
	}
	if ln > 1 {
		top2 = int64(v.top[base+1].val)
	}
	newM.MaxEntityContribution[c] = top1
	newM.SecondEntityContribution[c] = top2
	return false, nil
}

// rescanCells rebuilds the fallback cells' statistics authoritatively
// from the view's own post-patch contribution lists: one pass over the
// per-establishment lists, folding only the marked cells. Counts and
// entity counts are recomputed too (they must and do agree with the
// patched values — the differential suites pin this), and the tracked
// windows are rebuilt from scratch. Cost is O(tracked pairs), with no
// index access at all.
func (v *MarginalView) rescanCells(cells []int32, newM *Marginal) {
	for _, c := range cells {
		v.fbMark[c] = true
		newM.Counts[c] = 0
		newM.EntityCount[c] = 0
		newM.MaxEntityContribution[c] = 0
		newM.SecondEntityContribution[c] = 0
		v.topLen[c] = 0
		v.floor[c] = 0
	}
	if v.flat {
		for e, cnt := range v.flatCnt {
			if cnt > 0 && v.fbMark[v.flatCell[e]] {
				c := v.flatCell[e]
				newM.Counts[c] += int64(cnt)
				newM.EntityCount[c]++
				v.insertTop(int(c), int32(e), cnt)
			}
		}
	}
	for vi, list := range v.cellsOf {
		e := v.ents[vi]
		for _, vc := range list {
			if !v.fbMark[vc.cell] {
				continue
			}
			newM.Counts[vc.cell] += int64(vc.count)
			newM.EntityCount[vc.cell]++
			v.insertTop(int(vc.cell), e, vc.count)
		}
	}
	for _, c := range cells {
		v.fbMark[c] = false
		base := int(c) * viewTopK
		ln := int(v.topLen[c])
		if ln > 0 {
			newM.MaxEntityContribution[c] = int64(v.top[base].val)
		}
		if ln > 1 {
			newM.SecondEntityContribution[c] = int64(v.top[base+1].val)
		}
		v.complete[c] = int64(ln) == newM.EntityCount[c]
	}
}
