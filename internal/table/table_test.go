package table

import (
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		NewDomain("place", "springfield", "shelbyville", "ogdenville"),
		NewDomain("industry", "retail", "manufacturing"),
		NewDomain("sex", "M", "F"),
	)
}

func TestDomainCodeRoundTrip(t *testing.T) {
	d := NewDomain("industry", "retail", "manufacturing", "services")
	for i, v := range d.Values {
		c, err := d.Code(v)
		if err != nil {
			t.Fatalf("Code(%q): %v", v, err)
		}
		if c != i {
			t.Errorf("Code(%q) = %d, want %d", v, c, i)
		}
		if got := d.Value(c); got != v {
			t.Errorf("Value(%d) = %q, want %q", c, got, v)
		}
	}
}

func TestDomainUnknownValue(t *testing.T) {
	d := NewDomain("sex", "M", "F")
	if _, err := d.Code("X"); err == nil {
		t.Error("Code of unknown value did not error")
	}
}

func TestDomainDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate domain values did not panic")
		}
	}()
	NewDomain("bad", "a", "a")
}

func TestIntRangeDomain(t *testing.T) {
	d := IntRangeDomain("age", 1, 5)
	if d.Size() != 5 {
		t.Fatalf("size = %d, want 5", d.Size())
	}
	if d.MustCode("3") != 2 {
		t.Errorf("MustCode(3) = %d, want 2", d.MustCode("3"))
	}
}

func TestDomainSortedValuesDoesNotMutate(t *testing.T) {
	d := NewDomain("x", "b", "a", "c")
	_ = d.SortedValues()
	if d.Values[0] != "b" {
		t.Error("SortedValues mutated the domain order")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := testSchema()
	idx, err := s.Resolve([]string{"sex", "place"})
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Resolve = %v, want [2 0]", idx)
	}
	if _, err := s.Resolve([]string{"sex", "sex"}); err == nil {
		t.Error("duplicate attribute in query did not error")
	}
	if _, err := s.Resolve([]string{"nope"}); err == nil {
		t.Error("unknown attribute did not error")
	}
}

func TestSchemaNames(t *testing.T) {
	s := testSchema()
	names := s.Names()
	want := []string{"place", "industry", "sex"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if !s.HasAttr("sex") || s.HasAttr("age") {
		t.Error("HasAttr wrong")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	s := testSchema()
	tab := New(s)
	tab.AppendRow(0, 0, 1, 0) // springfield, manufacturing, M
	if err := tab.AppendRowValues(1, "shelbyville", "retail", "F"); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
	if tab.Value(0, 1) != "manufacturing" {
		t.Errorf("Value(0,1) = %q", tab.Value(0, 1))
	}
	if tab.Value(1, 0) != "shelbyville" {
		t.Errorf("Value(1,0) = %q", tab.Value(1, 0))
	}
	if tab.Entity(0) != 0 || tab.Entity(1) != 1 {
		t.Error("entities wrong")
	}
	if tab.NumEntities() != 2 {
		t.Errorf("NumEntities = %d, want 2", tab.NumEntities())
	}
}

func TestTableAppendRowValidation(t *testing.T) {
	s := testSchema()
	tab := New(s)
	if err := tab.AppendRowValues(0, "springfield", "retail"); err == nil {
		t.Error("short row did not error")
	}
	if err := tab.AppendRowValues(0, "springfield", "retail", "X"); err == nil {
		t.Error("bad value did not error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range code did not panic")
			}
		}()
		tab.AppendRow(0, 0, 5, 0)
	}()
}

func TestTableFilter(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 10; i++ {
		tab.AppendRow(int32(i%3), i%3, i%2, (i/2)%2)
	}
	got := tab.Filter(func(row int) bool { return tab.Entity(row) == 1 })
	if got.NumRows() != 3 {
		t.Fatalf("filtered rows = %d, want 3", got.NumRows())
	}
	for r := 0; r < got.NumRows(); r++ {
		if got.Entity(r) != 1 {
			t.Error("filter kept wrong entity")
		}
	}
}

func TestQueryCellKeyRoundTrip(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s, "place", "sex")
	if q.NumCells() != 6 {
		t.Fatalf("NumCells = %d, want 6", q.NumCells())
	}
	f := func(a, b uint8) bool {
		p, x := int(a)%3, int(b)%2
		key := q.CellKey(p, x)
		codes := q.DecodeCell(key, nil)
		return codes[0] == p && codes[1] == x && key >= 0 && key < 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryCellKeysDistinct(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s, "place", "industry", "sex")
	seen := map[int]bool{}
	for p := 0; p < 3; p++ {
		for i := 0; i < 2; i++ {
			for x := 0; x < 2; x++ {
				k := q.CellKey(p, i, x)
				if seen[k] {
					t.Fatalf("duplicate cell key %d", k)
				}
				seen[k] = true
			}
		}
	}
	if len(seen) != q.NumCells() {
		t.Fatalf("got %d distinct keys, want %d", len(seen), q.NumCells())
	}
}

func TestQueryCellValuesAndString(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s, "industry", "sex")
	key, err := q.CellKeyForValues("manufacturing", "F")
	if err != nil {
		t.Fatal(err)
	}
	values := q.CellValues(key)
	if values[0] != "manufacturing" || values[1] != "F" {
		t.Errorf("CellValues = %v", values)
	}
	if got := q.CellString(key); got != "industry=manufacturing,sex=F" {
		t.Errorf("CellString = %q", got)
	}
}

func TestEmptyQueryIsTotalCount(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 7; i++ {
		tab.AppendRow(int32(i), i%3, i%2, i%2)
	}
	q := MustNewQuery(s)
	m := Compute(tab, q)
	if q.NumCells() != 1 {
		t.Fatalf("empty query cells = %d, want 1", q.NumCells())
	}
	if m.Counts[0] != 7 {
		t.Fatalf("q∅ count = %d, want 7", m.Counts[0])
	}
}

func TestComputeCounts(t *testing.T) {
	s := testSchema()
	tab := New(s)
	// 3 records in springfield/retail/M from entity 0,
	// 2 in springfield/retail/F from entity 1,
	// 1 in shelbyville/manufacturing/M from entity 2.
	for i := 0; i < 3; i++ {
		tab.AppendRow(0, 0, 0, 0)
	}
	for i := 0; i < 2; i++ {
		tab.AppendRow(1, 0, 0, 1)
	}
	tab.AppendRow(2, 1, 1, 0)

	q := MustNewQuery(s, "place", "industry")
	m := Compute(tab, q)
	if got := m.Counts[q.CellKey(0, 0)]; got != 5 {
		t.Errorf("springfield/retail = %d, want 5", got)
	}
	if got := m.Counts[q.CellKey(1, 1)]; got != 1 {
		t.Errorf("shelbyville/manufacturing = %d, want 1", got)
	}
	if m.Total() != 6 {
		t.Errorf("Total = %d, want 6", m.Total())
	}
	if m.NonZeroCells() != 2 {
		t.Errorf("NonZeroCells = %d, want 2", m.NonZeroCells())
	}
}

func TestComputeMaxEntityContribution(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 3; i++ {
		tab.AppendRow(0, 0, 0, 0)
	}
	for i := 0; i < 2; i++ {
		tab.AppendRow(1, 0, 0, 1)
	}
	q := MustNewQuery(s, "place")
	m := Compute(tab, q)
	// Cell springfield has entity 0 with 3 records and entity 1 with 2;
	// x_v must be 3 and entity count 2.
	cell := q.CellKey(0)
	if m.MaxEntityContribution[cell] != 3 {
		t.Errorf("x_v = %d, want 3", m.MaxEntityContribution[cell])
	}
	if m.EntityCount[cell] != 2 {
		t.Errorf("entity count = %d, want 2", m.EntityCount[cell])
	}
}

func TestComputeAnonymousEntities(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 4; i++ {
		tab.AppendRow(-1, 0, 0, 0)
	}
	q := MustNewQuery(s, "place")
	m := Compute(tab, q)
	cell := q.CellKey(0)
	if m.MaxEntityContribution[cell] != 1 {
		t.Errorf("anonymous records x_v = %d, want 1", m.MaxEntityContribution[cell])
	}
	if m.EntityCount[cell] != 4 {
		t.Errorf("anonymous records entity count = %d, want 4", m.EntityCount[cell])
	}
}

func TestComputeDetailedHistogram(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 3; i++ {
		tab.AppendRow(7, 0, 0, 0)
	}
	tab.AppendRow(7, 0, 0, 1)
	tab.AppendRow(9, 0, 0, 0)
	q := MustNewQuery(s, "place", "sex")
	m, hist := ComputeDetailed(tab, q)
	if m.Total() != 5 {
		t.Fatalf("total = %d", m.Total())
	}
	if len(hist) != 3 {
		t.Fatalf("histogram entries = %d, want 3", len(hist))
	}
	// Sorted by (cell, entity); check entity 7's M-cell count is 3.
	found := false
	for _, h := range hist {
		if h.Entity == 7 && h.Cell == q.CellKey(0, 0) {
			found = true
			if h.Count != 3 {
				t.Errorf("h(7, springfield/M) = %d, want 3", h.Count)
			}
		}
	}
	if !found {
		t.Error("histogram missing entity 7 springfield/M")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Cell < hist[i-1].Cell ||
			(hist[i].Cell == hist[i-1].Cell && hist[i].Entity <= hist[i-1].Entity) {
			t.Error("histogram not sorted by (cell, entity)")
		}
	}
}

func TestComputeSchemaMismatchPanics(t *testing.T) {
	s1 := testSchema()
	s2 := testSchema()
	tab := New(s1)
	q := MustNewQuery(s2, "place")
	defer func() {
		if recover() == nil {
			t.Error("schema mismatch did not panic")
		}
	}()
	Compute(tab, q)
}

func TestMarginalSumInvariant(t *testing.T) {
	// Property: for any table, the marginal total equals the row count,
	// for every attribute subset.
	s := testSchema()
	f := func(rows []uint16) bool {
		tab := New(s)
		for _, r := range rows {
			tab.AppendRow(int32(r%5), int(r)%3, int(r/3)%2, int(r/7)%2)
		}
		for _, names := range [][]string{{}, {"place"}, {"sex", "industry"}, {"place", "industry", "sex"}} {
			q := MustNewQuery(s, names...)
			if Compute(tab, q).Total() != int64(len(rows)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarginalConsistencyAcrossQueries(t *testing.T) {
	// Property: a coarser marginal is the aggregation of a finer one.
	s := testSchema()
	f := func(rows []uint16) bool {
		tab := New(s)
		for _, r := range rows {
			tab.AppendRow(int32(r%4), int(r)%3, int(r/3)%2, int(r/5)%2)
		}
		fine := Compute(tab, MustNewQuery(s, "place", "sex"))
		coarse := Compute(tab, MustNewQuery(s, "place"))
		qf, qc := fine.Query, coarse.Query
		for p := 0; p < 3; p++ {
			var sum int64
			for x := 0; x < 2; x++ {
				sum += fine.Counts[qf.CellKey(p, x)]
			}
			if sum != coarse.Counts[qc.CellKey(p)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Counts(t *testing.T) {
	s := testSchema()
	tab := New(s)
	tab.AppendRow(0, 0, 0, 0)
	tab.AppendRow(0, 0, 0, 0)
	m := Compute(tab, MustNewQuery(s, "sex"))
	fc := m.Float64Counts()
	if fc[0] != 2 || fc[1] != 0 {
		t.Errorf("Float64Counts = %v", fc)
	}
}

func TestComputeSecondEntityContribution(t *testing.T) {
	s := testSchema()
	tab := New(s)
	// Entity 0: 5 records, entity 1: 3, entity 2: 7 — all one cell.
	for i := 0; i < 5; i++ {
		tab.AppendRow(0, 0, 0, 0)
	}
	for i := 0; i < 3; i++ {
		tab.AppendRow(1, 0, 0, 0)
	}
	for i := 0; i < 7; i++ {
		tab.AppendRow(2, 0, 0, 0)
	}
	q := MustNewQuery(s, "place")
	m := Compute(tab, q)
	cell := q.CellKey(0)
	if m.MaxEntityContribution[cell] != 7 {
		t.Errorf("largest = %d, want 7", m.MaxEntityContribution[cell])
	}
	if m.SecondEntityContribution[cell] != 5 {
		t.Errorf("second = %d, want 5", m.SecondEntityContribution[cell])
	}
	if m.EntityCount[cell] != 3 {
		t.Errorf("contributors = %d, want 3", m.EntityCount[cell])
	}
}

func TestComputeSecondEntitySingleContributor(t *testing.T) {
	s := testSchema()
	tab := New(s)
	for i := 0; i < 4; i++ {
		tab.AppendRow(0, 0, 0, 0)
	}
	q := MustNewQuery(s, "place")
	m := Compute(tab, q)
	cell := q.CellKey(0)
	if m.SecondEntityContribution[cell] != 0 {
		t.Errorf("second with one contributor = %d, want 0", m.SecondEntityContribution[cell])
	}
}
