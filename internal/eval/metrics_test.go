package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/table"
)

func TestL1(t *testing.T) {
	got := L1([]float64{1, 2.5, 0}, []int64{0, 2, 3})
	if math.Abs(got-4.5) > 1e-12 {
		t.Errorf("L1 = %v, want 4.5", got)
	}
}

func TestL1Masked(t *testing.T) {
	got, n := L1Masked([]float64{1, 2.5, 0}, []int64{0, 2, 3}, []bool{true, false, true})
	if math.Abs(got-4) > 1e-12 || n != 2 {
		t.Errorf("L1Masked = (%v, %d), want (4, 2)", got, n)
	}
}

func TestRelativeErrors(t *testing.T) {
	got := RelativeErrors([]float64{110, 0, 3}, []int64{100, 0, 2})
	want := []float64{0.1, 0, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("rel err[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFractionWithin(t *testing.T) {
	a := []float64{0.1, 0.5, 0.9}
	b := []float64{0.15, 0.8, 0.95}
	if got := FractionWithin(a, b, 0.1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FractionWithin = %v, want 2/3", got)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman of monotone pair = %v, want 1", got)
	}
}

func TestSpearmanReversed(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if got := Spearman(a, b); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman of reversed pair = %v, want -1", got)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example without ties: rho = 1 - 6*sum(d^2)/(n(n^2-1)).
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 1, 4, 3, 5}
	// ranks differ by d = (1,1,1,1,0) => sum d^2 = 4; rho = 1-24/120 = 0.8.
	if got := Spearman(a, b); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Spearman = %v, want 0.8", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, average ranks are used; a tie-heavy vector against itself
	// still correlates perfectly.
	a := []float64{1, 1, 2, 2, 3}
	if got := Spearman(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(a,a) with ties = %v, want 1", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if got := Spearman([]float64{1}, []float64{2}); !math.IsNaN(got) {
		t.Errorf("Spearman of singleton = %v, want NaN", got)
	}
	if got := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("Spearman with zero variance = %v, want NaN", got)
	}
}

func TestSpearmanInvariantToMonotoneTransform(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			a[i] = v
			b[i] = v/2 + 1 // strictly monotone transform, no saturation
		}
		got := Spearman(a, b)
		if math.IsNaN(got) {
			return true // all-equal input
		}
		return math.Abs(got-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanSymmetric(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v % 17)
			b[i] = float64((v * 31) % 13)
		}
		x, y := Spearman(a, b), Spearman(b, a)
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v % 101)
			b[i] = float64((v >> 3) % 97)
		}
		rho := Spearman(a, b)
		if math.IsNaN(rho) {
			return true
		}
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMasked(t *testing.T) {
	a := []float64{1, 100, 2, 200, 3}
	b := []float64{1, -5, 2, -10, 3}
	mask := []bool{true, false, true, false, true}
	if got := SpearmanMasked(a, b, mask); math.Abs(got-1) > 1e-12 {
		t.Errorf("masked Spearman = %v, want 1", got)
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks = %v, want %v", got, want)
			break
		}
	}
}

func TestCellStrata(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(1))
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrOwnership)
	strata, err := CellStrata(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != q.NumCells() {
		t.Fatalf("strata length %d, want %d", len(strata), q.NumCells())
	}
	// Spot-check: every cell of a given place has that place's stratum.
	placeStrata := d.PlaceStrata()
	codes := make([]int, 2)
	for cell := 0; cell < q.NumCells(); cell++ {
		codes = q.DecodeCell(cell, codes)
		if strata[cell] != placeStrata[codes[0]] {
			t.Fatalf("cell %d stratum %v, place stratum %v", cell, strata[cell], placeStrata[codes[0]])
		}
	}
}

func TestCellStrataRequiresPlace(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(2))
	q := table.MustNewQuery(d.Schema(), lodes.AttrSex)
	if _, err := CellStrata(q, d); err == nil {
		t.Error("CellStrata without place attribute did not error")
	}
}

func TestStratumMasksPartition(t *testing.T) {
	strata := []lodes.SizeStratum{
		lodes.StratumUnder100, lodes.StratumOver100k, lodes.Stratum100To10k, lodes.StratumUnder100,
	}
	masks := StratumMasks(strata)
	for cell := range strata {
		count := 0
		for s := range masks {
			if masks[s][cell] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("cell %d appears in %d strata, want exactly 1", cell, count)
		}
	}
}

func TestTopKOverlapIdentical(t *testing.T) {
	a := []float64{5, 3, 9, 1, 7}
	if got := TopKOverlap(a, a, 3); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestTopKOverlapPartial(t *testing.T) {
	a := []float64{10, 9, 8, 1, 2} // top-2: {0,1}
	b := []float64{10, 1, 9, 2, 8} // top-2: {0,2}
	if got := TopKOverlap(a, b, 2); got != 0.5 {
		t.Errorf("overlap = %v, want 0.5", got)
	}
}

func TestTopKOverlapDisjoint(t *testing.T) {
	a := []float64{9, 8, 1, 2}
	b := []float64{1, 2, 9, 8}
	if got := TopKOverlap(a, b, 2); got != 0 {
		t.Errorf("overlap = %v, want 0", got)
	}
}

func TestTopKOverlapPanics(t *testing.T) {
	for _, k := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			TopKOverlap([]float64{1, 2}, []float64{1, 2}, k)
		}()
	}
}

func TestTopKOverlapNoisyRanking(t *testing.T) {
	// Small noise preserves the top-k membership of well-separated values.
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(50))
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace)
	m := table.Compute(d.WorkerFull, q)
	truth := m.Float64Counts()
	noisy := make([]float64, len(truth))
	s := dist.NewStreamFromSeed(51)
	for i, v := range truth {
		noisy[i] = v + 3*s.NormFloat64()
	}
	if got := TopKOverlap(truth, noisy, 10); got < 0.8 {
		t.Errorf("top-10 overlap with mild noise = %v, want >= 0.8", got)
	}
}
