package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/lodes"
)

// This file exports regenerated figure data as CSV for external plotting
// tools, one row per (mechanism, α, ε, scope) with scope "overall" or a
// stratum label — the same long format the paper's plotting scripts
// would consume.

// WriteCSV writes the figure's points in long format.
func (f *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "metric", "mechanism", "alpha", "eps", "scope", "value", "valid", "reason"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: writing csv header: %w", err)
	}
	writeRow := func(p Point, scope string, value float64) error {
		val := ""
		if p.Valid && !math.IsNaN(value) {
			val = strconv.FormatFloat(value, 'g', 10, 64)
		}
		return cw.Write([]string{
			f.ID,
			f.Metric.String(),
			p.Mechanism.String(),
			strconv.FormatFloat(p.Alpha, 'g', 10, 64),
			strconv.FormatFloat(p.Eps, 'g', 10, 64),
			scope,
			val,
			strconv.FormatBool(p.Valid),
			p.Reason,
		})
	}
	for _, p := range f.Points {
		if err := writeRow(p, "overall", p.Overall); err != nil {
			return fmt.Errorf("eval: writing csv row: %w", err)
		}
		for s := lodes.SizeStratum(0); s < lodes.NumStrata; s++ {
			if err := writeRow(p, s.String(), p.Strata[s]); err != nil {
				return fmt.Errorf("eval: writing csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flushing csv: %w", err)
	}
	return nil
}

// WriteTruncatedCSV writes a Finding 6 sweep in long format.
func WriteTruncatedCSV(w io.Writer, points []TruncatedPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"theta", "eps", "l1_ratio", "spearman", "removed_establishments", "removed_jobs"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: writing csv header: %w", err)
	}
	for _, p := range points {
		row := []string{
			strconv.Itoa(p.Theta),
			strconv.FormatFloat(p.Eps, 'g', 10, 64),
			strconv.FormatFloat(p.L1Ratio, 'g', 10, 64),
			strconv.FormatFloat(p.Spearman, 'g', 10, 64),
			strconv.Itoa(p.RemovedEmployers),
			strconv.Itoa(p.RemovedEdges),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: writing csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flushing csv: %w", err)
	}
	return nil
}
