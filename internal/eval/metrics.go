// Package eval is the evaluation harness for Section 10 of the paper: L1
// and relative error metrics, tie-aware Spearman rank correlation, the
// place-population strata, Workloads 1–3, Rankings 1–2, and the
// experiment runner that produces every figure's series as
// "L1 error ratio vs SDL" or "Spearman correlation vs SDL" grids over
// (mechanism, ε, α).
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lodes"
	"repro/internal/table"
)

// L1 returns the L1 distance between a released vector and the truth.
func L1(released []float64, truth []int64) float64 {
	if len(released) != len(truth) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(released), len(truth)))
	}
	var sum float64
	for i := range released {
		sum += math.Abs(released[i] - float64(truth[i]))
	}
	return sum
}

// L1Masked returns the L1 distance restricted to cells where mask is true,
// along with the number of cells included.
func L1Masked(released []float64, truth []int64, mask []bool) (float64, int) {
	if len(released) != len(truth) || len(mask) != len(truth) {
		panic("eval: length mismatch")
	}
	var sum float64
	n := 0
	for i := range released {
		if !mask[i] {
			continue
		}
		sum += math.Abs(released[i] - float64(truth[i]))
		n++
	}
	return sum, n
}

// RelativeErrors returns per-cell |released − true| / max(true, 1). Cells
// with zero true counts use a denominator of 1 to stay finite.
func RelativeErrors(released []float64, truth []int64) []float64 {
	if len(released) != len(truth) {
		panic("eval: length mismatch")
	}
	out := make([]float64, len(released))
	for i := range released {
		den := float64(truth[i])
		if den < 1 {
			den = 1
		}
		out[i] = math.Abs(released[i]-float64(truth[i])) / den
	}
	return out
}

// FractionWithin returns the fraction of cells whose value in a is within
// tol of the corresponding value in b. The paper reports, e.g., the share
// of cells whose relative error is within 10 percentage points of SDL's.
func FractionWithin(a, b []float64, tol float64) float64 {
	if len(a) != len(b) {
		panic("eval: length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	for i := range a {
		if math.Abs(a[i]-b[i]) <= tol {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// ranks assigns tie-aware (average) ranks to the values: the standard
// preparation for Spearman's ρ.
func ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j] (1-based ranks).
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Spearman returns Spearman's rank-order correlation ρ between two
// vectors, using average ranks for ties (the general Pearson-of-ranks
// formulation, which reduces to 1 − 6Σd²/(n(n²−1)) when there are no
// ties). It returns NaN for vectors shorter than 2 or with zero rank
// variance.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return math.NaN()
	}
	ra, rb := ranks(a), ranks(b)
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(varA*varB)
}

// SpearmanMasked computes Spearman's ρ restricted to cells where mask is
// true.
func SpearmanMasked(a, b []float64, mask []bool) float64 {
	if len(a) != len(b) || len(mask) != len(a) {
		panic("eval: length mismatch")
	}
	var fa, fb []float64
	for i := range a {
		if mask[i] {
			fa = append(fa, a[i])
			fb = append(fb, b[i])
		}
	}
	return Spearman(fa, fb)
}

// CellStrata returns, for every cell of a query that includes the place
// attribute, the population stratum of the cell's place. It errors if the
// query does not group by place.
func CellStrata(q *table.Query, d *lodes.Dataset) ([]lodes.SizeStratum, error) {
	placePos := -1
	for i, a := range q.Attrs() {
		if q.Schema().Attr(a).Name == lodes.AttrPlace {
			placePos = i
			break
		}
	}
	if placePos < 0 {
		return nil, fmt.Errorf("eval: query does not group by %s; cannot stratify", lodes.AttrPlace)
	}
	placeStrata := d.PlaceStrata()
	out := make([]lodes.SizeStratum, q.NumCells())
	codes := make([]int, len(q.Attrs()))
	for cell := 0; cell < q.NumCells(); cell++ {
		codes = q.DecodeCell(cell, codes)
		out[cell] = placeStrata[codes[placePos]]
	}
	return out, nil
}

// StratumMasks converts per-cell strata into one boolean mask per stratum.
func StratumMasks(strata []lodes.SizeStratum) [lodes.NumStrata][]bool {
	var masks [lodes.NumStrata][]bool
	for s := range masks {
		masks[s] = make([]bool, len(strata))
	}
	for cell, st := range strata {
		masks[st][cell] = true
	}
	return masks
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k: the fraction of b's top-k
// items (by value, descending) that also appear in a's top-k. This is
// the "did the ranked list get the right members" complement to
// Spearman's whole-ranking correlation, matching how OnTheMap users
// consume short ranked lists (Section 3.2).
func TopKOverlap(a, b []float64, k int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(a), len(b)))
	}
	if k <= 0 || k > len(a) {
		panic(fmt.Sprintf("eval: k=%d out of range for %d items", k, len(a)))
	}
	topA := topKSet(a, k)
	topB := topKSet(b, k)
	overlap := 0
	for i := range topB {
		if topA[i] {
			overlap++
		}
	}
	return float64(overlap) / float64(k)
}

// topKSet returns the index set of the k largest values (ties broken by
// lower index, making the result deterministic).
func topKSet(values []float64, k int) map[int]bool {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make(map[int]bool, k)
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}
