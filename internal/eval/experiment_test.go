package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

// sharedHarness builds one harness per test binary: the TestConfig dataset
// is large enough that regenerating it per test would dominate runtime.
var (
	harnessOnce sync.Once
	sharedH     *Harness
	sharedErr   error
)

func testHarness(t *testing.T) *Harness {
	t.Helper()
	harnessOnce.Do(func() {
		d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(7))
		sharedH, sharedErr = NewHarness(d, dist.NewStreamFromSeed(8), 5)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedH
}

func TestNewHarnessValidates(t *testing.T) {
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(1))
	if _, err := NewHarness(d, dist.NewStreamFromSeed(1), 0); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestSDLReleaseCached(t *testing.T) {
	h := testHarness(t)
	a, err := h.SDLRelease(Workload1Attrs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.SDLRelease(Workload1Attrs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SDL release not cached/deterministic")
		}
	}
}

func TestRunGridSmoke(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for _, p := range points {
		if !p.Valid {
			t.Errorf("%v at eps=2 alpha=0.1 invalid: %s", p.Mechanism, p.Reason)
			continue
		}
		if !(p.Overall > 0) || math.IsInf(p.Overall, 0) {
			t.Errorf("%v overall ratio = %v", p.Mechanism, p.Overall)
		}
	}
}

func TestRunGridInvalidPointsFlagged(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{0.25},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma, core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth Gamma needs eps > 5 ln(1.1) = 0.477: invalid at 0.25.
	// Smooth Laplace needs eps >= 2 ln(20) ln(1.1) = 0.571: invalid at 0.25.
	for _, p := range points {
		if p.Valid {
			t.Errorf("%v at eps=0.25 alpha=0.1 should be invalid", p.Mechanism)
		}
		if p.Reason == "" {
			t.Errorf("%v invalid point missing reason", p.Mechanism)
		}
	}
}

func TestRunGridLogLaplaceUnboundedSkipped(t *testing.T) {
	h := testHarness(t)
	// lambda = 2 ln(1.2)/0.25 = 1.46 >= 1: the paper does not plot this.
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{0.25},
		Alpha:      []float64{0.2},
		Mechanisms: []core.MechanismKind{core.MechLogLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Valid {
		t.Error("log-laplace with unbounded expectation should be skipped")
	}
	if !strings.Contains(points[0].Reason, "unbounded") {
		t.Errorf("reason = %q", points[0].Reason)
	}
}

func TestFinding1SmoothLaplaceBest(t *testing.T) {
	// Finding 5: Smooth Laplace performs best of the three (it satisfies a
	// weaker, approximate guarantee). Checked at the paper's baseline
	// eps=2, alpha=0.1 on Workload 1.
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[core.MechanismKind]float64{}
	for _, p := range points {
		if !p.Valid {
			t.Fatalf("%v invalid: %s", p.Mechanism, p.Reason)
		}
		ratio[p.Mechanism] = p.Overall
	}
	if !(ratio[core.MechSmoothLaplace] < ratio[core.MechLogLaplace]) {
		t.Errorf("SmoothLaplace (%v) not better than LogLaplace (%v)",
			ratio[core.MechSmoothLaplace], ratio[core.MechLogLaplace])
	}
	if !(ratio[core.MechSmoothLaplace] < ratio[core.MechSmoothGamma]) {
		t.Errorf("SmoothLaplace (%v) not better than SmoothGamma (%v)",
			ratio[core.MechSmoothLaplace], ratio[core.MechSmoothGamma])
	}
	// Finding 1's headline: comparable error — within a small constant
	// factor of SDL at the baseline parameters.
	for kind, r := range ratio {
		if r > 10 {
			t.Errorf("%v ratio %v not comparable to SDL", kind, r)
		}
	}
	if ratio[core.MechSmoothLaplace] > 2 {
		t.Errorf("SmoothLaplace ratio %v; paper finds it at or below SDL error", ratio[core.MechSmoothLaplace])
	}
}

func TestFinding4ErrorImprovesWithPopulation(t *testing.T) {
	// Finding 4: all algorithms perform better (relative to SDL) as place
	// population grows; the largest improvement is from stratum 0 to 1.
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if !p.Valid {
		t.Fatal(p.Reason)
	}
	small := p.Strata[lodes.StratumUnder100]
	large := p.Strata[lodes.StratumOver100k]
	if math.IsNaN(small) || math.IsNaN(large) {
		t.Fatalf("strata missing: small=%v large=%v", small, large)
	}
	if !(large < small) {
		t.Errorf("ratio in largest stratum (%v) not better than smallest (%v)", large, small)
	}
}

func TestFinding4RankingImprovesWithPopulation(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricSpearman)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	small := p.Strata[lodes.StratumUnder100]
	large := p.Strata[lodes.StratumOver100k]
	if !(large > small) {
		t.Errorf("Spearman in largest stratum (%v) not better than smallest (%v)", large, small)
	}
	// Finding: Smooth Laplace correlation close to 1 at eps >= 2. The
	// small test dataset (2k establishments) is sparser than both the
	// production data and the default experiment scale, so the tie-heavy
	// zero cells cost a little correlation; assert a slightly looser bound
	// here (EXPERIMENTS.md records ~0.95+ at the default 20k scale).
	if p.Overall < 0.8 {
		t.Errorf("overall Spearman = %v, want close to 1 at eps=2", p.Overall)
	}
}

func TestFinding6TruncatedLaplaceMuchWorse(t *testing.T) {
	h := testHarness(t)
	trunc, err := h.RunTruncatedGrid(Workload1Attrs(), []int{2, 100}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	smoothPts, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{4},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	smoothRatio := smoothPts[0].Overall
	for _, p := range trunc {
		if p.L1Ratio < 5*smoothRatio {
			t.Errorf("truncated(theta=%d) ratio %v not >> smooth-laplace %v", p.Theta, p.L1Ratio, smoothRatio)
		}
	}
	// Paper: at eps=4 truncated laplace is at least 10x SDL.
	foundBad := false
	for _, p := range trunc {
		if p.L1Ratio >= 10 {
			foundBad = true
		}
	}
	if !foundBad {
		t.Error("no theta gives the paper's >=10x SDL error at eps=4")
	}
}

func TestFinding6BiasDoesNotShrinkWithEps(t *testing.T) {
	h := testHarness(t)
	trunc, err := h.RunTruncatedGrid(Workload1Attrs(), []int{2}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := trunc[0].L1Ratio, trunc[1].L1Ratio
	// At theta=2 nearly every job is removed; the error is all bias, so
	// quadrupling eps barely helps.
	if hi < 0.8*lo {
		t.Errorf("theta=2 error dropped from %v to %v with eps; bias should dominate", lo, hi)
	}
}

func TestSpearmanImprovesWithEps(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{1, 4},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma},
		Delta:      PaperDelta,
	}, MetricSpearman)
	if err != nil {
		t.Fatal(err)
	}
	if !(points[1].Overall > points[0].Overall) {
		t.Errorf("Spearman at eps=4 (%v) not better than eps=1 (%v)",
			points[1].Overall, points[0].Overall)
	}
}

func TestL1RatioDecreasesWithEps(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{1, 4},
		Alpha:      []float64{0.05},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if !(points[1].Overall < points[0].Overall) {
		t.Errorf("L1 ratio at eps=4 (%v) not better than eps=1 (%v)",
			points[1].Overall, points[0].Overall)
	}
}

func TestFigure4SurchargeMakesMarginalsHarder(t *testing.T) {
	// Finding 3: at the same nominal eps, the full worker-attribute
	// marginal (eps divided by d=8) has a much larger error ratio than the
	// single-query regime.
	h := testHarness(t)
	single, err := h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        []float64{4},
		Alpha:      []float64{0.05},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	full, err := h.RunGrid(GridSpec{
		Attrs:                   Workload3Attrs(),
		Eps:                     []float64{4},
		Alpha:                   []float64{0.05},
		Mechanisms:              []core.MechanismKind{core.MechSmoothLaplace},
		Delta:                   PaperDelta,
		DivideEpsByWorkerDomain: true,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if !single[0].Valid || !full[0].Valid {
		t.Fatalf("points invalid: %s / %s", single[0].Reason, full[0].Reason)
	}
	if !(full[0].Overall > 2*single[0].Overall) {
		t.Errorf("marginal ratio %v should be much larger than single-query ratio %v",
			full[0].Overall, single[0].Overall)
	}
}

func TestRanking2Slice(t *testing.T) {
	h := testHarness(t)
	sliceAttrs, sliceValues := Ranking2Slice()
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        []float64{4},
		Alpha:      []float64{0.05},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
		Slice:      &SliceSpec{Attrs: sliceAttrs, Values: sliceValues},
	}, MetricSpearman)
	if err != nil {
		t.Fatal(err)
	}
	if !points[0].Valid {
		t.Fatal(points[0].Reason)
	}
	if points[0].Overall < 0.5 {
		t.Errorf("Ranking 2 Spearman = %v at eps=4; should be reasonably high", points[0].Overall)
	}
}

func TestSliceMaskErrors(t *testing.T) {
	h := testHarness(t)
	_, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma},
		Delta:      PaperDelta,
		Slice:      &SliceSpec{Attrs: []string{lodes.AttrSex}, Values: []string{"F"}},
	}, MetricL1Ratio)
	if err == nil {
		t.Error("slice over attribute not in query accepted")
	}
	_, err = h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma},
		Delta:      PaperDelta,
		Slice:      &SliceSpec{Attrs: []string{lodes.AttrSex}, Values: []string{"F", "extra"}},
	}, MetricL1Ratio)
	if err == nil {
		t.Error("mismatched slice attrs/values accepted")
	}
}

func TestRelativeErrorComparison(t *testing.T) {
	h := testHarness(t)
	frac, err := h.RelativeErrorComparison(Workload1Attrs(), core.MechSmoothLaplace, 0.1, 2, PaperDelta, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Finding 1 reports 75% for Smooth Laplace on the production data; on
	// synthetic data we assert the qualitative claim: a majority of cells.
	if frac < 0.5 {
		t.Errorf("within-10pp fraction = %v, want a majority", frac)
	}
	if _, err := h.RelativeErrorComparison(Workload1Attrs(), core.MechSmoothGamma, 0.1, 0.25, PaperDelta, 0.1); err == nil {
		t.Error("invalid parameters accepted")
	}
}

func TestFigureFormatting(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{0.25, 2},
		Alpha:      []float64{0.1},
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	f := &FigureResult{ID: "figure1", Title: "test", Metric: MetricL1Ratio, Points: points}
	text := f.Format()
	for _, want := range []string{"figure1", "overall", "pop>=100k", "n/a", "log-laplace"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, text)
		}
	}
}

func TestTruncatedFormatting(t *testing.T) {
	h := testHarness(t)
	pts, err := h.RunTruncatedGrid(Workload1Attrs(), []int{50}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTruncated(pts)
	if !strings.Contains(text, "finding6") || !strings.Contains(text, "theta") {
		t.Errorf("truncated format missing headers:\n%s", text)
	}
}

func TestTableTexts(t *testing.T) {
	t1 := Table1Text()
	for _, want := range []string{"Input Noise Infusion", "ER-EE-privacy", "Yes*", "No"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
	t2 := Table2Text()
	for _, want := range []string{"min-eps", "0.05", "0.0005"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 text missing %q", want)
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricL1Ratio.String() != "l1-ratio" || MetricSpearman.String() != "spearman" {
		t.Error("metric strings wrong")
	}
}

func TestVerifyFindingsAllPass(t *testing.T) {
	// The findings verifier asserts the paper's quantitative shape claims,
	// which are calibrated to the default experiment scale (20k
	// establishments); the shared 2k-establishment test harness is too
	// sparse for findings 2 and 3. Build a default-scale harness with few
	// trials instead.
	if testing.Short() {
		t.Skip("default-scale findings verification skipped in -short mode")
	}
	d := lodes.MustGenerate(lodes.DefaultConfig(), dist.NewStreamFromSeed(7))
	h, err := NewHarness(d, dist.NewStreamFromSeed(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := h.VerifyFindings()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 6 {
		t.Fatalf("got %d findings, want 6", len(findings))
	}
	for _, f := range findings {
		if !f.Passed {
			t.Errorf("%s failed: %s (measured: %s)", f.ID, f.Claim, f.Detail)
		}
	}
	text := FormatFindings(findings)
	if !strings.Contains(text, "finding6") || !strings.Contains(text, "PASS") {
		t.Error("findings format incomplete")
	}
}
