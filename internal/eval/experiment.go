package eval

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/mech"
	"repro/internal/sdl"
	"repro/internal/table"
)

// Harness runs the paper's experiments over one dataset: it holds the
// instantiated SDL baseline (whose factors are drawn once, like the
// production system's time-invariant factors), caches the SDL release per
// workload (the "current publication" every ratio is computed against),
// and derives per-trial noise streams from a single seed. True marginals
// are served by a core.Publisher, so the harness shares the engine's
// marginal cache instead of keeping its own.
type Harness struct {
	Data   *lodes.Dataset
	Trials int

	pub      *core.Publisher
	sdlSys   *sdl.System
	seed     *dist.Stream
	sdlCache map[string][]float64
}

// NewHarness builds a harness over the dataset with the given trial count.
func NewHarness(d *lodes.Dataset, seed *dist.Stream, trials int) (*Harness, error) {
	if trials < 1 {
		return nil, fmt.Errorf("eval: trials must be >= 1, got %d", trials)
	}
	sys, err := sdl.NewSystem(sdl.DefaultConfig(), d.NumEstablishments(), seed.Split("sdl"))
	if err != nil {
		return nil, err
	}
	return &Harness{
		Data:     d,
		Trials:   trials,
		pub:      core.NewPublisher(d),
		sdlSys:   sys,
		seed:     seed,
		sdlCache: make(map[string][]float64),
	}, nil
}

// SDL returns the harness's SDL system (for the attack example).
func (h *Harness) SDL() *sdl.System { return h.sdlSys }

// Publisher returns the harness's release engine (and with it the
// marginal cache the figures share).
func (h *Harness) Publisher() *core.Publisher { return h.pub }

func attrsKey(attrs []string) string { return strings.Join(attrs, ",") }

// Marginal returns the (cached) true marginal for the attribute set.
func (h *Harness) Marginal(attrs []string) (*table.Marginal, error) {
	return h.pub.Marginal(attrs)
}

// Prefetch computes every not-yet-cached marginal among the attribute
// sets in one pass over the dataset, so a run of several figures pays a
// single table scan up front.
func (h *Harness) Prefetch(attrSets ...[]string) error {
	return h.pub.PrefetchMarginals(attrSets)
}

// PrefetchWorkloads prefetches the marginals behind every figure and
// finding (Workloads 1–3 share two distinct attribute sets).
func (h *Harness) PrefetchWorkloads() error {
	return h.Prefetch(Workload1Attrs(), Workload2Attrs(), Workload3Attrs())
}

// SDLRelease returns the (cached) SDL publication of the attribute set.
// The release is drawn once per harness, mirroring the fact that agencies
// publish a single noise-infused table, not a fresh draw per comparison.
func (h *Harness) SDLRelease(attrs []string) ([]float64, error) {
	key := attrsKey(attrs)
	if r, ok := h.sdlCache[key]; ok {
		return r, nil
	}
	m, err := h.Marginal(attrs)
	if err != nil {
		return nil, err
	}
	rel, err := h.sdlSys.ReleaseMarginal(h.Data.WorkerFull, m.Query, h.seed.Split("sdl-release-"+key))
	if err != nil {
		return nil, err
	}
	h.sdlCache[key] = rel
	return rel, nil
}

// Point is one grid point of a figure: a (mechanism, ε, α) combination
// with its overall metric and the metric per place-population stratum.
// Invalid points (parameters outside the mechanism's validity region, or
// Log-Laplace with unbounded expectation, which the paper does not plot)
// carry Valid=false and a Reason.
type Point struct {
	Mechanism core.MechanismKind
	Eps       float64
	Alpha     float64
	Valid     bool
	Reason    string
	Overall   float64
	Strata    [lodes.NumStrata]float64
}

// GridSpec describes a figure's experiment grid.
type GridSpec struct {
	// Attrs is the marginal's attribute set.
	Attrs []string
	// Eps and Alpha are the parameter grids.
	Eps, Alpha []float64
	// Mechanisms are the algorithms to compare.
	Mechanisms []core.MechanismKind
	// Delta is Smooth Laplace's failure probability.
	Delta float64
	// DivideEpsByWorkerDomain applies Workload 3's budget accounting: the
	// x-axis ε is the *total* marginal loss, so each cell runs at
	// ε / d where d is the worker-attribute domain size (weak ER-EE
	// privacy's Theorem 7.5 fallback).
	DivideEpsByWorkerDomain bool
	// Slice optionally restricts the evaluated cells to one
	// worker-attribute combination (Figure 5's "females with college
	// degrees" ranking).
	Slice *SliceSpec
}

// SliceSpec selects the cells of a marginal matching fixed values of a
// subset of its attributes.
type SliceSpec struct {
	Attrs  []string
	Values []string
}

// sliceMask returns the boolean mask of cells matching the slice.
func sliceMask(q *table.Query, slice *SliceSpec) ([]bool, error) {
	mask := make([]bool, q.NumCells())
	if slice == nil {
		for i := range mask {
			mask[i] = true
		}
		return mask, nil
	}
	if len(slice.Attrs) != len(slice.Values) {
		return nil, fmt.Errorf("eval: slice has %d attrs but %d values", len(slice.Attrs), len(slice.Values))
	}
	// Positions of the slice attributes within the query.
	pos := make([]int, len(slice.Attrs))
	want := make([]int, len(slice.Attrs))
	for i, name := range slice.Attrs {
		found := -1
		for j, a := range q.Attrs() {
			if q.Schema().Attr(a).Name == name {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("eval: slice attribute %q not in query", name)
		}
		pos[i] = found
		code, err := q.Schema().Attr(q.Attrs()[found]).Code(slice.Values[i])
		if err != nil {
			return nil, err
		}
		want[i] = code
	}
	codes := make([]int, len(q.Attrs()))
	for cell := range mask {
		codes = q.DecodeCell(cell, codes)
		ok := true
		for i := range pos {
			if codes[pos[i]] != want[i] {
				ok = false
				break
			}
		}
		mask[cell] = ok
	}
	return mask, nil
}

// buildCellMechanism constructs the cell mechanism for a grid point, or
// reports why the point is skipped.
func buildCellMechanism(kind core.MechanismKind, alpha, eps, delta float64) (mech.CellMechanism, string, error) {
	switch kind {
	case core.MechLogLaplace:
		m, err := mech.NewLogLaplace(alpha, eps)
		if err != nil {
			return nil, err.Error(), nil
		}
		if !m.ExpectationBounded() {
			return nil, "log-laplace expectation unbounded (lambda >= 1)", nil
		}
		return m, "", nil
	case core.MechSmoothGamma:
		m, err := mech.NewSmoothGamma(alpha, eps)
		if err != nil {
			return nil, err.Error(), nil
		}
		return m, "", nil
	case core.MechSmoothLaplace:
		m, err := mech.NewSmoothLaplace(alpha, eps, delta)
		if err != nil {
			return nil, err.Error(), nil
		}
		return m, "", nil
	case core.MechEdgeLaplace:
		m, err := mech.NewEdgeLaplace(eps)
		if err != nil {
			return nil, err.Error(), nil
		}
		return m, "", nil
	}
	return nil, "", fmt.Errorf("eval: mechanism %v is not a cell mechanism", kind)
}

// Metric selects which comparison a grid computes.
type Metric int

const (
	// MetricL1Ratio: average (over trials) DP L1 error divided by the SDL
	// release's L1 error, per Figure 1/3/4.
	MetricL1Ratio Metric = iota
	// MetricSpearman: average Spearman correlation between the DP ranking
	// and the SDL ranking, per Figure 2/5.
	MetricSpearman
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricL1Ratio:
		return "l1-ratio"
	case MetricSpearman:
		return "spearman"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// RunGrid evaluates the grid and returns one Point per
// (mechanism, ε, α) combination, in mechanism-major order.
func (h *Harness) RunGrid(spec GridSpec, metric Metric) ([]Point, error) {
	marg, err := h.Marginal(spec.Attrs)
	if err != nil {
		return nil, err
	}
	q := marg.Query
	sdlRel, err := h.SDLRelease(spec.Attrs)
	if err != nil {
		return nil, err
	}
	strata, err := CellStrata(q, h.Data)
	if err != nil {
		return nil, err
	}
	stratumMasks := StratumMasks(strata)
	slice, err := sliceMask(q, spec.Slice)
	if err != nil {
		return nil, err
	}
	// Intersect each stratum mask with the slice.
	var masks [lodes.NumStrata][]bool
	for s := range masks {
		masks[s] = make([]bool, len(slice))
		for i := range slice {
			masks[s][i] = slice[i] && stratumMasks[s][i]
		}
	}

	// SDL reference errors (for L1 ratios).
	sdlOverall, _ := L1Masked(sdlRel, marg.Counts, slice)
	var sdlStrata [lodes.NumStrata]float64
	for s := range masks {
		sdlStrata[s], _ = L1Masked(sdlRel, marg.Counts, masks[s])
	}

	divisor := 1.0
	if spec.DivideEpsByWorkerDomain {
		divisor = float64(lodes.WorkerAttrDomainSize(h.Data.Schema(), spec.Attrs))
	}

	cells := core.CellInputs(marg)

	// Enumerate the grid, then evaluate points in parallel. Per-point and
	// per-trial noise streams are derived from (mechanism, α, ε, trial)
	// labels — never from shared mutable state — so the parallel run is
	// bit-identical to the sequential one.
	type job struct {
		idx        int
		kind       core.MechanismKind
		alpha, eps float64
		mechanism  mech.CellMechanism
		skipReason string
	}
	var jobs []job
	for _, kind := range spec.Mechanisms {
		for _, alpha := range spec.Alpha {
			for _, eps := range spec.Eps {
				j := job{idx: len(jobs), kind: kind, alpha: alpha, eps: eps}
				m, reason, err := buildCellMechanism(kind, alpha, eps/divisor, spec.Delta)
				if err != nil {
					return nil, err
				}
				if m == nil {
					j.skipReason = reason
				} else {
					j.mechanism = m
				}
				jobs = append(jobs, j)
			}
		}
	}

	points := make([]Point, len(jobs))
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		j := j
		pt := Point{Mechanism: j.kind, Eps: j.eps, Alpha: j.alpha}
		if j.mechanism == nil {
			pt.Reason = j.skipReason
			points[j.idx] = pt
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var overall float64
			var strataAcc [lodes.NumStrata]float64
			label := fmt.Sprintf("grid/%v/a=%g/e=%g/%v", j.kind, j.alpha, j.eps, metric)
			for trial := 0; trial < h.Trials; trial++ {
				stream := h.seed.Split(label).SplitIndex("trial", trial)
				noisy, err := mech.ReleaseCells(j.mechanism, cells, stream)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				switch metric {
				case MetricL1Ratio:
					l1, _ := L1Masked(noisy, marg.Counts, slice)
					overall += l1
					for s := range masks {
						sv, _ := L1Masked(noisy, marg.Counts, masks[s])
						strataAcc[s] += sv
					}
				case MetricSpearman:
					overall += SpearmanMasked(noisy, sdlRel, slice)
					for s := range masks {
						strataAcc[s] += SpearmanMasked(noisy, sdlRel, masks[s])
					}
				}
			}
			n := float64(h.Trials)
			pt.Valid = true
			switch metric {
			case MetricL1Ratio:
				pt.Overall = overall / n / sdlOverall
				for s := range strataAcc {
					if sdlStrata[s] > 0 {
						pt.Strata[s] = strataAcc[s] / n / sdlStrata[s]
					} else {
						pt.Strata[s] = math.NaN()
					}
				}
			case MetricSpearman:
				pt.Overall = overall / n
				for s := range strataAcc {
					pt.Strata[s] = strataAcc[s] / n
				}
			}
			points[j.idx] = pt
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}

// TruncatedPoint is one grid point of the node-DP baseline sweep.
type TruncatedPoint struct {
	Theta            int
	Eps              float64
	L1Ratio          float64
	Spearman         float64
	RemovedEmployers int
	RemovedEdges     int
}

// RunTruncatedGrid evaluates the Truncated Laplace baseline over
// (θ, ε) for Workload 1, producing the data behind Finding 6.
func (h *Harness) RunTruncatedGrid(attrs []string, thetas []int, epsGrid []float64) ([]TruncatedPoint, error) {
	marg, err := h.Marginal(attrs)
	if err != nil {
		return nil, err
	}
	sdlRel, err := h.SDLRelease(attrs)
	if err != nil {
		return nil, err
	}
	sdlL1 := L1(sdlRel, marg.Counts)
	var points []TruncatedPoint
	for _, theta := range thetas {
		for _, eps := range epsGrid {
			m, err := mech.NewTruncatedLaplace(eps, theta)
			if err != nil {
				return nil, err
			}
			var l1Sum, spSum float64
			var removedEmp, removedEdges int
			label := fmt.Sprintf("trunc/t=%d/e=%g", theta, eps)
			for trial := 0; trial < h.Trials; trial++ {
				stream := h.seed.Split(label).SplitIndex("trial", trial)
				noisy, res, err := m.ReleaseMarginal(h.Data.WorkerFull, marg.Query, stream)
				if err != nil {
					return nil, err
				}
				l1Sum += L1(noisy, marg.Counts)
				spSum += Spearman(noisy, sdlRel)
				removedEmp = res.RemovedEmployers
				removedEdges = res.RemovedEdges
			}
			n := float64(h.Trials)
			points = append(points, TruncatedPoint{
				Theta: theta, Eps: eps,
				L1Ratio:          l1Sum / n / sdlL1,
				Spearman:         spSum / n,
				RemovedEmployers: removedEmp,
				RemovedEdges:     removedEdges,
			})
		}
	}
	return points, nil
}

// RelativeErrorComparison returns the fraction of *published* cells
// (cells with a positive true count — relative error is ill-defined on
// empty cells) whose per-cell relative error under the mechanism is
// within tol of the SDL release's (averaged over trials) — the paper's
// "within 10 percentage points for 65% / 75% / 29% of counts" statistic
// in Finding 1.
func (h *Harness) RelativeErrorComparison(attrs []string, kind core.MechanismKind, alpha, eps, delta, tol float64) (float64, error) {
	marg, err := h.Marginal(attrs)
	if err != nil {
		return 0, err
	}
	sdlRel, err := h.SDLRelease(attrs)
	if err != nil {
		return 0, err
	}
	sdlRelErr := RelativeErrors(sdlRel, marg.Counts)
	m, reason, err := buildCellMechanism(kind, alpha, eps, delta)
	if err != nil {
		return 0, err
	}
	if m == nil {
		return 0, fmt.Errorf("eval: invalid parameters: %s", reason)
	}
	cells := core.CellInputs(marg)
	positive := make([]int, 0, len(marg.Counts))
	for i, c := range marg.Counts {
		if c > 0 {
			positive = append(positive, i)
		}
	}
	if len(positive) == 0 {
		return 0, fmt.Errorf("eval: marginal has no positive cells")
	}
	var acc float64
	for trial := 0; trial < h.Trials; trial++ {
		stream := h.seed.Split("relerr").SplitIndex("trial", trial)
		noisy, err := mech.ReleaseCells(m, cells, stream)
		if err != nil {
			return 0, err
		}
		dpRelErr := RelativeErrors(noisy, marg.Counts)
		a := make([]float64, len(positive))
		b := make([]float64, len(positive))
		for j, i := range positive {
			a[j], b[j] = dpRelErr[i], sdlRelErr[i]
		}
		acc += FractionWithin(a, b, tol)
	}
	return acc / float64(h.Trials), nil
}
