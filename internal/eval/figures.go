package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// FigureResult is the regenerated data behind one of the paper's figures.
type FigureResult struct {
	ID     string
	Title  string
	Metric Metric
	Points []Point
}

// Figure1 regenerates Figure 1: average L1 error ratio of the Workload 1
// marginal (place × industry × ownership) versus the current SDL system,
// overall and per place-size stratum.
func (h *Harness) Figure1() (*FigureResult, error) {
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        PaperEpsGrid(),
		Alpha:      PaperAlphaGrid(),
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "figure1",
		Title:  "L1 Error Ratio — Place x Industry x Ownership (no worker attributes)",
		Metric: MetricL1Ratio,
		Points: points,
	}, nil
}

// Figure2 regenerates Figure 2: Spearman correlation between each
// algorithm's ranking of Workload 1 cells and the SDL ranking (Ranking 1).
func (h *Harness) Figure2() (*FigureResult, error) {
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        PaperEpsGrid(),
		Alpha:      PaperAlphaGrid(),
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricSpearman)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "figure2",
		Title:  "Ranking Correlation of Employment Counts — Place x Industry x Ownership",
		Metric: MetricSpearman,
		Points: points,
	}, nil
}

// Figure3 regenerates Figure 3: average L1 error ratio for single
// (sex × education) queries on the workplace marginal — each cell of the
// Workload 2 marginal released at the full per-cell ε.
func (h *Harness) Figure3() (*FigureResult, error) {
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        PaperEpsGrid(),
		Alpha:      PaperAlphaGrid(),
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "figure3",
		Title:  "L1 Error Ratio — Single (Sex x Education) Query on the Workplace Marginal",
		Metric: MetricL1Ratio,
		Points: points,
	}, nil
}

// Figure4 regenerates Figure 4: average L1 error ratio for the full
// worker × workplace marginal (Workload 3). The x-axis ε is the *total*
// marginal budget, so every cell runs at ε/d with d = |sex|·|education|
// = 8 — the weak-privacy surcharge of Theorem 7.5.
func (h *Harness) Figure4() (*FigureResult, error) {
	points, err := h.RunGrid(GridSpec{
		Attrs:                   Workload3Attrs(),
		Eps:                     PaperEpsGridWide(),
		Alpha:                   PaperAlphaGrid(),
		Mechanisms:              PaperMechanisms(),
		Delta:                   PaperDelta,
		DivideEpsByWorkerDomain: true,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "figure4",
		Title:  "L1 Error Ratio — All (Sex x Education) Queries on the Workplace Marginal",
		Metric: MetricL1Ratio,
		Points: points,
	}, nil
}

// Figure5 regenerates Figure 5: Spearman correlation for Ranking 2 —
// ranking workplace cells by their count of female workers with a
// bachelor's degree or higher.
func (h *Harness) Figure5() (*FigureResult, error) {
	sliceAttrs, sliceValues := Ranking2Slice()
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        PaperEpsGrid(),
		Alpha:      PaperAlphaGrid(),
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
		Slice:      &SliceSpec{Attrs: sliceAttrs, Values: sliceValues},
	}, MetricSpearman)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "figure5",
		Title:  "Ranking Correlation — Females with College Degrees",
		Metric: MetricSpearman,
		Points: points,
	}, nil
}

// Finding6 regenerates the node-DP comparison: Truncated Laplace over the
// paper's θ grid for Workload 1.
func (h *Harness) Finding6() ([]TruncatedPoint, error) {
	return h.RunTruncatedGrid(Workload1Attrs(), PaperThetaGrid(), PaperEpsGrid())
}

// Format renders a figure's grid as fixed-width text: one block per
// mechanism, rows = α, columns = ε, first the overall metric and then
// each place-size stratum.
func (f *FigureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "metric: %v (vs. input-noise-infusion SDL baseline)\n", f.Metric)

	// Collect the grids actually present.
	epsSet := map[float64]bool{}
	alphaSet := map[float64]bool{}
	mechOrder := []core.MechanismKind{}
	mechSeen := map[core.MechanismKind]bool{}
	for _, p := range f.Points {
		epsSet[p.Eps] = true
		alphaSet[p.Alpha] = true
		if !mechSeen[p.Mechanism] {
			mechSeen[p.Mechanism] = true
			mechOrder = append(mechOrder, p.Mechanism)
		}
	}
	eps := sortedKeys(epsSet)
	alphas := sortedKeys(alphaSet)
	lookup := map[[2]float64]map[core.MechanismKind]Point{}
	for _, p := range f.Points {
		k := [2]float64{p.Alpha, p.Eps}
		if lookup[k] == nil {
			lookup[k] = map[core.MechanismKind]Point{}
		}
		lookup[k][p.Mechanism] = p
	}

	sections := []struct {
		name   string
		value  func(Point) float64
		strata int
	}{{name: "overall", strata: -1}}
	for s := lodes.SizeStratum(0); s < lodes.NumStrata; s++ {
		sections = append(sections, struct {
			name   string
			value  func(Point) float64
			strata int
		}{name: s.String(), strata: int(s)})
	}

	for _, m := range mechOrder {
		fmt.Fprintf(&b, "\n-- %v --\n", m)
		for _, sec := range sections {
			fmt.Fprintf(&b, "[%s]\n", sec.name)
			fmt.Fprintf(&b, "%10s", "alpha\\eps")
			for _, e := range eps {
				fmt.Fprintf(&b, "%10.4g", e)
			}
			b.WriteString("\n")
			for _, a := range alphas {
				fmt.Fprintf(&b, "%10.4g", a)
				for _, e := range eps {
					p, ok := lookup[[2]float64{a, e}][m]
					switch {
					case !ok:
						fmt.Fprintf(&b, "%10s", "-")
					case !p.Valid:
						fmt.Fprintf(&b, "%10s", "n/a")
					default:
						v := p.Overall
						if sec.strata >= 0 {
							v = p.Strata[sec.strata]
						}
						if math.IsNaN(v) {
							fmt.Fprintf(&b, "%10s", "nan")
						} else {
							fmt.Fprintf(&b, "%10.3f", v)
						}
					}
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

func sortedKeys(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

// FormatTruncated renders the Finding 6 sweep.
func FormatTruncated(points []TruncatedPoint) string {
	var b strings.Builder
	b.WriteString("== finding6: Truncated Laplace (node-DP baseline), Workload 1 ==\n")
	fmt.Fprintf(&b, "%8s%8s%12s%12s%12s%12s\n",
		"theta", "eps", "l1-ratio", "spearman", "rm-estabs", "rm-jobs")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d%8.4g%12.3f%12.3f%12d%12d\n",
			p.Theta, p.Eps, p.L1Ratio, p.Spearman, p.RemovedEmployers, p.RemovedEdges)
	}
	return b.String()
}

// Table1Text renders Table 1 (which privacy definitions satisfy which
// statutory requirements) from the privacy package's encoded matrix.
func Table1Text() string {
	var b strings.Builder
	b.WriteString("== table1: Privacy definitions and requirements they satisfy ==\n")
	fmt.Fprintf(&b, "%-40s%14s%14s%14s\n", "Definition", "Individuals", "Emp.Size", "Emp.Shape")
	for _, d := range privacy.Definitions() {
		fmt.Fprintf(&b, "%-40s", d.String())
		for _, r := range privacy.Requirements() {
			fmt.Fprintf(&b, "%14s", privacy.Satisfies(d, r).String())
		}
		b.WriteString("\n")
	}
	b.WriteString("(* requirement satisfied under weak adversaries)\n")
	return b.String()
}

// Table2Text renders Table 2 (minimum ε given α and δ for Smooth Laplace).
func Table2Text() string {
	var b strings.Builder
	b.WriteString("== table2: Minimum eps given alpha and delta (Smooth Laplace validity) ==\n")
	fmt.Fprintf(&b, "%10s%10s%12s\n", "delta", "alpha", "min-eps")
	for _, row := range privacy.Table2() {
		fmt.Fprintf(&b, "%10.4g%10.4g%12.4f\n", row.Delta, row.Alpha, row.MinEps)
	}
	b.WriteString("(formula: eps >= 2*ln(1/delta)*ln(1+alpha); see DESIGN.md for the\n")
	b.WriteString(" discrepancy with the paper's printed delta=0.05 rows)\n")
	return b.String()
}
