package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

// TestAllFiguresEndToEnd runs every Figure function on a single-trial
// harness and checks the structural properties each figure must have.
// The full 20-trial runs live in cmd/experiments; this is the fast
// regression net for the figure plumbing itself.
func TestAllFiguresEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short mode")
	}
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(70))
	h, err := NewHarness(d, dist.NewStreamFromSeed(71), 1)
	if err != nil {
		t.Fatal(err)
	}

	type figCase struct {
		run     func() (*FigureResult, error)
		id      string
		metric  Metric
		epsGrid []float64
	}
	cases := []figCase{
		{h.Figure1, "figure1", MetricL1Ratio, PaperEpsGrid()},
		{h.Figure2, "figure2", MetricSpearman, PaperEpsGrid()},
		{h.Figure3, "figure3", MetricL1Ratio, PaperEpsGrid()},
		{h.Figure4, "figure4", MetricL1Ratio, PaperEpsGridWide()},
		{h.Figure5, "figure5", MetricSpearman, PaperEpsGrid()},
	}
	for _, c := range cases {
		res, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if res.ID != c.id || res.Metric != c.metric {
			t.Errorf("%s: metadata = %s/%v", c.id, res.ID, res.Metric)
		}
		wantPoints := len(PaperMechanisms()) * len(PaperAlphaGrid()) * len(c.epsGrid)
		if len(res.Points) != wantPoints {
			t.Errorf("%s: %d points, want %d", c.id, len(res.Points), wantPoints)
		}
		valid, invalid := 0, 0
		for _, p := range res.Points {
			if p.Valid {
				valid++
				if c.metric == MetricL1Ratio && (!(p.Overall > 0) || math.IsInf(p.Overall, 0)) {
					t.Errorf("%s: point %v/%g/%g has ratio %v", c.id, p.Mechanism, p.Alpha, p.Eps, p.Overall)
				}
				if c.metric == MetricSpearman && (p.Overall < -1.01 || p.Overall > 1.01) {
					t.Errorf("%s: point %v/%g/%g has correlation %v", c.id, p.Mechanism, p.Alpha, p.Eps, p.Overall)
				}
			} else {
				invalid++
			}
		}
		if valid == 0 {
			t.Errorf("%s: no valid points", c.id)
		}
		// Every figure has validity holes at small eps / large alpha,
		// exactly like the paper's plots.
		if invalid == 0 {
			t.Errorf("%s: expected some invalid (n/a) points", c.id)
		}
		text := res.Format()
		if !strings.Contains(text, res.ID) || !strings.Contains(text, "n/a") {
			t.Errorf("%s: formatted output incomplete", c.id)
		}
	}
}

func TestFinding6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("finding6 sweep skipped in -short mode")
	}
	d := lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(72))
	h, err := NewHarness(d, dist.NewStreamFromSeed(73), 1)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := h.Finding6()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(PaperThetaGrid())*len(PaperEpsGrid()) {
		t.Fatalf("points = %d, want %d", len(pts), len(PaperThetaGrid())*len(PaperEpsGrid()))
	}
	for _, p := range pts {
		if p.L1Ratio <= 0 {
			t.Errorf("theta=%d eps=%g ratio %v", p.Theta, p.Eps, p.L1Ratio)
		}
		if p.Theta == 2 && p.RemovedEdges == 0 {
			t.Error("theta=2 should remove nearly all jobs")
		}
	}
}

func TestPaperGridDefinitions(t *testing.T) {
	if len(PaperEpsGrid()) != 5 || len(PaperEpsGridWide()) != 7 || len(PaperAlphaGrid()) != 5 {
		t.Error("paper grids wrong size")
	}
	if len(PaperThetaGrid()) != 6 || len(PaperMechanisms()) != 3 {
		t.Error("theta grid or mechanism list wrong size")
	}
	if PaperTrials != 20 || PaperDelta != 0.05 {
		t.Error("paper constants wrong")
	}
	attrs, values := Ranking2Slice()
	if len(attrs) != 2 || values[0] != "F" || values[1] != "BachelorsPlus" {
		t.Errorf("ranking 2 slice = %v/%v", attrs, values)
	}
	if len(Workload1Attrs()) != 3 || len(Workload2Attrs()) != 5 {
		t.Error("workload attribute lists wrong")
	}
	for _, k := range []core.MechanismKind{core.MechLogLaplace, core.MechSmoothLaplace, core.MechSmoothGamma} {
		found := false
		for _, m := range PaperMechanisms() {
			if m == k {
				found = true
			}
		}
		if !found {
			t.Errorf("mechanism %v missing from paper list", k)
		}
	}
}
