package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestBootstrapCIValidation(t *testing.T) {
	s := dist.NewStreamFromSeed(1)
	if _, _, err := BootstrapCI([]float64{1}, 0.95, 100, s); err == nil {
		t.Error("singleton accepted")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, 0, 100, s); err == nil {
		t.Error("level 0 accepted")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, 0.95, 5, s); err == nil {
		t.Error("too few resamples accepted")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	s := dist.NewStreamFromSeed(2)
	values := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01}
	lo, hi, err := BootstrapCI(values, 0.95, 2000, s)
	if err != nil {
		t.Fatal(err)
	}
	mean := Mean(values)
	if !(lo <= mean && mean <= hi) {
		t.Errorf("CI [%v, %v] excludes the sample mean %v", lo, hi, mean)
	}
	if !(hi-lo > 0) || hi-lo > 0.5 {
		t.Errorf("CI width %v implausible for tight data", hi-lo)
	}
}

func TestBootstrapCIWidensWithSpread(t *testing.T) {
	tight := []float64{1, 1.01, 0.99, 1, 1.02, 0.98}
	wide := []float64{0.2, 1.8, 0.5, 1.5, 0.1, 1.9}
	loT, hiT, err := BootstrapCI(tight, 0.9, 1000, dist.NewStreamFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	loW, hiW, err := BootstrapCI(wide, 0.9, 1000, dist.NewStreamFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if hiW-loW <= hiT-loT {
		t.Errorf("wide data CI %v not wider than tight %v", hiW-loW, hiT-loT)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	lo1, hi1, err := BootstrapCI(values, 0.95, 500, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(values, 0.95, 500, dist.NewStreamFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic for fixed stream")
	}
}

func TestTrialValuesMatchRunGrid(t *testing.T) {
	// The per-trial values' mean must equal the corresponding grid
	// point's Overall exactly (same label-derived streams).
	h := testHarness(t)
	spec := GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2, 4},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}
	points, err := h.RunGrid(spec, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	for idx, p := range points {
		values, err := h.TrialValues(spec, MetricL1Ratio, idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(values) != h.Trials {
			t.Fatalf("point %d: %d trial values, want %d", idx, len(values), h.Trials)
		}
		if math.Abs(Mean(values)-p.Overall) > 1e-9 {
			t.Errorf("point %d: trial mean %v != grid overall %v", idx, Mean(values), p.Overall)
		}
	}
}

func TestTrialValuesErrorBars(t *testing.T) {
	// End to end: bootstrap error bars for a grid point, covering the
	// point estimate.
	h := testHarness(t)
	spec := GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma},
		Delta:      PaperDelta,
	}
	points, err := h.RunGrid(spec, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	values, err := h.TrialValues(spec, MetricL1Ratio, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := BootstrapCI(values, 0.95, 1000, dist.NewStreamFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= points[0].Overall && points[0].Overall <= hi) {
		t.Errorf("CI [%v, %v] excludes point estimate %v", lo, hi, points[0].Overall)
	}
}

func TestTrialValuesErrors(t *testing.T) {
	h := testHarness(t)
	spec := GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{0.25},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothGamma},
		Delta:      PaperDelta,
	}
	if _, err := h.TrialValues(spec, MetricL1Ratio, 0); err == nil {
		t.Error("invalid point accepted")
	}
	if _, err := h.TrialValues(spec, MetricL1Ratio, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}
