package eval

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/lodes"
)

// Finding is one of the paper's Section 10 findings, checked
// programmatically against a harness run. Checks assert the *shape* of
// each finding (orderings, thresholds, monotonicity) rather than the
// paper's absolute numbers, which belong to the confidential production
// data.
type Finding struct {
	ID     string
	Claim  string
	Passed bool
	Detail string
}

// VerifyFindings runs reduced versions of the Section 10 experiments and
// checks each paper finding, returning one result per finding. It is the
// engine behind `cmd/experiments -verify` and the corresponding
// integration tests.
func (h *Harness) VerifyFindings() ([]Finding, error) {
	var out []Finding

	// Shared grid at the paper's baseline parameters.
	base, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2, 4},
		Alpha:      []float64{0.1},
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	ratio := map[core.MechanismKind]map[float64]float64{}
	for _, p := range base {
		if !p.Valid {
			return nil, fmt.Errorf("eval: baseline point %v/%g invalid: %s", p.Mechanism, p.Eps, p.Reason)
		}
		if ratio[p.Mechanism] == nil {
			ratio[p.Mechanism] = map[float64]float64{}
		}
		ratio[p.Mechanism][p.Eps] = p.Overall
	}

	// Finding 1: establishment-only marginals comparable to SDL at the
	// baseline (within a small factor; Smooth Laplace at or below parity).
	f1Worst := math.Max(ratio[core.MechLogLaplace][2], ratio[core.MechSmoothGamma][2])
	out = append(out, Finding{
		ID:     "finding1",
		Claim:  "establishment-only marginals: comparable to SDL at eps=2, alpha=0.1 (within ~3x; Smooth Laplace at/below parity)",
		Passed: f1Worst <= 3.5 && ratio[core.MechSmoothLaplace][2] <= 1.1,
		Detail: fmt.Sprintf("log-laplace %.2f, smooth-gamma %.2f, smooth-laplace %.2f",
			ratio[core.MechLogLaplace][2], ratio[core.MechSmoothGamma][2], ratio[core.MechSmoothLaplace][2]),
	})

	// Finding 2: single worker-attribute queries comparable; Smooth
	// Laplace beats SDL at eps=4 for mid alpha.
	single, err := h.RunGrid(GridSpec{
		Attrs:      Workload2Attrs(),
		Eps:        []float64{2, 4},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace, core.MechLogLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	var slSingle4, llSingle2 float64
	for _, p := range single {
		if p.Mechanism == core.MechSmoothLaplace && p.Eps == 4 {
			slSingle4 = p.Overall
		}
		if p.Mechanism == core.MechLogLaplace && p.Eps == 2 {
			llSingle2 = p.Overall
		}
	}
	out = append(out, Finding{
		ID:     "finding2",
		Claim:  "single (sex x education) queries: Log-Laplace within ~3x at eps=2; Smooth Laplace beats SDL at eps=4",
		Passed: llSingle2 <= 3.5 && slSingle4 < 1,
		Detail: fmt.Sprintf("log-laplace@2 %.2f, smooth-laplace@4 %.2f", llSingle2, slSingle4),
	})

	// Finding 3: full worker-attribute marginals are much harder; at low
	// alpha and high eps Smooth Laplace gets within ~3x.
	full, err := h.RunGrid(GridSpec{
		Attrs:                   Workload3Attrs(),
		Eps:                     []float64{4},
		Alpha:                   []float64{0.01},
		Mechanisms:              []core.MechanismKind{core.MechSmoothLaplace},
		Delta:                   PaperDelta,
		DivideEpsByWorkerDomain: true,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	singleSL2 := 0.0
	for _, p := range single {
		if p.Mechanism == core.MechSmoothLaplace && p.Eps == 2 {
			singleSL2 = p.Overall
		}
	}
	out = append(out, Finding{
		ID: "finding3",
		Claim: "full worker x workplace marginals: worse than single queries at equal nominal eps; " +
			"Smooth Laplace within ~3x at alpha=0.01, eps=4",
		Passed: full[0].Valid && full[0].Overall > singleSL2 && full[0].Overall <= 3.5,
		Detail: fmt.Sprintf("marginal@4 %.2f vs single@2 %.2f", full[0].Overall, singleSL2),
	})

	// Finding 4: performance improves with place population (largest
	// stratum better than smallest, for both L1 and ranking).
	strat, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		return nil, err
	}
	stratRank, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricSpearman)
	if err != nil {
		return nil, err
	}
	l1Small := strat[0].Strata[lodes.StratumUnder100]
	l1Big := strat[0].Strata[lodes.StratumOver100k]
	rkSmall := stratRank[0].Strata[lodes.StratumUnder100]
	rkBig := stratRank[0].Strata[lodes.StratumOver100k]
	out = append(out, Finding{
		ID:     "finding4",
		Claim:  "all algorithms perform better as place population grows (L1 ratio falls, Spearman rises)",
		Passed: l1Big < l1Small && rkBig > rkSmall,
		Detail: fmt.Sprintf("L1 ratio %.2f->%.2f, Spearman %.3f->%.3f (smallest->largest stratum)",
			l1Small, l1Big, rkSmall, rkBig),
	})

	// Finding 5: Smooth Laplace best of the three at the baseline.
	out = append(out, Finding{
		ID:    "finding5",
		Claim: "Smooth Laplace performs best of the three (it satisfies the weaker approximate guarantee)",
		Passed: ratio[core.MechSmoothLaplace][2] < ratio[core.MechLogLaplace][2] &&
			ratio[core.MechSmoothLaplace][2] < ratio[core.MechSmoothGamma][2],
		Detail: fmt.Sprintf("at eps=2: %.2f vs %.2f (log-laplace) and %.2f (smooth-gamma)",
			ratio[core.MechSmoothLaplace][2], ratio[core.MechLogLaplace][2], ratio[core.MechSmoothGamma][2]),
	})

	// Finding 6: Truncated Laplace at least ~10x SDL somewhere at eps=4,
	// always much worse than Smooth Laplace, and flat in eps at tiny theta.
	trunc, err := h.RunTruncatedGrid(Workload1Attrs(), []int{2, 100}, []float64{1, 4})
	if err != nil {
		return nil, err
	}
	get := func(theta int, eps float64) float64 {
		for _, p := range trunc {
			if p.Theta == theta && p.Eps == eps {
				return p.L1Ratio
			}
		}
		return math.NaN()
	}
	worst4 := math.Max(get(2, 4), get(100, 4))
	flat := math.Abs(get(2, 1)-get(2, 4)) / get(2, 1)
	out = append(out, Finding{
		ID: "finding6",
		Claim: "node-DP baseline: >=10x SDL error at eps=4; error flat in eps at small theta " +
			"(bias dominates); far worse than the ER-EE mechanisms",
		Passed: worst4 >= 10 && flat < 0.2 && get(100, 4) > 4*ratio[core.MechSmoothLaplace][4],
		Detail: fmt.Sprintf("theta=2: %.1f@1 vs %.1f@4; theta=100@4: %.1f; smooth-laplace@4: %.2f",
			get(2, 1), get(2, 4), get(100, 4), ratio[core.MechSmoothLaplace][4]),
	})

	return out, nil
}

// FormatFindings renders finding results as a PASS/FAIL table.
func FormatFindings(findings []Finding) string {
	var b strings.Builder
	b.WriteString("== paper findings verification ==\n")
	for _, f := range findings {
		status := "PASS"
		if !f.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s\n      claim: %s\n      measured: %s\n", status, f.ID, f.Claim, f.Detail)
	}
	return b.String()
}
