package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/mech"
)

// BootstrapCI computes a percentile-bootstrap confidence interval for the
// mean of per-trial metric values — the error bars for a figure's grid
// points. The paper plots point estimates over 20 trials; the bootstrap
// quantifies how much of the visual difference between mechanisms is
// trial noise (for the L1 ratios at small ε, quite a lot, which is why
// points near validity boundaries look erratic).
//
// level is the confidence level (e.g. 0.95); resamples the number of
// bootstrap resamples. The interval is deterministic given the stream.
func BootstrapCI(values []float64, level float64, resamples int, s *dist.Stream) (lo, hi float64, err error) {
	if len(values) < 2 {
		return 0, 0, fmt.Errorf("eval: bootstrap needs at least 2 values, got %d", len(values))
	}
	if !(level > 0 && level < 1) {
		return 0, 0, fmt.Errorf("eval: confidence level must be in (0,1), got %v", level)
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("eval: need at least 10 resamples, got %d", resamples)
	}
	means := make([]float64, resamples)
	n := len(values)
	for r := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += values[s.IntN(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx], nil
}

// TrialValues collects the per-trial overall metric values for one grid
// point (mechanism, ε, α) so callers can bootstrap error bars for it. It
// mirrors RunGrid's computation for a single point, using the same
// label-derived streams, so the mean of the returned values equals the
// corresponding Point.Overall exactly.
func (h *Harness) TrialValues(spec GridSpec, metric Metric, pointIdx int) ([]float64, error) {
	points := 0
	var kind = -1
	var alpha, eps float64
	for _, k := range spec.Mechanisms {
		for _, a := range spec.Alpha {
			for _, e := range spec.Eps {
				if points == pointIdx {
					kind, alpha, eps = int(k), a, e
				}
				points++
			}
		}
	}
	if kind < 0 {
		return nil, fmt.Errorf("eval: point index %d out of range (%d points)", pointIdx, points)
	}
	marg, err := h.Marginal(spec.Attrs)
	if err != nil {
		return nil, err
	}
	sdlRel, err := h.SDLRelease(spec.Attrs)
	if err != nil {
		return nil, err
	}
	slice, err := sliceMask(marg.Query, spec.Slice)
	if err != nil {
		return nil, err
	}
	divisor := 1.0
	if spec.DivideEpsByWorkerDomain {
		divisor = float64(lodes.WorkerAttrDomainSize(h.Data.Schema(), spec.Attrs))
	}
	m, reason, err := buildCellMechanism(core.MechanismKind(kind), alpha, eps/divisor, spec.Delta)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("eval: point invalid: %s", reason)
	}
	sdlL1, _ := L1Masked(sdlRel, marg.Counts, slice)
	cells := core.CellInputs(marg)
	label := fmt.Sprintf("grid/%v/a=%g/e=%g/%v", core.MechanismKind(kind), alpha, eps, metric)
	out := make([]float64, h.Trials)
	for trial := 0; trial < h.Trials; trial++ {
		stream := h.seed.Split(label).SplitIndex("trial", trial)
		noisy, err := mech.ReleaseCells(m, cells, stream)
		if err != nil {
			return nil, err
		}
		switch metric {
		case MetricL1Ratio:
			l1, _ := L1Masked(noisy, marg.Counts, slice)
			out[trial] = l1 / sdlL1
		case MetricSpearman:
			out[trial] = SpearmanMasked(noisy, sdlRel, slice)
		default:
			return nil, fmt.Errorf("eval: unknown metric %v", metric)
		}
	}
	return out, nil
}

// Mean returns the arithmetic mean of the values.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
