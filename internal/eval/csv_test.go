package eval

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lodes"
)

func TestFigureWriteCSV(t *testing.T) {
	h := testHarness(t)
	points, err := h.RunGrid(GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{0.25, 2},
		Alpha:      []float64{0.1},
		Mechanisms: []core.MechanismKind{core.MechSmoothLaplace},
		Delta:      PaperDelta,
	}, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	f := &FigureResult{ID: "figure1", Title: "t", Metric: MetricL1Ratio, Points: points}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 points x (overall + 4 strata).
	wantRows := 1 + 2*(1+int(lodes.NumStrata))
	if len(records) != wantRows {
		t.Fatalf("csv has %d rows, want %d", len(records), wantRows)
	}
	if records[0][0] != "figure" || records[0][6] != "value" {
		t.Errorf("header = %v", records[0])
	}
	// The eps=0.25 point is invalid: value empty, reason populated.
	foundInvalid := false
	for _, r := range records[1:] {
		if r[4] == "0.25" && r[5] == "overall" {
			foundInvalid = true
			if r[6] != "" || r[7] != "false" || r[8] == "" {
				t.Errorf("invalid point row = %v", r)
			}
		}
		if r[4] == "2" && r[5] == "overall" {
			if r[6] == "" || r[7] != "true" {
				t.Errorf("valid point row = %v", r)
			}
		}
	}
	if !foundInvalid {
		t.Error("no invalid row found")
	}
}

func TestWriteTruncatedCSV(t *testing.T) {
	h := testHarness(t)
	pts, err := h.RunTruncatedGrid(Workload1Attrs(), []int{50}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTruncatedCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "theta,eps") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunGridParallelDeterminism(t *testing.T) {
	// The parallel grid must be bit-identical across runs (streams are
	// label-derived, not order-derived).
	h := testHarness(t)
	spec := GridSpec{
		Attrs:      Workload1Attrs(),
		Eps:        []float64{1, 2, 4},
		Alpha:      []float64{0.05, 0.1},
		Mechanisms: PaperMechanisms(),
		Delta:      PaperDelta,
	}
	a, err := h.RunGrid(spec, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.RunGrid(spec, MetricL1Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across parallel runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
