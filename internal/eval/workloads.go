package eval

import (
	"repro/internal/core"
	"repro/internal/lodes"
)

// The query workloads and ranking tasks of Section 10.

// Workload1Attrs is the marginal over all establishment characteristics:
// place × industry (NAICS sector) × ownership. Figures 1 and 2.
func Workload1Attrs() []string {
	return []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
}

// Workload2Attrs is the workplace marginal extended by the worker
// attributes sex and education, evaluated as *single* queries (each cell
// released at the full per-cell ε). Figures 3 and 5.
func Workload2Attrs() []string {
	return []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership,
		lodes.AttrSex, lodes.AttrEducation}
}

// Workload3Attrs is the same attribute set as Workload 2 but released as a
// full marginal: under weak ER-EE privacy the whole marginal costs
// d·ε_cell with d = |sex|·|education| = 8, so at a total budget ε each
// cell runs at ε/8. Figure 4.
func Workload3Attrs() []string { return Workload2Attrs() }

// Ranking2Slice identifies Ranking 2's target series: within each
// place × industry × ownership cell, the count of female workers with a
// bachelor's degree or higher.
func Ranking2Slice() (attrs []string, values []string) {
	return []string{lodes.AttrSex, lodes.AttrEducation}, []string{"F", "BachelorsPlus"}
}

// PaperEpsGrid is the ε grid of Figures 1, 2, 3 and 5.
func PaperEpsGrid() []float64 { return []float64{0.25, 0.5, 1, 2, 4} }

// PaperEpsGridWide is the ε grid of Figure 4 (full worker×workplace
// marginals need a larger budget because of the d·ε surcharge).
func PaperEpsGridWide() []float64 { return []float64{1, 2, 4, 8, 10, 16, 20} }

// PaperAlphaGrid is the α grid used in every figure.
func PaperAlphaGrid() []float64 { return []float64{0.01, 0.05, 0.1, 0.15, 0.2} }

// PaperThetaGrid is the truncation-threshold grid of the node-DP baseline.
func PaperThetaGrid() []int { return []int{2, 20, 50, 100, 200, 500} }

// PaperMechanisms are the three algorithms every figure compares.
func PaperMechanisms() []core.MechanismKind {
	return []core.MechanismKind{core.MechLogLaplace, core.MechSmoothLaplace, core.MechSmoothGamma}
}

// PaperDelta is the failure probability the paper reports Smooth Laplace
// results for ("a high failure probability of δ = 0.05").
const PaperDelta = 0.05

// PaperTrials is the number of independent trials each point averages
// over ("average L1 error (over 20 independent trials)").
const PaperTrials = 20
