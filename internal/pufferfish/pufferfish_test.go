package pufferfish

import (
	"math"
	"testing"

	"repro/internal/mech"
)

func mustGamma(t *testing.T, alpha, eps float64) mech.SmoothGamma {
	t.Helper()
	m, err := mech.NewSmoothGamma(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustLogLap(t *testing.T, alpha, eps float64) mech.LogLaplace {
	t.Helper()
	m, err := mech.NewLogLaplace(alpha, eps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSmoothGammaPassesStrongNeighbors(t *testing.T) {
	// x vs (1+alpha)x on a single-establishment cell: distance-1 strong
	// alpha-neighbors; the pure guarantee must hold pointwise.
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	a := mech.CellInput{Count: 1000, MaxContribution: 1000}
	b := mech.CellInput{Count: 1100, MaxContribution: 1100}
	res, err := VerifyNeighbors(m, a, b, eps, DefaultGrid(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("SmoothGamma violated eps at o=%v: log ratio %v > %v",
			res.ArgMax, res.MaxLogRatio, eps)
	}
	if res.MaxLogRatio <= 0 {
		t.Error("max log ratio should be positive")
	}
}

func TestSmoothGammaPassesPlusOneNeighbor(t *testing.T) {
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	a := mech.CellInput{Count: 5, MaxContribution: 5}
	b := mech.CellInput{Count: 6, MaxContribution: 6}
	res, err := VerifyNeighbors(m, a, b, eps, DefaultGrid(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("SmoothGamma violated eps on +1 neighbor: %v at %v", res.MaxLogRatio, res.ArgMax)
	}
}

func TestLogLaplacePassesStrongNeighbors(t *testing.T) {
	alpha, eps := 0.1, 1.0
	m := mustLogLap(t, alpha, eps)
	a := mech.CellInput{Count: 500, MaxContribution: 500}
	b := mech.CellInput{Count: 550, MaxContribution: 550}
	g := Grid{Lo: -m.Gamma() + 0.01, Hi: 3000, Step: 0.25}
	res, err := VerifyNeighbors(m, a, b, eps, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("LogLaplace violated eps: %v at o=%v", res.MaxLogRatio, res.ArgMax)
	}
}

func TestSmoothLaplaceIsOnlyApproximatelyPrivate(t *testing.T) {
	// Algorithm 3 satisfies (alpha, eps, delta)-privacy with delta > 0:
	// the pointwise density-ratio bound must FAIL somewhere in the tails
	// (that is what delta buys), while holding on the central mass.
	alpha, eps, delta := 0.1, 2.0, 0.05
	m, err := mech.NewSmoothLaplace(alpha, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	a := mech.CellInput{Count: 1000, MaxContribution: 1000}
	b := mech.CellInput{Count: 1100, MaxContribution: 1100}
	wide := Grid{Lo: -15000, Hi: 17000, Step: 1}
	res, err := VerifyNeighbors(m, a, b, eps, wide)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("SmoothLaplace satisfied the pure eps bound on a wide grid; delta would be unnecessary")
	}
	// Central region (within ~2 noise scales): the bound holds there.
	central := Grid{Lo: 700, Hi: 1500, Step: 0.25}
	resC, err := VerifyNeighbors(m, a, b, eps, central)
	if err != nil {
		t.Fatal(err)
	}
	if !resC.Satisfied {
		t.Errorf("SmoothLaplace violated eps on the central mass: %v at %v",
			resC.MaxLogRatio, resC.ArgMax)
	}
}

func TestEdgeLaplacePassesEmployeeRequirement(t *testing.T) {
	// Table 1 row 2: edge-DP protects individuals...
	eps := 1.0
	m, err := mech.NewEdgeLaplace(eps)
	if err != nil {
		t.Fatal(err)
	}
	a := mech.CellInput{Count: 100}
	b := mech.CellInput{Count: 99}
	res, err := VerifyNeighbors(m, a, b, eps, Grid{Lo: 0, Hi: 200, Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("edge-DP violated the employee bound: %v", res.MaxLogRatio)
	}
}

func TestEdgeLaplaceFailsEmployerSizeRequirement(t *testing.T) {
	// ...but not establishment size: between sizes 100 and 110 (which
	// Definition 4.2 with alpha=0.1 requires to be eps-indistinguishable)
	// the Laplace(1/eps) density ratio reaches e^{10*eps}.
	eps := 1.0
	m, err := mech.NewEdgeLaplace(eps)
	if err != nil {
		t.Fatal(err)
	}
	a := mech.CellInput{Count: 100, MaxContribution: 100}
	b := mech.CellInput{Count: 110, MaxContribution: 110}
	res, err := VerifyNeighbors(m, a, b, eps, Grid{Lo: 0, Hi: 250, Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("edge-DP passed the employer-size bound; Table 1 says it must fail")
	}
	if res.MaxLogRatio < 9.9 {
		t.Errorf("max log ratio %v, want ~10 (= eps * size gap)", res.MaxLogRatio)
	}
}

func TestBayesFactorEmployeeRequirement(t *testing.T) {
	// Definition 4.1 for a worker in a 1000-worker cell, across a range of
	// informed priors: the Bayes factor must stay within e^eps for the
	// pure mechanisms.
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	for _, p := range []float64{0.01, 0.3, 0.5, 0.9, 0.99} {
		worlds := EmployeeWorlds(1000, 40, p)
		res, err := MaxBayesFactor(m, worlds,
			func(w World) bool { return w.Label == "in" },
			func(w World) bool { return w.Label == "out" },
			eps, DefaultGrid(worlds[0].Input, worlds[1].Input))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Errorf("prior %v: Bayes factor %v exceeds eps=%v at o=%v",
				p, res.MaxLogBayesFactor, eps, res.ArgMax)
		}
	}
}

func TestBayesFactorEmployerSizeWithinWindow(t *testing.T) {
	// Definition 4.2: sizes 200 vs 220 = (1+alpha)*200 with a prior also
	// spreading mass on other sizes. Bounded by eps for Smooth Gamma.
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	worlds, err := EmployerSizeWorlds(
		[]int64{180, 200, 220, 300},
		[]float64{0.1, 0.4, 0.4, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxBayesFactor(m, worlds,
		func(w World) bool { return w.Label == "size=200" },
		func(w World) bool { return w.Label == "size=220" },
		eps, Grid{Lo: -500, Hi: 1000, Step: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("employer-size Bayes factor %v exceeds eps=%v at o=%v",
			res.MaxLogBayesFactor, eps, res.ArgMax)
	}
}

func TestBayesFactorDistantSizesAllowed(t *testing.T) {
	// Semantics (Eq 8): sizes far apart in the alpha-metric MAY be
	// distinguished beyond e^eps — the definition only protects within
	// the (1+alpha) window. Verify the verifier measures a larger factor
	// for 100 vs 400 (distance ~15 at alpha=0.1).
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	worlds, err := EmployerSizeWorlds([]int64{100, 400}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxBayesFactor(m, worlds,
		func(w World) bool { return w.Label == "size=100" },
		func(w World) bool { return w.Label == "size=400" },
		eps, Grid{Lo: -500, Hi: 1500, Step: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("distant sizes reported as eps-indistinguishable; they should not be")
	}
}

func TestMaxBayesFactorMatchesPairwiseForPointSecrets(t *testing.T) {
	// With two point worlds and uniform prior, the Bayes factor equals
	// the raw likelihood ratio, so both verifiers must agree.
	alpha, eps := 0.1, 2.0
	m := mustGamma(t, alpha, eps)
	a := mech.CellInput{Count: 300, MaxContribution: 300}
	b := mech.CellInput{Count: 330, MaxContribution: 330}
	g := Grid{Lo: -500, Hi: 1200, Step: 0.25}
	pair, err := VerifyNeighbors(m, a, b, eps, g)
	if err != nil {
		t.Fatal(err)
	}
	worlds := []World{
		{Label: "a", Input: a, Prior: 0.5},
		{Label: "b", Input: b, Prior: 0.5},
	}
	bayes, err := MaxBayesFactor(m, worlds,
		func(w World) bool { return w.Label == "a" },
		func(w World) bool { return w.Label == "b" },
		eps, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.MaxLogRatio-bayes.MaxLogBayesFactor) > 1e-9 {
		t.Errorf("pairwise %v != bayes %v", pair.MaxLogRatio, bayes.MaxLogBayesFactor)
	}
}

func TestVerifierInputValidation(t *testing.T) {
	m := mustGamma(t, 0.1, 2)
	a := mech.CellInput{Count: 1}
	if _, err := VerifyNeighbors(m, a, a, 0, DefaultGrid(a, a)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := VerifyNeighbors(m, a, a, 1, Grid{Lo: 1, Hi: 0, Step: 1}); err == nil {
		t.Error("inverted grid accepted")
	}
	worlds := EmployeeWorlds(10, 5, 0.5)
	if _, err := MaxBayesFactor(m, worlds,
		func(World) bool { return true },
		func(World) bool { return true },
		1, DefaultGrid(worlds[0].Input, worlds[1].Input)); err == nil {
		t.Error("overlapping secrets accepted")
	}
	if _, err := MaxBayesFactor(m, worlds,
		func(World) bool { return false },
		func(w World) bool { return w.Label == "out" },
		1, DefaultGrid(worlds[0].Input, worlds[1].Input)); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := EmployerSizeWorlds([]int64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("mismatched sizes/priors accepted")
	}
	if _, err := EmployerSizeWorlds([]int64{-1}, []float64{1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestEmployeeWorldsConstruction(t *testing.T) {
	w := EmployeeWorlds(100, 30, 0.7)
	if w[0].Input.Count != 100 || w[1].Input.Count != 99 {
		t.Errorf("counts = %v, %v", w[0].Input.Count, w[1].Input.Count)
	}
	if w[0].Prior != 0.7 || math.Abs(w[1].Prior-0.3) > 1e-12 {
		t.Errorf("priors = %v, %v", w[0].Prior, w[1].Prior)
	}
	if w[1].Input.MaxContribution != 29 {
		t.Errorf("out-world x_v = %d, want 29", w[1].Input.MaxContribution)
	}
	w0 := EmployeeWorlds(1, 0, 0.5)
	if w0[1].Input.MaxContribution != 0 {
		t.Error("x_v should clamp at 0")
	}
}

func TestDefaultGridCoversInputs(t *testing.T) {
	a := mech.CellInput{Count: 100, MaxContribution: 50}
	b := mech.CellInput{Count: 500, MaxContribution: 200}
	g := DefaultGrid(a, b)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Lo >= a.Count || g.Hi <= b.Count {
		t.Errorf("grid [%v, %v] does not cover inputs", g.Lo, g.Hi)
	}
	if g.Step <= 0 || g.Step > (g.Hi-g.Lo)/100 {
		t.Errorf("grid step %v too coarse", g.Step)
	}
}

func TestMaxBayesFactorNegativePriorRejected(t *testing.T) {
	m := mustGamma(t, 0.1, 2)
	worlds := []World{
		{Label: "a", Input: mech.CellInput{Count: 1}, Prior: -0.5},
		{Label: "b", Input: mech.CellInput{Count: 2}, Prior: 0.5},
	}
	_, err := MaxBayesFactor(m, worlds,
		func(w World) bool { return w.Label == "a" },
		func(w World) bool { return w.Label == "b" },
		1, Grid{Lo: -10, Hi: 10, Step: 0.5})
	if err == nil {
		t.Error("negative prior accepted")
	}
}
