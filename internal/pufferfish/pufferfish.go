// Package pufferfish verifies the paper's Pufferfish-style privacy
// requirements computationally. The Section 4 definitions all bound an
// informed attacker's Bayes factor — the ratio of posterior odds to
// prior odds between two secrets — after observing a release. For
// mechanisms with closed-form release densities (every parametric
// mechanism in internal/mech), that bound can be *checked directly*:
//
//   - pairwise: the density ratio between two neighboring inputs must be
//     at most e^ε everywhere on the output line (the Definition 7.2/7.4
//     inequality, and via Theorems 7.1/7.2 the statutory requirements);
//   - Bayesian: for any prior over a finite universe of candidate worlds
//     factored as the paper's Θ requires, the posterior/prior odds ratio
//     between two secret predicates must be at most e^ε (Definitions
//     4.1 and 4.2 verbatim).
//
// The package is used by its tests — which verify the paper's mechanisms
// *pass* and the baselines *fail* exactly where Table 1 says they
// should — and by downstream users as a mechanism-design debugging aid.
package pufferfish

import (
	"fmt"
	"math"

	"repro/internal/mech"
)

// Grid is a range of outputs to scan. Verification is sound up to the
// grid's resolution: the densities involved are smooth and unimodal, so
// a fine grid over a wide range bounds the supremum well.
type Grid struct {
	Lo, Hi, Step float64
}

// DefaultGrid covers an interval comfortably containing both inputs'
// central mass, at a resolution fine relative to the noise scale.
func DefaultGrid(a, b mech.CellInput) Grid {
	lo := math.Min(a.Count, b.Count)
	hi := math.Max(a.Count, b.Count)
	span := (hi - lo) + 40*math.Max(1, math.Max(float64(a.MaxContribution), float64(b.MaxContribution))/5)
	return Grid{Lo: lo - span, Hi: hi + span, Step: math.Max(span/4000, 1e-3)}
}

// Validate returns an error for degenerate grids.
func (g Grid) Validate() error {
	if !(g.Step > 0) || !(g.Hi > g.Lo) {
		return fmt.Errorf("pufferfish: invalid grid [%v, %v] step %v", g.Lo, g.Hi, g.Step)
	}
	return nil
}

// PairResult reports a pairwise neighbor check.
type PairResult struct {
	// MaxLogRatio is the largest |ln(f_A(o)/f_B(o))| observed.
	MaxLogRatio float64
	// ArgMax is the output where it occurred.
	ArgMax float64
	// Satisfied reports MaxLogRatio <= eps (up to numerical slack).
	Satisfied bool
}

// VerifyNeighbors scans the release-density ratio between two inputs
// that the caller asserts are neighbors (distance 1) under some privacy
// definition, and checks it never exceeds e^ε. Outputs where both
// densities are below floor are skipped: ratios of sub-floor tails are
// numerically meaningless and carry negligible probability.
func VerifyNeighbors(m mech.DensityMechanism, a, b mech.CellInput, eps float64, g Grid) (PairResult, error) {
	if err := g.Validate(); err != nil {
		return PairResult{}, err
	}
	if !(eps > 0) {
		return PairResult{}, fmt.Errorf("pufferfish: eps must be positive, got %v", eps)
	}
	const floor = 1e-300
	res := PairResult{}
	for o := g.Lo; o <= g.Hi; o += g.Step {
		fa, fb := m.ReleaseDensity(a, o), m.ReleaseDensity(b, o)
		if fa < floor && fb < floor {
			continue
		}
		if fa < floor || fb < floor {
			// One side has zero density where the other does not: the
			// ratio is unbounded (e.g. Log-Laplace supports differ only
			// at -gamma, which the grid may or may not straddle).
			res.MaxLogRatio = math.Inf(1)
			res.ArgMax = o
			res.Satisfied = false
			return res, nil
		}
		r := math.Abs(math.Log(fa / fb))
		if r > res.MaxLogRatio {
			res.MaxLogRatio = r
			res.ArgMax = o
		}
	}
	res.Satisfied = res.MaxLogRatio <= eps*(1+1e-9)+1e-12
	return res, nil
}

// World is one candidate dataset in a finite adversarial universe: a
// label naming the secret configuration, the cell input the mechanism
// would see, and the adversary's prior probability.
type World struct {
	Label string
	Input mech.CellInput
	Prior float64
}

// BayesResult reports a Bayes-factor check between two secret predicates.
type BayesResult struct {
	// MaxLogBayesFactor is the largest |ln(posterior-odds/prior-odds)|
	// observed over the output grid.
	MaxLogBayesFactor float64
	// ArgMax is the output where it occurred.
	ArgMax float64
	// Satisfied reports MaxLogBayesFactor <= eps (up to slack).
	Satisfied bool
}

// MaxBayesFactor computes the worst-case Bayes factor an adversary with
// the given prior can achieve between secrets A and B (predicates over
// world labels) from one release — Definition 4.1/4.2's left-hand side,
// evaluated exactly via the mechanism's densities:
//
//	BF(o) = [ Σ_{w∈A} π_w f_w(o) / Σ_{w∈B} π_w f_w(o) ] / [ π(A)/π(B) ].
func MaxBayesFactor(m mech.DensityMechanism, worlds []World, inA, inB func(World) bool, eps float64, g Grid) (BayesResult, error) {
	if err := g.Validate(); err != nil {
		return BayesResult{}, err
	}
	if !(eps > 0) {
		return BayesResult{}, fmt.Errorf("pufferfish: eps must be positive, got %v", eps)
	}
	var priorA, priorB float64
	for _, w := range worlds {
		if !(w.Prior >= 0) {
			return BayesResult{}, fmt.Errorf("pufferfish: world %q has negative prior", w.Label)
		}
		if inA(w) && inB(w) {
			return BayesResult{}, fmt.Errorf("pufferfish: world %q is in both secrets", w.Label)
		}
		if inA(w) {
			priorA += w.Prior
		}
		if inB(w) {
			priorB += w.Prior
		}
	}
	if priorA == 0 || priorB == 0 {
		return BayesResult{}, fmt.Errorf("pufferfish: a secret has zero prior mass (A=%v, B=%v)", priorA, priorB)
	}
	const floor = 1e-300
	res := BayesResult{}
	for o := g.Lo; o <= g.Hi; o += g.Step {
		var likeA, likeB float64
		for _, w := range worlds {
			if w.Prior == 0 {
				continue
			}
			f := m.ReleaseDensity(w.Input, o)
			if inA(w) {
				likeA += w.Prior * f
			}
			if inB(w) {
				likeB += w.Prior * f
			}
		}
		if likeA < floor && likeB < floor {
			continue
		}
		if likeA < floor || likeB < floor {
			res.MaxLogBayesFactor = math.Inf(1)
			res.ArgMax = o
			res.Satisfied = false
			return res, nil
		}
		bf := math.Abs(math.Log((likeA / likeB) / (priorA / priorB)))
		if bf > res.MaxLogBayesFactor {
			res.MaxLogBayesFactor = bf
			res.ArgMax = o
		}
	}
	res.Satisfied = res.MaxLogBayesFactor <= eps*(1+1e-9)+1e-12
	return res, nil
}

// EmployeeWorlds builds the canonical universe for the employee
// requirement (Definition 4.1): the attacker knows the whole cell except
// whether one target worker's record contributes to it. World "in" has
// the worker present (count n, the worker at an establishment already
// contributing c workers), world "out" has them absent. p is the
// attacker's prior that the worker is in.
func EmployeeWorlds(n int64, xv int64, p float64) []World {
	return []World{
		{Label: "in", Input: mech.CellInput{Count: float64(n), MaxContribution: xv}, Prior: p},
		{Label: "out", Input: mech.CellInput{Count: float64(n - 1), MaxContribution: maxI64(xv-1, 0)}, Prior: 1 - p},
	}
}

// EmployerSizeWorlds builds the universe for the employer-size
// requirement (Definition 4.2) on a single-establishment cell: candidate
// sizes with the attacker's prior over them. The requirement bounds the
// Bayes factor between any two sizes x ≤ y ≤ (1+α)x.
func EmployerSizeWorlds(sizes []int64, priors []float64) ([]World, error) {
	if len(sizes) != len(priors) {
		return nil, fmt.Errorf("pufferfish: %d sizes but %d priors", len(sizes), len(priors))
	}
	worlds := make([]World, len(sizes))
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("pufferfish: negative size %d", s)
		}
		worlds[i] = World{
			Label: fmt.Sprintf("size=%d", s),
			Input: mech.CellInput{Count: float64(s), MaxContribution: s},
			Prior: priors[i],
		}
	}
	return worlds, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
