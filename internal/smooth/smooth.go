// Package smooth implements the extended smooth-sensitivity framework of
// Section 8.2 of the paper: local sensitivity of cell-count queries under
// α-neighbor definitions, b-smooth upper bounds (Lemma 8.5), admissible
// noise distributions with a flexible ε₁+ε₂ budget split (Definition 8.3,
// the paper's generalization of Nissim–Raskhodnikova–Smith), and the
// generic additive mechanism of Theorem 8.4.
package smooth

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// LocalSensitivity returns the local sensitivity of a single cell-count
// query q_v at a database where the largest single-establishment
// contribution to the cell is xv (the paper's x_v), under either α-neighbor
// definition: the count can change by at most max(x_v·α, 1), because a
// neighbor either rescales one establishment's matching workforce by a
// factor (1+α) or adds/removes one worker.
func LocalSensitivity(xv int64, alpha float64) float64 {
	if xv < 0 {
		panic(fmt.Sprintf("smooth: negative x_v %d", xv))
	}
	if !(alpha >= 0) {
		panic(fmt.Sprintf("smooth: negative alpha %v", alpha))
	}
	ls := float64(xv) * alpha
	if ls < 1 {
		return 1
	}
	return ls
}

// SensitivityAtDistance returns A^(j)(x) = max over databases y within
// neighbor distance j of the local sensitivity (the inner max in
// Definition 8.2). At distance j, the largest establishment contribution
// can have grown to x_v·(1+α)^j, so A^(j) = max(x_v·α·(1+α)^j, 1).
func SensitivityAtDistance(xv int64, alpha float64, j int) float64 {
	if j < 0 {
		panic(fmt.Sprintf("smooth: negative distance %d", j))
	}
	ls := float64(xv) * alpha * math.Pow(1+alpha, float64(j))
	if ls < 1 {
		return 1
	}
	return ls
}

// ErrUnboundedSensitivity reports that the requested smoothing parameter b
// cannot bound the smooth sensitivity: by Lemma 8.5, when e^b < 1+α the
// supremum of e^{-jb}·A^(j) diverges, because each neighbor step can grow
// an establishment by the factor 1+α faster than the smoothing discounts it.
type ErrUnboundedSensitivity struct {
	Alpha, B float64
}

func (e ErrUnboundedSensitivity) Error() string {
	return fmt.Sprintf("smooth: b-smooth sensitivity unbounded: e^b = %v < 1+alpha = %v",
		math.Exp(e.B), 1+e.Alpha)
}

// Sensitivity returns the b-smooth sensitivity S*_{v,b}(x) of a cell-count
// query (Lemma 8.5): max(x_v·α, 1) when e^b >= 1+α, and an
// ErrUnboundedSensitivity otherwise.
func Sensitivity(xv int64, alpha, b float64) (float64, error) {
	if math.Exp(b) < 1+alpha {
		return 0, ErrUnboundedSensitivity{Alpha: alpha, B: b}
	}
	return LocalSensitivity(xv, alpha), nil
}

// Admissible describes an (a, b)-admissible noise distribution in the
// sense of Definition 8.3: given a split ε₁+ε₂ <= ε of the privacy budget,
// the distribution tolerates shifts up to a(ε₁) (sliding) and log-scalings
// up to b(ε₂) (dilation) while changing probabilities by at most e^ε (+δ).
type Admissible interface {
	// Sample draws one unit-scale noise variate.
	Sample(*dist.Stream) float64
	// SlideBound returns a(ε₁), the largest L1 shift tolerated at ε₁.
	SlideBound(eps1 float64) float64
	// DilateBound returns b(ε₂), the largest |log-scaling| tolerated at ε₂.
	DilateBound(eps2 float64) float64
	// Delta returns the failure probability δ of the admissibility
	// guarantee (0 for pure definitions).
	Delta() float64
	// MeanAbs returns E|Z| of the unit-scale distribution, used in
	// analytical error bounds.
	MeanAbs() float64
	// Name identifies the distribution in diagnostics.
	Name() string
}

// GenCauchyNoise is the paper's choice for pure (δ=0) ER-EE privacy:
// h(z) ∝ 1/(1+z⁴), which by Lemma 8.6 is (ε₁/(γ+1), ε₂/(γ+1))-admissible
// with γ = 4 and δ = 0.
type GenCauchyNoise struct{}

// gamma is the exponent of the generalized-Cauchy density.
const gencauchyGamma = 4

// Sample draws one variate.
func (GenCauchyNoise) Sample(s *dist.Stream) float64 { return dist.GenCauchy{}.Sample(s) }

// SlideBound returns ε₁/(γ+1) = ε₁/5.
func (GenCauchyNoise) SlideBound(eps1 float64) float64 { return eps1 / (gencauchyGamma + 1) }

// DilateBound returns ε₂/(γ+1) = ε₂/5.
func (GenCauchyNoise) DilateBound(eps2 float64) float64 { return eps2 / (gencauchyGamma + 1) }

// Delta returns 0: the admissibility guarantee is exact.
func (GenCauchyNoise) Delta() float64 { return 0 }

// MeanAbs returns E|Z| = 1/√2.
func (GenCauchyNoise) MeanAbs() float64 { return dist.GenCauchy{}.MeanAbs() }

// Name returns the distribution's name.
func (GenCauchyNoise) Name() string { return "gencauchy(gamma=4)" }

// LaplaceNoise is the unit-scale Laplace distribution, which by Lemma 9.1
// (from Nissim et al.) is (ε/2, ε/(2·ln(1/δ)))-admissible with failure
// probability δ. It underlies the Smooth Laplace mechanism (Algorithm 3).
type LaplaceNoise struct {
	// Del is the admissibility failure probability δ ∈ (0, 1).
	Del float64
}

// NewLaplaceNoise validates δ and returns the distribution.
func NewLaplaceNoise(delta float64) LaplaceNoise {
	if !(delta > 0 && delta < 1) {
		panic(fmt.Sprintf("smooth: Laplace admissibility requires delta in (0,1), got %v", delta))
	}
	return LaplaceNoise{Del: delta}
}

// Sample draws one unit-scale Laplace variate.
func (LaplaceNoise) Sample(s *dist.Stream) float64 { return dist.NewLaplace(1).Sample(s) }

// SlideBound returns ε₁ treated as the full sliding half: the Laplace
// admissibility of Lemma 9.1 fixes the split at ε₁ = ε/2, so callers pass
// eps1 = ε/2 and receive a = ε/2.
func (LaplaceNoise) SlideBound(eps1 float64) float64 { return eps1 }

// DilateBound returns b(ε₂) = ε₂/ln(1/δ); with the fixed split ε₂ = ε/2
// this is the paper's ε/(2·ln(1/δ)).
func (l LaplaceNoise) DilateBound(eps2 float64) float64 { return eps2 / math.Log(1/l.Del) }

// Delta returns the failure probability δ.
func (l LaplaceNoise) Delta() float64 { return l.Del }

// MeanAbs returns E|Z| = 1 for the unit-scale Laplace.
func (LaplaceNoise) MeanAbs() float64 { return 1 }

// Name returns the distribution's name.
func (l LaplaceNoise) Name() string { return fmt.Sprintf("laplace(delta=%g)", l.Del) }

// Split is a division of the privacy budget between the sliding (ε₁) and
// dilation (ε₂) properties of Definition 8.3, together with the derived
// noise parameters.
type Split struct {
	Eps1, Eps2 float64
	// A is the sliding bound a(ε₁): the mechanism releases
	// q(x) + S(x)/A · Z.
	A float64
	// B is the dilation bound b(ε₂): the smoothing parameter the smooth
	// sensitivity must be computed with.
	B float64
}

// GammaSplit computes Algorithm 2's budget split for the generalized-
// Cauchy noise: ε₂ = 5·ln(1+α) — the smallest ε₂ whose dilation bound
// b = ε₂/5 satisfies e^b >= 1+α — and ε₁ = ε − ε₂. It errors when
// α+1 >= e^{ε/5}, the validity condition in Algorithm 2's input line.
func GammaSplit(eps, alpha float64) (Split, error) {
	if !(eps > 0) {
		return Split{}, fmt.Errorf("smooth: eps must be positive, got %v", eps)
	}
	if !(alpha > 0) {
		return Split{}, fmt.Errorf("smooth: alpha must be positive, got %v", alpha)
	}
	if 1+alpha >= math.Exp(eps/5) {
		return Split{}, fmt.Errorf("smooth: Smooth Gamma requires alpha+1 < e^(eps/5); alpha=%v eps=%v", alpha, eps)
	}
	n := GenCauchyNoise{}
	eps2 := 5 * math.Log(1+alpha)
	eps1 := eps - eps2
	return Split{
		Eps1: eps1,
		Eps2: eps2,
		A:    n.SlideBound(eps1),
		B:    n.DilateBound(eps2),
	}, nil
}

// LaplaceSplit computes Algorithm 3's parameters: the fixed even split
// a = ε/2, b = ε/(2·ln(1/δ)) of Lemma 9.1. It errors when
// α+1 > e^{ε/(2·ln(1/δ))}, the validity condition in Algorithm 3's input
// line (equivalently, ε < 2·ln(1/δ)·ln(1+α); see Table 2).
func LaplaceSplit(eps, delta, alpha float64) (Split, error) {
	if !(eps > 0) {
		return Split{}, fmt.Errorf("smooth: eps must be positive, got %v", eps)
	}
	if !(delta > 0 && delta < 1) {
		return Split{}, fmt.Errorf("smooth: delta must be in (0,1), got %v", delta)
	}
	if !(alpha > 0) {
		return Split{}, fmt.Errorf("smooth: alpha must be positive, got %v", alpha)
	}
	n := NewLaplaceNoise(delta)
	b := n.DilateBound(eps / 2)
	if 1+alpha > math.Exp(b) {
		return Split{}, fmt.Errorf(
			"smooth: Smooth Laplace requires alpha+1 <= e^(eps/(2 ln(1/delta))); alpha=%v eps=%v delta=%v (need eps >= %v)",
			alpha, eps, delta, MinEpsilonLaplace(alpha, delta))
	}
	return Split{Eps1: eps / 2, Eps2: eps / 2, A: n.SlideBound(eps / 2), B: b}, nil
}

// MinEpsilonLaplace returns the smallest ε for which Smooth Laplace's
// validity condition holds at the given α and δ: ε = 2·ln(1/δ)·ln(1+α).
// This is the formula behind the paper's Table 2.
func MinEpsilonLaplace(alpha, delta float64) float64 {
	if !(alpha > 0) || !(delta > 0 && delta < 1) {
		panic(fmt.Sprintf("smooth: MinEpsilonLaplace requires alpha>0, delta in (0,1); got %v, %v", alpha, delta))
	}
	return 2 * math.Log(1/delta) * math.Log(1+alpha)
}

// Release applies the generic mechanism of Theorem 8.4 to one count:
// M(x) = q(x) + S(x)/a · Z, where S(x) is a b-smooth upper bound on local
// sensitivity and Z is drawn from the admissible distribution.
//
// The scale is combined as S(x)·(1/a)·Z — multiplication by the
// reciprocal rather than division — so the batch release pipeline can
// hoist the invariant 1/a out of its per-cell loop and still produce
// output bit-identical to this scalar reference (the two forms differ
// in the last ulp, so both sides must use the same one).
func Release(count float64, smoothSens float64, split Split, noise Admissible, s *dist.Stream) float64 {
	if !(smoothSens >= 0) {
		panic(fmt.Sprintf("smooth: negative smooth sensitivity %v", smoothSens))
	}
	if !(split.A > 0) {
		panic(fmt.Sprintf("smooth: sliding bound a must be positive, got %v", split.A))
	}
	invA := 1 / split.A
	return count + smoothSens*invA*noise.Sample(s)
}

// ExpectedL1 returns the expected L1 error of the generic mechanism for a
// cell with the given smooth sensitivity: S(x)/a · E|Z|. For the
// generalized-Cauchy noise this instantiates the paper's Lemma 8.8 bound
// O(x_v·α/ε + 1/ε); for Laplace it instantiates Lemma 9.3. The scale is
// combined reciprocal-first, matching Release.
func ExpectedL1(smoothSens float64, split Split, noise Admissible) float64 {
	invA := 1 / split.A
	return smoothSens * invA * noise.MeanAbs()
}
