package smooth

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func TestLocalSensitivity(t *testing.T) {
	cases := []struct {
		xv    int64
		alpha float64
		want  float64
	}{
		{0, 0.1, 1},      // empty cell: adding one worker changes count by 1
		{5, 0.1, 1},      // 5*0.1 = 0.5 < 1, the +1-worker neighbor dominates
		{100, 0.1, 10},   // x_v*alpha dominates
		{1000, 0.05, 50}, // large establishment
		{10, 0, 1},       // alpha=0 reduces to worker-level sensitivity
	}
	for _, c := range cases {
		if got := LocalSensitivity(c.xv, c.alpha); got != c.want {
			t.Errorf("LocalSensitivity(%d, %v) = %v, want %v", c.xv, c.alpha, got, c.want)
		}
	}
}

func TestSensitivityAtDistance(t *testing.T) {
	// A^(j) = max(xv*alpha*(1+alpha)^j, 1): geometric growth with distance.
	xv, alpha := int64(100), 0.1
	for j := 0; j < 5; j++ {
		want := 100 * 0.1 * math.Pow(1.1, float64(j))
		if got := SensitivityAtDistance(xv, alpha, j); math.Abs(got-want) > 1e-9 {
			t.Errorf("A^(%d) = %v, want %v", j, got, want)
		}
	}
	if got := SensitivityAtDistance(0, 0.1, 3); got != 1 {
		t.Errorf("A^(3) for empty cell = %v, want 1", got)
	}
}

func TestSensitivityBoundedIff(t *testing.T) {
	// Lemma 8.5: bounded iff e^b >= 1+alpha.
	alpha := 0.1
	bOK := math.Log(1 + alpha)
	if _, err := Sensitivity(50, alpha, bOK); err != nil {
		t.Errorf("Sensitivity at exact boundary errored: %v", err)
	}
	if _, err := Sensitivity(50, alpha, bOK*0.999); err == nil {
		t.Error("Sensitivity below boundary did not error")
	}
	var ub ErrUnboundedSensitivity
	_, err := Sensitivity(50, alpha, 0.001)
	if !errors.As(err, &ub) {
		t.Errorf("error type = %T, want ErrUnboundedSensitivity", err)
	}
	if ub.Error() == "" {
		t.Error("empty error message")
	}
}

func TestSensitivityValue(t *testing.T) {
	got, err := Sensitivity(200, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("S* = %v, want 20", got)
	}
}

func TestSmoothSensitivityIsSupremum(t *testing.T) {
	// Property: S* = max_j e^{-jb} A^(j) whenever e^b >= 1+alpha. The
	// supremum is attained at j=0 because e^{-b}(1+alpha) <= 1.
	f := func(xvRaw uint16, alphaRaw, slack uint8) bool {
		xv := int64(xvRaw)
		alpha := 0.01 + float64(alphaRaw%20)/100
		b := math.Log(1+alpha) + float64(slack)/100
		s, err := Sensitivity(xv, alpha, b)
		if err != nil {
			return false
		}
		sup := 0.0
		for j := 0; j <= 60; j++ {
			v := math.Exp(-float64(j)*b) * SensitivityAtDistance(xv, alpha, j)
			if v > sup {
				sup = v
			}
		}
		return math.Abs(s-sup) < 1e-9*math.Max(1, sup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaSplit(t *testing.T) {
	eps, alpha := 2.0, 0.1
	sp, err := GammaSplit(eps, alpha)
	if err != nil {
		t.Fatal(err)
	}
	wantEps2 := 5 * math.Log(1.1)
	if math.Abs(sp.Eps2-wantEps2) > 1e-12 {
		t.Errorf("eps2 = %v, want %v", sp.Eps2, wantEps2)
	}
	if math.Abs(sp.Eps1+sp.Eps2-eps) > 1e-12 {
		t.Errorf("eps1+eps2 = %v, want %v", sp.Eps1+sp.Eps2, eps)
	}
	if math.Abs(sp.A-sp.Eps1/5) > 1e-12 {
		t.Errorf("a = %v, want eps1/5 = %v", sp.A, sp.Eps1/5)
	}
	// b must exactly satisfy the boundedness boundary e^b = 1+alpha.
	if math.Abs(math.Exp(sp.B)-(1+alpha)) > 1e-12 {
		t.Errorf("e^b = %v, want 1+alpha = %v", math.Exp(sp.B), 1+alpha)
	}
	if _, err := Sensitivity(100, alpha, sp.B); err != nil {
		t.Errorf("GammaSplit produced a b with unbounded sensitivity: %v", err)
	}
}

func TestGammaSplitValidityRegion(t *testing.T) {
	// Requires alpha+1 < e^{eps/5}.
	if _, err := GammaSplit(0.25, 0.1); err == nil {
		t.Error("GammaSplit accepted eps=0.25, alpha=0.1 (1.1 >= e^0.05)")
	}
	if _, err := GammaSplit(1.0, 0.1); err != nil {
		t.Errorf("GammaSplit rejected valid eps=1, alpha=0.1: %v", err)
	}
	if _, err := GammaSplit(-1, 0.1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := GammaSplit(1, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	// Boundary: alpha+1 == e^{eps/5} exactly must be rejected (strict <).
	alpha := 0.1
	eps := 5 * math.Log(1+alpha)
	if _, err := GammaSplit(eps, alpha); err == nil {
		t.Error("GammaSplit accepted the boundary where eps1 = 0")
	}
}

func TestLaplaceSplit(t *testing.T) {
	eps, delta, alpha := 2.0, 0.05, 0.1
	sp, err := LaplaceSplit(eps, delta, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if sp.A != 1.0 {
		t.Errorf("a = %v, want eps/2 = 1", sp.A)
	}
	wantB := eps / (2 * math.Log(1/delta))
	if math.Abs(sp.B-wantB) > 1e-12 {
		t.Errorf("b = %v, want %v", sp.B, wantB)
	}
}

func TestLaplaceSplitValidityRegion(t *testing.T) {
	// eps must be at least 2 ln(1/delta) ln(1+alpha).
	alpha, delta := 0.1, 0.05
	minEps := MinEpsilonLaplace(alpha, delta)
	if _, err := LaplaceSplit(minEps*0.99, delta, alpha); err == nil {
		t.Error("LaplaceSplit accepted eps below the minimum")
	}
	if _, err := LaplaceSplit(minEps*1.01, delta, alpha); err != nil {
		t.Errorf("LaplaceSplit rejected eps above the minimum: %v", err)
	}
	if _, err := LaplaceSplit(1, 0, alpha); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := LaplaceSplit(1, 1, alpha); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestMinEpsilonLaplaceTable2(t *testing.T) {
	// Table 2's delta=5e-4 rows match the formula eps = 2 ln(1/delta) ln(1+alpha).
	cases := []struct {
		alpha, delta, want, tol float64
	}{
		{0.01, 5e-4, 0.15, 0.01},
		{0.10, 5e-4, 1.45, 0.01},
	}
	for _, c := range cases {
		got := MinEpsilonLaplace(c.alpha, c.delta)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("MinEpsilonLaplace(%v, %v) = %v, want %v±%v", c.alpha, c.delta, got, c.want, c.tol)
		}
	}
	// Monotonicity: larger alpha needs larger eps; smaller delta needs larger eps.
	if MinEpsilonLaplace(0.2, 0.05) <= MinEpsilonLaplace(0.1, 0.05) {
		t.Error("min eps not increasing in alpha")
	}
	if MinEpsilonLaplace(0.1, 5e-4) <= MinEpsilonLaplace(0.1, 0.05) {
		t.Error("min eps not decreasing in delta")
	}
}

func TestReleaseUnbiasedGamma(t *testing.T) {
	sp, err := GammaSplit(2.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := dist.NewStreamFromSeed(1)
	noise := GenCauchyNoise{}
	const n = 200000
	count, sens := 500.0, 20.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += Release(count, sens, sp, noise, s)
	}
	mean := sum / n
	scale := sens / sp.A
	if math.Abs(mean-count) > 0.05*scale {
		t.Errorf("mean release = %v, want %v (unbiased, Lemma 8.8)", mean, count)
	}
}

func TestReleaseUnbiasedLaplace(t *testing.T) {
	sp, err := LaplaceSplit(2.0, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := dist.NewStreamFromSeed(2)
	noise := NewLaplaceNoise(0.05)
	const n = 200000
	count, sens := 500.0, 20.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += Release(count, sens, sp, noise, s)
	}
	mean := sum / n
	scale := sens / sp.A
	if math.Abs(mean-count) > 0.05*scale {
		t.Errorf("mean release = %v, want %v (unbiased, Lemma 9.3)", mean, count)
	}
}

func TestExpectedL1MatchesEmpirical(t *testing.T) {
	sp, err := GammaSplit(2.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	noise := GenCauchyNoise{}
	s := dist.NewStreamFromSeed(3)
	const n = 300000
	count, sens := 100.0, 15.0
	var sumAbs float64
	for i := 0; i < n; i++ {
		sumAbs += math.Abs(Release(count, sens, sp, noise, s) - count)
	}
	got := sumAbs / n
	want := ExpectedL1(sens, sp, noise)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical L1 = %v, analytical = %v", got, want)
	}
}

func TestExpectedL1ScalesAsLemma88(t *testing.T) {
	// Lemma 8.8: expected L1 error is O(xv*alpha/eps + 1/eps): doubling eps
	// (with alpha fixed and eps large) roughly halves the error.
	alpha := 0.05
	noise := GenCauchyNoise{}
	spA, err := GammaSplit(4, alpha)
	if err != nil {
		t.Fatal(err)
	}
	spB, err := GammaSplit(8, alpha)
	if err != nil {
		t.Fatal(err)
	}
	sens := LocalSensitivity(1000, alpha)
	ratio := ExpectedL1(sens, spA, noise) / ExpectedL1(sens, spB, noise)
	// eps1 = eps - 5 ln(1+alpha); ratio = eps1B/eps1A.
	want := spB.Eps1 / spA.Eps1
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("error ratio = %v, want %v", ratio, want)
	}
	if ratio < 1.9 {
		t.Errorf("doubling eps only improved error by %vx", ratio)
	}
}

func TestSmoothGammaEndToEndPrivacyRatio(t *testing.T) {
	// Empirical Theorem 8.4 check on a pair of strong alpha-neighbors:
	// count x vs count (1+alpha)x with x = x_v (the whole cell is one
	// establishment). Released density ratio at any output must be <= e^eps.
	eps, alpha := 2.0, 0.1
	sp, err := GammaSplit(eps, alpha)
	if err != nil {
		t.Fatal(err)
	}
	x := 1000.0
	xv := int64(x)
	sensX, err := Sensitivity(xv, alpha, sp.B)
	if err != nil {
		t.Fatal(err)
	}
	y := x * (1 + alpha)
	sensY, err := Sensitivity(int64(y), alpha, sp.B)
	if err != nil {
		t.Fatal(err)
	}
	g := dist.GenCauchy{}
	scaleX := sensX / sp.A
	scaleY := sensY / sp.A
	// Density of the released value o under each input.
	densX := func(o float64) float64 { return g.PDF((o-x)/scaleX) / scaleX }
	densY := func(o float64) float64 { return g.PDF((o-y)/scaleY) / scaleY }
	for o := -2000.0; o <= 5000.0; o += 13.7 {
		r := densX(o) / densY(o)
		if r > math.Exp(eps)*(1+1e-6) || 1/r > math.Exp(eps)*(1+1e-6) {
			t.Fatalf("density ratio %v at output %v exceeds e^eps = %v", r, o, math.Exp(eps))
		}
	}
}

func TestNoiseNames(t *testing.T) {
	if (GenCauchyNoise{}).Name() == "" {
		t.Error("GenCauchyNoise name empty")
	}
	if NewLaplaceNoise(0.05).Name() == "" {
		t.Error("LaplaceNoise name empty")
	}
	if NewLaplaceNoise(0.05).Delta() != 0.05 {
		t.Error("LaplaceNoise delta wrong")
	}
	if (GenCauchyNoise{}).Delta() != 0 {
		t.Error("GenCauchyNoise delta should be 0")
	}
}

func TestReleasePanics(t *testing.T) {
	sp := Split{A: 0}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release with a=0 did not panic")
			}
		}()
		Release(1, 1, sp, GenCauchyNoise{}, dist.NewStreamFromSeed(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release with negative sensitivity did not panic")
			}
		}()
		Release(1, -1, Split{A: 1}, GenCauchyNoise{}, dist.NewStreamFromSeed(1))
	}()
}
