package suppress

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// mk builds a cell with count spread over n contributors, the largest two
// given explicitly.
func mk(count int64, contributors int, largest, second int64) Cell {
	return Cell{Count: count, Contributors: contributors, Largest: largest, Second: second}
}

// simpleTable builds a small industry x place table.
func simpleTable(t *testing.T) *Table {
	t.Helper()
	cells := [][]Cell{
		{mk(100, 10, 20, 15), mk(50, 5, 20, 10), mk(7, 1, 7, 0)},
		{mk(80, 8, 15, 12), mk(60, 6, 15, 12), mk(40, 4, 15, 10)},
		{mk(30, 3, 12, 10), mk(90, 9, 14, 13), mk(25, 2, 15, 10)},
	}
	tab, err := NewTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCellValidate(t *testing.T) {
	bad := []Cell{
		{Count: -1},
		{Count: 10, Contributors: 2, Largest: 8, Second: 9},
		{Count: 10, Contributors: 2, Largest: 6, Second: 6},
		{Count: 10, Contributors: 0},
		{Count: 10, Contributors: 1, Largest: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cell %d should be invalid: %+v", i, c)
		}
	}
	good := mk(10, 2, 6, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
}

func TestNewTableValidates(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTable([][]Cell{{mk(1, 1, 1, 0)}, {}}); err == nil {
		t.Error("ragged table accepted")
	}
}

func TestTotals(t *testing.T) {
	tab := simpleTable(t)
	if got := tab.RowTotal(0); got != 157 {
		t.Errorf("row 0 total = %d, want 157", got)
	}
	if got := tab.ColTotal(2); got != 72 {
		t.Errorf("col 2 total = %d, want 72", got)
	}
}

func TestThresholdRule(t *testing.T) {
	r := ThresholdRule{MinContributors: 3}
	if !r.Sensitive(mk(7, 1, 7, 0)) || !r.Sensitive(mk(25, 2, 15, 10)) {
		t.Error("cells under threshold not sensitive")
	}
	if r.Sensitive(mk(30, 3, 12, 10)) {
		t.Error("cell at threshold marked sensitive")
	}
	if r.Sensitive(Cell{}) {
		t.Error("empty cell marked sensitive")
	}
	if r.Name() == "" {
		t.Error("name empty")
	}
}

func TestPPercentRule(t *testing.T) {
	r := PPercentRule{P: 10}
	// remainder = 100-60-30 = 10 >= 10%*60=6: safe.
	if r.Sensitive(mk(100, 5, 60, 30)) {
		t.Error("safe cell marked sensitive")
	}
	// remainder = 100-70-28 = 2 < 7: sensitive.
	if !r.Sensitive(mk(100, 5, 70, 28)) {
		t.Error("dominated cell not sensitive")
	}
	if r.Sensitive(Cell{}) {
		t.Error("empty cell marked sensitive")
	}
}

func TestNKRule(t *testing.T) {
	r := NKRule{K: 80}
	if !r.Sensitive(mk(100, 4, 60, 25)) { // 85% > 80%
		t.Error("dominant pair not sensitive")
	}
	if r.Sensitive(mk(100, 6, 40, 30)) { // 70% <= 80%
		t.Error("balanced cell marked sensitive")
	}
	if r.Sensitive(Cell{}) {
		t.Error("empty cell marked sensitive")
	}
}

func TestPrimaryPattern(t *testing.T) {
	tab := simpleTable(t)
	p := Primary(tab, ThresholdRule{MinContributors: 3})
	// Sensitive cells: (0,2) 1 contributor, (2,2) 2 contributors.
	if !p.Suppressed[0][2] || !p.Suppressed[2][2] {
		t.Error("sensitive cells not suppressed")
	}
	if p.Count() != 2 {
		t.Errorf("primary count = %d, want 2", p.Count())
	}
}

func TestSinglePrimaryIsExactlyRecoverable(t *testing.T) {
	// The Fellegi premise: one suppressed cell per line is recovered
	// exactly from totals.
	tab := simpleTable(t)
	p := newPattern(tab)
	p.Suppressed[0][2] = true
	audit := Audit(tab, p)
	iv := audit[[2]int{0, 2}]
	if !iv.Exact() {
		t.Fatalf("lone suppressed cell not pinned: [%v, %v]", iv.Lo, iv.Hi)
	}
	if iv.Lo != 7 {
		t.Errorf("recovered %v, true 7", iv.Lo)
	}
}

func TestComplementaryBlocksExactRecovery(t *testing.T) {
	tab := simpleTable(t)
	primary := Primary(tab, ThresholdRule{MinContributors: 3})
	full := Complementary(tab, primary)
	if full.Count() <= primary.Count() {
		t.Fatal("no complements added")
	}
	audit := Audit(tab, full)
	for key, iv := range audit {
		if iv.Exact() {
			t.Errorf("cell %v still exactly recoverable: [%v, %v]", key, iv.Lo, iv.Hi)
		}
	}
}

func TestComplementaryLineCondition(t *testing.T) {
	tab := simpleTable(t)
	primary := Primary(tab, ThresholdRule{MinContributors: 3})
	full := Complementary(tab, primary)
	// Every row/column has 0 or >=2 suppressed non-zero cells.
	for r := 0; r < tab.Rows; r++ {
		n := 0
		for c := 0; c < tab.Cols; c++ {
			if full.Suppressed[r][c] && tab.Cells[r][c].Count > 0 {
				n++
			}
		}
		if n == 1 {
			t.Errorf("row %d has exactly one suppressed cell", r)
		}
	}
	for c := 0; c < tab.Cols; c++ {
		n := 0
		for r := 0; r < tab.Rows; r++ {
			if full.Suppressed[r][c] && tab.Cells[r][c].Count > 0 {
				n++
			}
		}
		if n == 1 {
			t.Errorf("col %d has exactly one suppressed cell", c)
		}
	}
}

func TestComplementaryNeverSuppressesZeros(t *testing.T) {
	cells := [][]Cell{
		{mk(5, 1, 5, 0), mk(0, 0, 0, 0), mk(20, 4, 8, 6)},
		{mk(30, 5, 10, 8), mk(0, 0, 0, 0), mk(15, 3, 6, 5)},
	}
	tab, err := NewTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	full := Complementary(tab, Primary(tab, ThresholdRule{MinContributors: 3}))
	for r := range full.Suppressed {
		for c, s := range full.Suppressed[r] {
			if s && tab.Cells[r][c].Count == 0 {
				t.Errorf("zero cell (%d,%d) suppressed", r, c)
			}
		}
	}
}

func TestComplementaryPropertyTermination(t *testing.T) {
	// Property: on random tables, complementary suppression terminates and
	// achieves the line condition.
	f := func(raw []uint8) bool {
		if len(raw) < 12 {
			return true
		}
		cells := make([][]Cell, 3)
		idx := 0
		for r := range cells {
			cells[r] = make([]Cell, 4)
			for c := range cells[r] {
				v := int64(raw[idx%len(raw)] % 40)
				idx++
				contributors := 0
				largest, second := int64(0), int64(0)
				if v > 0 {
					contributors = int(v%4) + 1
					largest = v / int64(contributors)
					if contributors == 1 {
						largest = v
					}
					if contributors > 1 {
						second = (v - largest) / int64(contributors-1)
						if second > largest {
							second = largest
						}
					}
				}
				cells[r][c] = mk(v, contributors, largest, second)
			}
		}
		tab, err := NewTable(cells)
		if err != nil {
			return true // skip inconsistent random cells
		}
		full := Complementary(tab, Primary(tab, ThresholdRule{MinContributors: 3}))
		for r := 0; r < tab.Rows; r++ {
			n := 0
			for c := 0; c < tab.Cols; c++ {
				if full.Suppressed[r][c] && tab.Cells[r][c].Count > 0 {
					n++
				}
			}
			if n == 1 {
				// Permitted only when the row had no unsuppressed non-zero
				// candidate to add.
				for c := 0; c < tab.Cols; c++ {
					if !full.Suppressed[r][c] && tab.Cells[r][c].Count > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAuditBoundsContainTruth(t *testing.T) {
	tab := simpleTable(t)
	full := Complementary(tab, Primary(tab, ThresholdRule{MinContributors: 3}))
	audit := Audit(tab, full)
	for key, iv := range audit {
		true_ := float64(tab.Cells[key[0]][key[1]].Count)
		if true_ < iv.Lo-1e-9 || true_ > iv.Hi+1e-9 {
			t.Errorf("cell %v true value %v outside audited interval [%v, %v]",
				key, true_, iv.Lo, iv.Hi)
		}
	}
}

func TestInferentialDisclosureDespiteSuppression(t *testing.T) {
	// The paper's criticism made executable: suppression blocks exact
	// recovery, but the audited intervals can still be narrow relative to
	// the protected values — inferential disclosure survives. Construct a
	// table where the complement is small, so the primary's interval is
	// tight.
	cells := [][]Cell{
		{mk(1000, 2, 980, 20), mk(3, 1, 3, 0), mk(500, 9, 80, 70)},
		{mk(400, 8, 60, 55), mk(5, 1, 5, 0), mk(300, 7, 50, 45)},
		{mk(200, 6, 40, 35), mk(100, 5, 25, 22), mk(250, 8, 40, 38)},
	}
	tab, err := NewTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	full := Complementary(tab, Primary(tab, ThresholdRule{MinContributors: 3}))
	audit := Audit(tab, full)
	// No exact recovery...
	for key, iv := range audit {
		if iv.Exact() {
			t.Fatalf("cell %v exactly recovered", key)
		}
	}
	// ...but the protection band is tiny: the suppressed small cells are
	// pinned within a few units (their line residuals are small).
	ok, key, iv := ProtectedWithin(tab, full, 5.0)
	if ok {
		t.Error("expected an inferential-disclosure violation at band 5x")
	} else {
		t.Logf("cell %v inferred within [%v, %v] (true %d): inferential disclosure",
			key, iv.Lo, iv.Hi, tab.Cells[key[0]][key[1]].Count)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.Width() != 3 || iv.Exact() {
		t.Error("interval helpers wrong")
	}
	if !(Interval{Lo: 4, Hi: 4}).Exact() {
		t.Error("point interval not exact")
	}
}

func TestFromMarginal(t *testing.T) {
	s := table.NewSchema(
		table.NewDomain("industry", "retail", "mining"),
		table.NewDomain("place", "a", "b"),
	)
	tab := table.New(s)
	// retail/a: entities 0 (4 jobs) and 1 (2 jobs). mining/b: entity 2 (9 jobs).
	for i := 0; i < 4; i++ {
		tab.AppendRow(0, 0, 0)
	}
	for i := 0; i < 2; i++ {
		tab.AppendRow(1, 0, 0)
	}
	for i := 0; i < 9; i++ {
		tab.AppendRow(2, 1, 1)
	}
	m := table.Compute(tab, table.MustNewQuery(s, "industry", "place"))
	st, err := FromMarginal(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 2 || st.Cols != 2 {
		t.Fatalf("dims = %dx%d", st.Rows, st.Cols)
	}
	got := st.Cells[0][0]
	if got.Count != 6 || got.Contributors != 2 || got.Largest != 4 || got.Second != 2 {
		t.Errorf("retail/a cell = %+v", got)
	}
	if st.Cells[1][1].Contributors != 1 || st.Cells[1][1].Largest != 9 {
		t.Errorf("mining/b cell = %+v", st.Cells[1][1])
	}
	if CellLabel(m, 0, 0) != "industry=retail,place=a" {
		t.Errorf("label = %q", CellLabel(m, 0, 0))
	}
}

func TestFromMarginalRejectsWrongArity(t *testing.T) {
	s := table.NewSchema(table.NewDomain("x", "a"))
	tab := table.New(s)
	tab.AppendRow(0, 0)
	m := table.Compute(tab, table.MustNewQuery(s, "x"))
	if _, err := FromMarginal(m); err == nil {
		t.Error("one-attribute marginal accepted")
	}
}
