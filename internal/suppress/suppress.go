// Package suppress implements the traditional cell-suppression SDL that
// Appendix A of the paper describes as the historical interpretation of
// the confidentiality statutes: Fellegi's conditions, implemented as
// primary suppression (sensitive cells withheld under threshold and
// dominance rules) plus complementary suppression (additional cells
// withheld so the primaries cannot be recovered by subtraction from
// published row and column totals).
//
// The package also provides an interval auditor that computes what an
// attacker can infer about every suppressed cell from the published
// values — which makes the paper's central criticism executable: cell
// suppression prevents *exact* disclosure (Fellegi's goal) but does not
// bound *inferential* disclosure; the audit regularly pins suppressed
// cells into narrow intervals. That gap is precisely what the formal
// definitions of Sections 4–7 close.
package suppress

import (
	"fmt"
	"math"
)

// Cell is one cell of a two-dimensional magnitude table: the employment
// count, the number of contributing establishments, and the two largest
// single-establishment contributions (what the dominance rules inspect).
type Cell struct {
	Count        int64
	Contributors int
	Largest      int64
	Second       int64
}

// Validate returns an error for internally inconsistent cells.
func (c Cell) Validate() error {
	if c.Count < 0 || c.Contributors < 0 || c.Largest < 0 || c.Second < 0 {
		return fmt.Errorf("suppress: negative cell fields: %+v", c)
	}
	if c.Largest+c.Second > c.Count {
		return fmt.Errorf("suppress: top contributors %d+%d exceed count %d",
			c.Largest, c.Second, c.Count)
	}
	if c.Second > c.Largest {
		return fmt.Errorf("suppress: second contributor %d exceeds largest %d", c.Second, c.Largest)
	}
	if c.Contributors == 0 && c.Count != 0 {
		return fmt.Errorf("suppress: count %d with no contributors", c.Count)
	}
	if c.Contributors == 1 && c.Largest != c.Count {
		return fmt.Errorf("suppress: single contributor must equal count")
	}
	return nil
}

// Table is a two-dimensional table with published row and column totals —
// the classic publication layout (e.g. industry × place employment).
type Table struct {
	Rows, Cols int
	Cells      [][]Cell
}

// NewTable validates dimensions and cells.
func NewTable(cells [][]Cell) (*Table, error) {
	if len(cells) == 0 || len(cells[0]) == 0 {
		return nil, fmt.Errorf("suppress: table must be non-empty")
	}
	cols := len(cells[0])
	for r, row := range cells {
		if len(row) != cols {
			return nil, fmt.Errorf("suppress: row %d has %d columns, want %d", r, len(row), cols)
		}
		for c, cell := range row {
			if err := cell.Validate(); err != nil {
				return nil, fmt.Errorf("suppress: cell (%d,%d): %w", r, c, err)
			}
		}
	}
	return &Table{Rows: len(cells), Cols: cols, Cells: cells}, nil
}

// RowTotal returns the published total of row r.
func (t *Table) RowTotal(r int) int64 {
	var sum int64
	for c := 0; c < t.Cols; c++ {
		sum += t.Cells[r][c].Count
	}
	return sum
}

// ColTotal returns the published total of column c.
func (t *Table) ColTotal(c int) int64 {
	var sum int64
	for r := 0; r < t.Rows; r++ {
		sum += t.Cells[r][c].Count
	}
	return sum
}

// Rule decides whether a cell is sensitive (must be primarily suppressed).
type Rule interface {
	Sensitive(c Cell) bool
	Name() string
}

// ThresholdRule marks cells with fewer than MinContributors contributing
// establishments — the classic "fewer than 3 firms" rule.
type ThresholdRule struct {
	MinContributors int
}

// Sensitive reports whether the cell has too few contributors. Empty
// cells are not sensitive: publishing a zero discloses no establishment's
// data (the same convention input noise infusion uses).
func (r ThresholdRule) Sensitive(c Cell) bool {
	return c.Contributors > 0 && c.Contributors < r.MinContributors
}

// Name identifies the rule.
func (r ThresholdRule) Name() string {
	return fmt.Sprintf("threshold(min=%d)", r.MinContributors)
}

// PPercentRule is the p%-rule: a cell is sensitive if the cell total
// minus the two largest contributions is less than p% of the largest —
// i.e. the second-largest contributor could estimate the largest to
// within p%.
type PPercentRule struct {
	P float64
}

// Sensitive applies the p% test.
func (r PPercentRule) Sensitive(c Cell) bool {
	if c.Contributors == 0 {
		return false
	}
	remainder := c.Count - c.Largest - c.Second
	return float64(remainder) < r.P/100*float64(c.Largest)
}

// Name identifies the rule.
func (r PPercentRule) Name() string { return fmt.Sprintf("p%%(p=%g)", r.P) }

// NKRule is the (n,k)-dominance rule: sensitive if the largest n=2
// contributors hold more than k% of the cell total. (The common n=2 form;
// the rule's purpose is the same as the p% rule's.)
type NKRule struct {
	K float64
}

// Sensitive applies the (2,k) dominance test.
func (r NKRule) Sensitive(c Cell) bool {
	if c.Contributors == 0 || c.Count == 0 {
		return false
	}
	return float64(c.Largest+c.Second) > r.K/100*float64(c.Count)
}

// Name identifies the rule.
func (r NKRule) Name() string { return fmt.Sprintf("nk(n=2,k=%g)", r.K) }

// Pattern is a suppression pattern: Suppressed[r][c] reports whether the
// cell is withheld from publication.
type Pattern struct {
	Suppressed [][]bool
}

// newPattern allocates an all-false pattern for the table.
func newPattern(t *Table) *Pattern {
	s := make([][]bool, t.Rows)
	for r := range s {
		s[r] = make([]bool, t.Cols)
	}
	return &Pattern{Suppressed: s}
}

// Count returns the number of suppressed cells.
func (p *Pattern) Count() int {
	n := 0
	for _, row := range p.Suppressed {
		for _, s := range row {
			if s {
				n++
			}
		}
	}
	return n
}

// Primary computes the primary suppression pattern: every cell any rule
// marks sensitive.
func Primary(t *Table, rules ...Rule) *Pattern {
	p := newPattern(t)
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			for _, rule := range rules {
				if rule.Sensitive(t.Cells[r][c]) {
					p.Suppressed[r][c] = true
					break
				}
			}
		}
	}
	return p
}

// Complementary extends a primary pattern so that no row or column with
// a suppressed cell has exactly one suppressed non-zero residual — the
// necessary condition of Fellegi's subtraction-attack analysis: a single
// suppressed cell in a line with a published total is recoverable
// exactly. Complements are chosen greedily (the smallest-count unsuppressed
// non-zero cell in the line, so the least information is withheld), and
// the row/column conditions are iterated to a fixed point.
//
// Zero cells are never chosen as complements: suppressing a structural
// zero protects nothing (its value is public knowledge by the paper's
// conventions) and would not stop subtraction.
func Complementary(t *Table, primary *Pattern) *Pattern {
	p := newPattern(t)
	for r := range primary.Suppressed {
		copy(p.Suppressed[r], primary.Suppressed[r])
	}
	fixLines(t, p)
	// The >=2-per-line condition is necessary but not sufficient: in
	// interlocking patterns, the audit's constraint propagation can still
	// pin a cell exactly (the classic counterexample to naive
	// complementary suppression). Close the loop against the auditor:
	// while any suppressed cell audits as exactly recoverable, add a
	// further complement in one of its lines and re-establish the line
	// conditions. The iteration terminates because each round suppresses
	// at least one more cell or runs out of candidates.
	//
	// Residual limitation (kept deliberately, and reported by Audit): when
	// a pinned cell's row and column are already entirely suppressed or
	// zero, no local complement exists, and breaking the inference would
	// require restructuring the pattern globally — finding the minimal
	// such pattern is NP-hard, which is one of the practical reasons
	// agencies moved from suppression to noise-based SDL (Appendix A).
	for rounds := 0; rounds < t.Rows*t.Cols; rounds++ {
		audit := Audit(t, p)
		added := false
		for key, iv := range audit {
			if !iv.Exact() || t.Cells[key[0]][key[1]].Count == 0 {
				continue
			}
			if addComplementNear(t, p, key[0], key[1]) {
				added = true
				break
			}
		}
		if !added {
			break
		}
		fixLines(t, p)
	}
	return p
}

// fixLines iterates the >=2-suppressed-per-line condition to a fixed point.
func fixLines(t *Table, p *Pattern) {
	for changed := true; changed; {
		changed = false
		for r := 0; r < t.Rows; r++ {
			if fixLine(t, p, r, -1) {
				changed = true
			}
		}
		for c := 0; c < t.Cols; c++ {
			if fixLine(t, p, -1, c) {
				changed = true
			}
		}
	}
}

// addComplementNear suppresses the smallest unsuppressed non-zero cell in
// the row or column of (r, c), preferring the row. Returns whether a
// complement was added.
func addComplementNear(t *Table, p *Pattern, r, c int) bool {
	bestR, bestC := -1, -1
	var bestCount int64
	consider := func(rr, cc int) {
		if p.Suppressed[rr][cc] || t.Cells[rr][cc].Count == 0 {
			return
		}
		if bestR < 0 || t.Cells[rr][cc].Count < bestCount {
			bestR, bestC, bestCount = rr, cc, t.Cells[rr][cc].Count
		}
	}
	for cc := 0; cc < t.Cols; cc++ {
		consider(r, cc)
	}
	if bestR < 0 {
		for rr := 0; rr < t.Rows; rr++ {
			consider(rr, c)
		}
	}
	if bestR < 0 {
		return false
	}
	p.Suppressed[bestR][bestC] = true
	return true
}

// fixLine enforces the >=2-suppressed-or-0 condition on one row (col=-1)
// or one column (row=-1). Returns whether it added a complement.
func fixLine(t *Table, p *Pattern, row, col int) bool {
	var suppressedCount int
	type pos struct{ r, c int }
	var candidates []pos
	visit := func(r, c int) {
		cell := t.Cells[r][c]
		if p.Suppressed[r][c] {
			if cell.Count > 0 {
				suppressedCount++
			}
			return
		}
		if cell.Count > 0 {
			candidates = append(candidates, pos{r, c})
		}
	}
	if row >= 0 {
		for c := 0; c < t.Cols; c++ {
			visit(row, c)
		}
	} else {
		for r := 0; r < t.Rows; r++ {
			visit(r, col)
		}
	}
	if suppressedCount != 1 || len(candidates) == 0 {
		return false
	}
	// Pick the smallest-count candidate as the complement.
	best := candidates[0]
	for _, cand := range candidates[1:] {
		if t.Cells[cand.r][cand.c].Count < t.Cells[best.r][best.c].Count {
			best = cand
		}
	}
	p.Suppressed[best.r][best.c] = true
	return true
}

// Interval is the auditor's inference about one suppressed cell.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Exact reports whether the interval pins the cell to a single value.
func (iv Interval) Exact() bool { return iv.Hi-iv.Lo < 1e-9 }

// Audit computes, for every suppressed cell, the tightest interval an
// attacker can derive from the published cells and the row/column totals
// by interval constraint propagation: within each line, a suppressed
// cell equals the line residual minus the other suppressed cells, so its
// bounds tighten against the others' bounds. Propagation runs to a fixed
// point; the result is a (generally loose, never invalid) bound on the
// attacker's linear-programming inference.
func Audit(t *Table, p *Pattern) map[[2]int]Interval {
	// Line residuals: total minus published (unsuppressed) cells.
	rowResidual := make([]float64, t.Rows)
	colResidual := make([]float64, t.Cols)
	for r := 0; r < t.Rows; r++ {
		rowResidual[r] = float64(t.RowTotal(r))
	}
	for c := 0; c < t.Cols; c++ {
		colResidual[c] = float64(t.ColTotal(c))
	}
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			if !p.Suppressed[r][c] {
				rowResidual[r] -= float64(t.Cells[r][c].Count)
				colResidual[c] -= float64(t.Cells[r][c].Count)
			}
		}
	}
	// Initialize every suppressed cell to the finite cap its two line
	// residuals impose, so propagation never handles infinities.
	intervals := make(map[[2]int]Interval)
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			if p.Suppressed[r][c] {
				intervals[[2]int{r, c}] = Interval{
					Lo: 0,
					Hi: math.Min(rowResidual[r], colResidual[c]),
				}
			}
		}
	}
	// Iterative tightening against the line-sum constraints.
	tighten := func() bool {
		changed := false
		update := func(key [2]int, lo, hi float64) {
			iv := intervals[key]
			newLo := math.Max(iv.Lo, lo)
			newHi := math.Min(iv.Hi, hi)
			if newLo > iv.Lo+1e-12 || newHi < iv.Hi-1e-12 {
				intervals[key] = Interval{Lo: newLo, Hi: newHi}
				changed = true
			}
		}
		// Row constraints.
		for r := 0; r < t.Rows; r++ {
			residual := float64(t.RowTotal(r))
			var keys [][2]int
			for c := 0; c < t.Cols; c++ {
				if p.Suppressed[r][c] {
					keys = append(keys, [2]int{r, c})
				} else {
					residual -= float64(t.Cells[r][c].Count)
				}
			}
			propagate(residual, keys, intervals, update)
		}
		// Column constraints.
		for c := 0; c < t.Cols; c++ {
			residual := float64(t.ColTotal(c))
			var keys [][2]int
			for r := 0; r < t.Rows; r++ {
				if p.Suppressed[r][c] {
					keys = append(keys, [2]int{r, c})
				} else {
					residual -= float64(t.Cells[r][c].Count)
				}
			}
			propagate(residual, keys, intervals, update)
		}
		return changed
	}
	for i := 0; i < 1000 && tighten(); i++ {
	}
	return intervals
}

// propagate applies the residual-sum constraint Σ cells = residual to the
// suppressed cells of one line.
func propagate(residual float64, keys [][2]int, intervals map[[2]int]Interval, update func([2]int, float64, float64)) {
	if len(keys) == 0 {
		return
	}
	var sumLo, sumHi float64
	for _, k := range keys {
		sumLo += intervals[k].Lo
		sumHi += intervals[k].Hi
	}
	for _, k := range keys {
		iv := intervals[k]
		lo := residual - (sumHi - iv.Hi)
		hi := residual - (sumLo - iv.Lo)
		update(k, math.Max(0, lo), hi)
	}
}

// ProtectedWithin reports whether the audit leaves every suppressed cell
// with an interval at least band wide relative to its true value — the
// inferential-protection question the paper asks of every SDL method.
// It returns the first violating cell, if any.
func ProtectedWithin(t *Table, p *Pattern, band float64) (ok bool, violation [2]int, iv Interval) {
	audit := Audit(t, p)
	for key, interval := range audit {
		true_ := float64(t.Cells[key[0]][key[1]].Count)
		if interval.Width() < band*math.Max(true_, 1) {
			return false, key, interval
		}
	}
	return true, [2]int{-1, -1}, Interval{}
}
