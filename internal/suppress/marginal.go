package suppress

import (
	"fmt"

	"repro/internal/table"
)

// FromMarginal converts a two-attribute marginal into a suppression
// table: the first query attribute indexes rows, the second columns, and
// each cell carries the contributor statistics the dominance rules need
// (computed by the marginal engine's per-entity tracking).
func FromMarginal(m *table.Marginal) (*Table, error) {
	q := m.Query
	if len(q.Attrs()) != 2 {
		return nil, fmt.Errorf("suppress: need a two-attribute marginal, got %d attributes", len(q.Attrs()))
	}
	rows := q.Schema().Attr(q.Attrs()[0]).Size()
	cols := q.Schema().Attr(q.Attrs()[1]).Size()
	cells := make([][]Cell, rows)
	for r := 0; r < rows; r++ {
		cells[r] = make([]Cell, cols)
		for c := 0; c < cols; c++ {
			key := q.CellKey(r, c)
			cells[r][c] = Cell{
				Count:        m.Counts[key],
				Contributors: int(m.EntityCount[key]),
				Largest:      m.MaxEntityContribution[key],
				Second:       m.SecondEntityContribution[key],
			}
		}
	}
	return NewTable(cells)
}

// CellLabel renders the (row, col) cell of a marginal-derived table using
// the marginal's attribute values, for diagnostics.
func CellLabel(m *table.Marginal, r, c int) string {
	q := m.Query
	return q.CellString(q.CellKey(r, c))
}
