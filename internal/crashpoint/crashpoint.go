// Package crashpoint provides environment-armed SIGKILL fault
// injection for crash-safety testing.
//
// A process is armed by setting EREE_CRASH to "point" or "point:N"
// (N ≥ 1, default 1). When the named point's Maybe is reached for the
// N-th time the process SIGKILLs itself — no deferred functions, no
// flushes, no signal handlers: the same abrupt death an OOM kill or
// power loss produces, which is exactly what the write-ahead log's
// durability contract must survive. Unarmed (the normal case) every
// call is a cheap counter check that compiles to nothing observable.
package crashpoint

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

var (
	armedPoint string
	armedCount int64
	hits       atomic.Int64
)

func init() {
	spec := os.Getenv("EREE_CRASH")
	if spec == "" {
		return
	}
	point, countStr, found := strings.Cut(spec, ":")
	armedPoint = point
	armedCount = 1
	if found {
		if n, err := strconv.ParseInt(countStr, 10, 64); err == nil && n >= 1 {
			armedCount = n
		}
	}
}

// Maybe kills the process with SIGKILL if point is the armed crash
// point and this is its armed-count'th hit. Otherwise it is a no-op.
func Maybe(point string) {
	if armedPoint != point {
		return
	}
	if hits.Add(1) == armedCount {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		// SIGKILL is not deliverable to a handler; execution never
		// reaches here. Block just in case delivery is asynchronous.
		select {}
	}
}

// Armed reports whether point is this process's armed crash point,
// for code paths that change shape under injection (for example,
// splitting a response body to expose a mid-response kill window).
func Armed(point string) bool { return armedPoint == point }
