package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecovery damages a real log — truncation, a bit flip, appended
// garbage — and checks the recovery reader's contract: it never
// panics, it never returns a record that was not fully written before
// the damage point, and it always returns every record that lies
// entirely before the damage point. It then proves the truncated log
// is appendable and recovers again.
func FuzzRecovery(f *testing.F) {
	f.Add(uint8(5), uint16(0), uint16(0), false, []byte(nil))
	f.Add(uint8(8), uint16(40), uint16(0), false, []byte(nil))       // truncate mid-record
	f.Add(uint8(8), uint16(0), uint16(30), true, []byte(nil))        // flip a payload bit
	f.Add(uint8(3), uint16(0), uint16(9), true, []byte(nil))         // flip a length-field bit
	f.Add(uint8(4), uint16(0), uint16(0), false, []byte("garbage"))  // trailing junk
	f.Add(uint8(0), uint16(0), uint16(0), false, []byte{0, 0, 0, 1}) // junk on empty log
	f.Add(uint8(6), uint16(33), uint16(20), true, []byte{0xff, 0x00, 0x61})

	f.Fuzz(func(t *testing.T, nRecords uint8, cut uint16, flipAt uint16, doFlip bool, garbage []byte) {
		n := int(nRecords % 24)
		dir := t.TempDir()
		s, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		originals := make([][]byte, n)
		for i := 0; i < n; i++ {
			originals[i] = payloadFor(i)
			if err := s.Append(originals[i]); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		path := filepath.Join(dir, logName(0))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Damage offset: the first byte of the file that no longer
		// matches what the store wrote.
		damage := len(data)
		if int(cut) < len(data) && cut > 0 {
			data = data[:cut]
			damage = len(data)
		}
		if doFlip && len(data) > 0 {
			at := int(flipAt) % len(data)
			data[at] ^= 1 << (flipAt % 8)
			if at < damage {
				damage = at
			}
		}
		if len(garbage) > 0 {
			if len(data) < damage {
				damage = len(data)
			}
			data = append(data, garbage...)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open after damage at offset %d: %v", damage, err)
		}

		// Every record lying entirely before the damage point must be
		// recovered, byte-exact, at its original index.
		off := len(logMagic)
		intact := 0
		for i := 0; i < n; i++ {
			end := off + 8 + len(originals[i])
			if end > damage {
				break
			}
			off = end
			intact++
		}
		if len(rec.Records) < intact {
			t.Fatalf("recovered %d records, want at least the %d before the damage point (offset %d)",
				len(rec.Records), intact, damage)
		}
		for i := 0; i < intact; i++ {
			if !bytes.Equal(rec.Records[i], originals[i]) {
				t.Fatalf("record %d diverged: got %q want %q", i, rec.Records[i], originals[i])
			}
		}
		// Anything recovered beyond the intact prefix must carry a
		// valid checksum by construction; what must never happen is a
		// *modified* copy of an original surviving at its own index.
		for i := intact; i < len(rec.Records) && i < n; i++ {
			if !bytes.Equal(rec.Records[i], originals[i]) && bytes.HasPrefix(rec.Records[i], []byte("record-")) &&
				len(rec.Records[i]) == len(originals[i]) {
				// A same-length, same-index "record-..." payload that
				// differs from the original means a corrupted record
				// passed the checksum — astronomically unlikely, and a
				// privacy bug if it ever happens.
				t.Fatalf("record %d recovered in modified form: %q vs %q", i, rec.Records[i], originals[i])
			}
		}

		// The truncated log must accept appends and recover them.
		extra := []byte("post-damage-append")
		if err := s2.Append(extra); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if len(rec2.Records) != len(rec.Records)+1 ||
			!bytes.Equal(rec2.Records[len(rec2.Records)-1], extra) {
			t.Fatalf("post-damage append not recovered: %d records", len(rec2.Records))
		}
	})
}
