// Package wal implements the append-only write-ahead log behind the
// release service's durable privacy accounting.
//
// A Store is a directory holding at most one generation of state: a
// snapshot file (the compacted prefix of history) plus a log file of
// records appended since that snapshot. Records are opaque byte
// payloads framed as
//
//	u32 length | u32 CRC32-C(payload) | payload
//
// after an 8-byte file magic. Append returns only after the record is
// flushed and fsynced, so a caller that has seen Append return may act
// on the record's durability (the write-ahead contract: no response
// bytes leave the process before the spend they account for is on
// disk). Concurrent appenders share fsyncs through group commit: the
// first goroutine to reach the sync step becomes the leader, flushes
// every record buffered so far, fsyncs once outside the lock, and
// wakes all waiters whose records that sync covered.
//
// Snapshot rotates generations: the new snapshot is written to a temp
// file, fsynced, renamed into place, and the directory fsynced before
// a fresh empty log is created and the previous generation deleted. A
// crash between any two of those steps leaves a state Open can
// resolve unambiguously — the highest-generation valid snapshot wins,
// and a lower-generation log's records are already folded into it.
//
// Open's recovery reader distinguishes two failure modes. A torn log
// tail — the crash window of a half-flushed append — is expected and
// repaired: parsing stops at the first record whose frame or checksum
// is damaged, the file is truncated back to the last intact record,
// and appending resumes from there. A damaged snapshot is not a crash
// artifact (snapshots are fsynced before the rename that publishes
// them), so it is reported as an error instead of silently dropping
// accounted spend: for privacy accounting, under-recovery is the
// failure mode that must never be guessed around.
//
// The store also exposes a streaming surface for replication.
// ReadFrom(gen, offset) and Tail return the durable records of the
// live log from a byte cursor — only bytes covered by a completed
// fsync are ever served, so a shipped record is by construction one
// the primary itself would recover. When the log a cursor points at
// has been compacted away by Snapshot, the cursor calls return
// ErrCompacted and the follower re-seeds from ExportSnapshot (the
// current generation's compacted prefix) before resuming from the
// head of the new log. Stage and Commit split Append's two halves —
// ordering a record into the buffer versus waiting for its group
// fsync — so a caller that must keep its own state in step with log
// order (the replication shadow state) can do so without serializing
// fsyncs.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	logMagic  = "EREEWAL1"
	snapMagic = "EREESNP1"

	// maxRecordLen bounds a single record's payload. The cap exists so
	// a corrupt length field cannot make recovery attempt a giant
	// allocation; accounting records are tens of bytes and snapshots
	// are stored outside the record framing.
	maxRecordLen = 16 << 20
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("wal: store closed")

// ErrCompacted is returned by ReadFrom and Tail when the requested
// generation is no longer the live log — a Snapshot has folded its
// records into the current generation's snapshot. The caller re-seeds
// from ExportSnapshot and resumes streaming from the new log's head.
var ErrCompacted = errors.New("wal: generation compacted")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configure a Store. The hooks exist for fault injection —
// crash-point testing and the chaos harness — and run on the group
// commit leader: BeforeSync with the store lock held, after the
// pending records entered the user-space buffer but before any of
// them reached the OS (a crash here loses them); AfterSync after the
// fsync returned but before any waiting appender has been released (a
// crash here leaves the records durable with no response sent).
// FailSync, when set, runs on the leader after the buffered records
// were flushed to the file but before the fsync; a non-nil return is
// treated as the fsync failing, so every append in the group — and
// the store, whose first failure is sticky — observes the error.
type Options struct {
	BeforeSync func()
	AfterSync  func()
	FailSync   func() error
}

// Recovered is what Open found on disk: the newest snapshot payload
// (nil on first boot), every intact record appended after it, and how
// many torn tail bytes were truncated from the log.
type Recovered struct {
	Snapshot       []byte
	Records        [][]byte
	Gen            uint64
	TruncatedBytes int64
}

// Store is an open write-ahead log. Methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	buf      *bufio.Writer
	gen      uint64
	appended uint64 // records in this generation's log, including buffered
	durable  uint64 // records in this generation covered by a completed fsync
	stagedB  int64  // log byte length including buffered records
	durableB int64  // log byte length covered by a completed fsync
	syncing  bool
	closed   bool
	err      error // sticky first write/sync failure

	syncs atomic.Int64
}

func logName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.snap", gen) }

// parseGen extracts the generation from a state file name, reporting
// whether the name matches prefix-%016x.suffix.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexpart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexpart) != 16 {
		return 0, false
	}
	g, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// Open opens (creating if necessary) the store in dir and recovers
// its state. Leftover temp files from an interrupted snapshot are
// removed, the newest valid snapshot is selected, the matching log's
// intact records are returned, and any torn tail is truncated so
// appending can resume. Stale previous-generation files are deleted.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	var snapGens, logGens []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted snapshot write; never published, safe to drop.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, fmt.Errorf("wal: open: %w", err)
			}
		default:
			if g, ok := parseGen(name, "snap-", ".snap"); ok {
				snapGens = append(snapGens, g)
			} else if g, ok := parseGen(name, "wal-", ".log"); ok {
				logGens = append(logGens, g)
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(logGens, func(i, j int) bool { return logGens[i] < logGens[j] })

	rec := &Recovered{}
	if n := len(snapGens); n > 0 {
		rec.Gen = snapGens[n-1]
		snap, err := readSnapshotFile(filepath.Join(dir, snapName(rec.Gen)))
		if err != nil {
			// Snapshots are fsynced before being renamed into place, so
			// damage here is not a torn write; refusing to open beats
			// recovering less spend than was accounted.
			return nil, nil, fmt.Errorf("wal: snapshot generation %d: %w", rec.Gen, err)
		}
		rec.Snapshot = snap
	}
	if n := len(logGens); n > 0 && logGens[n-1] > rec.Gen {
		if rec.Snapshot == nil && logGens[n-1] == 0 {
			// First boot's log, no snapshot yet.
		} else {
			return nil, nil, fmt.Errorf("wal: log generation %d has no valid snapshot", logGens[n-1])
		}
	}

	logPath := filepath.Join(dir, logName(rec.Gen))
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	data, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read log: %w", err)
	}
	records, validLen := parseLog(data)
	rec.Records = records
	rec.TruncatedBytes = int64(len(data)) - validLen
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	created := validLen < int64(len(logMagic))
	if created {
		// New (or unrecoverably short) log: start it with a fresh magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: init log: %w", err)
		}
		if _, err := f.WriteAt([]byte(logMagic), 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: init log: %w", err)
		}
		validLen = int64(len(logMagic))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}

	// Delete stale generations now that the chosen one is readable.
	for _, g := range snapGens {
		if g != rec.Gen {
			os.Remove(filepath.Join(dir, snapName(g)))
		}
	}
	for _, g := range logGens {
		if g != rec.Gen {
			os.Remove(filepath.Join(dir, logName(g)))
		}
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}

	s := &Store{
		dir:      dir,
		opts:     opts,
		f:        f,
		buf:      bufio.NewWriter(f),
		gen:      rec.Gen,
		appended: uint64(len(rec.Records)),
		durable:  uint64(len(rec.Records)),
		stagedB:  validLen,
		durableB: validLen,
	}
	s.cond = sync.NewCond(&s.mu)
	return s, rec, nil
}

func readAll(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil && st.Size() > 0 {
		return nil, err
	}
	return data, nil
}

// parseLog walks the framed records in data, returning every intact
// payload and the byte offset of the last intact frame boundary.
// Parsing stops at the first damage — short header, oversized or zero
// length, frame running past EOF, or checksum mismatch — which is the
// torn-tail truncation point.
func parseLog(data []byte) ([][]byte, int64) {
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return nil, 0
	}
	var records [][]byte
	off := len(logMagic)
	for {
		if len(data)-off < 8 {
			break
		}
		length := binary.BigEndian.Uint32(data[off : off+4])
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if length == 0 || length > maxRecordLen || len(data)-off-8 < int(length) {
			break
		}
		payload := data[off+8 : off+8+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		records = append(records, append([]byte(nil), payload...))
		off += 8 + int(length)
	}
	return records, int64(off)
}

func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+12 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("bad header")
	}
	off := len(snapMagic)
	length := binary.BigEndian.Uint64(data[off : off+8])
	sum := binary.BigEndian.Uint32(data[off+8 : off+12])
	body := data[off+12:]
	if uint64(len(body)) != length {
		return nil, errors.New("length mismatch")
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, errors.New("checksum mismatch")
	}
	return body, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems reject fsync on directories; treat that as
	// best-effort rather than failing the store.
	if errors.Is(err, fs.ErrInvalid) {
		return nil
	}
	return err
}

// Append writes one record and returns once it is durable (flushed
// and fsynced). Concurrent callers share fsyncs via group commit.
func (s *Store) Append(payload []byte) error {
	seq, err := s.Stage(payload)
	if err != nil {
		return err
	}
	return s.Commit(seq)
}

// AppendBatch stages every payload in order and returns once the last
// — and therefore all — of them is durable. The batch shares a single
// group commit where the fsync allows, which is the follower's bulk
// apply path.
func (s *Store) AppendBatch(payloads [][]byte) error {
	var last uint64
	for _, p := range payloads {
		seq, err := s.Stage(p)
		if err != nil {
			return err
		}
		last = seq
	}
	if last == 0 {
		return nil
	}
	return s.Commit(last)
}

// Stage orders one record into the log buffer and returns its
// sequence within the current generation. The record is NOT durable
// until Commit(seq) returns; a caller that stages must commit (or
// observe the store's sticky error). The two-step form exists so a
// caller can update state that must mirror log order under its own
// lock between Stage and Commit without holding that lock across the
// fsync.
func (s *Store) Stage(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: append: payload length %d out of range", len(payload))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.err != nil {
		return 0, s.err
	}
	s.buf.Write(hdr[:])
	s.buf.Write(payload) // bufio errors are sticky; surfaced at Flush
	s.appended++
	s.stagedB += 8 + int64(len(payload))
	return s.appended, nil
}

// Commit blocks until the record Stage returned seq for is covered by
// a completed fsync. Concurrent committers share fsyncs: the first to
// arrive becomes the group leader, flushes everything staged so far,
// fsyncs once outside the lock, and wakes every waiter that sync
// covered. A sync failure fails every waiter in the batch — the store
// never acknowledges half a group.
func (s *Store) Commit(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.durable < seq && s.err == nil {
		if s.syncing {
			s.cond.Wait()
			continue
		}
		// Become the group commit leader for everything buffered so far.
		s.syncing = true
		target := s.appended
		targetB := s.stagedB
		if hook := s.opts.BeforeSync; hook != nil {
			hook()
		}
		err := s.buf.Flush()
		f := s.f
		s.mu.Unlock()
		if err == nil {
			if hook := s.opts.FailSync; hook != nil {
				err = hook()
			}
		}
		if err == nil {
			err = f.Sync()
			s.syncs.Add(1)
		}
		if hook := s.opts.AfterSync; hook != nil {
			hook()
		}
		s.mu.Lock()
		s.syncing = false
		if err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("wal: append: %w", err)
			}
		} else if target > s.durable {
			s.durable = target
			s.durableB = targetB
		}
		s.cond.Broadcast()
	}
	return s.err
}

// Snapshot atomically replaces the store's history with state: the
// snapshot is written and fsynced under a temp name, renamed into the
// next generation, and only then is a fresh empty log created and the
// previous generation deleted. On return the old log's records are
// compacted away; a crash at any interior step leaves a directory
// Open resolves to either the old or the new generation, never a mix.
func (s *Store) Snapshot(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.syncing {
		s.cond.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.appended != s.durable {
		// A staged record whose Commit has not completed would be
		// flushed into the old log and then compacted away without ever
		// being acknowledged or captured by state. Snapshot is a
		// quiescent-point operation (boot, drain, promote); calling it
		// mid-append is a caller bug worth failing loudly on.
		return fmt.Errorf("wal: snapshot: %d staged records not yet committed", s.appended-s.durable)
	}
	if err := s.buf.Flush(); err != nil {
		s.err = fmt.Errorf("wal: snapshot: %w", err)
		return s.err
	}

	newGen := s.gen + 1
	if err := writeSnapshotFile(s.dir, newGen, state); err != nil {
		s.err = err
		return s.err
	}
	newLogPath := filepath.Join(s.dir, logName(newGen))
	nf, err := os.OpenFile(newLogPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err == nil {
		_, err = nf.Write([]byte(logMagic))
		if err == nil {
			err = nf.Sync()
		}
	}
	if err != nil {
		if nf != nil {
			nf.Close()
		}
		s.err = fmt.Errorf("wal: snapshot: %w", err)
		return s.err
	}
	if err := syncDir(s.dir); err != nil {
		nf.Close()
		s.err = fmt.Errorf("wal: snapshot: %w", err)
		return s.err
	}

	oldGen := s.gen
	s.f.Close()
	s.f = nf
	s.buf = bufio.NewWriter(nf)
	s.gen = newGen
	s.appended = 0
	s.durable = 0
	s.stagedB = int64(len(logMagic))
	s.durableB = int64(len(logMagic))
	os.Remove(filepath.Join(s.dir, logName(oldGen)))
	os.Remove(filepath.Join(s.dir, snapName(oldGen)))
	// Wake any Tail blocked on the old generation so it can observe
	// ErrCompacted and re-seed.
	s.cond.Broadcast()
	if err := syncDir(s.dir); err != nil {
		s.err = fmt.Errorf("wal: snapshot: %w", err)
		return s.err
	}
	return nil
}

// writeSnapshotFile publishes state as generation gen's snapshot via
// the temp-write / fsync / rename / dir-fsync dance.
func writeSnapshotFile(dir string, gen uint64, state []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(len(state)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.Checksum(state, castagnoli))
	_, err = tmp.Write([]byte(snapMagic))
	if err == nil {
		_, err = tmp.Write(hdr[:])
	}
	if err == nil {
		_, err = tmp.Write(state)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, filepath.Join(dir, snapName(gen)))
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}

// Close flushes and fsyncs any buffered records, then closes the log.
// Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.syncing {
		s.cond.Wait()
	}
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.err == nil {
		err = s.buf.Flush()
		if err == nil {
			err = s.f.Sync()
		}
		if err == nil {
			s.durable = s.appended
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.cond.Broadcast()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Syncs reports how many fsyncs the store has issued for appends —
// under concurrent load this is well below the append count, which is
// the group commit working.
func (s *Store) Syncs() int64 { return s.syncs.Load() }

// Appends reports how many records have been accepted.
func (s *Store) Appends() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Gen reports the current snapshot generation.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Durable reports the live log's durable frontier: the current
// generation, the byte offset covered by a completed fsync, and the
// number of records in the generation up to that offset (recovered
// records included). A streaming cursor at offset `bytes` has seen
// exactly `records` records.
func (s *Store) Durable() (gen uint64, bytes int64, records uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen, s.durableB, s.durable
}

// StreamStart is the byte offset of the first record in any log — the
// cursor a follower starts from after seeding on ExportSnapshot.
func StreamStart() int64 { return int64(len(logMagic)) }

// ReadFrom returns the durable records of generation gen starting at
// byte offset `offset`, and the offset to resume from. Only bytes
// covered by a completed fsync are served. If maxBytes > 0 the batch
// stops at the last whole frame within that many bytes (the resume
// offset then points mid-log and the caller loops). ErrCompacted
// reports that gen is no longer the live log; any other parse failure
// means the cursor does not sit on a frame boundary or the durable
// prefix is damaged, both of which are loud errors rather than data.
func (s *Store) ReadFrom(gen uint64, offset int64, maxBytes int) ([][]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readFromLocked(gen, offset, maxBytes)
}

func (s *Store) readFromLocked(gen uint64, offset int64, maxBytes int) ([][]byte, int64, error) {
	if s.closed {
		return nil, 0, ErrClosed
	}
	if s.err != nil {
		return nil, 0, s.err
	}
	if gen != s.gen {
		return nil, 0, ErrCompacted
	}
	if offset < int64(len(logMagic)) || offset > s.durableB {
		return nil, 0, fmt.Errorf("wal: read from: offset %d outside durable log [%d, %d]", offset, len(logMagic), s.durableB)
	}
	end := s.durableB
	if maxBytes > 0 && offset+int64(maxBytes) < end {
		end = offset + int64(maxBytes)
	}
	var records [][]byte
	next := offset
	for next < end {
		if s.durableB-next < 8 {
			return nil, 0, fmt.Errorf("wal: read from: truncated frame header at offset %d", next)
		}
		var hdr [8]byte
		if _, err := s.f.ReadAt(hdr[:], next); err != nil {
			return nil, 0, fmt.Errorf("wal: read from: %w", err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordLen || s.durableB-next-8 < int64(length) {
			return nil, 0, fmt.Errorf("wal: read from: bad frame at offset %d", next)
		}
		if maxBytes > 0 && next+8+int64(length) > end && next > offset {
			break // frame would exceed the batch cap; resume here
		}
		payload := make([]byte, length)
		if _, err := s.f.ReadAt(payload, next+8); err != nil {
			return nil, 0, fmt.Errorf("wal: read from: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, 0, fmt.Errorf("wal: read from: checksum mismatch at offset %d", next)
		}
		records = append(records, payload)
		next += 8 + int64(length)
	}
	return records, next, nil
}

// Tail is ReadFrom that waits: if the cursor is at the durable
// frontier it blocks until new records become durable, the generation
// rotates (ErrCompacted), the store closes, or maxWait elapses —
// returning an empty batch in the last case. This is the long-poll
// primitive behind the replication stream endpoint.
func (s *Store) Tail(gen uint64, offset int64, maxWait time.Duration, maxBytes int) ([][]byte, int64, error) {
	deadline := time.Now().Add(maxWait)
	for {
		s.mu.Lock()
		records, next, err := s.readFromLocked(gen, offset, maxBytes)
		s.mu.Unlock()
		if err != nil || len(records) > 0 {
			return records, next, err
		}
		if !time.Now().Before(deadline) {
			return nil, offset, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ExportSnapshot returns the current generation and its snapshot
// payload — the compacted prefix of history a follower seeds from
// before streaming the live log from StreamStart(). The payload is
// nil when the generation has no snapshot (a first-boot store that
// has never compacted).
func (s *Store) ExportSnapshot() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, ErrClosed
	}
	if s.err != nil {
		return 0, nil, s.err
	}
	if s.gen == 0 {
		if _, err := os.Stat(filepath.Join(s.dir, snapName(0))); err != nil {
			return 0, nil, nil
		}
	}
	snap, err := readSnapshotFile(filepath.Join(s.dir, snapName(s.gen)))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: export snapshot generation %d: %w", s.gen, err)
	}
	return s.gen, snap, nil
}
