package wal

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadFromCursorWalksDurableLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := payloadFor(i)
		want = append(want, p)
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	gen, end, nrec := s.Durable()
	if gen != 0 || nrec != 10 {
		t.Fatalf("Durable() = gen %d, %d records; want gen 0, 10", gen, nrec)
	}

	recs, next, err := s.ReadFrom(0, StreamStart(), 0)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if next != end {
		t.Fatalf("cursor advanced to %d, want durable end %d", next, end)
	}
	if len(recs) != len(want) {
		t.Fatalf("streamed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}

	// A cursor at the frontier reads nothing; a later append extends it.
	recs, next2, err := s.ReadFrom(0, next, 0)
	if err != nil || len(recs) != 0 || next2 != next {
		t.Fatalf("frontier read = %d records, next %d, err %v", len(recs), next2, err)
	}
	extra := payloadFor(99)
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
	recs, _, err = s.ReadFrom(0, next, 0)
	if err != nil || len(recs) != 1 || !bytes.Equal(recs[0], extra) {
		t.Fatalf("incremental read = %v (err %v), want the one new record", recs, err)
	}

	// maxBytes = 1 forces one whole frame per batch; walking the whole
	// log in bounded batches reproduces the exact record sequence.
	_, end, _ = s.Durable()
	cursor := StreamStart()
	var got [][]byte
	for cursor < end {
		recs, cursor, err = s.ReadFrom(0, cursor, 1)
		if err != nil {
			t.Fatalf("bounded ReadFrom: %v", err)
		}
		if len(recs) != 1 {
			t.Fatalf("bounded batch returned %d records, want 1", len(recs))
		}
		got = append(got, recs[0])
	}
	want = append(want, extra)
	if len(got) != len(want) {
		t.Fatalf("bounded walk yielded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("bounded walk record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadFromRejectsBadCursor(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, end, _ := s.Durable()
	if _, _, err := s.ReadFrom(0, end+1, 0); err == nil {
		t.Fatal("cursor beyond the durable frontier accepted")
	}
	if _, _, err := s.ReadFrom(0, StreamStart()-1, 0); err == nil {
		t.Fatal("cursor inside the file magic accepted")
	}
	if _, _, err := s.ReadFrom(0, StreamStart()+1, 0); err == nil {
		t.Fatal("cursor off a frame boundary accepted")
	}
}

func TestCompactionInvalidatesCursorAndExportReseeds(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("compacted-through-five")
	if err := s.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 7; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}

	// The old generation's cursor is dead, loudly.
	if _, _, err := s.ReadFrom(0, StreamStart(), 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("stale-generation cursor: %v, want ErrCompacted", err)
	}

	// Re-seed: the export is the compacted prefix, and the new
	// generation's log streams exactly the records appended after it.
	gen, snap, err := s.ExportSnapshot()
	if err != nil {
		t.Fatalf("ExportSnapshot: %v", err)
	}
	if gen != 1 || !bytes.Equal(snap, state) {
		t.Fatalf("export = gen %d, %q; want gen 1, %q", gen, snap, state)
	}
	recs, _, err := s.ReadFrom(1, StreamStart(), 0)
	if err != nil {
		t.Fatalf("ReadFrom new generation: %v", err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0], payloadFor(5)) || !bytes.Equal(recs[1], payloadFor(6)) {
		t.Fatalf("new-generation stream = %q", recs)
	}
}

func TestExportSnapshotFirstBoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	gen, snap, err := s.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || snap != nil {
		t.Fatalf("first-boot export = gen %d, %v; want gen 0, nil", gen, snap)
	}
}

func TestTailWaitsForNewRecordsAndTimesOut(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Append(payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	_, frontier, _ := s.Durable()

	late := payloadFor(1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		s.Append(late)
	}()
	recs, next, err := s.Tail(0, frontier, 5*time.Second, 0)
	if err != nil {
		t.Fatalf("Tail: %v", err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0], late) {
		t.Fatalf("Tail = %q, want the late record", recs)
	}

	// At the frontier with nothing coming, Tail returns empty at the
	// deadline with the cursor unmoved.
	recs, again, err := s.Tail(0, next, 20*time.Millisecond, 0)
	if err != nil || len(recs) != 0 || again != next {
		t.Fatalf("idle Tail = %d records, next %d, err %v", len(recs), again, err)
	}
}

func TestTailObservesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Append(payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	_, frontier, _ := s.Durable()
	go func() {
		time.Sleep(30 * time.Millisecond)
		s.Snapshot([]byte("rotated"))
	}()
	if _, _, err := s.Tail(0, frontier, 5*time.Second, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Tail across compaction: %v, want ErrCompacted", err)
	}
}

// TestGroupCommitFaultFailsWholeBatch pins the no-half-acknowledged-
// group contract: when the sync covering a batch fails, every waiter
// in that batch observes the failure — none of them can have been
// told its record was durable. The first leader is parked in the
// fault hook (outside the store lock) while the batch stages behind
// it; the next leader's sync is then made to fail.
func TestGroupCommitFaultFailsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	injected := errors.New("injected sync failure")
	var calls atomic.Int32
	s, _, err := Open(dir, Options{FailSync: func() error {
		if calls.Add(1) == 1 {
			<-gate // hold the first group open while the batch stages
			return nil
		}
		return injected
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first := make(chan error, 1)
	go func() { first <- s.Append(payloadFor(0)) }()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond) // leader 1 parked in the hook
	}

	const batch = 8
	results := make(chan error, batch)
	for i := 1; i <= batch; i++ {
		go func(i int) { results <- s.Append(payloadFor(i)) }(i)
	}
	for s.Appends() < batch+1 {
		time.Sleep(time.Millisecond) // all batch records staged
	}
	close(gate)

	if err := <-first; err != nil {
		t.Fatalf("append covered by the successful sync failed: %v", err)
	}
	for i := 0; i < batch; i++ {
		if err := <-results; !errors.Is(err, injected) {
			t.Fatalf("batch waiter %d returned %v, want the injected sync failure", i, err)
		}
	}
	// The failure is sticky: the store refuses further appends rather
	// than resume on a log whose tail state is unknown.
	if err := s.Append(payloadFor(99)); !errors.Is(err, injected) {
		t.Fatalf("append after failed sync: %v, want sticky injected error", err)
	}
	if got := s.Syncs(); got != 1 {
		t.Fatalf("completed %d syncs, want exactly the first group's", got)
	}
}
