package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func payloadFor(i int) []byte {
	// Variable length so frame boundaries land at irregular offsets.
	return []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{'x'}, i%7))))
}

func mustOpen(t *testing.T, dir string) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec = mustOpen(t, dir)
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, payloadFor(i)) {
			t.Fatalf("record %d = %q, want %q", i, r, payloadFor(i))
		}
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", rec.TruncatedBytes)
	}
}

func TestSnapshotCompactsAndRotates(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("state-after-five")
	if err := s.Snapshot(state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 5; i < 8; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only generation 1 files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir after compaction = %v, want exactly snapshot+log", names)
	}

	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if !bytes.Equal(rec.Snapshot, state) {
		t.Fatalf("recovered snapshot %q, want %q", rec.Snapshot, state)
	}
	if rec.Gen != 1 {
		t.Fatalf("recovered generation %d, want 1", rec.Gen)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d post-snapshot records, want 3", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, payloadFor(5+i)) {
			t.Fatalf("record %d = %q, want %q", i, r, payloadFor(5+i))
		}
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the file mid-way through the last record.
	path := filepath.Join(dir, logName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir)
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records from torn log, want 2", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The log is appendable again and the new record survives.
	if err := s2.Append(payloadFor(99)); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = mustOpen(t, dir)
	if len(rec.Records) != 3 || !bytes.Equal(rec.Records[2], payloadFor(99)) {
		t.Fatalf("post-repair log = %d records (last %q)", len(rec.Records), rec.Records[len(rec.Records)-1])
	}
}

func TestCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if err := s.Append(payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("compacted-state")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot; under-recovery must be an error, not a guess")
	}
}

func TestCrashWindowStaleGenerationResolved(t *testing.T) {
	// Simulate the snapshot crash window where the new generation's
	// snapshot was published but the old generation was not yet
	// deleted (and the new log may not exist): Open must choose the
	// new snapshot and ignore — then delete — the old generation's
	// records, which are already folded into it.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 0; i < 4; i++ {
		if err := s.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotFile(dir, 1, []byte("gen1-state")); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if !bytes.Equal(rec.Snapshot, []byte("gen1-state")) {
		t.Fatalf("recovered snapshot %q, want gen1-state", rec.Snapshot)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("old generation's records leaked into recovery: %d", len(rec.Records))
	}
	if _, err := os.Stat(filepath.Join(dir, logName(0))); !os.IsNotExist(err) {
		t.Fatal("stale generation-0 log not cleaned up")
	}
}

func TestOrphanLogWithoutSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName(3)), []byte(logMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a log generation with no snapshot")
	}
}

func TestClosedStoreRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append on closed store: %v, want ErrClosed", err)
	}
	if err := s.Snapshot([]byte("x")); err != ErrClosed {
		t.Fatalf("Snapshot on closed store: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	// Slow the post-fsync window so concurrent appenders pile up
	// behind the leader and the next sync covers them in one batch.
	s, _, err := Open(dir, Options{AfterSync: func() { time.Sleep(2 * time.Millisecond) }})
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 16
		perG       = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Append(payloadFor(g*perG + i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if got := s.Syncs(); got >= total/2 {
		t.Fatalf("group commit issued %d fsyncs for %d appends; batching is not happening", got, total)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir)
	if len(rec.Records) != int(total) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), total)
	}
	// Every appended payload is present exactly once (order across
	// goroutines is scheduling-dependent, presence is not).
	seen := make(map[string]int, total)
	for _, r := range rec.Records {
		seen[string(r)]++
	}
	for i := 0; i < int(total); i++ {
		if seen[string(payloadFor(i))] != 1 {
			t.Fatalf("payload %d recovered %d times", i, seen[string(payloadFor(i))])
		}
	}
}

func TestAppendRejectsOutOfRangePayloads(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := s.Append(make([]byte, maxRecordLen+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
