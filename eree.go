// Package eree is the public API of this repository: a Go implementation
// of "Utility Cost of Formal Privacy for Releasing National
// Employer-Employee Statistics" (Haney, Machanavajjhala, Abowd, Graham,
// Kutzbach, Vilhuber; SIGMOD 2017).
//
// The library releases tabular summaries (marginal count queries) of
// linked employer-employee data under the paper's provable privacy
// definitions:
//
//   - (α,ε)-ER-EE privacy (strong α-neighbors, Definition 7.2), via the
//     Log-Laplace (Algorithm 1) and Smooth Gamma (Algorithm 2) mechanisms;
//   - weak (α,ε)-ER-EE privacy (Definition 7.4), which the same mechanisms
//     satisfy for queries involving worker attributes;
//   - approximate (α,ε,δ)-ER-EE privacy (Definition 9.1), via the Smooth
//     Laplace mechanism (Algorithm 3);
//
// together with the comparison baselines the paper evaluates: the current
// statistical-disclosure-limitation scheme (input noise infusion),
// edge-differential privacy, and node-differential privacy via degree
// truncation.
//
// # Quick start
//
//	data, err := eree.Generate(eree.TestDataConfig(), 42)
//	if err != nil { ... }
//	pub := eree.NewPublisher(data)
//	rel, err := pub.ReleaseMarginal(eree.Request{
//		Attrs:     []string{eree.AttrPlace, eree.AttrIndustry, eree.AttrOwnership},
//		Mechanism: eree.MechSmoothGamma,
//		Alpha:     0.1,
//		Eps:       2,
//	}, eree.NewStream(7))
//
// rel.Noisy then holds one provably private count per cell of the
// place × industry × ownership marginal, and rel.Loss records the privacy
// loss of the whole release (including the d·ε surcharge when worker
// attributes make the release fall under weak ER-EE privacy).
//
// The real LODES inputs are confidential; Generate produces a synthetic
// snapshot reproducing the structural properties the paper's evaluation
// depends on. See DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for the regenerated tables and figures.
package eree

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/lodes"
	"repro/internal/otm"
	"repro/internal/privacy"
	"repro/internal/qwi"
	"repro/internal/sdl"
	"repro/internal/suppress"
	"repro/internal/table"
)

// Stream is a deterministic splittable random stream. Every randomized
// operation takes one explicitly, so releases and experiments are exactly
// reproducible.
type Stream = dist.Stream

// NewStream returns a stream derived from an int64 seed.
func NewStream(seed int64) *Stream { return dist.NewStreamFromSeed(seed) }

// Dataset is a LODES-style snapshot: the WorkerFull relation (one record
// per job), the establishment frame and place metadata.
type Dataset = lodes.Dataset

// DataConfig parameterizes the synthetic data generator.
type DataConfig = lodes.Config

// DefaultDataConfig returns the experiment-scale generator configuration
// (~20k establishments, ~0.4M jobs).
func DefaultDataConfig() DataConfig { return lodes.DefaultConfig() }

// TestDataConfig returns a small configuration for fast experimentation
// (~2k establishments, ~40k jobs).
func TestDataConfig() DataConfig { return lodes.TestConfig() }

// NationalDataConfig returns the national-scale generator configuration
// (~20k places, ~7M establishments, ~130M jobs in expectation — the
// order of the real national LODES frame). A job relation this size
// should not be materialized in memory; stream it to disk with
// GenerateCSV instead of calling Generate.
func NationalDataConfig() DataConfig { return lodes.NationalConfig() }

// Generate produces a synthetic LODES snapshot. The same configuration
// and seed always produce the same dataset.
func Generate(cfg DataConfig, seed int64) (*Dataset, error) {
	return lodes.Generate(cfg, dist.NewStreamFromSeed(seed))
}

// GenerateCSV generates the snapshot for cfg and streams it to dir as
// CSV without ever materializing the full job relation: job rows are
// drawn in chunks of chunkRows (0 selects the default chunk size) and
// written as they are produced, so peak memory is the establishment
// frame plus one chunk regardless of dataset scale. The output is
// byte-identical to Generate followed by Dataset.WriteCSV with the same
// configuration and seed. Returns the counts written.
func GenerateCSV(cfg DataConfig, seed int64, dir string, chunkRows int) (places, establishments, jobs int, err error) {
	if chunkRows <= 0 {
		chunkRows = lodes.DefaultChunkRows
	}
	s := dist.NewStreamFromSeed(seed)
	f, err := lodes.GenerateFrame(cfg, s)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := f.WriteCSVStream(dir, s, chunkRows); err != nil {
		return 0, 0, 0, err
	}
	return len(f.Places), len(f.Establishments), f.TotalJobs, nil
}

// Versioned datasets: a snapshot is one epoch of a longitudinally
// updatable object. A Delta is one quarter of change — establishment
// Births and Deaths, per-establishment Hires and Separations (each new
// job a JobRecord) — applied with ApplyDelta (a new snapshot; the base
// is untouched) or absorbed by a serving Publisher with Advance.
type (
	Delta       = lodes.Delta
	DeltaConfig = lodes.DeltaConfig
	Birth       = lodes.Birth
	Hire        = lodes.Hire
	Separation  = lodes.Separation
	JobRecord   = lodes.JobRecord
)

// DefaultDeltaConfig returns the quarterly churn configuration (~2%
// establishment births and deaths, ±10%-scale employment shocks).
func DefaultDeltaConfig() DeltaConfig { return lodes.DefaultDeltaConfig() }

// GenerateDelta draws one deterministic quarter of churn for the
// snapshot. The same snapshot, configuration and seed always produce
// the same delta.
func GenerateDelta(d *Dataset, cfg DeltaConfig, seed int64) (*Delta, error) {
	return lodes.GenerateDelta(d, cfg, dist.NewStreamFromSeed(seed))
}

// ApplyDelta absorbs a quarterly delta into a new epoch snapshot
// (Epoch+1, shared schema and place metadata); the base dataset is not
// modified. Publishers absorb deltas with Publisher.Advance instead,
// which also maintains the columnar index incrementally and selectively
// invalidates the marginal cache.
func ApplyDelta(d *Dataset, delta *Delta) (*Dataset, error) {
	return d.ApplyDelta(delta)
}

// LoadCSV loads a dataset previously written with Dataset.WriteCSV.
func LoadCSV(dir string) (*Dataset, error) { return lodes.ReadCSV(dir) }

// WriteDeltaCSV writes a quarterly delta to dir as plain-text CSV
// (delta_deaths.csv, delta_separations.csv, delta_hires.csv,
// delta_births.csv, delta_birth_jobs.csv), with attribute values spelled
// by name under the base dataset's schema. Row order is part of the
// delta's identity — ApplyDelta assigns birth IDs by position — and is
// preserved exactly by LoadDeltaCSV.
func WriteDeltaCSV(base *Dataset, delta *Delta, dir string) error {
	return lodes.WriteDeltaCSV(dir, base.Schema(), delta)
}

// LoadDeltaCSV loads a delta previously written with WriteDeltaCSV.
// Applying the re-read delta to the same base snapshot yields a
// bit-identical successor.
func LoadDeltaCSV(base *Dataset, dir string) (*Delta, error) {
	return lodes.ReadDeltaCSV(dir, base.Schema())
}

// Attribute names of the WorkerFull relation. Place, industry and
// ownership are establishment (public) attributes; the rest are worker
// (private) attributes.
const (
	AttrPlace     = lodes.AttrPlace
	AttrIndustry  = lodes.AttrIndustry
	AttrOwnership = lodes.AttrOwnership
	AttrSex       = lodes.AttrSex
	AttrAge       = lodes.AttrAge
	AttrRace      = lodes.AttrRace
	AttrEthnicity = lodes.AttrEthnicity
	AttrEducation = lodes.AttrEducation
)

// WorkplaceAttrs lists the establishment-side attributes (the paper's V_W).
func WorkplaceAttrs() []string { return lodes.WorkplaceAttrs() }

// WorkerAttrs lists the worker-side attributes (the paper's V_I).
func WorkerAttrs() []string { return lodes.WorkerAttrs() }

// Publisher answers marginal release requests over one versioned
// dataset. The truth for each marginal is computed at most once per
// epoch — via an entity-sorted columnar index over the dataset, with
// concurrent first requests singleflighted onto one scan — and served
// from a sharded copy-on-write cache whose hit path takes no lock, so
// repeated releases of the same query (different mechanisms, parameters
// or trials) pay only for noise and concurrent serving throughput
// scales with GOMAXPROCS. Beyond ReleaseMarginal and ReleaseSingleCell,
// a Publisher offers:
//
//   - ReleaseBatch: answer many requests at once — missing marginals are
//     computed in a single pass over the data, noise is drawn in
//     parallel, and an attached Accountant is charged atomically (an
//     over-budget batch spends nothing);
//   - Advance: absorb a quarterly Delta without stalling serving. The
//     successor snapshot is built aside (the columnar index maintained
//     incrementally per touched establishment group, cached marginals
//     the delta provably left unchanged carried over, the rest
//     selectively invalidated) and installed atomically; releases in
//     flight stay pinned to the snapshot they started on, and
//     Release.Epoch (and Publisher.Epoch) report which epoch served
//     them. An attached Accountant's ledger advances too
//     (Accountant.SpendByEpoch) — privacy budget composes sequentially
//     across epochs, an update never refreshes it;
//   - PrefetchMarginals: warm the cache for a set of queries with one
//     table scan;
//   - MarginalCacheStats, CacheStatsByEpoch, SetMarginalCacheEnabled
//     and InvalidateMarginalCache: observe and control the cache,
//     per epoch.
//
// Because truth is cached, Release.Truth (and the result of
// Publisher.Marginal) is shared across releases of the same attribute
// set and must be treated as read-only.
type Publisher = core.Publisher

// NewPublisher creates a publisher for the dataset.
func NewPublisher(d *Dataset) *Publisher { return core.NewPublisher(d) }

// Request describes one release; Release is its result.
type (
	Request = core.Request
	Release = core.Release
)

// CacheStats reports one epoch's marginal-cache effectiveness: a hit is
// a release that skipped the full-table scan, an eviction a cached
// marginal dropped by selective invalidation at an Advance (or an
// explicit invalidation). Counters are per-epoch; see
// Publisher.CacheStatsByEpoch for the full history.
type CacheStats = core.CacheStats

// EpochSpend is one epoch's entry in an Accountant's spend-by-epoch
// ledger.
type EpochSpend = privacy.EpochSpend

// MechanismKind selects a release mechanism.
type MechanismKind = core.MechanismKind

// The available mechanisms.
const (
	MechLogLaplace       = core.MechLogLaplace
	MechSmoothGamma      = core.MechSmoothGamma
	MechSmoothLaplace    = core.MechSmoothLaplace
	MechEdgeLaplace      = core.MechEdgeLaplace
	MechTruncatedLaplace = core.MechTruncatedLaplace
)

// ParseMechanismKind resolves a mechanism name ("smooth-gamma", ...).
func ParseMechanismKind(name string) (MechanismKind, error) {
	return core.ParseMechanismKind(name)
}

// Loss is a privacy-loss triple (α, ε, δ) under a named definition.
type Loss = privacy.Loss

// Definition identifies a privacy definition; Requirement one of the
// statutory requirements; Satisfaction a Table 1 entry.
type (
	Definition   = privacy.Definition
	Requirement  = privacy.Requirement
	Satisfaction = privacy.Satisfaction
)

// The privacy definitions of Table 1.
const (
	InputNoiseInfusion = privacy.InputNoiseInfusion
	EdgeDP             = privacy.EdgeDP
	NodeDP             = privacy.NodeDP
	StrongEREE         = privacy.StrongEREE
	WeakEREE           = privacy.WeakEREE
)

// Satisfies returns Table 1's entry for (definition, requirement).
func Satisfies(d Definition, r Requirement) Satisfaction { return privacy.Satisfies(d, r) }

// Accountant tracks cumulative privacy loss under sequential composition.
type Accountant = privacy.Accountant

// NewAccountant creates an accountant for the given definition, α, and
// total (ε, δ) budget.
func NewAccountant(def Definition, alpha, budgetEps, budgetDelta float64) (*Accountant, error) {
	return privacy.NewAccountant(def, alpha, budgetEps, budgetDelta)
}

// Query is a compiled marginal query (Definition 2.1); Marginal is its
// evaluation over a dataset, including the per-cell largest
// single-establishment contribution x_v the mechanisms calibrate to.
type (
	Query    = table.Query
	Marginal = table.Marginal
)

// NewQuery compiles a marginal query over the dataset's schema.
func NewQuery(d *Dataset, attrs ...string) (*Query, error) {
	return table.NewQuery(d.Schema(), attrs...)
}

// ComputeMarginal evaluates the query over the dataset's WorkerFull
// relation, returning the confidential true counts.
func ComputeMarginal(d *Dataset, q *Query) *Marginal {
	return table.Compute(d.WorkerFull, q)
}

// ComputeMarginals evaluates many queries in one sharded pass over the
// dataset, positionally aligned with the input — the bulk path for
// workloads that ask several marginals of the same snapshot.
func ComputeMarginals(d *Dataset, qs []*Query) []*Marginal {
	return table.ComputeAll(d.WorkerFull, qs)
}

// OnTheMap residence-side protection (the paper's footnote 2 /
// reference [37]): synthetic origin-destination data from a
// Dirichlet-multinomial synthesizer with a provable ε bound.
type (
	ODMatrix      = otm.ODMatrix
	ODSynthesizer = otm.Synthesizer
)

// SyntheticOD derives a gravity-model origin-destination matrix for a
// snapshot (real residence data are confidential).
func SyntheticOD(d *Dataset, s *Stream) *ODMatrix { return otm.SyntheticOD(d, s) }

// NewODSynthesizer validates that the prior meets the ε requirement
// (α ≥ m/(e^ε − 1)) and returns the synthesizer.
func NewODSynthesizer(eps float64, syntheticSize int, prior float64) (*ODSynthesizer, error) {
	return otm.NewSynthesizer(eps, syntheticSize, prior)
}

// ODMinPrior returns the smallest per-block prior for which releasing m
// synthetic residences per workplace satisfies pure ε-DP.
func ODMinPrior(eps float64, m int) float64 { return otm.MinPrior(eps, m) }

// QWI-style longitudinal job flows (the establishment-product family the
// paper's conclusion targets): two-quarter panels, per-cell
// B/E/JC/JD flow statistics, and privacy-budget-saving releases that
// derive E = B + JC − JD by post-processing.
type (
	Panel       = qwi.Panel
	PanelConfig = qwi.PanelConfig
	Flows       = qwi.Flows
	FlowRelease = qwi.FlowRelease
	FlowKind    = qwi.FlowKind
)

// The four QWI flows.
const (
	FlowBeginning   = qwi.FlowBeginning
	FlowEnd         = qwi.FlowEnd
	FlowCreation    = qwi.FlowCreation
	FlowDestruction = qwi.FlowDestruction
)

// DefaultPanelConfig returns quarter-over-quarter dynamics with ~2%
// establishment deaths and ±10%-scale employment shocks.
func DefaultPanelConfig() PanelConfig { return qwi.DefaultPanelConfig() }

// GeneratePanel evolves a snapshot one quarter forward.
func GeneratePanel(base *Dataset, cfg PanelConfig, s *Stream) (*Panel, error) {
	return qwi.GeneratePanel(base, cfg, s)
}

// ComputeFlows evaluates the four QWI flows over a workplace marginal.
func ComputeFlows(p *Panel, q *Query) (*Flows, error) { return qwi.ComputeFlows(p, q) }

// ReleaseFlows releases a flow set under the request's mechanism (B, JC
// and JD are released; E is derived from the identity for free),
// returning the total privacy loss of the three sequential releases.
func ReleaseFlows(f *Flows, req Request, s *Stream) (*FlowRelease, Loss, error) {
	return core.ReleaseFlows(f, req, s)
}

// Cell suppression (the historical SDL of the paper's Appendix A):
// SuppressionTable, suppression rules, patterns and the interval auditor.
type (
	SuppressionTable   = suppress.Table
	SuppressionPattern = suppress.Pattern
	SuppressionRule    = suppress.Rule
	ThresholdRule      = suppress.ThresholdRule
	PPercentRule       = suppress.PPercentRule
	NKRule             = suppress.NKRule
	AuditInterval      = suppress.Interval
)

// SuppressionFromMarginal converts a two-attribute marginal into a
// suppression table carrying each cell's contributor statistics.
func SuppressionFromMarginal(m *Marginal) (*SuppressionTable, error) {
	return suppress.FromMarginal(m)
}

// PrimarySuppression applies the sensitivity rules; Complementary
// extends the pattern so no suppressed cell is recoverable by
// subtraction from published totals; AuditSuppression computes what an
// attacker can still infer about every suppressed cell.
func PrimarySuppression(t *SuppressionTable, rules ...SuppressionRule) *SuppressionPattern {
	return suppress.Primary(t, rules...)
}

// ComplementarySuppression extends a primary pattern per Fellegi's
// subtraction-attack conditions.
func ComplementarySuppression(t *SuppressionTable, primary *SuppressionPattern) *SuppressionPattern {
	return suppress.Complementary(t, primary)
}

// AuditSuppression bounds every suppressed cell from the published
// values by interval constraint propagation.
func AuditSuppression(t *SuppressionTable, p *SuppressionPattern) map[[2]int]AuditInterval {
	return suppress.Audit(t, p)
}

// SDLSystem is the current-protection baseline: input noise infusion.
type SDLSystem = sdl.System

// SDLConfig holds the noise-infusion parameters.
type SDLConfig = sdl.Config

// DefaultSDLConfig returns the documented synthetic stand-ins for the
// confidential production parameters (s=0.1, t=0.25, small-cell limit 2.5).
func DefaultSDLConfig() SDLConfig { return sdl.DefaultConfig() }

// NewSDLSystem instantiates the SDL baseline for a dataset, drawing one
// time-invariant distortion factor per establishment.
func NewSDLSystem(cfg SDLConfig, d *Dataset, s *Stream) (*SDLSystem, error) {
	return sdl.NewSystem(cfg, d.NumEstablishments(), s)
}

// ReleaseRequest, PlannedRelease and Plan support allocating a total
// privacy budget across multiple releases under sequential composition;
// see PlanReleases.
type (
	ReleaseRequest = privacy.ReleaseRequest
	PlannedRelease = privacy.PlannedRelease
	Plan           = privacy.Plan
)

// PlanReleases allocates a total (ε, δ) budget across the requested
// releases proportionally to their weights, translating each share into
// the per-cell ε its mechanism must run at (including the d·ε
// surcharge for worker-attribute marginals under weak ER-EE privacy).
func PlanReleases(def Definition, alpha, budgetEps, budgetDelta float64, requests []ReleaseRequest) (*Plan, error) {
	return privacy.PlanReleases(def, alpha, budgetEps, budgetDelta, requests)
}

// SDLShapeDisclosure, SDLFactorReconstruction and
// SDLZeroCountReIdentification are the Section 5.2 inference attacks
// against input noise infusion, exposed for the attack demonstration
// (examples/attack). See the sdl package documentation for each attack's
// premise.
var (
	SDLShapeDisclosure           = sdl.ShapeDisclosure
	SDLFactorReconstruction      = sdl.FactorReconstruction
	SDLZeroCountReIdentification = sdl.ZeroCountReIdentification
	SDLTotalSizeReconstruction   = sdl.TotalSizeFromReconstruction
)

// Harness runs the paper's Section 10 experiments over one dataset.
type Harness = eval.Harness

// NewHarness builds an experiment harness with the given trial count.
func NewHarness(d *Dataset, s *Stream, trials int) (*Harness, error) {
	return eval.NewHarness(d, s, trials)
}

// FigureResult is regenerated figure data; GridSpec configures a custom
// experiment grid; Metric selects L1-ratio or Spearman comparisons.
type (
	FigureResult   = eval.FigureResult
	GridSpec       = eval.GridSpec
	SliceSpec      = eval.SliceSpec
	Metric         = eval.Metric
	Point          = eval.Point
	TruncatedPoint = eval.TruncatedPoint
)

// The comparison metrics.
const (
	MetricL1Ratio  = eval.MetricL1Ratio
	MetricSpearman = eval.MetricSpearman
)

// Spearman returns the tie-aware Spearman rank correlation of two vectors.
func Spearman(a, b []float64) float64 { return eval.Spearman(a, b) }

// Table1Text and Table2Text render the paper's tables.
func Table1Text() string { return eval.Table1Text() }

// Table2Text renders Table 2 (minimum ε given α and δ).
func Table2Text() string { return eval.Table2Text() }
