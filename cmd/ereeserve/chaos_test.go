package main

// Kill-9 chaos harness. The test re-executes this test binary as a
// real ereeserve process (TestMain intercepts via EREE_CHAOS_SERVER),
// arms a crash point via EREE_CRASH (internal/crashpoint), drives a
// fixed request script over real HTTP until the process SIGKILLs
// itself, restarts it over the same state directory, and then acts as
// a well-behaved client: it retries exactly the requests whose
// responses it never fully observed.
//
// Three invariants, checked on every crash schedule:
//
//  1. No lost charges: the recovered spend covers every response the
//     client fully observed before the crash (the write-ahead
//     contract; the safe failure direction is over-charge, never
//     under-charge).
//  2. Budget safety: total recorded spend never exceeds the tenant's
//     budget, across any crash/restart/retry schedule. The script is
//     sized to land exactly on the budget, so any double charge
//     surfaces as a 429 on a later step.
//  3. Determinism through crashes: every response — observed before
//     the crash, replayed after recovery, or charged fresh on retry —
//     is byte-identical to the same step of an uninterrupted run.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary serve as the ereeserve process itself:
// with EREE_CHAOS_SERVER=1 it runs main's run() with the args from
// EREE_CHAOS_ARGS instead of any tests. The child therefore carries
// the exact production serving, recovery, and crash-point code paths.
func TestMain(m *testing.M) {
	if os.Getenv("EREE_CHAOS_SERVER") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("EREE_CHAOS_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "chaos server args:", err)
			os.Exit(2)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		if err := run(args, os.Stdout, sig); err != nil {
			fmt.Fprintln(os.Stderr, "ereeserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const (
	chaosTenantKey = "chaos-tenant-key"
	chaosAdminKey  = "chaos-admin-key"
	// chaosBudgetEps is exactly the script's summed loss: 13 charges of
	// eps 0.5. Any step double-charged by a crash bug pushes a later
	// step over budget and fails the run with a 429.
	chaosBudgetEps = 6.5
)

type chaosStep struct {
	name    string
	path    string
	body    string
	eps     float64
	advance bool
}

// chaosScript is the fixed workload: five releases in epoch 0, an
// admin advance, then five releases, an atomic batch and a cell in
// epoch 1. Every request carries an explicit seq so a retry is
// wire-identical to the original.
func chaosScript() []chaosStep {
	steps := make([]chaosStep, 0, 13)
	for i := 0; i < 5; i++ {
		steps = append(steps, chaosStep{
			name: fmt.Sprintf("epoch0-release-%d", i),
			path: "/v1/release",
			body: fmt.Sprintf(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`, i),
			eps:  0.5,
		})
	}
	steps = append(steps, chaosStep{
		name:    "advance",
		path:    "/v1/admin/advance",
		body:    `{"quarters":1}`,
		advance: true,
	})
	for i := 0; i < 5; i++ {
		steps = append(steps, chaosStep{
			name: fmt.Sprintf("epoch1-release-%d", i),
			path: "/v1/release",
			body: fmt.Sprintf(`{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`, 5+i),
			eps:  0.5,
		})
	}
	steps = append(steps, chaosStep{
		name: "batch",
		path: "/v1/batch",
		body: `{"seq":10,"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5},{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}]}`,
		eps:  1.0,
	})
	steps = append(steps, chaosStep{
		name: "cell",
		path: "/v1/cell",
		body: `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"values":["44-Retail"],"seq":11}`,
		eps:  0.5,
	})
	return steps
}

func writeChaosConfig(t *testing.T, dir string) string {
	t.Helper()
	cfg := fmt.Sprintf(`{
		"addr": "127.0.0.1:0",
		"admin_key": %q,
		"noise_seed": 7,
		"data_seed": 1,
		"delta_seed": 100,
		"tenants": [
			{"name": "chaos", "key": %q, "definition": "weak-er-ee", "alpha": 0.1, "budget_eps": %g, "budget_delta": 0.5}
		]
	}`, chaosAdminKey, chaosTenantKey, chaosBudgetEps)
	path := filepath.Join(dir, "chaos.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// chaosProc is one child ereeserve process.
type chaosProc struct {
	cmd  *exec.Cmd
	out  *syncBuf
	addr string
}

// startChaos boots the re-exec'd server; crash, when non-empty, arms a
// kill point ("name:N" SIGKILLs the process on the Nth hit).
func startChaos(t *testing.T, cfgPath, stateDir, crash string) *chaosProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-config", cfgPath, "-addr", "127.0.0.1:0", "-state-dir", stateDir}
	raw, _ := json.Marshal(args)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"EREE_CHAOS_SERVER=1",
		"EREE_CHAOS_ARGS="+string(raw),
		"EREE_CRASH="+crash,
	)
	out := &syncBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &chaosProc{cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listeningRE.FindStringSubmatch(out.String()); m != nil {
			p.addr = m[1]
			break
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("chaos server never listened; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Serve only after /readyz: recovery must be complete.
	for {
		resp, err := http.Get("http://" + p.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos server never became ready; output:\n%s", p.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitKilled waits for the armed crash to fire and asserts the process
// died by SIGKILL (it killed itself at the crash point).
func (p *chaosProc) waitKilled(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("chaos server exited cleanly, want SIGKILL; output:\n%s", p.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("chaos server did not die at its crash point; output:\n%s", p.out.String())
	}
}

// stop shuts the child down gracefully and requires a clean exit.
func (p *chaosProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v; output:\n%s", err, p.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("graceful shutdown hung; output:\n%s", p.out.String())
	}
}

var chaosClient = &http.Client{Timeout: 10 * time.Second}

// send drives one step. A step counts as observed only if the full
// response body arrived with status 200 — a torn body (mid-response
// kill) or transport error is unobserved and must be retried.
func send(addr string, step chaosStep) (observed bool, body []byte) {
	key := chaosTenantKey
	if step.advance {
		key = chaosAdminKey
	}
	req, err := http.NewRequest("POST", "http://"+addr+step.path, strings.NewReader(step.body))
	if err != nil {
		return false, nil
	}
	req.Header.Set("X-API-Key", key)
	resp, err := chaosClient.Do(req)
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, raw
	}
	return true, raw
}

type chaosStats struct {
	SpentEps     float64 `json:"spent_eps"`
	SpentDelta   float64 `json:"spent_delta"`
	RemainingEps float64 `json:"remaining_eps"`
	Releases     int     `json:"releases"`
	Epoch        int     `json:"epoch"`
	SpendByEpoch []struct {
		Epoch    int     `json:"epoch"`
		Eps      float64 `json:"eps"`
		Delta    float64 `json:"delta"`
		Releases int     `json:"releases"`
	} `json:"spend_by_epoch"`
}

func readStats(t *testing.T, addr string) chaosStats {
	t.Helper()
	req, _ := http.NewRequest("GET", "http://"+addr+"/v1/stats", nil)
	req.Header.Set("X-API-Key", chaosTenantKey)
	resp, err := chaosClient.Do(req)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st chaosStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

func readEpoch(t *testing.T, addr string) int {
	t.Helper()
	resp, err := chaosClient.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Epoch int `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return h.Epoch
}

// TestChaosKillRecovery is the crash matrix. Each leg arms one crash
// point, drives the script into the kill, restarts over the same state
// directory, retries the unobserved steps, and checks the three
// invariants against a baseline uninterrupted run.
func TestChaosKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness boots real processes; skipped in -short")
	}
	steps := chaosScript()

	// Baseline: the same script against an uninterrupted server.
	base := t.TempDir()
	cfgPath := writeChaosConfig(t, base)
	baseline := make([][]byte, len(steps))
	var baseStats chaosStats
	{
		proc := startChaos(t, cfgPath, filepath.Join(base, "state"), "")
		for i, step := range steps {
			ok, body := send(proc.addr, step)
			if !ok {
				t.Fatalf("baseline step %s failed: %s", step.name, body)
			}
			baseline[i] = body
		}
		baseStats = readStats(t, proc.addr)
		proc.stop(t)
	}
	if baseStats.SpentEps != chaosBudgetEps {
		t.Fatalf("baseline spent %g, want the exact budget %g", baseStats.SpentEps, chaosBudgetEps)
	}

	// Crash legs. Sync counts are deterministic under this serial
	// client: boot journals 1 tenant registration (sync 1), each charge
	// is one sync, the advance's dataset record is sync 7.
	legs := []struct {
		name  string
		crash string
	}{
		// Charge fsynced, killed before any response byte.
		{"before-response", "serve-before-response:3"},
		// Killed halfway through the response body (torn response).
		{"mid-response", "serve-mid-response:2"},
		// Killed before the spend record's fsync: charge lost with the
		// process, client saw nothing — retry must charge fresh.
		{"before-sync", "wal-before-sync:4"},
		// Killed right after the fsync: charge durable, response lost.
		{"after-sync", "wal-after-sync:5"},
		// Killed after the dataset-advance record was durable but before
		// tenant ledgers advanced: recovery must complete the epoch.
		{"advance-after-record", "advance-after-record:1"},
		// Killed before the dataset-advance record's fsync: the advance
		// must be absent after recovery, and the retry must continue the
		// exact seed lineage.
		{"advance-lost", "wal-before-sync:7"},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			dir := t.TempDir()
			stateDir := filepath.Join(dir, "state")
			proc := startChaos(t, writeChaosConfig(t, dir), stateDir, leg.crash)

			observed := make([]bool, len(steps))
			crashBodies := make([][]byte, len(steps))
			var observedEps float64
			for i, step := range steps {
				observed[i], crashBodies[i] = send(proc.addr, step)
				if observed[i] {
					observedEps += step.eps
				}
			}
			proc.waitKilled(t)

			// Invariant 3 (first half): everything fully observed before
			// the crash matches the uninterrupted run byte for byte.
			for i := range steps {
				if observed[i] && !steps[i].advance && string(crashBodies[i]) != string(baseline[i]) {
					t.Fatalf("step %s observed before crash differs from baseline:\n  crash:    %s\n  baseline: %s",
						steps[i].name, crashBodies[i], baseline[i])
				}
			}

			// Restart over the same state directory.
			proc2 := startChaos(t, writeChaosConfig(t, dir), stateDir, "")
			recovered := readStats(t, proc2.addr)

			// Invariant 1: no observed response without a recovered charge.
			if recovered.SpentEps+1e-9 < observedEps {
				t.Fatalf("recovered spend %g < observed charges %g: a response escaped without a durable record",
					recovered.SpentEps, observedEps)
			}
			// Invariant 2: never over budget.
			if recovered.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("recovered spend %g exceeds budget %g", recovered.SpentEps, chaosBudgetEps)
			}

			// Retry every step whose response was lost. The advance is
			// retried only if its epoch is genuinely absent — a client can
			// see that from /healthz, and re-advancing a recovered epoch
			// would be a new advance, not a retry.
			for i, step := range steps {
				if observed[i] {
					continue
				}
				if step.advance && readEpoch(t, proc2.addr) >= 1 {
					continue
				}
				ok, body := send(proc2.addr, step)
				if !ok {
					t.Fatalf("retry of %s failed after recovery: %s", step.name, body)
				}
				if !step.advance && string(body) != string(baseline[i]) {
					t.Fatalf("retry of %s differs from baseline:\n  retry:    %s\n  baseline: %s",
						step.name, body, baseline[i])
				}
			}

			// Invariant 2 again after the retries, then full convergence:
			// the crashed-and-recovered world ends bit-identical to the
			// uninterrupted one.
			final := readStats(t, proc2.addr)
			if final.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("final spend %g exceeds budget %g", final.SpentEps, chaosBudgetEps)
			}
			if !reflect.DeepEqual(final, baseStats) {
				t.Fatalf("final stats diverge from baseline:\n  final:    %+v\n  baseline: %+v", final, baseStats)
			}
			proc2.stop(t)
		})
	}
}
